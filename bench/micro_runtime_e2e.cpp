//===- bench/micro_runtime_e2e.cpp - Runtime throughput tracker ------------===//
//
// End-to-end interpreter throughput over the nine paper workloads, in
// host time: simulated instructions/sec and sync-ops/sec for a native
// run of each original program, plus a record-mode pass over the
// instrumented build. Emits BENCH_runtime.json so the runtime's perf
// trajectory is tracked across PRs (the figure binaries report simulated
// cycles, which batching and the fast path must never change).
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace chimera;
using namespace chimera::workloads;

namespace {

struct Row {
  const char *Name = "";
  double NativeSec = 0;     ///< Host wall time, original program.
  double RecordSec = 0;     ///< Host wall time, instrumented record run.
  double RecordOffSec = 0;  ///< Warm record, MHP filter off.
  double RecordOnSec = 0;   ///< Warm record, MHP filter on (barrier).
  double InstPerSec = 0;    ///< Simulated instructions/sec (native).
  double SyncPerSec = 0;    ///< Simulated sync-ops/sec (record).
  uint64_t Instructions = 0;
  uint64_t SyncOps = 0;
};

double seconds(std::chrono::steady_clock::time_point From,
               std::chrono::steady_clock::time_point To) {
  return std::chrono::duration<double>(To - From).count();
}

} // namespace

int main() {
  const uint64_t Seed = 2012;
  std::vector<Row> Rows;
  double TotalNativeSec = 0, TotalRecordSec = 0;
  uint64_t TotalInsts = 0, TotalSyncs = 0;

  double TotalOffSec = 0, TotalOnSec = 0;
  std::printf("%-8s %12s %12s %12s %12s %12s %12s\n", "workload", "native-s",
              "record-s", "rec-off-s", "rec-on-s", "Minst/s", "Ksync/s");
  for (WorkloadKind Kind : allWorkloads()) {
    auto P = buildPipelineEx(Kind, 4);
    if (!P) {
      std::fprintf(stderr, "%s: %s\n", workloadInfo(Kind).Name,
                   P.error().message().c_str());
      return 1;
    }

    Row R;
    R.Name = workloadInfo(Kind).Name;

    auto T0 = std::chrono::steady_clock::now();
    rt::ExecutionResult Nat = (*P)->runOriginalNative(Seed);
    auto T1 = std::chrono::steady_clock::now();
    if (!Nat.Ok) {
      std::fprintf(stderr, "%s native: %s\n", R.Name, Nat.Error.c_str());
      return 1;
    }
    rt::ExecutionResult Rec = (*P)->record(Seed);
    auto T2 = std::chrono::steady_clock::now();
    if (!Rec.Ok) {
      std::fprintf(stderr, "%s record: %s\n", R.Name, Rec.Error.c_str());
      return 1;
    }

    R.NativeSec = seconds(T0, T1);
    R.RecordSec = seconds(T1, T2);

    // MHP precision benefit at runtime: the filter prunes race pairs,
    // so the instrumented module carries fewer weak-lock acquires. Both
    // pipelines are warmed (plan + instrumentation + audit cached by
    // the record above / below), so the off-vs-on delta is pure
    // record-mode execution.
    core::PipelineConfig OffCfg;
    OffCfg.Mhp = analysis::MhpMode::Off;
    auto POff = buildPipelineEx(Kind, 4, OffCfg);
    if (!POff) {
      std::fprintf(stderr, "%s (mhp off): %s\n", R.Name,
                   POff.error().message().c_str());
      return 1;
    }
    rt::ExecutionResult Warm = (*POff)->record(Seed);
    if (!Warm.Ok) {
      std::fprintf(stderr, "%s record (mhp off): %s\n", R.Name,
                   Warm.Error.c_str());
      return 1;
    }
    auto T3 = std::chrono::steady_clock::now();
    rt::ExecutionResult RecOff = (*POff)->record(Seed);
    auto T4 = std::chrono::steady_clock::now();
    rt::ExecutionResult RecOn = (*P)->record(Seed);
    auto T5 = std::chrono::steady_clock::now();
    if (!RecOff.Ok || !RecOn.Ok) {
      std::fprintf(stderr, "%s warm record failed\n", R.Name);
      return 1;
    }
    R.RecordOffSec = seconds(T3, T4);
    R.RecordOnSec = seconds(T4, T5);
    R.Instructions = Nat.Stats.Instructions;
    R.SyncOps = Rec.Stats.SyncOps + Rec.Stats.weakAcquiresTotal();
    R.InstPerSec = R.Instructions / R.NativeSec;
    R.SyncPerSec = R.SyncOps / R.RecordSec;
    TotalNativeSec += R.NativeSec;
    TotalRecordSec += R.RecordSec;
    TotalOffSec += R.RecordOffSec;
    TotalOnSec += R.RecordOnSec;
    TotalInsts += R.Instructions;
    TotalSyncs += R.SyncOps;
    Rows.push_back(R);

    std::printf("%-8s %12.4f %12.4f %12.4f %12.4f %12.2f %12.2f\n", R.Name,
                R.NativeSec, R.RecordSec, R.RecordOffSec, R.RecordOnSec,
                R.InstPerSec / 1e6, R.SyncPerSec / 1e3);
  }

  std::printf("%-8s %12.4f %12.4f %12.4f %12.4f %12.2f %12.2f\n", "total",
              TotalNativeSec, TotalRecordSec, TotalOffSec, TotalOnSec,
              TotalInsts / TotalNativeSec / 1e6,
              TotalSyncs / TotalRecordSec / 1e3);

  // Results flow through the observability serializer: one flat
  // registry, snapshotted to JSON. Wall times are integral microseconds
  // (metrics are integers); rates round to the nearest unit.
  obs::Registry Reg;
  obs::Scope Bench(&Reg, "bench.runtime");
  Bench.gauge("seed").set(static_cast<int64_t>(Seed));
  auto us = [](double Seconds) {
    return static_cast<uint64_t>(Seconds * 1e6 + 0.5);
  };
  for (const Row &R : Rows) {
    obs::Scope W = Bench.sub(R.Name);
    W.counter("native_wall_us").add(us(R.NativeSec));
    W.counter("record_wall_us").add(us(R.RecordSec));
    W.counter("record_wall_us_mhp_off").add(us(R.RecordOffSec));
    W.counter("record_wall_us_mhp_on").add(us(R.RecordOnSec));
    W.counter("instructions").add(R.Instructions);
    W.counter("sync_ops").add(R.SyncOps);
    W.gauge("instructions_per_second")
        .set(static_cast<int64_t>(R.InstPerSec + 0.5));
    W.gauge("sync_ops_per_second")
        .set(static_cast<int64_t>(R.SyncPerSec + 0.5));
  }
  obs::Scope Total = Bench.sub("total");
  Total.counter("native_wall_us").add(us(TotalNativeSec));
  Total.counter("record_wall_us").add(us(TotalRecordSec));
  Total.counter("record_wall_us_mhp_off").add(us(TotalOffSec));
  Total.counter("record_wall_us_mhp_on").add(us(TotalOnSec));
  Total.counter("instructions").add(TotalInsts);
  Total.counter("sync_ops").add(TotalSyncs);
  Total.gauge("instructions_per_second")
      .set(static_cast<int64_t>(TotalInsts / TotalNativeSec + 0.5));
  Total.gauge("sync_ops_per_second")
      .set(static_cast<int64_t>(TotalSyncs / TotalRecordSec + 0.5));

  FILE *Json = std::fopen("BENCH_runtime.json", "w");
  if (!Json) {
    std::fprintf(stderr, "cannot write BENCH_runtime.json\n");
    return 1;
  }
  std::string Rendered = Reg.snapshot().toJson();
  std::fwrite(Rendered.data(), 1, Rendered.size(), Json);
  std::fputc('\n', Json);
  std::fclose(Json);
  std::printf("\nwrote BENCH_runtime.json\n");
  return 0;
}
