//===- bench/ablation_design.cpp - Design-choice ablations -----------------===//
//
// Ablations for the design decisions DESIGN.md calls out beyond the
// paper's own Figure 5 configurations:
//
//  1. The §5.3 loop-body-threshold: when bounds are underivable, below
//     what body size is serializing the loop cheaper than per-iteration
//     locks? Swept on radix (whose histogram loop is the canonical
//     underivable case).
//  2. Points-to flavor: Andersen (inclusion) vs Steensgaard
//     (unification) — how many race pairs does the coarser analysis
//     inflate the detector to, per workload? (RELAY combines both; we
//     default to Andersen for access sets.)
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/CallGraph.h"
#include "analysis/Escape.h"
#include "codegen/CodeGen.h"
#include "race/RelayDetector.h"

using namespace chimera;
using namespace chimera::bench;
using namespace chimera::workloads;

static void sweepLoopBodyThreshold() {
  std::printf("Ablation 1: loop-body-threshold sweep on radix "
              "(underivable-bounds loops)\n\n");
  std::printf("%-12s %14s %14s %12s\n", "threshold", "loop sites",
              "bb/instr sites", "rec overhead");
  hrule(56);

  for (uint64_t Threshold : {0ull, 16ull, 48ull, 128ull, 1024ull}) {
    auto P = pipelineFor(WorkloadKind::Radix, 4);
    instrument::PlannerOptions Opts = instrument::PlannerOptions::full();
    Opts.LoopBodyThreshold = Threshold;
    P->setPlannerOptions(Opts);

    auto Native = P->runOriginalNative(BenchSeed);
    requireOk(Native, "native");
    auto Rec = P->record(BenchSeed);
    requireOk(Rec, "record");
    const auto &Plan = P->plan();
    std::printf("%-12llu %14llu %14llu %11.2fx\n",
                static_cast<unsigned long long>(Threshold),
                static_cast<unsigned long long>(Plan.SidesLoopRanged +
                                                Plan.SidesLoopUnranged),
                static_cast<unsigned long long>(Plan.SidesBasicBlock +
                                                Plan.SidesInstr),
                overheadOf(Rec, Native));
  }
  std::printf("\nthe default threshold (48) keeps the small histogram "
              "loop at loop granularity (paper Fig. 4's unranged "
              "loop-lock) without serializing big loops\n\n");
}

static void comparePointsToFlavors() {
  std::printf("Ablation 2: race pairs under Andersen vs Steensgaard "
              "points-to\n\n");
  std::printf("%-10s %10s %12s\n", "app", "Andersen", "Steensgaard");
  hrule(36);

  for (WorkloadKind K : allWorkloads()) {
    auto Compiled = compileMiniCEx(workloadSource(K, evalParams(K, 4)),
                                   workloadInfo(K).Name);
    if (!Compiled) {
      std::fprintf(stderr, "compile failed: %s\n",
                   Compiled.error().message().c_str());
      std::exit(1);
    }
    auto M = Compiled.take();
    analysis::CallGraph CG(*M);

    size_t Counts[2];
    for (int Flavor = 0; Flavor != 2; ++Flavor) {
      analysis::PointsTo PT(*M, Flavor == 0
                                    ? analysis::PointsToFlavor::Andersen
                                    : analysis::PointsToFlavor::Steensgaard);
      analysis::EscapeAnalysis Escape(*M, PT);
      race::RelayDetector Detector(*M, CG, PT, Escape);
      Counts[Flavor] = Detector.detect().Pairs.size();
    }
    std::printf("%-10s %10zu %12zu\n", workloadInfo(K).Name, Counts[0],
                Counts[1]);
  }
  std::printf("\nboth are sound; Steensgaard's unification merges "
              "pointer targets and can only report more (never fewer) "
              "pairs — the §3.3 imprecision this project's "
              "optimizations then absorb\n");
}

int main() {
  sweepLoopBodyThreshold();
  comparePointsToFlavors();
  return 0;
}
