//===- bench/micro_runtime.cpp - google-benchmark micro suite --------------===//
//
// Micro-benchmarks for the substrate primitives: weak-lock manager
// operations, vector clocks, the log codec and compressor, the clique
// cover, and end-to-end interpreter throughput. These are host-time
// benchmarks (the table/figure binaries report simulated cycles).
//
//===----------------------------------------------------------------------===//

#include "codegen/CodeGen.h"
#include "race/DynamicDetector.h"
#include "replay/LogCodec.h"
#include "runtime/Machine.h"
#include "runtime/VectorClock.h"
#include "runtime/WeakLock.h"
#include "support/Compressor.h"
#include "support/Graph.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

using namespace chimera;

static void BM_WeakLockUncontended(benchmark::State &State) {
  rt::WeakLockManager WL;
  WL.init(1);
  for (auto _ : State) {
    WL.tryAcquire(0, {1, false, 0, 0, 0, 0});
    WL.removeHolder(0, 1);
  }
}
BENCHMARK(BM_WeakLockUncontended);

static void BM_WeakLockRangedDisjoint(benchmark::State &State) {
  rt::WeakLockManager WL;
  WL.init(1);
  // Seven standing holders with disjoint ranges; measure an eighth.
  for (uint32_t T = 0; T != 7; ++T)
    WL.tryAcquire(0, {T, true, T * 100, T * 100 + 99, 0, 1});
  for (auto _ : State) {
    WL.tryAcquire(0, {9, true, 900, 999, 0, 1});
    WL.removeHolder(0, 9);
  }
}
BENCHMARK(BM_WeakLockRangedDisjoint);

static void BM_WeakLockGrantWaiters(benchmark::State &State) {
  rt::WeakLockManager WL;
  WL.init(1);
  for (auto _ : State) {
    State.PauseTiming();
    WL.tryAcquire(0, {0, false, 0, 0, 0, 0});
    for (uint32_t T = 1; T != 9; ++T)
      WL.enqueue(0, {T, true, T * 10, T * 10 + 9, 0, 1});
    WL.removeHolder(0, 0);
    State.ResumeTiming();
    auto Granted = WL.grantWaiters(0, 1);
    benchmark::DoNotOptimize(Granted);
    State.PauseTiming();
    for (uint32_t T = 1; T != 9; ++T)
      WL.removeHolder(0, T);
    State.ResumeTiming();
  }
}
BENCHMARK(BM_WeakLockGrantWaiters);

static void BM_VectorClockJoin(benchmark::State &State) {
  rt::VectorClock A, B;
  for (uint32_t T = 0; T != 16; ++T) {
    A.set(T, T * 7);
    B.set(T, T * 5 + 3);
  }
  for (auto _ : State) {
    rt::VectorClock C = A;
    C.join(B);
    benchmark::DoNotOptimize(C);
  }
}
BENCHMARK(BM_VectorClockJoin);

static void BM_LzCompressLog(benchmark::State &State) {
  // Log-shaped data: repetitive small records.
  std::vector<uint8_t> Data;
  Rng R(7);
  for (int I = 0; I != 64 * 1024; ++I)
    Data.push_back(static_cast<uint8_t>((I & 3) ? I % 11 : R.next() & 7));
  for (auto _ : State) {
    auto Packed = lzCompress(Data);
    benchmark::DoNotOptimize(Packed);
  }
  State.SetBytesProcessed(State.iterations() * Data.size());
}
BENCHMARK(BM_LzCompressLog);

static void BM_GreedyCliques(benchmark::State &State) {
  UndirectedGraph G(64);
  Rng R(5);
  for (int I = 0; I != 400; ++I)
    G.addEdge(static_cast<unsigned>(R.nextBelow(64)),
              static_cast<unsigned>(R.nextBelow(64)));
  for (auto _ : State) {
    auto Cliques = greedyMaximalCliques(G);
    benchmark::DoNotOptimize(Cliques);
  }
}
BENCHMARK(BM_GreedyCliques);

namespace {

std::unique_ptr<ir::Module> compileLoopKernel() {
  auto M = compileMiniCEx("int a[256];\n"
                          "int main() { int i; int s = 0; "
                          "for (i = 0; i < 100000; i++) { "
                          "a[i & 255] = s; s = (s + a[(i + 7) & 255]) "
                          "& 65535; } output(s); return 0; }",
                          "kernel");
  if (!M)
    std::abort();
  return M.take();
}

} // namespace

static void BM_InterpreterThroughput(benchmark::State &State) {
  auto M = compileLoopKernel();
  uint64_t Instructions = 0;
  for (auto _ : State) {
    rt::MachineOptions MO;
    MO.Seed = 1;
    MO.NumCores = 1;
    rt::Machine Machine(*M, MO);
    auto R = Machine.run();
    benchmark::DoNotOptimize(R.StateHash);
    Instructions += R.Stats.Instructions;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Instructions));
}
BENCHMARK(BM_InterpreterThroughput);

static void BM_RecordModeThroughput(benchmark::State &State) {
  auto M = compileLoopKernel();
  uint64_t Instructions = 0;
  for (auto _ : State) {
    rt::MachineOptions MO;
    MO.Seed = 1;
    MO.NumCores = 1;
    MO.Mode = rt::ExecMode::Record;
    rt::Machine Machine(*M, MO);
    auto R = Machine.run();
    benchmark::DoNotOptimize(R.StateHash);
    Instructions += R.Stats.Instructions;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Instructions));
}
BENCHMARK(BM_RecordModeThroughput);

static void BM_DynamicDetectorOverhead(benchmark::State &State) {
  auto M = compileLoopKernel();
  for (auto _ : State) {
    race::DynamicDetector Detector;
    rt::MachineOptions MO;
    MO.Seed = 1;
    MO.NumCores = 1;
    MO.Observer = &Detector;
    rt::Machine Machine(*M, MO);
    auto R = Machine.run();
    benchmark::DoNotOptimize(R.StateHash);
  }
}
BENCHMARK(BM_DynamicDetectorOverhead);

BENCHMARK_MAIN();
