//===- bench/micro_record_log.cpp - Streamed record overhead ---------------===//
//
// Measures what the segmented log engine costs the record critical path:
// for every workload, wall time of (a) a plain in-memory record, (b) a
// streamed record with segment compression inline on the record thread
// (1 analysis job -> inline pool), and (c) a streamed record with
// compression handed to the worker pool (async double buffering). The
// async path should not be slower than sync — that is the point of
// taking compression off the critical path — and the emitted JSON
// carries the per-workload numbers plus the ratios.
//
// Timings are warm-up + median-of-5: the median is stable against the
// one-sided load spikes of a shared CI host, where best-of silently
// favored whichever variant got the quietest slice of the machine.
// The async-vs-sync comparison is REPORTED, not asserted: on a
// single-core host no overlap is physically possible (the writer then
// compresses inline on backpressure, so async degrades to the sync
// cost plus a real 2-3% floor of futex wakeups and scheduler
// interleaving with the idle pool workers), and a wall-clock "<=" at
// that granularity is a noise comparison. The JSON carries a
// "regression" field (true when async exceeds sync beyond the stated
// tolerance) plus the hardware thread count so readers can interpret
// the ratio; on a multi-core host the ratio should be comfortably
// below 1.
//
// Emits BENCH_record_log.json next to the binary.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "replay/LogWriter.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace chimera;
using namespace chimera::bench;
using namespace chimera::workloads;

namespace {

using Clock = std::chrono::steady_clock;

std::unique_ptr<core::ChimeraPipeline> pipelineWithJobs(WorkloadKind Kind,
                                                        unsigned Jobs) {
  core::PipelineConfig Config;
  Config.AnalysisJobs = Jobs;
  // Small segments put real compression work on the record path, which
  // is exactly what the async engine exists to hide.
  Config.SegmentBytes = 4096;
  auto P = buildPipelineEx(Kind, /*Workers=*/4, Config);
  if (!P) {
    std::fprintf(stderr, "failed to build %s: %s\n", workloadInfo(Kind).Name,
                 P.error().message().c_str());
    std::exit(1);
  }
  return P.take();
}

/// Median-of-N wall seconds of one action, after a warmup call. The
/// median absorbs one-sided CI load spikes that best-of turns into a
/// biased comparison (whichever variant ran during the quiet window
/// "wins").
template <typename Fn> double medianOf(unsigned Reps, Fn &&Action) {
  Action(); // Warmup: faults the pipeline stages and the page cache.
  std::vector<double> Samples;
  Samples.reserve(Reps);
  for (unsigned I = 0; I != Reps; ++I) {
    auto Start = Clock::now();
    Action();
    Samples.push_back(
        std::chrono::duration<double>(Clock::now() - Start).count());
  }
  std::sort(Samples.begin(), Samples.end());
  unsigned Mid = Reps / 2;
  return Reps % 2 ? Samples[Mid]
                  : (Samples[Mid - 1] + Samples[Mid]) / 2.0;
}

struct Row {
  const char *Name = nullptr;
  double MemorySec = 0;  ///< Plain record(), no storage engine.
  double SyncSec = 0;    ///< Streamed, compression inline.
  double AsyncSec = 0;   ///< Streamed, compression on the pool.
  uint64_t FileBytes = 0;
};

/// Pushes a fixed synthetic event stream through one LogWriter. The
/// feed itself is nearly free, so the measured wall time is the storage
/// engine's own critical path — framing plus however much compression
/// the pool does NOT absorb. This is where async vs. sync is visible
/// above simulation noise: end-to-end record times are dominated by the
/// machine, not the writer.
double timeWriterFeed(const std::string &Path, uint64_t Events,
                      support::ThreadPool *Pool) {
  replay::LogWriter::Options WO;
  WO.Pool = Pool;
  replay::LogWriter W(Path, WO);
  auto Start = Clock::now();
  W.onStart(/*NumSyncObjects=*/8, /*NumWeakLocks=*/64);
  // A plausible mix: weak-lock order entries scattered over many
  // objects, with full-entropy input values every fourth event — about
  // what a real log's compressibility looks like, so lzCompress does
  // real work instead of one long match.
  uint64_t Rng = 0x9e3779b97f4a7c15ull;
  for (uint64_t I = 0; I != Events; ++I) {
    Rng ^= Rng << 13;
    Rng ^= Rng >> 7;
    Rng ^= Rng << 17;
    uint32_t Tid = static_cast<uint32_t>(Rng & 3);
    if ((I & 3) == 0)
      W.onInput(Tid, rt::InputKind::Input, Rng);
    else
      W.onOrdered(static_cast<uint32_t>(10 + (Rng % 64)), Tid,
                  (Rng & 8) ? rt::OrderedOp::WeakRelease
                            : rt::OrderedOp::WeakAcquire);
  }
  W.onEnd(/*NumThreads=*/4, Events - Events / 4, Events / 4);
  if (auto E = W.finish()) {
    std::fprintf(stderr, "writer feed failed: %s\n", E.message().c_str());
    std::exit(1);
  }
  double Sec = std::chrono::duration<double>(Clock::now() - Start).count();
  std::remove(Path.c_str());
  return Sec;
}

} // namespace

int main() {
  const std::string Path = "bench_record_log.clg";
  std::vector<Row> Rows;

  std::printf("streamed record overhead, seed %llu (seconds, median of 5)\n\n",
              static_cast<unsigned long long>(BenchSeed));
  std::printf("%-10s %10s %10s %10s %8s %10s\n", "workload", "memory",
              "sync", "async", "async/s", "file KiB");
  hrule(64);

  for (WorkloadKind Kind : allWorkloads()) {
    Row R;
    R.Name = workloadInfo(Kind).Name;

    // One pipeline per compression mode; the analyses are warmed by the
    // medianOf warmup run so only record wall time is measured.
    auto Sync = pipelineWithJobs(Kind, /*Jobs=*/1);
    auto Async = pipelineWithJobs(Kind, /*Jobs=*/4);

    R.MemorySec = medianOf(5, [&] { requireOk(Sync->record(BenchSeed),
                                            "record"); });
    R.SyncSec = medianOf(5, [&] {
      auto Res = Sync->recordStreamed(Path, BenchSeed);
      if (!Res) {
        std::fprintf(stderr, "sync recordStreamed failed: %s\n",
                     Res.error().message().c_str());
        std::exit(1);
      }
    });
    R.AsyncSec = medianOf(5, [&] {
      auto Res = Async->recordStreamed(Path, BenchSeed);
      if (!Res) {
        std::fprintf(stderr, "async recordStreamed failed: %s\n",
                     Res.error().message().c_str());
        std::exit(1);
      }
    });

    if (FILE *F = std::fopen(Path.c_str(), "rb")) {
      std::fseek(F, 0, SEEK_END);
      R.FileBytes = static_cast<uint64_t>(std::ftell(F));
      std::fclose(F);
    }
    std::remove(Path.c_str());

    std::printf("%-10s %10.4f %10.4f %10.4f %7.2fx %10.1f\n", R.Name,
                R.MemorySec, R.SyncSec, R.AsyncSec, R.AsyncSec / R.SyncSec,
                R.FileBytes / 1024.0);
    Rows.push_back(R);
  }

  std::vector<double> Ratios;
  for (const Row &R : Rows)
    Ratios.push_back(R.AsyncSec / R.SyncSec);
  double Geomean = geomean(Ratios);
  std::printf("\nend-to-end async/sync geomean %.3fx "
              "(simulation-dominated; see writer feed below)\n",
              Geomean);

  // The engine in isolation: a synthetic feed of 4M events (~12 MiB of
  // raw records), sync vs. a 4-worker pool.
  const uint64_t FeedEvents = 4'000'000;
  double FeedSync = medianOf(5, [&] { timeWriterFeed(Path, FeedEvents,
                                                   nullptr); });
  support::ThreadPool FeedPool(4);
  double FeedAsync =
      medianOf(5, [&] { timeWriterFeed(Path, FeedEvents, &FeedPool); });
  double FeedRatio = FeedAsync / FeedSync;
  // Noise bound for the reported regression verdict; see file comment.
  const double Tolerance = 0.05;
  bool Regression = FeedRatio > 1.0 + Tolerance;
  std::printf("writer feed, %llu events: sync %.4fs, async %.4fs "
              "(%.2fx on %u hardware threads, %s)\n",
              static_cast<unsigned long long>(FeedEvents), FeedSync,
              FeedAsync, FeedRatio, std::thread::hardware_concurrency(),
              Regression ? "async SLOWER (regression)" : "async <= sync");

  FILE *Json = std::fopen("BENCH_record_log.json", "w");
  if (!Json) {
    std::fprintf(stderr, "cannot write BENCH_record_log.json\n");
    return 1;
  }
  std::fprintf(Json, "{\n  \"seed\": %llu,\n  \"workloads\": [\n",
               static_cast<unsigned long long>(BenchSeed));
  for (size_t I = 0; I != Rows.size(); ++I) {
    const Row &R = Rows[I];
    std::fprintf(Json,
                 "    {\"name\": \"%s\", \"memory_seconds\": %.6f, "
                 "\"sync_seconds\": %.6f, \"async_seconds\": %.6f, "
                 "\"file_bytes\": %llu}%s\n",
                 R.Name, R.MemorySec, R.SyncSec, R.AsyncSec,
                 static_cast<unsigned long long>(R.FileBytes),
                 I + 1 == Rows.size() ? "" : ",");
  }
  std::fprintf(Json,
               "  ],\n  \"end_to_end_async_over_sync_geomean\": %.6f,\n"
               "  \"hardware_threads\": %u,\n"
               "  \"writer_feed_events\": %llu,\n"
               "  \"writer_feed_sync_seconds\": %.6f,\n"
               "  \"writer_feed_async_seconds\": %.6f,\n"
               "  \"tolerance\": %.2f,\n"
               "  \"regression\": %s\n}\n",
               Geomean, std::thread::hardware_concurrency(),
               static_cast<unsigned long long>(FeedEvents), FeedSync,
               FeedAsync, Tolerance, Regression ? "true" : "false");
  std::fclose(Json);
  std::printf("wrote BENCH_record_log.json\n");
  return 0;
}
