//===- bench/fig_lockorder.cpp - Lock-order certification economics --------===//
//
// What the static lock-order certificate buys at record time, per
// workload:
//
//   baseline   --lock-order=off: no analysis, weak-timeout polling at
//              the normal (held-gated) cadence;
//   polled     --lock-order=enforce with ForceWeakPolling: the plan is
//              certified but the poll cadence still runs — isolates
//              pure polling cost on a certified plan;
//   elided     --lock-order=enforce, certificate elides the cadence
//              (and the all-idle timeout rescue) entirely.
//
// Also reported: the lock-order analysis wall (certification + any
// enforce-repair rounds) and what it found. Emits BENCH_lockorder.json
// next to the binary. The invariant the lockorder test suite pins —
// elided and polled recordings are bit-identical — is re-checked here
// on every workload; the bench exits nonzero on a mismatch.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <chrono>

using namespace chimera;
using namespace chimera::bench;
using namespace chimera::workloads;

namespace {

using Clock = std::chrono::steady_clock;

double recordWall(core::ChimeraPipeline &P, rt::ExecutionResult &Out) {
  auto T0 = Clock::now();
  Out = P.record(BenchSeed);
  auto T1 = Clock::now();
  requireOk(Out, "record");
  return std::chrono::duration<double>(T1 - T0).count();
}

struct Row {
  const char *App = nullptr;
  double BaselineSec = 0;
  double PolledSec = 0;
  double ElidedSec = 0;
  double AnalysisUs = 0;
  uint64_t CyclesFound = 0;
  uint64_t LocksCoalesced = 0;
  uint64_t RepairRounds = 0;
};

} // namespace

int main() {
  std::printf("Lock-order certification: record wall per polling "
              "configuration (4 workers, timeout=1000)\n\n");
  std::printf("%-10s %10s %10s %10s %12s %7s %9s\n", "app", "baseline",
              "polled", "elided", "analysis_us", "cycles", "coalesced");
  hrule(74);

  std::vector<Row> Rows;
  bool AllIdentical = true;

  for (WorkloadKind K : allWorkloads()) {
    Row R;
    R.App = workloadInfo(K).Name;

    // Baseline: no lock-order analysis, normal polling cadence.
    core::PipelineConfig Base;
    Base.ProfileRuns = 5;
    Base.WeakLockTimeout = 1000;
    auto BP = buildPipelineEx(K, /*Workers=*/4, Base);
    if (!BP) {
      std::fprintf(stderr, "%s: %s\n", R.App, BP.error().message().c_str());
      return 1;
    }
    rt::ExecutionResult BaseRec;
    R.BaselineSec = recordWall(**BP, BaseRec);

    // Certified: one pipeline, polled and elided recordings.
    core::PipelineConfig Cert = Base;
    Cert.LockOrder = analysis::LockOrderMode::Enforce;
    Cert.Observability = obs::ObsMode::Full;
    auto CP = buildPipelineEx(K, /*Workers=*/4, Cert);
    if (!CP) {
      std::fprintf(stderr, "%s: %s\n", R.App, CP.error().message().c_str());
      return 1;
    }
    const instrument::InstrumentationPlan &Plan = (*CP)->plan();
    R.CyclesFound = Plan.Certificate.CyclesFound;
    R.LocksCoalesced = Plan.Certificate.CoalescedLocks;
    R.RepairRounds = Plan.Certificate.RepairRounds;
    auto Snap = (*CP)->metrics();
    if (Snap)
      R.AnalysisUs =
          static_cast<double>(Snap->value("pipeline.lockorder.wall_us"));

    (*CP)->setForceWeakPolling(true);
    rt::ExecutionResult Polled;
    R.PolledSec = recordWall(**CP, Polled);
    (*CP)->setForceWeakPolling(false);
    rt::ExecutionResult Elided;
    R.ElidedSec = recordWall(**CP, Elided);

    bool Identical = Elided.StateHash == Polled.StateHash &&
                     Elided.Output == Polled.Output &&
                     Elided.Stats.Revocations == 0 &&
                     Polled.Stats.Revocations == 0;
    AllIdentical = AllIdentical && Identical;

    std::printf("%-10s %9.3fs %9.3fs %9.3fs %12.0f %7llu %9llu%s\n", R.App,
                R.BaselineSec, R.PolledSec, R.ElidedSec, R.AnalysisUs,
                static_cast<unsigned long long>(R.CyclesFound),
                static_cast<unsigned long long>(R.LocksCoalesced),
                Identical ? "" : "  MISMATCH");
    Rows.push_back(R);
  }

  hrule(74);
  if (!AllIdentical) {
    std::fprintf(stderr,
                 "certificate violation: elided and polled recordings "
                 "differ (or revoked)\n");
    return 1;
  }
  std::printf("all elided recordings bit-identical to force-polled, "
              "zero revocations\n");

  FILE *Json = std::fopen("BENCH_lockorder.json", "w");
  if (!Json) {
    std::fprintf(stderr, "cannot write BENCH_lockorder.json\n");
    return 1;
  }
  std::fprintf(Json, "{\n  \"weak_lock_timeout\": 1000,\n  \"apps\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const Row &R = Rows[I];
    std::fprintf(Json,
                 "    {\"app\": \"%s\", \"baseline_seconds\": %.6f, "
                 "\"polled_seconds\": %.6f, \"elided_seconds\": %.6f, "
                 "\"analysis_wall_us\": %.0f, \"cycles_found\": %llu, "
                 "\"locks_coalesced\": %llu, \"repair_rounds\": %llu}%s\n",
                 R.App, R.BaselineSec, R.PolledSec, R.ElidedSec,
                 R.AnalysisUs,
                 static_cast<unsigned long long>(R.CyclesFound),
                 static_cast<unsigned long long>(R.LocksCoalesced),
                 static_cast<unsigned long long>(R.RepairRounds),
                 I + 1 == Rows.size() ? "" : ",");
  }
  std::fprintf(Json, "  ]\n}\n");
  std::fclose(Json);
  std::printf("wrote BENCH_lockorder.json\n");
  return 0;
}
