//===- bench/fig7_overhead_breakdown.cpp - Paper Figure 7 ------------------===//
//
// Reproduces Figure 7: the sources of recording overhead in the fully
// optimized configuration, split per weak-lock type into the logging /
// lock-operation CPU cost and the contention (stall) cost, plus the
// baseline DRF logging cost (inputs + original synchronization). All
// numbers are normalized to native execution time.
//
// The paper's findings to reproduce: loop-lock contention dominates for
// ocean and fft (imprecise bounds over-serialize); water pays in
// fine-grained lock CPU (its force loop contains a call, defeating the
// intra-procedural bounds analysis).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace chimera;
using namespace chimera::bench;
using namespace chimera::workloads;

int main() {
  std::printf("Figure 7: sources of recording overhead, normalized to "
              "native time (4 workers, all optimizations)\n\n");
  std::printf("%-10s | %9s | %9s %9s | %9s %9s | %9s %9s | %9s %9s | "
              "%7s\n",
              "app", "drf.log", "func.cpu", "func.wait", "loop.cpu",
              "loop.wait", "bb.cpu", "bb.wait", "instr.cpu", "instr.wait",
              "total");
  hrule(128);

  for (WorkloadKind K : allWorkloads()) {
    auto P = pipelineFor(K, /*Workers=*/4);
    auto Native = P->runOriginalNative(BenchSeed);
    requireOk(Native, "native");
    auto Rec = P->record(BenchSeed);
    requireOk(Rec, "record");

    const rt::RunStats &S = Rec.Stats;
    double Base = static_cast<double>(Native.Stats.MakespanCycles);

    // DRF logging: one log record per input and per original sync op.
    const rt::CostModel Costs; // Default model, same as the pipeline's.
    double DrfLog =
        static_cast<double>((S.Syscalls + S.SyncOps + S.OutputOps) *
                            Costs.LogEvent) /
        Base;

    auto Cpu = [&](ir::WeakLockGranularity G) {
      return static_cast<double>(S.WeakCpuCycles[unsigned(G)]) / Base;
    };
    auto Wait = [&](ir::WeakLockGranularity G) {
      // Stall time accrues per blocked thread; dividing by the worker
      // count approximates its critical-path share.
      return static_cast<double>(S.WeakWaitCycles[unsigned(G)]) / Base /
             4.0;
    };

    double Total = overheadOf(Rec, Native) - 1.0;
    std::printf("%-10s | %8.3fx | %8.3fx %8.3fx | %8.3fx %8.3fx | "
                "%8.3fx %8.3fx | %8.3fx %8.3fx | %6.2fx\n",
                workloadInfo(K).Name, DrfLog,
                Cpu(ir::WeakLockGranularity::Function),
                Wait(ir::WeakLockGranularity::Function),
                Cpu(ir::WeakLockGranularity::Loop),
                Wait(ir::WeakLockGranularity::Loop),
                Cpu(ir::WeakLockGranularity::BasicBlock),
                Wait(ir::WeakLockGranularity::BasicBlock),
                Cpu(ir::WeakLockGranularity::Instr),
                Wait(ir::WeakLockGranularity::Instr), Total);
  }

  hrule(128);
  std::printf("\ncolumns are additive contributions above native (cpu = "
              "lock ops + log appends; wait = contention stalls / "
              "workers); 'total' is measured record overhead minus 1\n");
  std::printf("paper reference: loop-lock contention dominates ocean and "
              "fft; water pays in fine-grained lock CPU\n");
  return 0;
}
