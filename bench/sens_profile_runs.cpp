//===- bench/sens_profile_runs.cpp - Paper §7.3 sensitivity study ----------===//
//
// Reproduces the profile-run sensitivity result (§7.3): the set of
// observed concurrent function pairs saturates after a small number of
// profile runs (the paper reports five for pfscan and three for water).
// We print the cumulative pair count per added run for the two
// function-lock-sensitive applications.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "codegen/CodeGen.h"
#include "profile/Profiler.h"
#include "runtime/Machine.h"

using namespace chimera;
using namespace chimera::bench;
using namespace chimera::workloads;

int main() {
  const unsigned MaxRuns = 20;

  std::printf("Profile-run sensitivity (paper §7.3): cumulative "
              "concurrent-function-pair count per profile run\n\n");

  for (WorkloadKind K : {WorkloadKind::Pfscan, WorkloadKind::Water}) {
    auto Compiled = compileMiniCEx(workloadSource(K, profileParams(K)),
                                   workloadInfo(K).Name);
    if (!Compiled) {
      std::fprintf(stderr, "compile failed: %s\n",
                   Compiled.error().message().c_str());
      return 1;
    }
    auto M = Compiled.take();

    profile::ProfileData Cumulative;
    std::printf("%-8s:", workloadInfo(K).Name);
    unsigned SaturatedAt = MaxRuns;
    size_t Prev = 0;
    for (unsigned Run = 1; Run <= MaxRuns; ++Run) {
      profile::ConcurrencyProfiler Prof;
      rt::MachineOptions MO;
      MO.Seed = 90000 + Run;
      const unsigned CoreVariants[] = {8, 2, 4, 8};
      MO.NumCores = CoreVariants[Run % 4];
      MO.Observer = &Prof;
      rt::Machine Machine(*M, MO);
      auto R = Machine.run();
      requireOk(R, "profile run");
      Cumulative.merge(Prof.finish());
      std::printf(" %3zu", Cumulative.numPairs());
      if (Cumulative.numPairs() != Prev)
        SaturatedAt = Run;
      Prev = Cumulative.numPairs();
    }
    std::printf("   (saturates after run %u)\n", SaturatedAt);
  }

  std::printf("\npaper reference: pairs saturate after ~5 runs (pfscan) "
              "and ~3 runs (water)\n");
  return 0;
}
