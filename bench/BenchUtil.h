//===- bench/BenchUtil.h - Shared benchmark harness helpers -----*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure reproduction binaries: pipeline
/// construction with consistent settings, simple fixed-width table
/// printing, and geometric means.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_BENCH_BENCHUTIL_H
#define CHIMERA_BENCH_BENCHUTIL_H

#include "replay/LogReader.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

namespace chimera {
namespace bench {

/// The seed every bench records with (arbitrary but fixed, so bench
/// output is reproducible run-to-run).
inline const uint64_t BenchSeed = 2012;

inline std::unique_ptr<core::ChimeraPipeline> pipelineFor(
    workloads::WorkloadKind Kind, unsigned Workers = 4) {
  auto P = workloads::buildPipelineEx(Kind, Workers);
  if (!P) {
    std::fprintf(stderr, "failed to build %s: %s\n",
                 workloads::workloadInfo(Kind).Name,
                 P.error().message().c_str());
    std::exit(1);
  }
  return P.take();
}

inline void requireOk(const rt::ExecutionResult &R, const char *What) {
  if (!R.Ok) {
    std::fprintf(stderr, "%s failed: %s\n", What, R.Error.c_str());
    std::exit(1);
  }
}

inline double overheadOf(const rt::ExecutionResult &Run,
                         const rt::ExecutionResult &Native) {
  return static_cast<double>(Run.Stats.MakespanCycles) /
         static_cast<double>(Native.Stats.MakespanCycles);
}

inline double geomean(const std::vector<double> &Values) {
  double LogSum = 0;
  for (double V : Values)
    LogSum += std::log(V);
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

inline void hrule(unsigned Width) {
  for (unsigned I = 0; I != Width; ++I)
    std::putchar('-');
  std::putchar('\n');
}

//===----------------------------------------------------------------------===//
// Epoch-parallel replay jobs sweep
//===----------------------------------------------------------------------===//

/// One job count's worth of a replay-jobs sweep.
struct ReplayJobsPoint {
  unsigned Jobs = 1;
  unsigned Epochs = 1;
  double WallSeconds = 0; ///< Measured end-to-end wall clock.
  /// Longest single epoch's replay time — the wall clock a host with
  /// >= Jobs free cores pays, since epochs are independent.
  double CriticalPathSeconds = 0;
  double ProjectedSpeedup = 1; ///< Sequential wall / critical path.
  bool BitIdentical = false;   ///< Same StateHash + output as sequential.
  bool FellBack = false;       ///< Parallel path bailed to sequential.
};

/// Sequential baseline plus one point per requested job count.
struct ReplayJobsSweep {
  double SequentialSeconds = 0; ///< jobs=1 wall, re-measured per sweep.
  std::vector<ReplayJobsPoint> Points;
};

/// Records \p P once through the streaming engine, then replays the file
/// at each job count in \p JobCounts, checking every result bit-identical
/// against the jobs=1 replay of the same bytes. Both the measured wall
/// and the critical-path projection are reported: on a machine with
/// fewer free cores than jobs the measured number understates the win,
/// the projection (sequential / slowest epoch) is hardware-independent.
inline ReplayJobsSweep replayJobsSweep(core::ChimeraPipeline &P,
                                       const std::string &Name,
                                       const std::vector<unsigned> &JobCounts) {
  std::string Path = "/tmp/chimera_bench_" + Name + ".clg";
  auto Rec = P.recordStreamed(Path, BenchSeed);
  if (!Rec) {
    std::fprintf(stderr, "%s: recordStreamed failed: %s\n", Name.c_str(),
                 Rec.error().message().c_str());
    std::exit(1);
  }
  requireOk(*Rec, "record");
  std::vector<uint8_t> Bytes;
  {
    std::ifstream In(Path, std::ios::binary);
    Bytes.assign(std::istreambuf_iterator<char>(In),
                 std::istreambuf_iterator<char>());
  }
  std::remove(Path.c_str());

  auto OpenReader = [&Bytes]() {
    auto R = replay::LogReader::open(Bytes, replay::LogReader::Options());
    if (!R) {
      std::fprintf(stderr, "LogReader::open failed: %s\n",
                   R.error().message().c_str());
      std::exit(1);
    }
    return R.take();
  };
  using Clock = std::chrono::steady_clock;
  auto Seconds = [](Clock::time_point A, Clock::time_point B) {
    return std::chrono::duration<double>(B - A).count();
  };

  ReplayJobsSweep Sweep;
  replay::ParallelReplayer::Result Seq;
  {
    auto Reader = OpenReader();
    auto T0 = Clock::now();
    Seq = P.replayParallel(Reader, 1);
    Sweep.SequentialSeconds = Seconds(T0, Clock::now());
  }
  requireOk(Seq.Exec, "sequential replay");

  for (unsigned Jobs : JobCounts) {
    auto Reader = OpenReader();
    auto T0 = Clock::now();
    auto Res = P.replayParallel(Reader, Jobs);
    double Wall = Seconds(T0, Clock::now());
    requireOk(Res.Exec, "parallel replay");

    ReplayJobsPoint Pt;
    Pt.Jobs = Jobs;
    Pt.Epochs = Res.Epochs;
    Pt.WallSeconds = Wall;
    uint64_t MaxUs = 0;
    for (uint64_t Us : Res.EpochWallUs)
      MaxUs = std::max(MaxUs, Us);
    Pt.CriticalPathSeconds =
        Res.EpochWallUs.empty() ? Wall : double(MaxUs) / 1e6;
    Pt.ProjectedSpeedup = Pt.CriticalPathSeconds > 0
                              ? Sweep.SequentialSeconds / Pt.CriticalPathSeconds
                              : 1.0;
    Pt.BitIdentical = Res.Exec.StateHash == Seq.Exec.StateHash &&
                      Res.Exec.Output == Seq.Exec.Output &&
                      Res.Exec.Ok == Seq.Exec.Ok;
    Pt.FellBack = Res.FellBackSequential;
    if (!Pt.BitIdentical) {
      std::fprintf(stderr, "%s: jobs=%u replay diverged from sequential\n",
                   Name.c_str(), Jobs);
      std::exit(1);
    }
    Sweep.Points.push_back(Pt);
  }
  return Sweep;
}

} // namespace bench
} // namespace chimera

#endif // CHIMERA_BENCH_BENCHUTIL_H
