//===- bench/BenchUtil.h - Shared benchmark harness helpers -----*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure reproduction binaries: pipeline
/// construction with consistent settings, simple fixed-width table
/// printing, and geometric means.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_BENCH_BENCHUTIL_H
#define CHIMERA_BENCH_BENCHUTIL_H

#include "workloads/Workloads.h"

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace chimera {
namespace bench {

/// The seed every bench records with (arbitrary but fixed, so bench
/// output is reproducible run-to-run).
inline const uint64_t BenchSeed = 2012;

inline std::unique_ptr<core::ChimeraPipeline> pipelineFor(
    workloads::WorkloadKind Kind, unsigned Workers = 4) {
  auto P = workloads::buildPipelineEx(Kind, Workers);
  if (!P) {
    std::fprintf(stderr, "failed to build %s: %s\n",
                 workloads::workloadInfo(Kind).Name,
                 P.error().message().c_str());
    std::exit(1);
  }
  return P.take();
}

inline void requireOk(const rt::ExecutionResult &R, const char *What) {
  if (!R.Ok) {
    std::fprintf(stderr, "%s failed: %s\n", What, R.Error.c_str());
    std::exit(1);
  }
}

inline double overheadOf(const rt::ExecutionResult &Run,
                         const rt::ExecutionResult &Native) {
  return static_cast<double>(Run.Stats.MakespanCycles) /
         static_cast<double>(Native.Stats.MakespanCycles);
}

inline double geomean(const std::vector<double> &Values) {
  double LogSum = 0;
  for (double V : Values)
    LogSum += std::log(V);
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

inline void hrule(unsigned Width) {
  for (unsigned I = 0; I != Width; ++I)
    std::putchar('-');
  std::putchar('\n');
}

} // namespace bench
} // namespace chimera

#endif // CHIMERA_BENCH_BENCHUTIL_H
