//===- bench/micro_parallel_analysis.cpp - Analysis scalability ------------===//
//
// Measures the parallel analysis engine: wall-clock time of the two
// pool-driven stages (profiling and RELAY summary composition) on the
// largest workload at 1, 2, 4, and 8 analysis jobs, with the summary
// cache disabled so every configuration does the same work. A separate
// pair of runs measures the cache itself (cold vs. warm rebuild).
//
// Emits BENCH_parallel_analysis.json next to the binary.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "race/SummaryCache.h"

#include <chrono>
#include <thread>

using namespace chimera;
using namespace chimera::bench;
using namespace chimera::workloads;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

std::unique_ptr<core::ChimeraPipeline> pipelineWithJobs(WorkloadKind Kind,
                                                        unsigned Jobs,
                                                        bool UseCache) {
  core::PipelineConfig Config;
  Config.AnalysisJobs = Jobs;
  Config.UseSummaryCache = UseCache;
  auto P = buildPipelineEx(Kind, /*Workers=*/4, Config);
  if (!P) {
    std::fprintf(stderr, "failed to build %s: %s\n",
                 workloadInfo(Kind).Name, P.error().message().c_str());
    std::exit(1);
  }
  return P.take();
}

/// Profiling + RELAY with a fresh pipeline; returns elapsed seconds.
double timeAnalyses(WorkloadKind Kind, unsigned Jobs, bool UseCache) {
  auto P = pipelineWithJobs(Kind, Jobs, UseCache);
  auto Start = Clock::now();
  (void)P->profileData();
  (void)P->raceReport();
  return secondsSince(Start);
}

WorkloadKind largestWorkload() {
  WorkloadKind Best = allWorkloads().front();
  for (WorkloadKind K : allWorkloads())
    if (workloadLineCount(K) > workloadLineCount(Best))
      Best = K;
  return Best;
}

} // namespace

int main() {
  const WorkloadKind Kind = largestWorkload();
  const unsigned HwThreads = std::thread::hardware_concurrency();
  const unsigned JobCounts[] = {1, 2, 4, 8};

  std::printf("parallel analysis scaling on %s (%u lines, %u hardware "
              "threads)\n\n",
              workloadInfo(Kind).Name, workloadLineCount(Kind), HwThreads);
  std::printf("%-8s %12s %10s\n", "jobs", "seconds", "speedup");
  hrule(32);

  double Times[4] = {};
  for (unsigned I = 0; I != 4; ++I) {
    // Warm one throwaway run, then take the best of three.
    (void)timeAnalyses(Kind, JobCounts[I], /*UseCache=*/false);
    double Best = 1e100;
    for (int Rep = 0; Rep != 3; ++Rep)
      Best = std::min(Best,
                      timeAnalyses(Kind, JobCounts[I], /*UseCache=*/false));
    Times[I] = Best;
    std::printf("%-8u %12.4f %9.2fx\n", JobCounts[I], Best,
                Times[0] / Best);
  }

  // The summary cache, measured apart from thread scaling: a cold
  // single-job analysis populates it, an identical rebuild replays it.
  race::SummaryCache::global().clear();
  double Cold = timeAnalyses(Kind, 1, /*UseCache=*/true);
  double Warm = timeAnalyses(Kind, 1, /*UseCache=*/true);
  chimera::obs::Registry CacheReg;
  race::SummaryCache::global().publishTo(
      chimera::obs::Scope(&CacheReg, "cache"));
  chimera::obs::Snapshot CacheStats = CacheReg.snapshot();
  std::printf("\nsummary cache: cold %.4fs, warm rebuild %.4fs "
              "(%.2fx; %lld entries, %lld hits)\n",
              Cold, Warm, Cold / Warm,
              static_cast<long long>(CacheStats.value("cache.entries", 0)),
              static_cast<long long>(CacheStats.value("cache.hits", 0)));

  FILE *Json = std::fopen("BENCH_parallel_analysis.json", "w");
  if (!Json) {
    std::fprintf(stderr, "cannot write BENCH_parallel_analysis.json\n");
    return 1;
  }
  std::fprintf(Json,
               "{\n"
               "  \"workload\": \"%s\",\n"
               "  \"hardware_threads\": %u,\n"
               "  \"seconds_by_jobs\": {\"1\": %.6f, \"2\": %.6f, "
               "\"4\": %.6f, \"8\": %.6f},\n"
               "  \"speedup_jobs8\": %.4f,\n"
               "  \"cache_cold_seconds\": %.6f,\n"
               "  \"cache_warm_seconds\": %.6f,\n"
               "  \"cache_entries\": %llu\n"
               "}\n",
               workloadInfo(Kind).Name, HwThreads, Times[0], Times[1],
               Times[2], Times[3], Times[0] / Times[3], Cold, Warm,
               static_cast<unsigned long long>(
                   CacheStats.value("cache.entries", 0)));
  std::fclose(Json);
  std::printf("\nwrote BENCH_parallel_analysis.json\n");
  return 0;
}
