//===- bench/fig_service.cpp - Multi-session service economics -------------===//
//
// What the service layer (ISSUE 9) buys over one-shot pipelines, on the
// nine Table-1 workloads:
//
//   sequential   `repeat` fully cold one-shot runs per workload (the
//                process summary cache cleared before each, no artifact
//                cache): build -> plan -> record -> replay;
//   batch        the same requests as concurrent sessions on one
//                SessionManager sharing a persistent ArtifactCache and
//                the process summary cache — the repeat runs amortize
//                the whole analysis chain through the caches;
//   warm         the batch's cache serialized and reloaded into a fresh
//                cache (a simulated process restart): per-workload
//                analysis (plan) wall, cold vs. warm.
//
// Every session is checked bit-identical to its one-shot reference
// (plan fingerprint, record/replay state hashes, encoded log), and a
// deliberately broken request is batched alongside two good ones to
// demonstrate failure isolation. Emits BENCH_service.json; exits
// nonzero if batch fails to beat sequential, any artifact differs, the
// warm start fails to cut analysis wall, or the fault leaks.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "race/SummaryCache.h"
#include "replay/LogCodec.h"
#include "service/SessionManager.h"

#include <chrono>
#include <map>

using namespace chimera;
using namespace chimera::bench;
using namespace chimera::service;
using namespace chimera::workloads;

namespace {

using Clock = std::chrono::steady_clock;

constexpr unsigned Repeat = 2;
constexpr unsigned Workers = 4;
constexpr unsigned Sessions = 2;

double seconds(Clock::time_point A, Clock::time_point B) {
  return std::chrono::duration<double>(B - A).count();
}

/// The bench's request for one workload (smaller profiling than the
/// paper setup so the 18-run sweep stays tractable).
core::PipelineRequest requestFor(WorkloadKind K) {
  core::PipelineRequest R = pipelineRequest(K, Workers);
  R.Config.ProfileRuns = 5;
  return R;
}

struct Reference {
  double OneShotSec = 0; ///< First (cold) one-shot wall.
  uint64_t PlanFp = 0;
  uint64_t StateHash = 0;
  std::vector<uint8_t> LogBytes;
};

} // namespace

int main() {
  std::printf("Multi-session service: %u workloads x repeat %u, "
              "%u concurrent sessions\n\n",
              static_cast<unsigned>(allWorkloads().size()), Repeat,
              Sessions);

  // -- Sequential baseline: every run fully cold. ---------------------------
  std::map<std::string, Reference> Ref;
  auto SeqT0 = Clock::now();
  for (unsigned Rep = 0; Rep < Repeat; ++Rep)
    for (WorkloadKind K : allWorkloads()) {
      race::SummaryCache::global().clear();
      auto RunT0 = Clock::now();
      auto P = core::ChimeraPipeline::create(requestFor(K));
      if (!P) {
        std::fprintf(stderr, "%s\n", P.error().message().c_str());
        return 1;
      }
      uint64_t Fp = instrument::planFingerprint((*P)->plan());
      rt::ExecutionResult Rec = (*P)->record(BenchSeed);
      requireOk(Rec, "record");
      rt::ExecutionResult Rep2 = (*P)->replay(Rec.Log);
      requireOk(Rep2, "replay");
      if (Rep2.StateHash != Rec.StateHash) {
        std::fprintf(stderr, "one-shot replay diverged\n");
        return 1;
      }
      if (Rep == 0) {
        Reference &R = Ref[workloadInfo(K).Name];
        R.OneShotSec = seconds(RunT0, Clock::now());
        R.PlanFp = Fp;
        R.StateHash = Rec.StateHash;
        R.LogBytes = replay::encodeLog(Rec.Log);
      }
    }
  double SeqWall = seconds(SeqT0, Clock::now());

  // -- Batch: same requests, concurrent sessions, shared caches. ------------
  race::SummaryCache::global().clear();
  ArtifactCache Cache;
  obs::Registry Metrics;
  double BatchWall = 0;
  bool AllIdentical = true;
  std::map<std::string, std::vector<double>> SessionWalls;
  {
    SessionManager::Options MO;
    MO.Concurrency = Sessions;
    MO.Artifacts = &Cache;
    MO.Metrics = &Metrics;
    auto BatchT0 = Clock::now();
    SessionManager M(MO);
    SessionOptions SO;
    SO.Seed = BenchSeed;
    for (unsigned Rep = 0; Rep < Repeat; ++Rep)
      for (WorkloadKind K : allWorkloads())
        if (auto Id = M.submit(requestFor(K), SO); !Id) {
          std::fprintf(stderr, "%s\n", Id.error().message().c_str());
          return 1;
        }
    std::vector<SessionResult> Results = M.drainAll();
    M.shutdown();
    BatchWall = seconds(BatchT0, Clock::now());

    for (const SessionResult &R : Results) {
      if (!R.Ok) {
        std::fprintf(stderr, "session %s failed: %s\n", R.Tag.c_str(),
                     R.Error.c_str());
        return 1;
      }
      const Reference &Want = Ref[R.Tag];
      bool Identical = R.PlanFingerprint == Want.PlanFp &&
                       R.RecordStateHash == Want.StateHash &&
                       R.ReplayStateHash == Want.StateHash &&
                       R.LogBytes == Want.LogBytes;
      if (!Identical)
        std::fprintf(stderr, "session %s NOT bit-identical to one-shot\n",
                     R.Tag.c_str());
      AllIdentical = AllIdentical && Identical;
      SessionWalls[R.Tag].push_back(double(R.WallUs) / 1e6);
    }
  }
  exportSummaries(race::SummaryCache::global(), Cache);

  std::printf("%-10s %12s %14s %14s\n", "app", "oneshot", "session-r1",
              "session-r2");
  hrule(54);
  for (WorkloadKind K : allWorkloads()) {
    const char *Name = workloadInfo(K).Name;
    const std::vector<double> &W = SessionWalls[Name];
    std::printf("%-10s %11.3fs %13.3fs %13.3fs\n", Name,
                Ref[Name].OneShotSec, W.empty() ? 0 : W[0],
                W.size() < 2 ? 0 : W[1]);
  }
  hrule(54);
  std::printf("sequential %.3fs   batch %.3fs   speedup %.2fx   %s\n\n",
              SeqWall, BatchWall, SeqWall / BatchWall,
              AllIdentical ? "all bit-identical" : "MISMATCH");

  // -- Warm restart: reload the persisted image, re-plan every workload. ----
  double ColdAnalysis = 0, WarmAnalysis = 0;
  for (WorkloadKind K : allWorkloads()) {
    race::SummaryCache::global().clear();
    auto P = core::ChimeraPipeline::create(requestFor(K));
    if (!P) {
      std::fprintf(stderr, "%s\n", P.error().message().c_str());
      return 1;
    }
    auto T0 = Clock::now();
    (*P)->plan();
    ColdAnalysis += seconds(T0, Clock::now());
  }
  ArtifactCache Restarted;
  if (auto N = Restarted.loadBytes(Cache.serialize()); !N) {
    std::fprintf(stderr, "%s\n", N.error().message().c_str());
    return 1;
  }
  race::SummaryCache::global().clear();
  importSummaries(Restarted, race::SummaryCache::global());
  bool WarmIdentical = true;
  for (WorkloadKind K : allWorkloads()) {
    core::PipelineRequest R = requestFor(K);
    R.Config.Artifacts = &Restarted;
    auto P = core::ChimeraPipeline::create(std::move(R));
    if (!P) {
      std::fprintf(stderr, "%s\n", P.error().message().c_str());
      return 1;
    }
    auto T0 = Clock::now();
    uint64_t Fp = instrument::planFingerprint((*P)->plan());
    WarmAnalysis += seconds(T0, Clock::now());
    WarmIdentical =
        WarmIdentical && Fp == Ref[workloadInfo(K).Name].PlanFp;
  }
  std::printf("analysis wall, all workloads: cold %.3fs, warm restart "
              "%.3fs (%.1fx)%s\n",
              ColdAnalysis, WarmAnalysis, ColdAnalysis / WarmAnalysis,
              WarmIdentical ? "" : "  PLAN MISMATCH");

  // -- Failure isolation: one broken request among good sessions. -----------
  bool FaultIsolated = true;
  {
    SessionManager::Options MO;
    MO.Concurrency = Sessions;
    MO.Artifacts = &Cache;
    SessionManager M(MO);
    SessionOptions SO;
    SO.Seed = BenchSeed;
    core::PipelineRequest Broken;
    Broken.Eval = "int main(";
    Broken.Tag = "broken";
    auto G1 = M.submit(requestFor(WorkloadKind::Aget), SO);
    auto B = M.submit(std::move(Broken), SO);
    auto G2 = M.submit(requestFor(WorkloadKind::Pfscan), SO);
    if (!G1 || !B || !G2) {
      std::fprintf(stderr, "fault-isolation submit failed\n");
      return 1;
    }
    SessionResult RB = M.wait(*B);
    FaultIsolated = FaultIsolated && !RB.Ok && !RB.Error.empty();
    for (auto [Id, Name] : {std::pair<uint64_t, const char *>{*G1, "aget"},
                            {*G2, "pfscan"}}) {
      SessionResult R = M.wait(Id);
      FaultIsolated = FaultIsolated && R.Ok &&
                      R.RecordStateHash == Ref[Name].StateHash &&
                      R.LogBytes == Ref[Name].LogBytes;
    }
  }
  std::printf("failure isolation: %s\n",
              FaultIsolated ? "broken session contained, siblings "
                              "bit-identical"
                            : "FAULT LEAKED");

  // -- Report. --------------------------------------------------------------
  FILE *Json = std::fopen("BENCH_service.json", "w");
  if (!Json) {
    std::fprintf(stderr, "cannot write BENCH_service.json\n");
    return 1;
  }
  std::fprintf(Json,
               "{\n  \"sessions\": %u,\n  \"repeat\": %u,\n"
               "  \"sequential_seconds\": %.6f,\n"
               "  \"batch_seconds\": %.6f,\n  \"speedup\": %.3f,\n"
               "  \"cold_analysis_seconds\": %.6f,\n"
               "  \"warm_analysis_seconds\": %.6f,\n"
               "  \"warm_speedup\": %.3f,\n"
               "  \"cache_entries\": %zu,\n"
               "  \"all_bit_identical\": %s,\n"
               "  \"fault_isolated\": %s,\n  \"apps\": [\n",
               Sessions, Repeat, SeqWall, BatchWall, SeqWall / BatchWall,
               ColdAnalysis, WarmAnalysis, ColdAnalysis / WarmAnalysis,
               Cache.entryCount(), AllIdentical ? "true" : "false",
               FaultIsolated ? "true" : "false");
  size_t I = 0;
  for (WorkloadKind K : allWorkloads()) {
    const char *Name = workloadInfo(K).Name;
    const std::vector<double> &W = SessionWalls[Name];
    std::fprintf(Json,
                 "    {\"app\": \"%s\", \"oneshot_seconds\": %.6f, "
                 "\"session_seconds\": [%.6f, %.6f]}%s\n",
                 Name, Ref[Name].OneShotSec, W.empty() ? 0 : W[0],
                 W.size() < 2 ? 0 : W[1],
                 ++I == allWorkloads().size() ? "" : ",");
  }
  std::fprintf(Json, "  ]\n}\n");
  std::fclose(Json);
  std::printf("wrote BENCH_service.json\n");

  if (!AllIdentical || !WarmIdentical || !FaultIsolated)
    return 1;
  if (BatchWall >= SeqWall) {
    std::fprintf(stderr, "batch (%.3fs) failed to beat sequential "
                         "(%.3fs)\n",
                 BatchWall, SeqWall);
    return 1;
  }
  if (WarmAnalysis >= ColdAnalysis) {
    std::fprintf(stderr, "warm restart failed to cut analysis wall\n");
    return 1;
  }
  return 0;
}
