//===- bench/fig8_scalability.cpp - Paper Figure 8 -------------------------===//
//
// Reproduces Figure 8: recording overhead at 2, 4, and 8 worker threads
// (8 simulated cores throughout, like the paper's 8-core Xeon). The
// shape to reproduce: I/O-bound applications stay flat near 1.0x, while
// contention-bound scientific applications degrade as workers multiply
// conflicts on loop-locks.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace chimera;
using namespace chimera::bench;
using namespace chimera::workloads;

int main() {
  const unsigned WorkerCounts[] = {2, 4, 8};

  std::printf("Figure 8: recording overhead vs worker count "
              "(8 simulated cores)\n\n");
  std::printf("%-10s %12s %12s %12s\n", "app", "2 workers", "4 workers",
              "8 workers");
  hrule(52);

  std::vector<std::vector<double>> PerCount(3);

  for (WorkloadKind K : allWorkloads()) {
    std::printf("%-10s", workloadInfo(K).Name);
    for (unsigned C = 0; C != 3; ++C) {
      // Worker count is a program parameter, so each count is its own
      // pipeline (profiling transfers across counts by design).
      auto P = pipelineFor(K, WorkerCounts[C]);
      auto Native = P->runOriginalNative(BenchSeed);
      requireOk(Native, "native");
      auto Rec = P->record(BenchSeed);
      requireOk(Rec, "record");
      double Ov = overheadOf(Rec, Native);
      PerCount[C].push_back(Ov);
      std::printf("  %10.2fx", Ov);
    }
    std::printf("\n");
  }

  hrule(52);
  std::printf("%-10s", "geomean");
  for (unsigned C = 0; C != 3; ++C)
    std::printf("  %10.2fx", geomean(PerCount[C]));
  std::printf("\n\npaper reference: overhead grows with thread count for "
              "loop-lock-contended scientific applications; "
              "desktop/server stay near 1.0x\n");

  // -- Epoch-parallel replay scalability ---------------------------------
  // Records each app through the streaming engine, then replays the
  // file at 1/2/4/8 jobs. Every parallel result is verified
  // bit-identical to sequential before being reported. The projection
  // column (sequential wall / slowest epoch) is what a host with that
  // many free cores pays; the measured wall column is bounded by this
  // machine's core count.
  const WorkloadKind ReplayApps[] = {WorkloadKind::Aget, WorkloadKind::Pfscan,
                                     WorkloadKind::Ocean};
  const std::vector<unsigned> JobCounts = {1, 2, 4, 8};

  std::printf("\nEpoch-parallel replay: projected speedup vs jobs "
              "(sequential wall / slowest epoch)\n\n");
  std::printf("%-10s %10s", "app", "seq wall");
  for (unsigned J : JobCounts)
    std::printf("  %7u jobs", J);
  std::printf("  %8s\n", "epochs@8");
  hrule(76);

  struct AppSweep {
    const char *Name;
    ReplayJobsSweep Sweep;
  };
  std::vector<AppSweep> Sweeps;

  for (WorkloadKind K : ReplayApps) {
    core::PipelineConfig Config;
    // Dense enough for 8 epochs even on loop-lock-heavy apps, whose
    // logs carry few events per instruction (ocean logs ~100x fewer
    // events than aget for more replay work).
    Config.CheckpointEvery = 64;
    auto P = buildPipelineEx(K, /*Workers=*/4, Config);
    if (!P) {
      std::fprintf(stderr, "failed to build %s: %s\n", workloadInfo(K).Name,
                   P.error().message().c_str());
      return 1;
    }
    ReplayJobsSweep Sweep =
        replayJobsSweep(**P, workloadInfo(K).Name, JobCounts);
    std::printf("%-10s %9.3fs", workloadInfo(K).Name,
                Sweep.SequentialSeconds);
    for (const ReplayJobsPoint &Pt : Sweep.Points)
      std::printf("  %10.2fx", Pt.ProjectedSpeedup);
    std::printf("  %8u\n", Sweep.Points.back().Epochs);
    Sweeps.push_back({workloadInfo(K).Name, std::move(Sweep)});
  }
  hrule(76);
  std::printf("all parallel replays verified bit-identical to "
              "sequential\n");

  FILE *Json = std::fopen("BENCH_replay_parallel.json", "w");
  if (!Json) {
    std::fprintf(stderr, "cannot write BENCH_replay_parallel.json\n");
    return 1;
  }
  std::fprintf(Json, "{\n  \"job_counts\": [1, 2, 4, 8],\n  \"apps\": [\n");
  for (size_t A = 0; A != Sweeps.size(); ++A) {
    const AppSweep &S = Sweeps[A];
    std::fprintf(Json,
                 "    {\"app\": \"%s\", \"sequential_seconds\": %.6f,\n"
                 "     \"points\": [\n",
                 S.Name, S.Sweep.SequentialSeconds);
    for (size_t I = 0; I != S.Sweep.Points.size(); ++I) {
      const ReplayJobsPoint &Pt = S.Sweep.Points[I];
      std::fprintf(Json,
                   "      {\"jobs\": %u, \"epochs\": %u, "
                   "\"sequential_seconds\": %.6f, "
                   "\"wall_seconds\": %.6f, "
                   "\"critical_path_seconds\": %.6f, "
                   "\"projected_speedup\": %.4f, "
                   "\"bit_identical\": %s, \"fell_back\": %s}%s\n",
                   Pt.Jobs, Pt.Epochs, S.Sweep.SequentialSeconds,
                   Pt.WallSeconds, Pt.CriticalPathSeconds,
                   Pt.ProjectedSpeedup, Pt.BitIdentical ? "true" : "false",
                   Pt.FellBack ? "true" : "false",
                   I + 1 == S.Sweep.Points.size() ? "" : ",");
    }
    std::fprintf(Json, "     ]}%s\n", A + 1 == Sweeps.size() ? "" : ",");
  }
  std::fprintf(Json, "  ]\n}\n");
  std::fclose(Json);
  std::printf("wrote BENCH_replay_parallel.json\n");
  return 0;
}
