//===- bench/fig8_scalability.cpp - Paper Figure 8 -------------------------===//
//
// Reproduces Figure 8: recording overhead at 2, 4, and 8 worker threads
// (8 simulated cores throughout, like the paper's 8-core Xeon). The
// shape to reproduce: I/O-bound applications stay flat near 1.0x, while
// contention-bound scientific applications degrade as workers multiply
// conflicts on loop-locks.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace chimera;
using namespace chimera::bench;
using namespace chimera::workloads;

int main() {
  const unsigned WorkerCounts[] = {2, 4, 8};

  std::printf("Figure 8: recording overhead vs worker count "
              "(8 simulated cores)\n\n");
  std::printf("%-10s %12s %12s %12s\n", "app", "2 workers", "4 workers",
              "8 workers");
  hrule(52);

  std::vector<std::vector<double>> PerCount(3);

  for (WorkloadKind K : allWorkloads()) {
    std::printf("%-10s", workloadInfo(K).Name);
    for (unsigned C = 0; C != 3; ++C) {
      // Worker count is a program parameter, so each count is its own
      // pipeline (profiling transfers across counts by design).
      auto P = pipelineFor(K, WorkerCounts[C]);
      auto Native = P->runOriginalNative(BenchSeed);
      requireOk(Native, "native");
      auto Rec = P->record(BenchSeed);
      requireOk(Rec, "record");
      double Ov = overheadOf(Rec, Native);
      PerCount[C].push_back(Ov);
      std::printf("  %10.2fx", Ov);
    }
    std::printf("\n");
  }

  hrule(52);
  std::printf("%-10s", "geomean");
  for (unsigned C = 0; C != 3; ++C)
    std::printf("  %10.2fx", geomean(PerCount[C]));
  std::printf("\n\npaper reference: overhead grows with thread count for "
              "loop-lock-contended scientific applications; "
              "desktop/server stay near 1.0x\n");
  return 0;
}
