//===- bench/fig5_optimizations.cpp - Paper Figure 5 -----------------------===//
//
// Reproduces Figure 5: normalized recording overhead under the four
// instrumentation configurations — "instr" (every potential race
// guarded at instruction granularity), "inst+func" (profile-driven
// function-locks added), "inst+loop" (symbolic-bounds loop-locks added),
// and "inst+bb+loop+func" (everything, the shipping configuration).
//
// The paper's headline: naive 53x average drops to 1.39x with all
// optimizations. Absolute factors differ on our simulated substrate;
// the ordering and the per-application rescuer (function-locks for
// pfscan/water, loop-locks for apache/ocean/fft/radix) should hold.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace chimera;
using namespace chimera::bench;
using namespace chimera::workloads;
using instrument::PlannerOptions;

int main() {
  struct Config {
    const char *Name;
    PlannerOptions Opts;
  };
  const Config Configs[] = {
      {"instr", PlannerOptions::naive()},
      {"inst+func", PlannerOptions::functionOnly()},
      {"inst+loop", PlannerOptions::loopOnly()},
      {"inst+bb+loop+func", PlannerOptions::full()},
  };

  std::printf("Figure 5: normalized recording overhead per "
              "instrumentation configuration (4 workers)\n\n");
  std::printf("%-10s %12s %12s %12s %18s\n", "app", "instr", "inst+func",
              "inst+loop", "inst+bb+loop+func");
  hrule(70);

  std::vector<std::vector<double>> PerConfig(4);

  for (WorkloadKind K : allWorkloads()) {
    auto P = pipelineFor(K, /*Workers=*/4);
    auto Native = P->runOriginalNative(BenchSeed);
    requireOk(Native, "native");

    std::printf("%-10s", workloadInfo(K).Name);
    for (unsigned C = 0; C != 4; ++C) {
      P->setPlannerOptions(Configs[C].Opts);
      auto Rec = P->record(BenchSeed);
      requireOk(Rec, Configs[C].Name);
      double Ov = overheadOf(Rec, Native);
      PerConfig[C].push_back(Ov);
      std::printf("  %*.2fx", C == 3 ? 16 : 10, Ov);
    }
    std::printf("\n");
  }

  hrule(70);
  std::printf("%-10s", "geomean");
  for (unsigned C = 0; C != 4; ++C)
    std::printf("  %*.2fx", C == 3 ? 16 : 10, geomean(PerConfig[C]));
  std::printf("\n\npaper reference: instr 53x -> inst+func 27x -> "
              "inst+loop 33x -> all 1.39x (average)\n");
  return 0;
}
