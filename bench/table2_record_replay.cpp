//===- bench/table2_record_replay.cpp - Paper Table 2 ----------------------===//
//
// Reproduces Table 2: per application, the DRF log volume (syscalls +
// original synchronization), weak-lock log counts by granularity, record
// and replay overheads (all optimizations enabled, 4 worker threads),
// and compressed log sizes. Every replay is verified bit-exact against
// its recording before being reported.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "replay/DeterminismChecker.h"
#include "replay/LogCodec.h"

using namespace chimera;
using namespace chimera::bench;
using namespace chimera::workloads;
using GranularityIndex = ir::WeakLockGranularity;

int main() {
  std::printf("Table 2: Chimera record and replay performance "
              "(4 worker threads, all optimizations)\n\n");
  std::printf("%-10s | %9s %9s | %9s %9s %9s %9s | %9s %9s | %6s %6s | "
              "%8s %8s\n",
              "app", "syscalls", "synch.ops", "instr.log", "bblk.log",
              "loop.log", "func.log", "native", "record", "rec.ov",
              "rep.ov", "in.KB", "ord.KB");
  hrule(146);

  std::vector<double> RecOverheads, RepOverheads;

  for (WorkloadKind K : allWorkloads()) {
    auto P = pipelineFor(K, /*Workers=*/4);
    auto Native = P->runOriginalNative(BenchSeed);
    requireOk(Native, "native");
    auto Out = P->recordAndReplay(BenchSeed);
    requireOk(Out.Record, "record");
    requireOk(Out.Replay, "replay");
    auto Verdict = replay::checkDeterminism(Out.Record, Out.Replay);
    if (!Verdict.Deterministic) {
      std::fprintf(stderr, "%s replay diverged: %s\n",
                   workloadInfo(K).Name, Verdict.Reason.c_str());
      return 1;
    }

    const rt::RunStats &S = Out.Record.Stats;
    replay::LogSizes Sizes = replay::measureLog(Out.Record.Log);
    double RecOv = overheadOf(Out.Record, Native);
    double RepOv = overheadOf(Out.Replay, Native);
    RecOverheads.push_back(RecOv);
    RepOverheads.push_back(RepOv);

    // DRF logs: nondeterministic inputs plus the order of original
    // synchronization (the paper's "sufficient for data-race-free
    // programs" column).
    uint64_t SyncLogs = S.SyncOps + S.OutputOps + S.SpawnedThreads;

    std::printf("%-10s | %9llu %9llu | %9llu %9llu %9llu %9llu | "
                "%9llu %9llu | %6.2f %6.2f | %8.1f %8.1f\n",
                workloadInfo(K).Name,
                static_cast<unsigned long long>(S.Syscalls),
                static_cast<unsigned long long>(SyncLogs),
                static_cast<unsigned long long>(
                    S.WeakAcquires[unsigned(GranularityIndex::Instr)]),
                static_cast<unsigned long long>(
                    S.WeakAcquires[unsigned(GranularityIndex::BasicBlock)]),
                static_cast<unsigned long long>(
                    S.WeakAcquires[unsigned(GranularityIndex::Loop)]),
                static_cast<unsigned long long>(
                    S.WeakAcquires[unsigned(GranularityIndex::Function)]),
                static_cast<unsigned long long>(
                    Native.Stats.MakespanCycles),
                static_cast<unsigned long long>(S.MakespanCycles), RecOv,
                RepOv, Sizes.InputCompressed / 1024.0,
                Sizes.OrderCompressed / 1024.0);
  }

  hrule(146);
  std::printf("%-10s | %*s geomean record overhead %.2fx, replay "
              "overhead %.2fx\n",
              "summary", 40, "", geomean(RecOverheads),
              geomean(RepOverheads));
  std::printf("\npaper reference: ~2.4%% overhead for desktop/server, "
              "~86%% for scientific; replay similar to record except "
              "I/O-bound apps replay much faster\n");
  std::printf("all replays verified bit-exact (memory + output "
              "fingerprints)\n");

  // -- Epoch-parallel replay, 8 jobs -------------------------------------
  // Each app re-recorded through the streaming engine and replayed at 8
  // jobs; the speedup column is the critical-path projection
  // (sequential wall / slowest epoch), hardware-independent.
  std::printf("\nEpoch-parallel replay (8 jobs, checkpoint every 64 "
              "events)\n\n");
  std::printf("%-10s %8s %10s %12s %12s\n", "app", "epochs", "seq wall",
              "crit. path", "proj. spdup");
  hrule(58);
  std::vector<double> Speedups;
  for (WorkloadKind K : allWorkloads()) {
    core::PipelineConfig Config;
    Config.CheckpointEvery = 64;
    auto PE = workloads::buildPipelineEx(K, /*Workers=*/4, Config);
    if (!PE) {
      std::fprintf(stderr, "failed to build %s: %s\n", workloadInfo(K).Name,
                   PE.error().message().c_str());
      return 1;
    }
    ReplayJobsSweep Sweep =
        replayJobsSweep(**PE, workloadInfo(K).Name, {8});
    const ReplayJobsPoint &Pt = Sweep.Points.front();
    Speedups.push_back(Pt.ProjectedSpeedup);
    std::printf("%-10s %8u %9.3fs %11.3fs %11.2fx\n", workloadInfo(K).Name,
                Pt.Epochs, Sweep.SequentialSeconds, Pt.CriticalPathSeconds,
                Pt.ProjectedSpeedup);
  }
  hrule(58);
  std::printf("%-10s geomean projected speedup %.2fx; every parallel "
              "replay verified bit-identical to sequential\n",
              "summary", geomean(Speedups));
  return 0;
}
