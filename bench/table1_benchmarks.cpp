//===- bench/table1_benchmarks.cpp - Paper Table 1 -------------------------===//
//
// Reproduces Table 1: the benchmark suite with source sizes and the
// profiling vs evaluation environments. (The paper's LOC column counts
// CIL-processed C; ours counts MiniC lines.)
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace chimera;
using namespace chimera::bench;
using namespace chimera::workloads;

int main() {
  std::printf("Table 1: benchmarks and inputs used for profiling and "
              "evaluating Chimera\n");
  std::printf("(MiniC reimplementations of the paper's suite; LOC is "
              "MiniC source lines)\n\n");
  std::printf("%-10s %-11s %5s  %-46s %s\n", "app", "category", "LOC",
              "profile environment", "evaluation environment");
  hrule(140);

  for (WorkloadKind K : allWorkloads()) {
    const WorkloadInfo &Info = workloadInfo(K);
    std::printf("%-10s %-11s %5u  %-46s %s\n", Info.Name, Info.Category,
                workloadLineCount(K), Info.ProfileEnv, Info.EvalEnv);
  }

  std::printf("\nprofiling: 20 runs per application, each with a "
              "different input seed (paper: 20 runs, varied inputs)\n");
  return 0;
}
