//===- bench/fig6_instrumentation_points.cpp - Paper Figure 6 --------------===//
//
// Reproduces Figure 6: the proportion of dynamic weak-lock operations
// relative to total dynamic memory operations, per instrumentation
// configuration. The paper's point: naive instrumentation touches ~14%
// of memory operations; the full optimization stack reduces weak-lock
// operations to ~0.02% of memory operations. Our synthetic programs are
// hot-loop dominated, so the absolute percentages are higher, but the
// orders-of-magnitude reduction is the reproduced shape.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace chimera;
using namespace chimera::bench;
using namespace chimera::workloads;
using instrument::PlannerOptions;

int main() {
  struct Config {
    const char *Name;
    PlannerOptions Opts;
  };
  const Config Configs[] = {
      {"instr", PlannerOptions::naive()},
      {"inst+func", PlannerOptions::functionOnly()},
      {"inst+loop", PlannerOptions::loopOnly()},
      {"inst+bb+loop+func", PlannerOptions::full()},
  };

  std::printf("Figure 6: weak-lock operations per 100 dynamic memory "
              "operations (4 workers)\n\n");
  std::printf("%-10s %12s %12s %12s %18s\n", "app", "instr", "inst+func",
              "inst+loop", "inst+bb+loop+func");
  hrule(70);

  std::vector<std::vector<double>> PerConfig(4);

  for (WorkloadKind K : allWorkloads()) {
    auto P = pipelineFor(K, /*Workers=*/4);
    std::printf("%-10s", workloadInfo(K).Name);
    for (unsigned C = 0; C != 4; ++C) {
      P->setPlannerOptions(Configs[C].Opts);
      auto Rec = P->record(BenchSeed);
      requireOk(Rec, Configs[C].Name);
      // Acquire+release both hit the log, as in the paper's counting.
      double Ratio = 200.0 *
                     static_cast<double>(Rec.Stats.weakAcquiresTotal()) /
                     static_cast<double>(Rec.Stats.MemOps);
      PerConfig[C].push_back(Ratio);
      std::printf("  %*.2f%%", C == 3 ? 16 : 10, Ratio);
    }
    std::printf("\n");
  }

  hrule(70);
  std::printf("%-10s", "geomean");
  for (unsigned C = 0; C != 4; ++C)
    std::printf("  %*.2f%%", C == 3 ? 16 : 10, geomean(PerConfig[C]));
  std::printf("\n\npaper reference: ~14%% of dynamic memory operations "
              "naively -> ~0.02%% with all optimizations (their "
              "programs have far more non-racy background code than "
              "our kernels, so absolute levels differ; the reduction "
              "factor is the comparable quantity)\n");
  return 0;
}
