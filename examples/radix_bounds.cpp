//===- examples/radix_bounds.cpp - Paper Figure 4, live --------------------===//
//
// Walks through the paper's Figure 4 on our radix workload: the symbolic
// bounds analysis derives a precise address range for the rank-zeroing
// loop (ranged loop-lock, fully parallel across workers), fails on the
// key-dependent histogram loop (small body, unranged loop-lock), and the
// planner's decisions are printed next to the per-loop analysis.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"
#include "bounds/BoundsAnalysis.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace chimera;
using namespace chimera::workloads;

namespace {

void analyzeFunction(const ir::Module &M, const char *Name) {
  const ir::Function *F = M.findFunction(Name);
  if (!F)
    return;
  analysis::LoopInfo Loops(*F);
  bounds::BoundsAnalysis BA(M, *F, Loops);

  std::printf("function %s: %zu loop(s)\n", Name, Loops.numLoops());
  for (const auto &L : Loops.loops()) {
    std::printf("  loop (header bb%u, depth %u%s):\n", L->Header, L->Depth,
                L->ContainsCall ? ", contains call-like op" : "");

    auto Induction = BA.analyzeInduction(L.get());
    if (Induction.Found)
      std::printf("    induction r%u, step %lld, range [%s, %s]\n",
                  Induction.Var, static_cast<long long>(Induction.Step),
                  Induction.Lower.str().c_str(),
                  Induction.Upper.str().c_str());
    else
      std::printf("    no counted-loop induction recognized\n");

    for (ir::BlockId B : L->Blocks) {
      for (const ir::Instruction &Inst : F->block(B).Insts) {
        if (!Inst.isMemoryAccess())
          continue;
        bounds::AddressBounds Bounds = BA.addressBounds(L.get(), Inst.Ident);
        std::printf("    %-5s line %2u: ",
                    Inst.Op == ir::Opcode::Store ? "store" : "load",
                    Inst.Loc.Line);
        if (Bounds.Valid)
          std::printf("bounds [%s, %s]\n", Bounds.Lo.str().c_str(),
                      Bounds.Hi.str().c_str());
        else
          std::printf("bounds underivable (-INF..+INF in the paper's "
                      "Figure 4 notation)\n");
      }
    }
  }
  std::printf("\n");
}

} // namespace

int main() {
  auto Built = buildPipelineEx(WorkloadKind::Radix, 4);
  if (!Built) {
    std::fprintf(stderr, "build failed: %s\n",
                 Built.error().message().c_str());
    return 1;
  }
  std::unique_ptr<core::ChimeraPipeline> Pipeline = Built.take();
  const ir::Module &M = Pipeline->originalModule();

  std::printf("=== symbolic address bounds for radix (paper Figure 4) "
              "===\n\n");
  std::printf("register atoms: rN+%u denotes the value of rN at the "
              "loop preheader\n\n",
              bounds::BoundsAnalysis::PreheaderAtomBase);

  // The two loops of Figure 4 live in these functions.
  analyzeFunction(M, "zero_rank");  // rank[j] = 0       -> precise bounds.
  analyzeFunction(M, "count_keys"); // rank[key>>s & m]++ -> underivable.
  analyzeFunction(M, "copy_back");  // dst[i] = src[i]   -> precise bounds.

  std::printf("=== resulting plan ===\n%s\n",
              Pipeline->plan().summary(M).c_str());

  std::printf("weak-lock table of the instrumented module:\n");
  const ir::Module &I = Pipeline->instrumentedModule();
  for (size_t Id = 0; Id != I.WeakLocks.size(); ++Id)
    std::printf("  wl%-3zu %-12s %s%s\n", Id,
                ir::weakLockGranularityName(I.WeakLocks[Id].Granularity),
                I.WeakLocks[Id].Name.c_str(),
                I.WeakLocks[Id].HasRange ? "  [ranged]" : "");
  return 0;
}
