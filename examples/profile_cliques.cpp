//===- examples/profile_cliques.cpp - Paper Figures 2 and 3, live ----------===//
//
// Shows the profiling optimization on our water workload: barrier-phased
// master-only functions (kineti / poteng / bndry, the analogue of the
// paper's interf/bndry example in Figure 2) are reported racy by RELAY
// but never run concurrently in any profile run, so clique analysis
// (Figure 3) groups them under shared function-locks.
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "profile/CliqueAnalysis.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace chimera;
using namespace chimera::workloads;

int main() {
  auto Built = buildPipelineEx(WorkloadKind::Water, 4);
  if (!Built) {
    std::fprintf(stderr, "build failed: %s\n",
                 Built.error().message().c_str());
    return 1;
  }
  std::unique_ptr<core::ChimeraPipeline> Pipeline = Built.take();
  const ir::Module &M = Pipeline->originalModule();

  // 1. RELAY's racy function pairs.
  const race::RaceReport &Races = Pipeline->raceReport();
  auto FuncPairs = Races.racyFunctionPairs();
  std::printf("=== RELAY: %zu race pairs across %zu racy function pairs "
              "===\n",
              Races.Pairs.size(), FuncPairs.size());
  for (auto [A, B] : FuncPairs)
    std::printf("  %s <-> %s\n", M.function(A).Name.c_str(),
                M.function(B).Name.c_str());

  // 2. Profiling: which racy functions ever ran concurrently?
  const profile::ProfileData &Profile = Pipeline->profileData();
  std::printf("\n=== profiling over %u runs: concurrency facts ===\n",
              Pipeline->config().ProfileRuns);
  std::vector<uint32_t> RacyFuncs;
  for (const auto &A : Races.racyInstructions())
    RacyFuncs.push_back(A.FuncId);
  profile::ConcurrencyGraph CG(RacyFuncs, Profile);
  for (uint32_t I = 0; I != CG.numNodes(); ++I) {
    uint32_t FI = CG.funcOf(I);
    std::printf("  %-12s self-concurrent: %-3s  non-concurrent with:",
                M.function(FI).Name.c_str(),
                CG.selfNonConcurrent(FI) ? "no" : "yes");
    for (uint32_t J = 0; J != CG.numNodes(); ++J)
      if (I != J && CG.graph().hasEdge(I, J))
        std::printf(" %s", M.function(CG.funcOf(J)).Name.c_str());
    std::printf("\n");
  }

  // 3. Clique lock assignment (paper Figure 3).
  std::printf("\n=== clique function-lock assignment ===\n");
  const auto &Plan = Pipeline->plan();
  std::printf("race pairs covered by function-locks: %llu of %llu\n",
              static_cast<unsigned long long>(Plan.PairsFunctionCovered),
              static_cast<unsigned long long>(Plan.PairsTotal));
  for (size_t Id = 0; Id != Plan.Locks.size(); ++Id) {
    if (Plan.Locks[Id].Granularity != ir::WeakLockGranularity::Function)
      continue;
    std::printf("  wl%-3zu %s — acquired at entry of:", Id,
                Plan.Locks[Id].Name.c_str());
    for (const auto &[FuncId, FP] : Plan.Functions)
      for (uint32_t Lock : FP.EntryLocks)
        if (Lock == Id)
          std::printf(" %s", M.function(FuncId).Name.c_str());
    std::printf("\n");
  }

  // 4. The payoff: record overhead with vs without the optimization.
  auto Native = Pipeline->runOriginalNative(2012);
  auto Full = Pipeline->record(2012);
  Pipeline->setPlannerOptions(instrument::PlannerOptions::loopOnly());
  auto NoFunc = Pipeline->record(2012);
  if (Native.Ok && Full.Ok && NoFunc.Ok) {
    double FullOv = double(Full.Stats.MakespanCycles) /
                    double(Native.Stats.MakespanCycles);
    double NoFuncOv = double(NoFunc.Stats.MakespanCycles) /
                      double(Native.Stats.MakespanCycles);
    std::printf("\n=== payoff on water ===\n");
    std::printf("record overhead with function-locks:    %.2fx\n", FullOv);
    std::printf("record overhead without function-locks: %.2fx\n",
                NoFuncOv);
  }
  return 0;
}
