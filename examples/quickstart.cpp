//===- examples/quickstart.cpp - Chimera in five minutes -------------------===//
//
// The smallest end-to-end tour of the public API: compile a racy MiniC
// program, let Chimera find and guard its races, record one execution,
// and replay it deterministically.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "replay/LogCodec.h"

#include <cstdio>

using namespace chimera;

// A classic lost-update bug: four workers increment a shared counter
// without a lock. Different schedules produce different final values —
// until Chimera records one and pins it down.
const char *Program = R"(
int counter;
int tids[4];

void worker(int n) {
  int i;
  for (i = 0; i < n; i++) {
    int t = counter;
    counter = t + 1;
  }
}

int main() {
  int j;
  for (j = 0; j < 4; j++) {
    tids[j] = spawn(worker, 500);
  }
  for (j = 0; j < 4; j++) {
    join(tids[j]);
  }
  output(counter);
  return 0;
}
)";

int main() {
  // 1. Build the pipeline: parse, type-check, lower to IR.
  core::PipelineConfig Config;
  Config.Name = "quickstart";
  Config.ProfileRuns = 10;
  auto Built =
      core::ChimeraPipeline::create({.Eval = Program, .Config = Config});
  if (!Built) {
    std::fprintf(stderr, "compile error:\n%s\n",
                 Built.error().message().c_str());
    return 1;
  }
  std::unique_ptr<core::ChimeraPipeline> Pipeline = Built.take();

  // 2. Static race detection (our RELAY port).
  const race::RaceReport &Races = Pipeline->raceReport();
  std::printf("== static analysis ==\n");
  std::printf("potential race pairs found: %zu\n", Races.Pairs.size());
  std::printf("%s\n", Races.str(Pipeline->originalModule()).c_str());

  // 3. The instrumentation plan (profiling + symbolic bounds decide the
  //    weak-lock granularities).
  std::printf("== instrumentation plan ==\n%s\n",
              Pipeline->plan().summary(Pipeline->originalModule()).c_str());

  // 4. Show the nondeterminism: three native runs, three answers.
  std::printf("== native runs (uninstrumented, schedule-dependent) ==\n");
  for (uint64_t Seed : {1, 2, 3})
    std::printf("  seed %llu -> counter = %llu\n",
                static_cast<unsigned long long>(Seed),
                static_cast<unsigned long long>(
                    Pipeline->runOriginalNative(Seed).Output[0]));

  // 5. Record once, replay twice: identical results, by construction.
  std::printf("\n== record & replay ==\n");
  auto Recording = Pipeline->record(/*Seed=*/42);
  if (!Recording.Ok) {
    std::fprintf(stderr, "record failed: %s\n", Recording.Error.c_str());
    return 1;
  }
  std::printf("recorded: counter = %llu, %llu log records\n",
              static_cast<unsigned long long>(Recording.Output[0]),
              static_cast<unsigned long long>(Recording.Stats.LogEvents));

  replay::LogSizes Sizes = replay::measureLog(Recording.Log);
  std::printf("log sizes: input %llu B (compressed %llu B), order %llu B "
              "(compressed %llu B)\n",
              static_cast<unsigned long long>(Sizes.InputRaw),
              static_cast<unsigned long long>(Sizes.InputCompressed),
              static_cast<unsigned long long>(Sizes.OrderRaw),
              static_cast<unsigned long long>(Sizes.OrderCompressed));

  for (int Round = 1; Round <= 2; ++Round) {
    auto Replay = Pipeline->replay(Recording.Log);
    bool Match = Replay.Ok && Replay.StateHash == Recording.StateHash;
    std::printf("replay #%d: counter = %llu, bit-exact = %s\n", Round,
                static_cast<unsigned long long>(Replay.Output[0]),
                Match ? "yes" : "NO");
    if (!Match)
      return 1;
  }

  std::printf("\nevery weak-lock acquisition the recorder logged: %llu "
              "(vs %llu memory operations)\n",
              static_cast<unsigned long long>(
                  Recording.Stats.weakAcquiresTotal()),
              static_cast<unsigned long long>(Recording.Stats.MemOps));
  return 0;
}
