//===- examples/debug_race.cpp - Reproducing a heisenbug -------------------===//
//
// The paper's motivating use case: a program with an atomicity violation
// fails only under rare schedules. With Chimera you record production
// runs cheaply; when the bug strikes, the recording replays the exact
// failing execution as many times as the debugger needs.
//
// The bug here is a classic check-then-act: a worker tests a bank
// balance and then withdraws, but the balance may change in between, so
// the account occasionally goes negative.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include <cstdio>

using namespace chimera;

const char *Bank = R"(
int balance = 6;
int overdrafts;
int tids[4];

void customer(int rounds) {
  int r;
  for (r = 0; r < rounds; r++) {
    if (balance >= 2) {
      // Atomicity violation: the balance can change between the check
      // above and the withdrawal below.
      int after = balance - 2;
      balance = after;
      if (after < 0) {
        overdrafts = overdrafts + 1;
      }
    } else {
      balance = balance + 3;
    }
  }
}

int main() {
  int j;
  for (j = 0; j < 4; j++) {
    tids[j] = spawn(customer, 300);
  }
  for (j = 0; j < 4; j++) {
    join(tids[j]);
  }
  output(overdrafts);
  output(balance);
  return 0;
}
)";

int main() {
  core::PipelineConfig Config;
  Config.Name = "bank";
  Config.ProfileRuns = 8;
  auto Built =
      core::ChimeraPipeline::create({.Eval = Bank, .Config = Config});
  if (!Built) {
    std::fprintf(stderr, "compile error:\n%s\n",
                 Built.error().message().c_str());
    return 1;
  }
  std::unique_ptr<core::ChimeraPipeline> Pipeline = Built.take();

  std::printf("recording production runs until the overdraft bug "
              "strikes...\n");

  // Chimera records every run (cheaply — that is the point of the
  // paper). We scan seeds to emulate many production executions.
  for (uint64_t Seed = 1; Seed <= 300; ++Seed) {
    auto Recording = Pipeline->record(Seed);
    if (!Recording.Ok) {
      std::fprintf(stderr, "record failed: %s\n", Recording.Error.c_str());
      return 1;
    }
    uint64_t Overdrafts = Recording.Output[0];
    if (Overdrafts == 0)
      continue;

    std::printf("\nrun with seed %llu FAILED: %llu overdraft(s), final "
                "balance %lld\n",
                static_cast<unsigned long long>(Seed),
                static_cast<unsigned long long>(Overdrafts),
                static_cast<long long>(
                    static_cast<int64_t>(Recording.Output[1])));
    std::printf("record overhead was modest: %llu weak-lock ops over "
                "%llu memory ops\n",
                static_cast<unsigned long long>(
                    Recording.Stats.weakAcquiresTotal()),
                static_cast<unsigned long long>(Recording.Stats.MemOps));

    std::printf("\nreplaying the failing execution three times:\n");
    for (int Round = 1; Round <= 3; ++Round) {
      auto Replay = Pipeline->replay(Recording.Log);
      bool Match = Replay.Ok && Replay.StateHash == Recording.StateHash;
      std::printf("  replay #%d: overdrafts = %llu, balance = %lld, "
                  "bit-exact = %s\n",
                  Round,
                  static_cast<unsigned long long>(Replay.Output[0]),
                  static_cast<long long>(
                      static_cast<int64_t>(Replay.Output[1])),
                  Match ? "yes" : "NO");
      if (!Match)
        return 1;
    }
    std::printf("\nthe failing interleaving is now a deterministic test "
                "case.\n");
    return 0;
  }

  std::printf("no overdraft in 300 recorded runs — the bug is rare; "
              "rerun with more seeds.\n");
  return 0;
}
