//===- tools/chimera_cli.cpp - Command-line driver --------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The `chimera` command-line tool: compile a MiniC program, inspect the
// static race report and instrumentation plan, record executions to a
// log file, and replay them deterministically.
//
//   chimera races   prog.mc [--jobs N] [--mhp=MODE] [--race-stats]
//   chimera plan    prog.mc [--naive|--func|--loop]
//   chimera ir      prog.mc [--instrumented]
//   chimera run     prog.mc [--seed N] [--cores N]
//   chimera record  prog.mc -o run.clog [--seed N] [--cores N]
//                   [--segment-bytes N] [--checkpoint-every N]
//   chimera replay  prog.mc run.clog [--verify-log] [--replay-jobs N]
//   chimera batch   a.mc b.mc ... [--sessions N] [--repeat N]
//                   [--cache cache.cart] [--deadline-ms N]
//   chimera stress  [--seeds N] [--base-seed N] [--jobs N] [--no-shrink]
//                   [--repro-dir DIR] [--report FILE] [--repro FILE]
//
// `record` streams events into the crash-safe segmented log format
// (docs/LOG_FORMAT.md) with periodic state checkpoints; `replay` reads
// segmented logs through the streaming reader (recovering what it can
// from damaged files). With --replay-jobs=N the log is partitioned at
// its checkpoints and the epochs replay concurrently — bit-identical
// to sequential replay for every N.
//
// `batch` runs every listed program as a concurrent analysis *session*
// (service::SessionManager) over one shared persistent artifact cache:
// with --cache=FILE the cache is loaded before the first session and
// saved back afterwards, so a second batch run warm-starts past RELAY
// and the planning/certification loop. Exit codes are uniform and
// documented in --help: 0 success, 1 pipeline/session failure, 2 usage
// error.
//
// Observability is uniform across commands: `--metrics[=json|table]`
// prints the pipeline's registry snapshot after the command finishes,
// `--trace-out=FILE` writes a Chrome trace_event JSON file, and
// `--obs=off|sampled|full` picks the mode explicitly (both flags imply
// full otherwise). Option parsing and `--help` are generated from one
// declarative table in core/Cli.{h,cpp}.
//
//===----------------------------------------------------------------------===//

#include "core/Cli.h"
#include "core/Pipeline.h"
#include "ir/Printer.h"
#include "race/SummaryCache.h"
#include "replay/LogCodec.h"
#include "replay/LogReader.h"
#include "service/SessionManager.h"
#include "stress/Stress.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace chimera;

namespace {

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return true;
}

bool readBytes(const std::string &Path, std::vector<uint8_t> &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  Out.assign(std::istreambuf_iterator<char>(In),
             std::istreambuf_iterator<char>());
  return true;
}

void printOutput(const rt::ExecutionResult &R) {
  for (uint64_t V : R.Output)
    std::printf("%lld\n", static_cast<long long>(static_cast<int64_t>(V)));
}

void printStats(const rt::ExecutionResult &R) {
  std::fprintf(stderr,
               "[chimera] %llu instructions, %llu cycles makespan, "
               "%llu weak-lock acquisitions, %llu log records\n",
               static_cast<unsigned long long>(R.Stats.Instructions),
               static_cast<unsigned long long>(R.Stats.MakespanCycles),
               static_cast<unsigned long long>(
                   R.Stats.weakAcquiresTotal()),
               static_cast<unsigned long long>(R.Stats.LogEvents));
}

/// End-of-command observability sinks: the metrics snapshot to stdout
/// and the trace file to disk. Returns false when the trace file could
/// not be written (the command itself already succeeded).
bool emitObservability(const core::ChimeraPipeline &Pipeline,
                       const core::CliOptions &Opts,
                       obs::TraceRecorder *Trace) {
  if (Opts.Metrics != core::MetricsFormat::None) {
    support::Expected<obs::Snapshot> Snap = Pipeline.metrics();
    if (!Snap) {
      std::fprintf(stderr, "%s\n", Snap.error().message().c_str());
      return false;
    }
    std::string Rendered = Opts.Metrics == core::MetricsFormat::Table
                               ? Snap->toTable()
                               : Snap->toJson();
    std::printf("%s\n", Rendered.c_str());
  }
  if (Trace) {
    if (support::Error E = Trace->writeFile(Opts.TraceOutPath)) {
      std::fprintf(stderr, "%s\n",
                   E.context("writing " + Opts.TraceOutPath)
                       .message()
                       .c_str());
      return false;
    }
    std::fprintf(stderr, "[chimera] %zu trace span(s) written to %s\n",
                 Trace->spanCount(), Opts.TraceOutPath.c_str());
  }
  return true;
}

/// `chimera batch`: every program in \p Paths becomes one session per
/// --repeat on a shared SessionManager; artifacts persist through
/// --cache across processes. Returns the process exit code.
int runBatch(const std::vector<std::string> &Paths,
             const core::CliOptions &Opts) {
  // Read every program up front so a missing file fails the batch
  // before any session is admitted.
  std::vector<std::string> Sources(Paths.size());
  for (size_t I = 0; I < Paths.size(); ++I)
    if (!readFile(Paths[I], Sources[I])) {
      std::fprintf(stderr, "cannot read %s\n", Paths[I].c_str());
      return 1;
    }

  service::ArtifactCache Cache;
  if (!Opts.CachePath.empty()) {
    support::Expected<uint64_t> Loaded = Cache.loadFile(Opts.CachePath);
    if (!Loaded) {
      std::fprintf(stderr, "%s\n", Loaded.error().message().c_str());
      return 1;
    }
    if (*Loaded) {
      std::fprintf(stderr,
                   "[chimera] warm start: %llu artifact(s) loaded from %s\n",
                   static_cast<unsigned long long>(*Loaded),
                   Opts.CachePath.c_str());
      importSummaries(Cache, race::SummaryCache::global());
    }
  }

  obs::Registry Metrics;
  service::SessionManager::Options MO;
  MO.Concurrency = Opts.Sessions;
  MO.MaxSessions = Paths.size() * Opts.Repeat;
  MO.Artifacts = &Cache;
  MO.Metrics = &Metrics;
  service::SessionManager Manager(MO);

  for (unsigned Rep = 0; Rep < Opts.Repeat; ++Rep)
    for (size_t I = 0; I < Paths.size(); ++I) {
      core::PipelineConfig Config;
      Config.Name = Paths[I];
      Config.NumCores = Opts.Cores;
      Config.AnalysisJobs = Opts.Jobs;
      Config.Planner = Opts.Planner;
      Config.Mhp = Opts.Mhp;
      Config.LockOrder = Opts.LockOrder;
      Config.Observability = Opts.effectiveObsMode();
      service::SessionOptions SO;
      SO.Seed = Opts.Seed;
      SO.DeadlineMs = Opts.DeadlineMs;
      support::Expected<uint64_t> Id = Manager.submit(
          {.Eval = Sources[I], .Config = Config, .Tag = Paths[I]}, SO);
      if (!Id) {
        std::fprintf(stderr, "%s\n", Id.error().message().c_str());
        return 1;
      }
    }

  std::vector<service::SessionResult> Results = Manager.drainAll();

  bool AllOk = true;
  for (const service::SessionResult &R : Results) {
    if (R.Ok) {
      std::printf("session %llu %s: ok (plan %016llx, state %016llx, "
                  "%llu us)\n",
                  static_cast<unsigned long long>(R.Id), R.Tag.c_str(),
                  static_cast<unsigned long long>(R.PlanFingerprint),
                  static_cast<unsigned long long>(R.RecordStateHash),
                  static_cast<unsigned long long>(R.WallUs));
    } else {
      std::printf("session %llu %s: FAILED: %s\n",
                  static_cast<unsigned long long>(R.Id), R.Tag.c_str(),
                  R.Error.c_str());
      AllOk = false;
    }
  }

  // Duplicate sessions of the same program must be bit-identical:
  // same plan fingerprint, same state hashes, same encoded log.
  bool Identical = true;
  std::map<std::string, const service::SessionResult *> FirstByTag;
  for (const service::SessionResult &R : Results) {
    if (!R.Ok)
      continue;
    auto [It, Inserted] = FirstByTag.emplace(R.Tag, &R);
    if (Inserted)
      continue;
    const service::SessionResult *F = It->second;
    if (R.PlanFingerprint != F->PlanFingerprint ||
        R.RecordStateHash != F->RecordStateHash ||
        R.ReplayStateHash != F->ReplayStateHash ||
        R.LogBytes != F->LogBytes) {
      std::fprintf(stderr,
                   "bit-identity MISMATCH between sessions %llu and %llu "
                   "of %s\n",
                   static_cast<unsigned long long>(F->Id),
                   static_cast<unsigned long long>(R.Id), R.Tag.c_str());
      Identical = false;
    }
  }
  if (Identical && !Results.empty())
    std::printf("bit-identity: ok across %zu session(s)\n", Results.size());

  if (!Opts.CachePath.empty() && AllOk) {
    exportSummaries(race::SummaryCache::global(), Cache);
    if (support::Error E = Cache.saveFile(Opts.CachePath)) {
      std::fprintf(stderr, "%s\n", E.message().c_str());
      return 1;
    }
    std::fprintf(stderr, "[chimera] %zu artifact(s) saved to %s\n",
                 Cache.entryCount(), Opts.CachePath.c_str());
  }

  Cache.publishTo(obs::Scope(&Metrics, "service").sub("cache"));
  if (Opts.Metrics != core::MetricsFormat::None) {
    obs::Snapshot Snap = Metrics.snapshot();
    std::printf("%s\n", Opts.Metrics == core::MetricsFormat::Table
                            ? Snap.toTable().c_str()
                            : Snap.toJson().c_str());
  }
  return AllOk && Identical ? 0 : 1;
}

/// `chimera stress --repro FILE`: re-run one minimized repro. Exit 0
/// when the trial passes (the bug is fixed), 1 when it still fails.
int runRepro(const core::CliOptions &Opts) {
  support::Expected<stress::TrialCase> Case =
      stress::readReproFile(Opts.ReproPath);
  if (!Case) {
    std::fprintf(stderr, "%s\n", Case.error().message().c_str());
    return 1;
  }
  stress::TrialResult R = stress::runTrial(*Case);
  if (R.Passed) {
    std::printf("repro %s: PASS (oracle %s, seed %llu, state %016llx)\n",
                Opts.ReproPath.c_str(), stress::oracleName(Case->Oracle),
                static_cast<unsigned long long>(Case->Seed),
                static_cast<unsigned long long>(R.RecordHash));
    return 0;
  }
  std::printf("repro %s: FAIL (oracle %s, seed %llu)\n  %s\n",
              Opts.ReproPath.c_str(), stress::oracleName(Case->Oracle),
              static_cast<unsigned long long>(Case->Seed),
              R.Failure.c_str());
  return 1;
}

/// `chimera stress`: the seeded differential campaign (ISSUE 10).
int runStress(const core::CliOptions &Opts) {
  if (!Opts.ReproPath.empty())
    return runRepro(Opts);

  obs::Registry Metrics;
  stress::CampaignOptions CO;
  CO.Seeds = Opts.StressSeeds;
  CO.BaseSeed = Opts.BaseSeed;
  CO.Jobs = Opts.Jobs;
  CO.Shrink = Opts.Shrink;
  CO.ReproDir = Opts.ReproDir;
  CO.Metrics = &Metrics;
  uint64_t Stride = Opts.StressSeeds / 20 ? Opts.StressSeeds / 20 : 1;
  CO.Progress = [Stride](uint64_t Done, uint64_t Total) {
    if (Done % Stride == 0 || Done == Total)
      std::fprintf(stderr, "\r[chimera] stress %llu/%llu trial(s)",
                   static_cast<unsigned long long>(Done),
                   static_cast<unsigned long long>(Total));
    if (Done == Total)
      std::fputc('\n', stderr);
  };

  stress::CampaignReport Rep = stress::runCampaign(CO);

  std::printf("stress: %llu trial(s), %llu passed, %llu failed "
              "(base seed %llu)\n",
              static_cast<unsigned long long>(Rep.Trials),
              static_cast<unsigned long long>(Rep.Passed),
              static_cast<unsigned long long>(Rep.Failed),
              static_cast<unsigned long long>(Opts.BaseSeed));
  for (const auto &[Name, Count] : Rep.TrialsPerOracle) {
    auto It = Rep.FailuresPerOracle.find(Name);
    uint64_t Fails = It == Rep.FailuresPerOracle.end() ? 0 : It->second;
    std::printf("  %-18s %5llu trial(s)  %llu failed\n", Name.c_str(),
                static_cast<unsigned long long>(Count),
                static_cast<unsigned long long>(Fails));
  }
  for (const stress::CampaignFailure &F : Rep.Failures) {
    std::printf("FAILURE #%llu: oracle %s, source %s, seed %llu\n  %s\n",
                static_cast<unsigned long long>(F.Index),
                stress::oracleName(F.Case.Oracle),
                F.Case.SourceName.c_str(),
                static_cast<unsigned long long>(F.Case.Seed),
                F.Result.Failure.c_str());
    if (!F.ReproPath.empty())
      std::printf("  minimized repro: %s (replay with `chimera stress "
                  "--repro %s`)\n",
                  F.ReproPath.c_str(), F.ReproPath.c_str());
  }

  if (!Opts.ReportPath.empty()) {
    std::ofstream Out(Opts.ReportPath, std::ios::trunc);
    if (!Out.good()) {
      std::fprintf(stderr, "cannot write %s\n", Opts.ReportPath.c_str());
      return 1;
    }
    Out << Rep.toJson();
    Out.close();
    std::fprintf(stderr, "[chimera] campaign report written to %s\n",
                 Opts.ReportPath.c_str());
  }
  if (Opts.Metrics != core::MetricsFormat::None) {
    obs::Snapshot Snap = Metrics.snapshot();
    std::printf("%s\n", Opts.Metrics == core::MetricsFormat::Table
                            ? Snap.toTable().c_str()
                            : Snap.toJson().c_str());
  }
  return Rep.allPassed() ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  // `chimera --help` (any position) prints usage without needing a
  // command or program.
  for (int I = 1; I < argc; ++I)
    if (std::string(argv[I]) == "--help") {
      std::fputs(core::usageText().c_str(), stdout);
      return 0;
    }
  // `stress` takes no program argument — every flag after the command
  // belongs to the option table.
  if (argc >= 2 && std::string(argv[1]) == "stress") {
    core::CliOptions Opts;
    if (support::Error E =
            core::parseCliOptions(argc, argv, 2, "stress", Opts)) {
      std::fprintf(stderr, "%s\n", E.message().c_str());
      return 2;
    }
    return runStress(Opts);
  }

  if (argc < 3) {
    std::fputs(core::usageText().c_str(), stderr);
    return 2;
  }
  std::string Command = argv[1];
  std::string Path = argv[2];

  core::CliOptions Opts;
  if (support::Error E =
          core::parseCliOptions(argc, argv, 3, Command, Opts)) {
    std::fprintf(stderr, "%s\n", E.message().c_str());
    return 2;
  }

  if (Command == "batch") {
    std::vector<std::string> Paths;
    Paths.push_back(Path);
    Paths.insert(Paths.end(), Opts.Inputs.begin(), Opts.Inputs.end());
    return runBatch(Paths, Opts);
  }

  std::string Source;
  if (!readFile(Path, Source)) {
    std::fprintf(stderr, "cannot read %s\n", Path.c_str());
    return 1;
  }

  // The CLI owns the trace recorder; the pipeline only borrows it.
  // Sampled mode keeps every 8th span — metrics stay exact either way.
  std::unique_ptr<obs::TraceRecorder> Trace;
  obs::ObsMode ObsMode = Opts.effectiveObsMode();
  if (!Opts.TraceOutPath.empty() && ObsMode != obs::ObsMode::Off)
    Trace = std::make_unique<obs::TraceRecorder>(
        ObsMode == obs::ObsMode::Sampled ? 8 : 1);

  core::PipelineConfig Config;
  Config.Name = Path;
  Config.NumCores = Opts.Cores;
  Config.AnalysisJobs = Opts.Jobs;
  Config.Planner = Opts.Planner;
  Config.Mhp = Opts.Mhp;
  Config.Observability = ObsMode;
  Config.Trace = Trace.get();
  Config.SegmentBytes = Opts.SegmentBytes;
  Config.CheckpointEvery = Opts.CheckpointEvery;
  Config.ReplayJobs = Opts.ReplayJobs;
  Config.LockOrder = Opts.LockOrder;
  auto MaybePipeline =
      core::ChimeraPipeline::create({.Eval = Source, .Config = Config});
  if (!MaybePipeline) {
    std::fprintf(stderr, "%s\n", MaybePipeline.error().message().c_str());
    return 1;
  }
  std::unique_ptr<core::ChimeraPipeline> Pipeline = MaybePipeline.take();

  if (Command == "races") {
    const race::RaceReport &Races = Pipeline->raceReport();
    std::printf("%zu potential race pair(s)\n", Races.Pairs.size());
    std::printf("%s", Races.str(Pipeline->originalModule()).c_str());
    if (Opts.RaceStats) {
      // Read back through the registry (the supported stats path). When
      // observability is off, publish into a local one.
      obs::Registry Local;
      obs::Registry *Reg = Pipeline->metricsRegistry();
      if (!Reg) {
        Races.publishTo(obs::Scope(&Local, "pipeline").sub("mhp"));
        Reg = &Local;
      }
      obs::Snapshot Snap = Reg->snapshot();
      std::printf("mhp mode=%s pairs-before=%lld pairs-after=%lld "
                  "pruned-forkjoin=%lld pruned-barrier=%lld\n",
                  analysis::mhpModeName(Races.Mhp.Mode),
                  static_cast<long long>(
                      Snap.value("pipeline.mhp.pairs_before", 0)),
                  static_cast<long long>(
                      Snap.value("pipeline.mhp.pairs_after", 0)),
                  static_cast<long long>(
                      Snap.value("pipeline.mhp.pruned_forkjoin", 0)),
                  static_cast<long long>(
                      Snap.value("pipeline.mhp.pruned_barrier", 0)));
      const ir::Module &M = Pipeline->originalModule();
      for (const race::PrunedRace &P : Races.PrunedPairs) {
        auto describe = [&](const race::RacyAccess &A) {
          const ir::Function &F = M.function(A.FuncId);
          const ir::Instruction *Inst = F.findInst(A.Ident);
          return F.Name + ":" +
                 (Inst ? std::to_string(Inst->Loc.Line) : "?");
        };
        std::printf(
            "pruned (%s): %s <-> %s\n",
            P.Reason == analysis::MhpOrdering::OrderedForkJoin
                ? "forkjoin"
                : "barrier",
            describe(P.Pair.A).c_str(), describe(P.Pair.B).c_str());
      }
    }
    return emitObservability(*Pipeline, Opts, Trace.get()) ? 0 : 1;
  }

  if (Command == "plan") {
    std::printf("%s",
                Pipeline->plan()
                    .summary(Pipeline->originalModule())
                    .c_str());
    const instrument::AuditResult &Audit = Pipeline->planAudit();
    if (!Audit.ok()) {
      std::fprintf(stderr, "plan audit FAILED: %s\n",
                   Audit.Failure.message().c_str());
      return 1;
    }
    std::printf("plan audit: ok (%llu pairs, %llu accesses, %llu ranged "
                "guards checked)\n",
                static_cast<unsigned long long>(Audit.Stats.PairsChecked),
                static_cast<unsigned long long>(
                    Audit.Stats.AccessesChecked),
                static_cast<unsigned long long>(
                    Audit.Stats.RangedGuardsChecked));
    if (Opts.LockOrderReport ||
        Opts.LockOrder != analysis::LockOrderMode::Off) {
      const instrument::LockOrderAuditResult &LO =
          Pipeline->lockOrderAudit();
      if (!LO.ok()) {
        std::fprintf(stderr, "lock-order audit FAILED: %s\n",
                     LO.Failure.message().c_str());
        return 1;
      }
      std::printf("%s", LO.Report.c_str());
      if (LO.Certified)
        std::printf("lock-order certificate: valid (weak-timeout polling "
                    "elided at record time)\n");
    }
    return emitObservability(*Pipeline, Opts, Trace.get()) ? 0 : 1;
  }

  if (Command == "ir") {
    const ir::Module &M = Opts.Instrumented
                              ? Pipeline->instrumentedModule()
                              : Pipeline->originalModule();
    std::printf("%s", ir::printModule(M).c_str());
    return 0;
  }

  if (Command == "run") {
    auto R = Pipeline->runOriginalNative(Opts.Seed);
    if (!R.Ok) {
      std::fprintf(stderr, "runtime error: %s\n", R.Error.c_str());
      return 1;
    }
    printOutput(R);
    printStats(R);
    return emitObservability(*Pipeline, Opts, Trace.get()) ? 0 : 1;
  }

  if (Command == "record") {
    std::string OutPath = Opts.OutPath.empty() ? Path + ".clog"
                                               : Opts.OutPath;
    auto MaybeR = Pipeline->recordStreamed(OutPath, Opts.Seed);
    if (!MaybeR) {
      std::fprintf(stderr, "%s\n", MaybeR.error().message().c_str());
      return 1;
    }
    rt::ExecutionResult R = MaybeR.take();
    printOutput(R);
    printStats(R);
    auto Sizes = replay::measureLog(R.Log);
    std::fprintf(stderr,
                 "[chimera] segmented log written to %s (compresses to "
                 "%llu input + %llu order)\n",
                 OutPath.c_str(),
                 static_cast<unsigned long long>(Sizes.InputCompressed),
                 static_cast<unsigned long long>(Sizes.OrderCompressed));
    return emitObservability(*Pipeline, Opts, Trace.get()) ? 0 : 1;
  }

  if (Command == "replay") {
    if (Opts.LogPath.empty()) {
      std::fprintf(stderr, "replay needs a log file argument\n");
      return 2;
    }
    std::vector<uint8_t> Bytes;
    if (!readBytes(Opts.LogPath, Bytes)) {
      std::fprintf(stderr, "cannot read %s\n", Opts.LogPath.c_str());
      return 1;
    }

    bool Segmented =
        Bytes.size() >= 4 &&
        std::memcmp(Bytes.data(), replay::FileMagic, 4) == 0;
    if (!Segmented) {
      std::fprintf(stderr,
                   "%s: not a segmented log (record one with "
                   "`chimera record`)\n",
                   Opts.LogPath.c_str());
      return 1;
    }
    replay::LogReader::Options ROpts;
    ROpts.ExpectedFingerprint = Pipeline->workloadFingerprint();
    ROpts.CheckFingerprint = true;
    ROpts.Metrics = Pipeline->metricsRegistry();
    auto Reader = replay::LogReader::open(std::move(Bytes), ROpts);
    if (!Reader) {
      std::fprintf(stderr, "%s: %s\n", Opts.LogPath.c_str(),
                   Reader.error().message().c_str());
      return 1;
    }

    if (Opts.ReplayJobs > 1) {
      // Epoch-parallel path: recovery, stitching, and the sequential
      // fallback on damage all live inside the replayer.
      auto Res = Pipeline->replayParallel(*Reader, Opts.ReplayJobs);
      if (!Res.LogComplete) {
        // Same policy as the sequential branch below: a log that does
        // not recover through its End record is an error, not a silent
        // partial replay.
        std::fprintf(stderr, "%s: %s (--verify-log for details)\n",
                     Opts.LogPath.c_str(), Res.LogError.c_str());
        return 1;
      }
      if (!Res.Exec.Ok) {
        std::fprintf(stderr, "replay error: %s\n",
                     Res.Exec.Error.c_str());
        return 1;
      }
      printOutput(Res.Exec);
      printStats(Res.Exec);
      std::fprintf(stderr,
                   "[chimera] %u epoch(s), %llu stitch check(s)%s%s\n",
                   Res.Epochs,
                   static_cast<unsigned long long>(Res.StitchChecks),
                   Res.UsedCheckpointIndex ? ", checkpoint index" : "",
                   Res.FellBackSequential ? ", fell back sequential"
                                          : "");
      std::fprintf(stderr,
                   "[chimera] replay state fingerprint %016llx\n",
                   static_cast<unsigned long long>(Res.Exec.StateHash));
      return emitObservability(*Pipeline, Opts, Trace.get()) ? 0 : 1;
    }

    replay::LogReader::RecoveredLog RL = Reader->recover();
    if (Opts.VerifyLog) {
      std::printf("%s: %llu segment(s), %llu record(s), %llu "
                  "checkpoint(s); %s\n",
                  Opts.LogPath.c_str(),
                  static_cast<unsigned long long>(RL.SegmentsRead),
                  static_cast<unsigned long long>(RL.RecordsRecovered),
                  static_cast<unsigned long long>(RL.CheckpointsMerged),
                  RL.Complete ? "complete"
                              : RL.Failure.message().c_str());
      return RL.Complete ? 0 : 1;
    }
    if (!RL.Complete) {
      std::fprintf(stderr,
                   "%s: %s\n[chimera] recovered %llu record(s) across "
                   "%llu segment(s) before the damage "
                   "(--verify-log for details)\n",
                   Opts.LogPath.c_str(), RL.Failure.message().c_str(),
                   static_cast<unsigned long long>(RL.RecordsRecovered),
                   static_cast<unsigned long long>(RL.SegmentsRead));
      return 1;
    }
    rt::ExecutionLog DecodedLog = std::move(RL.Log);
    auto R = Pipeline->replay(DecodedLog);
    if (!R.Ok) {
      std::fprintf(stderr, "replay error: %s\n", R.Error.c_str());
      return 1;
    }
    printOutput(R);
    printStats(R);
    std::fprintf(stderr, "[chimera] replay state fingerprint %016llx\n",
                 static_cast<unsigned long long>(R.StateHash));
    return emitObservability(*Pipeline, Opts, Trace.get()) ? 0 : 1;
  }

  std::fputs(core::usageText().c_str(), stderr);
  return 2;
}
