//===- tools/chimera_cli.cpp - Command-line driver --------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The `chimera` command-line tool: compile a MiniC program, inspect the
// static race report and instrumentation plan, record executions to a
// log file, and replay them deterministically.
//
//   chimera races   prog.mc [--jobs N] [--mhp=MODE] [--race-stats]
//   chimera plan    prog.mc [--naive|--func|--loop]
//   chimera ir      prog.mc [--instrumented]
//   chimera run     prog.mc [--seed N] [--cores N]
//   chimera record  prog.mc -o run.clog [--seed N] [--cores N]
//   chimera replay  prog.mc run.clog
//
// Options are described by a declarative table (flag, arity, help,
// setter); usage text is generated from the same table so help can
// never drift from what the parser accepts. Value-taking flags accept
// both `--flag VALUE` and `--flag=VALUE`.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "ir/Printer.h"
#include "replay/LogCodec.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

using namespace chimera;

namespace {

/// Everything the option table writes into.
struct CliOptions {
  uint64_t Seed = 1;
  unsigned Cores = 8;
  unsigned Jobs = 0; ///< 0 = one worker per hardware thread.
  std::string OutPath;
  std::string LogPath; ///< replay's positional log argument.
  bool Instrumented = false;
  bool RaceStats = false;
  analysis::MhpMode Mhp = analysis::MhpMode::Barrier;
  instrument::PlannerOptions Planner = instrument::PlannerOptions::full();
};

/// One command-line flag: how to spell it, whether it consumes a value,
/// what to print in --help, and how to apply it. Apply returns
/// success(), or a failure describing why the value was rejected.
struct OptionSpec {
  const char *Flag;
  const char *ArgName; ///< Null when the flag takes no value.
  const char *Help;
  std::function<support::Error(CliOptions &, const char *Arg)> Apply;
};

bool parseUnsigned(const char *Text, uint64_t &Out) {
  char *End = nullptr;
  errno = 0;
  Out = std::strtoull(Text, &End, 10);
  return End != Text && *End == '\0' && errno != ERANGE;
}

/// Like parseUnsigned, but the value must also fit in `unsigned`, so
/// oversized input fails at parse time instead of silently truncating.
bool parseUnsignedFits(const char *Text, unsigned &Out) {
  uint64_t V;
  if (!parseUnsigned(Text, V) ||
      V > std::numeric_limits<unsigned>::max())
    return false;
  Out = static_cast<unsigned>(V);
  return true;
}

support::Error badValue(const char *Flag, const char *Value) {
  return support::Error::failure(std::string("invalid value for ") + Flag +
                                 ": " + (Value ? Value : ""));
}

const std::vector<OptionSpec> &optionTable() {
  static const std::vector<OptionSpec> Table = {
      {"--seed", "N", "scheduler/input seed (default 1)",
       [](CliOptions &O, const char *A) {
         uint64_t V;
         if (!parseUnsigned(A, V))
           return badValue("--seed", A);
         O.Seed = V;
         return support::Error::success();
       }},
      {"--cores", "N", "simulated cores (default 8)",
       [](CliOptions &O, const char *A) {
         unsigned V;
         if (!parseUnsignedFits(A, V) || V == 0)
           return badValue("--cores", A);
         O.Cores = V;
         return support::Error::success();
       }},
      {"--jobs", "N",
       "analysis/profiling worker threads (default: hardware threads)",
       [](CliOptions &O, const char *A) {
         if (!parseUnsignedFits(A, O.Jobs))
           return badValue("--jobs", A);
         return support::Error::success();
       }},
      {"-o", "FILE", "output log path for `record` (default prog.clog)",
       [](CliOptions &O, const char *A) {
         O.OutPath = A;
         return support::Error::success();
       }},
      {"--mhp", "MODE",
       "may-happen-in-parallel race filter: off|forkjoin|barrier "
       "(default barrier)",
       [](CliOptions &O, const char *A) {
         support::Expected<analysis::MhpMode> Mode =
             analysis::parseMhpMode(A ? A : "");
         if (!Mode)
           return Mode.error();
         O.Mhp = *Mode;
         return support::Error::success();
       }},
      {"--race-stats", nullptr,
       "with `races`: print pairs pruned by the MHP filter, per reason",
       [](CliOptions &O, const char *) {
         O.RaceStats = true;
         return support::Error::success();
       }},
      {"--instrumented", nullptr, "print the weak-lock-guarded module",
       [](CliOptions &O, const char *) {
         O.Instrumented = true;
         return support::Error::success();
       }},
      {"--naive", nullptr, "planner ablation: one lock per address",
       [](CliOptions &O, const char *) {
         O.Planner = instrument::PlannerOptions::naive();
         return support::Error::success();
       }},
      {"--func", nullptr, "planner ablation: function locks only",
       [](CliOptions &O, const char *) {
         O.Planner = instrument::PlannerOptions::functionOnly();
         return support::Error::success();
       }},
      {"--loop", nullptr, "planner ablation: loop locks only",
       [](CliOptions &O, const char *) {
         O.Planner = instrument::PlannerOptions::loopOnly();
         return support::Error::success();
       }},
  };
  return Table;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: chimera <command> <program.mc> [options]\n"
      "\n"
      "commands:\n"
      "  races    report the static (RELAY) race pairs\n"
      "  plan     show the weak-lock instrumentation plan\n"
      "  ir       print the IR (--instrumented for the guarded module)\n"
      "  run      execute natively and print the program output\n"
      "  record   record an execution (-o FILE, default prog.clog)\n"
      "  replay   replay a recorded log file deterministically\n"
      "\n"
      "options:\n");
  for (const OptionSpec &Spec : optionTable()) {
    std::string Left = Spec.Flag;
    if (Spec.ArgName) {
      Left += ' ';
      Left += Spec.ArgName;
    }
    std::fprintf(stderr, "  %-20s %s\n", Left.c_str(), Spec.Help);
  }
}

/// Applies the option table to argv[3..]; returns false (after
/// diagnosing) on unknown flags, missing values, or bad numbers. The
/// replay command accepts one positional argument: its log file.
bool parseOptions(int argc, char **argv, const std::string &Command,
                  CliOptions &Opts) {
  for (int I = 3; I < argc; ++I) {
    const std::string Arg = argv[I];
    // `--flag=value` form: split at the first '='.
    std::string Flag = Arg;
    std::string Inline;
    bool HasInline = false;
    size_t Eq = Arg.find('=');
    if (Eq != std::string::npos && Arg.size() > 1 && Arg[0] == '-') {
      Flag = Arg.substr(0, Eq);
      Inline = Arg.substr(Eq + 1);
      HasInline = true;
    }
    const OptionSpec *Match = nullptr;
    for (const OptionSpec &Spec : optionTable())
      if (Flag == Spec.Flag) {
        Match = &Spec;
        break;
      }
    if (!Match) {
      if (Command == "replay" && Opts.LogPath.empty() && Arg[0] != '-') {
        Opts.LogPath = Arg;
        continue;
      }
      std::fprintf(stderr, "unknown option: %s\n", Arg.c_str());
      return false;
    }
    const char *Value = nullptr;
    if (Match->ArgName) {
      if (HasInline) {
        Value = Inline.c_str();
      } else {
        if (I + 1 >= argc) {
          std::fprintf(stderr, "%s needs a value (%s)\n", Match->Flag,
                       Match->ArgName);
          return false;
        }
        Value = argv[++I];
      }
    } else if (HasInline) {
      std::fprintf(stderr, "%s takes no value\n", Match->Flag);
      return false;
    }
    if (support::Error E = Match->Apply(Opts, Value)) {
      std::fprintf(stderr, "%s\n", E.message().c_str());
      return false;
    }
  }
  return true;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return true;
}

bool readBytes(const std::string &Path, std::vector<uint8_t> &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  Out.assign(std::istreambuf_iterator<char>(In),
             std::istreambuf_iterator<char>());
  return true;
}

bool writeBytes(const std::string &Path, const std::vector<uint8_t> &Data) {
  std::ofstream OutStream(Path, std::ios::binary);
  if (!OutStream)
    return false;
  OutStream.write(reinterpret_cast<const char *>(Data.data()),
                  static_cast<std::streamsize>(Data.size()));
  return OutStream.good();
}

void printOutput(const rt::ExecutionResult &R) {
  for (uint64_t V : R.Output)
    std::printf("%lld\n", static_cast<long long>(static_cast<int64_t>(V)));
}

void printStats(const rt::ExecutionResult &R) {
  std::fprintf(stderr,
               "[chimera] %llu instructions, %llu cycles makespan, "
               "%llu weak-lock acquisitions, %llu log records\n",
               static_cast<unsigned long long>(R.Stats.Instructions),
               static_cast<unsigned long long>(R.Stats.MakespanCycles),
               static_cast<unsigned long long>(
                   R.Stats.weakAcquiresTotal()),
               static_cast<unsigned long long>(R.Stats.LogEvents));
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 3) {
    usage();
    return 2;
  }
  std::string Command = argv[1];
  std::string Path = argv[2];

  CliOptions Opts;
  if (!parseOptions(argc, argv, Command, Opts))
    return 2;

  std::string Source;
  if (!readFile(Path, Source)) {
    std::fprintf(stderr, "cannot read %s\n", Path.c_str());
    return 1;
  }

  core::PipelineConfig Config;
  Config.Name = Path;
  Config.NumCores = Opts.Cores;
  Config.AnalysisJobs = Opts.Jobs;
  Config.Planner = Opts.Planner;
  Config.Mhp = Opts.Mhp;
  auto MaybePipeline =
      core::ChimeraPipeline::fromSource(Source, Source, Config);
  if (!MaybePipeline) {
    std::fprintf(stderr, "%s\n", MaybePipeline.error().message().c_str());
    return 1;
  }
  std::unique_ptr<core::ChimeraPipeline> Pipeline = MaybePipeline.take();

  if (Command == "races") {
    const race::RaceReport &Races = Pipeline->raceReport();
    std::printf("%zu potential race pair(s)\n", Races.Pairs.size());
    std::printf("%s", Races.str(Pipeline->originalModule()).c_str());
    if (Opts.RaceStats) {
      std::printf("%s\n", Races.mhpStatsStr().c_str());
      const ir::Module &M = Pipeline->originalModule();
      for (const race::PrunedRace &P : Races.PrunedPairs) {
        auto describe = [&](const race::RacyAccess &A) {
          const ir::Function &F = M.function(A.FuncId);
          const ir::Instruction *Inst = F.findInst(A.Ident);
          return F.Name + ":" +
                 (Inst ? std::to_string(Inst->Loc.Line) : "?");
        };
        std::printf(
            "pruned (%s): %s <-> %s\n",
            P.Reason == analysis::MhpOrdering::OrderedForkJoin
                ? "forkjoin"
                : "barrier",
            describe(P.Pair.A).c_str(), describe(P.Pair.B).c_str());
      }
    }
    return 0;
  }

  if (Command == "plan") {
    std::printf("%s",
                Pipeline->plan()
                    .summary(Pipeline->originalModule())
                    .c_str());
    const instrument::AuditResult &Audit = Pipeline->planAudit();
    if (!Audit.ok()) {
      std::fprintf(stderr, "plan audit FAILED: %s\n",
                   Audit.Failure.message().c_str());
      return 1;
    }
    std::printf("plan audit: ok (%llu pairs, %llu accesses, %llu ranged "
                "guards checked)\n",
                static_cast<unsigned long long>(Audit.Stats.PairsChecked),
                static_cast<unsigned long long>(
                    Audit.Stats.AccessesChecked),
                static_cast<unsigned long long>(
                    Audit.Stats.RangedGuardsChecked));
    return 0;
  }

  if (Command == "ir") {
    const ir::Module &M = Opts.Instrumented
                              ? Pipeline->instrumentedModule()
                              : Pipeline->originalModule();
    std::printf("%s", ir::printModule(M).c_str());
    return 0;
  }

  if (Command == "run") {
    auto R = Pipeline->runOriginalNative(Opts.Seed);
    if (!R.Ok) {
      std::fprintf(stderr, "runtime error: %s\n", R.Error.c_str());
      return 1;
    }
    printOutput(R);
    printStats(R);
    return 0;
  }

  if (Command == "record") {
    auto R = Pipeline->record(Opts.Seed);
    if (!R.Ok) {
      std::fprintf(stderr, "runtime error: %s\n", R.Error.c_str());
      return 1;
    }
    printOutput(R);
    printStats(R);
    std::string OutPath = Opts.OutPath.empty() ? Path + ".clog"
                                               : Opts.OutPath;
    std::vector<uint8_t> Bytes = replay::encodeLog(R.Log);
    if (!writeBytes(OutPath, Bytes)) {
      std::fprintf(stderr, "cannot write %s\n", OutPath.c_str());
      return 1;
    }
    auto Sizes = replay::measureLog(R.Log);
    std::fprintf(stderr,
                 "[chimera] log written to %s (%zu bytes; compresses to "
                 "%llu input + %llu order)\n",
                 OutPath.c_str(), Bytes.size(),
                 static_cast<unsigned long long>(Sizes.InputCompressed),
                 static_cast<unsigned long long>(Sizes.OrderCompressed));
    return 0;
  }

  if (Command == "replay") {
    if (Opts.LogPath.empty()) {
      std::fprintf(stderr, "replay needs a log file argument\n");
      return 2;
    }
    std::vector<uint8_t> Bytes;
    if (!readBytes(Opts.LogPath, Bytes)) {
      std::fprintf(stderr, "cannot read %s\n", Opts.LogPath.c_str());
      return 1;
    }
    auto Log = replay::decode(Bytes);
    if (!Log) {
      std::fprintf(stderr, "%s: %s\n", Opts.LogPath.c_str(),
                   Log.error().message().c_str());
      return 1;
    }
    auto R = Pipeline->replay(*Log);
    if (!R.Ok) {
      std::fprintf(stderr, "replay error: %s\n", R.Error.c_str());
      return 1;
    }
    printOutput(R);
    printStats(R);
    std::fprintf(stderr, "[chimera] replay state fingerprint %016llx\n",
                 static_cast<unsigned long long>(R.StateHash));
    return 0;
  }

  usage();
  return 2;
}
