//===- tools/chimera_cli.cpp - Command-line driver --------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The `chimera` command-line tool: compile a MiniC program, inspect the
// static race report and instrumentation plan, record executions to a
// log file, and replay them deterministically.
//
//   chimera races   prog.mc
//   chimera plan    prog.mc [--naive|--func|--loop]
//   chimera ir      prog.mc [--instrumented]
//   chimera run     prog.mc [--seed N] [--cores N]
//   chimera record  prog.mc -o run.clog [--seed N] [--cores N]
//   chimera replay  prog.mc run.clog
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "ir/Printer.h"
#include "replay/LogCodec.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace chimera;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: chimera <command> <program.mc> [options]\n"
      "\n"
      "commands:\n"
      "  races    report the static (RELAY) race pairs\n"
      "  plan     show the weak-lock instrumentation plan\n"
      "  ir       print the IR (--instrumented for the guarded module)\n"
      "  run      execute natively and print the program output\n"
      "  record   record an execution (-o FILE, default prog.clog)\n"
      "  replay   replay a recorded log file deterministically\n"
      "\n"
      "options:\n"
      "  --seed N          scheduler/input seed (default 1)\n"
      "  --cores N         simulated cores (default 8)\n"
      "  --naive|--func|--loop   planner ablation configurations\n"
      "  -o FILE           output log path for `record`\n");
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return true;
}

bool readBytes(const std::string &Path, std::vector<uint8_t> &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  Out.assign(std::istreambuf_iterator<char>(In),
             std::istreambuf_iterator<char>());
  return true;
}

bool writeBytes(const std::string &Path, const std::vector<uint8_t> &Data) {
  std::ofstream OutStream(Path, std::ios::binary);
  if (!OutStream)
    return false;
  OutStream.write(reinterpret_cast<const char *>(Data.data()),
                  static_cast<std::streamsize>(Data.size()));
  return OutStream.good();
}

void printOutput(const rt::ExecutionResult &R) {
  for (uint64_t V : R.Output)
    std::printf("%lld\n", static_cast<long long>(static_cast<int64_t>(V)));
}

void printStats(const rt::ExecutionResult &R) {
  std::fprintf(stderr,
               "[chimera] %llu instructions, %llu cycles makespan, "
               "%llu weak-lock acquisitions, %llu log records\n",
               static_cast<unsigned long long>(R.Stats.Instructions),
               static_cast<unsigned long long>(R.Stats.MakespanCycles),
               static_cast<unsigned long long>(
                   R.Stats.weakAcquiresTotal()),
               static_cast<unsigned long long>(R.Stats.LogEvents));
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 3) {
    usage();
    return 2;
  }
  std::string Command = argv[1];
  std::string Path = argv[2];

  uint64_t Seed = 1;
  unsigned Cores = 8;
  std::string OutPath;
  bool Instrumented = false;
  instrument::PlannerOptions Planner = instrument::PlannerOptions::full();

  for (int I = 3; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--seed" && I + 1 < argc)
      Seed = std::strtoull(argv[++I], nullptr, 10);
    else if (Arg == "--cores" && I + 1 < argc)
      Cores = static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 10));
    else if (Arg == "-o" && I + 1 < argc)
      OutPath = argv[++I];
    else if (Arg == "--instrumented")
      Instrumented = true;
    else if (Arg == "--naive")
      Planner = instrument::PlannerOptions::naive();
    else if (Arg == "--func")
      Planner = instrument::PlannerOptions::functionOnly();
    else if (Arg == "--loop")
      Planner = instrument::PlannerOptions::loopOnly();
    else if (Command == "replay" && OutPath.empty()) {
      OutPath = Arg; // replay's positional log argument.
    } else {
      std::fprintf(stderr, "unknown option: %s\n", Arg.c_str());
      return 2;
    }
  }

  std::string Source;
  if (!readFile(Path, Source)) {
    std::fprintf(stderr, "cannot read %s\n", Path.c_str());
    return 1;
  }

  core::PipelineConfig Config;
  Config.Name = Path;
  Config.NumCores = Cores;
  Config.Planner = Planner;
  std::string Error;
  auto Pipeline =
      core::ChimeraPipeline::fromSource(Source, Source, Config, &Error);
  if (!Pipeline) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    return 1;
  }

  if (Command == "races") {
    const race::RaceReport &Races = Pipeline->raceReport();
    std::printf("%zu potential race pair(s)\n", Races.Pairs.size());
    std::printf("%s", Races.str(Pipeline->originalModule()).c_str());
    return 0;
  }

  if (Command == "plan") {
    std::printf("%s",
                Pipeline->plan()
                    .summary(Pipeline->originalModule())
                    .c_str());
    return 0;
  }

  if (Command == "ir") {
    const ir::Module &M = Instrumented ? Pipeline->instrumentedModule()
                                       : Pipeline->originalModule();
    std::printf("%s", ir::printModule(M).c_str());
    return 0;
  }

  if (Command == "run") {
    auto R = Pipeline->runOriginalNative(Seed);
    if (!R.Ok) {
      std::fprintf(stderr, "runtime error: %s\n", R.Error.c_str());
      return 1;
    }
    printOutput(R);
    printStats(R);
    return 0;
  }

  if (Command == "record") {
    auto R = Pipeline->record(Seed);
    if (!R.Ok) {
      std::fprintf(stderr, "runtime error: %s\n", R.Error.c_str());
      return 1;
    }
    printOutput(R);
    printStats(R);
    if (OutPath.empty())
      OutPath = Path + ".clog";
    std::vector<uint8_t> Bytes = replay::encodeLog(R.Log);
    if (!writeBytes(OutPath, Bytes)) {
      std::fprintf(stderr, "cannot write %s\n", OutPath.c_str());
      return 1;
    }
    auto Sizes = replay::measureLog(R.Log);
    std::fprintf(stderr,
                 "[chimera] log written to %s (%zu bytes; compresses to "
                 "%llu input + %llu order)\n",
                 OutPath.c_str(), Bytes.size(),
                 static_cast<unsigned long long>(Sizes.InputCompressed),
                 static_cast<unsigned long long>(Sizes.OrderCompressed));
    return 0;
  }

  if (Command == "replay") {
    if (OutPath.empty()) {
      std::fprintf(stderr, "replay needs a log file argument\n");
      return 2;
    }
    std::vector<uint8_t> Bytes;
    if (!readBytes(OutPath, Bytes)) {
      std::fprintf(stderr, "cannot read %s\n", OutPath.c_str());
      return 1;
    }
    rt::ExecutionLog Log = replay::decodeLog(Bytes);
    auto R = Pipeline->replay(Log);
    if (!R.Ok) {
      std::fprintf(stderr, "replay error: %s\n", R.Error.c_str());
      return 1;
    }
    printOutput(R);
    printStats(R);
    std::fprintf(stderr, "[chimera] replay state fingerprint %016llx\n",
                 static_cast<unsigned long long>(R.StateHash));
    return 0;
  }

  usage();
  return 2;
}
