//===- lang/Ast.h - MiniC abstract syntax tree ------------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for MiniC. MiniC is deliberately small but covers exactly the
/// features Chimera's analyses need to exhibit the paper's phenomena:
///
///  - global scalars and arrays, heap allocation, `int*` pointers
///    (points-to imprecision, symbolic bounds);
///  - functions, loops, calls (RELAY's bottom-up summaries, loop-locks);
///  - pthread-style sync: mutex/lock/unlock, barriers, condition
///    variables, spawn/join (lockset analysis sees only mutexes, so
///    barrier- and fork/join-ordered code yields false races);
///  - nondeterministic input builtins (what the recorder must log).
///
/// Nodes are resolved in place by Sema (see the `Sym` fields); ownership is
/// strictly tree-shaped via std::unique_ptr.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_LANG_AST_H
#define CHIMERA_LANG_AST_H

#include "lang/Token.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace chimera {

/// MiniC surface types. All scalars are 64-bit signed integers; the only
/// pointer type is pointer-to-int (arrays decay to it).
enum class MiniType { Int, Ptr, Void };

const char *miniTypeName(MiniType Type);

/// What a resolved identifier refers to.
enum class SymbolKind {
  Unresolved,
  Local,    ///< Function-local scalar or pointer; Index is the local slot.
  Param,    ///< Function parameter; Index is the parameter position.
  Global,   ///< Global scalar or array; Index is the global id.
  Mutex,    ///< Index is the sync-object id.
  Barrier,  ///< Index is the sync-object id.
  Cond,     ///< Index is the sync-object id.
  Function, ///< Index is the function id.
};

/// Resolution record Sema attaches to identifier references.
struct Symbol {
  SymbolKind Kind = SymbolKind::Unresolved;
  unsigned Index = 0;
  MiniType Type = MiniType::Int; ///< Value type when read (Int or Ptr).
  unsigned ArraySize = 0;        ///< Nonzero for global arrays.
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind { IntLit, VarRef, Index, Unary, Binary, Call, AddrOf };

class Expr {
public:
  virtual ~Expr();

  ExprKind getKind() const { return Kind; }
  SourceLoc Loc;
  /// Value type, filled in by Sema.
  MiniType Type = MiniType::Int;

protected:
  Expr(ExprKind Kind, SourceLoc Loc) : Loc(Loc), Kind(Kind) {}

private:
  ExprKind Kind;
};

using ExprPtr = std::unique_ptr<Expr>;

class IntLitExpr : public Expr {
public:
  IntLitExpr(SourceLoc Loc, int64_t Value)
      : Expr(ExprKind::IntLit, Loc), Value(Value) {}

  int64_t Value;

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::IntLit;
  }
};

class VarRefExpr : public Expr {
public:
  VarRefExpr(SourceLoc Loc, std::string Name)
      : Expr(ExprKind::VarRef, Loc), Name(std::move(Name)) {}

  std::string Name;
  Symbol Sym;

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::VarRef;
  }
};

/// `base[index]` where base names a global array, a pointer-typed local or
/// parameter, or a pointer-valued expression.
class IndexExpr : public Expr {
public:
  IndexExpr(SourceLoc Loc, ExprPtr Base, ExprPtr Index)
      : Expr(ExprKind::Index, Loc), Base(std::move(Base)),
        Index(std::move(Index)) {}

  ExprPtr Base;
  ExprPtr Index;

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Index;
  }
};

enum class UnaryOp { Neg, Not };

class UnaryExpr : public Expr {
public:
  UnaryExpr(SourceLoc Loc, UnaryOp Op, ExprPtr Sub)
      : Expr(ExprKind::Unary, Loc), Op(Op), Sub(std::move(Sub)) {}

  UnaryOp Op;
  ExprPtr Sub;

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Unary;
  }
};

enum class BinaryOp {
  Add, Sub, Mul, Div, Rem,
  And, Or, Xor, Shl, Shr,
  Lt, Le, Gt, Ge, Eq, Ne,
  LAnd, LOr,
};

const char *binaryOpSpelling(BinaryOp Op);

class BinaryExpr : public Expr {
public:
  BinaryExpr(SourceLoc Loc, BinaryOp Op, ExprPtr LHS, ExprPtr RHS)
      : Expr(ExprKind::Binary, Loc), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}

  BinaryOp Op;
  ExprPtr LHS;
  ExprPtr RHS;

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Binary;
  }
};

/// Built-in operations, recognized by name at call sites.
enum class BuiltinKind {
  None,          ///< A user-function call.
  Lock,          ///< lock(m)
  Unlock,        ///< unlock(m)
  BarrierWait,   ///< barrier_wait(b)
  CondWait,      ///< cond_wait(c, m)
  CondSignal,    ///< cond_signal(c)
  CondBroadcast, ///< cond_broadcast(c)
  Spawn,         ///< spawn(f, args...) -> thread id
  Join,          ///< join(tid)
  Alloc,         ///< alloc(nwords) -> int*
  Input,         ///< input() -> nondeterministic word (device)
  NetRecv,       ///< net_recv() -> word, long blocking latency
  FileRead,      ///< file_read() -> word, medium blocking latency
  Output,        ///< output(x): append to the program's output stream
  Yield,         ///< yield(): scheduling hint
};

const char *builtinKindName(BuiltinKind Kind);

class CallExpr : public Expr {
public:
  CallExpr(SourceLoc Loc, std::string Callee, std::vector<ExprPtr> Args)
      : Expr(ExprKind::Call, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}

  std::string Callee;
  std::vector<ExprPtr> Args;

  /// Filled by Sema.
  BuiltinKind Builtin = BuiltinKind::None;
  unsigned CalleeIndex = 0;   ///< User function id when Builtin == None.
  unsigned SpawnTarget = 0;   ///< Spawned function id when Builtin == Spawn.

  static bool classof(const Expr *E) { return E->getKind() == ExprKind::Call; }
};

/// `&name` or `&name[index]`; yields a pointer into a global array or
/// pointer target.
class AddrOfExpr : public Expr {
public:
  AddrOfExpr(SourceLoc Loc, std::string Name, ExprPtr Index)
      : Expr(ExprKind::AddrOf, Loc), Name(std::move(Name)),
        Index(std::move(Index)) {}

  std::string Name;
  ExprPtr Index; ///< May be null for `&name`.
  Symbol Sym;

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::AddrOf;
  }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind {
  Decl, Assign, If, While, For, Return, Break, Continue, Block, Expr,
};

class Stmt {
public:
  virtual ~Stmt();

  StmtKind getKind() const { return Kind; }
  SourceLoc Loc;

protected:
  Stmt(StmtKind Kind, SourceLoc Loc) : Loc(Loc), Kind(Kind) {}

private:
  StmtKind Kind;
};

using StmtPtr = std::unique_ptr<Stmt>;

/// `int x = e;` or `int* p = e;`
class DeclStmt : public Stmt {
public:
  DeclStmt(SourceLoc Loc, std::string Name, bool IsPtr, ExprPtr Init)
      : Stmt(StmtKind::Decl, Loc), Name(std::move(Name)), IsPtr(IsPtr),
        Init(std::move(Init)) {}

  std::string Name;
  bool IsPtr;
  ExprPtr Init; ///< May be null.
  unsigned LocalIndex = 0; ///< Filled by Sema.

  static bool classof(const Stmt *S) { return S->getKind() == StmtKind::Decl; }
};

enum class AssignOp { Assign, Add, Sub };

/// `lvalue = e;`, `lvalue += e;`, `lvalue -= e;` (and `++`/`--` sugar).
/// The target is a VarRefExpr or IndexExpr.
class AssignStmt : public Stmt {
public:
  AssignStmt(SourceLoc Loc, ExprPtr Target, AssignOp Op, ExprPtr Value)
      : Stmt(StmtKind::Assign, Loc), Target(std::move(Target)), Op(Op),
        Value(std::move(Value)) {}

  ExprPtr Target;
  AssignOp Op;
  ExprPtr Value;

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Assign;
  }
};

class IfStmt : public Stmt {
public:
  IfStmt(SourceLoc Loc, ExprPtr Cond, StmtPtr Then, StmtPtr Else)
      : Stmt(StmtKind::If, Loc), Cond(std::move(Cond)),
        Then(std::move(Then)), Else(std::move(Else)) {}

  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else; ///< May be null.

  static bool classof(const Stmt *S) { return S->getKind() == StmtKind::If; }
};

class WhileStmt : public Stmt {
public:
  WhileStmt(SourceLoc Loc, ExprPtr Cond, StmtPtr Body)
      : Stmt(StmtKind::While, Loc), Cond(std::move(Cond)),
        Body(std::move(Body)) {}

  ExprPtr Cond;
  StmtPtr Body;

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::While;
  }
};

class ForStmt : public Stmt {
public:
  ForStmt(SourceLoc Loc, StmtPtr Init, ExprPtr Cond, StmtPtr Step,
          StmtPtr Body)
      : Stmt(StmtKind::For, Loc), Init(std::move(Init)),
        Cond(std::move(Cond)), Step(std::move(Step)), Body(std::move(Body)) {}

  StmtPtr Init; ///< May be null.
  ExprPtr Cond; ///< May be null (meaning `true`).
  StmtPtr Step; ///< May be null.
  StmtPtr Body;

  static bool classof(const Stmt *S) { return S->getKind() == StmtKind::For; }
};

class ReturnStmt : public Stmt {
public:
  ReturnStmt(SourceLoc Loc, ExprPtr Value)
      : Stmt(StmtKind::Return, Loc), Value(std::move(Value)) {}

  ExprPtr Value; ///< May be null.

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Return;
  }
};

class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLoc Loc) : Stmt(StmtKind::Break, Loc) {}

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Break;
  }
};

class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLoc Loc) : Stmt(StmtKind::Continue, Loc) {}

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Continue;
  }
};

class BlockStmt : public Stmt {
public:
  BlockStmt(SourceLoc Loc, std::vector<StmtPtr> Stmts)
      : Stmt(StmtKind::Block, Loc), Stmts(std::move(Stmts)) {}

  std::vector<StmtPtr> Stmts;

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Block;
  }
};

class ExprStmt : public Stmt {
public:
  ExprStmt(SourceLoc Loc, ExprPtr E)
      : Stmt(StmtKind::Expr, Loc), E(std::move(E)) {}

  ExprPtr E;

  static bool classof(const Stmt *S) { return S->getKind() == StmtKind::Expr; }
};

//===----------------------------------------------------------------------===//
// Declarations / Program
//===----------------------------------------------------------------------===//

/// `int g;`, `int g = 7;`, or `int a[100];` at file scope.
struct GlobalVarDecl {
  SourceLoc Loc;
  std::string Name;
  unsigned ArraySize = 0; ///< 0 for scalars.
  int64_t Init = 0;       ///< Scalar initializer.
};

enum class SyncObjectKind { Mutex, Barrier, Cond };

/// `mutex m;`, `barrier b(4);`, `cond c;` at file scope.
struct SyncDecl {
  SourceLoc Loc;
  SyncObjectKind Kind;
  std::string Name;
  ExprPtr Parties; ///< Barrier party count; constant-folded by Sema.
  unsigned PartiesValue = 0;
};

struct ParamDecl {
  SourceLoc Loc;
  std::string Name;
  bool IsPtr = false;
};

struct FunctionDecl {
  SourceLoc Loc;
  std::string Name;
  bool ReturnsVoid = false;
  std::vector<ParamDecl> Params;
  std::unique_ptr<BlockStmt> Body;

  /// Filled by Sema.
  unsigned Index = 0;
  unsigned NumLocals = 0;
  bool IsSpawnTarget = false;
};

/// A parsed MiniC translation unit.
struct Program {
  std::vector<GlobalVarDecl> Globals;
  std::vector<SyncDecl> Syncs;
  std::vector<std::unique_ptr<FunctionDecl>> Functions;

  /// Returns the function named \p Name or null.
  FunctionDecl *findFunction(const std::string &Name) const;
};

/// LLVM-style dyn_cast helpers for the small AST hierarchies.
template <typename To, typename From> To *dynCast(From *Node) {
  return Node && To::classof(Node) ? static_cast<To *>(Node) : nullptr;
}
template <typename To, typename From> const To *dynCast(const From *Node) {
  return Node && To::classof(Node) ? static_cast<const To *>(Node) : nullptr;
}
template <typename To, typename From> To *cast(From *Node) {
  assert(Node && To::classof(Node) && "cast to wrong AST node type");
  return static_cast<To *>(Node);
}
template <typename To, typename From> const To *cast(const From *Node) {
  assert(Node && To::classof(Node) && "cast to wrong AST node type");
  return static_cast<const To *>(Node);
}
template <typename To, typename From> bool isa(const From *Node) {
  assert(Node && "isa on null node");
  return To::classof(Node);
}

} // namespace chimera

#endif // CHIMERA_LANG_AST_H
