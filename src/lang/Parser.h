//===- lang/Parser.h - MiniC recursive-descent parser -----------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser producing the AST in lang/Ast.h. Binary
/// operators are parsed with precedence climbing; `x++;` / `x--;` are
/// desugared to compound assignments.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_LANG_PARSER_H
#define CHIMERA_LANG_PARSER_H

#include "lang/Ast.h"
#include "lang/Diagnostics.h"
#include "support/Expected.h"

#include <memory>
#include <vector>

namespace chimera {

class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagEngine &Diags);

  /// Parses a whole translation unit. On error, diagnostics are recorded
  /// and a best-effort partial Program is still returned.
  std::unique_ptr<Program> parseProgram();

private:
  const Token &peek(unsigned Ahead = 0) const;
  const Token &advance();
  bool check(TokenKind Kind) const { return peek().is(Kind); }
  bool accept(TokenKind Kind);
  const Token &expect(TokenKind Kind, const char *Context);
  void synchronizeToSemicolon();

  void parseTopLevel(Program &Prog);
  void parseGlobalOrFunction(Program &Prog, bool ReturnsVoid);
  std::unique_ptr<FunctionDecl> parseFunctionRest(SourceLoc Loc,
                                                  std::string Name,
                                                  bool ReturnsVoid);
  std::unique_ptr<BlockStmt> parseBlock();
  StmtPtr parseStmt();
  StmtPtr parseSimpleStmt(); ///< Decl/assign/expr, no trailing ';'.
  StmtPtr parseDeclStmtRest(SourceLoc Loc);
  StmtPtr parseAssignOrExprRest(ExprPtr Lead, SourceLoc Loc);

  ExprPtr parseExpr();
  ExprPtr parseBinaryRHS(unsigned MinPrec, ExprPtr LHS);
  ExprPtr parseUnary();
  ExprPtr parsePostfix(ExprPtr Base);
  ExprPtr parsePrimary();

  std::vector<Token> Tokens;
  DiagEngine &Diags;
  size_t Pos = 0;
};

/// Convenience: lex, parse, and sema-check \p Source in one call. On
/// failure the error message is the newline-joined diagnostics.
support::Expected<std::unique_ptr<Program>>
parseMiniC(const std::string &Source);

} // namespace chimera

#endif // CHIMERA_LANG_PARSER_H
