//===- lang/Sema.cpp - MiniC semantic analysis -----------------------------===//

#include "lang/Sema.h"

#include <cassert>

using namespace chimera;

support::Error Sema::run(Program &Prog) {
  this->Prog = &Prog;
  declareGlobals(Prog);

  for (auto &Func : Prog.Functions)
    checkFunction(*Func);

  if (!Prog.findFunction("main"))
    Diags.error({1, 1}, "program has no 'main' function");
  else if (!Prog.findFunction("main")->Params.empty())
    Diags.error(Prog.findFunction("main")->Loc,
                "'main' must take no parameters");

  if (Diags.hasErrors())
    return support::Error::failure(Diags.str());
  return support::Error::success();
}

void Sema::declareGlobals(Program &Prog) {
  auto declare = [&](const std::string &Name, SourceLoc Loc, Symbol Sym) {
    if (!GlobalScope.emplace(Name, Sym).second)
      Diags.error(Loc, "redefinition of '" + Name + "'");
  };

  for (unsigned I = 0; I != Prog.Globals.size(); ++I) {
    const GlobalVarDecl &G = Prog.Globals[I];
    Symbol Sym;
    Sym.Kind = SymbolKind::Global;
    Sym.Index = I;
    Sym.ArraySize = G.ArraySize;
    // An array name used as a value decays to a pointer.
    Sym.Type = G.ArraySize ? MiniType::Ptr : MiniType::Int;
    declare(G.Name, G.Loc, Sym);
  }

  for (unsigned I = 0; I != Prog.Syncs.size(); ++I) {
    SyncDecl &S = Prog.Syncs[I];
    Symbol Sym;
    switch (S.Kind) {
    case SyncObjectKind::Mutex: Sym.Kind = SymbolKind::Mutex; break;
    case SyncObjectKind::Barrier: Sym.Kind = SymbolKind::Barrier; break;
    case SyncObjectKind::Cond: Sym.Kind = SymbolKind::Cond; break;
    }
    Sym.Index = I;
    declare(S.Name, S.Loc, Sym);

    if (S.Kind == SyncObjectKind::Barrier) {
      int64_t Parties = 0;
      if (!S.Parties || !foldConstant(S.Parties.get(), Parties) ||
          Parties <= 0)
        Diags.error(S.Loc,
                    "barrier party count must be a positive constant");
      else
        S.PartiesValue = static_cast<unsigned>(Parties);
    }
  }

  for (unsigned I = 0; I != Prog.Functions.size(); ++I) {
    FunctionDecl &F = *Prog.Functions[I];
    F.Index = I;
    Symbol Sym;
    Sym.Kind = SymbolKind::Function;
    Sym.Index = I;
    declare(F.Name, F.Loc, Sym);
  }
}

bool Sema::foldConstant(const Expr *E, int64_t &Out) const {
  if (const auto *Lit = dynCast<IntLitExpr>(E)) {
    Out = Lit->Value;
    return true;
  }
  if (const auto *Un = dynCast<UnaryExpr>(E)) {
    int64_t Sub;
    if (!foldConstant(Un->Sub.get(), Sub))
      return false;
    Out = Un->Op == UnaryOp::Neg ? -Sub : !Sub;
    return true;
  }
  if (const auto *Bin = dynCast<BinaryExpr>(E)) {
    int64_t L, R;
    if (!foldConstant(Bin->LHS.get(), L) || !foldConstant(Bin->RHS.get(), R))
      return false;
    switch (Bin->Op) {
    case BinaryOp::Add: Out = L + R; return true;
    case BinaryOp::Sub: Out = L - R; return true;
    case BinaryOp::Mul: Out = L * R; return true;
    case BinaryOp::Div:
      if (R == 0)
        return false;
      Out = L / R;
      return true;
    case BinaryOp::Shl: Out = L << (R & 63); return true;
    default: return false;
    }
  }
  return false;
}

void Sema::pushScope() { LocalScopes.emplace_back(); }
void Sema::popScope() { LocalScopes.pop_back(); }

Symbol *Sema::resolve(const std::string &Name, SourceLoc Loc) {
  for (auto It = LocalScopes.rbegin(); It != LocalScopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return &Found->second;
  }
  auto Found = GlobalScope.find(Name);
  if (Found != GlobalScope.end())
    return &Found->second;
  Diags.error(Loc, "use of undeclared identifier '" + Name + "'");
  return nullptr;
}

void Sema::checkFunction(FunctionDecl &Func) {
  CurFunc = &Func;
  NextLocal = 0;
  LoopDepth = 0;
  LocalScopes.clear();
  pushScope();

  for (unsigned I = 0; I != Func.Params.size(); ++I) {
    const ParamDecl &Param = Func.Params[I];
    Symbol Sym;
    Sym.Kind = SymbolKind::Param;
    Sym.Index = I;
    Sym.Type = Param.IsPtr ? MiniType::Ptr : MiniType::Int;
    if (!LocalScopes.back().emplace(Param.Name, Sym).second)
      Diags.error(Param.Loc,
                  "redefinition of parameter '" + Param.Name + "'");
  }

  if (Func.Body)
    for (auto &S : Func.Body->Stmts)
      checkStmt(S.get());

  popScope();
  Func.NumLocals = NextLocal;
  CurFunc = nullptr;
}

void Sema::declareLocal(DeclStmt *Decl) {
  Symbol Sym;
  Sym.Kind = SymbolKind::Local;
  Sym.Index = NextLocal++;
  Sym.Type = Decl->IsPtr ? MiniType::Ptr : MiniType::Int;
  Decl->LocalIndex = Sym.Index;
  if (!LocalScopes.back().emplace(Decl->Name, Sym).second)
    Diags.error(Decl->Loc, "redefinition of '" + Decl->Name +
                               "' in the same scope");
}

void Sema::checkStmt(Stmt *S) {
  switch (S->getKind()) {
  case StmtKind::Decl: {
    auto *Decl = cast<DeclStmt>(S);
    if (Decl->Init) {
      MiniType InitTy = checkExpr(Decl->Init.get());
      MiniType WantTy = Decl->IsPtr ? MiniType::Ptr : MiniType::Int;
      if (InitTy != WantTy)
        Diags.error(Decl->Loc, std::string("cannot initialize '") +
                                   miniTypeName(WantTy) + "' with '" +
                                   miniTypeName(InitTy) + "'");
    }
    declareLocal(Decl);
    return;
  }
  case StmtKind::Assign: {
    auto *Assign = cast<AssignStmt>(S);
    MiniType TargetTy;
    if (auto *Ref = dynCast<VarRefExpr>(Assign->Target.get())) {
      TargetTy = checkExpr(Ref);
      if (Ref->Sym.Kind == SymbolKind::Global && Ref->Sym.ArraySize)
        Diags.error(Ref->Loc, "cannot assign to array '" + Ref->Name + "'");
      else if (Ref->Sym.Kind != SymbolKind::Local &&
               Ref->Sym.Kind != SymbolKind::Param &&
               Ref->Sym.Kind != SymbolKind::Global &&
               Ref->Sym.Kind != SymbolKind::Unresolved)
        Diags.error(Ref->Loc, "'" + Ref->Name + "' is not assignable");
    } else if (isa<IndexExpr>(Assign->Target.get())) {
      TargetTy = checkExpr(Assign->Target.get());
    } else {
      Diags.error(Assign->Loc, "assignment target must be a variable or "
                               "an indexed element");
      TargetTy = MiniType::Int;
    }
    MiniType ValueTy = checkExpr(Assign->Value.get());
    if (Assign->Op != AssignOp::Assign) {
      // += / -= support ptr += int as pointer arithmetic.
      if (TargetTy == MiniType::Ptr && ValueTy != MiniType::Int)
        Diags.error(Assign->Loc, "pointer adjustment needs an int");
      else if (TargetTy == MiniType::Int && ValueTy != MiniType::Int)
        Diags.error(Assign->Loc, "compound assignment needs int operands");
    } else if (TargetTy != ValueTy) {
      Diags.error(Assign->Loc, std::string("cannot assign '") +
                                   miniTypeName(ValueTy) + "' to '" +
                                   miniTypeName(TargetTy) + "'");
    }
    return;
  }
  case StmtKind::If: {
    auto *If = cast<IfStmt>(S);
    checkExpr(If->Cond.get());
    checkStmt(If->Then.get());
    if (If->Else)
      checkStmt(If->Else.get());
    return;
  }
  case StmtKind::While: {
    auto *While = cast<WhileStmt>(S);
    checkExpr(While->Cond.get());
    ++LoopDepth;
    checkStmt(While->Body.get());
    --LoopDepth;
    return;
  }
  case StmtKind::For: {
    auto *For = cast<ForStmt>(S);
    pushScope();
    if (For->Init)
      checkStmt(For->Init.get());
    if (For->Cond)
      checkExpr(For->Cond.get());
    if (For->Step)
      checkStmt(For->Step.get());
    ++LoopDepth;
    checkStmt(For->Body.get());
    --LoopDepth;
    popScope();
    return;
  }
  case StmtKind::Return: {
    auto *Ret = cast<ReturnStmt>(S);
    assert(CurFunc && "return outside function");
    if (CurFunc->ReturnsVoid && Ret->Value)
      Diags.error(Ret->Loc, "void function cannot return a value");
    if (!CurFunc->ReturnsVoid && !Ret->Value)
      Diags.error(Ret->Loc, "non-void function must return a value");
    if (Ret->Value && checkExpr(Ret->Value.get()) == MiniType::Void)
      Diags.error(Ret->Loc, "cannot return a void value");
    return;
  }
  case StmtKind::Break:
    if (!LoopDepth)
      Diags.error(S->Loc, "'break' outside of a loop");
    return;
  case StmtKind::Continue:
    if (!LoopDepth)
      Diags.error(S->Loc, "'continue' outside of a loop");
    return;
  case StmtKind::Block: {
    auto *Block = cast<BlockStmt>(S);
    pushScope();
    for (auto &Sub : Block->Stmts)
      checkStmt(Sub.get());
    popScope();
    return;
  }
  case StmtKind::Expr:
    checkExpr(cast<ExprStmt>(S)->E.get());
    return;
  }
  assert(false && "unhandled statement kind");
}

MiniType Sema::checkExpr(Expr *E) {
  switch (E->getKind()) {
  case ExprKind::IntLit:
    E->Type = MiniType::Int;
    return E->Type;

  case ExprKind::VarRef: {
    auto *Ref = cast<VarRefExpr>(E);
    if (Symbol *Sym = resolve(Ref->Name, Ref->Loc)) {
      Ref->Sym = *Sym;
      switch (Sym->Kind) {
      case SymbolKind::Local:
      case SymbolKind::Param:
      case SymbolKind::Global:
        E->Type = Sym->Type;
        break;
      case SymbolKind::Mutex:
      case SymbolKind::Barrier:
      case SymbolKind::Cond:
      case SymbolKind::Function:
        // Only valid in specific builtin argument positions; checkCall
        // rewrites those cases before evaluating argument types.
        Diags.error(Ref->Loc, "'" + Ref->Name +
                                  "' cannot be used as a value here");
        E->Type = MiniType::Int;
        break;
      case SymbolKind::Unresolved:
        E->Type = MiniType::Int;
        break;
      }
    }
    return E->Type;
  }

  case ExprKind::Index: {
    auto *Index = cast<IndexExpr>(E);
    MiniType BaseTy = checkExpr(Index->Base.get());
    if (BaseTy != MiniType::Ptr)
      Diags.error(Index->Loc, "indexed base must be an array or pointer");
    if (checkExpr(Index->Index.get()) != MiniType::Int)
      Diags.error(Index->Loc, "array index must be an int");
    E->Type = MiniType::Int;
    return E->Type;
  }

  case ExprKind::Unary: {
    auto *Un = cast<UnaryExpr>(E);
    if (checkExpr(Un->Sub.get()) != MiniType::Int)
      Diags.error(Un->Loc, "unary operator needs an int operand");
    E->Type = MiniType::Int;
    return E->Type;
  }

  case ExprKind::Binary: {
    auto *Bin = cast<BinaryExpr>(E);
    MiniType L = checkExpr(Bin->LHS.get());
    MiniType R = checkExpr(Bin->RHS.get());
    switch (Bin->Op) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
      if (L == MiniType::Ptr && R == MiniType::Int) {
        E->Type = MiniType::Ptr; // Pointer arithmetic, element-scaled.
        return E->Type;
      }
      break;
    case BinaryOp::Eq:
    case BinaryOp::Ne:
      if (L == MiniType::Ptr && R == MiniType::Ptr) {
        E->Type = MiniType::Int;
        return E->Type;
      }
      break;
    default:
      break;
    }
    if (L != MiniType::Int || R != MiniType::Int)
      Diags.error(Bin->Loc, std::string("invalid operands to '") +
                                binaryOpSpelling(Bin->Op) + "' ('" +
                                miniTypeName(L) + "' and '" +
                                miniTypeName(R) + "')");
    E->Type = MiniType::Int;
    return E->Type;
  }

  case ExprKind::Call:
    return checkCall(cast<CallExpr>(E));

  case ExprKind::AddrOf: {
    auto *Addr = cast<AddrOfExpr>(E);
    if (Symbol *Sym = resolve(Addr->Name, Addr->Loc)) {
      Addr->Sym = *Sym;
      bool IsVar = Sym->Kind == SymbolKind::Global ||
                   ((Sym->Kind == SymbolKind::Local ||
                     Sym->Kind == SymbolKind::Param) &&
                    Sym->Type == MiniType::Ptr);
      if (!IsVar)
        Diags.error(Addr->Loc,
                    "'&' requires a global variable or pointer target");
      if (Addr->Index && Sym->Kind == SymbolKind::Global && !Sym->ArraySize)
        Diags.error(Addr->Loc, "cannot index a scalar global");
    }
    if (Addr->Index && checkExpr(Addr->Index.get()) != MiniType::Int)
      Diags.error(Addr->Loc, "'&' index must be an int");
    E->Type = MiniType::Ptr;
    return E->Type;
  }
  }
  assert(false && "unhandled expression kind");
  return MiniType::Int;
}

void Sema::checkBuiltinSyncArg(CallExpr *Call, unsigned ArgIdx,
                               SymbolKind Expected, const char *What) {
  if (ArgIdx >= Call->Args.size())
    return; // Arity error reported by the caller.
  auto *Ref = dynCast<VarRefExpr>(Call->Args[ArgIdx].get());
  Symbol *Sym = Ref ? resolve(Ref->Name, Ref->Loc) : nullptr;
  if (!Ref || !Sym || Sym->Kind != Expected) {
    Diags.error(Call->Loc, std::string("argument ") +
                               std::to_string(ArgIdx + 1) + " of '" +
                               Call->Callee + "' must name a " + What);
    return;
  }
  Ref->Sym = *Sym;
  Ref->Type = MiniType::Int; // Sync handles flow as opaque ids.
}

MiniType Sema::checkCall(CallExpr *Call) {
  struct BuiltinSig {
    BuiltinKind Kind;
    int Arity; ///< -1 for variadic (spawn).
    MiniType Result;
  };
  static const std::unordered_map<std::string, BuiltinSig> Builtins = {
      {"lock", {BuiltinKind::Lock, 1, MiniType::Void}},
      {"unlock", {BuiltinKind::Unlock, 1, MiniType::Void}},
      {"barrier_wait", {BuiltinKind::BarrierWait, 1, MiniType::Void}},
      {"cond_wait", {BuiltinKind::CondWait, 2, MiniType::Void}},
      {"cond_signal", {BuiltinKind::CondSignal, 1, MiniType::Void}},
      {"cond_broadcast", {BuiltinKind::CondBroadcast, 1, MiniType::Void}},
      {"spawn", {BuiltinKind::Spawn, -1, MiniType::Int}},
      {"join", {BuiltinKind::Join, 1, MiniType::Void}},
      {"alloc", {BuiltinKind::Alloc, 1, MiniType::Ptr}},
      {"input", {BuiltinKind::Input, 0, MiniType::Int}},
      {"net_recv", {BuiltinKind::NetRecv, 0, MiniType::Int}},
      {"file_read", {BuiltinKind::FileRead, 0, MiniType::Int}},
      {"output", {BuiltinKind::Output, 1, MiniType::Void}},
      {"yield", {BuiltinKind::Yield, 0, MiniType::Void}},
  };

  auto It = Builtins.find(Call->Callee);
  if (It != Builtins.end()) {
    const BuiltinSig &Sig = It->second;
    Call->Builtin = Sig.Kind;

    if (Sig.Arity >= 0 &&
        Call->Args.size() != static_cast<size_t>(Sig.Arity)) {
      Diags.error(Call->Loc, "'" + Call->Callee + "' expects " +
                                 std::to_string(Sig.Arity) + " argument(s)");
      Call->Type = Sig.Result;
      return Call->Type;
    }

    switch (Sig.Kind) {
    case BuiltinKind::Lock:
    case BuiltinKind::Unlock:
      checkBuiltinSyncArg(Call, 0, SymbolKind::Mutex, "mutex");
      break;
    case BuiltinKind::BarrierWait:
      checkBuiltinSyncArg(Call, 0, SymbolKind::Barrier, "barrier");
      break;
    case BuiltinKind::CondWait:
      checkBuiltinSyncArg(Call, 0, SymbolKind::Cond, "condition variable");
      checkBuiltinSyncArg(Call, 1, SymbolKind::Mutex, "mutex");
      break;
    case BuiltinKind::CondSignal:
    case BuiltinKind::CondBroadcast:
      checkBuiltinSyncArg(Call, 0, SymbolKind::Cond, "condition variable");
      break;
    case BuiltinKind::Spawn: {
      if (Call->Args.empty()) {
        Diags.error(Call->Loc, "'spawn' needs a function to start");
        break;
      }
      auto *Ref = dynCast<VarRefExpr>(Call->Args[0].get());
      Symbol *Sym = Ref ? resolve(Ref->Name, Ref->Loc) : nullptr;
      if (!Ref || !Sym || Sym->Kind != SymbolKind::Function) {
        Diags.error(Call->Loc,
                    "first argument of 'spawn' must name a function");
        break;
      }
      Ref->Sym = *Sym;
      Ref->Type = MiniType::Int;
      Call->SpawnTarget = Sym->Index;
      FunctionDecl &Target = *Prog->Functions[Sym->Index];
      Target.IsSpawnTarget = true;
      if (Call->Args.size() - 1 != Target.Params.size()) {
        Diags.error(Call->Loc, "'spawn' passes " +
                                   std::to_string(Call->Args.size() - 1) +
                                   " argument(s) but '" + Target.Name +
                                   "' takes " +
                                   std::to_string(Target.Params.size()));
        break;
      }
      for (unsigned I = 1; I != Call->Args.size(); ++I) {
        MiniType ArgTy = checkExpr(Call->Args[I].get());
        MiniType WantTy = Target.Params[I - 1].IsPtr ? MiniType::Ptr
                                                     : MiniType::Int;
        if (ArgTy != WantTy)
          Diags.error(Call->Args[I]->Loc,
                      std::string("spawn argument type mismatch: expected "
                                  "'") +
                          miniTypeName(WantTy) + "', got '" +
                          miniTypeName(ArgTy) + "'");
      }
      break;
    }
    case BuiltinKind::Join:
    case BuiltinKind::Alloc:
    case BuiltinKind::Output:
      if (!Call->Args.empty() &&
          checkExpr(Call->Args[0].get()) != MiniType::Int)
        Diags.error(Call->Loc, "'" + Call->Callee + "' expects an int");
      break;
    case BuiltinKind::Input:
    case BuiltinKind::NetRecv:
    case BuiltinKind::FileRead:
    case BuiltinKind::Yield:
      break;
    case BuiltinKind::None:
      assert(false && "builtin table contains None");
      break;
    }
    Call->Type = Sig.Result;
    return Call->Type;
  }

  // User-function call.
  FunctionDecl *Callee = Prog->findFunction(Call->Callee);
  if (!Callee) {
    Diags.error(Call->Loc, "call to undeclared function '" + Call->Callee +
                               "'");
    Call->Type = MiniType::Int;
    return Call->Type;
  }
  Call->CalleeIndex = Callee->Index;
  if (Call->Args.size() != Callee->Params.size()) {
    Diags.error(Call->Loc, "'" + Call->Callee + "' takes " +
                               std::to_string(Callee->Params.size()) +
                               " argument(s), got " +
                               std::to_string(Call->Args.size()));
  }
  for (unsigned I = 0; I != Call->Args.size(); ++I) {
    MiniType ArgTy = checkExpr(Call->Args[I].get());
    if (I < Callee->Params.size()) {
      MiniType WantTy =
          Callee->Params[I].IsPtr ? MiniType::Ptr : MiniType::Int;
      if (ArgTy != WantTy)
        Diags.error(Call->Args[I]->Loc,
                    std::string("argument type mismatch: expected '") +
                        miniTypeName(WantTy) + "', got '" +
                        miniTypeName(ArgTy) + "'");
    }
  }
  Call->Type = Callee->ReturnsVoid ? MiniType::Void : MiniType::Int;
  return Call->Type;
}
