//===- lang/Lexer.cpp - MiniC lexer ----------------------------------------===//

#include "lang/Lexer.h"

#include <cassert>
#include <cctype>
#include <unordered_map>

using namespace chimera;

const char *chimera::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof: return "end of input";
  case TokenKind::Identifier: return "identifier";
  case TokenKind::IntLiteral: return "integer literal";
  case TokenKind::KwInt: return "'int'";
  case TokenKind::KwVoid: return "'void'";
  case TokenKind::KwMutex: return "'mutex'";
  case TokenKind::KwBarrier: return "'barrier'";
  case TokenKind::KwCond: return "'cond'";
  case TokenKind::KwIf: return "'if'";
  case TokenKind::KwElse: return "'else'";
  case TokenKind::KwWhile: return "'while'";
  case TokenKind::KwFor: return "'for'";
  case TokenKind::KwReturn: return "'return'";
  case TokenKind::KwBreak: return "'break'";
  case TokenKind::KwContinue: return "'continue'";
  case TokenKind::LParen: return "'('";
  case TokenKind::RParen: return "')'";
  case TokenKind::LBrace: return "'{'";
  case TokenKind::RBrace: return "'}'";
  case TokenKind::LBracket: return "'['";
  case TokenKind::RBracket: return "']'";
  case TokenKind::Comma: return "','";
  case TokenKind::Semicolon: return "';'";
  case TokenKind::Assign: return "'='";
  case TokenKind::PlusAssign: return "'+='";
  case TokenKind::MinusAssign: return "'-='";
  case TokenKind::Plus: return "'+'";
  case TokenKind::Minus: return "'-'";
  case TokenKind::Star: return "'*'";
  case TokenKind::Slash: return "'/'";
  case TokenKind::Percent: return "'%'";
  case TokenKind::Amp: return "'&'";
  case TokenKind::Pipe: return "'|'";
  case TokenKind::Caret: return "'^'";
  case TokenKind::Shl: return "'<<'";
  case TokenKind::Shr: return "'>>'";
  case TokenKind::Less: return "'<'";
  case TokenKind::LessEq: return "'<='";
  case TokenKind::Greater: return "'>'";
  case TokenKind::GreaterEq: return "'>='";
  case TokenKind::EqEq: return "'=='";
  case TokenKind::NotEq: return "'!='";
  case TokenKind::AmpAmp: return "'&&'";
  case TokenKind::PipePipe: return "'||'";
  case TokenKind::Bang: return "'!'";
  case TokenKind::PlusPlus: return "'++'";
  case TokenKind::MinusMinus: return "'--'";
  }
  return "unknown token";
}

Lexer::Lexer(std::string Source, DiagEngine &Diags)
    : Source(std::move(Source)), Diags(Diags) {}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  assert(Pos < Source.size() && "advanced past end of input");
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipTrivia() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = loc();
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          Diags.error(Start, "unterminated block comment");
          return;
        }
        advance();
      }
      advance();
      advance();
      continue;
    }
    return;
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Token Tok = lexToken();
    bool Done = Tok.is(TokenKind::Eof);
    Tokens.push_back(std::move(Tok));
    if (Done)
      return Tokens;
  }
}

Token Lexer::lexToken() {
  static const std::unordered_map<std::string, TokenKind> Keywords = {
      {"int", TokenKind::KwInt},         {"void", TokenKind::KwVoid},
      {"mutex", TokenKind::KwMutex},     {"barrier", TokenKind::KwBarrier},
      {"cond", TokenKind::KwCond},       {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},       {"while", TokenKind::KwWhile},
      {"for", TokenKind::KwFor},         {"return", TokenKind::KwReturn},
      {"break", TokenKind::KwBreak},     {"continue", TokenKind::KwContinue},
  };

  skipTrivia();

  Token Tok;
  Tok.Loc = loc();
  if (Pos >= Source.size()) {
    Tok.Kind = TokenKind::Eof;
    return Tok;
  }

  char C = advance();

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Text(1, C);
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      Text += advance();
    auto It = Keywords.find(Text);
    if (It != Keywords.end()) {
      Tok.Kind = It->second;
    } else {
      Tok.Kind = TokenKind::Identifier;
      Tok.Text = std::move(Text);
    }
    return Tok;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    int64_t Value = 0;
    if (C == '0' && (peek() == 'x' || peek() == 'X')) {
      advance();
      bool AnyDigit = false;
      while (std::isxdigit(static_cast<unsigned char>(peek()))) {
        char D = advance();
        int Nibble = std::isdigit(static_cast<unsigned char>(D))
                         ? D - '0'
                         : std::tolower(D) - 'a' + 10;
        Value = Value * 16 + Nibble;
        AnyDigit = true;
      }
      if (!AnyDigit)
        Diags.error(Tok.Loc, "expected hexadecimal digits after '0x'");
    } else {
      Value = C - '0';
      while (std::isdigit(static_cast<unsigned char>(peek())))
        Value = Value * 10 + (advance() - '0');
    }
    Tok.Kind = TokenKind::IntLiteral;
    Tok.IntValue = Value;
    return Tok;
  }

  switch (C) {
  case '(': Tok.Kind = TokenKind::LParen; return Tok;
  case ')': Tok.Kind = TokenKind::RParen; return Tok;
  case '{': Tok.Kind = TokenKind::LBrace; return Tok;
  case '}': Tok.Kind = TokenKind::RBrace; return Tok;
  case '[': Tok.Kind = TokenKind::LBracket; return Tok;
  case ']': Tok.Kind = TokenKind::RBracket; return Tok;
  case ',': Tok.Kind = TokenKind::Comma; return Tok;
  case ';': Tok.Kind = TokenKind::Semicolon; return Tok;
  case '+':
    Tok.Kind = match('+') ? TokenKind::PlusPlus
               : match('=') ? TokenKind::PlusAssign
                            : TokenKind::Plus;
    return Tok;
  case '-':
    Tok.Kind = match('-') ? TokenKind::MinusMinus
               : match('=') ? TokenKind::MinusAssign
                            : TokenKind::Minus;
    return Tok;
  case '*': Tok.Kind = TokenKind::Star; return Tok;
  case '/': Tok.Kind = TokenKind::Slash; return Tok;
  case '%': Tok.Kind = TokenKind::Percent; return Tok;
  case '^': Tok.Kind = TokenKind::Caret; return Tok;
  case '&':
    Tok.Kind = match('&') ? TokenKind::AmpAmp : TokenKind::Amp;
    return Tok;
  case '|':
    Tok.Kind = match('|') ? TokenKind::PipePipe : TokenKind::Pipe;
    return Tok;
  case '<':
    Tok.Kind = match('<')   ? TokenKind::Shl
               : match('=') ? TokenKind::LessEq
                            : TokenKind::Less;
    return Tok;
  case '>':
    Tok.Kind = match('>')   ? TokenKind::Shr
               : match('=') ? TokenKind::GreaterEq
                            : TokenKind::Greater;
    return Tok;
  case '=':
    Tok.Kind = match('=') ? TokenKind::EqEq : TokenKind::Assign;
    return Tok;
  case '!':
    Tok.Kind = match('=') ? TokenKind::NotEq : TokenKind::Bang;
    return Tok;
  default:
    Diags.error(Tok.Loc, std::string("unexpected character '") + C + "'");
    return lexToken(); // Skip and continue; Eof terminates recursion.
  }
}
