//===- lang/Ast.cpp - MiniC abstract syntax tree ---------------------------===//

#include "lang/Ast.h"

using namespace chimera;

Expr::~Expr() = default;
Stmt::~Stmt() = default;

const char *chimera::miniTypeName(MiniType Type) {
  switch (Type) {
  case MiniType::Int: return "int";
  case MiniType::Ptr: return "int*";
  case MiniType::Void: return "void";
  }
  return "?";
}

const char *chimera::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add: return "+";
  case BinaryOp::Sub: return "-";
  case BinaryOp::Mul: return "*";
  case BinaryOp::Div: return "/";
  case BinaryOp::Rem: return "%";
  case BinaryOp::And: return "&";
  case BinaryOp::Or: return "|";
  case BinaryOp::Xor: return "^";
  case BinaryOp::Shl: return "<<";
  case BinaryOp::Shr: return ">>";
  case BinaryOp::Lt: return "<";
  case BinaryOp::Le: return "<=";
  case BinaryOp::Gt: return ">";
  case BinaryOp::Ge: return ">=";
  case BinaryOp::Eq: return "==";
  case BinaryOp::Ne: return "!=";
  case BinaryOp::LAnd: return "&&";
  case BinaryOp::LOr: return "||";
  }
  return "?";
}

const char *chimera::builtinKindName(BuiltinKind Kind) {
  switch (Kind) {
  case BuiltinKind::None: return "none";
  case BuiltinKind::Lock: return "lock";
  case BuiltinKind::Unlock: return "unlock";
  case BuiltinKind::BarrierWait: return "barrier_wait";
  case BuiltinKind::CondWait: return "cond_wait";
  case BuiltinKind::CondSignal: return "cond_signal";
  case BuiltinKind::CondBroadcast: return "cond_broadcast";
  case BuiltinKind::Spawn: return "spawn";
  case BuiltinKind::Join: return "join";
  case BuiltinKind::Alloc: return "alloc";
  case BuiltinKind::Input: return "input";
  case BuiltinKind::NetRecv: return "net_recv";
  case BuiltinKind::FileRead: return "file_read";
  case BuiltinKind::Output: return "output";
  case BuiltinKind::Yield: return "yield";
  }
  return "?";
}

FunctionDecl *Program::findFunction(const std::string &Name) const {
  for (const auto &F : Functions)
    if (F->Name == Name)
      return F.get();
  return nullptr;
}
