//===- lang/Parser.cpp - MiniC recursive-descent parser --------------------===//

#include "lang/Parser.h"

#include "lang/Lexer.h"
#include "lang/Sema.h"

#include <cassert>

using namespace chimera;

Parser::Parser(std::vector<Token> Tokens, DiagEngine &Diags)
    : Tokens(std::move(Tokens)), Diags(Diags) {
  assert(!this->Tokens.empty() &&
         this->Tokens.back().is(TokenKind::Eof) &&
         "token stream must end with Eof");
}

const Token &Parser::peek(unsigned Ahead) const {
  size_t Index = std::min(Pos + Ahead, Tokens.size() - 1);
  return Tokens[Index];
}

const Token &Parser::advance() {
  const Token &Tok = Tokens[Pos];
  if (!Tok.is(TokenKind::Eof))
    ++Pos;
  return Tok;
}

bool Parser::accept(TokenKind Kind) {
  if (!check(Kind))
    return false;
  advance();
  return true;
}

const Token &Parser::expect(TokenKind Kind, const char *Context) {
  if (check(Kind))
    return advance();
  Diags.error(peek().Loc, std::string("expected ") + tokenKindName(Kind) +
                              " " + Context + ", found " +
                              tokenKindName(peek().Kind));
  return peek();
}

void Parser::synchronizeToSemicolon() {
  while (!check(TokenKind::Eof) && !check(TokenKind::Semicolon) &&
         !check(TokenKind::RBrace))
    advance();
  accept(TokenKind::Semicolon);
}

std::unique_ptr<Program> Parser::parseProgram() {
  auto Prog = std::make_unique<Program>();
  while (!check(TokenKind::Eof)) {
    size_t Before = Pos;
    parseTopLevel(*Prog);
    if (Pos == Before) {
      // Defensive progress guarantee on malformed input.
      Diags.error(peek().Loc, "unexpected token at top level");
      advance();
    }
  }
  return Prog;
}

void Parser::parseTopLevel(Program &Prog) {
  SourceLoc Loc = peek().Loc;

  if (accept(TokenKind::KwMutex)) {
    SyncDecl Decl;
    Decl.Loc = Loc;
    Decl.Kind = SyncObjectKind::Mutex;
    Decl.Name = expect(TokenKind::Identifier, "in mutex declaration").Text;
    expect(TokenKind::Semicolon, "after mutex declaration");
    Prog.Syncs.push_back(std::move(Decl));
    return;
  }

  if (accept(TokenKind::KwBarrier)) {
    SyncDecl Decl;
    Decl.Loc = Loc;
    Decl.Kind = SyncObjectKind::Barrier;
    Decl.Name = expect(TokenKind::Identifier, "in barrier declaration").Text;
    expect(TokenKind::LParen, "after barrier name");
    Decl.Parties = parseExpr();
    expect(TokenKind::RParen, "after barrier party count");
    expect(TokenKind::Semicolon, "after barrier declaration");
    Prog.Syncs.push_back(std::move(Decl));
    return;
  }

  if (accept(TokenKind::KwCond)) {
    SyncDecl Decl;
    Decl.Loc = Loc;
    Decl.Kind = SyncObjectKind::Cond;
    Decl.Name =
        expect(TokenKind::Identifier, "in condition-variable declaration")
            .Text;
    expect(TokenKind::Semicolon, "after condition-variable declaration");
    Prog.Syncs.push_back(std::move(Decl));
    return;
  }

  if (accept(TokenKind::KwVoid)) {
    parseGlobalOrFunction(Prog, /*ReturnsVoid=*/true);
    return;
  }
  if (accept(TokenKind::KwInt)) {
    parseGlobalOrFunction(Prog, /*ReturnsVoid=*/false);
    return;
  }

  Diags.error(Loc, "expected a declaration at top level");
  synchronizeToSemicolon();
}

void Parser::parseGlobalOrFunction(Program &Prog, bool ReturnsVoid) {
  SourceLoc Loc = peek().Loc;
  std::string Name = expect(TokenKind::Identifier, "in declaration").Text;

  if (check(TokenKind::LParen)) {
    Prog.Functions.push_back(parseFunctionRest(Loc, std::move(Name),
                                               ReturnsVoid));
    return;
  }

  if (ReturnsVoid) {
    Diags.error(Loc, "global variables must have type 'int'");
    synchronizeToSemicolon();
    return;
  }

  GlobalVarDecl Decl;
  Decl.Loc = Loc;
  Decl.Name = std::move(Name);
  if (accept(TokenKind::LBracket)) {
    const Token &Size = expect(TokenKind::IntLiteral, "as array size");
    if (Size.is(TokenKind::IntLiteral)) {
      if (Size.IntValue <= 0)
        Diags.error(Size.Loc, "array size must be positive");
      else
        Decl.ArraySize = static_cast<unsigned>(Size.IntValue);
    }
    expect(TokenKind::RBracket, "after array size");
  } else if (accept(TokenKind::Assign)) {
    bool Negative = accept(TokenKind::Minus);
    const Token &Init = expect(TokenKind::IntLiteral, "as global initializer");
    if (Init.is(TokenKind::IntLiteral))
      Decl.Init = Negative ? -Init.IntValue : Init.IntValue;
  }
  expect(TokenKind::Semicolon, "after global variable");
  Prog.Globals.push_back(std::move(Decl));
}

std::unique_ptr<FunctionDecl> Parser::parseFunctionRest(SourceLoc Loc,
                                                        std::string Name,
                                                        bool ReturnsVoid) {
  auto Func = std::make_unique<FunctionDecl>();
  Func->Loc = Loc;
  Func->Name = std::move(Name);
  Func->ReturnsVoid = ReturnsVoid;

  expect(TokenKind::LParen, "after function name");
  if (!check(TokenKind::RParen)) {
    do {
      ParamDecl Param;
      Param.Loc = peek().Loc;
      expect(TokenKind::KwInt, "as parameter type");
      Param.IsPtr = accept(TokenKind::Star);
      Param.Name = expect(TokenKind::Identifier, "as parameter name").Text;
      Func->Params.push_back(std::move(Param));
    } while (accept(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "after parameter list");
  Func->Body = parseBlock();
  return Func;
}

std::unique_ptr<BlockStmt> Parser::parseBlock() {
  SourceLoc Loc = peek().Loc;
  expect(TokenKind::LBrace, "to open block");
  std::vector<StmtPtr> Stmts;
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    size_t Before = Pos;
    Stmts.push_back(parseStmt());
    if (Pos == Before) {
      Diags.error(peek().Loc, "unexpected token in block");
      advance();
    }
  }
  expect(TokenKind::RBrace, "to close block");
  return std::make_unique<BlockStmt>(Loc, std::move(Stmts));
}

StmtPtr Parser::parseStmt() {
  SourceLoc Loc = peek().Loc;

  if (check(TokenKind::LBrace))
    return parseBlock();

  if (accept(TokenKind::KwIf)) {
    expect(TokenKind::LParen, "after 'if'");
    ExprPtr Cond = parseExpr();
    expect(TokenKind::RParen, "after if condition");
    StmtPtr Then = parseStmt();
    StmtPtr Else;
    if (accept(TokenKind::KwElse))
      Else = parseStmt();
    return std::make_unique<IfStmt>(Loc, std::move(Cond), std::move(Then),
                                    std::move(Else));
  }

  if (accept(TokenKind::KwWhile)) {
    expect(TokenKind::LParen, "after 'while'");
    ExprPtr Cond = parseExpr();
    expect(TokenKind::RParen, "after while condition");
    StmtPtr Body = parseStmt();
    return std::make_unique<WhileStmt>(Loc, std::move(Cond), std::move(Body));
  }

  if (accept(TokenKind::KwFor)) {
    expect(TokenKind::LParen, "after 'for'");
    StmtPtr Init;
    if (!check(TokenKind::Semicolon))
      Init = parseSimpleStmt();
    expect(TokenKind::Semicolon, "after for-init");
    ExprPtr Cond;
    if (!check(TokenKind::Semicolon))
      Cond = parseExpr();
    expect(TokenKind::Semicolon, "after for-condition");
    StmtPtr Step;
    if (!check(TokenKind::RParen))
      Step = parseSimpleStmt();
    expect(TokenKind::RParen, "after for-step");
    StmtPtr Body = parseStmt();
    return std::make_unique<ForStmt>(Loc, std::move(Init), std::move(Cond),
                                     std::move(Step), std::move(Body));
  }

  if (accept(TokenKind::KwReturn)) {
    ExprPtr Value;
    if (!check(TokenKind::Semicolon))
      Value = parseExpr();
    expect(TokenKind::Semicolon, "after return");
    return std::make_unique<ReturnStmt>(Loc, std::move(Value));
  }

  if (accept(TokenKind::KwBreak)) {
    expect(TokenKind::Semicolon, "after 'break'");
    return std::make_unique<BreakStmt>(Loc);
  }

  if (accept(TokenKind::KwContinue)) {
    expect(TokenKind::Semicolon, "after 'continue'");
    return std::make_unique<ContinueStmt>(Loc);
  }

  StmtPtr Simple = parseSimpleStmt();
  expect(TokenKind::Semicolon, "after statement");
  return Simple;
}

StmtPtr Parser::parseSimpleStmt() {
  SourceLoc Loc = peek().Loc;
  if (accept(TokenKind::KwInt))
    return parseDeclStmtRest(Loc);
  ExprPtr Lead = parseExpr();
  return parseAssignOrExprRest(std::move(Lead), Loc);
}

StmtPtr Parser::parseDeclStmtRest(SourceLoc Loc) {
  bool IsPtr = accept(TokenKind::Star);
  std::string Name = expect(TokenKind::Identifier, "in declaration").Text;
  ExprPtr Init;
  if (accept(TokenKind::Assign))
    Init = parseExpr();
  return std::make_unique<DeclStmt>(Loc, std::move(Name), IsPtr,
                                    std::move(Init));
}

StmtPtr Parser::parseAssignOrExprRest(ExprPtr Lead, SourceLoc Loc) {
  if (accept(TokenKind::Assign)) {
    ExprPtr Value = parseExpr();
    return std::make_unique<AssignStmt>(Loc, std::move(Lead), AssignOp::Assign,
                                        std::move(Value));
  }
  if (accept(TokenKind::PlusAssign)) {
    ExprPtr Value = parseExpr();
    return std::make_unique<AssignStmt>(Loc, std::move(Lead), AssignOp::Add,
                                        std::move(Value));
  }
  if (accept(TokenKind::MinusAssign)) {
    ExprPtr Value = parseExpr();
    return std::make_unique<AssignStmt>(Loc, std::move(Lead), AssignOp::Sub,
                                        std::move(Value));
  }
  if (accept(TokenKind::PlusPlus)) {
    auto One = std::make_unique<IntLitExpr>(Loc, 1);
    return std::make_unique<AssignStmt>(Loc, std::move(Lead), AssignOp::Add,
                                        std::move(One));
  }
  if (accept(TokenKind::MinusMinus)) {
    auto One = std::make_unique<IntLitExpr>(Loc, 1);
    return std::make_unique<AssignStmt>(Loc, std::move(Lead), AssignOp::Sub,
                                        std::move(One));
  }
  return std::make_unique<ExprStmt>(Loc, std::move(Lead));
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Binding power; higher binds tighter. 0 means "not a binary operator".
static unsigned binaryPrecedence(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::PipePipe: return 1;
  case TokenKind::AmpAmp: return 2;
  case TokenKind::Pipe: return 3;
  case TokenKind::Caret: return 4;
  case TokenKind::Amp: return 5;
  case TokenKind::EqEq:
  case TokenKind::NotEq: return 6;
  case TokenKind::Less:
  case TokenKind::LessEq:
  case TokenKind::Greater:
  case TokenKind::GreaterEq: return 7;
  case TokenKind::Shl:
  case TokenKind::Shr: return 8;
  case TokenKind::Plus:
  case TokenKind::Minus: return 9;
  case TokenKind::Star:
  case TokenKind::Slash:
  case TokenKind::Percent: return 10;
  default: return 0;
  }
}

static BinaryOp binaryOpFor(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::PipePipe: return BinaryOp::LOr;
  case TokenKind::AmpAmp: return BinaryOp::LAnd;
  case TokenKind::Pipe: return BinaryOp::Or;
  case TokenKind::Caret: return BinaryOp::Xor;
  case TokenKind::Amp: return BinaryOp::And;
  case TokenKind::EqEq: return BinaryOp::Eq;
  case TokenKind::NotEq: return BinaryOp::Ne;
  case TokenKind::Less: return BinaryOp::Lt;
  case TokenKind::LessEq: return BinaryOp::Le;
  case TokenKind::Greater: return BinaryOp::Gt;
  case TokenKind::GreaterEq: return BinaryOp::Ge;
  case TokenKind::Shl: return BinaryOp::Shl;
  case TokenKind::Shr: return BinaryOp::Shr;
  case TokenKind::Plus: return BinaryOp::Add;
  case TokenKind::Minus: return BinaryOp::Sub;
  case TokenKind::Star: return BinaryOp::Mul;
  case TokenKind::Slash: return BinaryOp::Div;
  case TokenKind::Percent: return BinaryOp::Rem;
  default: assert(false && "not a binary operator"); return BinaryOp::Add;
  }
}

ExprPtr Parser::parseExpr() { return parseBinaryRHS(1, parseUnary()); }

ExprPtr Parser::parseBinaryRHS(unsigned MinPrec, ExprPtr LHS) {
  for (;;) {
    unsigned Prec = binaryPrecedence(peek().Kind);
    if (Prec < MinPrec)
      return LHS;
    SourceLoc Loc = peek().Loc;
    BinaryOp Op = binaryOpFor(advance().Kind);
    ExprPtr RHS = parseUnary();
    // All MiniC binary operators are left-associative, so fold any
    // tighter-binding operators into RHS first.
    unsigned NextPrec = binaryPrecedence(peek().Kind);
    if (NextPrec > Prec)
      RHS = parseBinaryRHS(Prec + 1, std::move(RHS));
    LHS = std::make_unique<BinaryExpr>(Loc, Op, std::move(LHS),
                                       std::move(RHS));
  }
}

ExprPtr Parser::parseUnary() {
  SourceLoc Loc = peek().Loc;
  if (accept(TokenKind::Minus))
    return std::make_unique<UnaryExpr>(Loc, UnaryOp::Neg, parseUnary());
  if (accept(TokenKind::Bang))
    return std::make_unique<UnaryExpr>(Loc, UnaryOp::Not, parseUnary());
  if (accept(TokenKind::Amp)) {
    std::string Name =
        expect(TokenKind::Identifier, "after '&'").Text;
    ExprPtr Index;
    if (accept(TokenKind::LBracket)) {
      Index = parseExpr();
      expect(TokenKind::RBracket, "after '&' index");
    }
    return std::make_unique<AddrOfExpr>(Loc, std::move(Name),
                                        std::move(Index));
  }
  return parsePostfix(parsePrimary());
}

ExprPtr Parser::parsePostfix(ExprPtr Base) {
  while (accept(TokenKind::LBracket)) {
    SourceLoc Loc = Base->Loc;
    ExprPtr Index = parseExpr();
    expect(TokenKind::RBracket, "after index expression");
    Base = std::make_unique<IndexExpr>(Loc, std::move(Base),
                                       std::move(Index));
  }
  return Base;
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = peek().Loc;

  if (check(TokenKind::IntLiteral)) {
    int64_t Value = advance().IntValue;
    return std::make_unique<IntLitExpr>(Loc, Value);
  }

  if (check(TokenKind::Identifier)) {
    std::string Name = advance().Text;
    if (accept(TokenKind::LParen)) {
      std::vector<ExprPtr> Args;
      if (!check(TokenKind::RParen)) {
        do {
          Args.push_back(parseExpr());
        } while (accept(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "after call arguments");
      return std::make_unique<CallExpr>(Loc, std::move(Name),
                                        std::move(Args));
    }
    return std::make_unique<VarRefExpr>(Loc, std::move(Name));
  }

  if (accept(TokenKind::LParen)) {
    ExprPtr Inner = parseExpr();
    expect(TokenKind::RParen, "to close parenthesized expression");
    return Inner;
  }

  Diags.error(Loc, std::string("expected an expression, found ") +
                       tokenKindName(peek().Kind));
  advance();
  return std::make_unique<IntLitExpr>(Loc, 0);
}

support::Expected<std::unique_ptr<Program>>
chimera::parseMiniC(const std::string &Source) {
  DiagEngine Diags;
  Lexer Lex(Source, Diags);
  Parser P(Lex.lexAll(), Diags);
  std::unique_ptr<Program> Prog = P.parseProgram();
  if (Diags.hasErrors())
    return support::Error::failure(Diags.str());
  Sema S(Diags);
  if (support::Error E = S.run(*Prog))
    return E;
  return Prog;
}
