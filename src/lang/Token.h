//===- lang/Token.h - MiniC tokens ------------------------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token definitions for MiniC, the small C-like input language Chimera
/// analyzes and instruments. MiniC plays the role CIL-processed C plays in
/// the paper: a language with functions, loops, global/heap arrays,
/// pointers, and explicit pthread-style synchronization.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_LANG_TOKEN_H
#define CHIMERA_LANG_TOKEN_H

#include <cstdint>
#include <string>

namespace chimera {

/// A position in MiniC source, 1-based.
struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;

  std::string str() const {
    return std::to_string(Line) + ":" + std::to_string(Col);
  }
};

enum class TokenKind {
  Eof,
  Identifier,
  IntLiteral,

  // Keywords.
  KwInt,
  KwVoid,
  KwMutex,
  KwBarrier,
  KwCond,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,

  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semicolon,

  // Operators.
  Assign,     // =
  PlusAssign, // +=
  MinusAssign,// -=
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,        // & (address-of and bitwise-and)
  Pipe,
  Caret,
  Shl,
  Shr,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  EqEq,
  NotEq,
  AmpAmp,
  PipePipe,
  Bang,
  PlusPlus,   // ++ (statement-level increment sugar)
  MinusMinus, // --
};

/// Returns a human-readable spelling for diagnostics ("'('", "identifier").
const char *tokenKindName(TokenKind Kind);

struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string Text;   // Identifier spelling.
  int64_t IntValue = 0; // IntLiteral value.

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace chimera

#endif // CHIMERA_LANG_TOKEN_H
