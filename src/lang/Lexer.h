//===- lang/Lexer.h - MiniC lexer -------------------------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for MiniC. Supports `//` and `/* */` comments,
/// decimal and hex integer literals, and the operator set in Token.h.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_LANG_LEXER_H
#define CHIMERA_LANG_LEXER_H

#include "lang/Diagnostics.h"
#include "lang/Token.h"

#include <string>
#include <vector>

namespace chimera {

class Lexer {
public:
  Lexer(std::string Source, DiagEngine &Diags);

  /// Lexes the whole input; the result always ends with an Eof token.
  std::vector<Token> lexAll();

private:
  Token lexToken();
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char Expected);
  void skipTrivia();
  SourceLoc loc() const { return {Line, Col}; }

  std::string Source;
  DiagEngine &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;
};

} // namespace chimera

#endif // CHIMERA_LANG_LEXER_H
