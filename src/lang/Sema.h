//===- lang/Sema.h - MiniC semantic analysis --------------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name resolution and type checking for MiniC. Sema annotates the AST in
/// place: identifier references get Symbol records, calls get builtin /
/// callee resolution, expressions get types, and functions get local-slot
/// counts. Codegen assumes a Sema-checked tree.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_LANG_SEMA_H
#define CHIMERA_LANG_SEMA_H

#include "lang/Ast.h"
#include "lang/Diagnostics.h"
#include "support/Expected.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace chimera {

class Sema {
public:
  explicit Sema(DiagEngine &Diags) : Diags(Diags) {}

  /// Checks \p Prog; on failure the returned error carries the joined
  /// diagnostics (also retrievable from the DiagEngine).
  support::Error run(Program &Prog);

private:
  void declareGlobals(Program &Prog);
  void checkFunction(FunctionDecl &Func);
  void checkStmt(Stmt *S);
  /// Returns the expression's type; annotates E->Type.
  MiniType checkExpr(Expr *E);
  MiniType checkCall(CallExpr *Call);
  void checkBuiltinSyncArg(CallExpr *Call, unsigned ArgIdx,
                           SymbolKind Expected, const char *What);
  Symbol *resolve(const std::string &Name, SourceLoc Loc);
  void pushScope();
  void popScope();
  void declareLocal(DeclStmt *Decl);
  bool foldConstant(const Expr *E, int64_t &Out) const;

  DiagEngine &Diags;
  Program *Prog = nullptr;
  FunctionDecl *CurFunc = nullptr;
  unsigned LoopDepth = 0;
  unsigned NextLocal = 0;

  std::unordered_map<std::string, Symbol> GlobalScope;
  // Innermost scope last; each maps name -> symbol.
  std::vector<std::unordered_map<std::string, Symbol>> LocalScopes;
};

} // namespace chimera

#endif // CHIMERA_LANG_SEMA_H
