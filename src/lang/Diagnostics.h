//===- lang/Diagnostics.h - Front-end error reporting -----------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collects front-end diagnostics instead of printing them, so callers
/// (tests, the pipeline) decide how to surface them.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_LANG_DIAGNOSTICS_H
#define CHIMERA_LANG_DIAGNOSTICS_H

#include "lang/Token.h"

#include <string>
#include <vector>

namespace chimera {

struct Diagnostic {
  SourceLoc Loc;
  std::string Message;

  std::string str() const { return Loc.str() + ": error: " + Message; }
};

/// Accumulates diagnostics produced by the lexer, parser, and sema.
class DiagEngine {
public:
  void error(SourceLoc Loc, const std::string &Message) {
    Diags.push_back({Loc, Message});
  }

  bool hasErrors() const { return !Diags.empty(); }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// All diagnostics joined by newlines; convenient for test assertions.
  std::string str() const {
    std::string Out;
    for (const Diagnostic &D : Diags) {
      Out += D.str();
      Out += '\n';
    }
    return Out;
  }

private:
  std::vector<Diagnostic> Diags;
};

} // namespace chimera

#endif // CHIMERA_LANG_DIAGNOSTICS_H
