//===- codegen/CodeGen.h - MiniC AST to Chimera IR lowering -----*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a Sema-checked MiniC Program into a Chimera IR Module.
///
/// Conventions established here and relied on downstream:
///  - registers [0, NumParams) are parameters, the next NumLocals
///    registers back MiniC locals, all later registers are
///    single-assignment temporaries;
///  - global-array accesses `a[i]` lower to AddrGlobal+Load/Store so that
///    analyses can read off the accessed object and index expression;
///  - every loop has a unique preheader block (its only entry edge from
///    outside the loop), which the bounds instrumentation uses to hoist
///    range computations;
///  - `&&`/`||` become short-circuit control flow.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_CODEGEN_CODEGEN_H
#define CHIMERA_CODEGEN_CODEGEN_H

#include "ir/Module.h"
#include "lang/Ast.h"
#include "support/Expected.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <memory>
#include <string>

namespace chimera {

/// Lowers \p Prog (which must have passed Sema) to an IR module named
/// \p ModuleName. Globals are laid out; the result passes verifyModule.
std::unique_ptr<ir::Module> generateIR(const Program &Prog,
                                       const std::string &ModuleName);

/// Convenience: parse, check, and lower \p Source. Failures carry the
/// front end's joined diagnostics.
///
/// With a registry attached, the front-end phases publish wall-clock
/// timings under "pipeline.parse" / "pipeline.sema" / "pipeline.codegen"
/// and emit trace spans into \p Trace (both may be null).
support::Expected<std::unique_ptr<ir::Module>>
compileMiniCEx(const std::string &Source, const std::string &ModuleName,
               obs::Registry *Metrics = nullptr,
               obs::TraceRecorder *Trace = nullptr);

} // namespace chimera

#endif // CHIMERA_CODEGEN_CODEGEN_H
