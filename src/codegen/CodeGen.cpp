//===- codegen/CodeGen.cpp - MiniC AST to Chimera IR lowering --------------===//

#include "codegen/CodeGen.h"

#include "ir/IRBuilder.h"
#include "lang/Lexer.h"
#include "lang/Parser.h"
#include "lang/Sema.h"

#include <cassert>

using namespace chimera;
using namespace chimera::ir;

namespace {

class FunctionLowering {
public:
  FunctionLowering(const Program &Prog, const FunctionDecl &Decl,
                   Function &Func)
      : Prog(Prog), Decl(Decl), Func(Func), Builder(Func) {}

  void run() {
    Func.Name = Decl.Name;
    Func.Index = Decl.Index;
    Func.NumParams = static_cast<uint32_t>(Decl.Params.size());
    Func.ReturnsVoid = Decl.ReturnsVoid;
    for (const ParamDecl &Param : Decl.Params)
      Func.ParamTypes.push_back(Param.IsPtr ? IRType::Ptr : IRType::Int);
    // Registers: params, then local slots, then temporaries.
    Func.NumRegs = Func.NumParams + Decl.NumLocals;

    BlockId Entry = Func.addBlock();
    Builder.setInsertBlock(Entry);

    lowerBlock(*Decl.Body);

    if (!Builder.blockClosed()) {
      // Implicit return; non-void functions fall back to returning 0.
      if (Func.ReturnsVoid)
        Builder.ret();
      else
        Builder.ret(Builder.constInt(0));
    }
  }

private:
  Reg localReg(unsigned LocalIndex) const {
    return Func.NumParams + LocalIndex;
  }

  Reg varReg(const Symbol &Sym) const {
    switch (Sym.Kind) {
    case SymbolKind::Param:
      return Sym.Index;
    case SymbolKind::Local:
      return localReg(Sym.Index);
    default:
      assert(false && "not a register-backed symbol");
      return NoReg;
    }
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  Reg lowerExpr(const Expr *E) {
    Builder.setLoc(E->Loc);
    switch (E->getKind()) {
    case ExprKind::IntLit:
      return Builder.constInt(cast<IntLitExpr>(E)->Value);

    case ExprKind::VarRef: {
      const auto *Ref = cast<VarRefExpr>(E);
      const Symbol &Sym = Ref->Sym;
      switch (Sym.Kind) {
      case SymbolKind::Param:
      case SymbolKind::Local:
        return varReg(Sym);
      case SymbolKind::Global:
        if (Sym.ArraySize)
          return Builder.addrGlobal(Sym.Index); // Array decays to pointer.
        return Builder.load(Builder.addrGlobal(Sym.Index));
      default:
        assert(false && "Sema let a non-value symbol through");
        return Builder.constInt(0);
      }
    }

    case ExprKind::Index: {
      const auto *Index = cast<IndexExpr>(E);
      return Builder.load(lowerAddress(Index));
    }

    case ExprKind::Unary: {
      const auto *Un = cast<UnaryExpr>(E);
      Reg Sub = lowerExpr(Un->Sub.get());
      Builder.setLoc(Un->Loc);
      return Builder.unary(Un->Op == UnaryOp::Neg ? UnOp::Neg : UnOp::Not,
                           Sub);
    }

    case ExprKind::Binary:
      return lowerBinary(cast<BinaryExpr>(E));

    case ExprKind::Call:
      return lowerCall(cast<CallExpr>(E), /*WantResult=*/true);

    case ExprKind::AddrOf: {
      const auto *Addr = cast<AddrOfExpr>(E);
      const Symbol &Sym = Addr->Sym;
      Reg Index = Addr->Index ? lowerExpr(Addr->Index.get()) : NoReg;
      Builder.setLoc(Addr->Loc);
      if (Sym.Kind == SymbolKind::Global)
        return Builder.addrGlobal(Sym.Index, Index);
      // &p[i] over a pointer local/param.
      Reg Base = varReg(Sym);
      return Index == NoReg ? Base : Builder.ptrAdd(Base, Index);
    }
    }
    assert(false && "unhandled expression kind");
    return NoReg;
  }

  /// Lowers `base[index]` to the address of the accessed word.
  Reg lowerAddress(const IndexExpr *Index) {
    // Global array: fold the index into AddrGlobal so analyses see the
    // object directly.
    if (const auto *Ref = dynCast<VarRefExpr>(Index->Base.get())) {
      if (Ref->Sym.Kind == SymbolKind::Global && Ref->Sym.ArraySize) {
        Reg Idx = lowerExpr(Index->Index.get());
        Builder.setLoc(Index->Loc);
        return Builder.addrGlobal(Ref->Sym.Index, Idx);
      }
    }
    Reg Base = lowerExpr(Index->Base.get());
    Reg Idx = lowerExpr(Index->Index.get());
    Builder.setLoc(Index->Loc);
    return Builder.ptrAdd(Base, Idx);
  }

  Reg lowerBinary(const BinaryExpr *Bin) {
    if (Bin->Op == BinaryOp::LAnd || Bin->Op == BinaryOp::LOr)
      return lowerShortCircuit(Bin);

    Reg LHS = lowerExpr(Bin->LHS.get());
    Reg RHS = lowerExpr(Bin->RHS.get());
    Builder.setLoc(Bin->Loc);

    // Pointer arithmetic is element-scaled PtrAdd.
    if (Bin->LHS->Type == MiniType::Ptr &&
        (Bin->Op == BinaryOp::Add || Bin->Op == BinaryOp::Sub)) {
      Reg Offset =
          Bin->Op == BinaryOp::Sub ? Builder.unary(UnOp::Neg, RHS) : RHS;
      return Builder.ptrAdd(LHS, Offset);
    }

    BinOp Op;
    switch (Bin->Op) {
    case BinaryOp::Add: Op = BinOp::Add; break;
    case BinaryOp::Sub: Op = BinOp::Sub; break;
    case BinaryOp::Mul: Op = BinOp::Mul; break;
    case BinaryOp::Div: Op = BinOp::Div; break;
    case BinaryOp::Rem: Op = BinOp::Rem; break;
    case BinaryOp::And: Op = BinOp::And; break;
    case BinaryOp::Or: Op = BinOp::Or; break;
    case BinaryOp::Xor: Op = BinOp::Xor; break;
    case BinaryOp::Shl: Op = BinOp::Shl; break;
    case BinaryOp::Shr: Op = BinOp::Shr; break;
    case BinaryOp::Lt: Op = BinOp::Lt; break;
    case BinaryOp::Le: Op = BinOp::Le; break;
    case BinaryOp::Gt: Op = BinOp::Gt; break;
    case BinaryOp::Ge: Op = BinOp::Ge; break;
    case BinaryOp::Eq: Op = BinOp::Eq; break;
    case BinaryOp::Ne: Op = BinOp::Ne; break;
    default:
      assert(false && "logical ops handled above");
      Op = BinOp::Add;
    }
    return Builder.binary(Op, LHS, RHS);
  }

  Reg lowerShortCircuit(const BinaryExpr *Bin) {
    bool IsAnd = Bin->Op == BinaryOp::LAnd;
    // The merge register is written on two paths, like a local slot.
    Reg Result = Func.newReg();

    Reg LHS = lowerExpr(Bin->LHS.get());
    Builder.setLoc(Bin->Loc);
    Reg LHSBool = normalizeBool(LHS);

    BlockId RHSBlock = Func.addBlock();
    BlockId MergeBlock = Func.addBlock();

    Builder.moveInto(Result, LHSBool);
    if (IsAnd)
      Builder.condBr(LHSBool, RHSBlock, MergeBlock);
    else
      Builder.condBr(LHSBool, MergeBlock, RHSBlock);

    Builder.setInsertBlock(RHSBlock);
    Reg RHS = lowerExpr(Bin->RHS.get());
    Builder.setLoc(Bin->Loc);
    Builder.moveInto(Result, normalizeBool(RHS));
    Builder.br(MergeBlock);

    Builder.setInsertBlock(MergeBlock);
    return Result;
  }

  Reg normalizeBool(Reg Value) {
    return Builder.binary(BinOp::Ne, Value, Builder.constInt(0));
  }

  Reg lowerCall(const CallExpr *Call, bool WantResult) {
    switch (Call->Builtin) {
    case BuiltinKind::None: {
      std::vector<Reg> Args;
      for (const auto &Arg : Call->Args)
        Args.push_back(lowerExpr(Arg.get()));
      Builder.setLoc(Call->Loc);
      const FunctionDecl &Callee = *Prog.Functions[Call->CalleeIndex];
      return Builder.call(Call->CalleeIndex, Args,
                          WantResult && !Callee.ReturnsVoid);
    }
    case BuiltinKind::Lock:
      Builder.setLoc(Call->Loc);
      Builder.mutexLock(syncArg(Call, 0));
      return NoReg;
    case BuiltinKind::Unlock:
      Builder.setLoc(Call->Loc);
      Builder.mutexUnlock(syncArg(Call, 0));
      return NoReg;
    case BuiltinKind::BarrierWait:
      Builder.setLoc(Call->Loc);
      Builder.barrierWait(syncArg(Call, 0));
      return NoReg;
    case BuiltinKind::CondWait:
      Builder.setLoc(Call->Loc);
      Builder.condWait(syncArg(Call, 0), syncArg(Call, 1));
      return NoReg;
    case BuiltinKind::CondSignal:
      Builder.setLoc(Call->Loc);
      Builder.condSignal(syncArg(Call, 0));
      return NoReg;
    case BuiltinKind::CondBroadcast:
      Builder.setLoc(Call->Loc);
      Builder.condBroadcast(syncArg(Call, 0));
      return NoReg;
    case BuiltinKind::Spawn: {
      std::vector<Reg> Args;
      for (size_t I = 1; I != Call->Args.size(); ++I)
        Args.push_back(lowerExpr(Call->Args[I].get()));
      Builder.setLoc(Call->Loc);
      return Builder.spawn(Call->SpawnTarget, Args);
    }
    case BuiltinKind::Join: {
      Reg Tid = lowerExpr(Call->Args[0].get());
      Builder.setLoc(Call->Loc);
      Builder.join(Tid);
      return NoReg;
    }
    case BuiltinKind::Alloc: {
      Reg Size = lowerExpr(Call->Args[0].get());
      Builder.setLoc(Call->Loc);
      return Builder.alloc(Size);
    }
    case BuiltinKind::Input:
      Builder.setLoc(Call->Loc);
      return Builder.input();
    case BuiltinKind::NetRecv:
      Builder.setLoc(Call->Loc);
      return Builder.netRecv();
    case BuiltinKind::FileRead:
      Builder.setLoc(Call->Loc);
      return Builder.fileRead();
    case BuiltinKind::Output: {
      Reg Value = lowerExpr(Call->Args[0].get());
      Builder.setLoc(Call->Loc);
      Builder.output(Value);
      return NoReg;
    }
    case BuiltinKind::Yield:
      Builder.setLoc(Call->Loc);
      Builder.yield();
      return NoReg;
    }
    assert(false && "unhandled builtin");
    return NoReg;
  }

  uint32_t syncArg(const CallExpr *Call, unsigned ArgIdx) const {
    const auto *Ref = cast<VarRefExpr>(Call->Args[ArgIdx].get());
    return Ref->Sym.Index;
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void lowerBlock(const BlockStmt &Block) {
    for (const auto &S : Block.Stmts) {
      if (Builder.blockClosed())
        return; // Code after return/break/continue is unreachable.
      lowerStmt(S.get());
    }
  }

  void lowerStmt(const Stmt *S) {
    switch (S->getKind()) {
    case StmtKind::Decl: {
      const auto *Decl = cast<DeclStmt>(S);
      if (Decl->Init) {
        Reg Init = lowerExpr(Decl->Init.get());
        Builder.setLoc(Decl->Loc);
        Builder.moveInto(localReg(Decl->LocalIndex), Init);
      }
      return;
    }
    case StmtKind::Assign:
      lowerAssign(cast<AssignStmt>(S));
      return;
    case StmtKind::If: {
      const auto *If = cast<IfStmt>(S);
      Reg Cond = lowerExpr(If->Cond.get());
      Builder.setLoc(If->Loc);
      BlockId ThenBlock = Func.addBlock();
      BlockId ElseBlock = If->Else ? Func.addBlock() : NoBlock;
      BlockId MergeBlock = Func.addBlock();
      Builder.condBr(Cond, ThenBlock,
                     If->Else ? ElseBlock : MergeBlock);

      Builder.setInsertBlock(ThenBlock);
      lowerStmt(If->Then.get());
      if (!Builder.blockClosed())
        Builder.br(MergeBlock);

      if (If->Else) {
        Builder.setInsertBlock(ElseBlock);
        lowerStmt(If->Else.get());
        if (!Builder.blockClosed())
          Builder.br(MergeBlock);
      }

      Builder.setInsertBlock(MergeBlock);
      return;
    }
    case StmtKind::While: {
      const auto *While = cast<WhileStmt>(S);
      // The current block becomes the loop preheader.
      BlockId Header = Func.addBlock();
      Builder.br(Header);

      Builder.setInsertBlock(Header);
      Reg Cond = lowerExpr(While->Cond.get());
      Builder.setLoc(While->Loc);
      BlockId Body = Func.addBlock();
      BlockId Exit = Func.addBlock();
      Builder.condBr(Cond, Body, Exit);

      LoopTargets.push_back({Exit, Header});
      Builder.setInsertBlock(Body);
      lowerStmt(While->Body.get());
      if (!Builder.blockClosed())
        Builder.br(Header);
      LoopTargets.pop_back();

      Builder.setInsertBlock(Exit);
      return;
    }
    case StmtKind::For: {
      const auto *For = cast<ForStmt>(S);
      if (For->Init)
        lowerStmt(For->Init.get());

      BlockId Header = Func.addBlock();
      Builder.br(Header); // Current block is the preheader.

      Builder.setInsertBlock(Header);
      BlockId Body = Func.addBlock();
      BlockId Step = Func.addBlock();
      BlockId Exit = Func.addBlock();
      if (For->Cond) {
        Reg Cond = lowerExpr(For->Cond.get());
        Builder.setLoc(For->Loc);
        Builder.condBr(Cond, Body, Exit);
      } else {
        Builder.br(Body);
      }

      LoopTargets.push_back({Exit, Step});
      Builder.setInsertBlock(Body);
      lowerStmt(For->Body.get());
      if (!Builder.blockClosed())
        Builder.br(Step);
      LoopTargets.pop_back();

      Builder.setInsertBlock(Step);
      if (For->Step)
        lowerStmt(For->Step.get());
      if (!Builder.blockClosed())
        Builder.br(Header);

      Builder.setInsertBlock(Exit);
      return;
    }
    case StmtKind::Return: {
      const auto *Ret = cast<ReturnStmt>(S);
      Reg Value = Ret->Value ? lowerExpr(Ret->Value.get()) : NoReg;
      Builder.setLoc(Ret->Loc);
      Builder.ret(Value);
      return;
    }
    case StmtKind::Break:
      assert(!LoopTargets.empty() && "Sema admits break only inside loops");
      Builder.setLoc(S->Loc);
      Builder.br(LoopTargets.back().BreakTarget);
      return;
    case StmtKind::Continue:
      assert(!LoopTargets.empty() &&
             "Sema admits continue only inside loops");
      Builder.setLoc(S->Loc);
      Builder.br(LoopTargets.back().ContinueTarget);
      return;
    case StmtKind::Block:
      lowerBlock(*cast<BlockStmt>(S));
      return;
    case StmtKind::Expr:
      lowerCall(dynCast<CallExpr>(cast<ExprStmt>(S)->E.get())
                    ? cast<CallExpr>(cast<ExprStmt>(S)->E.get())
                    : nullptr,
                cast<ExprStmt>(S));
      return;
    }
    assert(false && "unhandled statement kind");
  }

  /// Expression statements: calls lower without a result; any other
  /// expression is evaluated for (the absence of) side effects.
  void lowerCall(const CallExpr *Call, const ExprStmt *S) {
    if (Call)
      lowerCall(Call, /*WantResult=*/false);
    else
      lowerExpr(S->E.get());
  }

  void lowerAssign(const AssignStmt *Assign) {
    // Resolve target address or register first (C evaluates the lvalue
    // once for compound assignment).
    const Expr *Target = Assign->Target.get();

    if (const auto *Ref = dynCast<VarRefExpr>(Target)) {
      const Symbol &Sym = Ref->Sym;
      if (Sym.Kind == SymbolKind::Local || Sym.Kind == SymbolKind::Param) {
        Reg Slot = varReg(Sym);
        Reg Value = lowerExpr(Assign->Value.get());
        Builder.setLoc(Assign->Loc);
        if (Assign->Op == AssignOp::Assign) {
          Builder.moveInto(Slot, Value);
        } else if (Ref->Type == MiniType::Ptr) {
          Reg Off = Assign->Op == AssignOp::Sub
                        ? Builder.unary(UnOp::Neg, Value)
                        : Value;
          Builder.moveInto(Slot, Builder.ptrAdd(Slot, Off));
        } else {
          BinOp Op = Assign->Op == AssignOp::Add ? BinOp::Add : BinOp::Sub;
          Builder.moveInto(Slot, Builder.binary(Op, Slot, Value));
        }
        return;
      }
      assert(Sym.Kind == SymbolKind::Global && !Sym.ArraySize &&
             "Sema validated the assign target");
      Reg Value = lowerExpr(Assign->Value.get());
      Builder.setLoc(Assign->Loc);
      Reg Addr = Builder.addrGlobal(Sym.Index);
      if (Assign->Op == AssignOp::Assign) {
        Builder.store(Addr, Value);
      } else {
        Reg Old = Builder.load(Addr);
        BinOp Op = Assign->Op == AssignOp::Add ? BinOp::Add : BinOp::Sub;
        Builder.store(Addr, Builder.binary(Op, Old, Value));
      }
      return;
    }

    const auto *Index = cast<IndexExpr>(Target);
    Reg Addr = lowerAddress(Index);
    Reg Value = lowerExpr(Assign->Value.get());
    Builder.setLoc(Assign->Loc);
    if (Assign->Op == AssignOp::Assign) {
      Builder.store(Addr, Value);
    } else {
      Reg Old = Builder.load(Addr);
      BinOp Op = Assign->Op == AssignOp::Add ? BinOp::Add : BinOp::Sub;
      Builder.store(Addr, Builder.binary(Op, Old, Value));
    }
  }

  struct LoopTarget {
    BlockId BreakTarget;
    BlockId ContinueTarget;
  };

  const Program &Prog;
  const FunctionDecl &Decl;
  Function &Func;
  IRBuilder Builder;
  std::vector<LoopTarget> LoopTargets;
};

} // namespace

std::unique_ptr<Module> chimera::generateIR(const Program &Prog,
                                            const std::string &ModuleName) {
  auto M = std::make_unique<Module>();
  M->Name = ModuleName;

  for (const GlobalVarDecl &G : Prog.Globals) {
    GlobalVar Var;
    Var.Name = G.Name;
    Var.SizeWords = G.ArraySize ? G.ArraySize : 1;
    Var.Init = G.Init;
    M->Globals.push_back(std::move(Var));
  }

  for (const SyncDecl &S : Prog.Syncs) {
    SyncObject Obj;
    Obj.Name = S.Name;
    switch (S.Kind) {
    case SyncObjectKind::Mutex: Obj.Kind = SyncKind::Mutex; break;
    case SyncObjectKind::Barrier: Obj.Kind = SyncKind::Barrier; break;
    case SyncObjectKind::Cond: Obj.Kind = SyncKind::Cond; break;
    }
    Obj.Parties = S.PartiesValue;
    M->Syncs.push_back(std::move(Obj));
  }

  for (const auto &Decl : Prog.Functions) {
    auto Func = std::make_unique<Function>();
    FunctionLowering(Prog, *Decl, *Func).run();
    M->Functions.push_back(std::move(Func));
  }

  M->MainFunction = Prog.findFunction("main")->Index;
  M->layoutGlobals();
  return M;
}

support::Expected<std::unique_ptr<Module>>
chimera::compileMiniCEx(const std::string &Source,
                        const std::string &ModuleName,
                        obs::Registry *Metrics, obs::TraceRecorder *Trace) {
  // Phases are run here (rather than via parseMiniC) so each gets its
  // own timer and span; the sequence is identical to parseMiniC's.
  obs::Scope Obs(Metrics, "pipeline");
  DiagEngine Diags;
  std::unique_ptr<Program> Prog;
  {
    obs::ScopedTimer T(Obs.sub("parse").counter("wall_us"));
    CHIMERA_TRACE_SPAN(Trace, "pipeline.parse");
    Lexer Lex(Source, Diags);
    Parser P(Lex.lexAll(), Diags);
    Prog = P.parseProgram();
    if (Diags.hasErrors())
      return support::Error::failure(Diags.str());
  }
  {
    obs::ScopedTimer T(Obs.sub("sema").counter("wall_us"));
    CHIMERA_TRACE_SPAN(Trace, "pipeline.sema");
    Sema S(Diags);
    if (support::Error E = S.run(*Prog))
      return E;
  }
  obs::ScopedTimer T(Obs.sub("codegen").counter("wall_us"));
  CHIMERA_TRACE_SPAN(Trace, "pipeline.codegen");
  return generateIR(*Prog, ModuleName);
}
