//===- runtime/Machine.h - The Chimera execution simulator ------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multicore execution simulator that substitutes for the paper's
/// modified Linux/pthreads testbed. It interprets Chimera IR on N
/// simulated cores with a cycle cost model, supports three modes —
///
///  - Native: run the program; scheduler quanta and input values come
///    from a seeded RNG, so runs are repeatable per seed but exhibit
///    genuine cross-seed nondeterminism.
///  - Record: Native plus logging — input values per thread, a total
///    order per synchronization object (including Chimera's weak-locks,
///    the output stream, and the thread table), and any weak-lock
///    revocation points. Logging costs simulated cycles, which is what
///    the paper's "recording overhead" measures.
///  - Replay: inputs come from the log and every ordered operation is
///    gated on its object's recorded sequence; blocking input latencies
///    are skipped (so I/O-bound programs replay faster, as in the
///    paper). Divergence (a gate that can never open, or an input-log
///    mismatch) is detected and reported.
///
/// Weak-lock semantics (paper §2.3) including ranged loop-locks and
/// timeout revocation are implemented here with WeakLockManager.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_RUNTIME_MACHINE_H
#define CHIMERA_RUNTIME_MACHINE_H

#include "ir/Module.h"
#include "runtime/CostModel.h"
#include "runtime/Decoded.h"
#include "runtime/ExecutionLog.h"
#include "runtime/Memory.h"
#include "runtime/Observer.h"
#include "runtime/Scheduler.h"
#include "runtime/SyncObjects.h"
#include "runtime/Thread.h"
#include "runtime/WeakLock.h"
#include "support/Expected.h"
#include "support/Metrics.h"
#include "support/Rng.h"
#include "support/Trace.h"

#include <memory>
#include <string>

namespace chimera {
namespace rt {

class LogEventSink;
struct MachineSnapshot;

enum class ExecMode : uint8_t { Native, Record, Replay };

struct MachineOptions {
  ExecMode Mode = ExecMode::Native;
  unsigned NumCores = 4;
  uint64_t Seed = 1;
  CostModel Costs = CostModel::defaultModel();

  /// Scheduler quantum bounds in cycles (record/native draws uniformly;
  /// replay uses QuantumMin).
  uint64_t QuantumMin = 3000;
  uint64_t QuantumMax = 9000;

  /// Weak-lock revocation threshold in cycles. Generous by default so
  /// that (as in the paper) benchmarks never time out; tests shrink it.
  uint64_t WeakLockTimeout = 500'000'000;

  /// Upper bound on instructions dispatched to a core per scheduling
  /// decision. Purely a host-side amortization knob: the batch ends
  /// early at any point where another core, sleeper wakeup, or slice
  /// expiry could be observed, so results (hashes, logs, stats) are
  /// bit-identical for every value; 1 reproduces unbatched dispatch
  /// instruction for instruction.
  unsigned DispatchBatch = 64;

  /// Hard cap to catch runaway simulations.
  uint64_t MaxInstructions = 2'000'000'000;

  const ExecutionLog *ReplayLog = nullptr; ///< Required in Replay mode.
  ExecutionObserver *Observer = nullptr;   ///< Optional event sink.

  /// Record mode: streaming sink receiving every log record as it is
  /// appended (see runtime/LogEvents.h). The in-memory ExecutionLog is
  /// still built, so results are unchanged by attaching one.
  LogEventSink *LogSink = nullptr;

  /// Record mode with a LogSink: emit a checkpoint roughly every this
  /// many log events (0 = never). Checkpoints are taken at the top of
  /// the scheduling loop, where no thread is mid-operation.
  uint64_t CheckpointEvery = 0;

  /// Replay mode: resume from this checkpoint instead of a cold start.
  /// The snapshot must come from a recording of the same module and
  /// ReplayLog must be the full recorded log.
  const MachineSnapshot *ResumeFrom = nullptr;

  /// Replay mode: stop at this checkpoint instead of running to the end
  /// of the log (epoch-parallel replay). Each thread is parked exactly
  /// at the retired-instruction count the snapshot records for it, gate
  /// and input cursors are clamped at the snapshot's positions, and the
  /// run ends successfully once every thread is parked with all cursors
  /// matching — ExecutionResult::StateHash is then the state at the
  /// boundary, comparable to the snapshot's StateHash. Any mismatch
  /// (overshoot, cursor divergence, thread-count drift) fails the run.
  const MachineSnapshot *StopAt = nullptr;

  /// Record/native mode: the plan carries a validated lock-order
  /// certificate proving no weak-lock deadlock is possible, so the
  /// per-instruction weak-timeout polls AND the idle-path timeout
  /// rescue are skipped entirely (ISSUE 8). Under a sound certificate
  /// no revocation would have fired either way, so logs stay
  /// bit-identical; under an unsound one a genuine deadlock surfaces
  /// as a loud all-idle stall error rather than a silent revocation.
  /// Replay mode never polls, so this only affects record/native.
  bool ElideWeakPolling = false;

  /// Test/bench override: poll even when ElideWeakPolling is set (the
  /// bit-identity cross-check records the same certified plan with and
  /// without polling and compares logs).
  bool ForceWeakPolling = false;

  /// Observability sinks (both optional, both host-side only).
  ///
  /// Unlike \c Observer, attaching these does NOT disable the execFast
  /// dispatch path: metrics are collected into plain per-machine
  /// counters at points the generic path already visits (sync ops, log
  /// appends, scheduling decisions) and published to the registry once
  /// at the end of run(). Nothing here feeds back into simulated state,
  /// so logs, hashes, and stats are bit-identical with or without them.
  obs::Registry *Metrics = nullptr;
  obs::TraceRecorder *Trace = nullptr;
};

/// Counters collected during one run; the benchmark tables are printed
/// from these.
struct RunStats {
  uint64_t MakespanCycles = 0;
  uint64_t CpuBusyCycles = 0;
  uint64_t Instructions = 0;
  uint64_t MemOps = 0;       ///< Dynamic loads+stores.
  uint64_t SyncOps = 0;      ///< Original-program sync operations.
  uint64_t Syscalls = 0;     ///< input/net_recv/file_read executed.
  uint64_t OutputOps = 0;
  uint64_t SpawnedThreads = 0;
  uint64_t Revocations = 0;
  uint64_t LogEvents = 0;    ///< Total log records appended (record mode).

  // Indexed by ir::WeakLockGranularity.
  uint64_t WeakAcquires[4] = {0, 0, 0, 0};
  uint64_t WeakCpuCycles[4] = {0, 0, 0, 0};  ///< Lock-op + log CPU cost.
  uint64_t WeakWaitCycles[4] = {0, 0, 0, 0}; ///< Contention stall time.

  uint64_t weakAcquiresTotal() const {
    return WeakAcquires[0] + WeakAcquires[1] + WeakAcquires[2] +
           WeakAcquires[3];
  }
};

struct ExecutionResult {
  bool Ok = false;
  std::string Error;
  uint64_t StateHash = 0; ///< Memory + output fingerprint.
  std::vector<uint64_t> Output;
  RunStats Stats;
  ExecutionLog Log; ///< Populated in Record mode.
};

class Machine {
public:
  Machine(const ir::Module &M, MachineOptions Opts);

  /// Runs the program to completion (or fault); single use.
  ExecutionResult run();

  /// Snapshot of the attached metrics registry; fails when the machine
  /// was built without one (MachineOptions::Metrics == nullptr).
  support::Expected<obs::Snapshot> metrics() const;

  /// Captures resumable machine state (record mode, between dispatches).
  /// Record-only scheduling state is normalized into replay-expressible
  /// form; see runtime/Snapshot.h for the contract.
  MachineSnapshot captureSnapshot() const;

private:
  enum class Step : uint8_t {
    Continue, ///< Instruction done, thread still on core.
    Yielded,  ///< Thread goes back to the ready queue.
    Blocked,  ///< Thread left the core (sleep/queue/gate).
    Finished, ///< Thread completed.
    Fault,    ///< Machine must stop.
  };

  // -- Top-level loop (Machine.cpp).
  void startThread(uint32_t FuncId, const std::vector<uint64_t> &Args,
                   uint32_t ParentTid, uint64_t Now);
  /// Dispatches up to Opts.DispatchBatch instructions (each preceded by
  /// pending-op handling) of the thread bound to \p Core, binding a new
  /// thread first if the core is idle. The batch ends at the first point
  /// where the main loop's per-instruction observations could differ
  /// from re-entering it (see the implementation). Returns false when
  /// the core could make no progress.
  bool stepCore(unsigned Core);
  bool wakeSleepers(uint64_t Now);
  uint64_t nextWakeTime() const;
  void fail(const std::string &Message);
  bool allFinished() const;
  void reportStall(); ///< Deadlock / replay divergence diagnosis.

  // -- Epoch fence (MachineOptions::StopAt).
  /// Retired-instruction target for \p Tid at the epoch boundary, or
  /// UINT64_MAX when unfenced.
  uint64_t stopTarget(uint32_t Tid) const;
  /// Parks \p T at the boundary (BlockReason::EpochEnd); fails the run
  /// on overshoot.
  Step parkAtEpochEnd(Thread &T, unsigned Core);
  /// Called when no core can make progress under StopAt: verifies every
  /// thread is parked exactly at its target with gate/input cursors
  /// matching the snapshot. On success the run ends as an epoch.
  bool epochComplete();

  // -- Per-instruction execution (Interpreter.cpp).
  Step execInstruction(Thread &T, unsigned Core);
  /// Fast path: retires up to \p MaxInsts straight-line instructions
  /// (ALU/memory/branch/call/ret — nothing scheduler- or log-visible)
  /// with frame, register file, and core clock hoisted into locals,
  /// stopping early once the core clock reaches \p StopTime or the next
  /// opcode needs the generic path. \p Retired reports the count; state
  /// is written back exactly as if each instruction had been dispatched
  /// individually. Only called when no observer is attached.
  Step execFast(Thread &T, unsigned Core, uint64_t MaxInsts,
                uint64_t StopTime, uint64_t &Retired);
  Step execPending(Thread &T, unsigned Core); ///< Revocations/reacquires.
  void advance(Thread &T);          ///< Move past the current instruction.
  uint64_t reg(Thread &T, ir::Reg R) const;
  void setReg(Thread &T, ir::Reg R, uint64_t Value);
  Step finishFrame(Thread &T, uint64_t RetValue, bool HasValue,
                   uint64_t Now);

  // -- Ordered-object helpers (Machine.cpp).
  /// Record mode: appends (Tid, Op) to the object's order log.
  void recordOrdered(uint32_t Obj, uint32_t Tid, OrderedOp Op,
                     unsigned Core);
  /// Replay mode: true when (Tid, Op) is next in the object's order.
  bool gateOpen(uint32_t Obj, uint32_t Tid, OrderedOp Op) const;
  /// Replay mode: consume the gate entry and wake gate waiters.
  void gateAdvance(uint32_t Obj, uint64_t Now);
  /// Blocks \p T at the replay gate of \p Obj.
  void blockOnGate(Thread &T, uint32_t Obj, uint64_t Now);
  void wakeGateWaiters(uint32_t Obj, uint64_t Now);
  bool isReplay() const { return Opts.Mode == ExecMode::Replay; }
  bool isRecord() const { return Opts.Mode == ExecMode::Record; }

  // -- Synchronization implementations (Machine.cpp).
  Step doMutexLock(Thread &T, uint32_t MutexId, unsigned Core);
  Step doMutexUnlock(Thread &T, uint32_t MutexId, unsigned Core);
  Step doBarrierWait(Thread &T, uint32_t BarrierId, unsigned Core);
  Step doCondWait(Thread &T, uint32_t CondId, uint32_t MutexId,
                  unsigned Core);
  Step doCondSignal(Thread &T, uint32_t CondId, bool Broadcast,
                    unsigned Core);
  Step doSpawn(Thread &T, const DecodedInst &Inst, unsigned Core);
  Step doJoin(Thread &T, uint32_t ChildTid, unsigned Core);
  Step doOutput(Thread &T, uint64_t Value, unsigned Core);
  Step doInputOp(Thread &T, InputKind Kind, ir::Reg Dst, unsigned Core);
  Step doWeakAcquire(Thread &T, uint32_t LockId, unsigned SiteGran,
                     bool HasRange, uint64_t Lo, uint64_t Hi, unsigned Core);
  Step doWeakRelease(Thread &T, uint32_t LockId, unsigned Core,
                     bool Forced);
  /// Replay: apply every recorded forced-release episode due at \p V's
  /// current instruction boundary. An episode is the run of consecutive
  /// pending revocation events with \p V's instret and no repeated lock,
  /// and applies all-or-nothing once every lock in it is held with its
  /// release gate open. With \p ParkOnShutGate (the self-application
  /// path, where \p V is the running thread) a due-but-gated episode
  /// blocks \p V on the shut gate; otherwise (the machine-side sweep
  /// over blocked victims) it is simply retried later. Returns Blocked
  /// only in the former case.
  Step applyForcedReleases(Thread &V, unsigned Core, bool ParkOnShutGate);

  void grantMutexToNextWaiter(uint32_t MutexId, uint64_t Now,
                              unsigned Core);
  void grantWeakWaiters(uint32_t LockId, uint64_t Now);
  /// Returns true when a revocation was performed (it may touch another
  /// core's clock, so a dispatch batch must end).
  bool checkWeakTimeouts(uint64_t Now);
  /// True when thread \p Tid is stalled with no way to make progress on
  /// its own: blocked on a strong primitive, or blocked on a weak-lock
  /// whose obstruction chain (holders and earlier conflicting waiters)
  /// itself bottoms out in a strong blockage or a weak-wait cycle.
  /// Chains whose tail is Running/Ready/Sleeping are alive — every
  /// participant eventually releases — so revoking them is unnecessary.
  /// \p Mark is the DFS state (0 unseen / 1 on path / 2 known-alive).
  bool weakChainStuck(uint32_t Tid, std::vector<uint8_t> &Mark) const;
  /// The distinguished revocation beneficiary: the lowest-tid thread
  /// blocked on a weak-lock whose obstruction chain is stuck, or
  /// UINT32_MAX when none. Revocations feed only this thread (and its
  /// choice depends only on simulated state, so record is
  /// deterministic); a stable priority is what guarantees progress —
  /// see checkWeakTimeouts.
  uint32_t stuckBeneficiary(std::vector<uint8_t> &Mark) const;
  /// Absolute time at which the current beneficiary's wait matures
  /// (Since + WeakLockTimeout, saturating); UINT64_MAX when there is no
  /// beneficiary or the timeout is effectively infinite. Drives the
  /// all-idle rescue wakeup.
  uint64_t revocationMaturityTime() const;
  void performRevocation(const WeakLockManager::Timeout &TO, uint64_t Now);
  void makeReady(uint32_t Tid, uint64_t Now);
  void finishThread(Thread &T, uint64_t Now);

  void chargeWeakCpu(uint32_t LockId, unsigned SiteGran, uint64_t Cycles,
                     unsigned Core);

  // -- Observability (Machine.cpp). Collection is gated on CollectObs
  // and uses plain (non-atomic) members: the machine runs on one host
  // thread, and the registry is only touched once, in publishObs().
  void unbindCore(unsigned Core); ///< CoreThread[Core] = -1 + quantum obs.
  void obsRecordOrdered(OrderedOp Op, uint64_t PackedValue);
  void publishObs();

  // -- Checkpointing (Snapshot.cpp).
  /// Rebuilds machine state from a checkpoint (replay mode, called from
  /// run() in place of starting the main thread).
  void restoreFromSnapshot(const MachineSnapshot &Snap);
  /// Hash of current memory + output, same formula as the final
  /// ExecutionResult::StateHash.
  uint64_t stateHashNow() const;

  const ir::Module &M;
  MachineOptions Opts;
  DecodedProgram Prog; ///< Execution-format view of M (built once).
  Memory Mem;
  SyncObjectTable Syncs;
  WeakLockManager Weak;
  Scheduler Sched;
  Rng SchedRng;
  Rng InputRng;

  std::vector<std::unique_ptr<Thread>> Threads;
  /// Per-thread: pending mutex to acquire before the next instruction
  /// (cond-wait wakeups). -1 when none.
  std::vector<int64_t> PendingMutex;

  ExecutionLog Log;                   ///< Being built (record mode).
  std::vector<uint32_t> GateCursor;   ///< Replay per-object position.
  std::vector<std::vector<uint32_t>> GateWaiters; ///< Tids per object.
  std::vector<uint32_t> InputCursor;  ///< Replay per-thread input index.
  std::vector<std::vector<RevocationEvent>> PendingRevocations;
  std::vector<uint32_t> RevocationCursor;

  std::vector<uint64_t> Output;
  RunStats Stats;
  std::string Error;
  bool Failed = false;

  /// Thread currently bound to each core (-1 = idle) and the end of its
  /// scheduling quantum. Cores advance in near-lockstep — the main loop
  /// always steps the minimum-clock core one instruction — so memory
  /// operations of concurrent threads genuinely interleave.
  std::vector<int64_t> CoreThread;
  std::vector<uint64_t> CoreSliceEnd;
  unsigned SleepingThreads = 0;
  unsigned LiveThreads = 0;   ///< Threads not yet Finished (O(1) allFinished).
  uint64_t WeakCheckTick = 0; ///< Weak-timeout cadence (one per instruction).
  /// Next Stats.LogEvents threshold at which a checkpoint is emitted
  /// (record mode with a sink and CheckpointEvery > 0).
  uint64_t NextCheckpointAt = 0;
  /// Replaying a log that contains revocations: machine-side forced
  /// releases must be re-checked before every instruction, so dispatch
  /// batching is disabled.
  bool HasRevocations = false;
  /// StopAt fence reached cleanly: every thread parked at its target.
  bool EpochDone = false;

  // -- Observability collection (all dead weight unless CollectObs).
  bool CollectObs = false; ///< Opts.Metrics != nullptr.
  struct LockObs {
    uint64_t Acquires = 0;
    uint64_t WaitCycles = 0;
    uint64_t CpuCycles = 0;
    uint64_t Revocations = 0;
  };
  std::vector<LockObs> ObsPerLock; ///< Indexed by weak-lock id.
  static constexpr unsigned NumOrderedOps = 16; ///< 4-bit op space.
  uint64_t ObsOrderCount[NumOrderedOps] = {};
  uint64_t ObsOrderBytes[NumOrderedOps] = {};
  uint64_t ObsInputCount = 0, ObsInputBytes = 0;
  uint64_t ObsRevCount = 0, ObsRevBytes = 0;
  uint64_t ObsQuanta = 0;
  uint64_t ObsQuantumGranted = 0, ObsQuantumUsed = 0;
  uint64_t ObsWeakPolls = 0;        ///< checkWeakTimeouts scans performed.
  uint64_t ObsWeakPollsSkipped = 0; ///< Polls skipped (nothing held).
  std::vector<uint64_t> CoreSliceStart; ///< Bind-time clock per core.
};

} // namespace rt
} // namespace chimera

#endif // CHIMERA_RUNTIME_MACHINE_H
