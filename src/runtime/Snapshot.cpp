//===- runtime/Snapshot.cpp - Machine checkpoint capture/restore -----------===//
//
// captureSnapshot() runs in Record mode at the top of the scheduling
// loop (no thread mid-operation); restoreFromSnapshot() rebuilds a
// Replay-mode machine from the result. The normalization contract —
// which record-only scheduling state is folded into replay-expressible
// state and why — is documented in Snapshot.h.
//
//===----------------------------------------------------------------------===//

#include "runtime/Machine.h"
#include "runtime/Snapshot.h"

#include <algorithm>
#include <cassert>

using namespace chimera;
using namespace chimera::rt;

uint64_t rt::snapshotStateHash(const MachineSnapshot &Snap) {
  // Mirrors Memory::hashInto (globals then live heap) followed by the
  // final-hash mixing in Machine::stateHashNow.
  Hasher H;
  H.addWords(Snap.GlobalWords);
  for (uint64_t Word : Snap.HeapWords)
    H.addWord(Word);
  H.addWord(0x5eed);
  H.addWords(Snap.Output);
  return H.digest();
}

uint64_t Machine::stateHashNow() const {
  Hasher H;
  Mem.hashInto(H);
  H.addWord(0x5eed);
  H.addWords(Output);
  return H.digest();
}

MachineSnapshot Machine::captureSnapshot() const {
  assert(isRecord() && "checkpoints are captured while recording");
  assert(!Failed && "capturing a failed machine");

  MachineSnapshot Snap;

  // Log position: the in-memory log is exactly the prefix recorded so
  // far, so its current sizes are the replay cursors of this point.
  Snap.GateCursors.reserve(Log.PerObject.size());
  for (const auto &Seq : Log.PerObject)
    Snap.GateCursors.push_back(static_cast<uint32_t>(Seq.size()));
  Snap.InputCursors.reserve(Threads.size());
  for (uint32_t Tid = 0; Tid != Threads.size(); ++Tid)
    Snap.InputCursors.push_back(
        Tid < Log.PerThreadInputs.size()
            ? static_cast<uint32_t>(Log.PerThreadInputs[Tid].size())
            : 0);
  Snap.RevocationsDone = Log.Revocations.size();
  Snap.LogEventsAtCapture = Stats.LogEvents;

  // Threads, with scheduling-state normalization. The normalized
  // (State, ReadyTime) pairs computed here are also what the ready-queue
  // snapshot below appends, so the two views stay consistent.
  Snap.Threads.reserve(Threads.size());
  for (const auto &TP : Threads) {
    const Thread &T = *TP;
    assert(T.Reason != BlockReason::ReplayGate &&
           "record-mode thread blocked on a replay gate");

    ThreadSnapshot TS;
    TS.Tid = T.Tid;
    ThreadState State = T.State;
    BlockReason Reason = T.Reason;
    uint64_t ReadyTime = T.ReadyTime;
    if (State == ThreadState::Running) {
      // Rebound by the resumed replay; resumes no earlier than its
      // core's clock so per-thread time stays monotonic.
      State = ThreadState::Ready;
      Reason = BlockReason::None;
      for (unsigned C = 0; C != CoreThread.size(); ++C)
        if (CoreThread[C] == static_cast<int64_t>(T.Tid))
          ReadyTime = std::max(ReadyTime, Sched.coreTime(C));
    } else if (State == ThreadState::Blocked &&
               (Reason == BlockReason::Mutex ||
                Reason == BlockReason::WeakLock)) {
      // Mutex / weak-lock wait queues are record-only; the thread
      // re-executes its acquire, which replay gates on the recorded
      // order (see Snapshot.h). A WeakLock reason survives as a
      // breadcrumb: paired with WaitObject it tells the resumed replay
      // whether the thread was waiting at a program acquire (which
      // must complete before PendingReacquire is processed — see
      // Thread::AcquireBeforeReacquire) or inside the reacquisition
      // loop itself.
      State = ThreadState::Ready;
      if (Reason == BlockReason::Mutex)
        Reason = BlockReason::None;
      ReadyTime = std::max(ReadyTime, T.BlockStart);
    }
    TS.State = static_cast<uint8_t>(State);
    TS.Reason = static_cast<uint8_t>(Reason);
    TS.WaitObject = T.WaitObject;
    TS.WakeTime = T.WakeTime;
    TS.ReadyTime = ReadyTime;
    TS.BlockStart = T.BlockStart;
    TS.Instret = T.Instret;
    TS.RetValue = T.RetValue;
    TS.PendingMutex = PendingMutex[T.Tid];
    TS.Stack.reserve(T.Stack.size());
    for (const Frame &F : T.Stack) {
      FrameSnapshot FS;
      FS.FuncId = Prog.indexOf(F.DFunc);
      FS.Ip = F.Ip;
      FS.RetDst = static_cast<uint32_t>(F.RetDst);
      FS.Regs = F.Regs;
      TS.Stack.push_back(std::move(FS));
    }
    TS.HeldWeak = T.HeldWeak;
    TS.PendingReacquire = T.PendingReacquire;
    TS.JoinWaiters = T.JoinWaiters;
    Snap.Threads.push_back(std::move(TS));
  }

  Snap.Syncs.reserve(Syncs.size());
  for (uint32_t Id = 0; Id != Syncs.size(); ++Id) {
    const SyncState &S = Syncs.state(Id);
    SyncObjectSnapshot SS;
    SS.Owner = S.Owner;
    SS.Generation = S.Generation;
    SS.Arrived = S.Arrived;
    SS.ArrivedTimes = S.ArrivedTimes;
    SS.CondWaiters.assign(S.CondWaiters.begin(), S.CondWaiters.end());
    Snap.Syncs.push_back(std::move(SS));
  }

  // Ready queue: the queued threads in FIFO order, then the normalized
  // ones — running threads in core order, de-queued blockers in tid
  // order. Any fixed rule works (schedule drift cannot change final
  // state); this one is deterministic and keeps arrival order sensible.
  Sched.forEachReady([&](uint32_t Tid, uint64_t ReadyTime) {
    Snap.ReadyQueue.push_back({Tid, ReadyTime});
  });
  for (unsigned C = 0; C != CoreThread.size(); ++C)
    if (CoreThread[C] >= 0) {
      uint32_t Tid = static_cast<uint32_t>(CoreThread[C]);
      Snap.ReadyQueue.push_back({Tid, Snap.Threads[Tid].ReadyTime});
    }
  for (const auto &TP : Threads)
    if (TP->State == ThreadState::Blocked &&
        (TP->Reason == BlockReason::Mutex ||
         TP->Reason == BlockReason::WeakLock))
      Snap.ReadyQueue.push_back(
          {TP->Tid, Snap.Threads[TP->Tid].ReadyTime});

  Snap.CoreTimes.reserve(Sched.numCores());
  for (unsigned C = 0; C != Sched.numCores(); ++C)
    Snap.CoreTimes.push_back(Sched.coreTime(C));
  Snap.Output = Output;

  Snap.GlobalWords = Mem.globalWords();
  Snap.HeapWords = Mem.heapWords();
  Snap.HeapUsed = Mem.heapUsedWords();
  Snap.StateHash = stateHashNow();
  return Snap;
}

void Machine::restoreFromSnapshot(const MachineSnapshot &Snap) {
  assert(isReplay() && Opts.ReplayLog && "resume is a replay-mode feature");
  assert(Threads.empty() && "restore must precede any thread start");
  const ExecutionLog &RL = *Opts.ReplayLog;
  assert(Snap.GateCursors.size() == RL.numOrderedObjects() &&
         "checkpoint does not match this log's object space");
  assert(Snap.CoreTimes.size() == Opts.NumCores &&
         "resume requires the recorded core count");

  // Log cursors: skip the prefix the checkpoint already covers.
  GateCursor = Snap.GateCursors;
  InputCursor.assign(RL.NumThreads, 0);
  for (uint32_t Tid = 0;
       Tid != std::min<size_t>(InputCursor.size(), Snap.InputCursors.size());
       ++Tid)
    InputCursor[Tid] = Snap.InputCursors[Tid];
  RevocationCursor.assign(RL.NumThreads, 0);
  assert(Snap.RevocationsDone <= RL.Revocations.size() &&
         "checkpoint claims more revocations than the log holds");
  for (uint64_t I = 0; I != Snap.RevocationsDone; ++I) {
    const RevocationEvent &Rev = RL.Revocations[I];
    if (Rev.Tid < RevocationCursor.size())
      ++RevocationCursor[Rev.Tid];
  }

  Mem.restoreContents(Snap.GlobalWords, Snap.HeapWords, Snap.HeapUsed);
  Output = Snap.Output;

  assert(Snap.Syncs.size() == Syncs.size() && "sync-object count mismatch");
  for (uint32_t Id = 0; Id != Syncs.size(); ++Id) {
    const SyncObjectSnapshot &SS = Snap.Syncs[Id];
    SyncState &S = Syncs.state(Id);
    S.Owner = SS.Owner;
    S.Generation = SS.Generation;
    S.Arrived = SS.Arrived;
    S.ArrivedTimes = SS.ArrivedTimes;
    S.CondWaiters.assign(SS.CondWaiters.begin(), SS.CondWaiters.end());
    S.MutexWaiters.clear(); // Record-only; replay admits via gates.
  }

  SleepingThreads = 0;
  LiveThreads = 0;
  for (const ThreadSnapshot &TS : Snap.Threads) {
    auto T = std::make_unique<Thread>();
    T->Tid = TS.Tid;
    T->State = static_cast<ThreadState>(TS.State);
    T->Reason = static_cast<BlockReason>(TS.Reason);
    T->WaitObject = TS.WaitObject;
    T->WakeTime = TS.WakeTime;
    T->ReadyTime = TS.ReadyTime;
    T->BlockStart = TS.BlockStart;
    T->Instret = TS.Instret;
    T->RetValue = TS.RetValue;
    T->Stack.reserve(TS.Stack.size());
    for (const FrameSnapshot &FS : TS.Stack) {
      Frame F;
      F.DFunc = &Prog.function(FS.FuncId);
      F.Ip = FS.Ip;
      F.RetDst = static_cast<ir::Reg>(FS.RetDst);
      F.Regs = FS.Regs;
      T->Stack.push_back(std::move(F));
    }
    T->HeldWeak = TS.HeldWeak;
    T->PendingReacquire = TS.PendingReacquire;
    T->JoinWaiters = TS.JoinWaiters;
    if (T->State == ThreadState::Ready &&
        T->Reason == BlockReason::WeakLock) {
      // Breadcrumb from capture: the thread was waiting on a weak-lock.
      // At a program acquire (WaitObject is not the front pending
      // reacquisition — a thread never waits at an acquire of a lock it
      // also has pending) the acquire must land before the pending list
      // is processed, exactly as the recorded grant did it.
      T->AcquireBeforeReacquire =
          T->PendingReacquire.empty() ||
          T->PendingReacquire.front().LockId != T->WaitObject;
      T->Reason = BlockReason::None;
    }
    if (T->State == ThreadState::Sleeping)
      ++SleepingThreads;
    if (T->State != ThreadState::Finished)
      ++LiveThreads;

    // Re-seat weak-lock holds. Admitted holders were pairwise
    // non-conflicting at capture, so re-acquisition cannot fail; Since
    // is irrelevant (replay never scans for timeouts).
    for (const HeldWeakLock &H : T->HeldWeak) {
      WeakRequest Req{T->Tid, H.HasRange, H.Lo, H.Hi, /*Since=*/0,
                      H.SiteGran};
      bool Acquired = Weak.tryAcquire(H.LockId, Req);
      (void)Acquired;
      assert(Acquired && "checkpointed weak-lock holds conflict");
    }

    PendingMutex.push_back(TS.PendingMutex);
    Threads.push_back(std::move(T));
  }

  for (unsigned C = 0; C != Opts.NumCores; ++C)
    Sched.setCoreTime(C, Snap.CoreTimes[C]);
  for (const ReadySnapshot &R : Snap.ReadyQueue)
    Sched.addReady(R.Tid, R.ReadyTime);

  // Stats on a resumed replay cover the suffix only (documented in
  // docs/ARCHITECTURE.md); the thread count is state, not a counter.
  Stats.SpawnedThreads = Threads.size();
}
