//===- runtime/Scheduler.h - Multicore scheduling state ---------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Core clocks and the ready queue for the execution simulator. Each
/// simulated core has its own cycle clock; the machine always runs the
/// core with the smallest clock, which approximates a real multicore
/// while keeping the whole simulation deterministic for a given RNG seed.
///
/// The ready queue is a flat ring over a vector: a head cursor advances
/// on front pops (the dominant case — threads usually leave in arrival
/// order) and the dead prefix is recycled once the queue drains, so the
/// steady state of block/wake cycles performs no allocation at all,
/// unlike the chunk churn of a std::deque. Pop semantics — candidate
/// set, ordering, and RNG draws — are identical to a plain FIFO scan.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_RUNTIME_SCHEDULER_H
#define CHIMERA_RUNTIME_SCHEDULER_H

#include "support/Rng.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace chimera {
namespace rt {

class Scheduler {
public:
  void init(unsigned NumCores);

  unsigned numCores() const {
    return static_cast<unsigned>(CoreTimes.size());
  }

  uint64_t coreTime(unsigned Core) const { return CoreTimes[Core]; }
  void setCoreTime(unsigned Core, uint64_t Time) { CoreTimes[Core] = Time; }
  void advanceCore(unsigned Core, uint64_t Cycles) {
    CoreTimes[Core] += Cycles;
  }

  /// The core with the smallest clock (ties to the lowest index).
  unsigned minTimeCore() const;

  /// The largest core clock — the makespan once execution is done.
  uint64_t maxTime() const;

  void addReady(uint32_t Tid, uint64_t ReadyTime) {
    ReadyQueue.push_back({Tid, ReadyTime});
  }
  bool hasReady() const { return Head != ReadyQueue.size(); }
  size_t readyCount() const { return ReadyQueue.size() - Head; }

  /// Removes and returns a ready thread. Threads already runnable at
  /// \p Now are preferred (picking a future-ready thread would idle the
  /// core); among those, a random pick when \p Rand is non-null
  /// (record/native schedule nondeterminism), else the earliest-queued
  /// (deterministic replay). With no runnable thread, returns the one
  /// with the smallest ReadyTime.
  uint32_t popReady(Rng *Rand, uint64_t Now);

  /// Removes \p Tid from the ready queue if present (used when a thread
  /// is force-transitioned while queued). Returns true if removed.
  bool removeReady(uint32_t Tid);

  /// Visits live entries in FIFO order as (Tid, ReadyTime); used to
  /// checkpoint the queue without exposing its ring layout.
  template <typename Fn> void forEachReady(Fn &&Visit) const {
    for (size_t I = Head; I != ReadyQueue.size(); ++I)
      Visit(ReadyQueue[I].Tid, ReadyQueue[I].ReadyTime);
  }

private:
  struct ReadyEntry {
    uint32_t Tid;
    uint64_t ReadyTime;
  };

  /// Reclaims the consumed prefix when it is cheap or mandatory.
  void compactReady();

  std::vector<uint64_t> CoreTimes;
  /// Live entries are [Head, ReadyQueue.size()) in FIFO arrival order.
  std::vector<ReadyEntry> ReadyQueue;
  size_t Head = 0;
  /// Scratch for popReady's runnable-candidate indices (reused across
  /// calls to avoid a per-pop allocation).
  std::vector<uint32_t> RunnableScratch;
};

} // namespace rt
} // namespace chimera

#endif // CHIMERA_RUNTIME_SCHEDULER_H
