//===- runtime/Scheduler.cpp - Multicore scheduling state ------------------===//

#include "runtime/Scheduler.h"

#include <algorithm>
#include <cassert>

using namespace chimera;
using namespace chimera::rt;

void Scheduler::init(unsigned NumCores) {
  assert(NumCores > 0 && "need at least one core");
  CoreTimes.assign(NumCores, 0);
  ReadyQueue.clear();
}

unsigned Scheduler::minTimeCore() const {
  unsigned Best = 0;
  for (unsigned C = 1; C != CoreTimes.size(); ++C)
    if (CoreTimes[C] < CoreTimes[Best])
      Best = C;
  return Best;
}

uint64_t Scheduler::maxTime() const {
  return *std::max_element(CoreTimes.begin(), CoreTimes.end());
}

uint32_t Scheduler::popReady(Rng *Rand, uint64_t Now) {
  assert(!ReadyQueue.empty() && "popReady on empty queue");

  // Indices of threads runnable right now.
  std::vector<size_t> Runnable;
  for (size_t I = 0; I != ReadyQueue.size(); ++I)
    if (ReadyQueue[I].ReadyTime <= Now)
      Runnable.push_back(I);

  size_t Index;
  if (!Runnable.empty()) {
    size_t Pick = Rand && Runnable.size() > 1
                      ? static_cast<size_t>(Rand->nextBelow(Runnable.size()))
                      : 0;
    Index = Runnable[Pick];
  } else {
    Index = 0;
    for (size_t I = 1; I != ReadyQueue.size(); ++I)
      if (ReadyQueue[I].ReadyTime < ReadyQueue[Index].ReadyTime)
        Index = I;
  }
  uint32_t Tid = ReadyQueue[Index].Tid;
  ReadyQueue.erase(ReadyQueue.begin() + Index);
  return Tid;
}

bool Scheduler::removeReady(uint32_t Tid) {
  for (auto It = ReadyQueue.begin(); It != ReadyQueue.end(); ++It) {
    if (It->Tid == Tid) {
      ReadyQueue.erase(It);
      return true;
    }
  }
  return false;
}
