//===- runtime/Scheduler.cpp - Multicore scheduling state ------------------===//

#include "runtime/Scheduler.h"

#include <algorithm>
#include <cassert>

using namespace chimera;
using namespace chimera::rt;

void Scheduler::init(unsigned NumCores) {
  assert(NumCores > 0 && "need at least one core");
  CoreTimes.assign(NumCores, 0);
  ReadyQueue.clear();
  Head = 0;
}

unsigned Scheduler::minTimeCore() const {
  unsigned Best = 0;
  for (unsigned C = 1; C != CoreTimes.size(); ++C)
    if (CoreTimes[C] < CoreTimes[Best])
      Best = C;
  return Best;
}

uint64_t Scheduler::maxTime() const {
  return *std::max_element(CoreTimes.begin(), CoreTimes.end());
}

void Scheduler::compactReady() {
  if (Head == ReadyQueue.size()) {
    // Empty: recycle the buffer in place.
    ReadyQueue.clear();
    Head = 0;
  } else if (Head >= 64 && Head >= ReadyQueue.size() - Head) {
    // The dead prefix dominates; slide the live entries down.
    ReadyQueue.erase(ReadyQueue.begin(),
                     ReadyQueue.begin() + static_cast<ptrdiff_t>(Head));
    Head = 0;
  }
}

uint32_t Scheduler::popReady(Rng *Rand, uint64_t Now) {
  assert(hasReady() && "popReady on empty queue");

  // Indices of threads runnable right now (FIFO arrival order).
  RunnableScratch.clear();
  for (size_t I = Head; I != ReadyQueue.size(); ++I)
    if (ReadyQueue[I].ReadyTime <= Now)
      RunnableScratch.push_back(static_cast<uint32_t>(I));

  size_t Index;
  if (!RunnableScratch.empty()) {
    size_t Pick =
        Rand && RunnableScratch.size() > 1
            ? static_cast<size_t>(Rand->nextBelow(RunnableScratch.size()))
            : 0;
    Index = RunnableScratch[Pick];
  } else {
    Index = Head;
    for (size_t I = Head + 1; I != ReadyQueue.size(); ++I)
      if (ReadyQueue[I].ReadyTime < ReadyQueue[Index].ReadyTime)
        Index = I;
  }
  uint32_t Tid = ReadyQueue[Index].Tid;
  if (Index == Head)
    ++Head; // Front pop: O(1), no element movement.
  else
    ReadyQueue.erase(ReadyQueue.begin() + static_cast<ptrdiff_t>(Index));
  compactReady();
  return Tid;
}

bool Scheduler::removeReady(uint32_t Tid) {
  for (size_t I = Head; I != ReadyQueue.size(); ++I) {
    if (ReadyQueue[I].Tid == Tid) {
      if (I == Head)
        ++Head;
      else
        ReadyQueue.erase(ReadyQueue.begin() + static_cast<ptrdiff_t>(I));
      compactReady();
      return true;
    }
  }
  return false;
}
