//===- runtime/VectorClock.cpp - Vector clocks -----------------------------===//

#include "runtime/VectorClock.h"

#include <algorithm>

using namespace chimera::rt;

void VectorClock::join(const VectorClock &Other) {
  if (Other.Clocks.size() > Clocks.size())
    Clocks.resize(Other.Clocks.size(), 0);
  for (size_t I = 0; I != Other.Clocks.size(); ++I)
    Clocks[I] = std::max(Clocks[I], Other.Clocks[I]);
}

bool VectorClock::leq(const VectorClock &Other) const {
  for (size_t I = 0; I != Clocks.size(); ++I)
    if (Clocks[I] > Other.get(static_cast<uint32_t>(I)))
      return false;
  return true;
}

std::string VectorClock::str() const {
  std::string Out = "[";
  for (size_t I = 0; I != Clocks.size(); ++I) {
    if (I)
      Out += ",";
    Out += std::to_string(Clocks[I]);
  }
  return Out + "]";
}
