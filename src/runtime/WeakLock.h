//===- runtime/WeakLock.h - Weak-lock manager -------------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chimera's weak-locks (paper §2.3). A weak-lock behaves like a mutex
/// except that (a) loop-granularity locks carry a word-address range and
/// two acquisitions conflict only when their ranges overlap (an unranged
/// acquisition conflicts with everything), and (b) a waiter stalled past
/// a timeout triggers *revocation*: the current owner is forced to
/// release and later reacquire, splitting its critical section, so
/// program-level waits inside weak-locked regions cannot deadlock.
///
/// The manager tracks holders and FIFO waiters per lock; the Machine owns
/// thread state transitions and logging.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_RUNTIME_WEAKLOCK_H
#define CHIMERA_RUNTIME_WEAKLOCK_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace chimera {
namespace rt {

/// An acquisition request / grant with its optional range.
struct WeakRequest {
  uint32_t Tid = 0;
  bool HasRange = false;
  uint64_t Lo = 0;
  uint64_t Hi = 0;
  uint64_t Since = 0;   ///< Time the hold/wait began.
  uint8_t SiteGran = 3; ///< ir::WeakLockGranularity of the acquire site.
};

class WeakLockManager {
public:
  void init(uint32_t NumLocks);

  uint32_t numLocks() const { return static_cast<uint32_t>(Locks.size()); }

  /// True if a new acquisition with the given range would conflict with a
  /// current holder of \p LockId.
  bool wouldConflict(uint32_t LockId, bool HasRange, uint64_t Lo,
                     uint64_t Hi) const;

  /// Attempts an immediate acquisition; on success records the holder.
  bool tryAcquire(uint32_t LockId, const WeakRequest &Req);

  /// Queues \p Req as a waiter (FIFO).
  void enqueue(uint32_t LockId, const WeakRequest &Req);

  /// Removes \p Tid as a holder of \p LockId. Returns true if it held it.
  bool removeHolder(uint32_t LockId, uint32_t Tid);

  /// Pops every waiter that can now run (FIFO, skipping conflicting ones)
  /// and records them as holders. Returns the granted requests in order.
  std::vector<WeakRequest> grantWaiters(uint32_t LockId, uint64_t Now);

  /// A revocation opportunity: the oldest waiter stalled longer than
  /// \p Timeout and the holder blocking it.
  struct Timeout {
    bool Found = false;
    uint32_t LockId = 0;
    uint32_t VictimTid = 0; ///< Holder to preempt.
    uint32_t WaiterTid = 0; ///< Stalled thread.
  };

  /// Scans for a timed-out waiter (cheap linear scan; lock counts are
  /// small). Returns the first one found.
  Timeout findTimeout(uint64_t Now, uint64_t Timeout) const;

  /// Number of threads currently holding / waiting on \p LockId.
  size_t numHolders(uint32_t LockId) const;
  size_t numWaiters(uint32_t LockId) const;

  /// Earliest Since among all waiters across all locks; UINT64_MAX when
  /// nothing is waiting. Drives timeout wakeups when every thread is
  /// blocked.
  uint64_t earliestWaiterSince() const;

  /// The holder entry for (LockId, Tid); null if absent.
  const WeakRequest *holder(uint32_t LockId, uint32_t Tid) const;

private:
  struct LockState {
    std::vector<WeakRequest> Holders;
    std::deque<WeakRequest> Waiters;
  };

  static bool conflicts(const WeakRequest &A, bool HasRange, uint64_t Lo,
                        uint64_t Hi);

  std::vector<LockState> Locks;
};

} // namespace rt
} // namespace chimera

#endif // CHIMERA_RUNTIME_WEAKLOCK_H
