//===- runtime/WeakLock.h - Weak-lock manager -------------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chimera's weak-locks (paper §2.3). A weak-lock behaves like a mutex
/// except that (a) loop-granularity locks carry a word-address range and
/// two acquisitions conflict only when their ranges overlap (an unranged
/// acquisition conflicts with everything), and (b) a waiter stalled past
/// a timeout triggers *revocation*: the current owner is forced to
/// release and later reacquire, splitting its critical section, so
/// program-level waits inside weak-locked regions cannot deadlock.
///
/// The manager tracks holders and FIFO waiters per lock; the Machine owns
/// thread state transitions and logging.
///
/// Conflict queries are sublinear in the holder count: ranged holders are
/// pairwise disjoint by construction (overlap is a conflict), so each
/// lock keeps them in an ordered interval map (Lo -> Hi) answering
/// overlap in O(log holders), plus a whole-object flag for the (at most
/// one) unranged holder. Waiter-side conflict checks keep FIFO grant
/// order bit-identical to a plain scan: a bounding box over the queued
/// ranges short-circuits the common no-overlap case and a precise scan
/// decides the rest.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_RUNTIME_WEAKLOCK_H
#define CHIMERA_RUNTIME_WEAKLOCK_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

namespace chimera {
namespace rt {

/// An acquisition request / grant with its optional range.
struct WeakRequest {
  uint32_t Tid = 0;
  bool HasRange = false;
  uint64_t Lo = 0;
  uint64_t Hi = 0;
  uint64_t Since = 0;   ///< Time the hold/wait began.
  uint8_t SiteGran = 3; ///< ir::WeakLockGranularity of the acquire site.
};

class WeakLockManager {
public:
  void init(uint32_t NumLocks);

  uint32_t numLocks() const { return static_cast<uint32_t>(Locks.size()); }

  /// True if a new acquisition with the given range would conflict with a
  /// current holder of \p LockId.
  bool wouldConflict(uint32_t LockId, bool HasRange, uint64_t Lo,
                     uint64_t Hi) const;

  /// Attempts an immediate acquisition; on success records the holder.
  bool tryAcquire(uint32_t LockId, const WeakRequest &Req);

  /// Queues \p Req as a waiter (FIFO).
  void enqueue(uint32_t LockId, const WeakRequest &Req);

  /// Removes \p Tid as a holder of \p LockId. Returns true if it held it.
  bool removeHolder(uint32_t LockId, uint32_t Tid);

  /// Pops every waiter that can now run (FIFO, skipping conflicting ones)
  /// and records them as holders. Returns the granted requests in order.
  std::vector<WeakRequest> grantWaiters(uint32_t LockId, uint64_t Now);

  /// A revocation opportunity: the oldest waiter stalled longer than
  /// \p Timeout and the holder blocking it.
  struct Timeout {
    bool Found = false;
    uint32_t LockId = 0;
    uint32_t VictimTid = 0; ///< Holder to preempt.
    uint32_t WaiterTid = 0; ///< Stalled thread.
  };

  /// Scans for a timed-out waiter (cheap linear scan; lock counts are
  /// small). Returns the first one found.
  Timeout findTimeout(uint64_t Now, uint64_t Timeout) const;

  /// Like findTimeout, but only holders for which \p VictimEligible
  /// returns true qualify as revocation victims. The machine passes
  /// "the holder itself cannot make progress": revocation exists to
  /// break stalled ownership chains (paper §2.3 times out instead of
  /// deadlocking), not to preempt a holder that is still running its
  /// critical section — a running holder releases on its own, so
  /// skipping it preserves liveness while avoiding spurious
  /// revocations under tiny timeouts.
  template <typename PredT>
  Timeout findTimeoutIf(uint64_t Now, uint64_t TimeoutCycles,
                        PredT &&VictimEligible) const {
    Timeout Result;
    if (!TotalWaiters)
      return Result;
    for (uint32_t LockId = 0; LockId != Locks.size(); ++LockId) {
      const LockState &L = Locks[LockId];
      if (L.Waiters.empty())
        continue;
      const WeakRequest &Oldest = L.Waiters.front();
      if (Now < Oldest.Since || Now - Oldest.Since < TimeoutCycles)
        continue;
      for (const WeakRequest &H : L.Holders) {
        if (!conflicts(H, Oldest.HasRange, Oldest.Lo, Oldest.Hi))
          continue;
        if (!VictimEligible(H.Tid))
          continue;
        Result.Found = true;
        Result.LockId = LockId;
        Result.VictimTid = H.Tid;
        Result.WaiterTid = Oldest.Tid;
        return Result;
      }
    }
    return Result;
  }

  /// Victim search for one designated beneficiary: \p WaiterTid's queued
  /// request on \p LockId must have stalled at least \p TimeoutCycles,
  /// and the returned victim is the first conflicting holder for which
  /// \p VictimEligible holds. The machine passes "the holder is stuck"
  /// and calls this only for its highest-priority stuck waiter, so
  /// revocations always feed the same beneficiary until it makes real
  /// progress — a rotating beneficiary livelocks under mass contention
  /// (each round's grantee is robbed by the next round before it can
  /// assemble its full guard set).
  template <typename PredT>
  Timeout findVictimFor(uint32_t LockId, uint32_t WaiterTid, uint64_t Now,
                        uint64_t TimeoutCycles,
                        PredT &&VictimEligible) const {
    Timeout Result;
    if (LockId >= Locks.size())
      return Result;
    const LockState &L = Locks[LockId];
    const WeakRequest *Req = nullptr;
    for (const WeakRequest &W : L.Waiters) {
      if (W.Tid == WaiterTid) {
        Req = &W;
        break;
      }
    }
    if (!Req)
      return Result;
    if (Now < Req->Since || Now - Req->Since < TimeoutCycles)
      return Result;
    for (const WeakRequest &H : L.Holders) {
      if (!conflicts(H, Req->HasRange, Req->Lo, Req->Hi))
        continue;
      if (!VictimEligible(H.Tid))
        continue;
      Result.Found = true;
      Result.LockId = LockId;
      Result.VictimTid = H.Tid;
      Result.WaiterTid = WaiterTid;
      return Result;
    }
    return Result;
  }

  /// Calls \p Fn(Tid) for every thread obstructing \p Tid's queued
  /// request on \p LockId: holders whose grant conflicts with it, and
  /// earlier FIFO waiters it conflicts with (a compatible request still
  /// queues behind a conflicting one — see tryAcquire's fairness rule —
  /// so those waiters gate progress exactly like holders do). No-op when
  /// \p Tid is not waiting on \p LockId. Drives the machine's
  /// stalled-ownership-chain walk for revocation eligibility.
  template <typename FnT>
  void forEachBlocker(uint32_t LockId, uint32_t Tid, FnT &&Fn) const {
    if (LockId >= Locks.size())
      return;
    const LockState &L = Locks[LockId];
    const WeakRequest *Req = nullptr;
    for (const WeakRequest &W : L.Waiters) {
      if (W.Tid == Tid) {
        Req = &W;
        break;
      }
    }
    if (!Req)
      return;
    for (const WeakRequest &H : L.Holders)
      if (conflicts(H, Req->HasRange, Req->Lo, Req->Hi))
        Fn(H.Tid);
    for (const WeakRequest &W : L.Waiters) {
      if (W.Tid == Tid)
        break; // Only waiters queued ahead of us gate our grant.
      if (conflicts(W, Req->HasRange, Req->Lo, Req->Hi))
        Fn(W.Tid);
    }
  }

  /// Number of threads currently holding / waiting on \p LockId.
  size_t numHolders(uint32_t LockId) const;
  size_t numWaiters(uint32_t LockId) const;

  /// Earliest Since among all waiters across all locks; UINT64_MAX when
  /// nothing is waiting. Drives timeout wakeups when every thread is
  /// blocked.
  uint64_t earliestWaiterSince() const;

  /// Since of \p Tid's queued request on \p LockId; UINT64_MAX when it
  /// is not waiting there. The machine times revocation maturity off
  /// the designated beneficiary's own wait, not the oldest wait.
  uint64_t waiterSince(uint32_t LockId, uint32_t Tid) const {
    if (LockId >= Locks.size())
      return UINT64_MAX;
    for (const WeakRequest &W : Locks[LockId].Waiters)
      if (W.Tid == Tid)
        return W.Since;
    return UINT64_MAX;
  }

  /// True when any thread holds any weak-lock. findTimeout() needs a
  /// conflicting *holder* to revoke, so polls while nothing is held can
  /// be skipped without changing any outcome (satellite: held-gated
  /// polling, independent of plan certification).
  bool anyHeld() const { return TotalHolders != 0; }

  /// The holder entry for (LockId, Tid); null if absent.
  const WeakRequest *holder(uint32_t LockId, uint32_t Tid) const;

private:
  struct LockState {
    std::vector<WeakRequest> Holders;
    std::deque<WeakRequest> Waiters;

    /// Interval index over the ranged entries of Holders: Lo -> Hi.
    /// Admitted holders are pairwise non-conflicting, so ranged holds
    /// are disjoint intervals and a predecessor lookup answers any
    /// overlap query exactly.
    std::map<uint64_t, uint64_t> RangeIdx;
    /// Number of unranged holders (0 or 1 — an unranged hold excludes
    /// every other hold).
    uint32_t UnrangedHolders = 0;

    /// Waiter-side summary for the queue-behind-conflicting-waiters
    /// check: count of unranged waiters plus a bounding box over the
    /// ranged waiters' intervals. A request outside the box cannot
    /// conflict with any ranged waiter; inside it, a precise scan
    /// decides (the box may be stale-wide after grants, which only
    /// costs the scan, never correctness).
    uint32_t UnrangedWaiters = 0;
    uint64_t WaiterLoMin = UINT64_MAX;
    uint64_t WaiterHiMax = 0;
  };

  static bool conflicts(const WeakRequest &A, bool HasRange, uint64_t Lo,
                        uint64_t Hi);

  /// True when any queued waiter of \p L conflicts with the request.
  static bool conflictsWithWaiters(const LockState &L, bool HasRange,
                                   uint64_t Lo, uint64_t Hi);

  static void indexHolder(LockState &L, const WeakRequest &Req);
  static void rebuildWaiterSummary(LockState &L);

  std::vector<LockState> Locks;
  size_t TotalWaiters = 0; ///< Across all locks (fast timeout early-out).
  size_t TotalHolders = 0; ///< Across all locks (held-gated polling).
};

} // namespace rt
} // namespace chimera

#endif // CHIMERA_RUNTIME_WEAKLOCK_H
