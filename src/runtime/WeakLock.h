//===- runtime/WeakLock.h - Weak-lock manager -------------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chimera's weak-locks (paper §2.3). A weak-lock behaves like a mutex
/// except that (a) loop-granularity locks carry a word-address range and
/// two acquisitions conflict only when their ranges overlap (an unranged
/// acquisition conflicts with everything), and (b) a waiter stalled past
/// a timeout triggers *revocation*: the current owner is forced to
/// release and later reacquire, splitting its critical section, so
/// program-level waits inside weak-locked regions cannot deadlock.
///
/// The manager tracks holders and FIFO waiters per lock; the Machine owns
/// thread state transitions and logging.
///
/// Conflict queries are sublinear in the holder count: ranged holders are
/// pairwise disjoint by construction (overlap is a conflict), so each
/// lock keeps them in an ordered interval map (Lo -> Hi) answering
/// overlap in O(log holders), plus a whole-object flag for the (at most
/// one) unranged holder. Waiter-side conflict checks keep FIFO grant
/// order bit-identical to a plain scan: a bounding box over the queued
/// ranges short-circuits the common no-overlap case and a precise scan
/// decides the rest.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_RUNTIME_WEAKLOCK_H
#define CHIMERA_RUNTIME_WEAKLOCK_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

namespace chimera {
namespace rt {

/// An acquisition request / grant with its optional range.
struct WeakRequest {
  uint32_t Tid = 0;
  bool HasRange = false;
  uint64_t Lo = 0;
  uint64_t Hi = 0;
  uint64_t Since = 0;   ///< Time the hold/wait began.
  uint8_t SiteGran = 3; ///< ir::WeakLockGranularity of the acquire site.
};

class WeakLockManager {
public:
  void init(uint32_t NumLocks);

  uint32_t numLocks() const { return static_cast<uint32_t>(Locks.size()); }

  /// True if a new acquisition with the given range would conflict with a
  /// current holder of \p LockId.
  bool wouldConflict(uint32_t LockId, bool HasRange, uint64_t Lo,
                     uint64_t Hi) const;

  /// Attempts an immediate acquisition; on success records the holder.
  bool tryAcquire(uint32_t LockId, const WeakRequest &Req);

  /// Queues \p Req as a waiter (FIFO).
  void enqueue(uint32_t LockId, const WeakRequest &Req);

  /// Removes \p Tid as a holder of \p LockId. Returns true if it held it.
  bool removeHolder(uint32_t LockId, uint32_t Tid);

  /// Pops every waiter that can now run (FIFO, skipping conflicting ones)
  /// and records them as holders. Returns the granted requests in order.
  std::vector<WeakRequest> grantWaiters(uint32_t LockId, uint64_t Now);

  /// A revocation opportunity: the oldest waiter stalled longer than
  /// \p Timeout and the holder blocking it.
  struct Timeout {
    bool Found = false;
    uint32_t LockId = 0;
    uint32_t VictimTid = 0; ///< Holder to preempt.
    uint32_t WaiterTid = 0; ///< Stalled thread.
  };

  /// Scans for a timed-out waiter (cheap linear scan; lock counts are
  /// small). Returns the first one found.
  Timeout findTimeout(uint64_t Now, uint64_t Timeout) const;

  /// Number of threads currently holding / waiting on \p LockId.
  size_t numHolders(uint32_t LockId) const;
  size_t numWaiters(uint32_t LockId) const;

  /// Earliest Since among all waiters across all locks; UINT64_MAX when
  /// nothing is waiting. Drives timeout wakeups when every thread is
  /// blocked.
  uint64_t earliestWaiterSince() const;

  /// The holder entry for (LockId, Tid); null if absent.
  const WeakRequest *holder(uint32_t LockId, uint32_t Tid) const;

private:
  struct LockState {
    std::vector<WeakRequest> Holders;
    std::deque<WeakRequest> Waiters;

    /// Interval index over the ranged entries of Holders: Lo -> Hi.
    /// Admitted holders are pairwise non-conflicting, so ranged holds
    /// are disjoint intervals and a predecessor lookup answers any
    /// overlap query exactly.
    std::map<uint64_t, uint64_t> RangeIdx;
    /// Number of unranged holders (0 or 1 — an unranged hold excludes
    /// every other hold).
    uint32_t UnrangedHolders = 0;

    /// Waiter-side summary for the queue-behind-conflicting-waiters
    /// check: count of unranged waiters plus a bounding box over the
    /// ranged waiters' intervals. A request outside the box cannot
    /// conflict with any ranged waiter; inside it, a precise scan
    /// decides (the box may be stale-wide after grants, which only
    /// costs the scan, never correctness).
    uint32_t UnrangedWaiters = 0;
    uint64_t WaiterLoMin = UINT64_MAX;
    uint64_t WaiterHiMax = 0;
  };

  static bool conflicts(const WeakRequest &A, bool HasRange, uint64_t Lo,
                        uint64_t Hi);

  /// True when any queued waiter of \p L conflicts with the request.
  static bool conflictsWithWaiters(const LockState &L, bool HasRange,
                                   uint64_t Lo, uint64_t Hi);

  static void indexHolder(LockState &L, const WeakRequest &Req);
  static void rebuildWaiterSummary(LockState &L);

  std::vector<LockState> Locks;
  size_t TotalWaiters = 0; ///< Across all locks (fast timeout early-out).
};

} // namespace rt
} // namespace chimera

#endif // CHIMERA_RUNTIME_WEAKLOCK_H
