//===- runtime/ExecutionLog.h - Record/replay log structures ----*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The logs Chimera records and replays (paper §2.2): nondeterministic
/// input values per thread, and per-object total orders over every
/// happens-before-relevant operation — original synchronization, output,
/// thread creation, and the weak-locks the instrumenter added — plus
/// weak-lock revocation points (paper §2.3).
///
/// Ordered-object id space: ids [0, NumSyncs) are the program's sync
/// objects; then two pseudo-objects (output stream, thread table); then
/// one object per weak-lock. Replay enforces, per object, exactly the
/// recorded sequence of (thread, operation) pairs.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_RUNTIME_EXECUTIONLOG_H
#define CHIMERA_RUNTIME_EXECUTIONLOG_H

#include <cstdint>
#include <vector>

namespace chimera {
namespace rt {

/// Operations that appear in per-object order logs.
enum class OrderedOp : uint8_t {
  MutexLock,
  MutexUnlock,
  BarrierArrive,
  CondWaitBegin, ///< Queued on the condvar (mutex release logged separately).
  CondSignal,
  CondBroadcast,
  Output,
  SpawnThread,
  JoinThread,
  WeakAcquire,
  WeakRelease,
};

const char *orderedOpName(OrderedOp Op);

/// One entry in an object's total order.
struct OrderedEvent {
  uint32_t Tid = 0;
  OrderedOp Op = OrderedOp::MutexLock;

  bool operator==(const OrderedEvent &O) const {
    return Tid == O.Tid && Op == O.Op;
  }
};

/// Kinds of nondeterministic input the recorder captures.
enum class InputKind : uint8_t { Input, NetRecv, FileRead };

struct InputEvent {
  InputKind Kind = InputKind::Input;
  uint64_t Value = 0;
};

/// A forced weak-lock release (timeout revocation): thread \p Tid was
/// preempted after executing \p Instret instructions while holding
/// weak-lock \p LockId.
struct RevocationEvent {
  uint32_t Tid = 0;
  uint32_t LockId = 0;
  uint64_t Instret = 0;
};

/// Everything needed to deterministically replay one recorded execution.
struct ExecutionLog {
  /// PerObject[obj] is the total order of operations on ordered object
  /// `obj` (see the id-space note in the file comment).
  std::vector<std::vector<OrderedEvent>> PerObject;

  /// PerThreadInputs[tid] is the sequence of input values thread `tid`
  /// consumed.
  std::vector<std::vector<InputEvent>> PerThreadInputs;

  std::vector<RevocationEvent> Revocations;

  /// Mapping parameters fixed at record time.
  uint32_t NumSyncObjects = 0;
  uint32_t NumWeakLocks = 0;
  uint32_t NumThreads = 0;

  uint32_t outputObject() const { return NumSyncObjects; }
  uint32_t threadTableObject() const { return NumSyncObjects + 1; }
  uint32_t weakLockObject(uint32_t LockId) const {
    return NumSyncObjects + 2 + LockId;
  }
  uint32_t numOrderedObjects() const {
    return NumSyncObjects + 2 + NumWeakLocks;
  }

  /// Sizes used by the benchmark tables.
  uint64_t totalOrderedEvents() const;
  uint64_t totalInputEvents() const;

  void clear();
};

} // namespace rt
} // namespace chimera

#endif // CHIMERA_RUNTIME_EXECUTIONLOG_H
