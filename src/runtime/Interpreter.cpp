//===- runtime/Interpreter.cpp - Per-instruction execution -----------------===//
//
// Implements Machine's instruction dispatch and the pre-instruction
// pending-operation handling (cond-wait mutex reacquisition, forced
// weak-lock release/reacquisition after revocations).
//
// Dispatch runs over the pre-decoded program (Decoded.h): the current
// frame holds a DecodedFunction pointer plus a flat instruction index, so
// a fetch is one array load and a taken branch is one index assignment.
//
//===----------------------------------------------------------------------===//

#include "runtime/Machine.h"

#include <cassert>

using namespace chimera;
using namespace chimera::rt;
using namespace chimera::ir;

uint64_t Machine::reg(Thread &T, Reg R) const {
  Frame &F = T.frame();
  assert(R < F.Regs.size() && "register out of range");
  return F.Regs[R];
}

void Machine::setReg(Thread &T, Reg R, uint64_t Value) {
  Frame &F = T.frame();
  assert(R < F.Regs.size() && "register out of range");
  F.Regs[R] = Value;
}

void Machine::advance(Thread &T) {
  Frame &F = T.frame();
  assert(F.Ip < F.DFunc->Insts.size() && "advance past end of function");
  ++F.Ip;
  ++T.Instret;
  ++Stats.Instructions;
}

//===----------------------------------------------------------------------===//
// Pending operations (run before the next instruction)
//===----------------------------------------------------------------------===//

Machine::Step Machine::execPending(Thread &T, unsigned Core) {
  uint64_t Now = Sched.coreTime(Core);

  for (;;) {
  // 1. Replay: recorded forced-release episodes due at this instruction
  // boundary. The machine-side sweep in Machine::run covers blocked
  // victims; this self-application covers a victim that reaches its
  // boundary still running, before the next instruction dispatches. An
  // episode can strip locks whose reacquisition (step 3) makes the NEXT
  // episode at the same boundary applicable, so steps 1 and 3 repeat
  // until neither makes progress.
  if (isReplay()) {
    Step S = applyForcedReleases(T, Core, /*ParkOnShutGate=*/true);
    if (S != Step::Continue)
      return S;
  }

  // 2. Cond-wait mutex reacquisition.
  if (PendingMutex[T.Tid] >= 0) {
    uint32_t MutexId = static_cast<uint32_t>(PendingMutex[T.Tid]);
    SyncState &Mx = Syncs.state(MutexId);

    if (isReplay()) {
      if (!gateOpen(MutexId, T.Tid, OrderedOp::MutexLock)) {
        blockOnGate(T, MutexId, Now);
        return Step::Blocked;
      }
      assert(Mx.Owner == -1 && "replay order admitted lock on held mutex");
      Mx.Owner = T.Tid;
      PendingMutex[T.Tid] = -1;
      Sched.advanceCore(Core, Opts.Costs.SyncOp);
      Stats.CpuBusyCycles += Opts.Costs.SyncOp;
      ++Stats.SyncOps;
      gateAdvance(MutexId, Now);
      if (Opts.Observer)
        Opts.Observer->onSync(T.Tid, ObservedSync::MutexLock, MutexId, 0,
                              Now);
    } else if (Mx.Owner == -1) {
      Mx.Owner = T.Tid;
      PendingMutex[T.Tid] = -1;
      Sched.advanceCore(Core, Opts.Costs.SyncOp);
      Stats.CpuBusyCycles += Opts.Costs.SyncOp;
      ++Stats.SyncOps;
      if (isRecord())
        recordOrdered(MutexId, T.Tid, OrderedOp::MutexLock, Core);
      if (Opts.Observer)
        Opts.Observer->onSync(T.Tid, ObservedSync::MutexLock, MutexId, 0,
                              Now);
    } else {
      // Queue behind the owner; the grant path recognizes PendingMutex.
      Mx.MutexWaiters.push_back(T.Tid);
      T.State = ThreadState::Blocked;
      T.Reason = BlockReason::Mutex;
      T.WaitObject = MutexId;
      T.BlockStart = Now;
      return Step::Blocked;
    }
  }

  // 3. Forced weak-lock reacquisitions, in revocation order. Deferred
  // while the thread is resuming a gate-blocked program acquire: the
  // recorded order granted that acquire before any of these (see
  // Thread::AcquireBeforeReacquire).
  bool Reacquired = false;
  while (!T.AcquireBeforeReacquire && !T.PendingReacquire.empty()) {
    HeldWeakLock Next = T.PendingReacquire.front();
    uint32_t Obj = Log.weakLockObject(Next.LockId);
    unsigned Gran = Next.SiteGran;

    if (isReplay()) {
      if (!gateOpen(Obj, T.Tid, OrderedOp::WeakAcquire)) {
        blockOnGate(T, Obj, Now);
        return Step::Blocked;
      }
      WeakRequest Req{T.Tid, Next.HasRange, Next.Lo, Next.Hi, Now,
                      Next.SiteGran};
      if (!Weak.tryAcquire(Next.LockId, Req)) {
        fail("replay divergence: forced reacquisition infeasible");
        return Step::Fault;
      }
      Reacquired = true;
      T.PendingReacquire.erase(T.PendingReacquire.begin());
      T.HeldWeak.push_back(Next);
      ++Stats.WeakAcquires[Gran];
      if (CollectObs)
        ++ObsPerLock[Next.LockId].Acquires;
      chargeWeakCpu(Next.LockId, Gran, Opts.Costs.WeakLockOp, Core);
      gateAdvance(Obj, Now);
      if (Opts.Observer)
        Opts.Observer->onWeak(T.Tid, /*IsAcquire=*/true, Next.LockId,
                              Next.HasRange, Next.Lo, Next.Hi, Now);
      continue;
    }

    WeakRequest Req{T.Tid, Next.HasRange, Next.Lo, Next.Hi, Now,
                    Next.SiteGran};
    if (Weak.tryAcquire(Next.LockId, Req)) {
      Reacquired = true;
      T.PendingReacquire.erase(T.PendingReacquire.begin());
      T.HeldWeak.push_back(Next);
      ++Stats.WeakAcquires[Gran];
      if (CollectObs)
        ++ObsPerLock[Next.LockId].Acquires;
      chargeWeakCpu(Next.LockId, Gran, Opts.Costs.WeakLockOp, Core);
      if (isRecord())
        recordOrdered(Obj, T.Tid, OrderedOp::WeakAcquire, Core);
      if (Opts.Observer)
        Opts.Observer->onWeak(T.Tid, /*IsAcquire=*/true, Next.LockId,
                              Next.HasRange, Next.Lo, Next.Hi, Now);
      continue;
    }

    Weak.enqueue(Next.LockId, Req);
    T.State = ThreadState::Blocked;
    T.Reason = BlockReason::WeakLock;
    T.WaitObject = Next.LockId;
    T.BlockStart = Now;
    return Step::Blocked; // grantWeakWaiters pops PendingReacquire.
  }

  if (!Reacquired)
    return Step::Continue;
  } // for (;;)
}

//===----------------------------------------------------------------------===//
// Instruction dispatch
//===----------------------------------------------------------------------===//

namespace {

uint64_t evalBinary(BinOp Op, uint64_t A, uint64_t B, bool &DivByZero) {
  int64_t SA = static_cast<int64_t>(A);
  int64_t SB = static_cast<int64_t>(B);
  switch (Op) {
  case BinOp::Add: return A + B;
  case BinOp::Sub: return A - B;
  case BinOp::Mul: return A * B;
  case BinOp::Div:
    if (B == 0) {
      DivByZero = true;
      return 0;
    }
    return static_cast<uint64_t>(SA / SB);
  case BinOp::Rem:
    if (B == 0) {
      DivByZero = true;
      return 0;
    }
    return static_cast<uint64_t>(SA % SB);
  case BinOp::And: return A & B;
  case BinOp::Or: return A | B;
  case BinOp::Xor: return A ^ B;
  case BinOp::Shl: return A << (B & 63);
  case BinOp::Shr: return static_cast<uint64_t>(SA >> (B & 63));
  case BinOp::Lt: return SA < SB;
  case BinOp::Le: return SA <= SB;
  case BinOp::Gt: return SA > SB;
  case BinOp::Ge: return SA >= SB;
  case BinOp::Eq: return A == B;
  case BinOp::Ne: return A != B;
  }
  assert(false && "unhandled binary opcode");
  return 0;
}

} // namespace

Machine::Step Machine::finishFrame(Thread &T, uint64_t RetValue,
                                   bool HasValue, uint64_t Now) {
  Frame Callee = std::move(T.Stack.back());
  T.Stack.pop_back();
  ++T.Instret;
  ++Stats.Instructions;
  if (Opts.Observer)
    Opts.Observer->onFunctionExit(T.Tid, Callee.func().Index, Now);

  if (T.Stack.empty()) {
    T.RetValue = HasValue ? RetValue : 0;
    finishThread(T, Now);
    return Step::Finished;
  }

  if (Callee.RetDst != NoReg) {
    assert(HasValue && "value-expecting call returned void");
    T.frame().Regs[Callee.RetDst] = RetValue;
  }
  return Step::Continue;
}

Machine::Step Machine::execFast(Thread &T, unsigned Core, uint64_t MaxInsts,
                                uint64_t StopTime, uint64_t &Retired) {
  Frame *F = &T.frame();
  const DecodedInst *Insts = F->DFunc->Insts.data();
  uint64_t *Regs = F->Regs.data();
  uint32_t Ip = F->Ip;

  // Time may already be at or past StopTime on entry (a pending sync op
  // charged cycles, or binding advanced the clock to the thread's ready
  // time); the pre-batching loop still executed one instruction before
  // noticing, so the loop below checks the clock only after retiring.
  // Every fast opcode charges Time and CpuBusyCycles the same amount, so
  // the busy total is reconstructed from the Time delta at writeback.
  const uint64_t TimeStart = Sched.coreTime(Core);
  uint64_t Time = TimeStart;

  // Costs and segment bounds live in locals for the same reason as the
  // register file pointer: the stores this loop makes could alias the
  // members, and the reloads would dominate the per-instruction work.
  const uint64_t CAlu = Opts.Costs.Alu, CLoad = Opts.Costs.Load,
                 CStore = Opts.Costs.Store, CBranch = Opts.Costs.Branch,
                 CCall = Opts.Costs.Call, CRet = Opts.Costs.Ret,
                 CAlloc = Opts.Costs.AllocOp;
  Memory::View MV = Mem.view();

  uint64_t N = 0; ///< Instructions retired this chunk.
  uint64_t MemOps = 0;
  Step Result = Step::Continue;
  bool ThreadDone = false;
  uint64_t FinishNow = 0; ///< Pre-charge time of the finishing Ret.

  while (N != MaxInsts) {
    const DecodedInst &I = Insts[Ip];
    switch (I.Op) {
    case Opcode::ConstInt:
      Regs[I.Dst] = I.Imm;
      Time += CAlu;
      ++Ip;
      break;

    case Opcode::Move:
      Regs[I.Dst] = Regs[I.A];
      Time += CAlu;
      ++Ip;
      break;

    case Opcode::Unary: {
      uint64_t A = Regs[I.A];
      Regs[I.Dst] = static_cast<UnOp>(I.Sub) == UnOp::Neg
                        ? static_cast<uint64_t>(-static_cast<int64_t>(A))
                        : static_cast<uint64_t>(A == 0);
      Time += CAlu;
      ++Ip;
      break;
    }

    case Opcode::Binary: {
      bool DivByZero = false;
      uint64_t V = evalBinary(static_cast<BinOp>(I.Sub), Regs[I.A],
                              Regs[I.B], DivByZero);
      if (DivByZero) {
        fail("division by zero in " + F->func().Name + " (line " +
             std::to_string(I.Line) + ")");
        Result = Step::Fault;
        goto done;
      }
      Regs[I.Dst] = V;
      Time += CAlu;
      ++Ip;
      break;
    }

    case Opcode::AddrGlobal: {
      uint64_t Addr = I.Imm;
      if (I.A != NoReg)
        Addr += Regs[I.A];
      Regs[I.Dst] = Addr;
      Time += CAlu;
      ++Ip;
      break;
    }

    case Opcode::PtrAdd:
      Regs[I.Dst] = Regs[I.A] + Regs[I.B];
      Time += CAlu;
      ++Ip;
      break;

    case Opcode::Load: {
      const uint64_t *P = MV.access(Regs[I.A]);
      if (!P) {
        fail("invalid load address in " + F->func().Name + " (line " +
             std::to_string(I.Line) + ")");
        Result = Step::Fault;
        goto done;
      }
      Regs[I.Dst] = *P;
      ++MemOps;
      Time += CLoad;
      ++Ip;
      break;
    }

    case Opcode::Store: {
      uint64_t *P = MV.access(Regs[I.A]);
      if (!P) {
        fail("invalid store address in " + F->func().Name + " (line " +
             std::to_string(I.Line) + ")");
        Result = Step::Fault;
        goto done;
      }
      *P = Regs[I.B];
      ++MemOps;
      Time += CStore;
      ++Ip;
      break;
    }

    case Opcode::Br:
      Ip = I.Succ0;
      Time += CBranch;
      break;

    case Opcode::CondBr:
      Ip = Regs[I.A] != 0 ? I.Succ0 : I.Succ1;
      Time += CBranch;
      break;

    case Opcode::Alloc: {
      uint64_t Words = Regs[I.A];
      uint64_t Addr = Mem.allocate(Words);
      if (!Addr) {
        fail("heap exhausted allocating " + std::to_string(Words) +
             " words");
        Result = Step::Fault;
        goto done;
      }
      MV = Mem.view(); // allocate() moved the heap bound.
      Regs[I.Dst] = Addr;
      Time += CAlloc;
      ++Ip;
      break;
    }

    case Opcode::Call: {
      const DecodedFunction &Callee = Prog.function(I.Id);
      Frame NewFrame;
      NewFrame.DFunc = &Callee;
      NewFrame.Regs.assign(Callee.Src->NumRegs, 0);
      const Reg *Args = F->DFunc->ArgPool.data() + I.ArgsIdx;
      for (uint16_t J = 0; J != I.ArgsLen; ++J)
        NewFrame.Regs[J] = Regs[Args[J]];
      NewFrame.RetDst = I.Dst;
      Time += CCall;
      F->Ip = Ip + 1; // Caller resumes after the call.
      T.Stack.push_back(std::move(NewFrame));
      // The push may reallocate the stack; rehoist the frame state.
      F = &T.Stack.back();
      Insts = F->DFunc->Insts.data();
      Regs = F->Regs.data();
      Ip = 0;
      break;
    }

    case Opcode::Ret: {
      bool HasValue = I.A != NoReg;
      uint64_t Value = HasValue ? Regs[I.A] : 0;
      uint64_t Now = Time; // finishFrame sees the pre-charge clock.
      Time += CRet;
      ir::Reg RetDst = F->RetDst;
      T.Stack.pop_back();
      if (T.Stack.empty()) {
        T.RetValue = HasValue ? Value : 0;
        ++N; // The return retires (finishFrame's accounting).
        ThreadDone = true;
        FinishNow = Now;
        Result = Step::Finished;
        goto done;
      }
      F = &T.Stack.back();
      Insts = F->DFunc->Insts.data();
      Regs = F->Regs.data();
      Ip = F->Ip;
      if (RetDst != NoReg) {
        assert(HasValue && "value-expecting call returned void");
        Regs[RetDst] = Value;
      }
      break;
    }

    default:
      // Scheduler- or log-visible opcode: leave it (unconsumed) for the
      // generic dispatcher.
      goto done;
    }

    ++N;
    if (Time >= StopTime)
      break;
  }

done:
  if (!ThreadDone)
    F->Ip = Ip; // The popped frame of a finishing Ret is already gone.
  Retired = N;
  T.Instret += N;
  Stats.Instructions += N;
  Stats.MemOps += MemOps;
  Stats.CpuBusyCycles += Time - TimeStart;
  Sched.setCoreTime(Core, Time);
  if (ThreadDone)
    finishThread(T, FinishNow);
  return Result;
}

Machine::Step Machine::execInstruction(Thread &T, unsigned Core) {
  Frame &F = T.frame();
  assert(F.Ip < F.DFunc->Insts.size() && "instruction index out of range");
  const DecodedInst &Inst = F.DFunc->Insts[F.Ip];
  uint64_t Now = Sched.coreTime(Core);

  auto charge = [&](uint64_t Cycles) {
    Sched.advanceCore(Core, Cycles);
    Stats.CpuBusyCycles += Cycles;
  };

  switch (Inst.Op) {
  case Opcode::ConstInt:
    setReg(T, Inst.Dst, Inst.Imm); // Cast to a word at decode time.
    charge(Opts.Costs.Alu);
    advance(T);
    return Step::Continue;

  case Opcode::Move:
    setReg(T, Inst.Dst, reg(T, Inst.A));
    charge(Opts.Costs.Alu);
    advance(T);
    return Step::Continue;

  case Opcode::Unary: {
    uint64_t A = reg(T, Inst.A);
    uint64_t V = static_cast<UnOp>(Inst.Sub) == UnOp::Neg
                     ? static_cast<uint64_t>(-static_cast<int64_t>(A))
                     : static_cast<uint64_t>(A == 0);
    setReg(T, Inst.Dst, V);
    charge(Opts.Costs.Alu);
    advance(T);
    return Step::Continue;
  }

  case Opcode::Binary: {
    bool DivByZero = false;
    uint64_t V = evalBinary(static_cast<BinOp>(Inst.Sub), reg(T, Inst.A),
                            reg(T, Inst.B), DivByZero);
    if (DivByZero) {
      fail("division by zero in " + F.func().Name + " (line " +
           std::to_string(Inst.Line) + ")");
      return Step::Fault;
    }
    setReg(T, Inst.Dst, V);
    charge(Opts.Costs.Alu);
    advance(T);
    return Step::Continue;
  }

  case Opcode::AddrGlobal: {
    // Inst.Imm is the global's laid-out base address (resolved at decode).
    uint64_t Addr = Inst.Imm;
    if (Inst.A != NoReg)
      Addr += reg(T, Inst.A);
    setReg(T, Inst.Dst, Addr);
    charge(Opts.Costs.Alu);
    advance(T);
    return Step::Continue;
  }

  case Opcode::PtrAdd:
    setReg(T, Inst.Dst, reg(T, Inst.A) + reg(T, Inst.B));
    charge(Opts.Costs.Alu);
    advance(T);
    return Step::Continue;

  case Opcode::Load: {
    uint64_t Addr = reg(T, Inst.A);
    // One address classification serves both the bounds check and the
    // access; a null return faults deterministically in all build types.
    const uint64_t *P = Mem.access(Addr);
    if (!P) {
      fail("invalid load address in " + F.func().Name + " (line " +
           std::to_string(Inst.Line) + ")");
      return Step::Fault;
    }
    setReg(T, Inst.Dst, *P);
    ++Stats.MemOps;
    charge(Opts.Costs.Load);
    if (Opts.Observer)
      Opts.Observer->onMemoryAccess(T.Tid, Addr, /*IsWrite=*/false,
                                    F.func().Index, Inst.Ident, Now);
    advance(T);
    return Step::Continue;
  }

  case Opcode::Store: {
    uint64_t Addr = reg(T, Inst.A);
    uint64_t *P = Mem.access(Addr);
    if (!P) {
      fail("invalid store address in " + F.func().Name + " (line " +
           std::to_string(Inst.Line) + ")");
      return Step::Fault;
    }
    *P = reg(T, Inst.B);
    ++Stats.MemOps;
    charge(Opts.Costs.Store);
    if (Opts.Observer)
      Opts.Observer->onMemoryAccess(T.Tid, Addr, /*IsWrite=*/true,
                                    F.func().Index, Inst.Ident, Now);
    advance(T);
    return Step::Continue;
  }

  case Opcode::Br:
    F.Ip = Inst.Succ0;
    ++T.Instret;
    ++Stats.Instructions;
    charge(Opts.Costs.Branch);
    return Step::Continue;

  case Opcode::CondBr:
    F.Ip = reg(T, Inst.A) != 0 ? Inst.Succ0 : Inst.Succ1;
    ++T.Instret;
    ++Stats.Instructions;
    charge(Opts.Costs.Branch);
    return Step::Continue;

  case Opcode::Ret: {
    bool HasValue = Inst.A != NoReg;
    uint64_t Value = HasValue ? reg(T, Inst.A) : 0;
    charge(Opts.Costs.Ret);
    return finishFrame(T, Value, HasValue, Now);
  }

  case Opcode::Call: {
    const DecodedFunction &Callee = Prog.function(Inst.Id);
    Frame NewFrame;
    NewFrame.DFunc = &Callee;
    NewFrame.Regs.assign(Callee.Src->NumRegs, 0);
    const Reg *Args = F.DFunc->ArgPool.data() + Inst.ArgsIdx;
    for (uint16_t I = 0; I != Inst.ArgsLen; ++I)
      NewFrame.Regs[I] = reg(T, Args[I]);
    NewFrame.RetDst = Inst.Dst;
    charge(Opts.Costs.Call);
    advance(T); // Caller resumes after the call.
    T.Stack.push_back(std::move(NewFrame));
    if (Opts.Observer)
      Opts.Observer->onFunctionEnter(T.Tid, Callee.Src->Index, Now);
    return Step::Continue;
  }

  case Opcode::Spawn:
    return doSpawn(T, Inst, Core);

  case Opcode::Join:
    return doJoin(T, static_cast<uint32_t>(reg(T, Inst.A)), Core);

  case Opcode::MutexLock:
    return doMutexLock(T, Inst.Id, Core);
  case Opcode::MutexUnlock:
    return doMutexUnlock(T, Inst.Id, Core);
  case Opcode::BarrierWait:
    return doBarrierWait(T, Inst.Id, Core);
  case Opcode::CondWait:
    return doCondWait(T, Inst.Id, Inst.Id2, Core);
  case Opcode::CondSignal:
    return doCondSignal(T, Inst.Id, /*Broadcast=*/false, Core);
  case Opcode::CondBroadcast:
    return doCondSignal(T, Inst.Id, /*Broadcast=*/true, Core);

  case Opcode::Alloc: {
    uint64_t Words = reg(T, Inst.A);
    uint64_t Addr = Mem.allocate(Words);
    if (!Addr) {
      fail("heap exhausted allocating " + std::to_string(Words) + " words");
      return Step::Fault;
    }
    setReg(T, Inst.Dst, Addr);
    charge(Opts.Costs.AllocOp);
    advance(T);
    return Step::Continue;
  }

  case Opcode::Input:
    return doInputOp(T, InputKind::Input, Inst.Dst, Core);
  case Opcode::NetRecv:
    return doInputOp(T, InputKind::NetRecv, Inst.Dst, Core);
  case Opcode::FileRead:
    return doInputOp(T, InputKind::FileRead, Inst.Dst, Core);
  case Opcode::Output:
    return doOutput(T, reg(T, Inst.A), Core);

  case Opcode::Yield:
    charge(Opts.Costs.Alu);
    advance(T);
    return Step::Yielded;

  case Opcode::WeakAcquire: {
    bool HasRange = Inst.A != NoReg;
    uint64_t Lo = HasRange ? reg(T, Inst.A) : 0;
    uint64_t Hi = HasRange ? reg(T, Inst.B) : 0;
    return doWeakAcquire(T, static_cast<uint32_t>(Inst.Imm),
                         /*SiteGran=*/Inst.Sub, HasRange, Lo, Hi, Core);
  }

  case Opcode::WeakRelease:
    return doWeakRelease(T, static_cast<uint32_t>(Inst.Imm), Core,
                         /*Forced=*/false);
  }
  assert(false && "unhandled opcode");
  return Step::Fault;
}
