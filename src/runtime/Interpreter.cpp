//===- runtime/Interpreter.cpp - Per-instruction execution -----------------===//
//
// Implements Machine's instruction dispatch and the pre-instruction
// pending-operation handling (cond-wait mutex reacquisition, forced
// weak-lock release/reacquisition after revocations).
//
//===----------------------------------------------------------------------===//

#include "runtime/Machine.h"

#include <cassert>

using namespace chimera;
using namespace chimera::rt;
using namespace chimera::ir;

uint64_t Machine::reg(Thread &T, Reg R) const {
  Frame &F = T.frame();
  assert(R < F.Regs.size() && "register out of range");
  return F.Regs[R];
}

void Machine::setReg(Thread &T, Reg R, uint64_t Value) {
  Frame &F = T.frame();
  assert(R < F.Regs.size() && "register out of range");
  F.Regs[R] = Value;
}

void Machine::advance(Thread &T) {
  Frame &F = T.frame();
  assert(F.InstIdx < F.Func->block(F.Block).Insts.size() &&
         "advance past end of block");
  ++F.InstIdx;
  ++T.Instret;
  ++Stats.Instructions;
}

//===----------------------------------------------------------------------===//
// Pending operations (run before the next instruction)
//===----------------------------------------------------------------------===//

Machine::Step Machine::execPending(Thread &T, unsigned Core) {
  uint64_t Now = Sched.coreTime(Core);

  // 1. Replay: a recorded revocation due at this instruction boundary.
  if (isReplay() && T.Tid < RevocationCursor.size()) {
    auto &Pending = PendingRevocations[T.Tid];
    uint32_t &Cursor = RevocationCursor[T.Tid];
    if (Cursor < Pending.size()) {
      const RevocationEvent &Rev = Pending[Cursor];
      if (Rev.Instret == T.Instret && T.holdsWeak(Rev.LockId)) {
        uint32_t Obj = Log.weakLockObject(Rev.LockId);
        if (!gateOpen(Obj, T.Tid, OrderedOp::WeakRelease)) {
          blockOnGate(T, Obj, Now);
          return Step::Blocked;
        }
        ++Cursor;
        Step S = doWeakRelease(T, Rev.LockId, Core, /*Forced=*/true);
        if (S == Step::Fault)
          return S;
      }
    }
  }

  // 2. Cond-wait mutex reacquisition.
  if (PendingMutex[T.Tid] >= 0) {
    uint32_t MutexId = static_cast<uint32_t>(PendingMutex[T.Tid]);
    SyncState &Mx = Syncs.state(MutexId);

    if (isReplay()) {
      if (!gateOpen(MutexId, T.Tid, OrderedOp::MutexLock)) {
        blockOnGate(T, MutexId, Now);
        return Step::Blocked;
      }
      assert(Mx.Owner == -1 && "replay order admitted lock on held mutex");
      Mx.Owner = T.Tid;
      PendingMutex[T.Tid] = -1;
      Sched.advanceCore(Core, Opts.Costs.SyncOp);
      Stats.CpuBusyCycles += Opts.Costs.SyncOp;
      ++Stats.SyncOps;
      gateAdvance(MutexId, Now);
      if (Opts.Observer)
        Opts.Observer->onSync(T.Tid, ObservedSync::MutexLock, MutexId, 0,
                              Now);
    } else if (Mx.Owner == -1) {
      Mx.Owner = T.Tid;
      PendingMutex[T.Tid] = -1;
      Sched.advanceCore(Core, Opts.Costs.SyncOp);
      Stats.CpuBusyCycles += Opts.Costs.SyncOp;
      ++Stats.SyncOps;
      if (isRecord())
        recordOrdered(MutexId, T.Tid, OrderedOp::MutexLock, Core);
      if (Opts.Observer)
        Opts.Observer->onSync(T.Tid, ObservedSync::MutexLock, MutexId, 0,
                              Now);
    } else {
      // Queue behind the owner; the grant path recognizes PendingMutex.
      Mx.MutexWaiters.push_back(T.Tid);
      T.State = ThreadState::Blocked;
      T.Reason = BlockReason::Mutex;
      T.WaitObject = MutexId;
      T.BlockStart = Now;
      return Step::Blocked;
    }
  }

  // 3. Forced weak-lock reacquisitions, in revocation order.
  while (!T.PendingReacquire.empty()) {
    HeldWeakLock Next = T.PendingReacquire.front();
    uint32_t Obj = Log.weakLockObject(Next.LockId);
    unsigned Gran = Next.SiteGran;

    if (isReplay()) {
      if (!gateOpen(Obj, T.Tid, OrderedOp::WeakAcquire)) {
        blockOnGate(T, Obj, Now);
        return Step::Blocked;
      }
      WeakRequest Req{T.Tid, Next.HasRange, Next.Lo, Next.Hi, Now,
                      Next.SiteGran};
      if (!Weak.tryAcquire(Next.LockId, Req)) {
        fail("replay divergence: forced reacquisition infeasible");
        return Step::Fault;
      }
      T.PendingReacquire.erase(T.PendingReacquire.begin());
      T.HeldWeak.push_back(Next);
      ++Stats.WeakAcquires[Gran];
      chargeWeakCpu(Gran, Opts.Costs.WeakLockOp, Core);
      gateAdvance(Obj, Now);
      if (Opts.Observer)
        Opts.Observer->onWeak(T.Tid, /*IsAcquire=*/true, Next.LockId,
                              Next.HasRange, Next.Lo, Next.Hi, Now);
      continue;
    }

    WeakRequest Req{T.Tid, Next.HasRange, Next.Lo, Next.Hi, Now,
                    Next.SiteGran};
    if (Weak.tryAcquire(Next.LockId, Req)) {
      T.PendingReacquire.erase(T.PendingReacquire.begin());
      T.HeldWeak.push_back(Next);
      ++Stats.WeakAcquires[Gran];
      chargeWeakCpu(Gran, Opts.Costs.WeakLockOp, Core);
      if (isRecord())
        recordOrdered(Obj, T.Tid, OrderedOp::WeakAcquire, Core);
      if (Opts.Observer)
        Opts.Observer->onWeak(T.Tid, /*IsAcquire=*/true, Next.LockId,
                              Next.HasRange, Next.Lo, Next.Hi, Now);
      continue;
    }

    Weak.enqueue(Next.LockId, Req);
    T.State = ThreadState::Blocked;
    T.Reason = BlockReason::WeakLock;
    T.WaitObject = Next.LockId;
    T.BlockStart = Now;
    return Step::Blocked; // grantWeakWaiters pops PendingReacquire.
  }

  return Step::Continue;
}

//===----------------------------------------------------------------------===//
// Instruction dispatch
//===----------------------------------------------------------------------===//

namespace {

uint64_t evalBinary(BinOp Op, uint64_t A, uint64_t B, bool &DivByZero) {
  int64_t SA = static_cast<int64_t>(A);
  int64_t SB = static_cast<int64_t>(B);
  switch (Op) {
  case BinOp::Add: return A + B;
  case BinOp::Sub: return A - B;
  case BinOp::Mul: return A * B;
  case BinOp::Div:
    if (B == 0) {
      DivByZero = true;
      return 0;
    }
    return static_cast<uint64_t>(SA / SB);
  case BinOp::Rem:
    if (B == 0) {
      DivByZero = true;
      return 0;
    }
    return static_cast<uint64_t>(SA % SB);
  case BinOp::And: return A & B;
  case BinOp::Or: return A | B;
  case BinOp::Xor: return A ^ B;
  case BinOp::Shl: return A << (B & 63);
  case BinOp::Shr: return static_cast<uint64_t>(SA >> (B & 63));
  case BinOp::Lt: return SA < SB;
  case BinOp::Le: return SA <= SB;
  case BinOp::Gt: return SA > SB;
  case BinOp::Ge: return SA >= SB;
  case BinOp::Eq: return A == B;
  case BinOp::Ne: return A != B;
  }
  assert(false && "unhandled binary opcode");
  return 0;
}

} // namespace

Machine::Step Machine::finishFrame(Thread &T, uint64_t RetValue,
                                   bool HasValue, uint64_t Now) {
  Frame Callee = std::move(T.Stack.back());
  T.Stack.pop_back();
  ++T.Instret;
  ++Stats.Instructions;
  if (Opts.Observer)
    Opts.Observer->onFunctionExit(T.Tid, Callee.Func->Index, Now);

  if (T.Stack.empty()) {
    T.RetValue = HasValue ? RetValue : 0;
    finishThread(T, Now);
    return Step::Finished;
  }

  if (Callee.RetDst != NoReg) {
    assert(HasValue && "value-expecting call returned void");
    T.frame().Regs[Callee.RetDst] = RetValue;
  }
  return Step::Continue;
}

Machine::Step Machine::execInstruction(Thread &T, unsigned Core) {
  Frame &F = T.frame();
  const BasicBlock &BB = F.Func->block(F.Block);
  assert(F.InstIdx < BB.Insts.size() && "instruction index out of range");
  const Instruction &Inst = BB.Insts[F.InstIdx];
  uint64_t Now = Sched.coreTime(Core);

  auto charge = [&](uint64_t Cycles) {
    Sched.advanceCore(Core, Cycles);
    Stats.CpuBusyCycles += Cycles;
  };

  switch (Inst.Op) {
  case Opcode::ConstInt:
    setReg(T, Inst.Dst, static_cast<uint64_t>(Inst.Imm));
    charge(Opts.Costs.Alu);
    advance(T);
    return Step::Continue;

  case Opcode::Move:
    setReg(T, Inst.Dst, reg(T, Inst.A));
    charge(Opts.Costs.Alu);
    advance(T);
    return Step::Continue;

  case Opcode::Unary: {
    uint64_t A = reg(T, Inst.A);
    uint64_t V = Inst.UOp == UnOp::Neg
                     ? static_cast<uint64_t>(-static_cast<int64_t>(A))
                     : static_cast<uint64_t>(A == 0);
    setReg(T, Inst.Dst, V);
    charge(Opts.Costs.Alu);
    advance(T);
    return Step::Continue;
  }

  case Opcode::Binary: {
    bool DivByZero = false;
    uint64_t V = evalBinary(Inst.BOp, reg(T, Inst.A), reg(T, Inst.B),
                            DivByZero);
    if (DivByZero) {
      fail("division by zero in " + F.Func->Name + " (line " +
           std::to_string(Inst.Loc.Line) + ")");
      return Step::Fault;
    }
    setReg(T, Inst.Dst, V);
    charge(Opts.Costs.Alu);
    advance(T);
    return Step::Continue;
  }

  case Opcode::AddrGlobal: {
    assert(Inst.Id < M.Globals.size() && "global id out of range");
    uint64_t Addr = M.Globals[Inst.Id].BaseAddr;
    if (Inst.A != NoReg)
      Addr += reg(T, Inst.A);
    setReg(T, Inst.Dst, Addr);
    charge(Opts.Costs.Alu);
    advance(T);
    return Step::Continue;
  }

  case Opcode::PtrAdd:
    setReg(T, Inst.Dst, reg(T, Inst.A) + reg(T, Inst.B));
    charge(Opts.Costs.Alu);
    advance(T);
    return Step::Continue;

  case Opcode::Load: {
    uint64_t Addr = reg(T, Inst.A);
    if (!Mem.valid(Addr)) {
      fail("invalid load address in " + F.Func->Name + " (line " +
           std::to_string(Inst.Loc.Line) + ")");
      return Step::Fault;
    }
    setReg(T, Inst.Dst, Mem.load(Addr));
    ++Stats.MemOps;
    charge(Opts.Costs.Load);
    if (Opts.Observer)
      Opts.Observer->onMemoryAccess(T.Tid, Addr, /*IsWrite=*/false,
                                    F.Func->Index, Inst.Ident, Now);
    advance(T);
    return Step::Continue;
  }

  case Opcode::Store: {
    uint64_t Addr = reg(T, Inst.A);
    if (!Mem.valid(Addr)) {
      fail("invalid store address in " + F.Func->Name + " (line " +
           std::to_string(Inst.Loc.Line) + ")");
      return Step::Fault;
    }
    Mem.store(Addr, reg(T, Inst.B));
    ++Stats.MemOps;
    charge(Opts.Costs.Store);
    if (Opts.Observer)
      Opts.Observer->onMemoryAccess(T.Tid, Addr, /*IsWrite=*/true,
                                    F.Func->Index, Inst.Ident, Now);
    advance(T);
    return Step::Continue;
  }

  case Opcode::Br:
    F.Block = Inst.Succ0;
    F.InstIdx = 0;
    ++T.Instret;
    ++Stats.Instructions;
    charge(Opts.Costs.Branch);
    return Step::Continue;

  case Opcode::CondBr:
    F.Block = reg(T, Inst.A) != 0 ? Inst.Succ0 : Inst.Succ1;
    F.InstIdx = 0;
    ++T.Instret;
    ++Stats.Instructions;
    charge(Opts.Costs.Branch);
    return Step::Continue;

  case Opcode::Ret: {
    bool HasValue = Inst.A != NoReg;
    uint64_t Value = HasValue ? reg(T, Inst.A) : 0;
    charge(Opts.Costs.Ret);
    return finishFrame(T, Value, HasValue, Now);
  }

  case Opcode::Call: {
    const Function &Callee = M.function(Inst.Id);
    Frame NewFrame;
    NewFrame.Func = &Callee;
    NewFrame.Regs.assign(Callee.NumRegs, 0);
    for (size_t I = 0; I != Inst.Args.size(); ++I)
      NewFrame.Regs[I] = reg(T, Inst.Args[I]);
    NewFrame.RetDst = Inst.Dst;
    charge(Opts.Costs.Call);
    advance(T); // Caller resumes after the call.
    T.Stack.push_back(std::move(NewFrame));
    if (Opts.Observer)
      Opts.Observer->onFunctionEnter(T.Tid, Callee.Index, Now);
    return Step::Continue;
  }

  case Opcode::Spawn:
    return doSpawn(T, Inst, Core);

  case Opcode::Join:
    return doJoin(T, static_cast<uint32_t>(reg(T, Inst.A)), Core);

  case Opcode::MutexLock:
    return doMutexLock(T, Inst.Id, Core);
  case Opcode::MutexUnlock:
    return doMutexUnlock(T, Inst.Id, Core);
  case Opcode::BarrierWait:
    return doBarrierWait(T, Inst.Id, Core);
  case Opcode::CondWait:
    return doCondWait(T, Inst.Id, Inst.Id2, Core);
  case Opcode::CondSignal:
    return doCondSignal(T, Inst.Id, /*Broadcast=*/false, Core);
  case Opcode::CondBroadcast:
    return doCondSignal(T, Inst.Id, /*Broadcast=*/true, Core);

  case Opcode::Alloc: {
    uint64_t Words = reg(T, Inst.A);
    uint64_t Addr = Mem.allocate(Words);
    if (!Addr) {
      fail("heap exhausted allocating " + std::to_string(Words) + " words");
      return Step::Fault;
    }
    setReg(T, Inst.Dst, Addr);
    charge(Opts.Costs.AllocOp);
    advance(T);
    return Step::Continue;
  }

  case Opcode::Input:
    return doInputOp(T, InputKind::Input, Inst.Dst, Core);
  case Opcode::NetRecv:
    return doInputOp(T, InputKind::NetRecv, Inst.Dst, Core);
  case Opcode::FileRead:
    return doInputOp(T, InputKind::FileRead, Inst.Dst, Core);
  case Opcode::Output:
    return doOutput(T, reg(T, Inst.A), Core);

  case Opcode::Yield:
    charge(Opts.Costs.Alu);
    advance(T);
    return Step::Yielded;

  case Opcode::WeakAcquire: {
    bool HasRange = Inst.A != NoReg;
    uint64_t Lo = HasRange ? reg(T, Inst.A) : 0;
    uint64_t Hi = HasRange ? reg(T, Inst.B) : 0;
    return doWeakAcquire(T, static_cast<uint32_t>(Inst.Imm),
                         /*SiteGran=*/Inst.Id2 & 3, HasRange, Lo, Hi, Core);
  }

  case Opcode::WeakRelease:
    return doWeakRelease(T, static_cast<uint32_t>(Inst.Imm), Core,
                         /*Forced=*/false);
  }
  assert(false && "unhandled opcode");
  return Step::Fault;
}
