//===- runtime/Decoded.h - Pre-decoded instruction arrays ------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interpreter's execution format. `ir::Function` stores instructions
/// as a vector of basic blocks, each a vector of `ir::Instruction` with
/// out-of-line call-argument vectors — three dependent loads per fetch in
/// the hot loop, plus per-opcode operand re-resolution (global base
/// addresses, immediate casts, packed granularity bits). At `Machine`
/// construction, `DecodedProgram` flattens every function once into a
/// contiguous `DecodedInst` array:
///
///  - blocks are concatenated in id order, and branch successors are
///    rewritten to flat instruction indices, so taking a branch is a
///    single index assignment instead of a (block, index) pair reset;
///  - call/spawn argument registers live in one per-function pool,
///    addressed by (offset, length);
///  - operands that are constant for the lifetime of the module are
///    resolved at decode time: `AddrGlobal` carries the laid-out base
///    address, `ConstInt` the already-cast word, `WeakAcquire` its
///    unpacked site granularity.
///
/// Decoding is a pure view: the `ir::Module` stays the source of truth
/// and is never mutated, so analyses and the instrumenter are unaffected.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_RUNTIME_DECODED_H
#define CHIMERA_RUNTIME_DECODED_H

#include "ir/Module.h"

#include <cstdint>
#include <vector>

namespace chimera {
namespace rt {

/// One flattened instruction. Field use mirrors `ir::Instruction` except
/// where decoding resolves a value (see file comment).
struct DecodedInst {
  ir::Opcode Op = ir::Opcode::Yield;
  /// UnOp / BinOp ordinal, or the WeakAcquire site granularity.
  uint8_t Sub = 0;
  uint16_t ArgsLen = 0;  ///< Call/Spawn argument count.

  ir::Reg Dst = ir::NoReg;
  ir::Reg A = ir::NoReg;
  ir::Reg B = ir::NoReg;

  /// ConstInt: the operand cast to a word. AddrGlobal: the resolved
  /// global base address. WeakAcquire/WeakRelease: the weak-lock id.
  uint64_t Imm = 0;

  uint32_t Id = 0;       ///< Function / sync-object id.
  uint32_t Id2 = 0;      ///< CondWait's mutex id.
  uint32_t Succ0 = 0;    ///< Flat index of Succ0's first instruction.
  uint32_t Succ1 = 0;    ///< Flat index of Succ1's first instruction.
  uint32_t ArgsIdx = 0;  ///< Offset into DecodedFunction::ArgPool.

  ir::InstId Ident = ir::NoInst;
  uint32_t Line = 0;     ///< Source line for fault diagnostics.
};

/// A function flattened for execution.
struct DecodedFunction {
  const ir::Function *Src = nullptr;
  std::vector<DecodedInst> Insts;   ///< Blocks concatenated in id order.
  std::vector<uint32_t> BlockStart; ///< BlockId -> flat index of Insts[0].
  std::vector<ir::Reg> ArgPool;     ///< Call/Spawn argument registers.
};

/// All of a module's functions in execution format. Built once per
/// Machine; immutable afterwards, so threads share it freely.
class DecodedProgram {
public:
  void init(const ir::Module &M);

  const DecodedFunction &function(uint32_t Index) const {
    assert(Index < Funcs.size() && "function index out of range");
    return Funcs[Index];
  }

  uint32_t numFunctions() const {
    return static_cast<uint32_t>(Funcs.size());
  }

  /// Inverse of function(): the module index of a decoded function, used
  /// to name stack frames position-independently in checkpoints. \p F
  /// must point into this program's (contiguous) function array.
  uint32_t indexOf(const DecodedFunction *F) const {
    assert(F >= Funcs.data() && F < Funcs.data() + Funcs.size() &&
           "foreign function pointer");
    return static_cast<uint32_t>(F - Funcs.data());
  }

private:
  std::vector<DecodedFunction> Funcs;
};

} // namespace rt
} // namespace chimera

#endif // CHIMERA_RUNTIME_DECODED_H
