//===- runtime/LogEvents.h - Streaming record sink --------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The streaming side of record mode: a Machine with a LogEventSink
/// attached emits every log record (ordered events, inputs, revocations,
/// periodic checkpoints) as it happens, instead of only materializing
/// the ExecutionLog at the end of the run. replay::LogWriter implements
/// this interface to frame records into the segmented on-disk format
/// (docs/LOG_FORMAT.md) with compression off the critical path.
///
/// The interface lives in the runtime layer (not replay) so the Machine
/// does not depend on the storage engine; the in-memory ExecutionLog is
/// still built alongside, so attaching a sink never changes results.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_RUNTIME_LOGEVENTS_H
#define CHIMERA_RUNTIME_LOGEVENTS_H

#include "runtime/ExecutionLog.h"

#include <cstdint>

namespace chimera {
namespace rt {

struct MachineSnapshot;

/// Receives record-mode log events in program order. Calls happen on the
/// (single) host thread driving the Machine; implementations may hand
/// work to other threads but must not touch machine state. Sink methods
/// cannot fail — implementations latch I/O errors and report them from
/// their own finish/close entry point.
class LogEventSink {
public:
  virtual ~LogEventSink();

  /// Start of a record run: the ordered-object id-space parameters.
  virtual void onStart(uint32_t NumSyncObjects, uint32_t NumWeakLocks);

  /// One per-object ordered event (same append order as
  /// ExecutionLog::PerObject gets them).
  virtual void onOrdered(uint32_t Obj, uint32_t Tid, OrderedOp Op);

  /// One consumed nondeterministic input.
  virtual void onInput(uint32_t Tid, InputKind Kind, uint64_t Value);

  /// One weak-lock revocation (appended in global order).
  virtual void onRevocation(const RevocationEvent &Rev);

  /// A periodic checkpoint captured at a quiescent point. The reference
  /// is only valid for the duration of the call.
  virtual void onCheckpoint(const MachineSnapshot &Snap);

  /// End of the run: final thread count plus record totals, letting the
  /// storage layer write an integrity footer.
  virtual void onEnd(uint32_t NumThreads, uint64_t OrderedEvents,
                     uint64_t InputEvents);
};

} // namespace rt
} // namespace chimera

#endif // CHIMERA_RUNTIME_LOGEVENTS_H
