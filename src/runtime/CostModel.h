//===- runtime/CostModel.h - Simulated cycle costs --------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cycle costs for the execution simulator. The paper measures wall-clock
/// on an 8-core Xeon; we substitute simulated cycles. The constants are
/// chosen so the *relative* costs mirror the mechanisms that produce the
/// paper's shapes: ALU/memory ops are cheap; lock and log operations cost
/// tens of cycles (atomic RMW + fence + log append); syscalls cost
/// hundreds of CPU cycles plus a blocking latency during which the core
/// runs other threads (so I/O-bound programs hide recording overhead).
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_RUNTIME_COSTMODEL_H
#define CHIMERA_RUNTIME_COSTMODEL_H

#include <cstdint>

namespace chimera {
namespace rt {

struct CostModel {
  // Per-instruction CPU costs (cycles).
  uint64_t Alu = 1;
  uint64_t Load = 2;
  uint64_t Store = 2;
  uint64_t Branch = 1;
  uint64_t Call = 6;
  uint64_t Ret = 4;
  uint64_t AllocOp = 30;

  // Synchronization (uninstrumented program ops).
  uint64_t SyncOp = 40;

  // Chimera instrumentation.
  uint64_t WeakLockOp = 35;    ///< Weak-lock acquire/release CPU cost.
  uint64_t RangeCheck = 12;    ///< Extra cost of a ranged (loop) acquire.
  uint64_t LogEvent = 45;      ///< Appending one record to a log buffer.

  // Syscall-like operations: CPU portion + blocking latency during which
  // the core is free to run other threads.
  uint64_t SyscallCpu = 350;
  uint64_t InputLatency = 1200;
  uint64_t FileLatency = 9000;
  uint64_t NetLatency = 60000;
  uint64_t OutputCpu = 250;
  uint64_t OutputLatency = 800;

  // Thread management.
  uint64_t SpawnCost = 1500;
  uint64_t JoinCost = 40;

  /// The default model used by all benchmarks.
  static CostModel defaultModel() { return CostModel(); }
};

} // namespace rt
} // namespace chimera

#endif // CHIMERA_RUNTIME_COSTMODEL_H
