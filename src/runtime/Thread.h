//===- runtime/Thread.h - Simulated threads ---------------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulated thread contexts: a call stack of frames over the IR, the
/// thread's scheduling state, and the weak-locks it currently holds.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_RUNTIME_THREAD_H
#define CHIMERA_RUNTIME_THREAD_H

#include "runtime/Decoded.h"

#include <cstdint>
#include <vector>

namespace chimera {
namespace rt {

/// One activation record. Execution state is a pointer into the owning
/// Machine's pre-decoded program (see Decoded.h): `Ip` indexes the flat
/// `DFunc->Insts` array, so fetching the next instruction is one load and
/// taking a branch is one index assignment.
struct Frame {
  const DecodedFunction *DFunc = nullptr;
  uint32_t Ip = 0; ///< Flat index into DFunc->Insts.
  std::vector<uint64_t> Regs;
  /// Caller register to receive the return value (NoReg for none); lives
  /// in the frame *below* the callee's.
  ir::Reg RetDst = ir::NoReg;

  const ir::Function &func() const { return *DFunc->Src; }
};

enum class ThreadState : uint8_t {
  Ready,    ///< Runnable, waiting for a core.
  Running,  ///< Currently on a core.
  Sleeping, ///< Blocked until WakeTime (simulated I/O latency).
  Blocked,  ///< Waiting on a sync object / weak-lock / replay gate.
  Finished, ///< Ran to completion.
  Faulted,  ///< Hit a runtime fault; machine stops.
};

/// What a Blocked thread is waiting for (used for wakeups and deadlock
/// diagnostics).
enum class BlockReason : uint8_t {
  None,
  Mutex,
  Barrier,
  CondVar,
  Join,
  WeakLock,
  ReplayGate, ///< Waiting for its turn in a replayed per-object order.
  EpochEnd,   ///< Parked at its epoch-boundary instruction count
              ///< (MachineOptions::StopAt); never woken.
};

/// A weak-lock held by a thread, with its optional address range.
struct HeldWeakLock {
  uint32_t LockId = 0;
  bool HasRange = false;
  uint64_t Lo = 0;
  uint64_t Hi = 0;
  uint8_t SiteGran = 3; ///< ir::WeakLockGranularity of the acquire site.
};

struct Thread {
  uint32_t Tid = 0;
  ThreadState State = ThreadState::Ready;
  BlockReason Reason = BlockReason::None;
  uint32_t WaitObject = 0;  ///< Sync id / weak-lock id / ordered object.
  uint64_t WakeTime = 0;    ///< For Sleeping threads.
  uint64_t ReadyTime = 0;   ///< Simulated time the thread became runnable.
  uint64_t BlockStart = 0;  ///< When the current block began (stall stats).

  std::vector<Frame> Stack;
  uint64_t Instret = 0;     ///< Instructions executed (revocation points).
  uint64_t RetValue = 0;    ///< Thread function's return value.

  std::vector<HeldWeakLock> HeldWeak; ///< Acquisition-ordered.
  std::vector<uint32_t> JoinWaiters;  ///< Tids blocked joining on us.

  /// Pending forced reacquisitions after a revocation, in order.
  std::vector<HeldWeakLock> PendingReacquire;

  /// Replay only: this thread is gate-blocked at a program WeakAcquire
  /// instruction, so PendingReacquire processing is deferred until that
  /// acquire completes. A revocation can strip a thread's holds while
  /// it waits at an acquire; in record the eventual grant completes the
  /// blocked acquire first (machine-side) and the stripped locks are
  /// reacquired after it, so replay must keep the same order or the
  /// per-object gates cross-deadlock.
  bool AcquireBeforeReacquire = false;

  bool runnable() const { return State == ThreadState::Ready; }
  bool done() const { return State == ThreadState::Finished; }

  Frame &frame() {
    assert(!Stack.empty() && "thread has no frames");
    return Stack.back();
  }

  bool holdsWeak(uint32_t LockId) const {
    for (const HeldWeakLock &H : HeldWeak)
      if (H.LockId == LockId)
        return true;
    return false;
  }
};

} // namespace rt
} // namespace chimera

#endif // CHIMERA_RUNTIME_THREAD_H
