//===- runtime/SyncObjects.h - Runtime sync-object state --------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime state for the program's synchronization objects (mutexes,
/// barriers, condition variables). Wait queues hold thread ids; the
/// Machine moves threads between queues and the scheduler.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_RUNTIME_SYNCOBJECTS_H
#define CHIMERA_RUNTIME_SYNCOBJECTS_H

#include "ir/Module.h"

#include <cstdint>
#include <deque>
#include <vector>

namespace chimera {
namespace rt {

/// Runtime state of one sync object (only the fields for its kind are
/// meaningful).
struct SyncState {
  ir::SyncKind Kind = ir::SyncKind::Mutex;

  // Mutex.
  int64_t Owner = -1; ///< Owning tid or -1.
  std::deque<uint32_t> MutexWaiters;

  // Barrier.
  uint32_t Parties = 0;
  std::vector<uint32_t> Arrived;
  std::vector<uint64_t> ArrivedTimes;
  uint64_t Generation = 0;

  // Condition variable.
  std::deque<uint32_t> CondWaiters;
};

class SyncObjectTable {
public:
  void init(const ir::Module &M);

  SyncState &state(uint32_t SyncId) {
    assert(SyncId < States.size() && "sync id out of range");
    return States[SyncId];
  }
  const SyncState &state(uint32_t SyncId) const {
    assert(SyncId < States.size() && "sync id out of range");
    return States[SyncId];
  }

  uint32_t size() const { return static_cast<uint32_t>(States.size()); }

private:
  std::vector<SyncState> States;
};

} // namespace rt
} // namespace chimera

#endif // CHIMERA_RUNTIME_SYNCOBJECTS_H
