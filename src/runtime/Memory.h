//===- runtime/Memory.h - Simulated word-addressed memory -------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated machine's memory: a global segment (laid out by the
/// Module) and a bump-allocated heap, both word-granular. Addresses are
/// plain uint64 word indices; 0 is never valid, so it serves as null.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_RUNTIME_MEMORY_H
#define CHIMERA_RUNTIME_MEMORY_H

#include "ir/Module.h"
#include "support/Hash.h"

#include <cstdint>
#include <vector>

namespace chimera {
namespace rt {

class Memory {
public:
  /// Initializes segments from \p M (which must have laid-out globals).
  void init(const ir::Module &M, uint64_t HeapCapacityWords = 1u << 22);

  bool valid(uint64_t Addr) const;

  /// Loads the word at \p Addr. \p Addr must be valid.
  uint64_t load(uint64_t Addr) const;

  /// Stores \p Value at \p Addr. \p Addr must be valid.
  void store(uint64_t Addr, uint64_t Value);

  /// Bump-allocates \p Words zeroed words; returns their base address or
  /// 0 when the heap is exhausted.
  uint64_t allocate(uint64_t Words);

  uint64_t heapUsedWords() const { return HeapUsed; }

  /// Mixes the full memory state into \p H (global segment + live heap),
  /// used for record-vs-replay determinism comparison.
  void hashInto(Hasher &H) const;

private:
  std::vector<uint64_t> GlobalSeg;
  std::vector<uint64_t> HeapSeg;
  uint64_t HeapUsed = 0;
};

} // namespace rt
} // namespace chimera

#endif // CHIMERA_RUNTIME_MEMORY_H
