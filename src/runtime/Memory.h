//===- runtime/Memory.h - Simulated word-addressed memory -------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated machine's memory: a global segment (laid out by the
/// Module) and a bump-allocated heap, both word-granular. Addresses are
/// plain uint64 word indices; 0 is never valid, so it serves as null.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_RUNTIME_MEMORY_H
#define CHIMERA_RUNTIME_MEMORY_H

#include "ir/Module.h"
#include "support/Hash.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace chimera {
namespace rt {

class Memory {
public:
  /// Initializes segments from \p M (which must have laid-out globals).
  void init(const ir::Module &M, uint64_t HeapCapacityWords = 1u << 22);

  bool valid(uint64_t Addr) const { return access(Addr) != nullptr; }

  /// Maps \p Addr to its backing word, or null when the address is not
  /// in the global segment or the allocated heap. This is the
  /// interpreter's accessor: one classification serves both the bounds
  /// check and the access, and an invalid address is reported by the
  /// null return in every build type (never by a vanishing assert), so
  /// wild loads/stores become a deterministic Step::Fault.
  const uint64_t *access(uint64_t Addr) const {
    // Unsigned wrap makes the two range checks single comparisons.
    uint64_t GlobalOff = Addr - ir::Module::GlobalBase;
    if (GlobalOff < GlobalSeg.size())
      return &GlobalSeg[GlobalOff];
    uint64_t HeapOff = Addr - ir::Module::HeapBase;
    if (HeapOff < HeapUsed)
      return &HeapSeg[HeapOff];
    return nullptr;
  }
  uint64_t *access(uint64_t Addr) {
    return const_cast<uint64_t *>(
        static_cast<const Memory *>(this)->access(Addr));
  }

  /// A snapshot of the segment bounds for the interpreter's fast path.
  /// Stores the interpreter makes through raw uint64_t pointers may
  /// legally alias this object's members, so accessing memory via the
  /// member function forces the compiler to reload the bounds after every
  /// store; a View keeps them in registers. Both segments are allocated
  /// in full at init() (allocate() only bumps HeapUsed), so a View stays
  /// valid until the next allocate().
  struct View {
    uint64_t *GlobalData = nullptr;
    uint64_t GlobalSize = 0;
    uint64_t *HeapData = nullptr;
    uint64_t HeapUsed = 0;

    /// Same classification as Memory::access.
    uint64_t *access(uint64_t Addr) const {
      uint64_t GlobalOff = Addr - ir::Module::GlobalBase;
      if (GlobalOff < GlobalSize)
        return GlobalData + GlobalOff;
      uint64_t HeapOff = Addr - ir::Module::HeapBase;
      if (HeapOff < HeapUsed)
        return HeapData + HeapOff;
      return nullptr;
    }
  };

  View view() {
    return {GlobalSeg.data(), GlobalSeg.size(), HeapSeg.data(), HeapUsed};
  }

  /// Loads the word at \p Addr. \p Addr must be valid.
  uint64_t load(uint64_t Addr) const;

  /// Stores \p Value at \p Addr. \p Addr must be valid.
  void store(uint64_t Addr, uint64_t Value);

  /// Bump-allocates \p Words zeroed words; returns their base address or
  /// 0 when the heap is exhausted.
  uint64_t allocate(uint64_t Words);

  uint64_t heapUsedWords() const { return HeapUsed; }

  /// Segment contents, exposed for checkpointing. HeapSeg is sized to
  /// exactly HeapUsed words, so these are the complete live state.
  const std::vector<uint64_t> &globalWords() const { return GlobalSeg; }
  const std::vector<uint64_t> &heapWords() const { return HeapSeg; }

  /// Replaces the contents of both segments from a checkpoint. Must be
  /// called after init() with the same module: the global size must
  /// match and \p Used must fit the existing heap reservation. Assigning
  /// through the vectors preserves the full-capacity reservation, so
  /// Views stay valid across later allocate() calls as before.
  void restoreContents(const std::vector<uint64_t> &Global,
                       const std::vector<uint64_t> &Heap, uint64_t Used) {
    assert(Global.size() == GlobalSeg.size() && "global segment mismatch");
    assert(Heap.size() == Used && Used <= HeapCapacity && "bad heap restore");
    GlobalSeg = Global;
    HeapSeg = Heap;
    HeapUsed = Used;
  }

  /// Mixes the full memory state into \p H (global segment + live heap),
  /// used for record-vs-replay determinism comparison.
  void hashInto(Hasher &H) const;

private:
  std::vector<uint64_t> GlobalSeg;
  /// Sized to HeapUsed (grown by allocate) inside a fixed reservation of
  /// HeapCapacity words, so unused heap is never touched or zeroed.
  std::vector<uint64_t> HeapSeg;
  uint64_t HeapCapacity = 0;
  uint64_t HeapUsed = 0;
};

} // namespace rt
} // namespace chimera

#endif // CHIMERA_RUNTIME_MEMORY_H
