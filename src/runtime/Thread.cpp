//===- runtime/Thread.cpp - Simulated threads ------------------------------===//

#include "runtime/Thread.h"

// Header-only for now; this TU anchors the library target.
