//===- runtime/Snapshot.h - Machine checkpoint state ------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A MachineSnapshot is everything replay needs to resume a recorded
/// execution from a mid-run point instead of re-executing from the
/// start: thread contexts, sync-object state, scheduler clocks, memory
/// contents, the output stream, and the log position (how many events of
/// each per-object order, per-thread input stream, and the revocation
/// list were already consumed).
///
/// Snapshots are captured in Record mode at quiescent points (between
/// dispatches, no thread mid-operation) and restored into Replay mode.
/// Record-only scheduling state is *normalized* at capture so the
/// restored machine is expressible in replay terms:
///
///  - Running threads become Ready (replay will rebind them);
///  - threads blocked in a mutex or weak-lock wait queue become Ready
///    and re-execute their acquire, which replay gates on the recorded
///    order anyway (the queues themselves are not captured);
///  - condvar / barrier / join waiters and sleepers keep their blocked
///    state — those wake paths work identically in replay.
///
/// Resumed replay therefore reproduces the recorded per-object orders
/// exactly, and — because every racing access is weak-lock ordered —
/// reaches a final memory + output state bit-identical to a cold replay
/// of the full log. Core clocks and stats may differ; the determinism
/// contract covers state, not timing.
///
/// The struct holds full memory contents; the on-disk checkpoint codec
/// (replay/Checkpoint.h) stores page deltas against the previous
/// checkpoint and the reader re-accumulates them.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_RUNTIME_SNAPSHOT_H
#define CHIMERA_RUNTIME_SNAPSHOT_H

#include "runtime/Thread.h"

#include <cstdint>
#include <vector>

namespace chimera {
namespace rt {

/// One activation record, position-independent: the function is named by
/// its module index and the instruction by its flat decoded index.
struct FrameSnapshot {
  uint32_t FuncId = 0;
  uint32_t Ip = 0;
  uint32_t RetDst = 0; ///< ir::Reg; ir::NoReg when no return slot.
  std::vector<uint64_t> Regs;
};

struct ThreadSnapshot {
  uint32_t Tid = 0;
  uint8_t State = 0;  ///< ThreadState (normalized; never Running).
  uint8_t Reason = 0; ///< BlockReason.
  uint32_t WaitObject = 0;
  uint64_t WakeTime = 0;
  uint64_t ReadyTime = 0;
  uint64_t BlockStart = 0;
  uint64_t Instret = 0;
  uint64_t RetValue = 0;
  int64_t PendingMutex = -1;
  std::vector<FrameSnapshot> Stack;
  std::vector<HeldWeakLock> HeldWeak;
  std::vector<HeldWeakLock> PendingReacquire;
  std::vector<uint32_t> JoinWaiters;
};

/// Sync-object state that survives normalization. Mutex wait queues are
/// deliberately absent (see file comment); barrier and condvar queues
/// are kept because their wake paths are mode-independent.
struct SyncObjectSnapshot {
  int64_t Owner = -1;
  uint64_t Generation = 0;
  std::vector<uint32_t> Arrived;
  std::vector<uint64_t> ArrivedTimes;
  std::vector<uint32_t> CondWaiters;
};

struct ReadySnapshot {
  uint32_t Tid = 0;
  uint64_t ReadyTime = 0;
};

struct MachineSnapshot {
  // -- Log position at capture.
  std::vector<uint32_t> GateCursors;  ///< Per ordered object: consumed.
  std::vector<uint32_t> InputCursors; ///< Per thread: inputs consumed.
  uint64_t RevocationsDone = 0;       ///< Prefix of the revocation list.
  uint64_t LogEventsAtCapture = 0;    ///< Total log records at capture.

  // -- Machine state.
  std::vector<ThreadSnapshot> Threads; ///< Tid order.
  std::vector<SyncObjectSnapshot> Syncs;
  std::vector<ReadySnapshot> ReadyQueue; ///< FIFO order at capture.
  std::vector<uint64_t> CoreTimes;
  std::vector<uint64_t> Output;

  // -- Memory contents (full; the codec deltas them).
  std::vector<uint64_t> GlobalWords;
  std::vector<uint64_t> HeapWords; ///< Exactly HeapUsed words.
  uint64_t HeapUsed = 0;

  /// Fingerprint of memory + output at capture, same formula as
  /// ExecutionResult::StateHash. A restored checkpoint is validated
  /// against it, so a corrupt-but-CRC-colliding delta cannot silently
  /// diverge.
  uint64_t StateHash = 0;
};

/// Recomputes what \c StateHash must be from the snapshot's own memory
/// and output (the ExecutionResult::StateHash formula). The storage
/// layer uses the mismatch as end-to-end corruption detection after
/// reassembling checkpoint memory from deltas.
uint64_t snapshotStateHash(const MachineSnapshot &Snap);

} // namespace rt
} // namespace chimera

#endif // CHIMERA_RUNTIME_SNAPSHOT_H
