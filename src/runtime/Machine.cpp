//===- runtime/Machine.cpp - The Chimera execution simulator ---------------===//
//
// Top-level scheduling loop, synchronization semantics, weak-lock
// handling, and record/replay order enforcement. Per-instruction
// interpretation lives in Interpreter.cpp.
//
// Instruction-advance convention: every operation that completes calls
// advance() (or assigns the frame's flat Ip for terminators) exactly
// once, either inline or out-of-band in the waker that completes it. The
// dispatcher never advances.
//
//===----------------------------------------------------------------------===//

#include "runtime/Machine.h"

#include "runtime/LogEvents.h"
#include "runtime/Snapshot.h"

#include <algorithm>
#include <cassert>

using namespace chimera;
using namespace chimera::rt;
using ir::WeakLockGranularity;

LogEventSink::~LogEventSink() = default;
void LogEventSink::onStart(uint32_t, uint32_t) {}
void LogEventSink::onOrdered(uint32_t, uint32_t, OrderedOp) {}
void LogEventSink::onInput(uint32_t, InputKind, uint64_t) {}
void LogEventSink::onRevocation(const RevocationEvent &) {}
void LogEventSink::onCheckpoint(const MachineSnapshot &) {}
void LogEventSink::onEnd(uint32_t, uint64_t, uint64_t) {}

ExecutionObserver::~ExecutionObserver() = default;
void ExecutionObserver::onThreadStart(uint32_t, uint32_t, uint32_t,
                                      uint64_t) {}
void ExecutionObserver::onThreadFinish(uint32_t, uint64_t) {}
void ExecutionObserver::onJoin(uint32_t, uint32_t, uint64_t) {}
void ExecutionObserver::onFunctionEnter(uint32_t, uint32_t, uint64_t) {}
void ExecutionObserver::onFunctionExit(uint32_t, uint32_t, uint64_t) {}
void ExecutionObserver::onMemoryAccess(uint32_t, uint64_t, bool, uint32_t,
                                       ir::InstId, uint64_t) {}
void ExecutionObserver::onSync(uint32_t, ObservedSync, uint32_t, uint64_t,
                               uint64_t) {}
void ExecutionObserver::onWeak(uint32_t, bool, uint32_t, bool, uint64_t,
                               uint64_t, uint64_t) {}

/// Encoded size of \p Value as a LEB128 varint; used to attribute log
/// bytes to record types without re-encoding the log.
static uint64_t varintSize(uint64_t Value) {
  uint64_t Size = 1;
  while (Value >= 0x80) {
    Value >>= 7;
    ++Size;
  }
  return Size;
}

Machine::Machine(const ir::Module &M, MachineOptions Opts)
    : M(M), Opts(Opts) {
  assert((Opts.Mode != ExecMode::Replay || Opts.ReplayLog) &&
         "replay mode requires a log");

  CollectObs = Opts.Metrics != nullptr;
  if (CollectObs)
    ObsPerLock.resize(M.WeakLocks.size());

  Prog.init(M);
  Mem.init(M);
  Syncs.init(M);
  Weak.init(static_cast<uint32_t>(M.WeakLocks.size()));
  Sched.init(Opts.NumCores);
  SchedRng.reseed(Opts.Seed * 0x9e3779b97f4a7c15ull + 1);
  InputRng.reseed(Opts.Seed * 0xd1b54a32d192ed03ull + 2);

  Log.NumSyncObjects = static_cast<uint32_t>(M.Syncs.size());
  Log.NumWeakLocks = static_cast<uint32_t>(M.WeakLocks.size());
  Log.PerObject.resize(Log.numOrderedObjects());
  GateWaiters.resize(Log.numOrderedObjects());

  if (isReplay()) {
    const ExecutionLog &RL = *Opts.ReplayLog;
    // Graceful, not an assert: callers replay logs recovered from
    // damaged files, and a log truncated before its Meta record has no
    // PerObject tables at all — replaying it would index out of bounds.
    // run() checks Failed before its first dispatch.
    if (RL.NumSyncObjects != Log.NumSyncObjects ||
        RL.NumWeakLocks != Log.NumWeakLocks ||
        RL.PerObject.size() != RL.numOrderedObjects()) {
      fail("replay log does not match this module (wrong workload, or "
           "log truncated before its Meta record)");
    } else {
      GateCursor.assign(RL.numOrderedObjects(), 0);
      InputCursor.assign(RL.NumThreads, 0);
      PendingRevocations.resize(RL.NumThreads);
      for (const RevocationEvent &Rev : RL.Revocations)
        if (Rev.Tid < PendingRevocations.size())
          PendingRevocations[Rev.Tid].push_back(Rev);
      RevocationCursor.assign(RL.NumThreads, 0);
      HasRevocations = !RL.Revocations.empty();
    }
  }
}

//===----------------------------------------------------------------------===//
// Thread lifecycle
//===----------------------------------------------------------------------===//

void Machine::startThread(uint32_t FuncId,
                          const std::vector<uint64_t> &Args,
                          uint32_t ParentTid, uint64_t Now) {
  const ir::Function &Func = M.function(FuncId);
  assert(Args.size() == Func.NumParams && "spawn argument count mismatch");

  // Under an epoch fence every spawn inside the epoch has a slot in the
  // boundary snapshot; one past it means the spawn gate failed to clamp.
  if (Opts.StopAt && Threads.size() >= Opts.StopAt->Threads.size()) {
    fail("epoch fence: thread spawned past the boundary snapshot");
    return;
  }

  auto T = std::make_unique<Thread>();
  T->Tid = static_cast<uint32_t>(Threads.size());
  T->State = ThreadState::Ready;
  T->ReadyTime = Now;

  Frame F;
  F.DFunc = &Prog.function(FuncId);
  F.Regs.assign(Func.NumRegs, 0);
  std::copy(Args.begin(), Args.end(), F.Regs.begin());
  T->Stack.push_back(std::move(F));

  uint32_t Tid = T->Tid;
  Threads.push_back(std::move(T));
  PendingMutex.push_back(-1);
  Sched.addReady(Tid, Now);
  ++Stats.SpawnedThreads;
  ++LiveThreads;

  if (Opts.Observer) {
    Opts.Observer->onThreadStart(Tid, ParentTid, FuncId, Now);
    Opts.Observer->onFunctionEnter(Tid, FuncId, Now);
  }
}

void Machine::makeReady(uint32_t Tid, uint64_t Now) {
  Thread &T = *Threads[Tid];
  assert(T.State != ThreadState::Finished && "waking a finished thread");
  if (T.State == ThreadState::Ready || T.State == ThreadState::Running)
    return;
  T.State = ThreadState::Ready;
  T.Reason = BlockReason::None;
  T.ReadyTime = std::max(T.ReadyTime, Now);
  Sched.addReady(Tid, T.ReadyTime);
}

void Machine::finishThread(Thread &T, uint64_t Now) {
  T.State = ThreadState::Finished;
  assert(LiveThreads > 0 && "finishing with no live threads");
  --LiveThreads;
  if (Opts.Observer)
    Opts.Observer->onThreadFinish(T.Tid, Now);

  if (!T.HeldWeak.empty())
    fail("thread " + std::to_string(T.Tid) +
         " finished while holding a weak-lock (instrumenter bug)");

  // Joiners re-attempt their join instruction, which now completes.
  for (uint32_t Joiner : T.JoinWaiters)
    makeReady(Joiner, Now);
  T.JoinWaiters.clear();
}

bool Machine::allFinished() const { return LiveThreads == 0; }

void Machine::fail(const std::string &Message) {
  if (Failed)
    return;
  Failed = true;
  Error = Message;
}

//===----------------------------------------------------------------------===//
// Main loop
//===----------------------------------------------------------------------===//

bool Machine::wakeSleepers(uint64_t Now) {
  if (!SleepingThreads)
    return false;
  bool Woke = false;
  for (auto &T : Threads) {
    if (T->State == ThreadState::Sleeping && T->WakeTime <= Now) {
      T->State = ThreadState::Ready;
      T->ReadyTime = std::max(T->ReadyTime, T->WakeTime);
      Sched.addReady(T->Tid, T->ReadyTime);
      --SleepingThreads;
      Woke = true;
    }
  }
  return Woke;
}

uint64_t Machine::nextWakeTime() const {
  uint64_t Best = UINT64_MAX;
  for (const auto &T : Threads)
    if (T->State == ThreadState::Sleeping)
      Best = std::min(Best, T->WakeTime);
  return Best;
}

void Machine::reportStall() {
  if (allFinished())
    return;
  std::string Who;
  for (const auto &T : Threads) {
    if (T->State == ThreadState::Finished)
      continue;
    Who += " t" + std::to_string(T->Tid) + "(";
    switch (T->Reason) {
    case BlockReason::None: Who += "none"; break;
    case BlockReason::Mutex: Who += "mutex"; break;
    case BlockReason::Barrier: Who += "barrier"; break;
    case BlockReason::CondVar: Who += "cond"; break;
    case BlockReason::Join: Who += "join"; break;
    case BlockReason::WeakLock: Who += "weak"; break;
    case BlockReason::ReplayGate: {
      // Name the object and what its recorded order expects next — gate
      // stalls are unreadable without it.
      Who += "gate obj" + std::to_string(T->WaitObject);
      if (isReplay() && Opts.ReplayLog &&
          T->WaitObject < Opts.ReplayLog->PerObject.size()) {
        const auto &Seq = Opts.ReplayLog->PerObject[T->WaitObject];
        uint32_t Cur = GateCursor[T->WaitObject];
        if (Cur < Seq.size())
          Who += " wants t" + std::to_string(Seq[Cur].Tid) + " op" +
                 std::to_string(static_cast<int>(Seq[Cur].Op));
        else
          Who += " exhausted";
      }
      break;
    }
    case BlockReason::EpochEnd: Who += "epoch-end"; break;
    }
    Who += ")";
  }
  // A replay stall with unapplied forced releases usually means one of
  // them is stuck behind its application guard; name the first per
  // victim so the divergence is diagnosable.
  if (isReplay() && HasRevocations) {
    for (uint32_t Tid = 0; Tid != PendingRevocations.size(); ++Tid) {
      const auto &Pending = PendingRevocations[Tid];
      if (RevocationCursor[Tid] >= Pending.size())
        continue;
      const RevocationEvent &Rev = Pending[RevocationCursor[Tid]];
      Who += " [rev t" + std::to_string(Rev.Tid) + " wl" +
             std::to_string(Rev.LockId) + "@" +
             std::to_string(Rev.Instret);
      if (Rev.Tid < Threads.size()) {
        const Thread &V = *Threads[Rev.Tid];
        Who += " instret=" + std::to_string(V.Instret) +
               " holds=" + (V.holdsWeak(Rev.LockId) ? "y" : "n") +
               " gate=" +
               (gateOpen(Log.weakLockObject(Rev.LockId), Rev.Tid,
                         OrderedOp::WeakRelease)
                    ? "open"
                    : "shut");
      }
      Who += "]";
    }
  }
  fail(std::string(isReplay() ? "replay divergence: no runnable thread"
                              : "deadlock: no runnable thread") +
       " —" + Who);
}

//===----------------------------------------------------------------------===//
// Epoch fence (MachineOptions::StopAt)
//===----------------------------------------------------------------------===//

uint64_t Machine::stopTarget(uint32_t Tid) const {
  if (!Opts.StopAt || Tid >= Opts.StopAt->Threads.size())
    return UINT64_MAX;
  return Opts.StopAt->Threads[Tid].Instret;
}

Machine::Step Machine::parkAtEpochEnd(Thread &T, unsigned Core) {
  uint64_t Target = stopTarget(T.Tid);
  if (T.Instret > Target) {
    fail("epoch fence: thread " + std::to_string(T.Tid) + " overshot its "
         "boundary instruction count (" + std::to_string(T.Instret) +
         " > " + std::to_string(Target) + ")");
    return Step::Fault;
  }
  T.State = ThreadState::Blocked;
  T.Reason = BlockReason::EpochEnd;
  T.BlockStart = Sched.coreTime(Core);
  // Parked threads sit on no waiter list, so nothing can wake them.
  return Step::Blocked;
}

bool Machine::epochComplete() {
  const MachineSnapshot &Stop = *Opts.StopAt;
  auto Diverge = [this](const std::string &What) {
    fail("epoch fence: " + What + " does not match the boundary snapshot");
    return false;
  };
  if (Threads.size() != Stop.Threads.size())
    return Diverge("thread count");
  for (uint32_t Tid = 0; Tid != Threads.size(); ++Tid)
    if (Threads[Tid]->Instret != Stop.Threads[Tid].Instret)
      return Diverge("thread " + std::to_string(Tid) +
                     " instruction count");
  for (uint32_t Obj = 0; Obj != GateCursor.size(); ++Obj)
    if (GateCursor[Obj] != Stop.GateCursors[Obj])
      return Diverge("gate cursor of object " + std::to_string(Obj));
  for (uint32_t Tid = 0; Tid != InputCursor.size(); ++Tid)
    if (Tid < Stop.InputCursors.size() &&
        InputCursor[Tid] != Stop.InputCursors[Tid])
      return Diverge("input cursor of thread " + std::to_string(Tid));
  uint64_t RevsDone = 0;
  for (uint32_t Cur : RevocationCursor)
    RevsDone += Cur;
  if (RevsDone != Stop.RevocationsDone)
    return Diverge("revocation count");
  EpochDone = true;
  return true;
}

ExecutionResult Machine::run() {
  const char *SpanName = isReplay()  ? "machine.run.replay"
                         : isRecord() ? "machine.run.record"
                                      : "machine.run.native";
  CHIMERA_TRACE_SPAN(Opts.Trace, SpanName);
  CoreThread.assign(Opts.NumCores, -1);
  CoreSliceEnd.assign(Opts.NumCores, 0);
  CoreSliceStart.assign(Opts.NumCores, 0);

  const bool Streaming = isRecord() && Opts.LogSink != nullptr;
  if (Streaming) {
    Opts.LogSink->onStart(Log.NumSyncObjects, Log.NumWeakLocks);
    NextCheckpointAt = Opts.CheckpointEvery; // 0 disables checkpoints.
  }

  if (isReplay() && Opts.ResumeFrom)
    restoreFromSnapshot(*Opts.ResumeFrom);
  else
    startThread(M.MainFunction, {}, /*ParentTid=*/0, /*Now=*/0);

  while (!Failed && !allFinished()) {
    unsigned Core = Sched.minTimeCore();
    uint64_t Now = Sched.coreTime(Core);
    wakeSleepers(Now);

    // Periodic checkpoints, taken here because no thread is mid-operation
    // between dispatches; "every N log events" keeps the cadence a
    // function of recorded work, not wall time, so it is deterministic.
    if (Streaming && Opts.CheckpointEvery &&
        Stats.LogEvents >= NextCheckpointAt) {
      Opts.LogSink->onCheckpoint(captureSnapshot());
      NextCheckpointAt = Stats.LogEvents + Opts.CheckpointEvery;
    }

    // Forced releases recorded against blocked victims must be applied
    // machine-side during replay, or their waiters would gate forever
    // (in the recording, the kernel preempted the victim asynchronously).
    // A victim that reaches its boundary still running self-applies in
    // execPending instead; see applyForcedReleases for the episode rules.
    if (HasRevocations) {
      for (uint32_t Tid = 0;
           Tid != PendingRevocations.size() && Tid < Threads.size(); ++Tid) {
        Thread &V = *Threads[Tid];
        if (V.State == ThreadState::Running)
          continue;
        applyForcedReleases(V, Core, /*ParkOnShutGate=*/false);
      }
    }

    if (!stepCore(Core)) {
      // The core is idle with nothing runnable: advance its clock to the
      // next event — a sleeper wake, another core's progress, or a
      // weak-lock timeout rescue (paper §2.3's deadlock-breaking case).
      uint64_t Wake = nextWakeTime();
      for (unsigned C = 0; C != Opts.NumCores; ++C)
        if (CoreThread[C] >= 0)
          Wake = std::min(Wake, Sched.coreTime(C) + 1);
      // The timeout rescue is also gated by the certificate: under a
      // sound one an all-idle weak-lock deadlock is impossible, and
      // under an unsound one this surfaces as a loud stall error below
      // rather than a silent (log-diverging) revocation.
      if (Wake == UINT64_MAX && !isReplay() &&
          (!Opts.ElideWeakPolling || Opts.ForceWeakPolling)) {
        // Wake exactly when the beneficiary's wait matures (saturating:
        // an effectively-infinite timeout means no rescue). Its Since
        // resets each time a revocation lets it acquire one more lock
        // of its guard set, so the earliest waiter overall is the wrong
        // clock — polling there would spin one cycle at a time until
        // the beneficiary catches up.
        Wake = revocationMaturityTime();
      }
      if (Wake == UINT64_MAX) {
        if (Opts.StopAt) {
          // Nothing can run under the epoch fence: either every thread
          // is exactly at the boundary (epoch done) or this is a real
          // divergence — epochComplete() fails with the mismatch.
          epochComplete();
          break;
        }
        reportStall();
        break;
      }
      Sched.setCoreTime(Core, std::max(Now + 1, Wake));
      if (!isReplay() && !M.WeakLocks.empty() &&
          (!Opts.ElideWeakPolling || Opts.ForceWeakPolling))
        checkWeakTimeouts(Sched.coreTime(Core));
      continue;
    }
    // Weak-timeout polling for dispatched instructions happens inside
    // stepCore, once per instruction (the pre-batching cadence).
  }

  ExecutionResult Result;
  Result.Ok = !Failed && (allFinished() || EpochDone);
  Result.Error = Error;
  Result.Output = Output;
  Stats.MakespanCycles = Sched.maxTime();
  Result.Stats = Stats;

  Result.StateHash = stateHashNow();

  if (isRecord()) {
    Log.NumThreads = static_cast<uint32_t>(Threads.size());
    Log.PerThreadInputs.resize(Threads.size());
    if (Opts.LogSink)
      Opts.LogSink->onEnd(Log.NumThreads, Log.totalOrderedEvents(),
                          Log.totalInputEvents());
    Result.Log = std::move(Log);
  }
  if (CollectObs)
    publishObs();
  return Result;
}

support::Expected<obs::Snapshot> Machine::metrics() const {
  if (!Opts.Metrics)
    return support::Error::failure(
        "machine has no metrics registry attached; point "
        "MachineOptions::Metrics at an obs::Registry (pipelines do this "
        "automatically when PipelineConfig::Observability != Off)");
  return Opts.Metrics->snapshot();
}

/// Publishes the run's collected counters into the registry, scoped by
/// execution mode (e.g. "runtime.record.*"). Counters accumulate across
/// runs that share a registry — a bench can sum nine workloads into one
/// snapshot; gauges report the last run.
void Machine::publishObs() {
  const char *ModeName = isReplay()  ? "replay"
                         : isRecord() ? "record"
                                      : "native";
  obs::Scope Root(Opts.Metrics, std::string("runtime.") + ModeName);

  obs::Scope Run = Root.sub("run");
  Run.counter("runs").inc();
  Run.counter("instructions").add(Stats.Instructions);
  Run.counter("mem_ops").add(Stats.MemOps);
  Run.counter("sync_ops").add(Stats.SyncOps);
  Run.counter("syscalls").add(Stats.Syscalls);
  Run.counter("output_ops").add(Stats.OutputOps);
  Run.counter("spawned_threads").add(Stats.SpawnedThreads);
  Run.counter("log_events").add(Stats.LogEvents);
  Run.counter("makespan_cycles").add(Stats.MakespanCycles);
  Run.counter("cpu_busy_cycles").add(Stats.CpuBusyCycles);

  obs::Scope WL = Root.sub("weaklock");
  uint64_t TotAcq = 0, TotWait = 0, TotCpu = 0, TotRev = 0;
  for (uint32_t Id = 0; Id != ObsPerLock.size(); ++Id) {
    const LockObs &LO = ObsPerLock[Id];
    TotAcq += LO.Acquires;
    TotWait += LO.WaitCycles;
    TotCpu += LO.CpuCycles;
    TotRev += LO.Revocations;
    if (LO.Acquires == 0 && LO.Revocations == 0)
      continue; // Untouched locks would only bloat the snapshot.
    obs::Scope L = WL.sub(
        "wl" + std::to_string(Id) + "_" +
        obs::sanitizeMetricSegment(M.WeakLocks[Id].Name));
    L.counter("acquires").add(LO.Acquires);
    L.counter("wait_cycles").add(LO.WaitCycles);
    L.counter("cpu_cycles").add(LO.CpuCycles);
    L.counter("revocations").add(LO.Revocations);
  }
  if (!ObsPerLock.empty()) {
    obs::Scope Tot = WL.sub("total");
    Tot.counter("acquires").add(TotAcq);
    Tot.counter("wait_cycles").add(TotWait);
    Tot.counter("cpu_cycles").add(TotCpu);
    Tot.counter("revocations").add(TotRev);
    for (unsigned G = 0; G != 4; ++G) {
      obs::Scope GS = WL.sub("gran").sub(obs::sanitizeMetricSegment(
          ir::weakLockGranularityName(static_cast<WeakLockGranularity>(G))));
      GS.counter("acquires").add(Stats.WeakAcquires[G]);
      GS.counter("cpu_cycles").add(Stats.WeakCpuCycles[G]);
      GS.counter("wait_cycles").add(Stats.WeakWaitCycles[G]);
    }
  }

  if (isRecord()) {
    obs::Scope LogS = Root.sub("log");
    uint64_t OrderCount = 0, OrderBytes = 0;
    for (unsigned Op = 0; Op != NumOrderedOps; ++Op) {
      OrderCount += ObsOrderCount[Op];
      OrderBytes += ObsOrderBytes[Op];
      if (ObsOrderCount[Op] == 0)
        continue;
      obs::Scope OpS = LogS.sub("order").sub(obs::sanitizeMetricSegment(
          orderedOpName(static_cast<OrderedOp>(Op))));
      OpS.counter("records").add(ObsOrderCount[Op]);
      OpS.counter("bytes").add(ObsOrderBytes[Op]);
    }
    LogS.counter("order.total.records").add(OrderCount);
    LogS.counter("order.total.bytes").add(OrderBytes);
    LogS.counter("input.records").add(ObsInputCount);
    LogS.counter("input.bytes").add(ObsInputBytes);
    LogS.counter("revocation.records").add(ObsRevCount);
    LogS.counter("revocation.bytes").add(ObsRevBytes);
  }

  if (!isReplay()) {
    // Weak-timeout poll attribution: how many scans ran, how many the
    // held-gate skipped, and whether certification elided the cadence
    // for this run entirely.
    obs::Scope Wk = Root.sub("weak");
    Wk.counter("poll").add(ObsWeakPolls);
    Wk.counter("poll_skipped").add(ObsWeakPollsSkipped);
    if (Opts.ElideWeakPolling && !Opts.ForceWeakPolling)
      Wk.counter("poll_elided_runs").inc();
  }

  obs::Scope SchedS = Root.sub("sched");
  SchedS.counter("quanta").add(ObsQuanta);
  SchedS.counter("quantum_cycles_granted").add(ObsQuantumGranted);
  SchedS.counter("quantum_cycles_used").add(ObsQuantumUsed);

  if (isReplay()) {
    // Divergence-check progress: how far through the recorded orders the
    // replay got. On a clean replay consumed == total; on a divergence
    // the gap points at the stuck object.
    const ExecutionLog &RL = *Opts.ReplayLog;
    uint64_t GatesTotal = RL.totalOrderedEvents();
    uint64_t GatesDone = 0;
    for (uint32_t Cur : GateCursor)
      GatesDone += Cur;
    uint64_t InputsTotal = RL.totalInputEvents();
    uint64_t InputsDone = 0;
    for (uint32_t Cur : InputCursor)
      InputsDone += Cur;
    obs::Scope Prog = Root.sub("progress");
    Prog.gauge("gates_total").set(static_cast<int64_t>(GatesTotal));
    Prog.gauge("gates_consumed").set(static_cast<int64_t>(GatesDone));
    Prog.gauge("inputs_total").set(static_cast<int64_t>(InputsTotal));
    Prog.gauge("inputs_consumed").set(static_cast<int64_t>(InputsDone));
  }
}

bool Machine::stepCore(unsigned Core) {
  // Bind a thread if the core is idle.
  if (CoreThread[Core] < 0) {
    if (!Sched.hasReady())
      return false;
    uint32_t Tid = Sched.popReady(isReplay() ? nullptr : &SchedRng,
                                  Sched.coreTime(Core));
    Thread &T = *Threads[Tid];
    T.State = ThreadState::Running;
    if (T.ReadyTime > Sched.coreTime(Core))
      Sched.setCoreTime(Core, T.ReadyTime);
    uint64_t Quantum =
        isReplay() ? Opts.QuantumMin
                   : SchedRng.nextInRange(Opts.QuantumMin, Opts.QuantumMax);
    CoreThread[Core] = Tid;
    CoreSliceEnd[Core] = Sched.coreTime(Core) + Quantum;
    CoreSliceStart[Core] = Sched.coreTime(Core);
  }

  // A validated acyclicity certificate discharges the revocation safety
  // net statically, so the per-instruction poll cadence is elided
  // entirely (unless a cross-check force-enables it).
  const bool PollWeak = !isReplay() && !M.WeakLocks.empty() &&
                        (!Opts.ElideWeakPolling || Opts.ForceWeakPolling);

  Thread &T = *Threads[CoreThread[Core]];
  if (Failed) {
    if (T.State == ThreadState::Running)
      T.State = ThreadState::Faulted;
    unbindCore(Core);
    // The pre-batching loop ticked the weak-timeout counter after every
    // dispatch, including this one.
    if (PollWeak && (++WeakCheckTick & 0x3f) == 0)
      checkWeakTimeouts(Sched.coreTime(Core));
    return true;
  }

  // Dispatch a bounded batch of instructions without returning to the
  // main loop. Batching is invisible to the simulation: between
  // instructions of one batch the only machine state the main loop could
  // act on is (a) another core becoming the minimum-clock core, (b) a
  // sleeper's wake time arriving, or (c) a replayed machine-side forced
  // release becoming applicable — other cores' clocks and the sleeper
  // set cannot change while this thread runs straight-line code. The
  // batch therefore ends at the first instruction after which (a) or (b)
  // could hold, and is disabled outright for (c), making every batch
  // size produce the bit-identical schedule, log, and result.
  uint64_t Batch = HasRevocations ? 1 : Opts.DispatchBatch;
  if (Batch == 0)
    Batch = 1;

  // This core keeps being picked by minTimeCore() while its clock is
  // strictly below every lower-index core's and at most every
  // higher-index core's (ties go to the lowest index).
  uint64_t TimeLimit = UINT64_MAX;
  for (unsigned C = 0; C != Opts.NumCores; ++C) {
    if (C == Core)
      continue;
    uint64_t Lim = Sched.coreTime(C) + (C > Core ? 1 : 0);
    TimeLimit = std::min(TimeLimit, Lim);
  }
  const uint64_t NextWake = SleepingThreads ? nextWakeTime() : UINT64_MAX;

  // With no observer attached, straight-line runs of pure instructions
  // go through execFast, which retires a whole chunk with machine state
  // hoisted into locals. A chunk of R retired instructions stands for R
  // dispatch attempts of the pre-batching loop (execPending is provably
  // vacuous between pure instructions: nothing in a chunk can set a
  // pending mutex or reacquisition, and replay-with-revocations forces
  // Batch = 1). The chunk bound keeps every per-attempt observation
  // intact: it never crosses the batch end, a weak-poll tick boundary,
  // or the instruction budget, and execFast itself stops the moment the
  // core clock reaches the earliest of TimeLimit/NextWake/slice end.
  const bool FastPath = Opts.Observer == nullptr;

  // Epoch fence: the boundary snapshot pins the retired-instruction
  // count at which each thread must freeze. The check runs before every
  // instruction (and bounds execFast chunks), so a thread is parked at
  // exactly its target — anything past it is a divergence.
  const uint64_t StopTarget =
      Opts.StopAt ? stopTarget(T.Tid) : UINT64_MAX;

  for (;;) {
    uint64_t Attempts = 1;
    Step S = execPending(T, Core);
    if (S == Step::Continue && T.Instret >= StopTarget)
      S = parkAtEpochEnd(T, Core);
    else if (S == Step::Continue) {
      if (FastPath) {
        uint64_t CountLimit = Batch;
        if (PollWeak)
          CountLimit = std::min(CountLimit, 64 - (WeakCheckTick & 0x3f));
        CountLimit = std::min(CountLimit,
                              Opts.MaxInstructions + 1 - Stats.Instructions);
        if (StopTarget != UINT64_MAX)
          CountLimit = std::min(CountLimit, StopTarget - T.Instret);
        uint64_t StopTime =
            std::min({TimeLimit, NextWake, CoreSliceEnd[Core]});
        uint64_t Retired = 0;
        S = execFast(T, Core, CountLimit, StopTime, Retired);
        if (Retired == 0 && S == Step::Continue)
          S = execInstruction(T, Core); // Non-fast op heads the chunk.
        else
          Attempts = Retired + (S == Step::Fault ? 1 : 0);
      } else {
        S = execInstruction(T, Core);
      }
    }

    bool StayBound = false;
    switch (S) {
    case Step::Continue:
      if (Stats.Instructions > Opts.MaxInstructions) {
        fail("instruction budget exceeded (runaway program?)");
        unbindCore(Core);
        break;
      }
      if (Sched.coreTime(Core) >= CoreSliceEnd[Core]) {
        T.State = ThreadState::Ready;
        T.ReadyTime = Sched.coreTime(Core);
        Sched.addReady(T.Tid, T.ReadyTime);
        unbindCore(Core);
        break;
      }
      StayBound = true;
      break;
    case Step::Yielded:
      T.State = ThreadState::Ready;
      T.ReadyTime = Sched.coreTime(Core);
      Sched.addReady(T.Tid, T.ReadyTime);
      unbindCore(Core);
      break;
    case Step::Blocked:
      // Per-thread times are monotonic: when next woken, the thread
      // resumes no earlier than where it blocked.
      T.ReadyTime = std::max(T.ReadyTime, Sched.coreTime(Core));
      if (T.State == ThreadState::Sleeping)
        ++SleepingThreads;
      unbindCore(Core);
      break;
    case Step::Finished:
    case Step::Fault:
      unbindCore(Core);
      break;
    }

    // Weak-timeout polling at the pre-batching cadence: one tick per
    // dispatch attempt, check every 64. The chunk bound above never lets
    // a fast-path chunk cross a tick boundary, so the boundary test here
    // fires for exactly the attempts it would have pre-batching. A
    // performed revocation may move another core's clock, so it also
    // ends the batch.
    bool Revoked = false;
    if (PollWeak) {
      WeakCheckTick += Attempts;
      if ((WeakCheckTick & 0x3f) == 0)
        Revoked = checkWeakTimeouts(Sched.coreTime(Core));
    }

    if (!StayBound || Revoked || Failed || Attempts >= Batch ||
        Sched.coreTime(Core) >= TimeLimit ||
        Sched.coreTime(Core) >= NextWake)
      return true;
    Batch -= Attempts;
  }
}

//===----------------------------------------------------------------------===//
// Ordered-object helpers (record append / replay gates)
//===----------------------------------------------------------------------===//

void Machine::unbindCore(unsigned Core) {
  if (CollectObs && CoreThread[Core] >= 0) {
    uint64_t Start = CoreSliceStart[Core];
    uint64_t Now = Sched.coreTime(Core);
    ++ObsQuanta;
    ObsQuantumGranted += CoreSliceEnd[Core] - Start;
    // A batch may retire past the slice end by part of one instruction;
    // clamp so utilization stays a fraction of the grant.
    ObsQuantumUsed += std::min(Now, CoreSliceEnd[Core]) -
                      std::min(Start, CoreSliceEnd[Core]);
  }
  CoreThread[Core] = -1;
}

void Machine::obsRecordOrdered(OrderedOp Op, uint64_t PackedValue) {
  unsigned Idx = static_cast<unsigned>(Op) & (NumOrderedOps - 1);
  ++ObsOrderCount[Idx];
  ObsOrderBytes[Idx] += varintSize(PackedValue);
}

void Machine::recordOrdered(uint32_t Obj, uint32_t Tid, OrderedOp Op,
                            unsigned Core) {
  assert(isRecord() && "recordOrdered outside record mode");
  assert(Obj < Log.PerObject.size() && "ordered object out of range");
  Log.PerObject[Obj].push_back({Tid, Op});
  ++Stats.LogEvents;
  if (Opts.LogSink)
    Opts.LogSink->onOrdered(Obj, Tid, Op);
  if (CollectObs)
    obsRecordOrdered(Op, (static_cast<uint64_t>(Tid) << 4) |
                             static_cast<uint64_t>(Op));
  Sched.advanceCore(Core, Opts.Costs.LogEvent);
  Stats.CpuBusyCycles += Opts.Costs.LogEvent;
}

bool Machine::gateOpen(uint32_t Obj, uint32_t Tid, OrderedOp Op) const {
  assert(isReplay() && "gateOpen outside replay mode");
  const auto &Seq = Opts.ReplayLog->PerObject[Obj];
  uint32_t Cursor = GateCursor[Obj];
  // Epoch fence: gate entries past the boundary snapshot's cursor belong
  // to the next epoch; clamping here leaves every boundary-straddling
  // operation pending exactly as the snapshot captured it.
  uint32_t Limit = static_cast<uint32_t>(Seq.size());
  if (Opts.StopAt)
    Limit = std::min(Limit, Opts.StopAt->GateCursors[Obj]);
  if (Cursor >= Limit)
    return false;
  return Seq[Cursor].Tid == Tid && Seq[Cursor].Op == Op;
}

void Machine::gateAdvance(uint32_t Obj, uint64_t Now) {
  assert(isReplay() && "gateAdvance outside replay mode");
  ++GateCursor[Obj];
  wakeGateWaiters(Obj, Now);
}

void Machine::blockOnGate(Thread &T, uint32_t Obj, uint64_t Now) {
  T.State = ThreadState::Blocked;
  T.Reason = BlockReason::ReplayGate;
  T.WaitObject = Obj;
  T.BlockStart = Now;
  GateWaiters[Obj].push_back(T.Tid);
}

void Machine::wakeGateWaiters(uint32_t Obj, uint64_t Now) {
  auto Waiters = std::move(GateWaiters[Obj]);
  GateWaiters[Obj].clear();
  for (uint32_t Tid : Waiters)
    makeReady(Tid, Now);
}

//===----------------------------------------------------------------------===//
// Mutexes
//===----------------------------------------------------------------------===//

Machine::Step Machine::doMutexLock(Thread &T, uint32_t MutexId,
                                   unsigned Core) {
  uint64_t Now = Sched.coreTime(Core);
  SyncState &Mx = Syncs.state(MutexId);
  assert(Mx.Kind == ir::SyncKind::Mutex && "lock on non-mutex");

  if (isReplay()) {
    if (!gateOpen(MutexId, T.Tid, OrderedOp::MutexLock)) {
      blockOnGate(T, MutexId, Now);
      return Step::Blocked;
    }
    assert(Mx.Owner == -1 && "replay order admitted lock on held mutex");
    Mx.Owner = T.Tid;
    Sched.advanceCore(Core, Opts.Costs.SyncOp);
    Stats.CpuBusyCycles += Opts.Costs.SyncOp;
    ++Stats.SyncOps;
    gateAdvance(MutexId, Now);
    if (Opts.Observer)
      Opts.Observer->onSync(T.Tid, ObservedSync::MutexLock, MutexId, 0, Now);
    advance(T);
    return Step::Continue;
  }

  if (Mx.Owner == -1) {
    Mx.Owner = T.Tid;
    Sched.advanceCore(Core, Opts.Costs.SyncOp);
    Stats.CpuBusyCycles += Opts.Costs.SyncOp;
    ++Stats.SyncOps;
    if (isRecord())
      recordOrdered(MutexId, T.Tid, OrderedOp::MutexLock, Core);
    if (Opts.Observer)
      Opts.Observer->onSync(T.Tid, ObservedSync::MutexLock, MutexId, 0, Now);
    advance(T);
    return Step::Continue;
  }

  Mx.MutexWaiters.push_back(T.Tid);
  T.State = ThreadState::Blocked;
  T.Reason = BlockReason::Mutex;
  T.WaitObject = MutexId;
  T.BlockStart = Now;
  return Step::Blocked;
}

void Machine::grantMutexToNextWaiter(uint32_t MutexId, uint64_t Now,
                                     unsigned Core) {
  assert(!isReplay() && "replay acquires mutexes via gates, not grants");
  SyncState &Mx = Syncs.state(MutexId);
  if (Mx.Owner != -1 || Mx.MutexWaiters.empty())
    return;

  uint32_t Tid = Mx.MutexWaiters.front();
  Mx.MutexWaiters.pop_front();
  Thread &W = *Threads[Tid];
  Mx.Owner = Tid;
  ++Stats.SyncOps;
  if (isRecord())
    recordOrdered(MutexId, Tid, OrderedOp::MutexLock, Core);
  if (Opts.Observer)
    Opts.Observer->onSync(Tid, ObservedSync::MutexLock, MutexId, 0, Now);

  if (PendingMutex[Tid] == static_cast<int64_t>(MutexId)) {
    // Cond-wait reacquisition completes out of band; the cond_wait
    // instruction was already retired when the wait began.
    PendingMutex[Tid] = -1;
  } else {
    advance(W); // The blocked MutexLock instruction completes now.
  }
  W.ReadyTime = std::max(W.ReadyTime, Now + Opts.Costs.SyncOp);
  makeReady(Tid, Now);
}

Machine::Step Machine::doMutexUnlock(Thread &T, uint32_t MutexId,
                                     unsigned Core) {
  uint64_t Now = Sched.coreTime(Core);
  SyncState &Mx = Syncs.state(MutexId);
  assert(Mx.Kind == ir::SyncKind::Mutex && "unlock on non-mutex");

  if (Mx.Owner != static_cast<int64_t>(T.Tid)) {
    fail("thread " + std::to_string(T.Tid) + " unlocked mutex '" +
         M.Syncs[MutexId].Name + "' it does not own");
    return Step::Fault;
  }

  if (isReplay()) {
    if (!gateOpen(MutexId, T.Tid, OrderedOp::MutexUnlock)) {
      blockOnGate(T, MutexId, Now);
      return Step::Blocked;
    }
    Mx.Owner = -1;
    Sched.advanceCore(Core, Opts.Costs.SyncOp);
    Stats.CpuBusyCycles += Opts.Costs.SyncOp;
    ++Stats.SyncOps;
    if (Opts.Observer)
      Opts.Observer->onSync(T.Tid, ObservedSync::MutexUnlock, MutexId, 0,
                            Now);
    gateAdvance(MutexId, Now);
    advance(T);
    return Step::Continue;
  }

  Mx.Owner = -1;
  Sched.advanceCore(Core, Opts.Costs.SyncOp);
  Stats.CpuBusyCycles += Opts.Costs.SyncOp;
  ++Stats.SyncOps;
  if (isRecord())
    recordOrdered(MutexId, T.Tid, OrderedOp::MutexUnlock, Core);
  if (Opts.Observer)
    Opts.Observer->onSync(T.Tid, ObservedSync::MutexUnlock, MutexId, 0, Now);
  grantMutexToNextWaiter(MutexId, Now, Core);
  advance(T);
  return Step::Continue;
}

//===----------------------------------------------------------------------===//
// Barriers
//===----------------------------------------------------------------------===//

Machine::Step Machine::doBarrierWait(Thread &T, uint32_t BarrierId,
                                     unsigned Core) {
  uint64_t Now = Sched.coreTime(Core);
  SyncState &Ba = Syncs.state(BarrierId);
  assert(Ba.Kind == ir::SyncKind::Barrier && "barrier_wait on non-barrier");
  assert(Ba.Parties > 0 && "barrier with zero parties");

  if (isReplay()) {
    if (!gateOpen(BarrierId, T.Tid, OrderedOp::BarrierArrive)) {
      blockOnGate(T, BarrierId, Now);
      return Step::Blocked;
    }
    gateAdvance(BarrierId, Now);
  } else if (isRecord()) {
    recordOrdered(BarrierId, T.Tid, OrderedOp::BarrierArrive, Core);
  }

  Sched.advanceCore(Core, Opts.Costs.SyncOp);
  Stats.CpuBusyCycles += Opts.Costs.SyncOp;
  ++Stats.SyncOps;
  if (Opts.Observer)
    Opts.Observer->onSync(T.Tid, ObservedSync::BarrierArrive, BarrierId,
                          Ba.Generation, Now);

  advance(T); // The arrival retires; waiting happens out of band.
  Ba.Arrived.push_back(T.Tid);
  Ba.ArrivedTimes.push_back(Sched.coreTime(Core));

  if (Ba.Arrived.size() < Ba.Parties) {
    T.State = ThreadState::Blocked;
    T.Reason = BlockReason::Barrier;
    T.WaitObject = BarrierId;
    T.BlockStart = Now;
    return Step::Blocked;
  }

  // Last arrival: release everyone. Core clocks drift apart, so the
  // release instant is the maximum of all arrival timestamps — events
  // after the barrier must not appear to precede events before it.
  uint64_t Release = 0;
  for (uint64_t ArriveTime : Ba.ArrivedTimes)
    Release = std::max(Release, ArriveTime);
  Sched.setCoreTime(Core, std::max(Sched.coreTime(Core), Release));
  uint64_t Gen = Ba.Generation++;
  for (uint32_t Tid : Ba.Arrived) {
    if (Opts.Observer)
      Opts.Observer->onSync(Tid, ObservedSync::BarrierLeave, BarrierId, Gen,
                            Release);
    if (Tid != T.Tid)
      makeReady(Tid, Release);
  }
  Ba.Arrived.clear();
  Ba.ArrivedTimes.clear();
  return Step::Continue;
}

//===----------------------------------------------------------------------===//
// Condition variables
//===----------------------------------------------------------------------===//

Machine::Step Machine::doCondWait(Thread &T, uint32_t CondId,
                                  uint32_t MutexId, unsigned Core) {
  uint64_t Now = Sched.coreTime(Core);
  SyncState &Cv = Syncs.state(CondId);
  SyncState &Mx = Syncs.state(MutexId);
  assert(Cv.Kind == ir::SyncKind::Cond && "cond_wait on non-cond");

  if (Mx.Owner != static_cast<int64_t>(T.Tid)) {
    fail("cond_wait without holding the mutex");
    return Step::Fault;
  }

  if (isReplay()) {
    // The recorder appended CondWaitBegin and the internal MutexUnlock in
    // one atomic step, so both gates must be open before consuming
    // either; blocking on whichever is closed is safe (no cross-object
    // cycle can involve the not-yet-consumed pair).
    if (!gateOpen(CondId, T.Tid, OrderedOp::CondWaitBegin)) {
      blockOnGate(T, CondId, Now);
      return Step::Blocked;
    }
    if (!gateOpen(MutexId, T.Tid, OrderedOp::MutexUnlock)) {
      blockOnGate(T, MutexId, Now);
      return Step::Blocked;
    }
    gateAdvance(CondId, Now);
    Mx.Owner = -1;
    gateAdvance(MutexId, Now);
  } else if (isRecord()) {
    recordOrdered(CondId, T.Tid, OrderedOp::CondWaitBegin, Core);
    recordOrdered(MutexId, T.Tid, OrderedOp::MutexUnlock, Core);
    Mx.Owner = -1;
  } else {
    Mx.Owner = -1;
  }

  Sched.advanceCore(Core, Opts.Costs.SyncOp);
  Stats.CpuBusyCycles += Opts.Costs.SyncOp;
  ++Stats.SyncOps;
  if (Opts.Observer) {
    Opts.Observer->onSync(T.Tid, ObservedSync::MutexUnlock, MutexId, 0, Now);
    Opts.Observer->onSync(T.Tid, ObservedSync::CondWaitBlock, CondId, 0,
                          Now);
  }

  Cv.CondWaiters.push_back(T.Tid);
  T.State = ThreadState::Blocked;
  T.Reason = BlockReason::CondVar;
  T.WaitObject = CondId;
  T.BlockStart = Now;
  advance(T); // Execution continues after the cond_wait on wakeup.
  PendingMutex[T.Tid] = MutexId;

  if (!isReplay())
    grantMutexToNextWaiter(MutexId, Now, Core);
  return Step::Blocked;
}

Machine::Step Machine::doCondSignal(Thread &T, uint32_t CondId,
                                    bool Broadcast, unsigned Core) {
  uint64_t Now = Sched.coreTime(Core);
  SyncState &Cv = Syncs.state(CondId);
  assert(Cv.Kind == ir::SyncKind::Cond && "signal on non-cond");
  OrderedOp Op = Broadcast ? OrderedOp::CondBroadcast : OrderedOp::CondSignal;

  if (isReplay()) {
    if (!gateOpen(CondId, T.Tid, Op)) {
      blockOnGate(T, CondId, Now);
      return Step::Blocked;
    }
    gateAdvance(CondId, Now);
  } else if (isRecord()) {
    recordOrdered(CondId, T.Tid, Op, Core);
  }

  Sched.advanceCore(Core, Opts.Costs.SyncOp);
  Stats.CpuBusyCycles += Opts.Costs.SyncOp;
  ++Stats.SyncOps;
  if (Opts.Observer)
    Opts.Observer->onSync(T.Tid,
                          Broadcast ? ObservedSync::CondBroadcast
                                    : ObservedSync::CondSignal,
                          CondId, 0, Now);

  size_t NumToWake = Broadcast ? Cv.CondWaiters.size()
                               : std::min<size_t>(1, Cv.CondWaiters.size());
  for (size_t I = 0; I != NumToWake; ++I) {
    uint32_t Tid = Cv.CondWaiters.front();
    Cv.CondWaiters.pop_front();
    if (Opts.Observer)
      Opts.Observer->onSync(Tid, ObservedSync::CondWaitWake, CondId, 0, Now);
    // The woken thread reacquires its mutex (PendingMutex set at wait
    // time) before running user code; see execPending.
    makeReady(Tid, Now);
  }
  advance(T);
  return Step::Continue;
}

//===----------------------------------------------------------------------===//
// Threads: spawn / join
//===----------------------------------------------------------------------===//

Machine::Step Machine::doSpawn(Thread &T, const DecodedInst &Inst,
                               unsigned Core) {
  uint64_t Now = Sched.coreTime(Core);
  uint32_t TableObj = Log.threadTableObject();

  if (isReplay()) {
    if (!gateOpen(TableObj, T.Tid, OrderedOp::SpawnThread)) {
      blockOnGate(T, TableObj, Now);
      return Step::Blocked;
    }
    gateAdvance(TableObj, Now);
  } else if (isRecord()) {
    recordOrdered(TableObj, T.Tid, OrderedOp::SpawnThread, Core);
  }

  Sched.advanceCore(Core, Opts.Costs.SpawnCost);
  Stats.CpuBusyCycles += Opts.Costs.SpawnCost;

  std::vector<uint64_t> Args;
  Args.reserve(Inst.ArgsLen);
  const ir::Reg *ArgRegs = T.frame().DFunc->ArgPool.data() + Inst.ArgsIdx;
  for (uint16_t I = 0; I != Inst.ArgsLen; ++I)
    Args.push_back(reg(T, ArgRegs[I]));

  uint32_t ChildTid = static_cast<uint32_t>(Threads.size());
  startThread(Inst.Id, Args, T.Tid, Sched.coreTime(Core));
  setReg(T, Inst.Dst, ChildTid);
  advance(T);
  return Step::Continue;
}

Machine::Step Machine::doJoin(Thread &T, uint32_t ChildTid, unsigned Core) {
  uint64_t Now = Sched.coreTime(Core);
  if (ChildTid >= Threads.size() || ChildTid == T.Tid) {
    fail("join on invalid thread id " + std::to_string(ChildTid));
    return Step::Fault;
  }
  Thread &Child = *Threads[ChildTid];
  uint32_t TableObj = Log.threadTableObject();

  if (Child.State != ThreadState::Finished) {
    Child.JoinWaiters.push_back(T.Tid);
    T.State = ThreadState::Blocked;
    T.Reason = BlockReason::Join;
    T.WaitObject = ChildTid;
    T.BlockStart = Now;
    return Step::Blocked; // Re-executes once the child finishes.
  }

  if (isReplay()) {
    if (!gateOpen(TableObj, T.Tid, OrderedOp::JoinThread)) {
      blockOnGate(T, TableObj, Now);
      return Step::Blocked;
    }
    gateAdvance(TableObj, Now);
  } else if (isRecord()) {
    recordOrdered(TableObj, T.Tid, OrderedOp::JoinThread, Core);
  }

  Sched.advanceCore(Core, Opts.Costs.JoinCost);
  Stats.CpuBusyCycles += Opts.Costs.JoinCost;
  ++Stats.SyncOps;
  if (Opts.Observer)
    Opts.Observer->onJoin(T.Tid, ChildTid, Now);
  advance(T);
  return Step::Continue;
}

//===----------------------------------------------------------------------===//
// I/O
//===----------------------------------------------------------------------===//

Machine::Step Machine::doOutput(Thread &T, uint64_t Value, unsigned Core) {
  uint64_t Now = Sched.coreTime(Core);
  uint32_t Obj = Log.outputObject();

  if (isReplay()) {
    if (!gateOpen(Obj, T.Tid, OrderedOp::Output)) {
      blockOnGate(T, Obj, Now);
      return Step::Blocked;
    }
    gateAdvance(Obj, Now);
  } else if (isRecord()) {
    recordOrdered(Obj, T.Tid, OrderedOp::Output, Core);
  }

  Output.push_back(Value);
  ++Stats.OutputOps;
  Sched.advanceCore(Core, Opts.Costs.OutputCpu);
  Stats.CpuBusyCycles += Opts.Costs.OutputCpu;
  advance(T);

  if (!isReplay() && Opts.Costs.OutputLatency) {
    T.State = ThreadState::Sleeping;
    T.WakeTime = Sched.coreTime(Core) + Opts.Costs.OutputLatency;
    return Step::Blocked;
  }
  return Step::Continue;
}

Machine::Step Machine::doInputOp(Thread &T, InputKind Kind, ir::Reg Dst,
                                 unsigned Core) {
  uint64_t Value = 0;
  uint64_t Latency = 0;
  switch (Kind) {
  case InputKind::Input: Latency = Opts.Costs.InputLatency; break;
  case InputKind::NetRecv: Latency = Opts.Costs.NetLatency; break;
  case InputKind::FileRead: Latency = Opts.Costs.FileLatency; break;
  }

  if (isReplay()) {
    uint32_t &Cursor = InputCursor[T.Tid];
    const auto &Inputs = Opts.ReplayLog->PerThreadInputs[T.Tid];
    // Epoch fence: a consistent epoch never consumes an input past the
    // boundary snapshot's cursor — the thread would have parked first.
    if (Opts.StopAt && T.Tid < Opts.StopAt->InputCursors.size() &&
        Cursor >= Opts.StopAt->InputCursors[T.Tid]) {
      fail("epoch fence: input consumed past the boundary for thread " +
           std::to_string(T.Tid));
      return Step::Fault;
    }
    if (Cursor >= Inputs.size() || Inputs[Cursor].Kind != Kind) {
      fail("replay divergence: input log mismatch for thread " +
           std::to_string(T.Tid));
      return Step::Fault;
    }
    Value = Inputs[Cursor].Value;
    ++Cursor;
    Latency = 0; // Replay feeds inputs without waiting for devices.
  } else {
    Value = InputRng.next() & 0xffffffffull;
    if (isRecord()) {
      if (Log.PerThreadInputs.size() <= T.Tid)
        Log.PerThreadInputs.resize(T.Tid + 1);
      Log.PerThreadInputs[T.Tid].push_back({Kind, Value});
      ++Stats.LogEvents;
      if (Opts.LogSink)
        Opts.LogSink->onInput(T.Tid, Kind, Value);
      if (CollectObs) {
        ++ObsInputCount;
        ObsInputBytes += 1 + varintSize(Value); // kind byte + value.
      }
      Sched.advanceCore(Core, Opts.Costs.LogEvent);
      Stats.CpuBusyCycles += Opts.Costs.LogEvent;
    }
  }

  ++Stats.Syscalls;
  Sched.advanceCore(Core, Opts.Costs.SyscallCpu);
  Stats.CpuBusyCycles += Opts.Costs.SyscallCpu;
  setReg(T, Dst, Value);
  advance(T);

  if (Latency) {
    T.State = ThreadState::Sleeping;
    T.WakeTime = Sched.coreTime(Core) + Latency;
    return Step::Blocked;
  }
  return Step::Continue;
}

//===----------------------------------------------------------------------===//
// Weak-locks
//===----------------------------------------------------------------------===//

void Machine::chargeWeakCpu(uint32_t LockId, unsigned SiteGran,
                            uint64_t Cycles, unsigned Core) {
  assert(SiteGran < 4 && "bad site granularity");
  Sched.advanceCore(Core, Cycles);
  Stats.CpuBusyCycles += Cycles;
  Stats.WeakCpuCycles[SiteGran] += Cycles;
  if (CollectObs)
    ObsPerLock[LockId].CpuCycles += Cycles;
}

Machine::Step Machine::doWeakAcquire(Thread &T, uint32_t LockId,
                                     unsigned SiteGran, bool HasRange,
                                     uint64_t Lo, uint64_t Hi,
                                     unsigned Core) {
  uint64_t Now = Sched.coreTime(Core);
  uint32_t Obj = Log.weakLockObject(LockId);
  assert(!T.holdsWeak(LockId) && "recursive weak-lock acquisition");
  if (HasRange && Lo > Hi)
    std::swap(Lo, Hi);

  if (isReplay()) {
    if (!gateOpen(Obj, T.Tid, OrderedOp::WeakAcquire)) {
      // Defers PendingReacquire processing until this acquire lands —
      // the recorded order completed the blocked acquire first (via
      // grantWeakWaiters) and any revocation-stripped locks after it.
      T.AcquireBeforeReacquire = true;
      blockOnGate(T, Obj, Now);
      return Step::Blocked;
    }
    T.AcquireBeforeReacquire = false;
    WeakRequest Req{T.Tid, HasRange, Lo, Hi, Now,
                    static_cast<uint8_t>(SiteGran)};
    if (!Weak.tryAcquire(LockId, Req)) {
      fail("replay divergence: weak-lock order infeasible");
      return Step::Fault;
    }
    T.HeldWeak.push_back({LockId, HasRange, Lo, Hi,
                          static_cast<uint8_t>(SiteGran)});
    ++Stats.WeakAcquires[SiteGran];
    if (CollectObs)
      ++ObsPerLock[LockId].Acquires;
    chargeWeakCpu(LockId, SiteGran,
                  Opts.Costs.WeakLockOp +
                      (HasRange ? Opts.Costs.RangeCheck : 0),
                  Core);
    gateAdvance(Obj, Now);
    if (Opts.Observer)
      Opts.Observer->onWeak(T.Tid, /*IsAcquire=*/true, LockId, HasRange, Lo,
                            Hi, Now);
    advance(T);
    return Step::Continue;
  }

  WeakRequest Req{T.Tid, HasRange, Lo, Hi, Now,
                  static_cast<uint8_t>(SiteGran)};
  if (Weak.tryAcquire(LockId, Req)) {
    T.HeldWeak.push_back({LockId, HasRange, Lo, Hi,
                          static_cast<uint8_t>(SiteGran)});
    ++Stats.WeakAcquires[SiteGran];
    if (CollectObs)
      ++ObsPerLock[LockId].Acquires;
    chargeWeakCpu(LockId, SiteGran,
                  Opts.Costs.WeakLockOp +
                      (HasRange ? Opts.Costs.RangeCheck : 0),
                  Core);
    if (isRecord())
      recordOrdered(Obj, T.Tid, OrderedOp::WeakAcquire, Core);
    if (Opts.Observer)
      Opts.Observer->onWeak(T.Tid, /*IsAcquire=*/true, LockId, HasRange, Lo,
                            Hi, Now);
    advance(T);
    return Step::Continue;
  }

  Weak.enqueue(LockId, Req);
  T.State = ThreadState::Blocked;
  T.Reason = BlockReason::WeakLock;
  T.WaitObject = LockId;
  T.BlockStart = Now;
  return Step::Blocked;
}

void Machine::grantWeakWaiters(uint32_t LockId, uint64_t Now) {
  assert(!isReplay() && "replay acquires weak-locks via gates");
  std::vector<WeakRequest> Granted = Weak.grantWaiters(LockId, Now);
  for (const WeakRequest &G : Granted) {
    Thread &W = *Threads[G.Tid];
    unsigned Gran = G.SiteGran;
    W.HeldWeak.push_back({LockId, G.HasRange, G.Lo, G.Hi, G.SiteGran});
    ++Stats.WeakAcquires[Gran];
    Stats.WeakWaitCycles[Gran] += Now > W.BlockStart ? Now - W.BlockStart : 0;
    Stats.WeakCpuCycles[Gran] += Opts.Costs.WeakLockOp;
    if (CollectObs) {
      LockObs &LO = ObsPerLock[LockId];
      ++LO.Acquires;
      LO.WaitCycles += Now > W.BlockStart ? Now - W.BlockStart : 0;
      LO.CpuCycles += Opts.Costs.WeakLockOp;
    }
    if (isRecord()) {
      Log.PerObject[Log.weakLockObject(LockId)].push_back(
          {G.Tid, OrderedOp::WeakAcquire});
      ++Stats.LogEvents;
      if (Opts.LogSink)
        Opts.LogSink->onOrdered(Log.weakLockObject(LockId), G.Tid,
                                OrderedOp::WeakAcquire);
      // This append bypasses recordOrdered (the grant happens machine-
      // side, not on the waiter's core), so account its bytes here.
      if (CollectObs)
        obsRecordOrdered(OrderedOp::WeakAcquire,
                         (static_cast<uint64_t>(G.Tid) << 4) |
                             static_cast<uint64_t>(OrderedOp::WeakAcquire));
    }
    if (Opts.Observer)
      Opts.Observer->onWeak(G.Tid, /*IsAcquire=*/true, LockId, G.HasRange,
                            G.Lo, G.Hi, Now);

    // A forced-reacquisition grant resumes the thread where it was; a
    // grant of a blocked WeakAcquire instruction completes it.
    bool WasReacquire = false;
    for (size_t I = 0; I != W.PendingReacquire.size(); ++I) {
      if (W.PendingReacquire[I].LockId == LockId) {
        W.PendingReacquire.erase(W.PendingReacquire.begin() + I);
        WasReacquire = true;
        break;
      }
    }
    if (!WasReacquire)
      advance(W);
    W.ReadyTime = std::max(W.ReadyTime, Now + Opts.Costs.WeakLockOp);
    makeReady(G.Tid, Now);
  }
}

Machine::Step Machine::doWeakRelease(Thread &T, uint32_t LockId,
                                     unsigned Core, bool Forced) {
  uint64_t Now = Sched.coreTime(Core);
  uint32_t Obj = Log.weakLockObject(LockId);

  if (!T.holdsWeak(LockId)) {
    fail("weak-release of unheld lock wl" + std::to_string(LockId));
    return Step::Fault;
  }

  if (isReplay() && !Forced &&
      !gateOpen(Obj, T.Tid, OrderedOp::WeakRelease)) {
    blockOnGate(T, Obj, Now);
    return Step::Blocked;
  }

  // Remove the hold, keeping the range info for a forced reacquisition.
  HeldWeakLock Held;
  for (size_t I = 0; I != T.HeldWeak.size(); ++I) {
    if (T.HeldWeak[I].LockId == LockId) {
      Held = T.HeldWeak[I];
      T.HeldWeak.erase(T.HeldWeak.begin() + I);
      break;
    }
  }
  Weak.removeHolder(LockId, T.Tid);

  if (Forced) {
    T.PendingReacquire.push_back(Held);
    ++Stats.Revocations;
    if (CollectObs)
      ++ObsPerLock[LockId].Revocations;
  }

  chargeWeakCpu(LockId, Held.SiteGran, Opts.Costs.WeakLockOp, Core);
  if (isRecord()) {
    recordOrdered(Obj, T.Tid, OrderedOp::WeakRelease, Core);
    if (Forced) {
      Log.Revocations.push_back({T.Tid, LockId, T.Instret});
      if (Opts.LogSink)
        Opts.LogSink->onRevocation(Log.Revocations.back());
      if (CollectObs) {
        ++ObsRevCount;
        ObsRevBytes += varintSize(T.Tid) + varintSize(LockId) +
                       varintSize(T.Instret);
      }
    }
  } else if (isReplay()) {
    assert(gateOpen(Obj, T.Tid, OrderedOp::WeakRelease) &&
           "forced release out of recorded order");
    gateAdvance(Obj, Now);
  }
  if (Opts.Observer)
    Opts.Observer->onWeak(T.Tid, /*IsAcquire=*/false, LockId, Held.HasRange,
                          Held.Lo, Held.Hi, Now);

  if (!isReplay())
    grantWeakWaiters(LockId, Now);

  if (!Forced)
    advance(T);
  return Step::Continue;
}

Machine::Step Machine::applyForcedReleases(Thread &V, unsigned Core,
                                           bool ParkOnShutGate) {
  if (!isReplay() || V.Tid >= RevocationCursor.size())
    return Step::Continue;
  auto &Pending = PendingRevocations[V.Tid];
  uint32_t &Cursor = RevocationCursor[V.Tid];

  // Applied one EPISODE at a time, all-or-nothing. One revocation strips
  // the victim's full weak-lock set in a single poll, so its events
  // share (Tid, Instret) and name each lock once; a repeated lock can
  // only begin the next episode (the victim reacquires its pending list
  // front-first, so consecutive episodes at one instret always share
  // that front lock). The instret alone does not pin the record-side
  // moment — a thread passes many distinct block points without
  // retiring an instruction, and applying one release at an earlier
  // block point than the recording revoked at reorders the victim's
  // acquires against its gates. Requiring every lock of the episode to
  // be simultaneously held and gate-open re-pins the exact moment: only
  // at the recorded block point has the victim assembled all the holds
  // the episode strips.
  while (Cursor < Pending.size()) {
    const RevocationEvent &Head = Pending[Cursor];
    if (Head.Instret != V.Instret)
      return Step::Continue;
    uint32_t End = Cursor;
    bool HoldsAll = true;
    int64_t ShutObj = -1;
    while (End < Pending.size() && Pending[End].Instret == Head.Instret) {
      const RevocationEvent &Rev = Pending[End];
      bool Repeat = false;
      for (uint32_t I = Cursor; I != End; ++I)
        if (Pending[I].LockId == Rev.LockId)
          Repeat = true;
      if (Repeat)
        break; // Next episode starts here.
      if (!V.holdsWeak(Rev.LockId)) {
        HoldsAll = false;
        break;
      }
      uint32_t Obj = Log.weakLockObject(Rev.LockId);
      if (!gateOpen(Obj, V.Tid, OrderedOp::WeakRelease)) {
        ShutObj = Obj;
        break;
      }
      ++End;
    }
    // A missing hold means an earlier strip of this episode's front lock
    // has not been reacquired yet; the episode becomes applicable once
    // the pending loop brings it back.
    if (!HoldsAll)
      return Step::Continue;
    if (ShutObj >= 0) {
      if (ParkOnShutGate) {
        blockOnGate(V, static_cast<uint32_t>(ShutObj),
                    Sched.coreTime(Core));
        return Step::Blocked;
      }
      return Step::Continue;
    }
    if (End == Cursor)
      return Step::Continue;
    // Pending reacquisitions always drain before an instruction
    // dispatches, so a victim sitting at a program WeakAcquire with
    // nothing pending was revoked while blocked at that acquire — whose
    // eventual grant completed the acquire BEFORE the stripped locks
    // were reacquired. Mark the victim so the interpreter keeps that
    // order (see Thread::AcquireBeforeReacquire). Any other position
    // (mid-reacquisition, or strong-blocked elsewhere) reacquires
    // front-first with no deferral.
    bool AtProgramAcquire =
        V.PendingReacquire.empty() && !V.Stack.empty() &&
        V.frame().DFunc->Insts[V.frame().Ip].Op == ir::Opcode::WeakAcquire;
    for (uint32_t I = Cursor; I != End; ++I)
      doWeakRelease(V, Pending[I].LockId, Core, /*Forced=*/true);
    if (AtProgramAcquire)
      V.AcquireBeforeReacquire = true;
    Cursor = End;
  }
  return Step::Continue;
}

bool Machine::checkWeakTimeouts(uint64_t Now) {
  // A revocation needs a conflicting holder; while nothing is held the
  // scan cannot find one, so it is skipped outright (the log-preserving
  // held-gated poll, independent of plan certification).
  if (!Weak.anyHeld()) {
    if (CollectObs)
      ++ObsWeakPollsSkipped;
    return false;
  }
  if (CollectObs)
    ++ObsWeakPolls;
  // Only a holder that genuinely cannot make progress is a revocation
  // victim. A Running/Ready holder finishes its critical section and
  // releases on its own; a Sleeping one wakes by the clock; and a
  // holder blocked on another weak-lock is fine as long as its
  // obstruction chain ends in a thread that still runs. What the
  // timeout exists to break (paper §2.3) is the chain that cannot
  // resolve itself: a holder stalled behind a strong primitive
  // (condvar, mutex, barrier, join — the classic held-across-wait
  // deadlock) or a cycle of weak-lock waits. The walk reads only
  // simulated scheduler and lock state, so record stays deterministic
  // — and it is exactly the dynamic mirror of the static lock-order
  // certificate: instrumented plans never hold a weak-lock across a
  // strong wait, so with an acyclic certificate no stuck chain can
  // exist and the poll provably never fires.
  //
  // All revocations feed ONE distinguished beneficiary — the lowest-tid
  // stuck weak-waiter — until it stops being stuck. The beneficiary is
  // never a victim (victims are holders of the lock it waits on), so
  // its holds only grow: each matured wait revokes one stuck holder
  // obstructing it, it acquires, blocks on the next lock of its guard
  // set, and repeats until the set is complete and it retires real
  // instructions. Without a stable priority the grants of round N are
  // robbed by round N+1 before any thread completes a set, and ≥3
  // overlapping stuck chains rotate forever (observed as an unbounded
  // acquire/release storm with zero instructions retiring).
  std::vector<uint8_t> Mark(Threads.size(), 0);
  uint32_t B = stuckBeneficiary(Mark);
  if (B == UINT32_MAX)
    return false;
  WeakLockManager::Timeout TO = Weak.findVictimFor(
      Threads[B]->WaitObject, B, Now, Opts.WeakLockTimeout,
      [&](uint32_t Tid) {
        std::fill(Mark.begin(), Mark.end(), 0);
        return weakChainStuck(Tid, Mark);
      });
  if (!TO.Found)
    return false;
  performRevocation(TO, Now);
  return true;
}

uint32_t Machine::stuckBeneficiary(std::vector<uint8_t> &Mark) const {
  for (uint32_t Tid = 0; Tid != Threads.size(); ++Tid) {
    const Thread &T = *Threads[Tid];
    if (T.State != ThreadState::Blocked || T.Reason != BlockReason::WeakLock)
      continue;
    std::fill(Mark.begin(), Mark.end(), 0);
    if (weakChainStuck(Tid, Mark))
      return Tid;
  }
  return UINT32_MAX;
}

uint64_t Machine::revocationMaturityTime() const {
  if (Opts.WeakLockTimeout == UINT64_MAX)
    return UINT64_MAX;
  std::vector<uint8_t> Mark(Threads.size(), 0);
  uint32_t B = stuckBeneficiary(Mark);
  if (B == UINT32_MAX)
    return UINT64_MAX;
  uint64_t Since = Weak.waiterSince(Threads[B]->WaitObject, B);
  if (Since == UINT64_MAX || Opts.WeakLockTimeout >= UINT64_MAX - Since)
    return UINT64_MAX;
  return Since + Opts.WeakLockTimeout;
}

bool Machine::weakChainStuck(uint32_t Tid, std::vector<uint8_t> &Mark) const {
  const Thread &T = *Threads[Tid];
  if (T.State != ThreadState::Blocked)
    return false; // Runs, is ready, or wakes by the clock.
  if (T.Reason != BlockReason::WeakLock)
    return true; // Strong blockage: nothing guarantees a wakeup.
  if (Mark[Tid] == 1)
    return true; // Weak-wait cycle: a genuine weak-lock deadlock.
  if (Mark[Tid] == 2)
    return false; // Already proven alive on this walk.
  Mark[Tid] = 1;
  bool Stuck = false;
  Weak.forEachBlocker(T.WaitObject, Tid, [&](uint32_t Blocker) {
    if (!Stuck && weakChainStuck(Blocker, Mark))
      Stuck = true;
  });
  Mark[Tid] = Stuck ? 1 : 2;
  return Stuck;
}

void Machine::performRevocation(const WeakLockManager::Timeout &TO,
                                uint64_t Now) {
  Thread &Victim = *Threads[TO.VictimTid];
  assert(Victim.holdsWeak(TO.LockId) && "victim does not hold the lock");
  // Forced release on behalf of the victim: the kernel preempts it at its
  // current instruction count (paper §2.3 / DoublePlay mechanism).
  //
  // The victim surrenders its ENTIRE weak-lock set, not just the
  // contested lock. It is stuck (that is what made it a victim), so its
  // remaining holds can only obstruct other threads; and a partial
  // revocation livelocks when two stuck threads need overlapping sets —
  // each revocation round hands one lock across, the beneficiary
  // immediately blocks reassembling the rest, and the mirrored deadlock
  // re-forms with the roles swapped, forever. Releasing everything
  // removes the victim from the obstruction graph outright, so the
  // beneficiary can assemble its full set and retire real instructions
  // before any further timeout matures. The victim reacquires the whole
  // set (FIFO) when it next runs.
  unsigned Core = Sched.minTimeCore();
  Sched.setCoreTime(Core, std::max(Sched.coreTime(Core), Now));
  doWeakRelease(Victim, TO.LockId, Core, /*Forced=*/true);
  std::vector<uint32_t> Rest;
  for (const HeldWeakLock &H : Victim.HeldWeak)
    Rest.push_back(H.LockId);
  for (uint32_t LockId : Rest)
    doWeakRelease(Victim, LockId, Core, /*Forced=*/true);
}
