//===- runtime/Memory.cpp - Simulated word-addressed memory ----------------===//

#include "runtime/Memory.h"

#include <cassert>

using namespace chimera;
using namespace chimera::rt;

void Memory::init(const ir::Module &M, uint64_t HeapCapacityWords) {
  GlobalSeg.assign(M.globalSegmentWords(), 0);
  for (const ir::GlobalVar &G : M.Globals) {
    uint64_t Offset = G.BaseAddr - ir::Module::GlobalBase;
    for (uint32_t I = 0; I != G.SizeWords; ++I)
      GlobalSeg[Offset + I] = static_cast<uint64_t>(G.Init);
  }
  HeapSeg.assign(HeapCapacityWords, 0);
  HeapUsed = 0;
}

bool Memory::valid(uint64_t Addr) const {
  if (Addr >= ir::Module::GlobalBase &&
      Addr < ir::Module::GlobalBase + GlobalSeg.size())
    return true;
  return Addr >= ir::Module::HeapBase &&
         Addr < ir::Module::HeapBase + HeapUsed;
}

uint64_t Memory::load(uint64_t Addr) const {
  assert(valid(Addr) && "load from invalid address");
  if (Addr >= ir::Module::HeapBase)
    return HeapSeg[Addr - ir::Module::HeapBase];
  return GlobalSeg[Addr - ir::Module::GlobalBase];
}

void Memory::store(uint64_t Addr, uint64_t Value) {
  assert(valid(Addr) && "store to invalid address");
  if (Addr >= ir::Module::HeapBase)
    HeapSeg[Addr - ir::Module::HeapBase] = Value;
  else
    GlobalSeg[Addr - ir::Module::GlobalBase] = Value;
}

uint64_t Memory::allocate(uint64_t Words) {
  if (Words == 0)
    Words = 1;
  if (HeapUsed + Words > HeapSeg.size())
    return 0;
  uint64_t Base = ir::Module::HeapBase + HeapUsed;
  HeapUsed += Words;
  return Base;
}

void Memory::hashInto(Hasher &H) const {
  H.addWords(GlobalSeg);
  for (uint64_t I = 0; I != HeapUsed; ++I)
    H.addWord(HeapSeg[I]);
}
