//===- runtime/Memory.cpp - Simulated word-addressed memory ----------------===//

#include "runtime/Memory.h"

#include <cassert>

using namespace chimera;
using namespace chimera::rt;

void Memory::init(const ir::Module &M, uint64_t HeapCapacityWords) {
  GlobalSeg.assign(M.globalSegmentWords(), 0);
  for (const ir::GlobalVar &G : M.Globals) {
    uint64_t Offset = G.BaseAddr - ir::Module::GlobalBase;
    for (uint32_t I = 0; I != G.SizeWords; ++I)
      GlobalSeg[Offset + I] = static_cast<uint64_t>(G.Init);
  }
  // The heap is grown lazily: reserving keeps the backing storage stable
  // (so Views survive allocate()) without paying to zero the whole
  // capacity up front — constructing a Machine for a program that never
  // allocates costs nothing here.
  HeapCapacity = HeapCapacityWords;
  HeapSeg.clear();
  HeapSeg.reserve(HeapCapacityWords);
  HeapUsed = 0;
}

uint64_t Memory::load(uint64_t Addr) const {
  const uint64_t *P = access(Addr);
  assert(P && "load from invalid address");
  // Defined (if wrong) behavior in NDEBUG builds; the interpreter uses
  // access() directly and faults instead of ever reaching this.
  return P ? *P : 0;
}

void Memory::store(uint64_t Addr, uint64_t Value) {
  uint64_t *P = access(Addr);
  assert(P && "store to invalid address");
  if (P)
    *P = Value;
}

uint64_t Memory::allocate(uint64_t Words) {
  if (Words == 0)
    Words = 1;
  // Subtract-form check cannot wrap (HeapUsed <= HeapCapacity), so even
  // absurd requests fail cleanly instead of overflowing the sum.
  if (Words > HeapCapacity - HeapUsed)
    return 0;
  uint64_t Base = ir::Module::HeapBase + HeapUsed;
  HeapUsed += Words;
  HeapSeg.resize(HeapUsed, 0); // Within the reservation; never moves.
  return Base;
}

void Memory::hashInto(Hasher &H) const {
  H.addWords(GlobalSeg);
  for (uint64_t I = 0; I != HeapUsed; ++I)
    H.addWord(HeapSeg[I]);
}
