//===- runtime/Decoded.cpp - Pre-decoded instruction arrays ----------------===//

#include "runtime/Decoded.h"

#include <cassert>

using namespace chimera;
using namespace chimera::rt;
using namespace chimera::ir;

static DecodedInst decodeOne(const Module &M, const Instruction &Inst,
                             const std::vector<uint32_t> &BlockStart,
                             std::vector<Reg> &ArgPool) {
  DecodedInst D;
  D.Op = Inst.Op;
  D.Dst = Inst.Dst;
  D.A = Inst.A;
  D.B = Inst.B;
  D.Id = Inst.Id;
  D.Id2 = Inst.Id2;
  D.Ident = Inst.Ident;
  D.Line = Inst.Loc.Line;

  switch (Inst.Op) {
  case Opcode::ConstInt:
    D.Imm = static_cast<uint64_t>(Inst.Imm);
    break;
  case Opcode::Unary:
    D.Sub = static_cast<uint8_t>(Inst.UOp);
    break;
  case Opcode::Binary:
    D.Sub = static_cast<uint8_t>(Inst.BOp);
    break;
  case Opcode::AddrGlobal:
    assert(Inst.Id < M.Globals.size() && "global id out of range");
    D.Imm = M.Globals[Inst.Id].BaseAddr;
    break;
  case Opcode::Br:
    D.Succ0 = BlockStart[Inst.Succ0];
    break;
  case Opcode::CondBr:
    D.Succ0 = BlockStart[Inst.Succ0];
    D.Succ1 = BlockStart[Inst.Succ1];
    break;
  case Opcode::WeakAcquire:
    D.Imm = static_cast<uint64_t>(Inst.Imm);
    D.Sub = static_cast<uint8_t>(Inst.Id2 & 3);
    break;
  case Opcode::WeakRelease:
    D.Imm = static_cast<uint64_t>(Inst.Imm);
    break;
  default:
    break;
  }

  if (!Inst.Args.empty()) {
    D.ArgsIdx = static_cast<uint32_t>(ArgPool.size());
    D.ArgsLen = static_cast<uint16_t>(Inst.Args.size());
    ArgPool.insert(ArgPool.end(), Inst.Args.begin(), Inst.Args.end());
  }
  return D;
}

void DecodedProgram::init(const Module &M) {
  Funcs.clear();
  Funcs.resize(M.Functions.size());

  for (size_t FI = 0; FI != M.Functions.size(); ++FI) {
    const Function &F = *M.Functions[FI];
    DecodedFunction &DF = Funcs[FI];
    DF.Src = &F;

    uint32_t Total = 0;
    DF.BlockStart.resize(F.Blocks.size());
    for (size_t B = 0; B != F.Blocks.size(); ++B) {
      DF.BlockStart[B] = Total;
      Total += static_cast<uint32_t>(F.Blocks[B].Insts.size());
    }

    DF.Insts.reserve(Total);
    for (const BasicBlock &BB : F.Blocks)
      for (const Instruction &Inst : BB.Insts)
        DF.Insts.push_back(decodeOne(M, Inst, DF.BlockStart, DF.ArgPool));
  }
}
