//===- runtime/ExecutionLog.cpp - Record/replay log structures -------------===//

#include "runtime/ExecutionLog.h"

using namespace chimera::rt;

const char *chimera::rt::orderedOpName(OrderedOp Op) {
  switch (Op) {
  case OrderedOp::MutexLock: return "mutex_lock";
  case OrderedOp::MutexUnlock: return "mutex_unlock";
  case OrderedOp::BarrierArrive: return "barrier_arrive";
  case OrderedOp::CondWaitBegin: return "cond_wait_begin";
  case OrderedOp::CondSignal: return "cond_signal";
  case OrderedOp::CondBroadcast: return "cond_broadcast";
  case OrderedOp::Output: return "output";
  case OrderedOp::SpawnThread: return "spawn";
  case OrderedOp::JoinThread: return "join";
  case OrderedOp::WeakAcquire: return "weak_acquire";
  case OrderedOp::WeakRelease: return "weak_release";
  }
  return "?";
}

uint64_t ExecutionLog::totalOrderedEvents() const {
  uint64_t Total = 0;
  for (const auto &Seq : PerObject)
    Total += Seq.size();
  return Total;
}

uint64_t ExecutionLog::totalInputEvents() const {
  uint64_t Total = 0;
  for (const auto &Seq : PerThreadInputs)
    Total += Seq.size();
  return Total;
}

void ExecutionLog::clear() {
  PerObject.clear();
  PerThreadInputs.clear();
  Revocations.clear();
  NumSyncObjects = NumWeakLocks = NumThreads = 0;
}
