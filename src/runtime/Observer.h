//===- runtime/Observer.h - Execution event observer ------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Callback interface through which the profiler (paper §4) and the
/// dynamic race detector observe a simulated execution. The machine
/// invokes these between instructions, so observers may inspect but not
/// mutate machine state.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_RUNTIME_OBSERVER_H
#define CHIMERA_RUNTIME_OBSERVER_H

#include "ir/Instruction.h"

#include <cstdint>

namespace chimera {
namespace rt {

/// Synchronization events as seen by observers.
enum class ObservedSync : uint8_t {
  MutexLock,     ///< After acquisition.
  MutexUnlock,   ///< Before release completes.
  BarrierArrive, ///< Thread reached the barrier.
  BarrierLeave,  ///< Thread released from the barrier.
  CondWaitBlock, ///< Thread started waiting (mutex released).
  CondWaitWake,  ///< Thread woke (before reacquiring the mutex).
  CondSignal,
  CondBroadcast,
  WeakAcquire,   ///< After acquisition (object id = weak-lock id).
  WeakRelease,
};

class ExecutionObserver {
public:
  virtual ~ExecutionObserver();

  /// A thread began existing: \p Tid runs \p FuncId; \p ParentTid is the
  /// spawner (Tid == ParentTid for the main thread).
  virtual void onThreadStart(uint32_t Tid, uint32_t ParentTid,
                             uint32_t FuncId, uint64_t Now);

  /// \p Tid finished; \p JoinerTid joined it (~0u if nobody has yet).
  virtual void onThreadFinish(uint32_t Tid, uint64_t Now);

  /// \p ParentTid's join on \p ChildTid completed.
  virtual void onJoin(uint32_t ParentTid, uint32_t ChildTid, uint64_t Now);

  virtual void onFunctionEnter(uint32_t Tid, uint32_t FuncId, uint64_t Now);
  virtual void onFunctionExit(uint32_t Tid, uint32_t FuncId, uint64_t Now);

  /// A data memory access at word address \p Addr by instruction
  /// \p Ident of function \p FuncId.
  virtual void onMemoryAccess(uint32_t Tid, uint64_t Addr, bool IsWrite,
                              uint32_t FuncId, ir::InstId Ident,
                              uint64_t Now);

  /// A synchronization event on object \p ObjId (sync id, or weak-lock id
  /// for the Weak* kinds). For barriers, \p Aux is the generation.
  virtual void onSync(uint32_t Tid, ObservedSync Kind, uint32_t ObjId,
                      uint64_t Aux, uint64_t Now);

  /// A weak-lock acquire/release with its optional address range (ranged
  /// loop-locks admit concurrent disjoint holders, so range-aware
  /// happens-before tracking needs the interval).
  virtual void onWeak(uint32_t Tid, bool IsAcquire, uint32_t LockId,
                      bool HasRange, uint64_t Lo, uint64_t Hi,
                      uint64_t Now);
};

} // namespace rt
} // namespace chimera

#endif // CHIMERA_RUNTIME_OBSERVER_H
