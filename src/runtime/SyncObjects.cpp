//===- runtime/SyncObjects.cpp - Runtime sync-object state -----------------===//

#include "runtime/SyncObjects.h"

using namespace chimera;
using namespace chimera::rt;

void SyncObjectTable::init(const ir::Module &M) {
  States.clear();
  States.resize(M.Syncs.size());
  for (size_t I = 0; I != M.Syncs.size(); ++I) {
    States[I].Kind = M.Syncs[I].Kind;
    States[I].Parties = M.Syncs[I].Parties;
  }
}
