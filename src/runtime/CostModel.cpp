//===- runtime/CostModel.cpp - Simulated cycle costs -----------------------===//

#include "runtime/CostModel.h"

// Currently header-only; this TU anchors the library target.
