//===- runtime/VectorClock.h - Vector clocks --------------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sparse vector clocks used by the dynamic happens-before race detector
/// (the oracle that checks Chimera-transformed programs really are
/// race-free under the new synchronization).
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_RUNTIME_VECTORCLOCK_H
#define CHIMERA_RUNTIME_VECTORCLOCK_H

#include <cstdint>
#include <string>
#include <vector>

namespace chimera {
namespace rt {

/// A component of a vector clock: thread \p Tid at logical time \p Clock.
struct Epoch {
  uint32_t Tid = 0;
  uint64_t Clock = 0;
};

/// A growable dense vector clock indexed by thread id.
class VectorClock {
public:
  uint64_t get(uint32_t Tid) const {
    return Tid < Clocks.size() ? Clocks[Tid] : 0;
  }

  void set(uint32_t Tid, uint64_t Value) {
    grow(Tid);
    Clocks[Tid] = Value;
  }

  /// Increments this thread's own component.
  void tick(uint32_t Tid) {
    grow(Tid);
    ++Clocks[Tid];
  }

  /// Pointwise maximum with \p Other.
  void join(const VectorClock &Other);

  /// True if every component of *this is <= the matching one in Other,
  /// i.e. *this happens-before-or-equals Other.
  bool leq(const VectorClock &Other) const;

  /// True if epoch (Tid, Clock) happens-before this clock.
  bool covers(const Epoch &E) const { return E.Clock <= get(E.Tid); }

  size_t size() const { return Clocks.size(); }

  std::string str() const;

private:
  void grow(uint32_t Tid) {
    if (Tid >= Clocks.size())
      Clocks.resize(Tid + 1, 0);
  }

  std::vector<uint64_t> Clocks;
};

} // namespace rt
} // namespace chimera

#endif // CHIMERA_RUNTIME_VECTORCLOCK_H
