//===- runtime/WeakLock.cpp - Weak-lock manager ----------------------------===//

#include "runtime/WeakLock.h"

#include <algorithm>
#include <cassert>
#include <cstdint>

using namespace chimera;
using namespace chimera::rt;

void WeakLockManager::init(uint32_t NumLocks) {
  Locks.clear();
  Locks.resize(NumLocks);
  TotalWaiters = 0;
  TotalHolders = 0;
}

bool WeakLockManager::conflicts(const WeakRequest &A, bool HasRange,
                                uint64_t Lo, uint64_t Hi) {
  // An unranged acquisition excludes everything; ranged ones conflict
  // only when the word intervals overlap.
  if (!A.HasRange || !HasRange)
    return true;
  return A.Lo <= Hi && Lo <= A.Hi;
}

bool WeakLockManager::wouldConflict(uint32_t LockId, bool HasRange,
                                    uint64_t Lo, uint64_t Hi) const {
  assert(LockId < Locks.size() && "lock id out of range");
  const LockState &L = Locks[LockId];
  if (L.UnrangedHolders)
    return true;
  if (!HasRange)
    return !L.Holders.empty();
  // Ranged vs. ranged: holders are disjoint intervals, so the only
  // candidate is the interval with the largest Lo <= Hi — every earlier
  // interval ends before that one starts, hence before our Lo as well.
  auto It = L.RangeIdx.upper_bound(Hi);
  if (It == L.RangeIdx.begin())
    return false;
  --It;
  return It->second >= Lo;
}

bool WeakLockManager::conflictsWithWaiters(const LockState &L, bool HasRange,
                                           uint64_t Lo, uint64_t Hi) {
  if (L.Waiters.empty())
    return false;
  if (L.UnrangedWaiters || !HasRange)
    return true; // Some waiter (or the request) excludes everything.
  // Bounding-box reject: a request disjoint from the hull of all queued
  // ranges conflicts with none of them.
  if (Hi < L.WaiterLoMin || Lo > L.WaiterHiMax)
    return false;
  for (const WeakRequest &W : L.Waiters)
    if (conflicts(W, HasRange, Lo, Hi))
      return true;
  return false;
}

void WeakLockManager::indexHolder(LockState &L, const WeakRequest &Req) {
  L.Holders.push_back(Req);
  if (Req.HasRange) {
    assert(L.RangeIdx.find(Req.Lo) == L.RangeIdx.end() &&
           "overlapping holder admitted");
    L.RangeIdx[Req.Lo] = Req.Hi;
  } else {
    ++L.UnrangedHolders;
  }
}

void WeakLockManager::rebuildWaiterSummary(LockState &L) {
  L.UnrangedWaiters = 0;
  L.WaiterLoMin = UINT64_MAX;
  L.WaiterHiMax = 0;
  for (const WeakRequest &W : L.Waiters) {
    if (!W.HasRange) {
      ++L.UnrangedWaiters;
    } else {
      L.WaiterLoMin = std::min(L.WaiterLoMin, W.Lo);
      L.WaiterHiMax = std::max(L.WaiterHiMax, W.Hi);
    }
  }
}

bool WeakLockManager::tryAcquire(uint32_t LockId, const WeakRequest &Req) {
  assert(LockId < Locks.size() && "lock id out of range");
  LockState &L = Locks[LockId];
  // FIFO fairness: an incoming request must also queue behind existing
  // waiters it conflicts with, or a stream of compatible acquirers could
  // starve a waiter forever.
  if (conflictsWithWaiters(L, Req.HasRange, Req.Lo, Req.Hi))
    return false;
  if (wouldConflict(LockId, Req.HasRange, Req.Lo, Req.Hi))
    return false;
  indexHolder(L, Req);
  ++TotalHolders;
  return true;
}

void WeakLockManager::enqueue(uint32_t LockId, const WeakRequest &Req) {
  assert(LockId < Locks.size() && "lock id out of range");
  LockState &L = Locks[LockId];
  L.Waiters.push_back(Req);
  ++TotalWaiters;
  if (!Req.HasRange) {
    ++L.UnrangedWaiters;
  } else {
    L.WaiterLoMin = std::min(L.WaiterLoMin, Req.Lo);
    L.WaiterHiMax = std::max(L.WaiterHiMax, Req.Hi);
  }
}

bool WeakLockManager::removeHolder(uint32_t LockId, uint32_t Tid) {
  assert(LockId < Locks.size() && "lock id out of range");
  LockState &L = Locks[LockId];
  auto &Holders = L.Holders;
  for (size_t I = 0; I != Holders.size(); ++I) {
    if (Holders[I].Tid == Tid) {
      if (Holders[I].HasRange)
        L.RangeIdx.erase(Holders[I].Lo);
      else
        --L.UnrangedHolders;
      Holders.erase(Holders.begin() + static_cast<ptrdiff_t>(I));
      --TotalHolders;
      return true;
    }
  }
  return false;
}

std::vector<WeakRequest> WeakLockManager::grantWaiters(uint32_t LockId,
                                                       uint64_t Now) {
  assert(LockId < Locks.size() && "lock id out of range");
  LockState &L = Locks[LockId];
  std::vector<WeakRequest> Granted;

  // FIFO with compatibility skipping: grant the front waiter if it fits,
  // and keep granting subsequent waiters whose ranges are also
  // compatible. Stop at the first conflicting waiter to preserve
  // fairness.
  while (!L.Waiters.empty()) {
    const WeakRequest &Front = L.Waiters.front();
    if (wouldConflict(LockId, Front.HasRange, Front.Lo, Front.Hi))
      break;
    WeakRequest Grant = Front;
    Grant.Since = Now;
    indexHolder(L, Grant);
    ++TotalHolders;
    Granted.push_back(Grant);
    L.Waiters.pop_front();
    --TotalWaiters;
  }
  if (!Granted.empty())
    rebuildWaiterSummary(L);
  return Granted;
}

WeakLockManager::Timeout WeakLockManager::findTimeout(uint64_t Now,
                                                      uint64_t TimeoutCycles)
    const {
  return findTimeoutIf(Now, TimeoutCycles, [](uint32_t) { return true; });
}

size_t WeakLockManager::numHolders(uint32_t LockId) const {
  assert(LockId < Locks.size() && "lock id out of range");
  return Locks[LockId].Holders.size();
}

size_t WeakLockManager::numWaiters(uint32_t LockId) const {
  assert(LockId < Locks.size() && "lock id out of range");
  return Locks[LockId].Waiters.size();
}

uint64_t WeakLockManager::earliestWaiterSince() const {
  uint64_t Best = UINT64_MAX;
  if (!TotalWaiters)
    return Best;
  // Enqueue times are not globally monotone (core clocks drift within a
  // cycle of each other), so this takes the true minimum rather than
  // trusting queue order.
  for (const LockState &L : Locks)
    for (const WeakRequest &W : L.Waiters)
      Best = std::min(Best, W.Since);
  return Best;
}

const WeakRequest *WeakLockManager::holder(uint32_t LockId,
                                           uint32_t Tid) const {
  assert(LockId < Locks.size() && "lock id out of range");
  for (const WeakRequest &H : Locks[LockId].Holders)
    if (H.Tid == Tid)
      return &H;
  return nullptr;
}
