//===- runtime/WeakLock.cpp - Weak-lock manager ----------------------------===//

#include "runtime/WeakLock.h"

#include <algorithm>
#include <cassert>
#include <cstdint>

using namespace chimera;
using namespace chimera::rt;

void WeakLockManager::init(uint32_t NumLocks) {
  Locks.clear();
  Locks.resize(NumLocks);
}

bool WeakLockManager::conflicts(const WeakRequest &A, bool HasRange,
                                uint64_t Lo, uint64_t Hi) {
  // An unranged acquisition excludes everything; ranged ones conflict
  // only when the word intervals overlap.
  if (!A.HasRange || !HasRange)
    return true;
  return A.Lo <= Hi && Lo <= A.Hi;
}

bool WeakLockManager::wouldConflict(uint32_t LockId, bool HasRange,
                                    uint64_t Lo, uint64_t Hi) const {
  assert(LockId < Locks.size() && "lock id out of range");
  for (const WeakRequest &H : Locks[LockId].Holders)
    if (conflicts(H, HasRange, Lo, Hi))
      return true;
  return false;
}

bool WeakLockManager::tryAcquire(uint32_t LockId, const WeakRequest &Req) {
  assert(LockId < Locks.size() && "lock id out of range");
  LockState &L = Locks[LockId];
  // FIFO fairness: an incoming request must also queue behind existing
  // waiters it conflicts with, or a stream of compatible acquirers could
  // starve a waiter forever.
  for (const WeakRequest &W : L.Waiters)
    if (conflicts(W, Req.HasRange, Req.Lo, Req.Hi))
      return false;
  if (wouldConflict(LockId, Req.HasRange, Req.Lo, Req.Hi))
    return false;
  L.Holders.push_back(Req);
  return true;
}

void WeakLockManager::enqueue(uint32_t LockId, const WeakRequest &Req) {
  assert(LockId < Locks.size() && "lock id out of range");
  Locks[LockId].Waiters.push_back(Req);
}

bool WeakLockManager::removeHolder(uint32_t LockId, uint32_t Tid) {
  assert(LockId < Locks.size() && "lock id out of range");
  auto &Holders = Locks[LockId].Holders;
  for (size_t I = 0; I != Holders.size(); ++I) {
    if (Holders[I].Tid == Tid) {
      Holders.erase(Holders.begin() + I);
      return true;
    }
  }
  return false;
}

std::vector<WeakRequest> WeakLockManager::grantWaiters(uint32_t LockId,
                                                       uint64_t Now) {
  assert(LockId < Locks.size() && "lock id out of range");
  LockState &L = Locks[LockId];
  std::vector<WeakRequest> Granted;

  // FIFO with compatibility skipping: grant the front waiter if it fits,
  // and keep granting subsequent waiters whose ranges are also
  // compatible. Stop at the first conflicting waiter to preserve
  // fairness.
  for (auto It = L.Waiters.begin(); It != L.Waiters.end();) {
    if (wouldConflict(LockId, It->HasRange, It->Lo, It->Hi))
      break;
    WeakRequest Grant = *It;
    Grant.Since = Now;
    L.Holders.push_back(Grant);
    Granted.push_back(Grant);
    It = L.Waiters.erase(It);
  }
  return Granted;
}

WeakLockManager::Timeout WeakLockManager::findTimeout(uint64_t Now,
                                                      uint64_t TimeoutCycles)
    const {
  Timeout Result;
  for (uint32_t LockId = 0; LockId != Locks.size(); ++LockId) {
    const LockState &L = Locks[LockId];
    if (L.Waiters.empty())
      continue;
    const WeakRequest &Oldest = L.Waiters.front();
    if (Now < Oldest.Since || Now - Oldest.Since < TimeoutCycles)
      continue;
    // Find a holder blocking the stalled waiter.
    for (const WeakRequest &H : L.Holders) {
      if (conflicts(H, Oldest.HasRange, Oldest.Lo, Oldest.Hi)) {
        Result.Found = true;
        Result.LockId = LockId;
        Result.VictimTid = H.Tid;
        Result.WaiterTid = Oldest.Tid;
        return Result;
      }
    }
  }
  return Result;
}

size_t WeakLockManager::numHolders(uint32_t LockId) const {
  assert(LockId < Locks.size() && "lock id out of range");
  return Locks[LockId].Holders.size();
}

size_t WeakLockManager::numWaiters(uint32_t LockId) const {
  assert(LockId < Locks.size() && "lock id out of range");
  return Locks[LockId].Waiters.size();
}

uint64_t WeakLockManager::earliestWaiterSince() const {
  uint64_t Best = UINT64_MAX;
  for (const LockState &L : Locks)
    for (const WeakRequest &W : L.Waiters)
      Best = std::min(Best, W.Since);
  return Best;
}

const WeakRequest *WeakLockManager::holder(uint32_t LockId,
                                           uint32_t Tid) const {
  assert(LockId < Locks.size() && "lock id out of range");
  for (const WeakRequest &H : Locks[LockId].Holders)
    if (H.Tid == Tid)
      return &H;
  return nullptr;
}
