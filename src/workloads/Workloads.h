//===- workloads/Workloads.h - The nine paper benchmarks --------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MiniC reimplementations of the paper's benchmark suite (Table 1):
/// desktop (aget, pfscan, pbzip2), server (knot, apache), and scientific
/// (ocean, water, fft, radix). Each program reproduces the sharing
/// pattern that drives its counterpart's behavior in the paper:
///
///  - aget: workers fill disjoint buffer chunks from the network, plus
///    the real aget's racy progress counter; I/O-dominated.
///  - pfscan: work queue + condition variable, partitioned stats,
///    master-only merge phases (function-lock material), and a racy
///    max-tracking update inside an `if` in the hot scan loop (§7.3).
///  - pbzip2: producer/consumer pipeline over disjoint blocks.
///  - knot/apache: request servers; apache adds the hot memset-style
///    scratch-clearing loop the paper highlights for loop-locks.
///  - ocean: barrier-phased stencil with neighbor-row overlap
///    (loop-lock contention).
///  - water: barrier-separated phases, master-only energy/boundary
///    phases (the Fig. 2/3 clique story), and a force loop containing a
///    call (defeats the intra-procedural bounds analysis, §7.4).
///  - fft: butterfly passes plus a transpose whose column-strided writes
///    overlap across workers (contention).
///  - radix: Fig. 4 verbatim — zeroing loop with precise bounds, and a
///    key-dependent histogram loop whose bounds are underivable.
///
/// Programs are generated from templates so the profile environment
/// (fewer workers, smaller inputs) differs from the evaluation
/// environment only in global initializers and barrier party counts;
/// the IR shape is identical and analysis results transfer.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_WORKLOADS_WORKLOADS_H
#define CHIMERA_WORKLOADS_WORKLOADS_H

#include "core/Pipeline.h"

#include <memory>
#include <string>
#include <vector>

namespace chimera {
namespace workloads {

enum class WorkloadKind {
  Aget,
  Pfscan,
  Pbzip2,
  Knot,
  Apache,
  Ocean,
  Water,
  Fft,
  Radix,
};

struct WorkloadParams {
  unsigned Workers = 4;
  unsigned Scale = 8; ///< Problem-size multiplier.
};

struct WorkloadInfo {
  WorkloadKind Kind;
  const char *Name;
  const char *Category; ///< "desktop" | "server" | "scientific".
  const char *ProfileEnv;
  const char *EvalEnv;
};

/// All nine workloads in Table 1 order.
const std::vector<WorkloadKind> &allWorkloads();

const WorkloadInfo &workloadInfo(WorkloadKind Kind);

/// MiniC source for the given parameters.
std::string workloadSource(WorkloadKind Kind, const WorkloadParams &Params);

/// Paper-style profile environment: 2 workers, small inputs.
WorkloadParams profileParams(WorkloadKind Kind);

/// Evaluation environment: \p Workers workers, full inputs.
WorkloadParams evalParams(WorkloadKind Kind, unsigned Workers = 4);

/// The PipelineRequest for one workload (8 simulated cores, paper
/// profiling setup): eval + profile sources filled in, Tag set to the
/// workload name. \p Config seeds the non-workload settings
/// (AnalysisJobs, planner, caching); the workload fields are
/// overwritten. Feed it to ChimeraPipeline::create for a one-shot run
/// or to service::SessionManager::submit for a concurrent session.
core::PipelineRequest
pipelineRequest(WorkloadKind Kind, unsigned Workers,
                core::PipelineConfig Config = core::PipelineConfig());

/// Builds a ready-to-run pipeline from pipelineRequest().
support::Expected<std::unique_ptr<core::ChimeraPipeline>>
buildPipelineEx(WorkloadKind Kind, unsigned Workers,
                core::PipelineConfig Config = core::PipelineConfig());

/// Source line count (for the Table 1 LOC column).
unsigned workloadLineCount(WorkloadKind Kind);

} // namespace workloads
} // namespace chimera

#endif // CHIMERA_WORKLOADS_WORKLOADS_H
