//===- workloads/Workloads.cpp - The nine paper benchmarks -----------------===//

#include "workloads/Workloads.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace chimera;
using namespace chimera::workloads;

namespace {

/// Replaces $W (workers), $S (scale) in a template. Only global
/// initializers and barrier party counts may use them, keeping the IR
/// shape identical between profile and evaluation configurations.
std::string substitute(const char *Template, const WorkloadParams &P) {
  std::string Out;
  for (const char *C = Template; *C; ++C) {
    if (*C == '$' && C[1] == 'W') {
      Out += std::to_string(P.Workers);
      ++C;
    } else if (*C == '$' && C[1] == 'S') {
      Out += std::to_string(P.Scale);
      ++C;
    } else {
      Out += *C;
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// aget — download accelerator (desktop). Workers fill disjoint chunks of
// a shared buffer from the network; the real aget's progress counter
// `bwritten` is updated without a lock (a known race). Decoding after the
// download is a pure-compute loop with derivable bounds.
//===----------------------------------------------------------------------===//

const char *AgetSource = R"(
int workers = $W;
int scale = $S;
int buf[16384];
int bwritten;
int report_buf[16];
int tids[8];

void download(int* base, int n, int id) {
  int i;
  for (i = 0; i < n; i++) {
    int v = net_recv();
    base[i] = v & 255;
    bwritten += 1;
  }
  report_buf[id] = n;
}

void decode(int* base, int n) {
  int i;
  for (i = 0; i < n; i++) {
    base[i] = (base[i] ^ 90) & 255;
  }
}

void fetch(int* base, int n, int id) {
  download(base, n, id);
  decode(base, n);
}

void summarize(int total) {
  int i;
  int sum = 0;
  for (i = 0; i < total; i++) {
    sum = (sum + buf[i]) & 1048575;
  }
  output(sum);
  output(bwritten);
  int j;
  for (j = 0; j < 8; j++) {
    output(report_buf[j]);
  }
}

int main() {
  int chunk = 96 * scale;
  int w;
  for (w = 0; w < workers; w++) {
    tids[w] = spawn(fetch, &buf[w * chunk], chunk, w);
  }
  for (w = 0; w < workers; w++) {
    join(tids[w]);
  }
  summarize(workers * chunk);
  return 0;
}
)";

//===----------------------------------------------------------------------===//
// pfscan — parallel file scanner (desktop). Work queue with a condition
// variable; per-worker stats partitions; a racy running-max update inside
// an `if` in the hot scan loop (the case the paper discusses in §7.3);
// and master-only merge phases separated by barriers — the function-lock
// showcase.
//===----------------------------------------------------------------------===//

const char *PfscanSource = R"(
int workers = $W;
int scale = $S;
int nfiles = 12;
mutex qlock;
cond qcond;
int queue[64];
int qhead;
int qtail;
int qdone;
int matches;
int maxlen;
int stats[512];
int summary[16];
int grand[4];
int tids[8];
barrier phase($W);

void enqueue_files() {
  int i;
  lock(qlock);
  for (i = 0; i < nfiles; i++) {
    queue[qtail] = 1 + (input() & 3);
    qtail++;
  }
  qdone = 1;
  cond_broadcast(qcond);
  unlock(qlock);
}

int take_work() {
  int job = 0;
  lock(qlock);
  while (qhead == qtail && qdone == 0) {
    cond_wait(qcond, qlock);
  }
  if (qhead < qtail) {
    job = queue[qhead];
    qhead++;
  }
  unlock(qlock);
  return job;
}

void scan_block(int* stat, int blocks) {
  int b;
  for (b = 0; b < blocks; b++) {
    int data = file_read();
    int len = 32 + (data & 255);
    int found = 0;
    int i;
    for (i = 0; i < len; i++) {
      int c = (data + i * 7) & 255;
      if (c == 65) {
        found++;
      }
    }
    if (len > maxlen) {
      maxlen = len;
    }
    stat[0] = stat[0] + found;
    stat[1] = stat[1] + len;
    lock(qlock);
    matches = matches + found;
    unlock(qlock);
  }
}

void merge_found() {
  int i;
  for (i = 0; i < 512; i++) {
    summary[i & 15] = (summary[i & 15] + stats[i]) & 1048575;
  }
  grand[0] = 0;
  int w;
  for (w = 0; w < workers; w++) {
    grand[0] = grand[0] + summary[w];
  }
}

void merge_len() {
  int i;
  grand[1] = 0;
  for (i = 0; i < 512; i++) {
    grand[1] = (grand[1] + stats[i] * 3 + summary[i & 15]) & 1048575;
  }
}

void worker(int id) {
  int* stat = &stats[id * 64];
  int job = take_work();
  while (job != 0) {
    scan_block(stat, job * scale);
    job = take_work();
  }
  barrier_wait(phase);
  if (id == 0) {
    merge_found();
  }
  barrier_wait(phase);
  if (id == workers - 1) {
    merge_len();
  }
  barrier_wait(phase);
}

void report() {
  output(matches);
  output(maxlen);
  output(grand[0]);
  output(grand[1]);
}

int main() {
  int w;
  for (w = 0; w < workers; w++) {
    tids[w] = spawn(worker, w);
  }
  enqueue_files();
  for (w = 0; w < workers; w++) {
    join(tids[w]);
  }
  report();
  return 0;
}
)";

//===----------------------------------------------------------------------===//
// pbzip2 — parallel block compressor (desktop). The producer reads file
// blocks and hands them to compressing workers through a mutex/condvar
// queue; blocks live in disjoint regions of shared in/out buffers, whose
// cross-thread handoff RELAY cannot see (condvar ordering), giving false
// races that ranged loop-locks absorb without serialization.
//===----------------------------------------------------------------------===//

const char *Pbzip2Source = R"(
int workers = $W;
int scale = $S;
int nblocks = 16;
int inbuf[16384];
int outbuf[16384];
int blockstate[64];
mutex block_lock;
cond block_cond;
int next_block;
int produced;
int checksums[16];
int tids[8];

void fill_block(int* dst, int n) {
  int i;
  for (i = 0; i < n; i++) {
    dst[i] = file_read() & 255;
  }
}

void read_input_blocks() {
  int bs = 64 * scale;
  int b;
  for (b = 0; b < nblocks; b++) {
    fill_block(&inbuf[b * bs], bs);
    lock(block_lock);
    blockstate[b] = 1;
    produced++;
    cond_broadcast(block_cond);
    unlock(block_lock);
  }
}

int claim_block() {
  int mine = -1;
  lock(block_lock);
  while (next_block < nblocks && blockstate[next_block] == 0) {
    cond_wait(block_cond, block_lock);
  }
  if (next_block < nblocks) {
    mine = next_block;
    next_block++;
  }
  unlock(block_lock);
  return mine;
}

void compress_block(int* src, int* dst, int n) {
  int acc = 7;
  int i;
  for (i = 0; i < n; i++) {
    acc = (acc * 33 + src[i]) & 65535;
    dst[i] = (src[i] ^ acc) & 255;
  }
}

void worker(int id) {
  int bs = 64 * scale;
  int b = claim_block();
  while (b >= 0) {
    compress_block(&inbuf[b * bs], &outbuf[b * bs], bs);
    checksums[id & 7] = checksums[id & 7] + 1;
    b = claim_block();
  }
}

void flush_output(int total) {
  int i;
  int sum = 0;
  for (i = 0; i < total; i++) {
    sum = (sum + outbuf[i]) & 1048575;
  }
  output(sum);
  int w;
  for (w = 0; w < 8; w++) {
    output(checksums[w]);
  }
}

int main() {
  int w;
  for (w = 0; w < workers; w++) {
    tids[w] = spawn(worker, w);
  }
  read_input_blocks();
  for (w = 0; w < workers; w++) {
    join(tids[w]);
  }
  flush_output(nblocks * 64 * scale);
  return 0;
}
)";

//===----------------------------------------------------------------------===//
// knot — threaded web server (server). Main accepts requests from the
// network into a queue; pool workers serve them out of a read-mostly
// document cache initialized before the pool starts (an init-vs-worker
// false race), with a racy hit counter. Heavily I/O-bound, so recording
// cost hides behind network waits.
//===----------------------------------------------------------------------===//

const char *KnotSource = R"(
int workers = $W;
int scale = $S;
mutex qm;
cond qc;
int reqq[256];
int qh;
int qt;
int closing;
int cache[2048];
int hits;
int served[8];
int tids[8];

void setup_cache() {
  int i;
  for (i = 0; i < 2048; i++) {
    cache[i] = (i * 17) & 255;
  }
}

int next_request() {
  int r = -1;
  lock(qm);
  while (qh == qt && closing == 0) {
    cond_wait(qc, qm);
  }
  if (qh < qt) {
    r = reqq[qh & 255];
    qh++;
  }
  unlock(qm);
  return r;
}

int render(int doc) {
  int sum = 0;
  int i;
  for (i = 0; i < 64; i++) {
    sum = (sum + cache[doc + i]) & 65535;
  }
  return sum;
}

void serve(int id, int req) {
  int body = render(req & 1023);
  hits += 1;
  served[id] = served[id] + 1;
  output(body & 255);
}

void worker(int id) {
  int r = next_request();
  while (r >= 0) {
    serve(id, r);
    r = next_request();
  }
}

void accept_loop() {
  int n = 16 * scale;
  int i;
  for (i = 0; i < n; i++) {
    int req = net_recv() & 1023;
    lock(qm);
    reqq[qt & 255] = req;
    qt++;
    reqq[qt & 255] = (req + 331) & 1023;
    qt++;
    cond_broadcast(qc);
    unlock(qm);
  }
  lock(qm);
  closing = 1;
  cond_broadcast(qc);
  unlock(qm);
}

void report() {
  int w;
  int tot = 0;
  for (w = 0; w < workers; w++) {
    tot = tot + served[w];
  }
  output(tot);
  output(hits);
}

int main() {
  setup_cache();
  int w;
  for (w = 0; w < workers; w++) {
    tids[w] = spawn(worker, w);
  }
  accept_loop();
  for (w = 0; w < workers; w++) {
    join(tids[w]);
  }
  report();
  return 0;
}
)";

//===----------------------------------------------------------------------===//
// apache — larger web server (server). Adds virtual hosts, a mime table,
// request parsing, per-worker scratch buffers whose hot clearing loop is
// the paper's memset story (§7.3: a false self-race in a ~6M-iteration
// loop rescued by loop-locks with accurate bounds), per-worker log
// buffers, and barrier-phased master-only stat collection.
//===----------------------------------------------------------------------===//

const char *ApacheSource = R"(
int workers = $W;
int scale = $S;
mutex qm;
cond qc;
int reqq[512];
int qh;
int qt;
int closing;
int vhosts[256];
int mime[128];
int docs[4096];
int scratch_all[4096];
int logbuf[1024];
int logpos[8];
int hits;
int errors;
int agg[64];
int totals[8];
int tids[8];
barrier endphase($W);

void init_vhosts() {
  int i;
  for (i = 0; i < 256; i++) {
    vhosts[i] = (i * 31 + 7) & 255;
  }
}

void init_mime() {
  int i;
  for (i = 0; i < 128; i++) {
    mime[i] = (i * 13 + 3) & 127;
  }
}

void init_docs() {
  int i;
  for (i = 0; i < 4096; i++) {
    docs[i] = (i * 29) & 255;
  }
}

int next_request() {
  int r = -1;
  lock(qm);
  while (qh == qt && closing == 0) {
    cond_wait(qc, qm);
  }
  if (qh < qt) {
    r = reqq[qh & 511];
    qh++;
  }
  unlock(qm);
  return r;
}

void clear_scratch(int* s, int n) {
  int i;
  for (i = 0; i < n; i++) {
    s[i] = 0;
  }
}

int parse_request(int* s, int req) {
  int host = vhosts[req & 255];
  int kind = mime[(req >> 3) & 127];
  s[0] = host;
  s[1] = kind;
  s[2] = req & 4095;
  return s[2];
}

int build_response(int* s, int doc) {
  int sum = s[0] + s[1];
  int i;
  for (i = 0; i < 96; i++) {
    int d = docs[(doc + i) & 4095];
    sum = (sum + d) & 65535;
    s[4 + i] = d;
  }
  return sum;
}

void log_request(int id, int code) {
  int p = logpos[id] & 127;
  logbuf[id * 128 + p] = code;
  logpos[id] = logpos[id] + 1;
}

void serve_one(int id, int* s, int req) {
  clear_scratch(s, 128);
  int doc = parse_request(s, req);
  int body = build_response(s, doc);
  if ((body & 63) == 0) {
    errors += 1;
  }
  hits += 1;
  log_request(id, body & 255);
  output(body & 255);
}

void collect_hits() {
  int w;
  for (w = 0; w < workers; w++) {
    agg[w] = logpos[w];
  }
  agg[32] = 0;
  for (w = 0; w < workers; w++) {
    agg[32] = agg[32] + agg[w];
  }
}

void collect_errors() {
  int w;
  agg[33] = errors;
  agg[34] = 0;
  for (w = 0; w < workers; w++) {
    agg[34] = agg[34] + agg[w];
  }
}

void worker(int id) {
  int* s = &scratch_all[id * 512];
  int r = next_request();
  while (r >= 0) {
    serve_one(id, s, r);
    totals[id] = totals[id] + 1;
    r = next_request();
  }
  barrier_wait(endphase);
  if (id == 0) {
    collect_hits();
  }
  barrier_wait(endphase);
  if (id == workers - 1) {
    collect_errors();
  }
  barrier_wait(endphase);
}

void accept_loop() {
  int n = 12 * scale;
  int i;
  for (i = 0; i < n; i++) {
    int req = net_recv() & 4095;
    lock(qm);
    reqq[qt & 511] = req;
    qt++;
    reqq[qt & 511] = (req + 173) & 4095;
    qt++;
    reqq[qt & 511] = (req + 977) & 4095;
    qt++;
    reqq[qt & 511] = (req + 1511) & 4095;
    qt++;
    cond_broadcast(qc);
    unlock(qm);
  }
  lock(qm);
  closing = 1;
  cond_broadcast(qc);
  unlock(qm);
}

void report() {
  output(hits);
  output(errors);
  output(agg[32]);
  output(agg[34]);
  int w;
  int tot = 0;
  for (w = 0; w < workers; w++) {
    tot = tot + totals[w];
  }
  output(tot);
}

int main() {
  init_vhosts();
  init_mime();
  init_docs();
  int w;
  for (w = 0; w < workers; w++) {
    tids[w] = spawn(worker, w);
  }
  accept_loop();
  for (w = 0; w < workers; w++) {
    join(tids[w]);
  }
  report();
  return 0;
}
)";

//===----------------------------------------------------------------------===//
// ocean — barrier-phased grid stencil (scientific, SPLASH-2). Workers
// relax disjoint row bands but read one neighbor row on each side, so the
// ranged loop-locks of adjacent workers overlap at band boundaries —
// the loop-lock contention that dominates ocean's overhead in Fig. 7.
//===----------------------------------------------------------------------===//

const char *OceanSource = R"(
int workers = $W;
int scale = $S;
int iters = 6;
int grid[8192];
int newgrid[8192];
int diffs[8];
int tids[8];
mutex dm;
int totaldiff;
barrier step($W);

void init_grid(int total) {
  int i;
  for (i = 0; i < total; i++) {
    grid[i] = (i * 7 + 11) & 1023;
    newgrid[i] = 0;
  }
}

void relax(int* src, int* dst, int n, int id) {
  int d = 0;
  int i;
  for (i = 0; i < n; i++) {
    int up = src[i - 64];
    int here = src[i];
    int v = (up + here + here + here) >> 2;
    dst[i] = v;
    d = d + (v - here) * (v - here);
  }
  diffs[id] = d;
}

void reduce_diff(int id) {
  lock(dm);
  totaldiff = totaldiff + diffs[id];
  unlock(dm);
}

void worker(int id) {
  int band = 64 * scale;
  int lo = 64 + id * band;
  int t;
  for (t = 0; t < iters; t++) {
    relax(&grid[lo], &newgrid[lo], band, id);
    reduce_diff(id);
    barrier_wait(step);
    relax(&newgrid[lo], &grid[lo], band, id);
    barrier_wait(step);
  }
}

void check_grid(int total) {
  int i;
  int sum = 0;
  for (i = 0; i < total; i++) {
    sum = (sum + grid[i]) & 1048575;
  }
  output(sum);
  output(totaldiff & 1048575);
}

int main() {
  int band = 64 * scale;
  init_grid(64 + workers * band + 64);
  int w;
  for (w = 0; w < workers; w++) {
    tids[w] = spawn(worker, w);
  }
  for (w = 0; w < workers; w++) {
    join(tids[w]);
  }
  check_grid(64 + workers * band + 64);
  return 0;
}
)";

//===----------------------------------------------------------------------===//
// water — molecular dynamics (scientific, SPLASH-2). Barrier-separated
// per-step phases: per-partition position/velocity updates (affine, loop
// locks), an intra-molecular force loop that calls a helper — defeating
// the intra-procedural bounds analysis, so it falls back to fine-grained
// locks (paper §7.4) — and master-only energy/boundary phases that form
// the non-concurrent cliques of Figs. 2 and 3.
//===----------------------------------------------------------------------===//

const char *WaterSource = R"(
int workers = $W;
int scale = $S;
int npart = 96;
int pos[1024];
int vel[1024];
int force[1024];
int energy[8];
int tids[8];
barrier stepb($W);

int cube(int x) {
  return (x * x % 8191) * x % 8191;
}

void init_water(int total) {
  int i;
  for (i = 0; i < total; i++) {
    pos[i] = (i * 37 + 5) & 32767;
    vel[i] = (i * 11 + 3) & 255;
    force[i] = 0;
  }
}

void predic(int* p, int* v, int n) {
  int i;
  for (i = 0; i < n; i++) {
    p[i] = (p[i] + v[i]) & 32767;
  }
}

void intraf(int* f, int* p, int n) {
  int i;
  for (i = 0; i < n; i = i + 16) {
    f[i] = (f[i] + cube(p[i] & 63)) & 32767;
  }
}

void interf(int* f, int* p, int n) {
  int i;
  for (i = 0; i < n; i++) {
    int a = p[i];
    int b = p[n - 1 - i];
    f[i] = (f[i] + a * 3 + b) & 32767;
  }
}

void correc(int* v, int* f, int n) {
  int i;
  for (i = 0; i < n; i++) {
    v[i] = (v[i] + (f[i] >> 4)) & 255;
  }
}

void kineti(int total) {
  int e = 0;
  int i;
  for (i = 0; i < total; i++) {
    e = (e + vel[i] * vel[i]) & 1048575;
  }
  energy[0] = e;
}

void poteng(int total) {
  int e = 0;
  int i;
  for (i = 0; i < total; i++) {
    e = (e + pos[i]) & 1048575;
  }
  energy[1] = e;
}

void bndry(int total) {
  int i;
  for (i = 0; i < total; i++) {
    pos[i] = pos[i] & 16383;
  }
  for (i = 0; i < total; i++) {
    force[i] = (force[i] + (pos[i] >> 8)) & 32767;
  }
  energy[2] = energy[0] + energy[1];
}

void worker(int id) {
  int n = npart;
  int* p = &pos[id * 96];
  int* v = &vel[id * 96];
  int* f = &force[id * 96];
  int total = workers * npart;
  int s;
  int steps = scale;
  for (s = 0; s < steps; s++) {
    predic(p, v, n);
    barrier_wait(stepb);
    intraf(f, p, n);
    interf(f, p, n);
    barrier_wait(stepb);
    correc(v, f, n);
    barrier_wait(stepb);
    if (id == 0) {
      kineti(total);
      poteng(total);
    }
    barrier_wait(stepb);
    if (id == workers - 1) {
      bndry(total);
    }
    barrier_wait(stepb);
  }
}

void report(int total) {
  int i;
  int sum = 0;
  for (i = 0; i < total; i++) {
    sum = (sum + pos[i] + vel[i]) & 1048575;
  }
  output(sum);
  output(energy[0]);
  output(energy[1]);
  output(energy[2]);
}

int main() {
  int total = workers * npart;
  init_water(total);
  int w;
  for (w = 0; w < workers; w++) {
    tids[w] = spawn(worker, w);
  }
  for (w = 0; w < workers; w++) {
    join(tids[w]);
  }
  report(total);
  return 0;
}
)";

//===----------------------------------------------------------------------===//
// fft — spectral transform (scientific, SPLASH-2). Butterfly passes over
// disjoint chunks, then a transpose whose column-strided writes span the
// whole matrix: every worker's ranged loop-lock overlaps every other's,
// so the transpose serializes — fft's loop-lock contention in Fig. 7.
//===----------------------------------------------------------------------===//

const char *FftSource = R"(
int workers = $W;
int scale = $S;
int data[8192];
int tmp[8192];
int tids[8];
barrier fb($W);

void init_data(int total) {
  int seedv = input() & 1023;
  int i;
  for (i = 0; i < total; i++) {
    data[i] = (i * 97 + seedv) & 4095;
    tmp[i] = 0;
  }
}

void butterfly(int* d, int n, int stride) {
  int i;
  for (i = 0; i < n; i++) {
    int a = d[i];
    int b = d[i + stride];
    d[i] = (a + b) & 4095;
    d[i + stride] = (a - b) & 4095;
  }
}

void transpose_band(int* src, int* dstbase, int rows, int row0) {
  int r;
  for (r = 0; r < rows; r++) {
    int c;
    for (c = 0; c < 64; c++) {
      dstbase[c * 64 + row0 + r] = src[r * 64 + c];
    }
  }
}

void scale_band(int* d, int n) {
  int i;
  for (i = 0; i < n; i++) {
    d[i] = (d[i] * 3 + 1) & 4095;
  }
}

void worker(int id) {
  int rows = scale;
  int chunk = rows * 64;
  int lo = id * chunk;
  int p;
  for (p = 0; p < 3; p++) {
    butterfly(&data[lo], chunk >> 1, chunk >> 1);
    barrier_wait(fb);
  }
  transpose_band(&data[lo], &tmp[0], rows, id * rows);
  barrier_wait(fb);
  scale_band(&tmp[lo], chunk);
  barrier_wait(fb);
}

void check(int total) {
  int i;
  int sum = 0;
  for (i = 0; i < total; i++) {
    sum = (sum + tmp[i]) & 1048575;
  }
  output(sum);
}

int main() {
  int rows = scale;
  int total = workers * rows * 64;
  init_data(total);
  int w;
  for (w = 0; w < workers; w++) {
    tids[w] = spawn(worker, w);
  }
  for (w = 0; w < workers; w++) {
    join(tids[w]);
  }
  check(total);
  return 0;
}
)";

//===----------------------------------------------------------------------===//
// radix — radix sort (scientific, SPLASH-2), the paper's Figure 4.
// Per-worker rank arrays carved out of one shared array: the zeroing
// loop's bounds are derivable (ranged loop-lock, fully parallel); the
// key-histogram loop's target depends on key values (underivable bounds,
// small body, unranged loop-lock); a master prefix-sum phase between
// passes.
//===----------------------------------------------------------------------===//

const char *RadixSource = R"(
int workers = $W;
int scale = $S;
int keys_from[4096];
int keys_to[4096];
int rank_all[2048];
int global_rank[256];
int offsets[2048];
int tids[8];
mutex rm;
barrier rb($W);

void init_keys(int total) {
  int i;
  for (i = 0; i < total; i++) {
    keys_from[i] = input() & 65535;
  }
}

void zero_rank(int* rank, int n) {
  int j;
  for (j = 0; j < n; j++) {
    rank[j] = 0;
  }
}

void count_keys(int* rank, int* key, int n, int shift) {
  int j;
  for (j = 0; j < n; j++) {
    int my_key = (key[j] >> shift) & 255;
    rank[my_key] = rank[my_key] + 1;
  }
}

void merge_rank(int* rank) {
  int j;
  lock(rm);
  for (j = 0; j < 256; j++) {
    global_rank[j] = global_rank[j] + rank[j];
  }
  unlock(rm);
}

void prefix_sum() {
  int j;
  int acc = 0;
  for (j = 0; j < 256; j++) {
    int c = global_rank[j];
    offsets[j] = acc;
    acc = acc + c;
    global_rank[j] = 0;
  }
}

void copy_back(int* dst, int* src, int n) {
  int i;
  for (i = 0; i < n; i++) {
    dst[i] = src[i];
  }
}

void permute(int* key, int n, int shift, int id) {
  int j;
  for (j = 0; j < n; j++) {
    int my_key = (key[j] >> shift) & 255;
    int slot = offsets[my_key] + (id * 4 + ((j * 13) & 3));
    keys_to[slot & 4095] = key[j];
  }
}

void worker(int id) {
  int n = 64 * scale;
  int* key = &keys_from[id * n];
  int* rank = &rank_all[id * 256];
  int pass;
  int shift = 0;
  for (pass = 0; pass < 2; pass++) {
    zero_rank(rank, 256);
    count_keys(rank, key, n, shift);
    merge_rank(rank);
    barrier_wait(rb);
    if (id == 0) {
      prefix_sum();
    }
    barrier_wait(rb);
    permute(key, n, shift, id);
    barrier_wait(rb);
    copy_back(key, &keys_to[id * n], n);
    barrier_wait(rb);
    shift = shift + 8;
  }
}

void verify(int total) {
  int i;
  int sum = 0;
  for (i = 0; i < total; i++) {
    sum = (sum + keys_from[i]) & 1048575;
  }
  output(sum);
}

int main() {
  int total = workers * 64 * scale;
  init_keys(total);
  int w;
  for (w = 0; w < workers; w++) {
    tids[w] = spawn(worker, w);
  }
  for (w = 0; w < workers; w++) {
    join(tids[w]);
  }
  verify(total);
  return 0;
}
)";

struct WorkloadEntry {
  WorkloadInfo Info;
  const char *Template;
  WorkloadParams Profile;
  unsigned EvalScale;
};

const WorkloadEntry Entries[] = {
    {{WorkloadKind::Aget, "aget", "desktop",
      "2 workers, 192-word chunks from local network",
      "4/8 workers, 768-word chunks from remote network"},
     AgetSource, {2, 2}, 8},
    {{WorkloadKind::Pfscan, "pfscan", "desktop",
      "2 workers, 12 small files", "4/8 workers, 12 large files"},
     PfscanSource, {2, 2}, 10},
    {{WorkloadKind::Pbzip2, "pbzip2", "desktop",
      "2 workers, 16 x 128-word blocks", "4/8 workers, 16 x 512-word blocks"},
     Pbzip2Source, {2, 2}, 8},
    {{WorkloadKind::Knot, "knot", "server",
      "2 workers, 32 requests", "4/8 workers, 160 requests"},
     KnotSource, {2, 2}, 10},
    {{WorkloadKind::Apache, "apache", "server",
      "2 workers, 48 requests", "4/8 workers, 240 requests"},
     ApacheSource, {2, 2}, 10},
    {{WorkloadKind::Ocean, "ocean", "scientific",
      "2 workers, 32-row bands, 6 iterations",
      "4/8 workers, 96-row bands, 6 iterations"},
     OceanSource, {2, 2}, 8},
    {{WorkloadKind::Water, "water", "scientific",
      "2 workers, 96 molecules/worker, 3 steps",
      "4/8 workers, 96 molecules/worker, 8 steps"},
     WaterSource, {2, 3}, 8},
    {{WorkloadKind::Fft, "fft", "scientific",
      "2 workers, 16-row bands", "4/8 workers, 64-row bands"},
     FftSource, {2, 2}, 8},
    {{WorkloadKind::Radix, "radix", "scientific",
      "2 workers, 256 keys/worker, 2 passes",
      "4/8 workers, 768 keys/worker, 2 passes"},
     RadixSource, {2, 2}, 6},
};

const WorkloadEntry &entry(WorkloadKind Kind) {
  for (const WorkloadEntry &E : Entries)
    if (E.Info.Kind == Kind)
      return E;
  assert(false && "unknown workload");
  return Entries[0];
}

} // namespace

const std::vector<WorkloadKind> &chimera::workloads::allWorkloads() {
  static const std::vector<WorkloadKind> All = {
      WorkloadKind::Aget,   WorkloadKind::Pfscan, WorkloadKind::Pbzip2,
      WorkloadKind::Knot,   WorkloadKind::Apache, WorkloadKind::Ocean,
      WorkloadKind::Water,  WorkloadKind::Fft,    WorkloadKind::Radix,
  };
  return All;
}

const WorkloadInfo &chimera::workloads::workloadInfo(WorkloadKind Kind) {
  return entry(Kind).Info;
}

std::string chimera::workloads::workloadSource(WorkloadKind Kind,
                                               const WorkloadParams &P) {
  return substitute(entry(Kind).Template, P);
}

WorkloadParams chimera::workloads::profileParams(WorkloadKind Kind) {
  return entry(Kind).Profile;
}

WorkloadParams chimera::workloads::evalParams(WorkloadKind Kind,
                                              unsigned Workers) {
  WorkloadParams P;
  P.Workers = Workers;
  P.Scale = entry(Kind).EvalScale;
  return P;
}

core::PipelineRequest
chimera::workloads::pipelineRequest(WorkloadKind Kind, unsigned Workers,
                                    core::PipelineConfig Config) {
  Config.Name = workloadInfo(Kind).Name;
  Config.NumCores = 8;
  Config.ProfileRuns = 20;
  Config.ProfileCores = 8;
  core::PipelineRequest Request;
  Request.Eval = workloadSource(Kind, evalParams(Kind, Workers));
  Request.Profile = workloadSource(Kind, profileParams(Kind));
  Request.Tag = workloadInfo(Kind).Name;
  Request.Config = std::move(Config);
  return Request;
}

support::Expected<std::unique_ptr<core::ChimeraPipeline>>
chimera::workloads::buildPipelineEx(WorkloadKind Kind, unsigned Workers,
                                    core::PipelineConfig Config) {
  return core::ChimeraPipeline::create(
      pipelineRequest(Kind, Workers, std::move(Config)));
}

unsigned chimera::workloads::workloadLineCount(WorkloadKind Kind) {
  unsigned Lines = 0;
  for (const char *C = entry(Kind).Template; *C; ++C)
    if (*C == '\n')
      ++Lines;
  return Lines;
}
