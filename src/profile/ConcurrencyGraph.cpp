//===- profile/ConcurrencyGraph.cpp - Non-concurrency graph ----------------===//

#include "profile/ConcurrencyGraph.h"

#include <algorithm>

using namespace chimera;
using namespace chimera::profile;

ConcurrencyGraph::ConcurrencyGraph(
    const std::vector<uint32_t> &RacyFunctions, const ProfileData &Profile)
    : Functions(RacyFunctions), Profile(Profile) {
  std::sort(Functions.begin(), Functions.end());
  Functions.erase(std::unique(Functions.begin(), Functions.end()),
                  Functions.end());
  for (uint32_t I = 0; I != Functions.size(); ++I)
    NodeIndex[Functions[I]] = I;

  G.resize(numNodes());
  for (uint32_t I = 0; I != numNodes(); ++I)
    for (uint32_t J = I + 1; J != numNodes(); ++J)
      if (!Profile.concurrent(Functions[I], Functions[J]))
        G.addEdge(I, J);
}

uint32_t ConcurrencyGraph::nodeOf(uint32_t FuncId) const {
  auto It = NodeIndex.find(FuncId);
  return It == NodeIndex.end() ? ~0u : It->second;
}

bool ConcurrencyGraph::nonConcurrent(uint32_t FuncA, uint32_t FuncB) const {
  return !Profile.concurrent(FuncA, FuncB);
}

bool ConcurrencyGraph::selfNonConcurrent(uint32_t FuncId) const {
  return !Profile.concurrent(FuncId, FuncId);
}
