//===- profile/Profiler.h - Concurrent-function profiling -------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chimera's offline profiler (paper §4): it observes executions over a
/// set of representative inputs and records which pairs of functions
/// were ever active concurrently in different threads (a function is
/// "active" while it is anywhere on a thread's call stack). Racy pairs
/// whose functions were never concurrent in any profile run are
/// candidates for coarse function-granularity weak-locks.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_PROFILE_PROFILER_H
#define CHIMERA_PROFILE_PROFILER_H

#include "runtime/Observer.h"

#include <cstdint>
#include <set>
#include <vector>

namespace chimera {
namespace profile {

/// Aggregated profile knowledge across runs.
struct ProfileData {
  /// Unordered function pairs (First <= Second) observed concurrent.
  std::set<std::pair<uint32_t, uint32_t>> ConcurrentPairs;

  bool concurrent(uint32_t A, uint32_t B) const {
    if (A > B)
      std::swap(A, B);
    return ConcurrentPairs.count({A, B}) != 0;
  }

  void merge(const ProfileData &Other) {
    ConcurrentPairs.insert(Other.ConcurrentPairs.begin(),
                           Other.ConcurrentPairs.end());
  }

  size_t numPairs() const { return ConcurrentPairs.size(); }
};

/// Observer for a single profiled execution. Attach to a Machine, run,
/// then call finish() to obtain the run's ProfileData.
class ConcurrencyProfiler : public rt::ExecutionObserver {
public:
  void onThreadStart(uint32_t Tid, uint32_t ParentTid, uint32_t FuncId,
                     uint64_t Now) override;
  void onFunctionEnter(uint32_t Tid, uint32_t FuncId, uint64_t Now) override;
  void onFunctionExit(uint32_t Tid, uint32_t FuncId, uint64_t Now) override;

  /// Post-processes the event stream into concurrency facts.
  ProfileData finish() const;

private:
  struct Event {
    uint64_t Time = 0;
    uint64_t Seq = 0; ///< Tie-break for equal simulated times.
    uint32_t Tid = 0;
    uint32_t FuncId = 0;
    bool IsEnter = false;
  };
  std::vector<Event> Events;
  uint64_t NextSeq = 0;
};

} // namespace profile
} // namespace chimera

#endif // CHIMERA_PROFILE_PROFILER_H
