//===- profile/ConcurrencyGraph.h - Non-concurrency graph -------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The graph of paper Figure 3(c): nodes are the functions that contain
/// at least one potentially racy instruction; an edge connects two
/// functions never observed concurrent in any profile run (plus a
/// self-concurrency fact per function). CliqueAnalysis covers this graph
/// to assign shared function-locks.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_PROFILE_CONCURRENCYGRAPH_H
#define CHIMERA_PROFILE_CONCURRENCYGRAPH_H

#include "profile/Profiler.h"
#include "support/Graph.h"

#include <cstdint>
#include <map>
#include <vector>

namespace chimera {
namespace profile {

class ConcurrencyGraph {
public:
  /// \p RacyFunctions: module function ids of functions containing races.
  ConcurrencyGraph(const std::vector<uint32_t> &RacyFunctions,
                   const ProfileData &Profile);

  /// Node index of a function; ~0u if the function is not racy.
  uint32_t nodeOf(uint32_t FuncId) const;
  uint32_t funcOf(uint32_t Node) const { return Functions[Node]; }
  uint32_t numNodes() const {
    return static_cast<uint32_t>(Functions.size());
  }

  /// True when the two racy functions were never concurrent (the solid
  /// edges of Figure 3).
  bool nonConcurrent(uint32_t FuncA, uint32_t FuncB) const;

  /// True when two instances of \p FuncId were never concurrent.
  bool selfNonConcurrent(uint32_t FuncId) const;

  const UndirectedGraph &graph() const { return G; }

private:
  std::vector<uint32_t> Functions; ///< Sorted function ids (node order).
  std::map<uint32_t, uint32_t> NodeIndex;
  const ProfileData &Profile;
  UndirectedGraph G;
};

} // namespace profile
} // namespace chimera

#endif // CHIMERA_PROFILE_CONCURRENCYGRAPH_H
