//===- profile/CliqueAnalysis.h - Function-lock assignment ------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Clique analysis (paper §4.2): maximal cliques of the non-concurrency
/// graph share one function-lock, so a function involved in several
/// non-concurrent race pairs acquires one lock instead of many. A racy
/// function pair belonging to several cliques is assigned greedily to
/// the clique covering the most pairs.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_PROFILE_CLIQUEANALYSIS_H
#define CHIMERA_PROFILE_CLIQUEANALYSIS_H

#include "profile/ConcurrencyGraph.h"

#include <cstdint>
#include <set>
#include <vector>

namespace chimera {
namespace profile {

/// One shared function-lock and what it covers.
struct FunctionLockPlan {
  /// Functions of the clique (module function ids).
  std::vector<uint32_t> CliqueFunctions;
  /// Functions that actually acquire the lock (endpoints of covered
  /// pairs).
  std::vector<uint32_t> Acquirers;
  /// Racy function pairs (First <= Second) this lock covers.
  std::vector<std::pair<uint32_t, uint32_t>> CoveredPairs;
};

struct CliqueResult {
  std::vector<FunctionLockPlan> Locks;
  /// Racy function pairs covered by some function-lock.
  std::set<std::pair<uint32_t, uint32_t>> Covered;
  /// Racy function pairs that remain (concurrent functions).
  std::vector<std::pair<uint32_t, uint32_t>> Uncovered;
};

/// Assigns function-locks for \p RacyFunctionPairs (pairs may have equal
/// elements: a function racing with another instance of itself).
CliqueResult assignFunctionLocks(
    const std::vector<std::pair<uint32_t, uint32_t>> &RacyFunctionPairs,
    const ConcurrencyGraph &CG);

} // namespace profile
} // namespace chimera

#endif // CHIMERA_PROFILE_CLIQUEANALYSIS_H
