//===- profile/Profiler.cpp - Concurrent-function profiling ----------------===//

#include "profile/Profiler.h"

#include <algorithm>
#include <map>

using namespace chimera;
using namespace chimera::profile;

void ConcurrencyProfiler::onThreadStart(uint32_t, uint32_t, uint32_t,
                                        uint64_t) {
  // The paired onFunctionEnter records the root activation.
}

void ConcurrencyProfiler::onFunctionEnter(uint32_t Tid, uint32_t FuncId,
                                          uint64_t Now) {
  Events.push_back({Now, NextSeq++, Tid, FuncId, true});
}

void ConcurrencyProfiler::onFunctionExit(uint32_t Tid, uint32_t FuncId,
                                         uint64_t Now) {
  Events.push_back({Now, NextSeq++, Tid, FuncId, false});
}

ProfileData ConcurrencyProfiler::finish() const {
  std::vector<Event> Sorted = Events;
  std::sort(Sorted.begin(), Sorted.end(),
            [](const Event &A, const Event &B) {
              return std::tie(A.Time, A.Seq) < std::tie(B.Time, B.Seq);
            });

  ProfileData Data;
  // Active multiset per thread (a function can be on a stack twice via
  // recursion).
  std::map<uint32_t, std::map<uint32_t, unsigned>> Active;

  for (const Event &E : Sorted) {
    if (E.IsEnter) {
      // Every function currently active on another thread overlaps E.
      for (const auto &[OtherTid, Funcs] : Active) {
        if (OtherTid == E.Tid)
          continue;
        for (const auto &[Func, Count] : Funcs) {
          if (Count == 0)
            continue;
          uint32_t A = std::min(E.FuncId, Func);
          uint32_t B = std::max(E.FuncId, Func);
          Data.ConcurrentPairs.insert({A, B});
        }
      }
      ++Active[E.Tid][E.FuncId];
    } else {
      auto &Funcs = Active[E.Tid];
      auto It = Funcs.find(E.FuncId);
      if (It != Funcs.end() && It->second > 0)
        --It->second;
    }
  }
  return Data;
}
