//===- profile/CliqueAnalysis.cpp - Function-lock assignment ---------------===//

#include "profile/CliqueAnalysis.h"

#include <algorithm>
#include <map>

using namespace chimera;
using namespace chimera::profile;

CliqueResult chimera::profile::assignFunctionLocks(
    const std::vector<std::pair<uint32_t, uint32_t>> &RacyFunctionPairs,
    const ConcurrencyGraph &CG) {
  CliqueResult Result;

  std::vector<std::vector<unsigned>> Cliques =
      greedyMaximalCliques(CG.graph());

  // Isolated racy functions (no non-concurrency edge) still form
  // singleton cliques if they are non-concurrent with themselves — a
  // function-lock serializes their instances.
  std::vector<bool> InSomeClique(CG.numNodes(), false);
  for (const auto &Clique : Cliques)
    for (unsigned Node : Clique)
      InSomeClique[Node] = true;
  for (unsigned Node = 0; Node != CG.numNodes(); ++Node)
    if (!InSomeClique[Node])
      Cliques.push_back({Node});

  // Candidate cliques per pair.
  struct PairInfo {
    std::pair<uint32_t, uint32_t> Pair;
    std::vector<size_t> Candidates;
  };
  std::vector<PairInfo> Pairs;
  std::vector<size_t> CandidateCount(Cliques.size(), 0);

  for (auto [A, B] : RacyFunctionPairs) {
    if (A > B)
      std::swap(A, B);
    bool Coverable =
        A == B ? CG.selfNonConcurrent(A) : CG.nonConcurrent(A, B);
    if (!Coverable) {
      Result.Uncovered.push_back({A, B});
      continue;
    }
    uint32_t NodeA = CG.nodeOf(A), NodeB = CG.nodeOf(B);
    PairInfo Info;
    Info.Pair = {A, B};
    for (size_t C = 0; C != Cliques.size(); ++C) {
      const auto &Clique = Cliques[C];
      bool HasA = std::binary_search(Clique.begin(), Clique.end(), NodeA);
      bool HasB = std::binary_search(Clique.begin(), Clique.end(), NodeB);
      if (HasA && HasB) {
        Info.Candidates.push_back(C);
        ++CandidateCount[C];
      }
    }
    if (Info.Candidates.empty()) {
      // Non-concurrent but no common clique (can happen for self-pairs
      // whose node sits in cliques not listed); fall back to uncovered.
      Result.Uncovered.push_back({A, B});
      continue;
    }
    Pairs.push_back(std::move(Info));
  }

  // Greedy: each pair goes to its candidate clique with the most
  // candidate pairs (paper §4.2's tie-break).
  std::map<size_t, FunctionLockPlan> Plans;
  for (const PairInfo &Info : Pairs) {
    size_t Best = Info.Candidates[0];
    for (size_t C : Info.Candidates)
      if (CandidateCount[C] > CandidateCount[Best])
        Best = C;

    FunctionLockPlan &Plan = Plans[Best];
    if (Plan.CliqueFunctions.empty())
      for (unsigned Node : Cliques[Best])
        Plan.CliqueFunctions.push_back(CG.funcOf(Node));
    Plan.CoveredPairs.push_back(Info.Pair);
    Plan.Acquirers.push_back(Info.Pair.first);
    Plan.Acquirers.push_back(Info.Pair.second);
    Result.Covered.insert(Info.Pair);
  }

  for (auto &[CliqueIdx, Plan] : Plans) {
    std::sort(Plan.Acquirers.begin(), Plan.Acquirers.end());
    Plan.Acquirers.erase(
        std::unique(Plan.Acquirers.begin(), Plan.Acquirers.end()),
        Plan.Acquirers.end());
    Result.Locks.push_back(std::move(Plan));
  }
  return Result;
}
