//===- bounds/FourierMotzkin.cpp - Variable elimination --------------------===//

#include "bounds/FourierMotzkin.h"

using namespace chimera;
using namespace chimera::bounds;

BoundsResult chimera::bounds::eliminate(const ConstraintSystem &System,
                                        const AffineExpr &Target) {
  BoundsResult Result;
  Result.Min = Target;
  Result.Max = Target;

  // Innermost-first: each substitution may introduce outer variables,
  // which later rounds eliminate in turn.
  for (const VarConstraint &V : System.variables()) {
    if (!Result.valid())
      return Result;

    int64_t MinCoeff = Result.Min.coeff(V.Var);
    if (MinCoeff != 0)
      Result.Min = Result.Min.substitute(
          V.Var, MinCoeff > 0 ? V.Lower : V.Upper);

    int64_t MaxCoeff = Result.Max.coeff(V.Var);
    if (MaxCoeff != 0)
      Result.Max = Result.Max.substitute(
          V.Var, MaxCoeff > 0 ? V.Upper : V.Lower);
  }

  // Any residual system variable (e.g. introduced by an outer bound that
  // references an inner variable, which would be malformed) invalidates
  // the result.
  for (const VarConstraint &V : System.variables()) {
    if (Result.Min.coeff(V.Var) != 0 || Result.Max.coeff(V.Var) != 0)
      return {AffineExpr::invalid(), AffineExpr::invalid()};
  }
  return Result;
}
