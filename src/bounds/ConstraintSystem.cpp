//===- bounds/ConstraintSystem.cpp - Induction-variable constraints --------===//

#include "bounds/ConstraintSystem.h"

using namespace chimera;
using namespace chimera::bounds;

bool ConstraintSystem::hasVariable(ir::Reg R) const {
  for (const VarConstraint &V : Vars)
    if (V.Var == R)
      return true;
  return false;
}

std::string ConstraintSystem::str() const {
  std::string Out;
  for (const VarConstraint &V : Vars)
    Out += V.Lower.str() + " <= r" + std::to_string(V.Var) +
           " <= " + V.Upper.str() + "\n";
  return Out;
}
