//===- bounds/FourierMotzkin.h - Variable elimination -----------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fourier-Motzkin-style elimination of induction variables from an
/// affine target expression: each variable is replaced by its lower or
/// upper bound according to its coefficient's sign, innermost-first, so
/// inner bounds that mention outer variables are themselves eliminated
/// in later rounds. The result is the exact min/max of the target over
/// the box, expressed over loop-invariant registers only.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_BOUNDS_FOURIERMOTZKIN_H
#define CHIMERA_BOUNDS_FOURIERMOTZKIN_H

#include "bounds/ConstraintSystem.h"

namespace chimera {
namespace bounds {

/// Min/max of an affine target over a constraint box.
struct BoundsResult {
  AffineExpr Min;
  AffineExpr Max;
  bool valid() const { return Min.valid() && Max.valid(); }
};

/// Eliminates every system variable from \p Target. Returns invalid
/// expressions when any needed bound is itself invalid or the target is
/// not affine.
BoundsResult eliminate(const ConstraintSystem &System,
                       const AffineExpr &Target);

} // namespace bounds
} // namespace chimera

#endif // CHIMERA_BOUNDS_FOURIERMOTZKIN_H
