//===- bounds/BoundsAnalysis.h - Symbolic address bounds --------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic address-bounds analysis for racy loop accesses (paper §5,
/// after Rugina & Rinard). For a memory access inside a loop nest, it
/// derives affine lower/upper bounds — over values readable at the
/// target loop's preheader — for the word address the access can touch
/// in any iteration. The instrumenter materializes the bounds in the
/// preheader and guards the loop with a ranged weak-lock.
///
/// Register atoms come in two flavors: a *system variable* is a loop
/// induction register being eliminated; a *preheader atom* (register id
/// offset by PreheaderAtomBase) stands for "the value register r holds
/// when the target loop's preheader executes". Final bounds contain only
/// preheader atoms.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_BOUNDS_BOUNDSANALYSIS_H
#define CHIMERA_BOUNDS_BOUNDSANALYSIS_H

#include "analysis/LoopInfo.h"
#include "bounds/FourierMotzkin.h"
#include "ir/Module.h"

#include <map>
#include <vector>

namespace chimera {
namespace bounds {

/// Result of bounding one access over one loop.
struct AddressBounds {
  bool Valid = false;
  /// Inclusive word-address bounds, affine over preheader atoms.
  AffineExpr Lo;
  AffineExpr Hi;
};

class BoundsAnalysis {
public:
  /// Atom encoding: preheaderAtom(r) denotes r's value at the target
  /// loop's preheader.
  static constexpr ir::Reg PreheaderAtomBase = 1u << 20;
  static ir::Reg preheaderAtom(ir::Reg R) { return R + PreheaderAtomBase; }
  static bool isPreheaderAtom(ir::Reg R) { return R >= PreheaderAtomBase; }
  static ir::Reg stripAtom(ir::Reg R) { return R - PreheaderAtomBase; }

  BoundsAnalysis(const ir::Module &M, const ir::Function &Func,
                 const analysis::LoopInfo &LI);

  /// Bounds of the address operand of access \p Ident over all
  /// iterations of \p L (which must contain the access).
  AddressBounds addressBounds(const analysis::Loop *L,
                              ir::InstId Ident) const;

  /// Detected induction variable of \p L, if its header matches the
  /// canonical counted-loop shape. Exposed for tests.
  struct Induction {
    bool Found = false;
    ir::Reg Var = ir::NoReg;
    int64_t Step = 0;
    AffineExpr Lower; ///< Over preheader atoms / outer induction vars.
    AffineExpr Upper;
  };
  Induction analyzeInduction(const analysis::Loop *L) const;

private:
  struct DefSite {
    ir::BlockId Block = ir::NoBlock;
    uint32_t Index = 0;
    const ir::Instruction *Inst = nullptr;
  };

  bool definedIn(const analysis::Loop *L, ir::Reg R) const;
  /// Expands \p R into an affine expression. \p Target is the lock's
  /// loop (invariance frame); \p InductionVars maps induction registers
  /// (treated as raw system variables) of the loop chain.
  AffineExpr exprOf(ir::Reg R, const analysis::Loop *Target,
                    const std::vector<ir::Reg> &InductionVars,
                    unsigned Depth) const;
  /// Value of \p R when \p L's preheader runs, by expanding the latest
  /// dominating definition (used for inner-loop induction starts).
  AffineExpr initValueAt(ir::Reg R, const analysis::Loop *L,
                         const analysis::Loop *Target,
                         const std::vector<ir::Reg> &InductionVars) const;

  const ir::Module &M;
  const ir::Function &Func;
  const analysis::LoopInfo &LI;
  std::map<ir::Reg, std::vector<DefSite>> Defs;
};

} // namespace bounds
} // namespace chimera

#endif // CHIMERA_BOUNDS_BOUNDSANALYSIS_H
