//===- bounds/ConstraintSystem.h - Induction-variable constraints *- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A constraint system over loop induction variables: each variable is
/// boxed by affine lower/upper bounds that may reference *outer*
/// induction variables (nested loops) and loop-invariant registers. This
/// is the linear-program the paper hands to lpsolve (§6.1); we solve it
/// exactly with Fourier-Motzkin-style elimination instead.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_BOUNDS_CONSTRAINTSYSTEM_H
#define CHIMERA_BOUNDS_CONSTRAINTSYSTEM_H

#include "bounds/SymbolicExpr.h"

#include <string>
#include <vector>

namespace chimera {
namespace bounds {

/// Box constraints for one induction variable.
struct VarConstraint {
  ir::Reg Var = ir::NoReg;
  AffineExpr Lower; ///< Var >= Lower.
  AffineExpr Upper; ///< Var <= Upper.
};

/// Induction variables ordered innermost-first; a variable's bounds may
/// reference any *later* (outer) variable or invariants, never earlier
/// ones.
class ConstraintSystem {
public:
  void addVariable(ir::Reg Var, AffineExpr Lower, AffineExpr Upper) {
    Vars.push_back({Var, std::move(Lower), std::move(Upper)});
  }

  const std::vector<VarConstraint> &variables() const { return Vars; }
  bool hasVariable(ir::Reg R) const;

  std::string str() const;

private:
  std::vector<VarConstraint> Vars;
};

} // namespace bounds
} // namespace chimera

#endif // CHIMERA_BOUNDS_CONSTRAINTSYSTEM_H
