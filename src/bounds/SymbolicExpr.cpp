//===- bounds/SymbolicExpr.cpp - Affine symbolic expressions ---------------===//

#include "bounds/SymbolicExpr.h"

#include <cassert>

using namespace chimera;
using namespace chimera::bounds;

AffineExpr AffineExpr::invalid() {
  AffineExpr E;
  E.Valid = false;
  return E;
}

AffineExpr AffineExpr::constant(int64_t Value) {
  AffineExpr E;
  E.Const = Value;
  return E;
}

AffineExpr AffineExpr::reg(ir::Reg R) {
  AffineExpr E;
  E.Coeffs[R] = 1;
  return E;
}

int64_t AffineExpr::coeff(ir::Reg R) const {
  auto It = Coeffs.find(R);
  return It == Coeffs.end() ? 0 : It->second;
}

void AffineExpr::normalize() {
  for (auto It = Coeffs.begin(); It != Coeffs.end();) {
    if (It->second == 0)
      It = Coeffs.erase(It);
    else
      ++It;
  }
}

AffineExpr AffineExpr::add(const AffineExpr &O) const {
  if (!Valid || !O.Valid)
    return invalid();
  AffineExpr E = *this;
  E.Const += O.Const;
  for (const auto &[R, C] : O.Coeffs)
    E.Coeffs[R] += C;
  E.normalize();
  return E;
}

AffineExpr AffineExpr::sub(const AffineExpr &O) const {
  return add(O.negate());
}

AffineExpr AffineExpr::negate() const {
  if (!Valid)
    return invalid();
  AffineExpr E = *this;
  E.Const = -E.Const;
  for (auto &[R, C] : E.Coeffs)
    C = -C;
  return E;
}

AffineExpr AffineExpr::mulConst(int64_t Factor) const {
  if (!Valid)
    return invalid();
  AffineExpr E = *this;
  E.Const *= Factor;
  for (auto &[R, C] : E.Coeffs)
    C *= Factor;
  E.normalize();
  return E;
}

AffineExpr AffineExpr::mul(const AffineExpr &O) const {
  if (!Valid || !O.Valid)
    return invalid();
  if (isConstant())
    return O.mulConst(Const);
  if (O.isConstant())
    return mulConst(O.Const);
  return invalid(); // Non-linear.
}

AffineExpr AffineExpr::addConst(int64_t Value) const {
  if (!Valid)
    return invalid();
  AffineExpr E = *this;
  E.Const += Value;
  return E;
}

AffineExpr AffineExpr::substitute(ir::Reg R,
                                  const AffineExpr &Replacement) const {
  if (!Valid || !Replacement.Valid)
    return invalid();
  int64_t C = coeff(R);
  if (C == 0)
    return *this;
  AffineExpr Without = *this;
  Without.Coeffs.erase(R);
  return Without.add(Replacement.mulConst(C));
}

int64_t AffineExpr::evaluate(const std::map<ir::Reg, int64_t> &Values) const {
  assert(Valid && "evaluating an invalid expression");
  int64_t Result = Const;
  for (const auto &[R, C] : Coeffs) {
    auto It = Values.find(R);
    assert(It != Values.end() && "missing register value");
    Result += C * It->second;
  }
  return Result;
}

std::string AffineExpr::str() const {
  if (!Valid)
    return "<invalid>";
  std::string Out = std::to_string(Const);
  for (const auto &[R, C] : Coeffs) {
    Out += C >= 0 ? " + " : " - ";
    int64_t Abs = C >= 0 ? C : -C;
    if (Abs != 1)
      Out += std::to_string(Abs) + "*";
    Out += "r" + std::to_string(R);
  }
  return Out;
}
