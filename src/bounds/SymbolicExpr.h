//===- bounds/SymbolicExpr.h - Affine symbolic expressions ------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Affine expressions over virtual registers: c0 + Σ ci·r_i. These are
/// the symbolic values the bounds analysis (paper §5) manipulates. A
/// register atom stands for "the value this register holds at the loop
/// preheader", so a bound expression can be materialized as IR that the
/// instrumenter hoists into the preheader.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_BOUNDS_SYMBOLICEXPR_H
#define CHIMERA_BOUNDS_SYMBOLICEXPR_H

#include "ir/Instruction.h"

#include <cstdint>
#include <map>
#include <string>

namespace chimera {
namespace bounds {

/// An affine expression over registers, or the lattice top "not affine".
class AffineExpr {
public:
  /// The invalid (non-affine / unknown) expression.
  static AffineExpr invalid();
  static AffineExpr constant(int64_t Value);
  static AffineExpr reg(ir::Reg R);

  bool valid() const { return Valid; }
  bool isConstant() const { return Valid && Coeffs.empty(); }
  int64_t constantValue() const { return Const; }

  int64_t coeff(ir::Reg R) const;
  const std::map<ir::Reg, int64_t> &coeffs() const { return Coeffs; }

  AffineExpr add(const AffineExpr &O) const;
  AffineExpr sub(const AffineExpr &O) const;
  AffineExpr negate() const;
  AffineExpr mulConst(int64_t Factor) const;
  /// Product; valid only when at least one side is constant.
  AffineExpr mul(const AffineExpr &O) const;
  AffineExpr addConst(int64_t Value) const;

  /// Replaces register \p R with \p Replacement (used by the
  /// Fourier-Motzkin elimination step).
  AffineExpr substitute(ir::Reg R, const AffineExpr &Replacement) const;

  /// True when every register mentioned satisfies \p Pred.
  template <typename Predicate> bool usesOnly(Predicate Pred) const {
    if (!Valid)
      return false;
    for (const auto &[R, C] : Coeffs)
      if (C != 0 && !Pred(R))
        return false;
    return true;
  }

  /// Evaluates given concrete register values (tests).
  int64_t evaluate(const std::map<ir::Reg, int64_t> &Values) const;

  bool operator==(const AffineExpr &O) const {
    return Valid == O.Valid && Const == O.Const && Coeffs == O.Coeffs;
  }

  std::string str() const;

private:
  bool Valid = true;
  int64_t Const = 0;
  std::map<ir::Reg, int64_t> Coeffs; ///< Zero coefficients are erased.

  void normalize();
};

} // namespace bounds
} // namespace chimera

#endif // CHIMERA_BOUNDS_SYMBOLICEXPR_H
