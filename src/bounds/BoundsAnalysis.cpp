//===- bounds/BoundsAnalysis.cpp - Symbolic address bounds -----------------===//

#include "bounds/BoundsAnalysis.h"

#include "analysis/Dominators.h"

#include <algorithm>
#include <cassert>
#include <functional>

using namespace chimera;
using namespace chimera::bounds;
using namespace chimera::ir;
using analysis::Loop;

BoundsAnalysis::BoundsAnalysis(const Module &M, const Function &Func,
                               const analysis::LoopInfo &LI)
    : M(M), Func(Func), LI(LI) {
  for (BlockId B = 0; B != Func.numBlocks(); ++B) {
    const BasicBlock &BB = Func.block(B);
    for (uint32_t I = 0; I != BB.Insts.size(); ++I) {
      const Instruction &Inst = BB.Insts[I];
      if (Inst.Dst != NoReg)
        Defs[Inst.Dst].push_back({B, I, &Inst});
    }
  }
}

bool BoundsAnalysis::definedIn(const Loop *L, Reg R) const {
  auto It = Defs.find(R);
  if (It == Defs.end())
    return false;
  for (const DefSite &D : It->second)
    if (L->contains(D.Block))
      return true;
  return false;
}

AffineExpr BoundsAnalysis::exprOf(Reg R, const Loop *Target,
                                  const std::vector<Reg> &InductionVars,
                                  unsigned Depth) const {
  if (Depth > 64)
    return AffineExpr::invalid();
  if (std::find(InductionVars.begin(), InductionVars.end(), R) !=
      InductionVars.end())
    return AffineExpr::reg(R); // System variable (current-iteration value).
  {
    // A register whose only definition is a constant is that constant
    // everywhere; resolving it keeps bounds expressions tight.
    auto It = Defs.find(R);
    if (It != Defs.end() && It->second.size() == 1 &&
        It->second[0].Inst->Op == Opcode::ConstInt)
      return AffineExpr::constant(It->second[0].Inst->Imm);
  }
  if (!definedIn(Target, R))
    return AffineExpr::reg(preheaderAtom(R)); // Loop-invariant.

  auto It = Defs.find(R);
  if (It == Defs.end() || It->second.size() != 1)
    return AffineExpr::invalid(); // Multi-def non-induction register.
  const Instruction &Inst = *It->second[0].Inst;

  auto sub = [&](Reg Operand) {
    return exprOf(Operand, Target, InductionVars, Depth + 1);
  };

  switch (Inst.Op) {
  case Opcode::ConstInt:
    return AffineExpr::constant(Inst.Imm);
  case Opcode::Move:
    return sub(Inst.A);
  case Opcode::Unary:
    if (Inst.UOp == UnOp::Neg)
      return sub(Inst.A).negate();
    return AffineExpr::invalid();
  case Opcode::Binary:
    switch (Inst.BOp) {
    case BinOp::Add:
      return sub(Inst.A).add(sub(Inst.B));
    case BinOp::Sub:
      return sub(Inst.A).sub(sub(Inst.B));
    case BinOp::Mul:
      return sub(Inst.A).mul(sub(Inst.B));
    case BinOp::Shl: {
      AffineExpr Shift = sub(Inst.B);
      if (Shift.isConstant() && Shift.constantValue() >= 0 &&
          Shift.constantValue() < 62)
        return sub(Inst.A).mulConst(int64_t(1)
                                    << Shift.constantValue());
      return AffineExpr::invalid();
    }
    default:
      // Modulo, bitwise masks, comparisons: the unsupported arithmetic
      // the paper cites as its second imprecision source (§5.2).
      return AffineExpr::invalid();
    }
  case Opcode::PtrAdd:
    return sub(Inst.A).add(sub(Inst.B));
  case Opcode::AddrGlobal: {
    AffineExpr Base =
        AffineExpr::constant(static_cast<int64_t>(M.Globals[Inst.Id].BaseAddr));
    if (Inst.A == NoReg)
      return Base;
    return Base.add(sub(Inst.A));
  }
  default:
    // Loads, calls, inputs: values the analysis cannot bound (e.g.
    // radix's rank[key_from[j]] — paper §5.2's first imprecision).
    return AffineExpr::invalid();
  }
}

AffineExpr BoundsAnalysis::initValueAt(
    Reg R, const Loop *L, const Loop *Target,
    const std::vector<Reg> &InductionVars) const {
  // Fallback for the lock's own loop: the runtime value of R at the
  // preheader is always a sound starting point.
  AffineExpr Fallback = L == Target ? AffineExpr::reg(preheaderAtom(R))
                                    : AffineExpr::invalid();
  if (L->Preheader == NoBlock)
    return Fallback;

  analysis::Dominators Dom(Func);
  auto It = Defs.find(R);
  if (It == Defs.end())
    return Fallback;

  // Latest definition dominating the inner preheader. Dominating blocks
  // are totally ordered, so "latest" is well-defined.
  const DefSite *Best = nullptr;
  for (const DefSite &D : It->second) {
    if (!Dom.dominates(D.Block, L->Preheader))
      continue;
    if (!Best) {
      Best = &D;
      continue;
    }
    bool Later = Best->Block == D.Block ? D.Index > Best->Index
                                        : Dom.dominates(Best->Block, D.Block);
    if (Later)
      Best = &D;
  }
  if (!Best)
    return Fallback;

  // Expand the defining instruction's value.
  const Instruction &Inst = *Best->Inst;
  AffineExpr Resolved = AffineExpr::invalid();
  switch (Inst.Op) {
  case Opcode::ConstInt:
    Resolved = AffineExpr::constant(Inst.Imm);
    break;
  case Opcode::Move:
    Resolved = exprOf(Inst.A, Target, InductionVars, 0);
    break;
  default:
    break;
  }
  return Resolved.valid() ? Resolved : Fallback;
}

static BinOp swapComparison(BinOp Op) {
  switch (Op) {
  case BinOp::Lt: return BinOp::Gt;
  case BinOp::Le: return BinOp::Ge;
  case BinOp::Gt: return BinOp::Lt;
  case BinOp::Ge: return BinOp::Le;
  default: return Op;
  }
}

static BinOp negateComparison(BinOp Op) {
  switch (Op) {
  case BinOp::Lt: return BinOp::Ge;
  case BinOp::Le: return BinOp::Gt;
  case BinOp::Gt: return BinOp::Le;
  case BinOp::Ge: return BinOp::Lt;
  default: return Op;
  }
}

namespace {

/// Internal induction result shared with addressBounds.
struct InductionImpl {
  bool Found = false;
  Reg Var = NoReg;
  int64_t Step = 0;
  AffineExpr Lower;
  AffineExpr Upper;
};

} // namespace

/// Core counted-loop recognizer; Target frames invariance.
static InductionImpl analyzeInductionImpl(
    const BoundsAnalysis &BA, const Module &M, const Function &Func,
    const Loop *L, const Loop *Target, const std::vector<Reg> &OuterVars,
    const std::map<Reg, std::vector<std::pair<BlockId, const Instruction *>>>
        &DefsInLoop,
    const std::function<AffineExpr(Reg)> &ExprOf,
    const std::function<AffineExpr(Reg)> &InitOf) {
  (void)BA;
  (void)M;
  (void)Target;
  (void)OuterVars;
  InductionImpl Result;

  const BasicBlock &Header = Func.block(L->Header);
  if (!Header.hasTerminator())
    return Result;
  const Instruction &Term = Header.terminator();
  if (Term.Op != Opcode::CondBr)
    return Result;

  bool TrueInLoop = L->contains(Term.Succ0);
  bool FalseInLoop = L->contains(Term.Succ1);
  if (TrueInLoop == FalseInLoop)
    return Result;

  // The condition register must be a comparison computed in the header.
  const Instruction *Cmp = nullptr;
  for (const Instruction &Inst : Header.Insts)
    if (Inst.Dst == Term.A && Inst.Op == Opcode::Binary)
      Cmp = &Inst;
  if (!Cmp)
    return Result;
  BinOp Op = Cmp->BOp;
  if (Op != BinOp::Lt && Op != BinOp::Le && Op != BinOp::Gt &&
      Op != BinOp::Ge)
    return Result;
  if (!TrueInLoop)
    Op = negateComparison(Op);

  // Try each side as the induction variable.
  for (int Side = 0; Side != 2; ++Side) {
    Reg Var = Side == 0 ? Cmp->A : Cmp->B;
    Reg BoundReg = Side == 0 ? Cmp->B : Cmp->A;
    BinOp NOp = Side == 0 ? Op : swapComparison(Op);

    // The variable must have exactly one definition inside the loop, of
    // the shape Var = Var ± const.
    auto It = DefsInLoop.find(Var);
    if (It == DefsInLoop.end() || It->second.size() != 1)
      continue;
    const Instruction *StepDef = It->second[0].second;

    // Accept `Move Var <- t` where t = Var ± const, or a direct Binary.
    const Instruction *Arith = StepDef;
    if (StepDef->Op == Opcode::Move) {
      auto TmpIt = DefsInLoop.find(StepDef->A);
      if (TmpIt == DefsInLoop.end() || TmpIt->second.size() != 1)
        continue;
      Arith = TmpIt->second[0].second;
    }
    if (Arith->Op != Opcode::Binary &&
        !(Arith->Op == Opcode::PtrAdd))
      continue;

    int64_t Step = 0;
    if (Arith->Op == Opcode::PtrAdd || Arith->BOp == BinOp::Add) {
      Reg Other;
      if (Arith->A == Var)
        Other = Arith->B;
      else if (Arith->B == Var)
        Other = Arith->A;
      else
        continue;
      AffineExpr StepExpr = ExprOf(Other);
      if (!StepExpr.isConstant())
        continue;
      Step = StepExpr.constantValue();
    } else if (Arith->BOp == BinOp::Sub && Arith->A == Var) {
      AffineExpr StepExpr = ExprOf(Arith->B);
      if (!StepExpr.isConstant())
        continue;
      Step = -StepExpr.constantValue();
    } else {
      continue;
    }
    if (Step == 0)
      continue;

    AffineExpr Bound = ExprOf(BoundReg);
    if (!Bound.valid())
      continue;
    AffineExpr Init = InitOf(Var);
    if (!Init.valid())
      continue;

    // Staying-in-loop condition: Var NOp Bound holds for every body
    // execution.
    AffineExpr Lower, Upper;
    if (Step > 0) {
      if (NOp == BinOp::Lt)
        Upper = Bound.addConst(-1);
      else if (NOp == BinOp::Le)
        Upper = Bound;
      else
        continue;
      Lower = Init;
    } else {
      if (NOp == BinOp::Gt)
        Lower = Bound.addConst(1);
      else if (NOp == BinOp::Ge)
        Lower = Bound;
      else
        continue;
      Upper = Init;
    }

    Result.Found = true;
    Result.Var = Var;
    Result.Step = Step;
    Result.Lower = Lower;
    Result.Upper = Upper;
    return Result;
  }
  return Result;
}

BoundsAnalysis::Induction BoundsAnalysis::analyzeInduction(
    const Loop *L) const {
  // Defs restricted to the loop body.
  std::map<Reg, std::vector<std::pair<BlockId, const Instruction *>>>
      DefsInLoop;
  for (const auto &[R, Sites] : Defs)
    for (const DefSite &D : Sites)
      if (L->contains(D.Block))
        DefsInLoop[R].push_back({D.Block, D.Inst});

  std::vector<Reg> NoVars;
  InductionImpl Impl = analyzeInductionImpl(
      *this, M, Func, L, L, NoVars, DefsInLoop,
      [&](Reg R) { return exprOf(R, L, NoVars, 0); },
      [&](Reg R) { return initValueAt(R, L, L, NoVars); });

  Induction Out;
  Out.Found = Impl.Found;
  Out.Var = Impl.Var;
  Out.Step = Impl.Step;
  Out.Lower = Impl.Lower;
  Out.Upper = Impl.Upper;
  return Out;
}

AddressBounds BoundsAnalysis::addressBounds(const Loop *L,
                                            InstId Ident) const {
  AddressBounds Out;

  Function::InstPos Pos = Func.findInstPos(Ident);
  if (!Pos.valid() || !L->contains(Pos.Block))
    return Out;
  const Instruction &Access = Func.block(Pos.Block).Insts[Pos.Index];
  if (!Access.isMemoryAccess())
    return Out;

  // Loop chain from L (outermost frame) down to the access.
  std::vector<const Loop *> Chain; // Outer -> inner.
  for (const Loop *Cur = LI.innermostLoop(Pos.Block); Cur;
       Cur = Cur->Parent) {
    Chain.push_back(Cur);
    if (Cur == L)
      break;
  }
  if (Chain.empty() || Chain.back() != L)
    return Out;
  std::reverse(Chain.begin(), Chain.end()); // Now outermost (L) first.

  // Recognize induction variables outermost-first so inner bounds may
  // reference outer variables.
  std::vector<Reg> IVars;
  ConstraintSystem System; // Filled innermost-first below.
  std::vector<VarConstraint> Constraints; // Outer -> inner.

  for (const Loop *Cur : Chain) {
    std::map<Reg, std::vector<std::pair<BlockId, const Instruction *>>>
        DefsInLoop;
    for (const auto &[R, Sites] : Defs)
      for (const DefSite &D : Sites)
        if (Cur->contains(D.Block))
          DefsInLoop[R].push_back({D.Block, D.Inst});

    InductionImpl Impl = analyzeInductionImpl(
        *this, M, Func, Cur, L, IVars, DefsInLoop,
        [&](Reg R) { return exprOf(R, L, IVars, 0); },
        [&](Reg R) { return initValueAt(R, Cur, L, IVars); });
    if (Impl.Found) {
      IVars.push_back(Impl.Var);
      Constraints.push_back({Impl.Var, Impl.Lower, Impl.Upper});
    }
  }

  AffineExpr Addr = exprOf(Access.A, L, IVars, 0);
  if (!Addr.valid())
    return Out;

  for (auto It = Constraints.rbegin(); It != Constraints.rend(); ++It)
    System.addVariable(It->Var, It->Lower, It->Upper);

  BoundsResult FM = eliminate(System, Addr);
  if (!FM.valid())
    return Out;

  // Only preheader atoms may remain.
  auto OnlyAtoms = [](Reg R) { return isPreheaderAtom(R); };
  if (!FM.Min.usesOnly(OnlyAtoms) || !FM.Max.usesOnly(OnlyAtoms))
    return Out;

  Out.Valid = true;
  Out.Lo = FM.Min;
  Out.Hi = FM.Max;
  return Out;
}
