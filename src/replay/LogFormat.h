//===- replay/LogFormat.h - Segmented log framing ---------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constants and byte-level helpers for the segmented on-disk log format
/// shared by LogWriter and LogReader. The format itself is specified
/// byte-exactly in docs/LOG_FORMAT.md; this header is the single point
/// where those numbers live in code.
///
/// Layout summary: a 16-byte file header, then segments. Each segment is
/// a 32-byte header (its own trailing CRC32, plus a CRC32 over the
/// stored payload) followed by the stored payload — the raw record bytes
/// or their LZ compression, whichever is smaller. Records are tagged
/// varint tuples and never split across segments.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_REPLAY_LOGFORMAT_H
#define CHIMERA_REPLAY_LOGFORMAT_H

#include "support/Crc32.h"

#include <cstdint>
#include <cstring>
#include <vector>

namespace chimera {
namespace replay {

inline constexpr char FileMagic[4] = {'C', 'L', 'G', '1'};
inline constexpr char SegmentMagic[4] = {'C', 'S', 'E', 'G'};
inline constexpr uint16_t FormatVersion = 1;

inline constexpr size_t FileHeaderBytes = 16;
inline constexpr size_t SegmentHeaderBytes = 32;

/// Record tags (first byte of every payload record).
enum class RecordTag : uint8_t {
  Meta = 1,       ///< Ordered-object space parameters; first record.
  Ordered = 2,    ///< One per-object order entry.
  Input = 3,      ///< One consumed input.
  Revocation = 4, ///< One forced weak-lock release.
  Checkpoint = 5, ///< Length-prefixed MachineSnapshot encoding.
  End = 6,        ///< Run totals; last record of the last segment.
};

/// Segment header flag bits.
inline constexpr uint8_t SegFlagCompressed = 1u << 0;
inline constexpr uint8_t SegFlagHasCheckpoint = 1u << 1;
inline constexpr uint8_t SegFlagKnownMask =
    SegFlagCompressed | SegFlagHasCheckpoint;

// -- CIDX checkpoint-index footer (format 1.1) -----------------------------
//
// An optional trailer after the last segment that lets a reader jump to
// any checkpoint in O(1) instead of scanning the file:
//
//   "CIDX"  entryCount:u32  entry[entryCount]  crc:u32  footerSize:u32
//
// Each 32-byte entry is {segmentOffset:u64, seq:u32, payloadPos:u32,
// stateHash:u64, logEventsAtCapture:u64}. `crc` is the CRC32 of every
// preceding footer byte (magic through the last entry); `footerSize` is
// the total footer length including itself, so the footer is located by
// reading the file's last 4 bytes. The footer is advisory: version 1
// readers that predate it must (and do) treat a structurally valid
// trailing footer as end-of-stream, and any reader finding it absent or
// corrupt falls back to a linear checkpoint scan.

inline constexpr char CidxMagic[4] = {'C', 'I', 'D', 'X'};
inline constexpr size_t CidxEntryBytes = 32;
/// Magic + entry count + CRC + footer size.
inline constexpr size_t CidxFixedBytes = 4 + 4 + 4 + 4;

/// One footer entry: where checkpoint \p Index lives and what it claims.
struct CidxEntry {
  uint64_t SegmentOffset = 0; ///< File offset of the owning segment.
  uint32_t Seq = 0;           ///< Sequence number of that segment.
  uint32_t PayloadPos = 0;    ///< Offset of the checkpoint record's tag
                              ///< byte within the decompressed payload.
  uint64_t StateHash = 0;     ///< Snapshot's end-to-end state hash.
  uint64_t LogEventsAtCapture = 0;
};

struct SegmentHeader {
  uint32_t Seq = 0;
  uint8_t Flags = 0;
  uint32_t RawSize = 0;    ///< Payload bytes before compression.
  uint32_t StoredSize = 0; ///< Payload bytes on disk.
  uint32_t PayloadCrc = 0; ///< CRC32 of the stored payload bytes.
};

// -- Little-endian scalar helpers -----------------------------------------

inline void appendLe16(std::vector<uint8_t> &Out, uint16_t V) {
  Out.push_back(static_cast<uint8_t>(V));
  Out.push_back(static_cast<uint8_t>(V >> 8));
}

inline void appendLe32(std::vector<uint8_t> &Out, uint32_t V) {
  for (unsigned I = 0; I != 4; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

inline void appendLe64(std::vector<uint8_t> &Out, uint64_t V) {
  for (unsigned I = 0; I != 8; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

inline uint16_t readLe16(const uint8_t *P) {
  return static_cast<uint16_t>(P[0] | (uint16_t(P[1]) << 8));
}

inline uint32_t readLe32(const uint8_t *P) {
  uint32_t V = 0;
  for (unsigned I = 0; I != 4; ++I)
    V |= uint32_t(P[I]) << (8 * I);
  return V;
}

inline uint64_t readLe64(const uint8_t *P) {
  uint64_t V = 0;
  for (unsigned I = 0; I != 8; ++I)
    V |= uint64_t(P[I]) << (8 * I);
  return V;
}

/// Appends a complete CIDX footer for \p Entries.
inline void appendCidxFooter(std::vector<uint8_t> &Out,
                             const std::vector<CidxEntry> &Entries) {
  size_t Start = Out.size();
  Out.insert(Out.end(), CidxMagic, CidxMagic + 4);
  appendLe32(Out, static_cast<uint32_t>(Entries.size()));
  for (const CidxEntry &E : Entries) {
    appendLe64(Out, E.SegmentOffset);
    appendLe32(Out, E.Seq);
    appendLe32(Out, E.PayloadPos);
    appendLe64(Out, E.StateHash);
    appendLe64(Out, E.LogEventsAtCapture);
  }
  uint32_t Crc = support::crc32(Out.data() + Start, Out.size() - Start);
  appendLe32(Out, Crc);
  appendLe32(Out, static_cast<uint32_t>(Out.size() - Start + 4));
}

/// Validates a CIDX footer ending at \p End (one past the last byte) of
/// \p Bytes and, on success, fills \p Entries and \p FooterStart (the
/// offset of the footer's first byte). Returns false on any structural
/// or CRC mismatch — the caller falls back to a linear scan; this is
/// never an error.
inline bool readCidxFooter(const std::vector<uint8_t> &Bytes, size_t End,
                           std::vector<CidxEntry> &Entries,
                           size_t &FooterStart) {
  if (End > Bytes.size() || End < CidxFixedBytes)
    return false;
  uint32_t FooterSize = readLe32(Bytes.data() + End - 4);
  if (FooterSize < CidxFixedBytes || FooterSize > End)
    return false;
  size_t Start = End - FooterSize;
  const uint8_t *P = Bytes.data() + Start;
  if (std::memcmp(P, CidxMagic, 4) != 0)
    return false;
  uint32_t Count = readLe32(P + 4);
  if (FooterSize != CidxFixedBytes + uint64_t(Count) * CidxEntryBytes)
    return false;
  uint32_t Crc = readLe32(Bytes.data() + End - 8);
  if (support::crc32(P, FooterSize - 8) != Crc)
    return false;
  Entries.clear();
  Entries.reserve(Count);
  for (uint32_t I = 0; I != Count; ++I) {
    const uint8_t *E = P + 8 + size_t(I) * CidxEntryBytes;
    CidxEntry Entry;
    Entry.SegmentOffset = readLe64(E);
    Entry.Seq = readLe32(E + 8);
    Entry.PayloadPos = readLe32(E + 12);
    Entry.StateHash = readLe64(E + 16);
    Entry.LogEventsAtCapture = readLe64(E + 24);
    Entries.push_back(Entry);
  }
  FooterStart = Start;
  return true;
}

// -- Header encoding -------------------------------------------------------

/// Appends the 16-byte file header: magic, version, flags (0), workload
/// fingerprint.
inline void appendFileHeader(std::vector<uint8_t> &Out, uint64_t Fingerprint) {
  Out.insert(Out.end(), FileMagic, FileMagic + 4);
  appendLe16(Out, FormatVersion);
  appendLe16(Out, 0); // File flags, reserved.
  appendLe64(Out, Fingerprint);
}

/// Appends the 32-byte segment header; the trailing CRC32 covers the
/// preceding 28 header bytes, so any header bit-flip is detected
/// independently of the payload CRC.
inline void appendSegmentHeader(std::vector<uint8_t> &Out,
                                const SegmentHeader &H) {
  size_t Start = Out.size();
  Out.insert(Out.end(), SegmentMagic, SegmentMagic + 4);
  appendLe32(Out, H.Seq);
  Out.push_back(H.Flags);
  Out.push_back(0); // Reserved, must be zero.
  Out.push_back(0);
  Out.push_back(0);
  appendLe32(Out, H.RawSize);
  appendLe32(Out, H.StoredSize);
  appendLe32(Out, H.PayloadCrc);
  appendLe32(Out, 0); // Reserved, must be zero.
  uint32_t HeaderCrc = support::crc32(Out.data() + Start, Out.size() - Start);
  appendLe32(Out, HeaderCrc);
}

// -- Bounds-checked reading ------------------------------------------------

/// A cursor over untrusted bytes. Every read reports truncation by
/// returning false instead of asserting; corrupt log files are an input
/// condition, not a programmer bug.
struct ByteCursor {
  const uint8_t *Data = nullptr;
  size_t Size = 0;
  size_t Pos = 0;

  ByteCursor() = default;
  ByteCursor(const std::vector<uint8_t> &Bytes)
      : Data(Bytes.data()), Size(Bytes.size()) {}

  size_t remaining() const { return Size - Pos; }
  bool atEnd() const { return Pos == Size; }

  bool readByte(uint8_t &Out) {
    if (Pos >= Size)
      return false;
    Out = Data[Pos++];
    return true;
  }

  bool readVarint(uint64_t &Out) {
    Out = 0;
    for (unsigned Shift = 0; Shift < 64; Shift += 7) {
      if (Pos >= Size)
        return false;
      uint8_t Byte = Data[Pos++];
      Out |= static_cast<uint64_t>(Byte & 0x7f) << Shift;
      if (!(Byte & 0x80))
        return true;
    }
    return false; // Over-length varint.
  }

  /// Varint that must fit 32 bits (ids, counts of in-memory objects).
  bool readVarint32(uint32_t &Out) {
    uint64_t V = 0;
    if (!readVarint(V) || V > UINT32_MAX)
      return false;
    Out = static_cast<uint32_t>(V);
    return true;
  }

  bool readRaw(void *Out, size_t N) {
    if (N > remaining())
      return false;
    std::memcpy(Out, Data + Pos, N);
    Pos += N;
    return true;
  }

  bool readLe64At(uint64_t &Out) {
    if (remaining() < 8)
      return false;
    Out = readLe64(Data + Pos);
    Pos += 8;
    return true;
  }

  bool skip(size_t N) {
    if (N > remaining())
      return false;
    Pos += N;
    return true;
  }
};

} // namespace replay
} // namespace chimera

#endif // CHIMERA_REPLAY_LOGFORMAT_H
