//===- replay/LogWriter.cpp - Segmented log storage engine -----------------===//

#include "replay/LogWriter.h"

#include "replay/Checkpoint.h"
#include "replay/LogFormat.h"
#include "support/Compressor.h"

#include <cassert>

using namespace chimera;
using namespace chimera::replay;

LogWriter::LogWriter(std::string Path, Options Opts)
    : Path(std::move(Path)), Opts(Opts) {
  File = std::fopen(this->Path.c_str(), "wb");
  if (!File) {
    latchError("cannot open '" + this->Path + "' for writing");
    return;
  }
  std::vector<uint8_t> Header;
  appendFileHeader(Header, Opts.Fingerprint);
  if (std::fwrite(Header.data(), 1, Header.size(), File) != Header.size())
    latchError("write failed on '" + this->Path + "' (file header)");
  FileBytes = Header.size();
}

LogWriter::~LogWriter() { finish(); }

void LogWriter::latchError(const std::string &Message) {
  if (!IoError)
    IoError = support::Error::failure(Message);
}

//===----------------------------------------------------------------------===//
// Record framing
//===----------------------------------------------------------------------===//

void LogWriter::onStart(uint32_t NumSyncObjects, uint32_t NumWeakLocks) {
  Cur.push_back(static_cast<uint8_t>(RecordTag::Meta));
  appendVarint(Cur, NumSyncObjects);
  appendVarint(Cur, NumWeakLocks);
  maybeCloseSegment();
}

void LogWriter::onOrdered(uint32_t Obj, uint32_t Tid, rt::OrderedOp Op) {
  Cur.push_back(static_cast<uint8_t>(RecordTag::Ordered));
  appendVarint(Cur, Obj);
  appendVarint(Cur, (static_cast<uint64_t>(Tid) << 4) |
                        static_cast<uint64_t>(Op));
  maybeCloseSegment();
}

void LogWriter::onInput(uint32_t Tid, rt::InputKind Kind, uint64_t Value) {
  Cur.push_back(static_cast<uint8_t>(RecordTag::Input));
  appendVarint(Cur, Tid);
  Cur.push_back(static_cast<uint8_t>(Kind));
  appendVarint(Cur, Value);
  maybeCloseSegment();
}

void LogWriter::onRevocation(const rt::RevocationEvent &Rev) {
  Cur.push_back(static_cast<uint8_t>(RecordTag::Revocation));
  appendVarint(Cur, Rev.Tid);
  appendVarint(Cur, Rev.LockId);
  appendVarint(Cur, Rev.Instret);
  maybeCloseSegment();
}

void LogWriter::onCheckpoint(const rt::MachineSnapshot &Snap) {
  std::vector<uint8_t> Body =
      encodeCheckpoint(Snap, PrevGlobal, PrevHeap);
  PrevGlobal = Snap.GlobalWords;
  PrevHeap = Snap.HeapWords;
  // CIDX footer entry: the record lands in the currently open segment
  // (sequence NextSeq) at the current payload offset; the segment's file
  // offset is filled in by writeSegment.
  CidxEntry Entry;
  Entry.Seq = NextSeq;
  Entry.PayloadPos = static_cast<uint32_t>(Cur.size());
  Entry.StateHash = Snap.StateHash;
  Entry.LogEventsAtCapture = Snap.LogEventsAtCapture;
  CidxEntries.push_back(Entry);
  Cur.push_back(static_cast<uint8_t>(RecordTag::Checkpoint));
  appendVarint(Cur, Body.size());
  Cur.insert(Cur.end(), Body.begin(), Body.end());
  CurHasCheckpoint = true;
  maybeCloseSegment();
}

void LogWriter::onEnd(uint32_t NumThreads, uint64_t OrderedEvents,
                      uint64_t InputEvents) {
  Cur.push_back(static_cast<uint8_t>(RecordTag::End));
  appendVarint(Cur, NumThreads);
  appendVarint(Cur, OrderedEvents);
  appendVarint(Cur, InputEvents);
  // Not closed here: finish() flushes, so End is the final record of the
  // final segment.
}

//===----------------------------------------------------------------------===//
// Segment lifecycle
//===----------------------------------------------------------------------===//

void LogWriter::maybeCloseSegment() {
  if (Cur.size() >= Opts.SegmentBytes)
    closeSegment();
}

LogWriter::DoneSegment
LogWriter::compressSegment(std::vector<uint8_t> Raw, uint8_t Flags) {
  DoneSegment Done;
  Done.RawSize = static_cast<uint32_t>(Raw.size());
  std::vector<uint8_t> Packed = lzCompress(Raw);
  if (Packed.size() < Raw.size()) {
    Done.Flags = Flags | SegFlagCompressed;
    Done.Stored = std::move(Packed);
  } else {
    Done.Flags = Flags;
    Done.Stored = std::move(Raw);
  }
  return Done;
}

void LogWriter::closeSegment() {
  assert(!Finished && "segment close after finish");
  uint8_t Flags = CurHasCheckpoint ? SegFlagHasCheckpoint : 0;
  std::vector<uint8_t> Raw = std::move(Cur);
  Cur.clear();
  CurHasCheckpoint = false;
  uint32_t Seq = NextSeq++;

  if (!Opts.Pool || Opts.Pool->isInline()) {
    DoneSegment Done = compressSegment(std::move(Raw), Flags);
    assert(Seq == NextWriteSeq && "sync close out of order");
    writeSegment(Seq, Done);
    ++NextWriteSeq;
    return;
  }

  // Double-buffer: admit at most two unwritten segments so a slow
  // compressor applies backpressure instead of queueing unbounded raw
  // buffers. When both slots are busy the record thread compresses this
  // segment itself rather than sleeping — backpressure becomes useful
  // work, so on a saturated host the async path degrades to the sync
  // cost instead of sync plus context switches. Only this thread drains
  // Completed; it writes any ready in-order segments while it is here.
  bool CompressInline = false;
  {
    std::unique_lock<std::mutex> Lock(Mu);
    for (;;) {
      auto It = Completed.find(NextWriteSeq);
      if (It != Completed.end()) {
        DoneSegment Done = std::move(It->second);
        Completed.erase(It);
        Lock.unlock();
        writeSegment(NextWriteSeq, Done);
        ++NextWriteSeq;
        Lock.lock();
        continue;
      }
      if (InFlight + Completed.size() < 2)
        break;
      CompressInline = true;
      ++BacklogStalls;
      break;
    }
    if (!CompressInline)
      ++InFlight;
  }

  if (CompressInline) {
    DoneSegment Done = compressSegment(std::move(Raw), Flags);
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Completed.emplace(Seq, std::move(Done));
    }
    drainCompleted(/*WaitAll=*/false);
    return;
  }
  Opts.Pool->submit([this, Seq, Flags, Raw = std::move(Raw)]() mutable {
    DoneSegment Done = compressSegment(std::move(Raw), Flags);
    std::lock_guard<std::mutex> Lock(Mu);
    Completed.emplace(Seq, std::move(Done));
    --InFlight;
    Cv.notify_all();
  });
}

void LogWriter::drainCompleted(bool WaitAll) {
  std::unique_lock<std::mutex> Lock(Mu);
  for (;;) {
    auto It = Completed.find(NextWriteSeq);
    if (It != Completed.end()) {
      DoneSegment Done = std::move(It->second);
      Completed.erase(It);
      Lock.unlock();
      writeSegment(NextWriteSeq, Done); // File writes: record thread only.
      ++NextWriteSeq;
      Lock.lock();
      continue;
    }
    if (!WaitAll || NextWriteSeq == NextSeq)
      return;
    Cv.wait(Lock);
  }
}

void LogWriter::writeSegment(uint32_t Seq, const DoneSegment &Done) {
  ++SegmentsWritten;
  RawBytes += Done.RawSize;
  StoredBytes += Done.Stored.size();
  if (!File)
    return; // Open already failed; error is latched.

  SegmentHeader H;
  H.Seq = Seq;
  H.Flags = Done.Flags;
  H.RawSize = Done.RawSize;
  H.StoredSize = static_cast<uint32_t>(Done.Stored.size());
  H.PayloadCrc = support::crc32(Done.Stored);
  std::vector<uint8_t> Header;
  appendSegmentHeader(Header, H);

  // Segments hit the file strictly in sequence order, so FileBytes is
  // this segment's offset; resolve the footer entries that live in it.
  while (CidxResolved < CidxEntries.size() &&
         CidxEntries[CidxResolved].Seq == Seq)
    CidxEntries[CidxResolved++].SegmentOffset = FileBytes;
  FileBytes += Header.size() + Done.Stored.size();

  if (std::fwrite(Header.data(), 1, Header.size(), File) != Header.size() ||
      (!Done.Stored.empty() &&
       std::fwrite(Done.Stored.data(), 1, Done.Stored.size(), File) !=
           Done.Stored.size()))
    latchError("write failed on '" + Path + "' (segment " +
               std::to_string(Seq) + ")");
}

support::Error LogWriter::finish() {
  if (Finished)
    return IoError;
  Finished = true;

  if (!Cur.empty()) {
    // closeSegment asserts !Finished to catch late sink calls; flip the
    // flag around the final flush.
    Finished = false;
    closeSegment();
    Finished = true;
  }
  drainCompleted(/*WaitAll=*/true);

  // Checkpoint-index footer (format 1.1). Only written when the log has
  // checkpoints, so checkpoint-free files stay byte-identical to 1.0.
  if (File && !CidxEntries.empty()) {
    assert(CidxResolved == CidxEntries.size() &&
           "checkpoint entry for an unwritten segment");
    std::vector<uint8_t> Footer;
    appendCidxFooter(Footer, CidxEntries);
    if (std::fwrite(Footer.data(), 1, Footer.size(), File) != Footer.size())
      latchError("write failed on '" + Path + "' (CIDX footer)");
  }

  if (File) {
    if (std::fclose(File) != 0)
      latchError("close failed on '" + Path + "'");
    File = nullptr;
  }

  if (Opts.Metrics) {
    obs::Scope S(Opts.Metrics, "record.compress");
    S.gauge("backlog").set(static_cast<int64_t>(BacklogStalls));
    S.counter("segments").add(SegmentsWritten);
    S.counter("bytes_raw").add(RawBytes);
    S.counter("bytes_stored").add(StoredBytes);
  }
  return IoError;
}
