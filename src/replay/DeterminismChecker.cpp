//===- replay/DeterminismChecker.cpp - Replay validation -------------------===//

#include "replay/DeterminismChecker.h"

using namespace chimera;
using namespace chimera::replay;

DeterminismVerdict chimera::replay::checkDeterminism(
    const rt::ExecutionResult &Record, const rt::ExecutionResult &Replay) {
  DeterminismVerdict Verdict;

  if (!Record.Ok) {
    Verdict.Reason = "recording failed: " + Record.Error;
    return Verdict;
  }
  if (!Replay.Ok) {
    Verdict.Reason = "replay failed: " + Replay.Error;
    return Verdict;
  }
  if (Record.Output.size() != Replay.Output.size()) {
    Verdict.Reason = "output length mismatch (" +
                     std::to_string(Record.Output.size()) + " vs " +
                     std::to_string(Replay.Output.size()) + ")";
    return Verdict;
  }
  for (size_t I = 0; I != Record.Output.size(); ++I) {
    if (Record.Output[I] != Replay.Output[I]) {
      Verdict.Reason = "output diverges at index " + std::to_string(I);
      return Verdict;
    }
  }
  if (Record.StateHash != Replay.StateHash) {
    Verdict.Reason = "final memory state hash mismatch";
    return Verdict;
  }
  Verdict.Deterministic = true;
  return Verdict;
}
