//===- replay/Checkpoint.cpp - Snapshot (de)serialization ------------------===//
//
// Field-by-field varint encoding of MachineSnapshot, with memory as
// 512-word delta pages. The decode side is fully bounds-checked and
// allocation-bounded: every count is validated against the bytes that
// must back it before anything is reserved, so corrupt input cannot
// drive pathological allocations.
//
//===----------------------------------------------------------------------===//

#include "replay/Checkpoint.h"

#include "replay/LogFormat.h"
#include "support/Compressor.h"

#include <algorithm>
#include <cassert>

using namespace chimera;
using namespace chimera::replay;
using rt::FrameSnapshot;
using rt::MachineSnapshot;
using rt::ReadySnapshot;
using rt::SyncObjectSnapshot;
using rt::ThreadSnapshot;

//===----------------------------------------------------------------------===//
// Encoding
//===----------------------------------------------------------------------===//

namespace {

void appendVarints(std::vector<uint8_t> &Out,
                   const std::vector<uint32_t> &Values) {
  appendVarint(Out, Values.size());
  for (uint32_t V : Values)
    appendVarint(Out, V);
}

void appendVarints64(std::vector<uint8_t> &Out,
                     const std::vector<uint64_t> &Values) {
  appendVarint(Out, Values.size());
  for (uint64_t V : Values)
    appendVarint(Out, V);
}

void appendHeldList(std::vector<uint8_t> &Out,
                    const std::vector<rt::HeldWeakLock> &Held) {
  appendVarint(Out, Held.size());
  for (const rt::HeldWeakLock &H : Held) {
    appendVarint(Out, H.LockId);
    Out.push_back(H.HasRange ? 1 : 0);
    appendLe64(Out, H.Lo); // Word addresses use high base offsets; raw
    appendLe64(Out, H.Hi); // LE64 beats a worst-case 10-byte varint.
    Out.push_back(H.SiteGran);
  }
}

/// Emits the pages of \p Cur that differ from \p Prev (or lie beyond its
/// end) for memory segment \p SegId. Page key = index * 2 + SegId.
void appendDeltaPages(std::vector<uint8_t> &Pages, uint64_t &NumPages,
                      const std::vector<uint64_t> &Prev,
                      const std::vector<uint64_t> &Cur, unsigned SegId) {
  assert(Cur.size() >= Prev.size() && "memory segments never shrink");
  for (uint64_t Start = 0; Start < Cur.size();
       Start += CheckpointPageWords) {
    uint64_t End = std::min<uint64_t>(Start + CheckpointPageWords,
                                      Cur.size());
    bool Dirty = End > Prev.size() ||
                 !std::equal(Cur.begin() + Start, Cur.begin() + End,
                             Prev.begin() + Start);
    if (!Dirty)
      continue;
    ++NumPages;
    appendVarint(Pages, (Start / CheckpointPageWords) * 2 + SegId);
    appendVarint(Pages, End - Start);
    for (uint64_t I = Start; I != End; ++I)
      appendLe64(Pages, Cur[I]);
  }
}

} // namespace

std::vector<uint8_t>
replay::encodeCheckpoint(const MachineSnapshot &Snap,
                         const std::vector<uint64_t> &PrevGlobal,
                         const std::vector<uint64_t> &PrevHeap) {
  std::vector<uint8_t> Out;

  appendVarints(Out, Snap.GateCursors);
  appendVarints(Out, Snap.InputCursors);
  appendVarint(Out, Snap.RevocationsDone);
  appendVarint(Out, Snap.LogEventsAtCapture);

  appendVarint(Out, Snap.Threads.size());
  for (const ThreadSnapshot &TS : Snap.Threads) {
    appendVarint(Out, TS.Tid);
    Out.push_back(TS.State);
    Out.push_back(TS.Reason);
    appendVarint(Out, TS.WaitObject);
    appendVarint(Out, TS.WakeTime);
    appendVarint(Out, TS.ReadyTime);
    appendVarint(Out, TS.BlockStart);
    appendVarint(Out, TS.Instret);
    appendVarint(Out, TS.RetValue);
    appendVarint(Out, zigzagEncode(TS.PendingMutex));
    appendVarint(Out, TS.Stack.size());
    for (const FrameSnapshot &FS : TS.Stack) {
      appendVarint(Out, FS.FuncId);
      appendVarint(Out, FS.Ip);
      appendVarint(Out, FS.RetDst);
      appendVarint(Out, FS.Regs.size());
      for (uint64_t R : FS.Regs)
        appendLe64(Out, R);
    }
    appendHeldList(Out, TS.HeldWeak);
    appendHeldList(Out, TS.PendingReacquire);
    appendVarints(Out, TS.JoinWaiters);
  }

  appendVarint(Out, Snap.Syncs.size());
  for (const SyncObjectSnapshot &SS : Snap.Syncs) {
    appendVarint(Out, zigzagEncode(SS.Owner));
    appendVarint(Out, SS.Generation);
    appendVarints(Out, SS.Arrived);
    appendVarints64(Out, SS.ArrivedTimes);
    appendVarints(Out, SS.CondWaiters);
  }

  appendVarint(Out, Snap.ReadyQueue.size());
  for (const ReadySnapshot &R : Snap.ReadyQueue) {
    appendVarint(Out, R.Tid);
    appendVarint(Out, R.ReadyTime);
  }
  appendVarints64(Out, Snap.CoreTimes);

  appendVarint(Out, Snap.Output.size());
  for (uint64_t V : Snap.Output)
    appendLe64(Out, V);

  appendLe64(Out, Snap.StateHash);

  // Memory: sizes, then the dirty pages (buffered so the page count can
  // be written first).
  appendVarint(Out, Snap.GlobalWords.size());
  appendVarint(Out, Snap.HeapUsed);
  std::vector<uint8_t> Pages;
  uint64_t NumPages = 0;
  appendDeltaPages(Pages, NumPages, PrevGlobal, Snap.GlobalWords, 0);
  appendDeltaPages(Pages, NumPages, PrevHeap, Snap.HeapWords, 1);
  appendVarint(Out, NumPages);
  Out.insert(Out.end(), Pages.begin(), Pages.end());
  return Out;
}

//===----------------------------------------------------------------------===//
// Decoding
//===----------------------------------------------------------------------===//

namespace {

support::Error corrupt(const char *What, size_t Pos) {
  return support::Error::failure("corrupt checkpoint at byte " +
                                 std::to_string(Pos) + ": " + What);
}

/// Reads a count that prefixes elements of at least \p MinElemBytes
/// bytes each; rejects counts the remaining input cannot back, bounding
/// every allocation below by real data.
bool readCount(ByteCursor &C, uint64_t &Count, size_t MinElemBytes) {
  if (!C.readVarint(Count))
    return false;
  return Count <= C.remaining() / std::max<size_t>(MinElemBytes, 1);
}

bool readVarints(ByteCursor &C, std::vector<uint32_t> &Out) {
  uint64_t Count = 0;
  if (!readCount(C, Count, 1))
    return false;
  Out.reserve(Count);
  for (uint64_t I = 0; I != Count; ++I) {
    uint32_t V = 0;
    if (!C.readVarint32(V))
      return false;
    Out.push_back(V);
  }
  return true;
}

bool readVarints64(ByteCursor &C, std::vector<uint64_t> &Out) {
  uint64_t Count = 0;
  if (!readCount(C, Count, 1))
    return false;
  Out.reserve(Count);
  for (uint64_t I = 0; I != Count; ++I) {
    uint64_t V = 0;
    if (!C.readVarint(V))
      return false;
    Out.push_back(V);
  }
  return true;
}

bool readHeldList(ByteCursor &C, std::vector<rt::HeldWeakLock> &Out) {
  uint64_t Count = 0;
  if (!readCount(C, Count, 19)) // id(1) + flag + Lo/Hi(16) + gran.
    return false;
  Out.reserve(Count);
  for (uint64_t I = 0; I != Count; ++I) {
    rt::HeldWeakLock H;
    uint8_t Flag = 0, Gran = 0;
    if (!C.readVarint32(H.LockId) || !C.readByte(Flag) ||
        !C.readLe64At(H.Lo) || !C.readLe64At(H.Hi) || !C.readByte(Gran) ||
        Flag > 1)
      return false;
    H.HasRange = Flag != 0;
    H.SiteGran = Gran;
    Out.push_back(H);
  }
  return true;
}

bool readZigzag(ByteCursor &C, int64_t &Out) {
  uint64_t V = 0;
  if (!C.readVarint(V))
    return false;
  Out = zigzagDecode(V);
  return true;
}

} // namespace

support::Expected<MachineSnapshot>
replay::decodeCheckpoint(const std::vector<uint8_t> &Bytes,
                         std::vector<uint64_t> &AccumGlobal,
                         std::vector<uint64_t> &AccumHeap) {
  ByteCursor C(Bytes);
  MachineSnapshot Snap;

  if (!readVarints(C, Snap.GateCursors))
    return corrupt("gate cursors", C.Pos);
  if (!readVarints(C, Snap.InputCursors))
    return corrupt("input cursors", C.Pos);
  if (!C.readVarint(Snap.RevocationsDone) ||
      !C.readVarint(Snap.LogEventsAtCapture))
    return corrupt("log position", C.Pos);

  uint64_t NumThreads = 0;
  if (!readCount(C, NumThreads, 12))
    return corrupt("thread count", C.Pos);
  Snap.Threads.reserve(NumThreads);
  for (uint64_t T = 0; T != NumThreads; ++T) {
    ThreadSnapshot TS;
    if (!C.readVarint32(TS.Tid) || !C.readByte(TS.State) ||
        !C.readByte(TS.Reason) || !C.readVarint32(TS.WaitObject) ||
        !C.readVarint(TS.WakeTime) || !C.readVarint(TS.ReadyTime) ||
        !C.readVarint(TS.BlockStart) || !C.readVarint(TS.Instret) ||
        !C.readVarint(TS.RetValue) || !readZigzag(C, TS.PendingMutex))
      return corrupt("thread header", C.Pos);
    if (TS.State > static_cast<uint8_t>(rt::ThreadState::Faulted) ||
        TS.Reason > static_cast<uint8_t>(rt::BlockReason::ReplayGate))
      return corrupt("thread state out of range", C.Pos);
    uint64_t NumFrames = 0;
    if (!readCount(C, NumFrames, 4))
      return corrupt("frame count", C.Pos);
    TS.Stack.reserve(NumFrames);
    for (uint64_t F = 0; F != NumFrames; ++F) {
      FrameSnapshot FS;
      uint64_t NumRegs = 0;
      if (!C.readVarint32(FS.FuncId) || !C.readVarint32(FS.Ip) ||
          !C.readVarint32(FS.RetDst) || !readCount(C, NumRegs, 8))
        return corrupt("frame", C.Pos);
      FS.Regs.resize(NumRegs);
      for (uint64_t R = 0; R != NumRegs; ++R)
        if (!C.readLe64At(FS.Regs[R]))
          return corrupt("frame registers", C.Pos);
      TS.Stack.push_back(std::move(FS));
    }
    if (!readHeldList(C, TS.HeldWeak) ||
        !readHeldList(C, TS.PendingReacquire))
      return corrupt("weak-lock holds", C.Pos);
    if (!readVarints(C, TS.JoinWaiters))
      return corrupt("join waiters", C.Pos);
    Snap.Threads.push_back(std::move(TS));
  }

  uint64_t NumSyncs = 0;
  if (!readCount(C, NumSyncs, 5))
    return corrupt("sync count", C.Pos);
  Snap.Syncs.reserve(NumSyncs);
  for (uint64_t S = 0; S != NumSyncs; ++S) {
    SyncObjectSnapshot SS;
    if (!readZigzag(C, SS.Owner) || !C.readVarint(SS.Generation) ||
        !readVarints(C, SS.Arrived) || !readVarints64(C, SS.ArrivedTimes) ||
        !readVarints(C, SS.CondWaiters))
      return corrupt("sync object", C.Pos);
    Snap.Syncs.push_back(std::move(SS));
  }

  uint64_t NumReady = 0;
  if (!readCount(C, NumReady, 2))
    return corrupt("ready count", C.Pos);
  Snap.ReadyQueue.reserve(NumReady);
  for (uint64_t R = 0; R != NumReady; ++R) {
    ReadySnapshot RS;
    if (!C.readVarint32(RS.Tid) || !C.readVarint(RS.ReadyTime))
      return corrupt("ready entry", C.Pos);
    Snap.ReadyQueue.push_back(RS);
  }
  if (!readVarints64(C, Snap.CoreTimes))
    return corrupt("core times", C.Pos);

  uint64_t NumOutput = 0;
  if (!readCount(C, NumOutput, 8))
    return corrupt("output count", C.Pos);
  Snap.Output.resize(NumOutput);
  for (uint64_t I = 0; I != NumOutput; ++I)
    if (!C.readLe64At(Snap.Output[I]))
      return corrupt("output words", C.Pos);

  if (!C.readLe64At(Snap.StateHash))
    return corrupt("state hash", C.Pos);

  // Memory: resize the accumulators (segments only grow), then apply
  // this checkpoint's dirty pages on top of the previous contents.
  uint64_t GlobalSize = 0;
  if (!C.readVarint(GlobalSize) || !C.readVarint(Snap.HeapUsed))
    return corrupt("memory sizes", C.Pos);
  if (GlobalSize < AccumGlobal.size() || Snap.HeapUsed < AccumHeap.size())
    return corrupt("memory segment shrank", C.Pos);
  // A plausibility cap: a page covers at most 512 words, so a segment
  // larger than pages-the-input-could-hold times anything sane is bogus.
  // 1 GiB of words mirrors MaxDecompressedBytes.
  if (GlobalSize > (uint64_t(1) << 27) || Snap.HeapUsed > (uint64_t(1) << 27))
    return corrupt("memory size implausible", C.Pos);
  AccumGlobal.resize(GlobalSize, 0);
  AccumHeap.resize(Snap.HeapUsed, 0);

  uint64_t NumPages = 0;
  if (!readCount(C, NumPages, 2))
    return corrupt("page count", C.Pos);
  for (uint64_t P = 0; P != NumPages; ++P) {
    uint64_t Key = 0, Words = 0;
    if (!C.readVarint(Key) || !C.readVarint(Words))
      return corrupt("page header", C.Pos);
    std::vector<uint64_t> &Seg = (Key & 1) ? AccumHeap : AccumGlobal;
    uint64_t Start = (Key >> 1) * CheckpointPageWords;
    if (Words == 0 || Words > CheckpointPageWords || Start >= Seg.size() ||
        Words > Seg.size() - Start)
      return corrupt("page out of range", C.Pos);
    for (uint64_t I = 0; I != Words; ++I)
      if (!C.readLe64At(Seg[Start + I]))
        return corrupt("page words", C.Pos);
  }
  if (!C.atEnd())
    return corrupt("trailing bytes", C.Pos);

  Snap.GlobalWords = AccumGlobal;
  Snap.HeapWords = AccumHeap;

  // End-to-end validation: the reassembled memory and output must hash
  // to the value captured live, or the delta chain is corrupt in a way
  // the CRCs missed.
  if (rt::snapshotStateHash(Snap) != Snap.StateHash)
    return support::Error::failure(
        "corrupt checkpoint: reassembled state hash mismatch");
  return Snap;
}
