//===- replay/Recorder.cpp - Recording convenience API ---------------------===//

#include "replay/Recorder.h"

using namespace chimera;

rt::ExecutionResult chimera::replay::recordExecution(
    const ir::Module &M, uint64_t Seed, unsigned NumCores,
    rt::ExecutionObserver *Obs) {
  rt::MachineOptions MO;
  MO.Mode = rt::ExecMode::Record;
  MO.Seed = Seed;
  MO.NumCores = NumCores;
  MO.Observer = Obs;
  rt::Machine Machine(M, MO);
  return Machine.run();
}
