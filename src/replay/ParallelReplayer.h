//===- replay/ParallelReplayer.h - Epoch-parallel log replay ----*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Epoch-parallel replay: partition a segmented log at its checkpoints
/// into K epochs, replay every epoch concurrently on the analysis
/// thread pool, and stitch the results — bit-identical to sequential
/// replay for any job count.
///
/// Why this is sound: a checkpoint captures the machine between
/// dispatches together with its log position (gate cursors, input
/// cursors, revocation prefix), and Chimera's weak-lock ordering makes
/// the state at any recorded log prefix schedule-independent. Epoch j
/// therefore restores checkpoint j-1 (MachineOptions::ResumeFrom) and
/// runs forward under an epoch fence (MachineOptions::StopAt) until
/// every thread is parked exactly at checkpoint j's per-thread retired
/// instruction counts — by construction the state it reaches is the
/// state checkpoint j recorded, which the stitch verifies through the
/// snapshots' end-to-end state hashes.
///
/// The log itself is also decoded epoch-parallel: each worker opens an
/// independent LogReader cursor at its epoch's checkpoint
/// (LogReader::openAt, O(1) with the CIDX footer) and decodes only its
/// own record range; fragments are concatenated in epoch order and the
/// cumulative event counts at every boundary are checked against the
/// snapshot cursors before any machine runs.
///
/// Fault behavior is pinned to sequential replay: if anything along the
/// parallel path disagrees with the log — a damaged segment, a missing
/// End record, a stitch mismatch — the whole operation falls back to
/// sequential recovery + cold replay, so a damaged log produces exactly
/// the result (and error) sequential replay produces.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_REPLAY_PARALLELREPLAYER_H
#define CHIMERA_REPLAY_PARALLELREPLAYER_H

#include "replay/LogReader.h"
#include "runtime/Machine.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"

namespace chimera {
namespace replay {

class ParallelReplayer {
public:
  struct Options {
    /// Maximum concurrent epochs. The effective epoch count is
    /// min(Jobs, checkpoints + 1); 1 (or a null Pool) replays
    /// sequentially.
    unsigned Jobs = 1;

    /// Pool the epochs run on (the caller participates). Required for
    /// Jobs > 1.
    support::ThreadPool *Pool = nullptr;

    /// Base machine options for every epoch. Mode, log, resume/stop
    /// snapshots, and per-run sinks are overridden per epoch; cores,
    /// cost model, batching, and timeouts are taken from here.
    rt::MachineOptions Machine;

    /// replay.parallel.* metrics target (optional). Epoch machines run
    /// without a registry — the stitcher publishes once, from the
    /// calling thread.
    obs::Registry *Metrics = nullptr;
  };

  struct Result {
    /// Merged execution result: the final epoch's outcome, state hash,
    /// and output, with countable stats summed across epochs. StateHash
    /// and Output are bit-identical to sequential replay; cycle-domain
    /// stats follow the resumed-replay contract (state, not timing).
    rt::ExecutionResult Exec;

    /// The decoded log that was replayed (merged from the epoch
    /// fragments, or from sequential recovery on fallback) — byte-for-
    /// byte the log sequential recovery yields.
    rt::ExecutionLog Log;

    unsigned Epochs = 1;
    /// Epoch boundaries came from the CIDX footer (O(1) seek) rather
    /// than a linear scan.
    bool UsedCheckpointIndex = false;
    /// The parallel path was abandoned (damaged log, stitch mismatch,
    /// or epoch failure) and the result is sequential recovery + cold
    /// replay.
    bool FellBackSequential = false;
    /// Boundary validations performed (fragment-count and state-hash
    /// checks both count).
    uint64_t StitchChecks = 0;
    /// False when the log could not be recovered through its End record
    /// (only the sequential path can observe this — a damaged log always
    /// falls back). Exec then replays the recovered prefix, or carries a
    /// failure when the damage predates the Meta record.
    bool LogComplete = true;
    /// Recovery failure message when !LogComplete.
    std::string LogError;
    /// Wall time of each epoch's replay, microseconds (empty on the
    /// sequential path).
    std::vector<uint64_t> EpochWallUs;
  };

  /// Replays the log behind \p Reader against module \p M. Repositions
  /// \p Reader (it serves as epoch 0's cursor); forked cursors handle
  /// the other epochs concurrently.
  static Result replay(const ir::Module &M, LogReader &Reader,
                       const Options &Opts);
};

} // namespace replay
} // namespace chimera

#endif // CHIMERA_REPLAY_PARALLELREPLAYER_H
