//===- replay/Replayer.h - Replay convenience API ---------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin convenience wrapper over Machine's replay mode.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_REPLAY_REPLAYER_H
#define CHIMERA_REPLAY_REPLAYER_H

#include "runtime/Machine.h"

namespace chimera {
namespace replay {

/// Replays \p Log against \p M. The seed intentionally differs from any
/// recording seed: replay correctness cannot depend on it.
rt::ExecutionResult replayExecution(const ir::Module &M,
                                    const rt::ExecutionLog &Log,
                                    unsigned NumCores = 4,
                                    rt::ExecutionObserver *Obs = nullptr);

} // namespace replay
} // namespace chimera

#endif // CHIMERA_REPLAY_REPLAYER_H
