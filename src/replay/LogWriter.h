//===- replay/LogWriter.h - Segmented log storage engine --------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The record-side storage engine: a rt::LogEventSink that frames log
/// events into the crash-safe segmented on-disk format (LogFormat.h,
/// docs/LOG_FORMAT.md) as the Machine emits them, instead of serializing
/// one monolithic blob after the run.
///
/// Compression runs off the record critical path: when a ThreadPool is
/// attached, each closed segment is handed to a worker while recording
/// continues into the next buffer, double-buffered — at most two
/// segments are in flight, and when a third close finds both slots busy
/// the record thread compresses that segment itself (counted in the
/// "record.compress.backlog" metric) instead of sleeping. Completed
/// segments are written strictly in sequence order, and per-segment
/// compression is a pure function of the raw payload, so the bytes on
/// disk are bit-identical with or without the pool.
///
/// I/O errors latch: sink callbacks cannot fail (the Machine is
/// mid-simulation), so the first error is kept and reported by finish().
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_REPLAY_LOGWRITER_H
#define CHIMERA_REPLAY_LOGWRITER_H

#include "replay/LogFormat.h"
#include "runtime/LogEvents.h"
#include "runtime/Snapshot.h"
#include "support/Expected.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace chimera {
namespace replay {

class LogWriter final : public rt::LogEventSink {
public:
  struct Options {
    /// Raw payload bytes after which a segment is closed. A record is
    /// never split: the segment closes at the first record boundary at
    /// or past this size.
    uint64_t SegmentBytes = 64 * 1024;

    /// Workload/config fingerprint echoed in the file header so a log
    /// cannot silently be replayed against the wrong build of a program.
    uint64_t Fingerprint = 0;

    /// Compression pool; null (or an inline pool) compresses
    /// synchronously on the record thread.
    support::ThreadPool *Pool = nullptr;

    obs::Registry *Metrics = nullptr;
  };

  LogWriter(std::string Path, Options Opts);
  ~LogWriter() override; ///< Calls finish() if it has not run.

  LogWriter(const LogWriter &) = delete;
  LogWriter &operator=(const LogWriter &) = delete;

  // -- rt::LogEventSink.
  void onStart(uint32_t NumSyncObjects, uint32_t NumWeakLocks) override;
  void onOrdered(uint32_t Obj, uint32_t Tid, rt::OrderedOp Op) override;
  void onInput(uint32_t Tid, rt::InputKind Kind, uint64_t Value) override;
  void onRevocation(const rt::RevocationEvent &Rev) override;
  void onCheckpoint(const rt::MachineSnapshot &Snap) override;
  void onEnd(uint32_t NumThreads, uint64_t OrderedEvents,
             uint64_t InputEvents) override;

  /// Flushes the open segment, drains in-flight compression, closes the
  /// file, publishes metrics, and returns the first latched I/O error.
  /// Idempotent; the destructor calls it if the caller did not.
  support::Error finish();

  uint64_t segmentsWritten() const { return SegmentsWritten; }
  /// Times the record thread compressed a segment itself because two
  /// segments were already in flight (the double-buffer was full).
  uint64_t backlogStalls() const { return BacklogStalls; }

private:
  /// A segment after compression, ready to be framed and written.
  struct DoneSegment {
    uint8_t Flags = 0;
    uint32_t RawSize = 0;
    std::vector<uint8_t> Stored;
  };

  void maybeCloseSegment();
  void closeSegment();
  /// Compresses a raw payload; keeps it uncompressed when LZ does not
  /// shrink it. Pure function — this is what makes async output
  /// bit-identical to sync.
  static DoneSegment compressSegment(std::vector<uint8_t> Raw,
                                     uint8_t Flags);
  /// Frames and writes segment \p Seq; latches I/O errors.
  void writeSegment(uint32_t Seq, const DoneSegment &Done);
  /// Writes completed segments in sequence order; with \p WaitAll,
  /// blocks until every closed segment has been written.
  void drainCompleted(bool WaitAll);
  void latchError(const std::string &Message);

  std::string Path;
  Options Opts;
  std::FILE *File = nullptr;
  bool Finished = false;
  support::Error IoError;

  std::vector<uint8_t> Cur; ///< Raw payload of the open segment.
  bool CurHasCheckpoint = false;
  uint32_t NextSeq = 0;      ///< Sequence assigned at the next close.
  uint32_t NextWriteSeq = 0; ///< Sequence the file expects next.
  uint64_t SegmentsWritten = 0;
  uint64_t BacklogStalls = 0;
  uint64_t RawBytes = 0, StoredBytes = 0;

  /// Memory contents of the previous checkpoint (delta-page base).
  std::vector<uint64_t> PrevGlobal, PrevHeap;

  /// CIDX footer under construction: one entry per checkpoint record.
  /// Seq and PayloadPos are known at onCheckpoint time; SegmentOffset is
  /// resolved in writeSegment once the owning segment reaches the file.
  std::vector<CidxEntry> CidxEntries;
  size_t CidxResolved = 0; ///< Entries with SegmentOffset filled in.
  uint64_t FileBytes = 0;  ///< Bytes written so far (next segment offset).

  // Async compression rendezvous (record thread + pool workers).
  std::mutex Mu;
  std::condition_variable Cv;
  unsigned InFlight = 0; ///< Submitted, not yet in Completed.
  std::map<uint32_t, DoneSegment> Completed;
};

} // namespace replay
} // namespace chimera

#endif // CHIMERA_REPLAY_LOGWRITER_H
