//===- replay/DeterminismChecker.h - Replay validation ----------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compares a recorded execution against its replay: final memory/output
/// fingerprints, output streams, and success states. Used by tests and
/// by the benches to assert every reported replay was actually
/// deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_REPLAY_DETERMINISMCHECKER_H
#define CHIMERA_REPLAY_DETERMINISMCHECKER_H

#include "runtime/Machine.h"

#include <string>

namespace chimera {
namespace replay {

struct DeterminismVerdict {
  bool Deterministic = false;
  std::string Reason; ///< Empty when deterministic.
};

/// Checks that \p Replay faithfully reproduced \p Record.
DeterminismVerdict checkDeterminism(const rt::ExecutionResult &Record,
                                    const rt::ExecutionResult &Replay);

} // namespace replay
} // namespace chimera

#endif // CHIMERA_REPLAY_DETERMINISMCHECKER_H
