//===- replay/LogReader.h - Streaming segmented-log reader ------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The replay-side storage engine: streams records out of a segmented
/// log file (LogFormat.h, docs/LOG_FORMAT.md) one at a time, validating
/// as it goes — segment header CRC, payload CRC, sequence continuity,
/// decompressed size, record framing — so corruption is reported as a
/// typed error naming the segment and offset instead of crashing or
/// silently diverging.
///
/// Three access patterns:
///  - next(): pull records in stream order (the core API);
///  - seekToCheckpoint(): position the stream just after the last
///    restorable checkpoint and return its snapshot, for resumed replay;
///  - recover(): drain the whole stream into an rt::ExecutionLog,
///    keeping everything up to the first corruption (graceful
///    degradation for truncated / damaged files).
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_REPLAY_LOGREADER_H
#define CHIMERA_REPLAY_LOGREADER_H

#include "replay/LogFormat.h"
#include "runtime/ExecutionLog.h"
#include "runtime/Snapshot.h"
#include "support/Expected.h"
#include "support/Metrics.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace chimera {
namespace replay {

class LogReader {
public:
  struct Options {
    /// When CheckFingerprint is set, open() fails unless the file header
    /// fingerprint equals ExpectedFingerprint — a log recorded against
    /// one build of a program cannot be replayed against another.
    uint64_t ExpectedFingerprint = 0;
    bool CheckFingerprint = false;

    obs::Registry *Metrics = nullptr;
  };

  /// One decoded record. Tag says which fields are meaningful.
  struct Record {
    RecordTag Tag = RecordTag::Meta;

    // Meta.
    uint32_t NumSyncObjects = 0;
    uint32_t NumWeakLocks = 0;

    // Ordered.
    uint32_t Obj = 0;
    uint32_t Tid = 0; ///< Also Input.
    rt::OrderedOp Op = rt::OrderedOp::MutexLock;

    // Input.
    rt::InputKind Kind = rt::InputKind::Input;
    uint64_t Value = 0;

    // Revocation.
    rt::RevocationEvent Rev;

    // Checkpoint.
    rt::MachineSnapshot Snapshot;

    // End.
    uint32_t NumThreads = 0;
    uint64_t TotalOrdered = 0;
    uint64_t TotalInputs = 0;
  };

  /// recover() result: the rebuilt log, how far recovery got, and — when
  /// the stream was damaged — the typed error that stopped it.
  struct RecoveredLog {
    rt::ExecutionLog Log;
    /// True when the stream ended with a valid End record whose totals
    /// match; only then is the log certified byte-complete.
    bool Complete = false;
    /// The error that ended recovery early (empty when Complete).
    support::Error Failure;
    /// Last checkpoint seen before the stream ended, if any.
    std::unique_ptr<rt::MachineSnapshot> LastCheckpoint;
    uint64_t SegmentsRead = 0;
    uint64_t RecordsRecovered = 0;
    uint64_t CheckpointsMerged = 0;
  };

  /// Validates the 16-byte file header and constructs a reader over
  /// \p Bytes. A non-"CLG1" magic is an error (callers use it to fall
  /// back to the legacy monolithic format).
  static support::Expected<LogReader> open(std::vector<uint8_t> Bytes,
                                           Options Opts);
  /// Reads \p Path fully into memory, then open().
  static support::Expected<LogReader> openFile(const std::string &Path,
                                               Options Opts);

  LogReader(LogReader &&) = default;
  LogReader &operator=(LogReader &&) = default;
  LogReader(const LogReader &) = delete;
  LogReader &operator=(const LogReader &) = delete;

  /// Decodes the next record into \p Out. Returns false at clean end of
  /// stream, true on a record, or a typed error naming the segment and
  /// offset of the first corruption. Errors are sticky: the stream does
  /// not advance past them.
  support::Expected<bool> next(Record &Out);

  /// Rewinds to the first record (just after the file header).
  void rewind();

  /// Scans the whole stream for its last restorable checkpoint, then
  /// repositions so subsequent next() calls yield exactly the records
  /// after that checkpoint. Damage after the checkpoint does not matter
  /// here; damage before it bounds which checkpoints are restorable.
  /// Fails when no checkpoint is restorable.
  support::Expected<rt::MachineSnapshot> seekToCheckpoint();

  /// Drains the stream from the start into an ExecutionLog, keeping the
  /// longest valid prefix. Never fails: corruption is reported in
  /// RecoveredLog::Failure with everything before it preserved.
  /// Publishes replay.recover.* metrics when a registry is attached.
  RecoveredLog recover();

  uint64_t fingerprint() const { return Fingerprint; }
  /// True once next() has returned the End record.
  bool sawEnd() const { return SawEnd; }

private:
  explicit LogReader(std::vector<uint8_t> Bytes, Options Opts)
      : Bytes(std::move(Bytes)), Opts(Opts) {}

  /// Loads and validates the segment at FileOffset into Payload.
  /// Returns false at clean end of file.
  support::Expected<bool> loadNextSegment();
  support::Error segError(const std::string &What) const;

  std::vector<uint8_t> Bytes;
  Options Opts;
  uint64_t Fingerprint = 0;

  size_t FileOffset = FileHeaderBytes; ///< Next segment header.
  uint32_t NextSeq = 0;
  bool SawEnd = false;
  uint64_t SegmentsLoaded = 0; ///< Since the last rewind.

  std::vector<uint8_t> Payload; ///< Decompressed current segment.
  size_t PayloadPos = 0;
  uint32_t CurSeq = 0;          ///< Seq of the loaded segment.
  size_t CurSegmentOffset = 0;  ///< File offset of its header.
  bool HaveSegment = false;

  /// Checkpoint delta-page accumulators (Checkpoint.h contract).
  std::vector<uint64_t> AccumGlobal, AccumHeap;
};

} // namespace replay
} // namespace chimera

#endif // CHIMERA_REPLAY_LOGREADER_H
