//===- replay/LogReader.h - Streaming segmented-log reader ------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The replay-side storage engine: streams records out of a segmented
/// log file (LogFormat.h, docs/LOG_FORMAT.md) one at a time, validating
/// as it goes — segment header CRC, payload CRC, sequence continuity,
/// decompressed size, record framing — so corruption is reported as a
/// typed error naming the segment and offset instead of crashing or
/// silently diverging.
///
/// Four access patterns:
///  - next(): pull records in stream order (the core API);
///  - seekToCheckpoint(): position the stream just after the last
///    restorable checkpoint and return its snapshot, for resumed replay;
///  - recover(): drain the whole stream into an rt::ExecutionLog,
///    keeping everything up to the first corruption (graceful
///    degradation for truncated / damaged files);
///  - checkpoints() / openAt(): random access — enumerate every
///    checkpoint (O(1) when the file carries a CIDX footer, one cached
///    scan otherwise) and fork an independent cursor positioned right
///    after any of them. Forked cursors share the file bytes read-only,
///    so epoch-parallel replay streams every epoch concurrently.
///
/// The CIDX footer is advisory: absent or corrupt, every query falls
/// back to the linear scan and never fails because of the footer.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_REPLAY_LOGREADER_H
#define CHIMERA_REPLAY_LOGREADER_H

#include "replay/LogFormat.h"
#include "runtime/ExecutionLog.h"
#include "runtime/Snapshot.h"
#include "support/Expected.h"
#include "support/Metrics.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace chimera {
namespace replay {

class LogReader {
public:
  struct Options {
    /// When CheckFingerprint is set, open() fails unless the file header
    /// fingerprint equals ExpectedFingerprint — a log recorded against
    /// one build of a program cannot be replayed against another.
    uint64_t ExpectedFingerprint = 0;
    bool CheckFingerprint = false;

    obs::Registry *Metrics = nullptr;
  };

  /// One decoded record. Tag says which fields are meaningful.
  struct Record {
    RecordTag Tag = RecordTag::Meta;

    // Meta.
    uint32_t NumSyncObjects = 0;
    uint32_t NumWeakLocks = 0;

    // Ordered.
    uint32_t Obj = 0;
    uint32_t Tid = 0; ///< Also Input.
    rt::OrderedOp Op = rt::OrderedOp::MutexLock;

    // Input.
    rt::InputKind Kind = rt::InputKind::Input;
    uint64_t Value = 0;

    // Revocation.
    rt::RevocationEvent Rev;

    // Checkpoint.
    rt::MachineSnapshot Snapshot;

    // End.
    uint32_t NumThreads = 0;
    uint64_t TotalOrdered = 0;
    uint64_t TotalInputs = 0;
  };

  /// Location and identity of one checkpoint record, for random access
  /// (openAt). Comes from the CIDX footer when the file has one, from a
  /// cached linear scan otherwise.
  struct CheckpointInfo {
    size_t Index = 0;           ///< Position in checkpoints() order.
    uint64_t SegmentOffset = 0; ///< File offset of the owning segment.
    uint32_t Seq = 0;           ///< That segment's sequence number.
    uint32_t PayloadPos = 0;    ///< Record tag byte within the payload.
    uint64_t StateHash = 0;     ///< Snapshot's end-to-end state hash.
    uint64_t LogEventsAtCapture = 0;
  };

  /// Every checkpoint with its decoded snapshot, in stream order
  /// (Snapshots[I] belongs to Infos[I]).
  struct CheckpointChain {
    std::vector<CheckpointInfo> Infos;
    std::vector<rt::MachineSnapshot> Snapshots;
  };

  /// recover() result: the rebuilt log, how far recovery got, and — when
  /// the stream was damaged — the typed error that stopped it.
  struct RecoveredLog {
    rt::ExecutionLog Log;
    /// True when the stream ended with a valid End record whose totals
    /// match; only then is the log certified byte-complete.
    bool Complete = false;
    /// The error that ended recovery early (empty when Complete).
    support::Error Failure;
    /// Last checkpoint seen before the stream ended, if any.
    std::unique_ptr<rt::MachineSnapshot> LastCheckpoint;
    uint64_t SegmentsRead = 0;
    uint64_t RecordsRecovered = 0;
    uint64_t CheckpointsMerged = 0;
  };

  /// Validates the 16-byte file header and constructs a reader over
  /// \p Bytes. A non-"CLG1" magic is an error (callers use it to fall
  /// back to the legacy monolithic format).
  static support::Expected<LogReader> open(std::vector<uint8_t> Bytes,
                                           Options Opts);
  /// Reads \p Path fully into memory, then open().
  static support::Expected<LogReader> openFile(const std::string &Path,
                                               Options Opts);

  LogReader(LogReader &&) = default;
  LogReader &operator=(LogReader &&) = default;
  LogReader(const LogReader &) = delete;
  LogReader &operator=(const LogReader &) = delete;

  /// Decodes the next record into \p Out. Returns false at clean end of
  /// stream, true on a record, or a typed error naming the segment and
  /// offset of the first corruption. Errors are sticky: the stream does
  /// not advance past them.
  support::Expected<bool> next(Record &Out);

  /// Rewinds to the first record (just after the file header).
  void rewind();

  /// Positions the stream just after the last restorable checkpoint and
  /// returns its snapshot. Uses the CIDX footer when present (decoding
  /// only checkpoint-bearing segments), the cached checkpoint scan
  /// otherwise. Damage after the checkpoint does not matter here; damage
  /// the restore chain depends on bounds which checkpoints are
  /// restorable. Fails when no checkpoint is restorable.
  support::Expected<rt::MachineSnapshot> seekToCheckpoint();

  /// Enumerates the log's checkpoints without moving this cursor: O(1)
  /// from the CIDX footer when the file has a valid one, otherwise one
  /// linear scan whose result is cached for the reader's lifetime (the
  /// bytes are immutable). On a damaged footer-less log the list stops
  /// at the first corruption — exactly the checkpoints recover() would
  /// reach.
  const std::vector<CheckpointInfo> &checkpoints();

  /// checkpoints() plus the decoded snapshot for each entry, validated
  /// end to end (delta chain, per-snapshot state hash). When the footer
  /// path fails validation anywhere, the footer is discarded and the
  /// chain is rebuilt by linear scan, so the result is always
  /// self-consistent with what sequential recovery would accept.
  CheckpointChain loadCheckpointChain();

  /// Forks an independent cursor positioned on the first record after
  /// checkpoint \p At. The fork shares this reader's (immutable) bytes,
  /// so concurrent forks may stream from different threads. \p Resume,
  /// when given, must be \p At's decoded snapshot; it seeds the delta
  /// accumulators so the fork can decode later checkpoint records.
  support::Expected<LogReader>
  openAt(const CheckpointInfo &At,
         const rt::MachineSnapshot *Resume = nullptr) const;

  /// True when the file carried a structurally valid CIDX footer.
  bool hasCheckpointIndex() const { return HaveFooter; }

  /// Drains the stream from the start into an ExecutionLog, keeping the
  /// longest valid prefix. Never fails: corruption is reported in
  /// RecoveredLog::Failure with everything before it preserved.
  /// Publishes replay.recover.* metrics when a registry is attached.
  RecoveredLog recover();

  uint64_t fingerprint() const { return Fingerprint; }
  /// True once next() has returned the End record.
  bool sawEnd() const { return SawEnd; }

private:
  explicit LogReader(std::shared_ptr<const std::vector<uint8_t>> Data,
                     Options Opts)
      : Data(std::move(Data)), Opts(Opts) {}

  /// A fresh cursor over the same bytes (shared, read-only): footer
  /// knowledge is copied, streaming state starts rewound.
  LogReader fork() const;

  /// Loads and validates the segment at FileOffset into Payload.
  /// Returns false at clean end of file (DataEnd).
  support::Expected<bool> loadNextSegment();
  support::Error segError(const std::string &What) const;

  /// Repositions *this* cursor on the first record after \p At, seeding
  /// the delta accumulators from \p Resume when given.
  support::Error positionAfter(const CheckpointInfo &At,
                               const rt::MachineSnapshot *Resume);
  /// Linear checkpoint scan on a fork (this cursor does not move);
  /// optionally keeps the decoded snapshots.
  std::vector<CheckpointInfo>
  scanCheckpoints(std::vector<rt::MachineSnapshot> *Snaps) const;
  /// File offset one past the last segment passing every framing + CRC
  /// check — the horizon sequential recovery cannot read beyond. CRC
  /// only, no decompression: failures past an intact CRC would need a
  /// collision.
  size_t validSegmentPrefixEnd() const;
  /// Drops a footer that failed downstream validation; later queries use
  /// the linear scan.
  void invalidateFooter();

  std::shared_ptr<const std::vector<uint8_t>> Data;
  Options Opts;
  uint64_t Fingerprint = 0;

  /// One past the last segment byte: file size, or the CIDX footer start
  /// when the file carries one. Bytes past DataEnd are never segment
  /// data, so the footer reads as clean end-of-stream.
  size_t DataEnd = 0;
  bool HaveFooter = false;
  std::vector<CidxEntry> FooterEntries;
  bool InfosValid = false; ///< CachedInfos populated.
  std::vector<CheckpointInfo> CachedInfos;

  size_t FileOffset = FileHeaderBytes; ///< Next segment header.
  uint32_t NextSeq = 0;
  bool SawEnd = false;
  uint64_t SegmentsLoaded = 0; ///< Since the last rewind.

  std::vector<uint8_t> Payload; ///< Decompressed current segment.
  size_t PayloadPos = 0;
  size_t RecStart = 0;          ///< Payload offset of next()'s last record.
  uint32_t CurSeq = 0;          ///< Seq of the loaded segment.
  size_t CurSegmentOffset = 0;  ///< File offset of its header.
  bool HaveSegment = false;

  /// Checkpoint delta-page accumulators (Checkpoint.h contract).
  std::vector<uint64_t> AccumGlobal, AccumHeap;
};

} // namespace replay
} // namespace chimera

#endif // CHIMERA_REPLAY_LOGREADER_H
