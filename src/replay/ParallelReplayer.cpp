//===- replay/ParallelReplayer.cpp - Epoch-parallel log replay -------------===//

#include "replay/ParallelReplayer.h"

#include <algorithm>
#include <chrono>
#include <utility>

using namespace chimera;
using namespace chimera::replay;

namespace {

uint64_t nowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One epoch's decoded record range, in stream order. Ordered/input
/// events keep their object/thread key so fragments concatenate into an
/// ExecutionLog without re-reading the file.
struct Fragment {
  std::vector<std::pair<uint32_t, rt::OrderedEvent>> Ordered;
  std::vector<std::pair<uint32_t, rt::InputEvent>> Inputs;
  std::vector<rt::RevocationEvent> Revocations;

  bool SawMeta = false; ///< Legal only in epoch 0, as the first record.
  uint32_t NumSyncObjects = 0, NumWeakLocks = 0;

  bool SawEnd = false; ///< Legal only in the final epoch.
  uint32_t NumThreads = 0;
  uint64_t TotalOrdered = 0, TotalInputs = 0;

  uint64_t BoundaryHash = 0; ///< The terminating checkpoint's StateHash.
  bool HitBoundary = false;

  /// Anything inconsistent with the checkpoint chain (decode error,
  /// early EOF, unexpected record). Triggers the sequential fallback —
  /// never a guess.
  bool Bad = false;
};

/// Streams \p Cur until the epoch's terminating checkpoint (the
/// \p CkptsToConsume-th one) or, for the final epoch, the End record.
void decodeFragment(LogReader &Cur, size_t CkptsToConsume, bool IsFirst,
                    bool IsLast, Fragment &F) {
  LogReader::Record R;
  size_t Seen = 0;
  for (;;) {
    support::Expected<bool> Got = Cur.next(R);
    if (!Got) {
      F.Bad = true;
      return;
    }
    if (!*Got) {
      // Clean EOF is only legal after the final epoch's End record.
      F.Bad = true;
      return;
    }
    switch (R.Tag) {
    case RecordTag::Meta:
      if (!IsFirst || F.SawMeta || !F.Ordered.empty() || !F.Inputs.empty() ||
          !F.Revocations.empty()) {
        F.Bad = true;
        return;
      }
      F.SawMeta = true;
      F.NumSyncObjects = R.NumSyncObjects;
      F.NumWeakLocks = R.NumWeakLocks;
      break;
    case RecordTag::Ordered:
      F.Ordered.emplace_back(R.Obj, rt::OrderedEvent{R.Tid, R.Op});
      break;
    case RecordTag::Input:
      F.Inputs.emplace_back(R.Tid, rt::InputEvent{R.Kind, R.Value});
      break;
    case RecordTag::Revocation:
      F.Revocations.push_back(R.Rev);
      break;
    case RecordTag::Checkpoint:
      ++Seen;
      if (!IsLast && Seen == CkptsToConsume) {
        F.BoundaryHash = R.Snapshot.StateHash;
        F.HitBoundary = true;
        return;
      }
      if (Seen > CkptsToConsume) {
        F.Bad = true; // More checkpoints than the chain enumerated.
        return;
      }
      break;
    case RecordTag::End:
      if (!IsLast) {
        F.Bad = true;
        return;
      }
      F.SawEnd = true;
      F.NumThreads = R.NumThreads;
      F.TotalOrdered = R.TotalOrdered;
      F.TotalInputs = R.TotalInputs;
      return;
    }
  }
}

/// Epoch boundaries: checkpoint indices chosen so epochs carry roughly
/// equal log-event counts. The total is estimated as the last
/// checkpoint's event count plus one average inter-checkpoint gap for
/// the tail after it.
std::vector<size_t>
pickBoundaries(const std::vector<LogReader::CheckpointInfo> &Infos,
               unsigned K) {
  std::vector<size_t> B;
  size_t N = Infos.size();
  if (K <= 1 || N == 0)
    return B;
  uint64_t Tlast = Infos.back().LogEventsAtCapture;
  uint64_t Est = Tlast + Tlast / N;
  size_t Next = 0;
  for (unsigned I = 1; I < K; ++I) {
    uint64_t Target = Est * I / K;
    size_t Pick = Next;
    while (Pick < N && Infos[Pick].LogEventsAtCapture < Target)
      ++Pick;
    if (Pick >= N)
      break;
    B.push_back(Pick);
    Next = Pick + 1;
  }
  return B;
}

/// Concatenates fragments in epoch order, validating every boundary
/// against its snapshot's log position (stitch check #1) and the End
/// totals. Returns false on any mismatch.
bool mergeFragments(const std::vector<Fragment> &Frags,
                    const LogReader::CheckpointChain &Chain,
                    const std::vector<size_t> &B, rt::ExecutionLog &Log,
                    uint64_t &Stitches) {
  size_t K = Frags.size();
  if (Frags[0].Bad || !Frags[0].SawMeta)
    return false;
  Log.NumSyncObjects = Frags[0].NumSyncObjects;
  Log.NumWeakLocks = Frags[0].NumWeakLocks;
  Log.PerObject.assign(Log.numOrderedObjects(), {});

  for (size_t J = 0; J != K; ++J) {
    const Fragment &F = Frags[J];
    bool Last = J + 1 == K;
    if (F.Bad || (!Last && !F.HitBoundary) || (Last && !F.SawEnd))
      return false;
    if (J > 0 && F.SawMeta)
      return false;

    for (const auto &OE : F.Ordered) {
      if (OE.first >= Log.PerObject.size())
        return false;
      Log.PerObject[OE.first].push_back(OE.second);
    }
    for (const auto &IE : F.Inputs) {
      if (IE.first >= Log.PerThreadInputs.size())
        Log.PerThreadInputs.resize(IE.first + 1);
      Log.PerThreadInputs[IE.first].push_back(IE.second);
    }
    Log.Revocations.insert(Log.Revocations.end(), F.Revocations.begin(),
                           F.Revocations.end());

    if (!Last) {
      // The log prefix merged so far must sit exactly at the boundary
      // snapshot's recorded position.
      const rt::MachineSnapshot &S = Chain.Snapshots[B[J]];
      if (S.GateCursors.size() != Log.PerObject.size())
        return false;
      for (size_t O = 0; O != Log.PerObject.size(); ++O)
        if (Log.PerObject[O].size() != S.GateCursors[O])
          return false;
      size_t Threads =
          std::max(S.InputCursors.size(), Log.PerThreadInputs.size());
      for (size_t T = 0; T != Threads; ++T) {
        uint64_t Want = T < S.InputCursors.size() ? S.InputCursors[T] : 0;
        uint64_t Have =
            T < Log.PerThreadInputs.size() ? Log.PerThreadInputs[T].size() : 0;
        if (Want != Have)
          return false;
      }
      if (Log.Revocations.size() != S.RevocationsDone)
        return false;
      if (F.BoundaryHash != S.StateHash)
        return false;
      ++Stitches;
    } else {
      Log.NumThreads = F.NumThreads;
      if (Log.PerThreadInputs.size() < F.NumThreads)
        Log.PerThreadInputs.resize(F.NumThreads);
      if (Log.totalOrderedEvents() != F.TotalOrdered ||
          Log.totalInputEvents() != F.TotalInputs)
        return false;
      ++Stitches;
    }
  }
  return true;
}

rt::MachineOptions replayOptions(const ParallelReplayer::Options &Opts,
                                 const rt::ExecutionLog &Log) {
  rt::MachineOptions MO = Opts.Machine;
  MO.Mode = rt::ExecMode::Replay;
  MO.Seed = 0xdeadbeef; // Replay must not depend on the seed.
  MO.ReplayLog = &Log;
  MO.ResumeFrom = nullptr;
  MO.StopAt = nullptr;
  // Per-run sinks stay off in epoch machines: they would see partial
  // executions, and the registry is published once by the stitcher.
  MO.Observer = nullptr;
  MO.LogSink = nullptr;
  MO.Metrics = nullptr;
  MO.Trace = nullptr;
  return MO;
}

/// Sequential recovery + cold replay: the reference semantics every
/// parallel outcome is pinned to, and the landing pad whenever the
/// parallel path finds the log (or itself) inconsistent.
ParallelReplayer::Result sequentialReplay(const ir::Module &M,
                                          LogReader &Reader,
                                          const ParallelReplayer::Options &Opts,
                                          bool FellBack) {
  ParallelReplayer::Result Res;
  Res.Epochs = 1;
  Res.FellBackSequential = FellBack;
  LogReader::RecoveredLog RL = Reader.recover();
  Res.LogComplete = RL.Complete;
  if (!RL.Complete)
    Res.LogError = RL.Failure.message();
  Res.Log = std::move(RL.Log);
  // The recovered prefix of a damaged log still replays (the machine
  // rejects it gracefully when the damage predates the Meta record).
  rt::MachineOptions MO = replayOptions(Opts, Res.Log);
  rt::Machine Mach(M, MO);
  Res.Exec = Mach.run();
  return Res;
}

void publishMetrics(obs::Registry *Reg, const ParallelReplayer::Result &Res) {
  if (!Reg)
    return;
  obs::Scope S(Reg, "replay.parallel");
  S.gauge("epochs").set(static_cast<int64_t>(Res.Epochs));
  S.gauge("stitch_checks").set(static_cast<int64_t>(Res.StitchChecks));
  S.gauge("used_index").set(Res.UsedCheckpointIndex ? 1 : 0);
  S.gauge("fallback_sequential").set(Res.FellBackSequential ? 1 : 0);
  uint64_t Max = 0, Sum = 0;
  for (uint64_t W : Res.EpochWallUs) {
    Max = std::max(Max, W);
    Sum += W;
  }
  S.gauge("epoch_wall_us_max").set(static_cast<int64_t>(Max));
  S.gauge("epoch_wall_us_total").set(static_cast<int64_t>(Sum));
  // Max epoch over the ideal (mean) epoch, percent: 100 = perfectly
  // balanced, 2x skew = 200.
  if (Sum > 0 && !Res.EpochWallUs.empty())
    S.gauge("imbalance_pct")
        .set(static_cast<int64_t>(Max * 100 * Res.EpochWallUs.size() / Sum));
}

} // namespace

ParallelReplayer::Result ParallelReplayer::replay(const ir::Module &M,
                                                  LogReader &Reader,
                                                  const Options &Opts) {
  unsigned Jobs = std::max(1u, Opts.Jobs);
  if (Jobs == 1 || !Opts.Pool) {
    Result Res = sequentialReplay(M, Reader, Opts, /*FellBack=*/false);
    publishMetrics(Opts.Metrics, Res);
    return Res;
  }

  // Enumerate + decode the checkpoint chain (O(1) via the CIDX footer
  // when present). No usable boundaries -> the log is one epoch.
  LogReader::CheckpointChain Chain = Reader.loadCheckpointChain();
  size_t N = Chain.Infos.size();
  unsigned K = static_cast<unsigned>(
      std::min<uint64_t>(Jobs, static_cast<uint64_t>(N) + 1));
  std::vector<size_t> B = pickBoundaries(Chain.Infos, K);
  K = static_cast<unsigned>(B.size()) + 1;
  if (K == 1) {
    Result Res = sequentialReplay(M, Reader, Opts, /*FellBack=*/false);
    publishMetrics(Opts.Metrics, Res);
    return Res;
  }

  Result Res;
  Res.Epochs = K;
  Res.UsedCheckpointIndex = Reader.hasCheckpointIndex();

  // Independent cursors: the caller's reader streams epoch 0 from the
  // start; every other epoch gets a fork positioned right after its
  // starting checkpoint, delta accumulators seeded from its snapshot.
  std::vector<LogReader> Forks;
  Forks.reserve(K - 1);
  for (unsigned J = 1; J != K; ++J) {
    support::Expected<LogReader> C =
        Reader.openAt(Chain.Infos[B[J - 1]], &Chain.Snapshots[B[J - 1]]);
    if (!C) {
      Result Seq = sequentialReplay(M, Reader, Opts, /*FellBack=*/true);
      publishMetrics(Opts.Metrics, Seq);
      return Seq;
    }
    Forks.push_back(C.take());
  }
  Reader.rewind();

  // Phase 1: epoch-parallel fragment decode. Per-epoch wall starts
  // here — an epoch's cost is its decode plus its replay, and both
  // parallelize, so the critical-path projection must count both.
  std::vector<Fragment> Frags(K);
  Res.EpochWallUs.assign(K, 0);
  Opts.Pool->parallelFor(K, [&](size_t J) {
    uint64_t T0 = nowUs();
    LogReader &Cur = J == 0 ? Reader : Forks[J - 1];
    bool Last = J + 1 == K;
    size_t FirstCkpt = J == 0 ? 0 : B[J - 1] + 1;
    size_t Ckpts = Last ? N - FirstCkpt : B[J] + 1 - FirstCkpt;
    decodeFragment(Cur, Ckpts, /*IsFirst=*/J == 0, Last, Frags[J]);
    Res.EpochWallUs[J] = nowUs() - T0;
  });

  // Stitch check #1: fragments concatenate exactly onto the snapshots'
  // recorded log positions.
  if (!mergeFragments(Frags, Chain, B, Res.Log, Res.StitchChecks)) {
    Result Seq = sequentialReplay(M, Reader, Opts, /*FellBack=*/true);
    publishMetrics(Opts.Metrics, Seq);
    return Seq;
  }

  // Phase 2: epoch-parallel replay. Epoch J resumes from checkpoint
  // B[J-1] and runs under the StopAt fence of checkpoint B[J]; the
  // final epoch runs to the end of the log.
  std::vector<rt::ExecutionResult> Epochs(K);
  Opts.Pool->parallelFor(K, [&](size_t J) {
    uint64_t T0 = nowUs();
    rt::MachineOptions MO = replayOptions(Opts, Res.Log);
    if (J > 0)
      MO.ResumeFrom = &Chain.Snapshots[B[J - 1]];
    if (J + 1 != K)
      MO.StopAt = &Chain.Snapshots[B[J]];
    rt::Machine Mach(M, MO);
    Epochs[J] = Mach.run();
    Res.EpochWallUs[J] += nowUs() - T0;
  });

  // Stitch check #2: every epoch ran, and every non-final epoch parked
  // exactly on its boundary snapshot's state.
  bool Stitched = true;
  for (unsigned J = 0; J != K && Stitched; ++J) {
    if (!Epochs[J].Ok)
      Stitched = false;
    if (J + 1 != K && Epochs[J].StateHash != Chain.Snapshots[B[J]].StateHash)
      Stitched = false;
    ++Res.StitchChecks;
  }
  if (!Stitched) {
    Result Seq = sequentialReplay(M, Reader, Opts, /*FellBack=*/true);
    publishMetrics(Opts.Metrics, Seq);
    return Seq;
  }

  // Merge: the final epoch carries the end state (its machine restored
  // the last boundary and ran to completion); countable work sums
  // across epochs. Cycle-domain stats follow the resumed-replay
  // contract: state is bit-identical, timing is not compared.
  Res.Exec = std::move(Epochs[K - 1]);
  for (unsigned J = 0; J + 1 != K; ++J) {
    const rt::RunStats &S = Epochs[J].Stats;
    rt::RunStats &D = Res.Exec.Stats;
    D.CpuBusyCycles += S.CpuBusyCycles;
    D.Instructions += S.Instructions;
    D.MemOps += S.MemOps;
    D.SyncOps += S.SyncOps;
    D.Syscalls += S.Syscalls;
    D.OutputOps += S.OutputOps;
    D.SpawnedThreads += S.SpawnedThreads;
    D.Revocations += S.Revocations;
    D.LogEvents += S.LogEvents;
    for (unsigned G = 0; G != 4; ++G) {
      D.WeakAcquires[G] += S.WeakAcquires[G];
      D.WeakCpuCycles[G] += S.WeakCpuCycles[G];
      D.WeakWaitCycles[G] += S.WeakWaitCycles[G];
    }
  }
  publishMetrics(Opts.Metrics, Res);
  return Res;
}
