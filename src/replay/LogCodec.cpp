//===- replay/LogCodec.cpp - Log serialization and sizing ------------------===//

#include "replay/LogCodec.h"

#include "support/Compressor.h"

#include <cassert>

using namespace chimera;
using namespace chimera::replay;
using namespace chimera::rt;

std::vector<uint8_t> chimera::replay::encodeInputLog(
    const ExecutionLog &Log) {
  std::vector<uint8_t> Out;
  appendVarint(Out, Log.PerThreadInputs.size());
  for (const auto &Inputs : Log.PerThreadInputs) {
    appendVarint(Out, Inputs.size());
    for (const InputEvent &E : Inputs) {
      Out.push_back(static_cast<uint8_t>(E.Kind));
      appendVarint(Out, E.Value);
    }
  }
  return Out;
}

std::vector<uint8_t> chimera::replay::encodeOrderLog(
    const ExecutionLog &Log) {
  std::vector<uint8_t> Out;
  appendVarint(Out, Log.NumSyncObjects);
  appendVarint(Out, Log.NumWeakLocks);
  appendVarint(Out, Log.NumThreads);
  appendVarint(Out, Log.PerObject.size());
  for (const auto &Seq : Log.PerObject) {
    appendVarint(Out, Seq.size());
    for (const OrderedEvent &E : Seq) {
      // (tid, op) packs into one small varint; tids are small.
      appendVarint(Out,
                   (static_cast<uint64_t>(E.Tid) << 4) |
                       static_cast<uint64_t>(E.Op));
    }
  }
  appendVarint(Out, Log.Revocations.size());
  for (const RevocationEvent &R : Log.Revocations) {
    appendVarint(Out, R.Tid);
    appendVarint(Out, R.LockId);
    appendVarint(Out, R.Instret);
  }
  return Out;
}

std::vector<uint8_t> chimera::replay::encodeLog(const ExecutionLog &Log) {
  std::vector<uint8_t> Out = encodeOrderLog(Log);
  std::vector<uint8_t> Inputs = encodeInputLog(Log);
  appendVarint(Out, Inputs.size());
  Out.insert(Out.end(), Inputs.begin(), Inputs.end());
  return Out;
}

ExecutionLog chimera::replay::decodeLog(const std::vector<uint8_t> &Bytes) {
  ExecutionLog Log;
  size_t Pos = 0;

  Log.NumSyncObjects = static_cast<uint32_t>(readVarint(Bytes, Pos));
  Log.NumWeakLocks = static_cast<uint32_t>(readVarint(Bytes, Pos));
  Log.NumThreads = static_cast<uint32_t>(readVarint(Bytes, Pos));

  uint64_t NumObjects = readVarint(Bytes, Pos);
  Log.PerObject.resize(NumObjects);
  for (auto &Seq : Log.PerObject) {
    uint64_t Len = readVarint(Bytes, Pos);
    Seq.reserve(Len);
    for (uint64_t I = 0; I != Len; ++I) {
      uint64_t Packed = readVarint(Bytes, Pos);
      OrderedEvent E;
      E.Tid = static_cast<uint32_t>(Packed >> 4);
      E.Op = static_cast<OrderedOp>(Packed & 0xf);
      Seq.push_back(E);
    }
  }

  uint64_t NumRevocations = readVarint(Bytes, Pos);
  for (uint64_t I = 0; I != NumRevocations; ++I) {
    RevocationEvent R;
    R.Tid = static_cast<uint32_t>(readVarint(Bytes, Pos));
    R.LockId = static_cast<uint32_t>(readVarint(Bytes, Pos));
    R.Instret = readVarint(Bytes, Pos);
    Log.Revocations.push_back(R);
  }

  uint64_t InputBytes = readVarint(Bytes, Pos);
  (void)InputBytes;
  uint64_t NumThreadsInputs = readVarint(Bytes, Pos);
  Log.PerThreadInputs.resize(NumThreadsInputs);
  for (auto &Inputs : Log.PerThreadInputs) {
    uint64_t Len = readVarint(Bytes, Pos);
    Inputs.reserve(Len);
    for (uint64_t I = 0; I != Len; ++I) {
      InputEvent E;
      assert(Pos < Bytes.size() && "truncated input log");
      E.Kind = static_cast<InputKind>(Bytes[Pos++]);
      E.Value = readVarint(Bytes, Pos);
      Inputs.push_back(E);
    }
  }
  assert(Pos == Bytes.size() && "trailing bytes in encoded log");
  return Log;
}

LogSizes chimera::replay::measureLog(const ExecutionLog &Log) {
  LogSizes Sizes;
  std::vector<uint8_t> Inputs = encodeInputLog(Log);
  std::vector<uint8_t> Order = encodeOrderLog(Log);
  Sizes.InputRaw = Inputs.size();
  Sizes.InputCompressed = compressedSize(Inputs);
  Sizes.OrderRaw = Order.size();
  Sizes.OrderCompressed = compressedSize(Order);
  return Sizes;
}
