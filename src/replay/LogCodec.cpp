//===- replay/LogCodec.cpp - Log serialization and sizing ------------------===//

#include "replay/LogCodec.h"

#include "support/Compressor.h"

using namespace chimera;
using namespace chimera::replay;
using namespace chimera::rt;

std::vector<uint8_t> chimera::replay::encodeInputLog(
    const ExecutionLog &Log) {
  std::vector<uint8_t> Out;
  appendVarint(Out, Log.PerThreadInputs.size());
  for (const auto &Inputs : Log.PerThreadInputs) {
    appendVarint(Out, Inputs.size());
    for (const InputEvent &E : Inputs) {
      Out.push_back(static_cast<uint8_t>(E.Kind));
      appendVarint(Out, E.Value);
    }
  }
  return Out;
}

std::vector<uint8_t> chimera::replay::encodeOrderLog(
    const ExecutionLog &Log) {
  std::vector<uint8_t> Out;
  appendVarint(Out, Log.NumSyncObjects);
  appendVarint(Out, Log.NumWeakLocks);
  appendVarint(Out, Log.NumThreads);
  appendVarint(Out, Log.PerObject.size());
  for (const auto &Seq : Log.PerObject) {
    appendVarint(Out, Seq.size());
    for (const OrderedEvent &E : Seq) {
      // (tid, op) packs into one small varint; tids are small.
      appendVarint(Out,
                   (static_cast<uint64_t>(E.Tid) << 4) |
                       static_cast<uint64_t>(E.Op));
    }
  }
  appendVarint(Out, Log.Revocations.size());
  for (const RevocationEvent &R : Log.Revocations) {
    appendVarint(Out, R.Tid);
    appendVarint(Out, R.LockId);
    appendVarint(Out, R.Instret);
  }
  return Out;
}

std::vector<uint8_t> chimera::replay::encodeLog(const ExecutionLog &Log) {
  std::vector<uint8_t> Out = encodeOrderLog(Log);
  std::vector<uint8_t> Inputs = encodeInputLog(Log);
  appendVarint(Out, Inputs.size());
  Out.insert(Out.end(), Inputs.begin(), Inputs.end());
  return Out;
}

LogSizes chimera::replay::measureLog(const ExecutionLog &Log) {
  LogSizes Sizes;
  std::vector<uint8_t> Inputs = encodeInputLog(Log);
  std::vector<uint8_t> Order = encodeOrderLog(Log);
  Sizes.InputRaw = Inputs.size();
  Sizes.InputCompressed = compressedSize(Inputs);
  Sizes.OrderRaw = Order.size();
  Sizes.OrderCompressed = compressedSize(Order);
  return Sizes;
}
