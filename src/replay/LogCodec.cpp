//===- replay/LogCodec.cpp - Log serialization and sizing ------------------===//

#include "replay/LogCodec.h"

#include "replay/LogFormat.h"
#include "replay/LogReader.h"
#include "support/Compressor.h"

#include <cassert>
#include <chrono>
#include <cstring>

using namespace chimera;
using namespace chimera::replay;
using namespace chimera::rt;

std::vector<uint8_t> chimera::replay::encodeInputLog(
    const ExecutionLog &Log) {
  std::vector<uint8_t> Out;
  appendVarint(Out, Log.PerThreadInputs.size());
  for (const auto &Inputs : Log.PerThreadInputs) {
    appendVarint(Out, Inputs.size());
    for (const InputEvent &E : Inputs) {
      Out.push_back(static_cast<uint8_t>(E.Kind));
      appendVarint(Out, E.Value);
    }
  }
  return Out;
}

std::vector<uint8_t> chimera::replay::encodeOrderLog(
    const ExecutionLog &Log) {
  std::vector<uint8_t> Out;
  appendVarint(Out, Log.NumSyncObjects);
  appendVarint(Out, Log.NumWeakLocks);
  appendVarint(Out, Log.NumThreads);
  appendVarint(Out, Log.PerObject.size());
  for (const auto &Seq : Log.PerObject) {
    appendVarint(Out, Seq.size());
    for (const OrderedEvent &E : Seq) {
      // (tid, op) packs into one small varint; tids are small.
      appendVarint(Out,
                   (static_cast<uint64_t>(E.Tid) << 4) |
                       static_cast<uint64_t>(E.Op));
    }
  }
  appendVarint(Out, Log.Revocations.size());
  for (const RevocationEvent &R : Log.Revocations) {
    appendVarint(Out, R.Tid);
    appendVarint(Out, R.LockId);
    appendVarint(Out, R.Instret);
  }
  return Out;
}

std::vector<uint8_t> chimera::replay::encodeLog(const ExecutionLog &Log) {
  std::vector<uint8_t> Out = encodeOrderLog(Log);
  std::vector<uint8_t> Inputs = encodeInputLog(Log);
  appendVarint(Out, Inputs.size());
  Out.insert(Out.end(), Inputs.begin(), Inputs.end());
  return Out;
}

namespace {

/// Bounds-checked cursor over the encoded bytes. Reads past the end (or
/// an overlong varint) latch Failed instead of invoking UB; callers
/// check once at the end.
struct ByteReader {
  const std::vector<uint8_t> &Bytes;
  size_t Pos = 0;
  bool Failed = false;

  uint64_t varint() {
    uint64_t Value = 0;
    for (unsigned Shift = 0; Shift < 64; Shift += 7) {
      if (Pos >= Bytes.size()) {
        Failed = true;
        return 0;
      }
      uint8_t Byte = Bytes[Pos++];
      Value |= static_cast<uint64_t>(Byte & 0x7f) << Shift;
      if (!(Byte & 0x80))
        return Value;
    }
    Failed = true; // Overlong encoding.
    return 0;
  }

  uint8_t byte() {
    if (Pos >= Bytes.size()) {
      Failed = true;
      return 0;
    }
    return Bytes[Pos++];
  }

  /// True when \p Count length-prefixed elements (>= 1 byte each) could
  /// still fit; guards container reserves against hostile sizes.
  bool plausibleCount(uint64_t Count) const {
    return Count <= Bytes.size() - Pos;
  }
};

} // namespace

/// The pre-segmented flat format: one varint blob, no framing, no CRCs.
/// Kept (internal) so logs written before the storage engine existed
/// stay readable through the deprecation window.
static support::Expected<ExecutionLog>
decodeLegacy(const std::vector<uint8_t> &Bytes) {
  ExecutionLog Log;
  ByteReader In{Bytes};

  Log.NumSyncObjects = static_cast<uint32_t>(In.varint());
  Log.NumWeakLocks = static_cast<uint32_t>(In.varint());
  Log.NumThreads = static_cast<uint32_t>(In.varint());

  uint64_t NumObjects = In.varint();
  if (In.Failed || !In.plausibleCount(NumObjects))
    return support::Error::failure("malformed log: bad object count");
  Log.PerObject.resize(NumObjects);
  for (auto &Seq : Log.PerObject) {
    uint64_t Len = In.varint();
    if (In.Failed || !In.plausibleCount(Len))
      return support::Error::failure("malformed log: bad order length");
    Seq.reserve(Len);
    for (uint64_t I = 0; I != Len; ++I) {
      uint64_t Packed = In.varint();
      OrderedEvent E;
      E.Tid = static_cast<uint32_t>(Packed >> 4);
      E.Op = static_cast<OrderedOp>(Packed & 0xf);
      Seq.push_back(E);
    }
  }

  uint64_t NumRevocations = In.varint();
  if (In.Failed || !In.plausibleCount(NumRevocations))
    return support::Error::failure("malformed log: bad revocation count");
  for (uint64_t I = 0; I != NumRevocations; ++I) {
    RevocationEvent R;
    R.Tid = static_cast<uint32_t>(In.varint());
    R.LockId = static_cast<uint32_t>(In.varint());
    R.Instret = In.varint();
    Log.Revocations.push_back(R);
  }

  uint64_t InputBytes = In.varint();
  (void)InputBytes;
  uint64_t NumThreadsInputs = In.varint();
  if (In.Failed || !In.plausibleCount(NumThreadsInputs))
    return support::Error::failure("malformed log: bad thread count");
  Log.PerThreadInputs.resize(NumThreadsInputs);
  for (auto &Inputs : Log.PerThreadInputs) {
    uint64_t Len = In.varint();
    if (In.Failed || !In.plausibleCount(Len))
      return support::Error::failure("malformed log: bad input length");
    Inputs.reserve(Len);
    for (uint64_t I = 0; I != Len; ++I) {
      InputEvent E;
      E.Kind = static_cast<InputKind>(In.byte());
      E.Value = In.varint();
      Inputs.push_back(E);
    }
  }
  if (In.Failed)
    return support::Error::failure("malformed log: truncated input");
  if (In.Pos != Bytes.size())
    return support::Error::failure("malformed log: trailing bytes");
  return Log;
}

support::Expected<ExecutionLog>
chimera::replay::decode(const std::vector<uint8_t> &Bytes,
                        obs::Registry *Metrics) {
  auto Start = std::chrono::steady_clock::now();

  support::Expected<ExecutionLog> Decoded = [&]() {
    // Segmented logs route through the streaming reader; the legacy
    // flat format has no magic, so anything else falls through.
    if (Bytes.size() >= 4 && std::memcmp(Bytes.data(), FileMagic, 4) == 0) {
      support::Expected<LogReader> Reader =
          LogReader::open(Bytes, LogReader::Options());
      if (!Reader)
        return support::Expected<ExecutionLog>(Reader.error());
      LogReader::RecoveredLog RL = Reader->recover();
      if (!RL.Complete)
        return support::Expected<ExecutionLog>(
            RL.Failure.context("incomplete segmented log"));
      return support::Expected<ExecutionLog>(std::move(RL.Log));
    }
    return decodeLegacy(Bytes);
  }();
  if (!Decoded)
    return Decoded.error();
  ExecutionLog Log = Decoded.take();

  if (Metrics) {
    uint64_t WallUs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - Start)
            .count());
    obs::Scope S(Metrics, "replay.decode");
    S.counter("calls").inc();
    S.counter("bytes").add(Bytes.size());
    S.counter("events").add(Log.totalOrderedEvents() +
                            Log.totalInputEvents());
    S.counter("wall_us").add(WallUs);
  }
  return Log;
}

LogSizes chimera::replay::measureLog(const ExecutionLog &Log) {
  LogSizes Sizes;
  std::vector<uint8_t> Inputs = encodeInputLog(Log);
  std::vector<uint8_t> Order = encodeOrderLog(Log);
  Sizes.InputRaw = Inputs.size();
  Sizes.InputCompressed = compressedSize(Inputs);
  Sizes.OrderRaw = Order.size();
  Sizes.OrderCompressed = compressedSize(Order);
  return Sizes;
}
