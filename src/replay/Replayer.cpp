//===- replay/Replayer.cpp - Replay convenience API ------------------------===//

#include "replay/Replayer.h"

using namespace chimera;

rt::ExecutionResult chimera::replay::replayExecution(
    const ir::Module &M, const rt::ExecutionLog &Log, unsigned NumCores,
    rt::ExecutionObserver *Obs) {
  rt::MachineOptions MO;
  MO.Mode = rt::ExecMode::Replay;
  MO.Seed = 0xfeedface;
  MO.NumCores = NumCores;
  MO.ReplayLog = &Log;
  MO.Observer = Obs;
  rt::Machine Machine(M, MO);
  return Machine.run();
}
