//===- replay/Recorder.h - Recording convenience API ------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin convenience wrapper over Machine's record mode for clients that
/// don't need the full pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_REPLAY_RECORDER_H
#define CHIMERA_REPLAY_RECORDER_H

#include "runtime/Machine.h"

namespace chimera {
namespace replay {

/// Records an execution of \p M (which should already be instrumented if
/// it contains races).
rt::ExecutionResult recordExecution(const ir::Module &M, uint64_t Seed,
                                    unsigned NumCores = 4,
                                    rt::ExecutionObserver *Obs = nullptr);

} // namespace replay
} // namespace chimera

#endif // CHIMERA_REPLAY_RECORDER_H
