//===- replay/Checkpoint.h - Snapshot (de)serialization ---------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes rt::MachineSnapshot for embedding in segmented log files.
/// Non-memory state is encoded absolutely every time; memory contents
/// are encoded as 512-word delta pages against the *previous* checkpoint
/// in the same stream, so a long recording pays for pages it touched
/// since the last checkpoint, not its full footprint. The reader applies
/// the pages onto accumulator buffers as it scans, so a checkpoint is
/// restorable exactly when every earlier segment was readable — which is
/// also the only case recovery claims it.
///
/// A decoded checkpoint is validated end-to-end: the snapshot stores the
/// state hash captured live, and decodeCheckpoint recomputes it from the
/// reassembled memory, so delta corruption that survives the per-segment
/// CRCs still cannot produce a silently-divergent resume.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_REPLAY_CHECKPOINT_H
#define CHIMERA_REPLAY_CHECKPOINT_H

#include "runtime/Snapshot.h"
#include "support/Expected.h"

#include <cstdint>
#include <vector>

namespace chimera {
namespace replay {

/// Delta-page granularity in 64-bit words (4 KiB pages).
inline constexpr uint64_t CheckpointPageWords = 512;

/// Encodes \p Snap as a delta against the memory contents of the
/// previous checkpoint in the stream (\p PrevGlobal / \p PrevHeap; pass
/// empty vectors for the first checkpoint, which then carries every live
/// page). Segments only grow between checkpoints (the heap is a bump
/// allocator, globals are fixed), which the encoding relies on.
std::vector<uint8_t> encodeCheckpoint(const rt::MachineSnapshot &Snap,
                                      const std::vector<uint64_t> &PrevGlobal,
                                      const std::vector<uint64_t> &PrevHeap);

/// Decodes one checkpoint record payload. \p AccumGlobal / \p AccumHeap
/// must hold the previous checkpoint's full memory (empty before the
/// first); on success they are updated in place to this checkpoint's
/// contents, which the returned snapshot also embeds. Fails with a typed
/// error on any framing violation or when the reassembled state hash
/// disagrees with the recorded one.
support::Expected<rt::MachineSnapshot>
decodeCheckpoint(const std::vector<uint8_t> &Bytes,
                 std::vector<uint64_t> &AccumGlobal,
                 std::vector<uint64_t> &AccumHeap);

} // namespace replay
} // namespace chimera

#endif // CHIMERA_REPLAY_CHECKPOINT_H
