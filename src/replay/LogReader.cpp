//===- replay/LogReader.cpp - Streaming segmented-log reader ---------------===//

#include "replay/LogReader.h"

#include "replay/Checkpoint.h"
#include "support/Compressor.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>

using namespace chimera;
using namespace chimera::replay;
using support::Error;
using support::Expected;

//===----------------------------------------------------------------------===//
// Opening
//===----------------------------------------------------------------------===//

/// Structural sanity over decoded footer entries: offsets inside the
/// data region, stream order strictly increasing. A footer that fails
/// this is ignored (linear scan), never an error.
static bool footerEntriesSane(const std::vector<CidxEntry> &Entries,
                              size_t FooterStart) {
  for (size_t I = 0; I != Entries.size(); ++I) {
    const CidxEntry &E = Entries[I];
    if (E.SegmentOffset < FileHeaderBytes ||
        E.SegmentOffset + SegmentHeaderBytes > FooterStart)
      return false;
    if (I == 0)
      continue;
    const CidxEntry &P = Entries[I - 1];
    if (E.Seq < P.Seq || E.SegmentOffset < P.SegmentOffset)
      return false;
    if (E.SegmentOffset == P.SegmentOffset &&
        (E.Seq != P.Seq || E.PayloadPos <= P.PayloadPos))
      return false;
    if (E.SegmentOffset != P.SegmentOffset && E.Seq == P.Seq)
      return false;
  }
  return true;
}

Expected<LogReader> LogReader::open(std::vector<uint8_t> Bytes, Options Opts) {
  if (Bytes.size() < FileHeaderBytes)
    return Error::failure("log file truncated: " +
                          std::to_string(Bytes.size()) +
                          " bytes, header needs " +
                          std::to_string(FileHeaderBytes));
  if (std::memcmp(Bytes.data(), FileMagic, 4) != 0)
    return Error::failure("not a segmented log (bad magic)");
  uint16_t Version = readLe16(Bytes.data() + 4);
  if (Version != FormatVersion)
    return Error::failure("unsupported log format version " +
                          std::to_string(Version) + " (reader speaks " +
                          std::to_string(FormatVersion) + ")");
  uint16_t FileFlags = readLe16(Bytes.data() + 6);
  if (FileFlags != 0)
    return Error::failure("unknown file flags 0x" +
                          std::to_string(FileFlags));
  uint64_t Fingerprint = readLe64(Bytes.data() + 8);
  if (Opts.CheckFingerprint && Fingerprint != Opts.ExpectedFingerprint)
    return Error::failure(
        "workload fingerprint mismatch: log was recorded for " +
        std::to_string(Fingerprint) + ", expected " +
        std::to_string(Opts.ExpectedFingerprint));

  LogReader Reader(
      std::make_shared<const std::vector<uint8_t>>(std::move(Bytes)), Opts);
  Reader.Fingerprint = Fingerprint;
  Reader.DataEnd = Reader.Data->size();

  // CIDX footer (format 1.1): advisory checkpoint index after the last
  // segment. Structurally valid -> the footer region is excluded from
  // the record stream (clean EOF at DataEnd); anything less -> ignored,
  // checkpoint queries fall back to the linear scan.
  std::vector<CidxEntry> Entries;
  size_t FooterStart = 0;
  if (readCidxFooter(*Reader.Data, Reader.Data->size(), Entries,
                     FooterStart) &&
      footerEntriesSane(Entries, FooterStart)) {
    Reader.HaveFooter = true;
    Reader.FooterEntries = std::move(Entries);
    Reader.DataEnd = FooterStart;
  }
  return Reader;
}

LogReader LogReader::fork() const {
  LogReader R(Data, Opts);
  R.Fingerprint = Fingerprint;
  R.DataEnd = DataEnd;
  R.HaveFooter = HaveFooter;
  R.FooterEntries = FooterEntries;
  return R;
}

Expected<LogReader> LogReader::openFile(const std::string &Path,
                                        Options Opts) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Error::failure("cannot open '" + Path + "' for reading");
  std::vector<uint8_t> Bytes;
  uint8_t Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Bytes.insert(Bytes.end(), Buf, Buf + N);
  bool ReadError = std::ferror(F) != 0;
  std::fclose(F);
  if (ReadError)
    return Error::failure("read failed on '" + Path + "'");
  return open(std::move(Bytes), Opts);
}

//===----------------------------------------------------------------------===//
// Segment loading
//===----------------------------------------------------------------------===//

Error LogReader::segError(const std::string &What) const {
  return Error::failure("segment " + std::to_string(CurSeq) + " at offset " +
                        std::to_string(CurSegmentOffset) + ": " + What);
}

Expected<bool> LogReader::loadNextSegment() {
  if (FileOffset == DataEnd)
    return false; // Clean end of file (any CIDX footer follows).

  CurSeq = NextSeq;
  CurSegmentOffset = FileOffset;
  size_t HeaderAvail = FileOffset < DataEnd ? DataEnd - FileOffset : 0;
  if (HeaderAvail < SegmentHeaderBytes)
    return segError("truncated header (" + std::to_string(HeaderAvail) +
                    " of " + std::to_string(SegmentHeaderBytes) + " bytes)");

  const uint8_t *H = Data->data() + FileOffset;
  uint32_t StoredHeaderCrc = readLe32(H + 28);
  if (support::crc32(H, 28) != StoredHeaderCrc)
    return segError("header CRC mismatch");
  // Past the CRC, every header field is authentic; violations below are
  // writer bugs or deliberate tampering, reported all the same.
  if (std::memcmp(H, SegmentMagic, 4) != 0)
    return segError("bad segment magic");
  uint32_t Seq = readLe32(H + 4);
  if (Seq != NextSeq)
    return segError(Seq > NextSeq
                        ? "sequence gap: expected " +
                              std::to_string(NextSeq) + ", found " +
                              std::to_string(Seq) + " (dropped segment?)"
                        : "sequence regression: expected " +
                              std::to_string(NextSeq) + ", found " +
                              std::to_string(Seq) +
                              " (duplicated segment?)");
  uint8_t Flags = H[8];
  if ((Flags & ~SegFlagKnownMask) != 0)
    return segError("unknown flag bits 0x" +
                    std::to_string(Flags & ~SegFlagKnownMask));
  if (H[9] != 0 || H[10] != 0 || H[11] != 0)
    return segError("reserved header bytes are nonzero");
  uint32_t RawSize = readLe32(H + 12);
  uint32_t StoredSize = readLe32(H + 16);
  uint32_t PayloadCrc = readLe32(H + 20);
  if (RawSize > MaxDecompressedBytes)
    return segError("implausible raw size " + std::to_string(RawSize));

  size_t PayloadOffset = FileOffset + SegmentHeaderBytes;
  if (DataEnd - PayloadOffset < StoredSize)
    return segError("truncated payload (" +
                    std::to_string(DataEnd - PayloadOffset) + " of " +
                    std::to_string(StoredSize) + " bytes)");
  const uint8_t *Stored = Data->data() + PayloadOffset;
  if (support::crc32(Stored, StoredSize) != PayloadCrc)
    return segError("payload CRC mismatch");

  if (Flags & SegFlagCompressed) {
    std::vector<uint8_t> Packed(Stored, Stored + StoredSize);
    Expected<std::vector<uint8_t>> Raw = lzDecompressEx(Packed, RawSize);
    if (!Raw)
      return segError(Raw.error().message());
    if (Raw->size() != RawSize)
      return segError("decompressed to " + std::to_string(Raw->size()) +
                      " bytes, header declares " + std::to_string(RawSize));
    Payload = Raw.take();
  } else {
    if (StoredSize != RawSize)
      return segError("uncompressed segment sizes disagree (stored " +
                      std::to_string(StoredSize) + ", raw " +
                      std::to_string(RawSize) + ")");
    Payload.assign(Stored, Stored + StoredSize);
  }

  PayloadPos = 0;
  HaveSegment = true;
  FileOffset = PayloadOffset + StoredSize;
  ++NextSeq;
  ++SegmentsLoaded;
  return true;
}

//===----------------------------------------------------------------------===//
// Record streaming
//===----------------------------------------------------------------------===//

Expected<bool> LogReader::next(Record &Out) {
  // Position to a payload with bytes left. Nothing below advances state
  // before fully validating, so a failed call leaves the stream exactly
  // where it was and re-calling reproduces the same error.
  while (!HaveSegment || PayloadPos == Payload.size()) {
    HaveSegment = false;
    if (SawEnd) {
      if (FileOffset != DataEnd) {
        CurSeq = NextSeq;
        CurSegmentOffset = FileOffset;
        return segError("data after the End record");
      }
      return false;
    }
    Expected<bool> Loaded = loadNextSegment();
    if (!Loaded)
      return Loaded.error();
    if (!*Loaded)
      return false; // End of file (caller checks sawEnd()).
  }

  if (SawEnd) {
    return Error::failure("segment " + std::to_string(CurSeq) +
                          ", payload byte " + std::to_string(PayloadPos) +
                          ": record after the End record");
  }

  RecStart = PayloadPos;
  ByteCursor C;
  C.Data = Payload.data();
  C.Size = Payload.size();
  C.Pos = PayloadPos;
  auto RecError = [&](const std::string &What) {
    return Error::failure("segment " + std::to_string(CurSeq) +
                          ", payload byte " + std::to_string(PayloadPos) +
                          ": " + What);
  };

  uint8_t TagByte = 0;
  C.readByte(TagByte); // Cannot fail: the loop above guarantees a byte.
  Out = Record();
  switch (TagByte) {
  case static_cast<uint8_t>(RecordTag::Meta): {
    Out.Tag = RecordTag::Meta;
    if (!C.readVarint32(Out.NumSyncObjects) ||
        !C.readVarint32(Out.NumWeakLocks))
      return RecError("truncated Meta record");
    break;
  }
  case static_cast<uint8_t>(RecordTag::Ordered): {
    Out.Tag = RecordTag::Ordered;
    uint64_t Packed = 0;
    if (!C.readVarint32(Out.Obj) || !C.readVarint(Packed))
      return RecError("truncated Ordered record");
    uint64_t OpBits = Packed & 0xf;
    if (OpBits > static_cast<uint64_t>(rt::OrderedOp::WeakRelease))
      return RecError("invalid ordered op " + std::to_string(OpBits));
    if ((Packed >> 4) > UINT32_MAX)
      return RecError("ordered tid out of range");
    Out.Tid = static_cast<uint32_t>(Packed >> 4);
    Out.Op = static_cast<rt::OrderedOp>(OpBits);
    break;
  }
  case static_cast<uint8_t>(RecordTag::Input): {
    Out.Tag = RecordTag::Input;
    uint8_t KindByte = 0;
    if (!C.readVarint32(Out.Tid) || !C.readByte(KindByte) ||
        !C.readVarint(Out.Value))
      return RecError("truncated Input record");
    if (KindByte > static_cast<uint8_t>(rt::InputKind::FileRead))
      return RecError("invalid input kind " + std::to_string(KindByte));
    Out.Kind = static_cast<rt::InputKind>(KindByte);
    break;
  }
  case static_cast<uint8_t>(RecordTag::Revocation): {
    Out.Tag = RecordTag::Revocation;
    if (!C.readVarint32(Out.Rev.Tid) || !C.readVarint32(Out.Rev.LockId) ||
        !C.readVarint(Out.Rev.Instret))
      return RecError("truncated Revocation record");
    break;
  }
  case static_cast<uint8_t>(RecordTag::Checkpoint): {
    Out.Tag = RecordTag::Checkpoint;
    uint64_t Len = 0;
    if (!C.readVarint(Len) || Len > C.remaining())
      return RecError("truncated Checkpoint record");
    std::vector<uint8_t> Body(C.Data + C.Pos,
                              C.Data + C.Pos + static_cast<size_t>(Len));
    C.skip(static_cast<size_t>(Len));
    Expected<rt::MachineSnapshot> Snap =
        decodeCheckpoint(Body, AccumGlobal, AccumHeap);
    if (!Snap)
      return RecError(Snap.error().message());
    Out.Snapshot = Snap.take();
    break;
  }
  case static_cast<uint8_t>(RecordTag::End): {
    Out.Tag = RecordTag::End;
    if (!C.readVarint32(Out.NumThreads) || !C.readVarint(Out.TotalOrdered) ||
        !C.readVarint(Out.TotalInputs))
      return RecError("truncated End record");
    SawEnd = true;
    break;
  }
  default:
    return RecError("unknown record tag " + std::to_string(TagByte));
  }

  PayloadPos = C.Pos;
  return true;
}

void LogReader::rewind() {
  FileOffset = FileHeaderBytes;
  NextSeq = 0;
  SawEnd = false;
  SegmentsLoaded = 0;
  Payload.clear();
  PayloadPos = 0;
  RecStart = 0;
  HaveSegment = false;
  AccumGlobal.clear();
  AccumHeap.clear();
  // Footer knowledge and the cached checkpoint list survive: the bytes
  // are immutable.
}

//===----------------------------------------------------------------------===//
// Checkpoint access
//===----------------------------------------------------------------------===//

static LogReader::CheckpointInfo infoFromEntry(const CidxEntry &E,
                                               size_t Index) {
  LogReader::CheckpointInfo CI;
  CI.Index = Index;
  CI.SegmentOffset = E.SegmentOffset;
  CI.Seq = E.Seq;
  CI.PayloadPos = E.PayloadPos;
  CI.StateHash = E.StateHash;
  CI.LogEventsAtCapture = E.LogEventsAtCapture;
  return CI;
}

void LogReader::invalidateFooter() {
  HaveFooter = false;
  FooterEntries.clear();
  InfosValid = false;
  CachedInfos.clear();
}

std::vector<LogReader::CheckpointInfo>
LogReader::scanCheckpoints(std::vector<rt::MachineSnapshot> *Snaps) const {
  // One pass on a fork: a checkpoint is restorable exactly when next()
  // decoded it, since its delta pages accumulate over every earlier
  // segment. Corruption past the last good checkpoint bounds the list.
  std::vector<CheckpointInfo> Infos;
  LogReader Scan = fork();
  Record R;
  for (;;) {
    Expected<bool> Got = Scan.next(R);
    if (!Got || !*Got)
      break;
    if (R.Tag != RecordTag::Checkpoint)
      continue;
    CheckpointInfo CI;
    CI.Index = Infos.size();
    CI.SegmentOffset = Scan.CurSegmentOffset;
    CI.Seq = Scan.CurSeq;
    CI.PayloadPos = static_cast<uint32_t>(Scan.RecStart);
    CI.StateHash = R.Snapshot.StateHash;
    CI.LogEventsAtCapture = R.Snapshot.LogEventsAtCapture;
    Infos.push_back(CI);
    if (Snaps)
      Snaps->push_back(std::move(R.Snapshot));
  }
  return Infos;
}

const std::vector<LogReader::CheckpointInfo> &LogReader::checkpoints() {
  if (InfosValid)
    return CachedInfos;
  CachedInfos.clear();
  if (HaveFooter) {
    for (size_t I = 0; I != FooterEntries.size(); ++I)
      CachedInfos.push_back(infoFromEntry(FooterEntries[I], I));
  } else {
    CachedInfos = scanCheckpoints(nullptr);
  }
  InfosValid = true;
  return CachedInfos;
}

support::Error LogReader::positionAfter(const CheckpointInfo &At,
                                        const rt::MachineSnapshot *Resume) {
  rewind();
  if (At.SegmentOffset < FileHeaderBytes || At.SegmentOffset >= DataEnd)
    return Error::failure("checkpoint index entry points outside the data "
                          "region (segment offset " +
                          std::to_string(At.SegmentOffset) + ")");
  FileOffset = At.SegmentOffset;
  NextSeq = At.Seq;
  Expected<bool> Loaded = loadNextSegment();
  if (!Loaded)
    return Loaded.error();
  if (!*Loaded)
    return Error::failure("checkpoint index entry addresses no segment");

  ByteCursor C(Payload);
  C.Pos = At.PayloadPos;
  uint8_t Tag = 0;
  uint64_t Len = 0;
  if (At.PayloadPos >= Payload.size() || !C.readByte(Tag) ||
      Tag != static_cast<uint8_t>(RecordTag::Checkpoint) ||
      !C.readVarint(Len) || Len > C.remaining())
    return segError("checkpoint index entry does not address a checkpoint "
                    "record (payload byte " +
                    std::to_string(At.PayloadPos) + ")");
  C.skip(static_cast<size_t>(Len));
  PayloadPos = C.Pos;
  RecStart = C.Pos;
  if (Resume) {
    AccumGlobal = Resume->GlobalWords;
    AccumHeap = Resume->HeapWords;
  }
  return Error::success();
}

Expected<LogReader>
LogReader::openAt(const CheckpointInfo &At,
                  const rt::MachineSnapshot *Resume) const {
  LogReader R = fork();
  if (support::Error E = R.positionAfter(At, Resume))
    return E;
  return R;
}

size_t LogReader::validSegmentPrefixEnd() const {
  size_t Off = FileHeaderBytes;
  uint32_t Seq = 0;
  while (Off != DataEnd) {
    if (DataEnd - Off < SegmentHeaderBytes)
      break;
    const uint8_t *H = Data->data() + Off;
    if (support::crc32(H, 28) != readLe32(H + 28))
      break;
    if (std::memcmp(H, SegmentMagic, 4) != 0 || readLe32(H + 4) != Seq)
      break;
    uint8_t Flags = H[8];
    if ((Flags & ~SegFlagKnownMask) != 0 || H[9] != 0 || H[10] != 0 ||
        H[11] != 0)
      break;
    uint32_t RawSize = readLe32(H + 12);
    uint32_t StoredSize = readLe32(H + 16);
    if (RawSize > MaxDecompressedBytes)
      break;
    size_t PayloadOffset = Off + SegmentHeaderBytes;
    if (DataEnd - PayloadOffset < StoredSize)
      break;
    if (support::crc32(Data->data() + PayloadOffset, StoredSize) !=
        readLe32(H + 20))
      break;
    if (!(Flags & SegFlagCompressed) && StoredSize != RawSize)
      break;
    Off = PayloadOffset + StoredSize;
    ++Seq;
  }
  return Off;
}

LogReader::CheckpointChain LogReader::loadCheckpointChain() {
  CheckpointChain Chain;
  if (HaveFooter) {
    // Footer fast path: decode only checkpoint-bearing segments, chain
    // the delta accumulators across them, and hold every snapshot to
    // the hash the footer (and the snapshot itself) claims. Any
    // discrepancy discards the footer and rebuilds by scan, so a lying
    // index can never select a checkpoint sequential recovery rejects.
    // Entries past the first damaged segment are dropped up front —
    // their own segments may be pristine, but recovery stops at the
    // damage, so those checkpoints must never be selected.
    bool Ok = true;
    size_t ValidEnd = validSegmentPrefixEnd();
    LogReader Scan = fork();
    std::vector<uint64_t> AccumG, AccumH;
    for (size_t I = 0; I != FooterEntries.size() && Ok; ++I) {
      CheckpointInfo CI = infoFromEntry(FooterEntries[I], I);
      if (CI.SegmentOffset >= ValidEnd)
        break;
      Scan.rewind();
      Scan.FileOffset = static_cast<size_t>(CI.SegmentOffset);
      Scan.NextSeq = CI.Seq;
      Expected<bool> Loaded = Scan.loadNextSegment();
      if (!Loaded || !*Loaded) {
        Ok = false;
        break;
      }
      ByteCursor C(Scan.Payload);
      C.Pos = CI.PayloadPos;
      uint8_t Tag = 0;
      uint64_t Len = 0;
      if (CI.PayloadPos >= Scan.Payload.size() || !C.readByte(Tag) ||
          Tag != static_cast<uint8_t>(RecordTag::Checkpoint) ||
          !C.readVarint(Len) || Len > C.remaining()) {
        Ok = false;
        break;
      }
      std::vector<uint8_t> Body(C.Data + C.Pos,
                                C.Data + C.Pos + static_cast<size_t>(Len));
      Expected<rt::MachineSnapshot> Snap =
          decodeCheckpoint(Body, AccumG, AccumH);
      if (!Snap || Snap->StateHash != CI.StateHash ||
          Snap->LogEventsAtCapture != CI.LogEventsAtCapture) {
        Ok = false;
        break;
      }
      Chain.Infos.push_back(CI);
      Chain.Snapshots.push_back(Snap.take());
    }
    if (Ok)
      return Chain;
    invalidateFooter();
    Chain = CheckpointChain();
  }

  Chain.Infos = scanCheckpoints(&Chain.Snapshots);
  CachedInfos = Chain.Infos;
  InfosValid = true;
  return Chain;
}

Expected<rt::MachineSnapshot> LogReader::seekToCheckpoint() {
  CheckpointChain Chain = loadCheckpointChain();
  if (Chain.Infos.empty()) {
    rewind();
    return Error::failure("log contains no restorable checkpoint");
  }
  rt::MachineSnapshot Snap = std::move(Chain.Snapshots.back());
  if (support::Error E = positionAfter(Chain.Infos.back(), &Snap))
    return E; // Unreachable after a successful chain decode.
  return Snap;
}

//===----------------------------------------------------------------------===//
// Whole-log recovery
//===----------------------------------------------------------------------===//

LogReader::RecoveredLog LogReader::recover() {
  rewind();
  RecoveredLog RL;
  bool SawMeta = false;
  bool SawEndRecord = false;
  uint32_t MaxTidSeen = 0;
  uint32_t CheckpointThreads = 0;
  Record R;

  for (;;) {
    Expected<bool> Got = next(R);
    if (!Got) {
      RL.Failure = Got.error();
      break;
    }
    if (!*Got) {
      if (!SawEndRecord)
        RL.Failure = Error::failure(
            SawMeta ? "log ends without an End record (truncated)"
                    : "log is empty (no Meta record)");
      break;
    }
    ++RL.RecordsRecovered;

    if (!SawMeta && R.Tag != RecordTag::Meta) {
      RL.Failure = Error::failure("first record is not Meta");
      --RL.RecordsRecovered;
      break;
    }
    switch (R.Tag) {
    case RecordTag::Meta: {
      if (SawMeta) {
        RL.Failure = Error::failure("duplicate Meta record");
        --RL.RecordsRecovered;
        break;
      }
      SawMeta = true;
      RL.Log.NumSyncObjects = R.NumSyncObjects;
      RL.Log.NumWeakLocks = R.NumWeakLocks;
      RL.Log.PerObject.resize(RL.Log.numOrderedObjects());
      break;
    }
    case RecordTag::Ordered: {
      if (R.Obj >= RL.Log.PerObject.size()) {
        RL.Failure = Error::failure("ordered object id " +
                                    std::to_string(R.Obj) +
                                    " out of range (log has " +
                                    std::to_string(RL.Log.PerObject.size()) +
                                    " ordered objects)");
        --RL.RecordsRecovered;
        break;
      }
      RL.Log.PerObject[R.Obj].push_back({R.Tid, R.Op});
      MaxTidSeen = std::max(MaxTidSeen, R.Tid);
      break;
    }
    case RecordTag::Input: {
      if (R.Tid >= RL.Log.PerThreadInputs.size())
        RL.Log.PerThreadInputs.resize(R.Tid + 1);
      RL.Log.PerThreadInputs[R.Tid].push_back({R.Kind, R.Value});
      MaxTidSeen = std::max(MaxTidSeen, R.Tid);
      break;
    }
    case RecordTag::Revocation: {
      RL.Log.Revocations.push_back(R.Rev);
      MaxTidSeen = std::max(MaxTidSeen, R.Rev.Tid);
      break;
    }
    case RecordTag::Checkpoint: {
      ++RL.CheckpointsMerged;
      CheckpointThreads =
          std::max(CheckpointThreads,
                   static_cast<uint32_t>(R.Snapshot.Threads.size()));
      RL.LastCheckpoint =
          std::make_unique<rt::MachineSnapshot>(std::move(R.Snapshot));
      break;
    }
    case RecordTag::End: {
      SawEndRecord = true;
      if (RL.Log.totalOrderedEvents() != R.TotalOrdered ||
          RL.Log.totalInputEvents() != R.TotalInputs) {
        RL.Failure = Error::failure(
            "End-record totals disagree with recovered events (ordered " +
            std::to_string(RL.Log.totalOrderedEvents()) + " vs declared " +
            std::to_string(R.TotalOrdered) + ", inputs " +
            std::to_string(RL.Log.totalInputEvents()) + " vs declared " +
            std::to_string(R.TotalInputs) + ")");
        break;
      }
      RL.Log.NumThreads = R.NumThreads;
      if (RL.Log.PerThreadInputs.size() < R.NumThreads)
        RL.Log.PerThreadInputs.resize(R.NumThreads);
      RL.Complete = true;
      break;
    }
    }
    if (RL.Failure)
      break;
    if (SawEndRecord)
      break; // Trailing data would be flagged by a further next().
  }

  if (!RL.Complete) {
    // Best-effort thread count so a recovered prefix is still replayable.
    uint32_t Threads = SawMeta && RL.RecordsRecovered > 0 ? MaxTidSeen + 1 : 0;
    Threads = std::max(
        {Threads, static_cast<uint32_t>(RL.Log.PerThreadInputs.size()),
         CheckpointThreads});
    RL.Log.NumThreads = Threads;
    RL.Log.PerThreadInputs.resize(Threads);
  }
  RL.SegmentsRead = SegmentsLoaded;

  if (Opts.Metrics) {
    obs::Scope S(Opts.Metrics, "replay.recover");
    S.gauge("segments_read").set(static_cast<int64_t>(RL.SegmentsRead));
    S.gauge("records_recovered")
        .set(static_cast<int64_t>(RL.RecordsRecovered));
    S.gauge("checkpoints_merged")
        .set(static_cast<int64_t>(RL.CheckpointsMerged));
    S.gauge("recovered").set(RL.Complete ? 1 : 0);
  }
  return RL;
}
