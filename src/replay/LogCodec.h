//===- replay/LogCodec.h - Log serialization and sizing ---------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes ExecutionLogs to a compact varint byte format and back, and
/// reports the compressed sizes Table 2 lists (the paper reports
/// gzip-compressed input and order logs; we use the from-scratch LZ codec
/// in support/Compressor.h).
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_REPLAY_LOGCODEC_H
#define CHIMERA_REPLAY_LOGCODEC_H

#include "runtime/ExecutionLog.h"
#include "support/Expected.h"
#include "support/Metrics.h"

#include <cstdint>
#include <vector>

namespace chimera {
namespace replay {

/// Byte sizes of a serialized log, raw and compressed.
struct LogSizes {
  uint64_t InputRaw = 0;
  uint64_t InputCompressed = 0;
  uint64_t OrderRaw = 0;
  uint64_t OrderCompressed = 0;
};

/// Serializes only the nondeterministic-input portion.
std::vector<uint8_t> encodeInputLog(const rt::ExecutionLog &Log);

/// Serializes only the per-object order portion (sync + weak-locks +
/// revocations).
std::vector<uint8_t> encodeOrderLog(const rt::ExecutionLog &Log);

/// Serializes a whole log.
std::vector<uint8_t> encodeLog(const rt::ExecutionLog &Log);

/// Inverse of encodeLog. Fully bounds-checked: truncated, overlong, or
/// trailing-garbage input produces an Error (log files come from disk,
/// so malformed bytes are an input condition, not a programmer bug).
///
/// Deprecated: whole-buffer decoding is superseded by the streaming
/// replay::LogReader (open / next / seekToCheckpoint / recover), which
/// also understands checkpoints and recovers damaged files. This wrapper
/// sniffs the bytes: segmented "CLG1" logs are drained through a
/// LogReader (and must be complete — use LogReader::recover for damaged
/// files); anything else goes through the legacy flat parser.
///
/// With a registry attached, publishes decode throughput under
/// "replay.decode.*" (bytes, events, wall microseconds). Decoding is
/// pure host-side work, so metrics cannot affect the decoded log.
[[deprecated("use replay::LogReader (streaming) instead")]]
support::Expected<rt::ExecutionLog>
decode(const std::vector<uint8_t> &Bytes, obs::Registry *Metrics = nullptr);

/// Raw and compressed sizes of the two log families.
LogSizes measureLog(const rt::ExecutionLog &Log);

} // namespace replay
} // namespace chimera

#endif // CHIMERA_REPLAY_LOGCODEC_H
