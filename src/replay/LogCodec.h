//===- replay/LogCodec.h - Log serialization and sizing ---------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes ExecutionLogs to a compact varint byte format and back, and
/// reports the compressed sizes Table 2 lists (the paper reports
/// gzip-compressed input and order logs; we use the from-scratch LZ codec
/// in support/Compressor.h).
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_REPLAY_LOGCODEC_H
#define CHIMERA_REPLAY_LOGCODEC_H

#include "runtime/ExecutionLog.h"

#include <cstdint>
#include <vector>

namespace chimera {
namespace replay {

/// Byte sizes of a serialized log, raw and compressed.
struct LogSizes {
  uint64_t InputRaw = 0;
  uint64_t InputCompressed = 0;
  uint64_t OrderRaw = 0;
  uint64_t OrderCompressed = 0;
};

/// Serializes only the nondeterministic-input portion.
std::vector<uint8_t> encodeInputLog(const rt::ExecutionLog &Log);

/// Serializes only the per-object order portion (sync + weak-locks +
/// revocations).
std::vector<uint8_t> encodeOrderLog(const rt::ExecutionLog &Log);

/// Serializes a whole log.
std::vector<uint8_t> encodeLog(const rt::ExecutionLog &Log);

// Decoding lives in replay::LogReader (open / next / checkpoints /
// recover): streaming, checkpoint-aware, and damage-tolerant. The old
// whole-buffer `decode` wrapper and its legacy flat format are gone.

/// Raw and compressed sizes of the two log families.
LogSizes measureLog(const rt::ExecutionLog &Log);

} // namespace replay
} // namespace chimera

#endif // CHIMERA_REPLAY_LOGCODEC_H
