//===- ir/IRBuilder.h - Chimera IR construction helper ----------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Append-only builder for Chimera IR, in the style of llvm::IRBuilder:
/// it tracks an insertion block, allocates fresh result registers and
/// instruction ids, and offers one method per opcode.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_IR_IRBUILDER_H
#define CHIMERA_IR_IRBUILDER_H

#include "ir/Function.h"

namespace chimera {
namespace ir {

class IRBuilder {
public:
  explicit IRBuilder(Function &Func) : Func(Func) {}

  void setInsertBlock(BlockId Block) { CurBlock = Block; }
  BlockId insertBlock() const { return CurBlock; }
  void setLoc(SourceLoc Loc) { CurLoc = Loc; }
  Function &function() { return Func; }

  /// True if the current block already ends in a terminator (emitting
  /// more code would be unreachable).
  bool blockClosed() const { return Func.block(CurBlock).hasTerminator(); }

  Reg constInt(int64_t Value);
  Reg move(Reg Src);
  /// Emits `Dst = Src` into an existing register (for MiniC locals).
  void moveInto(Reg Dst, Reg Src);
  Reg unary(UnOp Op, Reg A);
  Reg binary(BinOp Op, Reg A, Reg B);

  Reg addrGlobal(uint32_t GlobalId, Reg Index = NoReg);
  Reg ptrAdd(Reg Base, Reg Offset);
  Reg load(Reg Addr);
  void store(Reg Addr, Reg Value);

  void br(BlockId Target);
  void condBr(Reg Cond, BlockId TrueTarget, BlockId FalseTarget);
  void ret(Reg Value = NoReg);

  Reg call(uint32_t FuncId, const std::vector<Reg> &Args, bool WantResult);
  Reg spawn(uint32_t FuncId, const std::vector<Reg> &Args);
  void join(Reg Tid);

  void mutexLock(uint32_t MutexId);
  void mutexUnlock(uint32_t MutexId);
  void barrierWait(uint32_t BarrierId);
  void condWait(uint32_t CondId, uint32_t MutexId);
  void condSignal(uint32_t CondId);
  void condBroadcast(uint32_t CondId);

  Reg alloc(Reg NumWords);
  Reg input();
  Reg netRecv();
  Reg fileRead();
  void output(Reg Value);
  void yield();

  void weakAcquire(int64_t LockId, Reg RangeLo = NoReg, Reg RangeHi = NoReg);
  void weakRelease(int64_t LockId);

private:
  Instruction &emit(Opcode Op);

  Function &Func;
  BlockId CurBlock = 0;
  SourceLoc CurLoc;
};

} // namespace ir
} // namespace chimera

#endif // CHIMERA_IR_IRBUILDER_H
