//===- ir/Type.cpp - Chimera IR types --------------------------------------===//

#include "ir/Type.h"

const char *chimera::ir::irTypeName(IRType Type) {
  switch (Type) {
  case IRType::Int: return "int";
  case IRType::Ptr: return "ptr";
  case IRType::Void: return "void";
  }
  return "?";
}
