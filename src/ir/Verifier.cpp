//===- ir/Verifier.cpp - Chimera IR structural checks ----------------------===//

#include "ir/Verifier.h"

#include <unordered_set>

using namespace chimera;
using namespace chimera::ir;

namespace {

class VerifierImpl {
public:
  explicit VerifierImpl(const Module &M) : M(M) {}

  std::vector<std::string> run() {
    checkModule();
    for (const auto &F : M.Functions)
      checkFunction(*F);
    return std::move(Problems);
  }

private:
  void problem(const Function &F, const Instruction *Inst,
               const std::string &Message) {
    std::string Out = "in " + F.Name;
    if (Inst)
      Out += " (" + std::string(opcodeName(Inst->Op)) + " #" +
             std::to_string(Inst->Ident) + ")";
    Out += ": " + Message;
    Problems.push_back(std::move(Out));
  }

  void checkModule() {
    if (M.Functions.empty()) {
      Problems.push_back("module has no functions");
      return;
    }
    if (M.MainFunction >= M.Functions.size())
      Problems.push_back("main function index out of range");
  }

  void checkReg(const Function &F, const Instruction &Inst, Reg R,
                const char *What, bool Required) {
    if (R == NoReg) {
      if (Required)
        problem(F, &Inst, std::string("missing required ") + What);
      return;
    }
    if (R >= F.NumRegs)
      problem(F, &Inst, std::string(What) + " register out of range");
  }

  void checkSync(const Function &F, const Instruction &Inst, uint32_t Id,
                 SyncKind Kind, const char *What) {
    if (Id >= M.Syncs.size()) {
      problem(F, &Inst, std::string(What) + " sync id out of range");
      return;
    }
    if (M.Syncs[Id].Kind != Kind)
      problem(F, &Inst, std::string(What) + " refers to wrong sync kind");
  }

  void checkBlockRef(const Function &F, const Instruction &Inst,
                     BlockId Target) {
    if (Target >= F.numBlocks())
      problem(F, &Inst, "branch target out of range");
  }

  void checkCallee(const Function &F, const Instruction &Inst) {
    if (Inst.Id >= M.Functions.size()) {
      problem(F, &Inst, "callee index out of range");
      return;
    }
    const Function &Callee = M.function(Inst.Id);
    if (Inst.Args.size() != Callee.NumParams)
      problem(F, &Inst,
              "call passes " + std::to_string(Inst.Args.size()) +
                  " args but '" + Callee.Name + "' takes " +
                  std::to_string(Callee.NumParams));
    for (Reg Arg : Inst.Args)
      checkReg(F, Inst, Arg, "call argument", /*Required=*/true);
    if (Inst.Op == Opcode::Call && Inst.Dst != NoReg && Callee.ReturnsVoid)
      problem(F, &Inst, "void callee used with a result register");
  }

  void checkFunction(const Function &F) {
    if (F.Blocks.empty()) {
      problem(F, nullptr, "function has no blocks");
      return;
    }
    if (F.NumParams > F.NumRegs)
      problem(F, nullptr, "parameter registers exceed register count");
    if (F.ParamTypes.size() != F.NumParams)
      problem(F, nullptr, "param type list does not match param count");

    std::unordered_set<InstId> SeenIds;
    for (BlockId B = 0; B != F.numBlocks(); ++B) {
      const BasicBlock &BB = F.block(B);
      if (!BB.hasTerminator()) {
        problem(F, nullptr,
                "block " + std::to_string(B) + " lacks a terminator");
        continue;
      }
      for (uint32_t I = 0; I != BB.Insts.size(); ++I) {
        const Instruction &Inst = BB.Insts[I];
        if (!SeenIds.insert(Inst.Ident).second)
          problem(F, &Inst, "duplicate instruction id");
        if (Inst.isTerminator() != (I + 1 == BB.Insts.size()))
          problem(F, &Inst, Inst.isTerminator()
                                ? "terminator in the middle of a block"
                                : "non-terminator at end of block");
        checkInstruction(F, Inst);
      }
    }
  }

  void checkInstruction(const Function &F, const Instruction &Inst) {
    switch (Inst.Op) {
    case Opcode::ConstInt:
      checkReg(F, Inst, Inst.Dst, "dst", true);
      break;
    case Opcode::Move:
    case Opcode::Unary:
      checkReg(F, Inst, Inst.Dst, "dst", true);
      checkReg(F, Inst, Inst.A, "operand", true);
      break;
    case Opcode::Binary:
    case Opcode::PtrAdd:
      checkReg(F, Inst, Inst.Dst, "dst", true);
      checkReg(F, Inst, Inst.A, "lhs", true);
      checkReg(F, Inst, Inst.B, "rhs", true);
      break;
    case Opcode::AddrGlobal:
      checkReg(F, Inst, Inst.Dst, "dst", true);
      checkReg(F, Inst, Inst.A, "index", false);
      if (Inst.Id >= M.Globals.size())
        problem(F, &Inst, "global id out of range");
      break;
    case Opcode::Load:
      checkReg(F, Inst, Inst.Dst, "dst", true);
      checkReg(F, Inst, Inst.A, "address", true);
      break;
    case Opcode::Store:
      checkReg(F, Inst, Inst.A, "address", true);
      checkReg(F, Inst, Inst.B, "value", true);
      break;
    case Opcode::Br:
      checkBlockRef(F, Inst, Inst.Succ0);
      break;
    case Opcode::CondBr:
      checkReg(F, Inst, Inst.A, "condition", true);
      checkBlockRef(F, Inst, Inst.Succ0);
      checkBlockRef(F, Inst, Inst.Succ1);
      break;
    case Opcode::Ret:
      checkReg(F, Inst, Inst.A, "return value", false);
      if (!F.ReturnsVoid && Inst.A == NoReg)
        problem(F, &Inst, "non-void function returns no value");
      break;
    case Opcode::Call:
    case Opcode::Spawn:
      checkCallee(F, Inst);
      if (Inst.Op == Opcode::Spawn)
        checkReg(F, Inst, Inst.Dst, "thread id dst", true);
      break;
    case Opcode::Join:
      checkReg(F, Inst, Inst.A, "thread id", true);
      break;
    case Opcode::MutexLock:
    case Opcode::MutexUnlock:
      checkSync(F, Inst, Inst.Id, SyncKind::Mutex, "mutex op");
      break;
    case Opcode::BarrierWait:
      checkSync(F, Inst, Inst.Id, SyncKind::Barrier, "barrier op");
      break;
    case Opcode::CondWait:
      checkSync(F, Inst, Inst.Id, SyncKind::Cond, "cond op");
      checkSync(F, Inst, Inst.Id2, SyncKind::Mutex, "cond-wait mutex");
      break;
    case Opcode::CondSignal:
    case Opcode::CondBroadcast:
      checkSync(F, Inst, Inst.Id, SyncKind::Cond, "cond op");
      break;
    case Opcode::Alloc:
      checkReg(F, Inst, Inst.Dst, "dst", true);
      checkReg(F, Inst, Inst.A, "size", true);
      break;
    case Opcode::Input:
    case Opcode::NetRecv:
    case Opcode::FileRead:
      checkReg(F, Inst, Inst.Dst, "dst", true);
      break;
    case Opcode::Output:
      checkReg(F, Inst, Inst.A, "value", true);
      break;
    case Opcode::Yield:
      break;
    case Opcode::WeakAcquire:
      if (Inst.Imm < 0 ||
          static_cast<size_t>(Inst.Imm) >= M.WeakLocks.size())
        problem(F, &Inst, "weak-lock id out of range");
      checkReg(F, Inst, Inst.A, "range lo", false);
      checkReg(F, Inst, Inst.B, "range hi", false);
      if ((Inst.A == NoReg) != (Inst.B == NoReg))
        problem(F, &Inst, "weak-lock range must give both bounds or none");
      break;
    case Opcode::WeakRelease:
      if (Inst.Imm < 0 ||
          static_cast<size_t>(Inst.Imm) >= M.WeakLocks.size())
        problem(F, &Inst, "weak-lock id out of range");
      break;
    }
  }

  const Module &M;
  std::vector<std::string> Problems;
};

} // namespace

std::vector<std::string> chimera::ir::verifyModule(const Module &M) {
  return VerifierImpl(M).run();
}
