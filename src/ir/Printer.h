//===- ir/Printer.h - Chimera IR textual dump -------------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders IR modules/functions as text for debugging, golden tests, and
/// the examples.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_IR_PRINTER_H
#define CHIMERA_IR_PRINTER_H

#include "ir/Module.h"

#include <string>

namespace chimera {
namespace ir {

std::string printInstruction(const Module &M, const Function &F,
                             const Instruction &Inst);
std::string printFunction(const Module &M, const Function &F);
std::string printModule(const Module &M);

} // namespace ir
} // namespace chimera

#endif // CHIMERA_IR_PRINTER_H
