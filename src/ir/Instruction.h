//===- ir/Instruction.h - Chimera IR instructions ---------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instruction set of the Chimera IR: a register machine over 64-bit words
/// with explicit memory operations, structured synchronization intrinsics
/// (the happens-before sources the recorder logs), and the weak-lock
/// operations that Chimera's instrumenter inserts.
///
/// Memory is word-addressed. Pointer values are word addresses; PtrAdd
/// performs element (word) arithmetic, so there is no separate scaling.
///
/// Every instruction carries a function-unique, never-reused InstId so
/// analysis results (e.g. race pairs) remain valid identifiers across
/// instrumentation, which inserts new instructions.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_IR_INSTRUCTION_H
#define CHIMERA_IR_INSTRUCTION_H

#include "ir/Type.h"
#include "lang/Token.h" // SourceLoc

#include <cstdint>
#include <vector>

namespace chimera {
namespace ir {

/// A virtual register index within a function.
using Reg = uint32_t;
/// Sentinel meaning "no register" (e.g. void call result).
inline const Reg NoReg = ~0u;

/// A function-unique instruction identity (see file comment).
using InstId = uint32_t;
inline const InstId NoInst = ~0u;

/// A basic-block index within a function.
using BlockId = uint32_t;
inline const BlockId NoBlock = ~0u;

enum class Opcode : uint8_t {
  // Data movement and arithmetic.
  ConstInt,   ///< Dst = Imm
  Move,       ///< Dst = A
  Unary,      ///< Dst = UnOp A
  Binary,     ///< Dst = A BinOp B

  // Memory.
  AddrGlobal, ///< Dst = &global[Id] + (A == NoReg ? 0 : A)   (word address)
  PtrAdd,     ///< Dst = A + B   (A pointer, B words)
  Load,       ///< Dst = mem[A]
  Store,      ///< mem[A] = B

  // Control flow (block terminators).
  Br,         ///< goto Succ0
  CondBr,     ///< A != 0 ? goto Succ0 : goto Succ1
  Ret,        ///< return (A == NoReg ? void : A)

  // Calls.
  Call,       ///< Dst? = call function[Id](Args...)

  // Thread management.
  Spawn,      ///< Dst = new thread running function[Id](Args...)
  Join,       ///< join thread id in A

  // Synchronization intrinsics (Id = sync object id).
  MutexLock,
  MutexUnlock,
  BarrierWait,
  CondWait,   ///< Id = cond, Id2 = mutex
  CondSignal,
  CondBroadcast,

  // Nondeterministic input / output / misc runtime services.
  Alloc,      ///< Dst = heap pointer to A fresh words
  Input,      ///< Dst = device input word (fast)
  NetRecv,    ///< Dst = network word (long blocking latency)
  FileRead,   ///< Dst = file word (medium blocking latency)
  Output,     ///< append A to the program output stream
  Yield,      ///< scheduling hint

  // Chimera instrumentation (Imm = weak-lock id).
  WeakAcquire, ///< acquire weak-lock Imm; if A != NoReg, range [A, B] words
  WeakRelease, ///< release weak-lock Imm
};

const char *opcodeName(Opcode Op);

enum class UnOp : uint8_t { Neg, Not };
enum class BinOp : uint8_t {
  Add, Sub, Mul, Div, Rem,
  And, Or, Xor, Shl, Shr,
  Lt, Le, Gt, Ge, Eq, Ne,
};

const char *binOpName(BinOp Op);

/// Returns true for opcodes that terminate a basic block.
bool isTerminator(Opcode Op);

/// Returns true for the opcodes that access program memory (the accesses a
/// race detector cares about).
bool isMemoryAccess(Opcode Op);

/// Returns true for original-program synchronization operations (not
/// weak-locks).
bool isSyncOp(Opcode Op);

/// Returns true for operations that are function calls at the C level
/// (calls, thread/sync operations, syscalls, allocation). The paper's
/// loop-lock placement excludes loops containing calls (§5.3), and a
/// weak-lock must never be held across one of these inside a guarded
/// basic block.
bool isCallLike(Opcode Op);

/// A single IR instruction. Fields are used per-opcode as documented on
/// Opcode; unused fields hold their sentinel values.
struct Instruction {
  Opcode Op = Opcode::Yield;
  UnOp UOp = UnOp::Neg;
  BinOp BOp = BinOp::Add;

  Reg Dst = NoReg;
  Reg A = NoReg;
  Reg B = NoReg;

  int64_t Imm = 0;   ///< ConstInt value or weak-lock id.
  uint32_t Id = 0;   ///< Global / function / sync-object id.
  uint32_t Id2 = 0;  ///< Secondary id (CondWait's mutex).

  BlockId Succ0 = NoBlock;
  BlockId Succ1 = NoBlock;

  std::vector<Reg> Args; ///< Call/Spawn arguments.

  InstId Ident = NoInst;
  SourceLoc Loc;

  bool isTerminator() const { return ir::isTerminator(Op); }
  bool isMemoryAccess() const { return ir::isMemoryAccess(Op); }
  bool isSyncOp() const { return ir::isSyncOp(Op); }
  bool isStore() const { return Op == Opcode::Store; }
};

} // namespace ir
} // namespace chimera

#endif // CHIMERA_IR_INSTRUCTION_H
