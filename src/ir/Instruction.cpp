//===- ir/Instruction.cpp - Chimera IR instructions ------------------------===//

#include "ir/Instruction.h"

using namespace chimera::ir;

const char *chimera::ir::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::ConstInt: return "const";
  case Opcode::Move: return "move";
  case Opcode::Unary: return "unary";
  case Opcode::Binary: return "binary";
  case Opcode::AddrGlobal: return "addrg";
  case Opcode::PtrAdd: return "ptradd";
  case Opcode::Load: return "load";
  case Opcode::Store: return "store";
  case Opcode::Br: return "br";
  case Opcode::CondBr: return "condbr";
  case Opcode::Ret: return "ret";
  case Opcode::Call: return "call";
  case Opcode::Spawn: return "spawn";
  case Opcode::Join: return "join";
  case Opcode::MutexLock: return "mutex_lock";
  case Opcode::MutexUnlock: return "mutex_unlock";
  case Opcode::BarrierWait: return "barrier_wait";
  case Opcode::CondWait: return "cond_wait";
  case Opcode::CondSignal: return "cond_signal";
  case Opcode::CondBroadcast: return "cond_broadcast";
  case Opcode::Alloc: return "alloc";
  case Opcode::Input: return "input";
  case Opcode::NetRecv: return "net_recv";
  case Opcode::FileRead: return "file_read";
  case Opcode::Output: return "output";
  case Opcode::Yield: return "yield";
  case Opcode::WeakAcquire: return "weak_acquire";
  case Opcode::WeakRelease: return "weak_release";
  }
  return "?";
}

const char *chimera::ir::binOpName(BinOp Op) {
  switch (Op) {
  case BinOp::Add: return "add";
  case BinOp::Sub: return "sub";
  case BinOp::Mul: return "mul";
  case BinOp::Div: return "div";
  case BinOp::Rem: return "rem";
  case BinOp::And: return "and";
  case BinOp::Or: return "or";
  case BinOp::Xor: return "xor";
  case BinOp::Shl: return "shl";
  case BinOp::Shr: return "shr";
  case BinOp::Lt: return "lt";
  case BinOp::Le: return "le";
  case BinOp::Gt: return "gt";
  case BinOp::Ge: return "ge";
  case BinOp::Eq: return "eq";
  case BinOp::Ne: return "ne";
  }
  return "?";
}

bool chimera::ir::isTerminator(Opcode Op) {
  return Op == Opcode::Br || Op == Opcode::CondBr || Op == Opcode::Ret;
}

bool chimera::ir::isCallLike(Opcode Op) {
  switch (Op) {
  case Opcode::Call:
  case Opcode::Spawn:
  case Opcode::Join:
  case Opcode::MutexLock:
  case Opcode::MutexUnlock:
  case Opcode::BarrierWait:
  case Opcode::CondWait:
  case Opcode::CondSignal:
  case Opcode::CondBroadcast:
  case Opcode::Alloc:
  case Opcode::Input:
  case Opcode::NetRecv:
  case Opcode::FileRead:
  case Opcode::Output:
    return true;
  default:
    return false;
  }
}

bool chimera::ir::isMemoryAccess(Opcode Op) {
  return Op == Opcode::Load || Op == Opcode::Store;
}

bool chimera::ir::isSyncOp(Opcode Op) {
  switch (Op) {
  case Opcode::MutexLock:
  case Opcode::MutexUnlock:
  case Opcode::BarrierWait:
  case Opcode::CondWait:
  case Opcode::CondSignal:
  case Opcode::CondBroadcast:
  case Opcode::Spawn:
  case Opcode::Join:
    return true;
  default:
    return false;
  }
}
