//===- ir/Module.cpp - Chimera IR modules ----------------------------------===//

#include "ir/Module.h"

using namespace chimera::ir;

const char *chimera::ir::weakLockGranularityName(WeakLockGranularity G) {
  switch (G) {
  case WeakLockGranularity::Function: return "function";
  case WeakLockGranularity::Loop: return "loop";
  case WeakLockGranularity::BasicBlock: return "basic-block";
  case WeakLockGranularity::Instr: return "instruction";
  }
  return "?";
}

void Module::layoutGlobals() {
  uint64_t Addr = GlobalBase;
  for (GlobalVar &G : Globals) {
    G.BaseAddr = Addr;
    Addr += G.SizeWords;
  }
  GlobalWords = Addr - GlobalBase;
}

Function *Module::findFunction(const std::string &Name) const {
  for (const auto &F : Functions)
    if (F->Name == Name)
      return F.get();
  return nullptr;
}

uint32_t Module::globalContaining(uint64_t Addr) const {
  // Globals are laid out in declaration order, so binary search by base.
  if (Globals.empty() || Addr < GlobalBase ||
      Addr >= GlobalBase + GlobalWords)
    return ~0u;
  uint32_t Lo = 0, Hi = static_cast<uint32_t>(Globals.size());
  while (Lo + 1 < Hi) {
    uint32_t Mid = (Lo + Hi) / 2;
    if (Globals[Mid].BaseAddr <= Addr)
      Lo = Mid;
    else
      Hi = Mid;
  }
  const GlobalVar &G = Globals[Lo];
  return Addr < G.BaseAddr + G.SizeWords ? Lo : ~0u;
}

std::unique_ptr<Module> Module::clone() const {
  auto Copy = std::make_unique<Module>();
  Copy->Name = Name;
  Copy->Globals = Globals;
  Copy->Syncs = Syncs;
  Copy->WeakLocks = WeakLocks;
  Copy->MainFunction = MainFunction;
  Copy->GlobalWords = GlobalWords;
  for (const auto &F : Functions)
    Copy->Functions.push_back(std::make_unique<Function>(*F));
  return Copy;
}

uint64_t Module::totalInstructions() const {
  uint64_t Total = 0;
  for (const auto &F : Functions)
    for (const BasicBlock &BB : F->Blocks)
      Total += BB.Insts.size();
  return Total;
}
