//===- ir/Verifier.h - Chimera IR structural checks -------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural validity checks for Chimera IR modules: terminated blocks,
/// in-range registers/blocks/ids, matching call arities, correctly-typed
/// sync-object references. Run after codegen and after instrumentation.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_IR_VERIFIER_H
#define CHIMERA_IR_VERIFIER_H

#include "ir/Module.h"

#include <string>
#include <vector>

namespace chimera {
namespace ir {

/// Verifies \p M; returns a list of human-readable problems (empty when
/// the module is well-formed).
std::vector<std::string> verifyModule(const Module &M);

} // namespace ir
} // namespace chimera

#endif // CHIMERA_IR_VERIFIER_H
