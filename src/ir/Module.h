//===- ir/Module.h - Chimera IR modules -------------------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Module is the unit the whole pipeline flows through: codegen emits
/// one, the static analyses read it, the instrumenter clones and rewrites
/// it, and the runtime executes it. Besides functions it carries global
/// variable layout, synchronization objects, and — after instrumentation —
/// the weak-lock table describing every lock Chimera inserted.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_IR_MODULE_H
#define CHIMERA_IR_MODULE_H

#include "ir/Function.h"

#include <memory>
#include <string>
#include <vector>

namespace chimera {
namespace ir {

/// A global scalar or array. Globals live contiguously in the simulated
/// global segment; BaseAddr is assigned by Module::layoutGlobals.
struct GlobalVar {
  std::string Name;
  uint32_t SizeWords = 1;
  int64_t Init = 0;       ///< Initial value for every word.
  uint64_t BaseAddr = 0;
};

enum class SyncKind : uint8_t { Mutex, Barrier, Cond };

struct SyncObject {
  SyncKind Kind = SyncKind::Mutex;
  std::string Name;
  uint32_t Parties = 0; ///< Barrier party count.
};

/// Weak-lock granularities, ordered by acquisition precedence (paper
/// §2.3): Function-locks are acquired before Loop-locks, which are
/// acquired before BasicBlock/Instr locks. The enum order encodes that.
enum class WeakLockGranularity : uint8_t { Function, Loop, BasicBlock, Instr };

const char *weakLockGranularityName(WeakLockGranularity G);

/// Metadata for one weak-lock the instrumenter created.
struct WeakLockMeta {
  WeakLockGranularity Granularity = WeakLockGranularity::Instr;
  std::string Name;     ///< Debug label, e.g. "func:interf+bndry".
  bool HasRange = false;///< Loop-locks with symbolic bounds guard a range.
};

class Module {
public:
  std::string Name;
  std::vector<GlobalVar> Globals;
  std::vector<SyncObject> Syncs;
  std::vector<std::unique_ptr<Function>> Functions;
  std::vector<WeakLockMeta> WeakLocks;
  uint32_t MainFunction = 0;

  /// Word address where the global segment starts.
  static constexpr uint64_t GlobalBase = 0x1000;
  /// Word address where the heap starts.
  static constexpr uint64_t HeapBase = 0x1000000;

  /// Assigns BaseAddr to every global. Must be called once after all
  /// globals are added and before execution.
  void layoutGlobals();

  /// Total words of global storage (after layoutGlobals).
  uint64_t globalSegmentWords() const { return GlobalWords; }

  Function *findFunction(const std::string &Name) const;

  Function &function(uint32_t Index) const {
    assert(Index < Functions.size() && "function index out of range");
    return *Functions[Index];
  }

  /// Maps a word address to the global containing it; returns ~0u if the
  /// address is not in the global segment.
  uint32_t globalContaining(uint64_t Addr) const;

  /// Deep-copies the module (instrumentation works on a clone so analysis
  /// results keep referring to the original).
  std::unique_ptr<Module> clone() const;

  /// Total instruction count across all functions (static size metric).
  uint64_t totalInstructions() const;

private:
  uint64_t GlobalWords = 0;
};

} // namespace ir
} // namespace chimera

#endif // CHIMERA_IR_MODULE_H
