//===- ir/Type.h - Chimera IR types -----------------------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Chimera IR is word-oriented: every value is a 64-bit word that is
/// either an integer or a pointer (a word-granular address into simulated
/// memory). Types exist to keep the verifier and analyses honest about
/// which registers carry addresses.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_IR_TYPE_H
#define CHIMERA_IR_TYPE_H

namespace chimera {
namespace ir {

enum class IRType { Int, Ptr, Void };

const char *irTypeName(IRType Type);

} // namespace ir
} // namespace chimera

#endif // CHIMERA_IR_TYPE_H
