//===- ir/IRBuilder.cpp - Chimera IR construction helper -------------------===//

#include "ir/IRBuilder.h"

using namespace chimera::ir;

Instruction &IRBuilder::emit(Opcode Op) {
  assert(!blockClosed() && "emitting into a terminated block");
  BasicBlock &BB = Func.block(CurBlock);
  BB.Insts.emplace_back();
  Instruction &Inst = BB.Insts.back();
  Inst.Op = Op;
  Inst.Ident = Func.newInstId();
  Inst.Loc = CurLoc;
  return Inst;
}

Reg IRBuilder::constInt(int64_t Value) {
  Instruction &Inst = emit(Opcode::ConstInt);
  Inst.Imm = Value;
  Inst.Dst = Func.newReg();
  return Inst.Dst;
}

Reg IRBuilder::move(Reg Src) {
  Instruction &Inst = emit(Opcode::Move);
  Inst.A = Src;
  Inst.Dst = Func.newReg();
  return Inst.Dst;
}

void IRBuilder::moveInto(Reg Dst, Reg Src) {
  Instruction &Inst = emit(Opcode::Move);
  Inst.A = Src;
  Inst.Dst = Dst;
}

Reg IRBuilder::unary(UnOp Op, Reg A) {
  Instruction &Inst = emit(Opcode::Unary);
  Inst.UOp = Op;
  Inst.A = A;
  Inst.Dst = Func.newReg();
  return Inst.Dst;
}

Reg IRBuilder::binary(BinOp Op, Reg A, Reg B) {
  Instruction &Inst = emit(Opcode::Binary);
  Inst.BOp = Op;
  Inst.A = A;
  Inst.B = B;
  Inst.Dst = Func.newReg();
  return Inst.Dst;
}

Reg IRBuilder::addrGlobal(uint32_t GlobalId, Reg Index) {
  Instruction &Inst = emit(Opcode::AddrGlobal);
  Inst.Id = GlobalId;
  Inst.A = Index;
  Inst.Dst = Func.newReg();
  return Inst.Dst;
}

Reg IRBuilder::ptrAdd(Reg Base, Reg Offset) {
  Instruction &Inst = emit(Opcode::PtrAdd);
  Inst.A = Base;
  Inst.B = Offset;
  Inst.Dst = Func.newReg();
  return Inst.Dst;
}

Reg IRBuilder::load(Reg Addr) {
  Instruction &Inst = emit(Opcode::Load);
  Inst.A = Addr;
  Inst.Dst = Func.newReg();
  return Inst.Dst;
}

void IRBuilder::store(Reg Addr, Reg Value) {
  Instruction &Inst = emit(Opcode::Store);
  Inst.A = Addr;
  Inst.B = Value;
}

void IRBuilder::br(BlockId Target) {
  Instruction &Inst = emit(Opcode::Br);
  Inst.Succ0 = Target;
}

void IRBuilder::condBr(Reg Cond, BlockId TrueTarget, BlockId FalseTarget) {
  Instruction &Inst = emit(Opcode::CondBr);
  Inst.A = Cond;
  Inst.Succ0 = TrueTarget;
  Inst.Succ1 = FalseTarget;
}

void IRBuilder::ret(Reg Value) {
  Instruction &Inst = emit(Opcode::Ret);
  Inst.A = Value;
}

Reg IRBuilder::call(uint32_t FuncId, const std::vector<Reg> &Args,
                    bool WantResult) {
  Instruction &Inst = emit(Opcode::Call);
  Inst.Id = FuncId;
  Inst.Args = Args;
  Inst.Dst = WantResult ? Func.newReg() : NoReg;
  return Inst.Dst;
}

Reg IRBuilder::spawn(uint32_t FuncId, const std::vector<Reg> &Args) {
  Instruction &Inst = emit(Opcode::Spawn);
  Inst.Id = FuncId;
  Inst.Args = Args;
  Inst.Dst = Func.newReg();
  return Inst.Dst;
}

void IRBuilder::join(Reg Tid) {
  Instruction &Inst = emit(Opcode::Join);
  Inst.A = Tid;
}

void IRBuilder::mutexLock(uint32_t MutexId) {
  emit(Opcode::MutexLock).Id = MutexId;
}

void IRBuilder::mutexUnlock(uint32_t MutexId) {
  emit(Opcode::MutexUnlock).Id = MutexId;
}

void IRBuilder::barrierWait(uint32_t BarrierId) {
  emit(Opcode::BarrierWait).Id = BarrierId;
}

void IRBuilder::condWait(uint32_t CondId, uint32_t MutexId) {
  Instruction &Inst = emit(Opcode::CondWait);
  Inst.Id = CondId;
  Inst.Id2 = MutexId;
}

void IRBuilder::condSignal(uint32_t CondId) {
  emit(Opcode::CondSignal).Id = CondId;
}

void IRBuilder::condBroadcast(uint32_t CondId) {
  emit(Opcode::CondBroadcast).Id = CondId;
}

Reg IRBuilder::alloc(Reg NumWords) {
  Instruction &Inst = emit(Opcode::Alloc);
  Inst.A = NumWords;
  Inst.Dst = Func.newReg();
  return Inst.Dst;
}

Reg IRBuilder::input() {
  Instruction &Inst = emit(Opcode::Input);
  Inst.Dst = Func.newReg();
  return Inst.Dst;
}

Reg IRBuilder::netRecv() {
  Instruction &Inst = emit(Opcode::NetRecv);
  Inst.Dst = Func.newReg();
  return Inst.Dst;
}

Reg IRBuilder::fileRead() {
  Instruction &Inst = emit(Opcode::FileRead);
  Inst.Dst = Func.newReg();
  return Inst.Dst;
}

void IRBuilder::output(Reg Value) { emit(Opcode::Output).A = Value; }

void IRBuilder::yield() { emit(Opcode::Yield); }

void IRBuilder::weakAcquire(int64_t LockId, Reg RangeLo, Reg RangeHi) {
  Instruction &Inst = emit(Opcode::WeakAcquire);
  Inst.Imm = LockId;
  Inst.A = RangeLo;
  Inst.B = RangeHi;
}

void IRBuilder::weakRelease(int64_t LockId) {
  emit(Opcode::WeakRelease).Imm = LockId;
}
