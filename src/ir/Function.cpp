//===- ir/Function.cpp - Chimera IR functions and blocks -------------------===//

#include "ir/Function.h"

using namespace chimera::ir;

std::vector<BlockId> Function::successors(BlockId Id) const {
  const BasicBlock &BB = block(Id);
  if (!BB.hasTerminator())
    return {};
  const Instruction &Term = BB.terminator();
  switch (Term.Op) {
  case Opcode::Br:
    return {Term.Succ0};
  case Opcode::CondBr:
    return {Term.Succ0, Term.Succ1};
  default:
    return {};
  }
}

const Instruction *Function::findInst(InstId Ident) const {
  for (const BasicBlock &BB : Blocks)
    for (const Instruction &Inst : BB.Insts)
      if (Inst.Ident == Ident)
        return &Inst;
  return nullptr;
}

Function::InstPos Function::findInstPos(InstId Ident) const {
  for (BlockId B = 0; B != numBlocks(); ++B) {
    const BasicBlock &BB = Blocks[B];
    for (uint32_t I = 0; I != BB.Insts.size(); ++I)
      if (BB.Insts[I].Ident == Ident)
        return {B, I};
  }
  return {};
}
