//===- ir/Function.h - Chimera IR functions and blocks ----------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Functions own a vector of basic blocks addressed by index; block
/// indices are stable (new blocks append), which instrumentation relies
/// on. Register conventions: registers [0, NumParams) hold the incoming
/// arguments; codegen gives each expression temporary a fresh register so
/// temporaries are single-assignment, while registers backing MiniC locals
/// may be re-assigned.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_IR_FUNCTION_H
#define CHIMERA_IR_FUNCTION_H

#include "ir/Instruction.h"

#include <cassert>
#include <string>
#include <vector>

namespace chimera {
namespace ir {

struct BasicBlock {
  std::vector<Instruction> Insts;

  bool hasTerminator() const {
    return !Insts.empty() && Insts.back().isTerminator();
  }
  const Instruction &terminator() const {
    assert(hasTerminator() && "block has no terminator");
    return Insts.back();
  }
};

class Function {
public:
  std::string Name;
  uint32_t Index = 0;          ///< Id within the module.
  uint32_t NumParams = 0;
  std::vector<IRType> ParamTypes;
  bool ReturnsVoid = false;
  uint32_t NumRegs = 0;        ///< Total virtual registers used.

  std::vector<BasicBlock> Blocks; ///< Blocks[0] is the entry block.

  /// Creates an empty block and returns its id.
  BlockId addBlock() {
    Blocks.emplace_back();
    return static_cast<BlockId>(Blocks.size() - 1);
  }

  BasicBlock &block(BlockId Id) {
    assert(Id < Blocks.size() && "block id out of range");
    return Blocks[Id];
  }
  const BasicBlock &block(BlockId Id) const {
    assert(Id < Blocks.size() && "block id out of range");
    return Blocks[Id];
  }

  uint32_t numBlocks() const { return static_cast<uint32_t>(Blocks.size()); }

  /// Allocates a fresh virtual register.
  Reg newReg() { return NumRegs++; }

  /// Allocates the next function-unique instruction id.
  InstId newInstId() { return NextInstId++; }

  /// Successor block ids of \p Id (empty for Ret-terminated blocks).
  std::vector<BlockId> successors(BlockId Id) const;

  /// Finds the instruction with identity \p Ident; returns null if absent.
  /// O(instructions); fine for analysis-time lookups.
  const Instruction *findInst(InstId Ident) const;

  /// Position of an instruction inside the function.
  struct InstPos {
    BlockId Block = NoBlock;
    uint32_t Index = 0;
    bool valid() const { return Block != NoBlock; }
  };

  /// Locates \p Ident; InstPos.valid() is false if absent.
  InstPos findInstPos(InstId Ident) const;

private:
  InstId NextInstId = 0;
};

} // namespace ir
} // namespace chimera

#endif // CHIMERA_IR_FUNCTION_H
