//===- ir/Printer.cpp - Chimera IR textual dump ----------------------------===//

#include "ir/Printer.h"

using namespace chimera;
using namespace chimera::ir;

namespace {

std::string regName(Reg R) {
  return R == NoReg ? std::string("_") : "r" + std::to_string(R);
}

} // namespace

std::string chimera::ir::printInstruction(const Module &M, const Function &F,
                                          const Instruction &Inst) {
  auto global = [&](uint32_t Id) {
    return Id < M.Globals.size() ? M.Globals[Id].Name : "<bad-global>";
  };
  auto sync = [&](uint32_t Id) {
    return Id < M.Syncs.size() ? M.Syncs[Id].Name : "<bad-sync>";
  };
  auto callee = [&](uint32_t Id) {
    return Id < M.Functions.size() ? M.function(Id).Name : "<bad-func>";
  };
  auto argList = [&](const std::vector<Reg> &Args) {
    std::string Out = "(";
    for (size_t I = 0; I != Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += regName(Args[I]);
    }
    return Out + ")";
  };
  (void)F;

  switch (Inst.Op) {
  case Opcode::ConstInt:
    return regName(Inst.Dst) + " = const " + std::to_string(Inst.Imm);
  case Opcode::Move:
    return regName(Inst.Dst) + " = " + regName(Inst.A);
  case Opcode::Unary:
    return regName(Inst.Dst) + " = " +
           (Inst.UOp == UnOp::Neg ? "neg " : "not ") + regName(Inst.A);
  case Opcode::Binary:
    return regName(Inst.Dst) + " = " + binOpName(Inst.BOp) + " " +
           regName(Inst.A) + ", " + regName(Inst.B);
  case Opcode::AddrGlobal:
    return regName(Inst.Dst) + " = addrg @" + global(Inst.Id) +
           (Inst.A == NoReg ? "" : "[" + regName(Inst.A) + "]");
  case Opcode::PtrAdd:
    return regName(Inst.Dst) + " = ptradd " + regName(Inst.A) + ", " +
           regName(Inst.B);
  case Opcode::Load:
    return regName(Inst.Dst) + " = load [" + regName(Inst.A) + "]";
  case Opcode::Store:
    return "store [" + regName(Inst.A) + "], " + regName(Inst.B);
  case Opcode::Br:
    return "br bb" + std::to_string(Inst.Succ0);
  case Opcode::CondBr:
    return "condbr " + regName(Inst.A) + ", bb" + std::to_string(Inst.Succ0) +
           ", bb" + std::to_string(Inst.Succ1);
  case Opcode::Ret:
    return Inst.A == NoReg ? "ret" : "ret " + regName(Inst.A);
  case Opcode::Call:
    return (Inst.Dst == NoReg ? std::string() : regName(Inst.Dst) + " = ") +
           "call " + callee(Inst.Id) + argList(Inst.Args);
  case Opcode::Spawn:
    return regName(Inst.Dst) + " = spawn " + callee(Inst.Id) +
           argList(Inst.Args);
  case Opcode::Join:
    return "join " + regName(Inst.A);
  case Opcode::MutexLock:
    return "mutex_lock @" + sync(Inst.Id);
  case Opcode::MutexUnlock:
    return "mutex_unlock @" + sync(Inst.Id);
  case Opcode::BarrierWait:
    return "barrier_wait @" + sync(Inst.Id);
  case Opcode::CondWait:
    return "cond_wait @" + sync(Inst.Id) + ", @" + sync(Inst.Id2);
  case Opcode::CondSignal:
    return "cond_signal @" + sync(Inst.Id);
  case Opcode::CondBroadcast:
    return "cond_broadcast @" + sync(Inst.Id);
  case Opcode::Alloc:
    return regName(Inst.Dst) + " = alloc " + regName(Inst.A);
  case Opcode::Input:
    return regName(Inst.Dst) + " = input";
  case Opcode::NetRecv:
    return regName(Inst.Dst) + " = net_recv";
  case Opcode::FileRead:
    return regName(Inst.Dst) + " = file_read";
  case Opcode::Output:
    return "output " + regName(Inst.A);
  case Opcode::Yield:
    return "yield";
  case Opcode::WeakAcquire: {
    std::string Out = "weak_acquire wl" + std::to_string(Inst.Imm);
    if (Inst.A != NoReg)
      Out += " range [" + regName(Inst.A) + ", " + regName(Inst.B) + "]";
    return Out;
  }
  case Opcode::WeakRelease:
    return "weak_release wl" + std::to_string(Inst.Imm);
  }
  return "<?>";
}

std::string chimera::ir::printFunction(const Module &M, const Function &F) {
  std::string Out = (F.ReturnsVoid ? "void @" : "int @") + F.Name + "(";
  for (uint32_t I = 0; I != F.NumParams; ++I) {
    if (I)
      Out += ", ";
    Out += std::string(irTypeName(F.ParamTypes[I])) + " r" +
           std::to_string(I);
  }
  Out += ") {\n";
  for (BlockId B = 0; B != F.numBlocks(); ++B) {
    Out += "bb" + std::to_string(B) + ":\n";
    for (const Instruction &Inst : F.block(B).Insts)
      Out += "  " + printInstruction(M, F, Inst) + "\n";
  }
  Out += "}\n";
  return Out;
}

std::string chimera::ir::printModule(const Module &M) {
  std::string Out = "; module " + M.Name + "\n";
  for (const GlobalVar &G : M.Globals) {
    Out += "global @" + G.Name;
    if (G.SizeWords > 1)
      Out += "[" + std::to_string(G.SizeWords) + "]";
    if (G.Init)
      Out += " = " + std::to_string(G.Init);
    Out += "\n";
  }
  for (const SyncObject &S : M.Syncs) {
    switch (S.Kind) {
    case SyncKind::Mutex: Out += "mutex @" + S.Name + "\n"; break;
    case SyncKind::Barrier:
      Out += "barrier @" + S.Name + "(" + std::to_string(S.Parties) + ")\n";
      break;
    case SyncKind::Cond: Out += "cond @" + S.Name + "\n"; break;
    }
  }
  for (size_t I = 0; I != M.WeakLocks.size(); ++I) {
    const WeakLockMeta &WL = M.WeakLocks[I];
    Out += "; weak-lock wl" + std::to_string(I) + " " +
           weakLockGranularityName(WL.Granularity) + " " + WL.Name + "\n";
  }
  Out += "\n";
  for (const auto &F : M.Functions)
    Out += printFunction(M, *F) + "\n";
  return Out;
}
