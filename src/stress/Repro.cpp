//===- stress/Repro.cpp - Minimal-repro file round-trip --------------------===//
//
// Part of the Chimera reproduction. MIT license.
//
// The v1 repro format is a key/value header followed by length-prefixed
// raw source blocks, so arbitrary MiniC text (newlines included) rides
// along byte-exactly:
//
//   # chimera stress repro v1
//   oracle: parallel-replay
//   seed: 7
//   ...
//   source: 412
//   <exactly 412 bytes of MiniC>
//   profile: 0
//
// parseRepro(formatRepro(C)) == C for every field; unknown keys are an
// error, because a repro that silently drops a knob it was minimized to
// need no longer reproduces anything.
//
//===----------------------------------------------------------------------===//

#include "stress/Stress.h"

#include <fstream>
#include <map>
#include <sstream>

using namespace chimera;
using namespace chimera::stress;

namespace {

const char *Magic = "# chimera stress repro v1";

void emit(std::string &Out, const std::string &Key,
          const std::string &Value) {
  Out += Key;
  Out += ": ";
  Out += Value;
  Out += '\n';
}

void emit(std::string &Out, const std::string &Key, uint64_t Value) {
  emit(Out, Key, std::to_string(Value));
}

support::Expected<uint64_t> parseU64(const std::string &Key,
                                     const std::string &Value) {
  if (Value.empty() ||
      Value.find_first_not_of("0123456789") != std::string::npos)
    return support::Error::failure("repro: bad integer for '" + Key +
                                   "': '" + Value + "'");
  return std::stoull(Value);
}

} // namespace

std::string stress::formatRepro(const TrialCase &Case) {
  const core::PipelineConfig &Cfg = Case.Config;
  std::string Out;
  Out += Magic;
  Out += '\n';
  emit(Out, "oracle", oracleName(Case.Oracle));
  emit(Out, "seed", Case.Seed);
  emit(Out, "source-name", Case.SourceName);
  emit(Out, "cores", Cfg.NumCores);
  emit(Out, "profile-runs", Cfg.ProfileRuns);
  emit(Out, "profile-cores", Cfg.ProfileCores);
  emit(Out, "profile-seed-base", Cfg.ProfileSeedBase);
  emit(Out, "analysis-jobs", Cfg.AnalysisJobs);
  emit(Out, "summary-cache", uint64_t(Cfg.UseSummaryCache));
  emit(Out, "mhp", analysis::mhpModeName(Cfg.Mhp));
  emit(Out, "lock-order", analysis::lockOrderModeName(Cfg.LockOrder));
  emit(Out, "force-weak-polling", uint64_t(Cfg.ForceWeakPolling));
  emit(Out, "weak-lock-timeout", Cfg.WeakLockTimeout);
  emit(Out, "quantum-min", Cfg.QuantumMin);
  emit(Out, "quantum-max", Cfg.QuantumMax);
  emit(Out, "dispatch-batch", Cfg.DispatchBatch);
  emit(Out, "segment-bytes", Cfg.SegmentBytes);
  emit(Out, "checkpoint-every", Cfg.CheckpointEvery);
  emit(Out, "replay-jobs", Cfg.ReplayJobs);
  emit(Out, "obs", obs::obsModeName(Cfg.Observability));
  emit(Out, "alt-dispatch-batch", Case.AltDispatchBatch);
  emit(Out, "alt-quantum-min", Case.AltQuantumMin);
  emit(Out, "alt-quantum-max", Case.AltQuantumMax);
  emit(Out, "fault", faultKindName(Case.Fault.K));
  emit(Out, "fault-offset", Case.Fault.Offset);
  emit(Out, "source", Case.Source.size());
  Out += Case.Source;
  Out += '\n';
  emit(Out, "profile", Case.Profile.size());
  Out += Case.Profile;
  Out += '\n';
  return Out;
}

support::Expected<TrialCase> stress::parseRepro(const std::string &Text) {
  TrialCase Case;
  size_t Pos = 0;
  auto nextLine = [&]() -> support::Expected<std::string> {
    if (Pos >= Text.size())
      return support::Error::failure("repro: unexpected end of file");
    size_t Nl = Text.find('\n', Pos);
    if (Nl == std::string::npos)
      return support::Error::failure("repro: missing final newline");
    std::string Line = Text.substr(Pos, Nl - Pos);
    Pos = Nl + 1;
    return Line;
  };
  auto takeBlock = [&](size_t Len,
                       std::string &Into) -> support::Error {
    if (Pos + Len + 1 > Text.size())
      return support::Error::failure("repro: source block truncated");
    Into = Text.substr(Pos, Len);
    Pos += Len;
    if (Text[Pos] != '\n')
      return support::Error::failure(
          "repro: source block not newline-terminated");
    ++Pos;
    return support::Error::success();
  };

  auto First = nextLine();
  if (!First)
    return First.error();
  if (*First != Magic)
    return support::Error::failure("repro: bad magic line '" + *First + "'");

  bool SawSource = false, SawProfile = false;
  while (Pos < Text.size()) {
    auto Line = nextLine();
    if (!Line)
      return Line.error();
    if (Line->empty())
      continue;
    size_t Colon = Line->find(": ");
    std::string Key, Value;
    if (Colon == std::string::npos) {
      // "key:" with an empty value ("source-name: " trims to this).
      if (Line->back() == ':')
        Key = Line->substr(0, Line->size() - 1);
      else
        return support::Error::failure("repro: malformed line '" + *Line +
                                       "'");
    } else {
      Key = Line->substr(0, Colon);
      Value = Line->substr(Colon + 2);
    }

    auto U64 = [&]() { return parseU64(Key, Value); };
    if (Key == "oracle") {
      auto K = parseOracle(Value);
      if (!K)
        return K.error();
      Case.Oracle = *K;
    } else if (Key == "seed") {
      auto V = U64();
      if (!V)
        return V.error();
      Case.Seed = *V;
    } else if (Key == "source-name") {
      Case.SourceName = Value;
    } else if (Key == "cores") {
      auto V = U64();
      if (!V)
        return V.error();
      Case.Config.NumCores = unsigned(*V);
    } else if (Key == "profile-runs") {
      auto V = U64();
      if (!V)
        return V.error();
      Case.Config.ProfileRuns = unsigned(*V);
    } else if (Key == "profile-cores") {
      auto V = U64();
      if (!V)
        return V.error();
      Case.Config.ProfileCores = unsigned(*V);
    } else if (Key == "profile-seed-base") {
      auto V = U64();
      if (!V)
        return V.error();
      Case.Config.ProfileSeedBase = *V;
    } else if (Key == "analysis-jobs") {
      auto V = U64();
      if (!V)
        return V.error();
      Case.Config.AnalysisJobs = unsigned(*V);
    } else if (Key == "summary-cache") {
      auto V = U64();
      if (!V)
        return V.error();
      Case.Config.UseSummaryCache = *V != 0;
    } else if (Key == "mhp") {
      auto M = analysis::parseMhpMode(Value);
      if (!M)
        return M.error();
      Case.Config.Mhp = *M;
    } else if (Key == "lock-order") {
      auto M = analysis::parseLockOrderMode(Value);
      if (!M)
        return M.error();
      Case.Config.LockOrder = *M;
    } else if (Key == "force-weak-polling") {
      auto V = U64();
      if (!V)
        return V.error();
      Case.Config.ForceWeakPolling = *V != 0;
    } else if (Key == "weak-lock-timeout") {
      auto V = U64();
      if (!V)
        return V.error();
      Case.Config.WeakLockTimeout = *V;
    } else if (Key == "quantum-min") {
      auto V = U64();
      if (!V)
        return V.error();
      Case.Config.QuantumMin = *V;
    } else if (Key == "quantum-max") {
      auto V = U64();
      if (!V)
        return V.error();
      Case.Config.QuantumMax = *V;
    } else if (Key == "dispatch-batch") {
      auto V = U64();
      if (!V)
        return V.error();
      Case.Config.DispatchBatch = unsigned(*V);
    } else if (Key == "segment-bytes") {
      auto V = U64();
      if (!V)
        return V.error();
      Case.Config.SegmentBytes = *V;
    } else if (Key == "checkpoint-every") {
      auto V = U64();
      if (!V)
        return V.error();
      Case.Config.CheckpointEvery = *V;
    } else if (Key == "replay-jobs") {
      auto V = U64();
      if (!V)
        return V.error();
      Case.Config.ReplayJobs = unsigned(*V);
    } else if (Key == "obs") {
      auto M = obs::parseObsMode(Value);
      if (!M)
        return M.error();
      Case.Config.Observability = *M;
    } else if (Key == "alt-dispatch-batch") {
      auto V = U64();
      if (!V)
        return V.error();
      Case.AltDispatchBatch = unsigned(*V);
    } else if (Key == "alt-quantum-min") {
      auto V = U64();
      if (!V)
        return V.error();
      Case.AltQuantumMin = *V;
    } else if (Key == "alt-quantum-max") {
      auto V = U64();
      if (!V)
        return V.error();
      Case.AltQuantumMax = *V;
    } else if (Key == "fault") {
      auto K = parseFaultKind(Value);
      if (!K)
        return K.error();
      Case.Fault.K = *K;
    } else if (Key == "fault-offset") {
      auto V = U64();
      if (!V)
        return V.error();
      Case.Fault.Offset = *V;
    } else if (Key == "source") {
      auto V = U64();
      if (!V)
        return V.error();
      if (auto Err = takeBlock(size_t(*V), Case.Source); Err)
        return Err;
      SawSource = true;
    } else if (Key == "profile") {
      auto V = U64();
      if (!V)
        return V.error();
      if (auto Err = takeBlock(size_t(*V), Case.Profile); Err)
        return Err;
      SawProfile = true;
    } else {
      return support::Error::failure("repro: unknown key '" + Key + "'");
    }
  }

  if (!SawSource)
    return support::Error::failure("repro: missing source block");
  if (!SawProfile)
    return support::Error::failure("repro: missing profile block");
  Case.Config.Name = Case.SourceName;
  return Case;
}

support::Error stress::writeReproFile(const std::string &Path,
                                      const TrialCase &Case) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out.good())
    return support::Error::failure("cannot open repro file " + Path);
  std::string Text = formatRepro(Case);
  Out.write(Text.data(), std::streamsize(Text.size()));
  Out.close();
  if (!Out.good())
    return support::Error::failure("short write to repro file " + Path);
  return support::Error::success();
}

support::Expected<TrialCase> stress::readReproFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In.good())
    return support::Error::failure("cannot read repro file " + Path);
  std::string Text{std::istreambuf_iterator<char>(In),
                   std::istreambuf_iterator<char>()};
  return parseRepro(Text);
}
