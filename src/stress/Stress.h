//===- stress/Stress.h - Schedule-fuzzing & fault-injection -----*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic stress campaign over the whole pipeline: every seed
/// derives one perturbed configuration (a TrialCase) plus one
/// differential oracle, runs it (runTrial), and any failure is shrunk
/// by a delta-debugging Minimizer to a minimal repro that can be
/// written to disk and replayed bit-identically (`chimera stress
/// --repro <file>`).
///
/// Everything here is a pure function of the base seed: deriveCase uses
/// only support::Rng seeded from (BaseSeed, Index), runTrial consults
/// no wall clock, and the campaign merges results in index order — so a
/// campaign is reproducible across runs, job counts, and machines, and
/// a checked-in repro file keeps failing (or keeps passing, once fixed)
/// forever.
///
/// The oracles are differential: each one runs the same simulated
/// program twice through paths the architecture promises are
/// equivalent (record vs replay, sequential vs parallel replay, warm
/// vs cold artifact cache, observability on vs off, ...) and fails on
/// any byte of disagreement. Fault-injection oracles corrupt the
/// on-disk log / cache image and check the damage contracts instead
/// (longest-valid-prefix recovery, damaged artifacts never surface).
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_STRESS_STRESS_H
#define CHIMERA_STRESS_STRESS_H

#include "core/Options.h"
#include "support/Expected.h"
#include "support/Metrics.h"

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace chimera {
namespace stress {

//===----------------------------------------------------------------------===//
// Oracles
//===----------------------------------------------------------------------===//

/// One differential check over a TrialCase. Every oracle is a totality:
/// it either passes or produces a classed failure message; a crash or
/// unexpected error inside the pipeline is itself a failure.
enum class OracleKind {
  /// record(seed) then replay(log): state hash and output identical.
  RecordReplay,
  /// recordStreamed: the on-disk segmented log recovers Complete and
  /// re-encodes byte-identically to the in-memory log; replaying the
  /// recovered log reproduces the recorded state hash.
  StreamedLog,
  /// replayParallel(jobs) is bit-identical to sequential recovery +
  /// replay: state, output, and merged log bytes.
  ParallelReplay,
  /// Under a lock-order-certified plan, recording with weak-timeout
  /// polling elided and with polling forced yields byte-identical logs.
  PollElision,
  /// A plan recomputed cold, a plan hit warm in an ArtifactCache, and a
  /// plan decoded from serialized cache bytes are fingerprint-identical
  /// and drive byte-identical recordings.
  CacheWarmCold,
  /// Observability Off vs Sampled/Full never changes simulated state:
  /// logs, hashes, and output are bit-identical.
  ObsInert,
  /// A corrupted log file either refuses to open, recovers a valid
  /// prefix (never Complete with altered content), and parallel replay
  /// of the damaged log agrees with sequential recovery + replay.
  LogFault,
  /// A corrupted cache image loads partially or errors, but never
  /// surfaces a damaged artifact: a pipeline over the damaged cache is
  /// bit-identical to a cold one.
  CacheFault,
  /// DispatchBatch (and AnalysisJobs) are pure host-speed knobs:
  /// changing them changes no recorded byte.
  BatchInvariance,
  /// A log records under one quantum/DispatchBatch and replays under
  /// another: the replay still reproduces the recorded state hash.
  ReplayPerturbed,
};

/// All oracle kinds, in declaration order.
const std::vector<OracleKind> &allOracles();
const char *oracleName(OracleKind Kind);
support::Expected<OracleKind> parseOracle(const std::string &Text);

//===----------------------------------------------------------------------===//
// Trial cases
//===----------------------------------------------------------------------===//

/// Deterministic damage applied to an on-disk image (log or cache
/// bytes) before the recovery path under test reads it back.
struct FaultSpec {
  enum class Kind {
    None,
    FlipBit,  ///< XOR one bit: bit index = Offset mod (8 * size).
    Truncate, ///< Keep the first (Offset mod size) bytes.
  };
  Kind K = Kind::None;
  uint64_t Offset = 0;
};

const char *faultKindName(FaultSpec::Kind Kind);
support::Expected<FaultSpec::Kind> parseFaultKind(const std::string &Text);

/// Applies \p Fault to \p Bytes in place (no-op for Kind::None or an
/// empty image).
void applyFault(std::vector<uint8_t> &Bytes, const FaultSpec &Fault);

/// Everything one trial needs, self-contained: the MiniC sources are
/// stored verbatim so a repro file replays against exactly the program
/// it failed on.
struct TrialCase {
  OracleKind Oracle = OracleKind::RecordReplay;
  /// Execution seed fed to record().
  uint64_t Seed = 1;
  /// Catalog or workload name, for humans and file names.
  std::string SourceName = "racy-counter";
  /// Evaluation MiniC source.
  std::string Source;
  /// Profiling source; empty = same as Source.
  std::string Profile;
  core::PipelineConfig Config;
  /// Damage for the fault-injection oracles (Kind::None otherwise).
  FaultSpec Fault;
  /// Perturbation partners for BatchInvariance / ReplayPerturbed.
  unsigned AltDispatchBatch = 1;
  uint64_t AltQuantumMin = 3000;
  uint64_t AltQuantumMax = 9000;
};

/// The outcome of one trial. Failure messages start with a stable
/// class token ("state-divergence", "log-divergence", "build", ...)
/// followed by ": detail"; the class is what the Minimizer preserves
/// while shrinking.
struct TrialResult {
  bool Passed = false;
  std::string Failure;
  /// State hash of the reference execution (0 when it never ran) —
  /// lets a repro re-run assert bit-identity with the original find.
  uint64_t RecordHash = 0;
};

/// The stable class token of \p Failure (its prefix up to ':').
std::string failureClass(const std::string &Failure);

/// Derives trial \p Index of the campaign with base seed \p BaseSeed:
/// picks an oracle, a source (mini-catalog or an occasional tiny-scale
/// paper workload), and a perturbed configuration, all from one
/// support::Rng. Pure: same (BaseSeed, Index) always yields the same
/// case.
TrialCase deriveCase(uint64_t BaseSeed, uint64_t Index);

/// Runs one trial to completion. Deterministic: the result is a pure
/// function of the case (temp-file names aside, which never feed back
/// into simulated state).
TrialResult runTrial(const TrialCase &Case);

/// Names of the built-in mini sources (deriveCase's catalog).
const std::vector<std::string> &miniSourceNames();
/// MiniC text of a catalog source; fails on an unknown name.
support::Expected<std::string> miniSource(const std::string &Name);

//===----------------------------------------------------------------------===//
// Repro files
//===----------------------------------------------------------------------===//

/// Text round-trip for TrialCase: `formatRepro` emits the v1 repro
/// format (key/value header plus length-prefixed raw source blocks) and
/// `parseRepro` reads it back exactly — parse(format(C)) == C for every
/// field. Unknown keys are an error (a repro must not silently drop a
/// knob it was minimized to need).
std::string formatRepro(const TrialCase &Case);
support::Expected<TrialCase> parseRepro(const std::string &Text);

support::Error writeReproFile(const std::string &Path,
                              const TrialCase &Case);
support::Expected<TrialCase> readReproFile(const std::string &Path);

//===----------------------------------------------------------------------===//
// Minimizer
//===----------------------------------------------------------------------===//

/// Delta-debugging shrinker: repeatedly proposes simpler variants of a
/// failing case (smaller source, default knobs, seed 1, halved fault
/// offset) and keeps each one iff the caller's predicate still fails,
/// until a full round adopts nothing. Deterministic: candidates are
/// proposed in a fixed order, so the same case and predicate always
/// shrink to the same minimum.
class Minimizer {
public:
  /// Returns true when the candidate still exhibits the failure being
  /// chased (typically: runTrial fails with the same failureClass).
  using Predicate = std::function<bool(const TrialCase &)>;

  struct Stats {
    uint64_t Tried = 0;   ///< Candidates evaluated.
    uint64_t Adopted = 0; ///< Candidates that still failed and were kept.
    uint64_t Rounds = 0;  ///< Fixpoint rounds (last round adopts nothing).
  };

  /// Shrinks \p Case under \p StillFails. The input case is assumed to
  /// fail the predicate (it is returned unchanged if nothing simpler
  /// does).
  TrialCase minimize(TrialCase Case, const Predicate &StillFails,
                     Stats *S = nullptr) const;
};

/// The standard shrink predicate: the candidate's runTrial must fail
/// with the same failure class as \p Original.
Minimizer::Predicate sameFailurePredicate(const TrialResult &Original);

//===----------------------------------------------------------------------===//
// Campaign
//===----------------------------------------------------------------------===//

struct CampaignOptions {
  uint64_t Seeds = 500;
  uint64_t BaseSeed = 1;
  /// Worker threads for the trial fan-out; 0 = one per hardware thread.
  /// Results are identical for every value.
  unsigned Jobs = 0;
  /// Shrink every failure with the Minimizer.
  bool Shrink = true;
  /// Directory for minimized repro files; empty = don't write any.
  std::string ReproDir;
  /// Optional registry for stress.* counters; may be null.
  obs::Registry *Metrics = nullptr;
  /// Optional progress callback (Done, Total); called from pool
  /// threads, must be thread-safe. May be null.
  std::function<void(uint64_t, uint64_t)> Progress;
};

struct CampaignFailure {
  uint64_t Index = 0; ///< Trial index within the campaign.
  TrialCase Case;
  TrialResult Result;
  /// Shrunk case + its result; equal to Case/Result when shrinking was
  /// disabled.
  TrialCase Minimized;
  TrialResult MinimizedResult;
  Minimizer::Stats Shrink;
  std::string ReproPath; ///< Empty when no ReproDir was given.
};

struct CampaignReport {
  uint64_t Trials = 0;
  uint64_t Passed = 0;
  uint64_t Failed = 0;
  /// Trials (and failures) per oracle name.
  std::map<std::string, uint64_t> TrialsPerOracle;
  std::map<std::string, uint64_t> FailuresPerOracle;
  std::vector<CampaignFailure> Failures;

  bool allPassed() const { return Failed == 0; }
  /// The whole report as a JSON object (campaign summary, per-oracle
  /// table, one entry per failure with its minimized knobs and repro
  /// path).
  std::string toJson() const;
};

/// Runs trials [0, Seeds) of the campaign: derive, run on a worker
/// pool, merge in index order, then shrink failures sequentially (in
/// index order) and write repro files. Deterministic for a given
/// (BaseSeed, Seeds) regardless of Jobs.
CampaignReport runCampaign(const CampaignOptions &Opts);

} // namespace stress
} // namespace chimera

#endif // CHIMERA_STRESS_STRESS_H
