//===- stress/Campaign.cpp - Seed fan-out, shrink, and report --------------===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "stress/Stress.h"

#include "support/ThreadPool.h"

#include <atomic>
#include <filesystem>
#include <sstream>

using namespace chimera;
using namespace chimera::stress;

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (uint8_t(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

std::string CampaignReport::toJson() const {
  std::ostringstream Out;
  Out << "{\n"
      << "  \"trials\": " << Trials << ",\n"
      << "  \"passed\": " << Passed << ",\n"
      << "  \"failed\": " << Failed << ",\n";
  Out << "  \"per_oracle\": {";
  bool First = true;
  for (const auto &[Name, Count] : TrialsPerOracle) {
    if (!First)
      Out << ",";
    First = false;
    auto FIt = FailuresPerOracle.find(Name);
    uint64_t Fails = FIt == FailuresPerOracle.end() ? 0 : FIt->second;
    Out << "\n    \"" << jsonEscape(Name) << "\": {\"trials\": " << Count
        << ", \"failed\": " << Fails << "}";
  }
  Out << (TrialsPerOracle.empty() ? "" : "\n  ") << "},\n";
  Out << "  \"failures\": [";
  for (size_t I = 0; I != Failures.size(); ++I) {
    const CampaignFailure &F = Failures[I];
    if (I)
      Out << ",";
    Out << "\n    {\n"
        << "      \"index\": " << F.Index << ",\n"
        << "      \"oracle\": \"" << jsonEscape(oracleName(F.Case.Oracle))
        << "\",\n"
        << "      \"source\": \"" << jsonEscape(F.Case.SourceName)
        << "\",\n"
        << "      \"seed\": " << F.Case.Seed << ",\n"
        << "      \"failure\": \"" << jsonEscape(F.Result.Failure)
        << "\",\n"
        << "      \"minimized_failure\": \""
        << jsonEscape(F.MinimizedResult.Failure) << "\",\n"
        << "      \"minimized_source\": \""
        << jsonEscape(F.Minimized.SourceName) << "\",\n"
        << "      \"shrink\": {\"tried\": " << F.Shrink.Tried
        << ", \"adopted\": " << F.Shrink.Adopted
        << ", \"rounds\": " << F.Shrink.Rounds << "},\n"
        << "      \"repro\": \"" << jsonEscape(F.ReproPath) << "\"\n"
        << "    }";
  }
  Out << (Failures.empty() ? "" : "\n  ") << "]\n}\n";
  return Out.str();
}

CampaignReport stress::runCampaign(const CampaignOptions &Opts) {
  CampaignReport Rep;
  Rep.Trials = Opts.Seeds;

  std::vector<TrialCase> Cases(size_t(Opts.Seeds));
  std::vector<TrialResult> Results(size_t(Opts.Seeds));
  std::atomic<uint64_t> Done{0};

  unsigned Workers =
      Opts.Jobs ? Opts.Jobs : support::ThreadPool::defaultConcurrency();
  support::ThreadPool Pool(Workers);
  Pool.parallelFor(size_t(Opts.Seeds), [&](size_t I) {
    Cases[I] = deriveCase(Opts.BaseSeed, I);
    Results[I] = runTrial(Cases[I]);
    uint64_t N = Done.fetch_add(1) + 1;
    if (Opts.Progress)
      Opts.Progress(N, Opts.Seeds);
  });

  // Merge in index order (deterministic regardless of Jobs), then
  // shrink failures sequentially — the Minimizer re-runs trials, and
  // interleaving those with campaign trials would only add noise to
  // the progress story, not change any result.
  Minimizer Mini;
  for (size_t I = 0; I != Cases.size(); ++I) {
    ++Rep.TrialsPerOracle[oracleName(Cases[I].Oracle)];
    if (Results[I].Passed) {
      ++Rep.Passed;
      continue;
    }
    ++Rep.Failed;
    ++Rep.FailuresPerOracle[oracleName(Cases[I].Oracle)];

    CampaignFailure F;
    F.Index = I;
    F.Case = Cases[I];
    F.Result = Results[I];
    F.Minimized = F.Case;
    F.MinimizedResult = F.Result;
    if (Opts.Shrink) {
      F.Minimized =
          Mini.minimize(F.Case, sameFailurePredicate(F.Result), &F.Shrink);
      F.MinimizedResult = runTrial(F.Minimized);
    }
    if (!Opts.ReproDir.empty()) {
      std::error_code Ec;
      std::filesystem::create_directories(Opts.ReproDir, Ec);
      F.ReproPath = (std::filesystem::path(Opts.ReproDir) /
                     ("repro_" + std::to_string(I) + "_" +
                      oracleName(F.Minimized.Oracle) + ".txt"))
                        .string();
      if (auto Err = writeReproFile(F.ReproPath, F.Minimized); Err)
        F.ReproPath = "";
    }
    Rep.Failures.push_back(std::move(F));
  }

  if (Opts.Metrics) {
    obs::Scope S(Opts.Metrics, "stress");
    S.counter("trials").add(Rep.Trials);
    S.counter("passed").add(Rep.Passed);
    S.counter("failed").add(Rep.Failed);
    uint64_t Tried = 0, Adopted = 0;
    for (const CampaignFailure &F : Rep.Failures) {
      Tried += F.Shrink.Tried;
      Adopted += F.Shrink.Adopted;
    }
    S.counter("shrink.tried").add(Tried);
    S.counter("shrink.adopted").add(Adopted);
    for (const auto &[Name, Count] : Rep.TrialsPerOracle)
      S.counter("oracle." + Name + ".trials").add(Count);
    for (const auto &[Name, Count] : Rep.FailuresPerOracle)
      S.counter("oracle." + Name + ".failed").add(Count);
  }
  return Rep;
}
