//===- stress/Trial.cpp - Case derivation and the oracle suite -------------===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "stress/Stress.h"

#include "core/Pipeline.h"
#include "instrument/LockOrderAuditor.h"
#include "replay/LogCodec.h"
#include "replay/LogReader.h"
#include "service/ArtifactCache.h"
#include "support/Hash.h"
#include "support/Rng.h"
#include "workloads/Workloads.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace chimera;
using namespace chimera::stress;

//===----------------------------------------------------------------------===//
// Oracle and fault names
//===----------------------------------------------------------------------===//

const std::vector<OracleKind> &stress::allOracles() {
  static const std::vector<OracleKind> All = {
      OracleKind::RecordReplay,  OracleKind::StreamedLog,
      OracleKind::ParallelReplay, OracleKind::PollElision,
      OracleKind::CacheWarmCold, OracleKind::ObsInert,
      OracleKind::LogFault,      OracleKind::CacheFault,
      OracleKind::BatchInvariance, OracleKind::ReplayPerturbed,
  };
  return All;
}

const char *stress::oracleName(OracleKind Kind) {
  switch (Kind) {
  case OracleKind::RecordReplay:
    return "record-replay";
  case OracleKind::StreamedLog:
    return "streamed-log";
  case OracleKind::ParallelReplay:
    return "parallel-replay";
  case OracleKind::PollElision:
    return "poll-elision";
  case OracleKind::CacheWarmCold:
    return "cache-warm-cold";
  case OracleKind::ObsInert:
    return "obs-inert";
  case OracleKind::LogFault:
    return "log-fault";
  case OracleKind::CacheFault:
    return "cache-fault";
  case OracleKind::BatchInvariance:
    return "batch-invariance";
  case OracleKind::ReplayPerturbed:
    return "replay-perturbed";
  }
  return "unknown";
}

support::Expected<OracleKind> stress::parseOracle(const std::string &Text) {
  for (OracleKind K : allOracles())
    if (Text == oracleName(K))
      return K;
  return support::Error::failure("unknown oracle '" + Text + "'");
}

const char *stress::faultKindName(FaultSpec::Kind Kind) {
  switch (Kind) {
  case FaultSpec::Kind::None:
    return "none";
  case FaultSpec::Kind::FlipBit:
    return "flip-bit";
  case FaultSpec::Kind::Truncate:
    return "truncate";
  }
  return "unknown";
}

support::Expected<FaultSpec::Kind>
stress::parseFaultKind(const std::string &Text) {
  for (FaultSpec::Kind K :
       {FaultSpec::Kind::None, FaultSpec::Kind::FlipBit,
        FaultSpec::Kind::Truncate})
    if (Text == faultKindName(K))
      return K;
  return support::Error::failure("unknown fault kind '" + Text + "'");
}

void stress::applyFault(std::vector<uint8_t> &Bytes, const FaultSpec &Fault) {
  if (Fault.K == FaultSpec::Kind::None || Bytes.empty())
    return;
  if (Fault.K == FaultSpec::Kind::FlipBit) {
    uint64_t Bit = Fault.Offset % (uint64_t(Bytes.size()) * 8);
    Bytes[size_t(Bit / 8)] ^= uint8_t(1u << (Bit % 8));
  } else {
    Bytes.resize(size_t(Fault.Offset % Bytes.size()));
  }
}

std::string stress::failureClass(const std::string &Failure) {
  return Failure.substr(0, Failure.find(':'));
}

//===----------------------------------------------------------------------===//
// Mini-source catalog
//===----------------------------------------------------------------------===//
//
// Small programs chosen for coverage, not realism: pure weak-lock
// contention, condvar/input traffic across checkpoint boundaries,
// barrier phases, and a deliberately cross-ordered pair of racy
// globals (lock-order-cycle material for the PollElision trials).

namespace {

const char *RacyCounterSrc =
    "int c;\nint hist[4];\nint tids[4];\n"
    "void w(int id, int n) { int i; int h = 0; for (i = 0; i < n; i++) { "
    "int t = c; c = t + 1; h = (h * 31 + t) & 1048575; } "
    "hist[id] = h; }\n"
    "int main() { int j; for (j = 0; j < 4; j++) { "
    "tids[j] = spawn(w, j, 300); } "
    "for (j = 0; j < 4; j++) { join(tids[j]); } "
    "output(c); int k; for (k = 0; k < 4; k++) { output(hist[k]); } "
    "return 0; }";

const char *ProducerConsumerSrc =
    "int q[32];\nint qh;\nint qt;\nint done;\nint consumed;\n"
    "mutex m;\ncond cv;\nbarrier b(3);\nint tids[3];\n"
    "void producer() { int i; for (i = 0; i < 24; i++) { lock(m); "
    "q[qt & 31] = input() & 255; qt++; cond_signal(cv); unlock(m); } "
    "lock(m); done = 1; cond_broadcast(cv); unlock(m); barrier_wait(b); }\n"
    "void consumer() { int run = 1; while (run) { lock(m); "
    "while (qh == qt && done == 0) { cond_wait(cv, m); } "
    "if (qh < qt) { consumed = consumed + q[qh & 31]; qh++; } "
    "else { run = 0; } unlock(m); } barrier_wait(b); }\n"
    "int main() { tids[0] = spawn(producer); tids[1] = spawn(consumer); "
    "tids[2] = spawn(consumer); int j; "
    "for (j = 0; j < 3; j++) { join(tids[j]); } output(consumed); "
    "return 0; }";

const char *BarrierPhasesSrc =
    "int a[8];\nint tids[4];\nbarrier b(4);\n"
    "void w(int id) { int p; for (p = 0; p < 5; p++) { int i; "
    "for (i = 0; i < 50; i++) { int s = (id + p) & 7; a[s] = a[s] + i; } "
    "barrier_wait(b); } }\n"
    "int main() { int j; for (j = 0; j < 4; j++) { tids[j] = spawn(w, j); } "
    "for (j = 0; j < 4; j++) { join(tids[j]); } "
    "int k; for (k = 0; k < 8; k++) { output(a[k]); } return 0; }";

// Two racy arrays touched in opposite NESTED orders: each worker's
// outer loop body is a guard region for one array whose inner loop
// opens a nested region for the other, so the planner's weak locks
// for x and y really are held one-inside-the-other in both orders —
// cyclic lock-order material, and (under tiny timeouts, when no
// acyclicity certificate elides the polls) the only catalog source
// that exercises genuine revocations. The dynamic `k[...]` indices
// keep the accesses from folding into per-element locks, and the long
// outer loops keep profiling seeing the workers concurrent (short
// loops degrade to one function-covering region, whose entry-ordered
// acquires cannot cycle).
const char *CrossOrderSrc =
    "int x[4];\nint y[4];\nint k[2];\nint tids[2];\n"
    "void xy() { int i = 0; while (i < 300) { int t = k[0]; "
    "x[t] = x[t] + 1; int j = 0; while (j < 4) { int u = k[1]; "
    "y[u] = y[u] + 1; j = j + 1; } i = i + 1; } }\n"
    "void yx() { int i = 0; while (i < 300) { int t = k[1]; "
    "y[t] = y[t] + 1; int j = 0; while (j < 4) { int u = k[0]; "
    "x[u] = x[u] + 1; j = j + 1; } i = i + 1; } }\n"
    "int main() { tids[0] = spawn(xy); tids[1] = spawn(yx); "
    "join(tids[0]); join(tids[1]); "
    "output(x[0]); output(y[0]); return 0; }";

struct CatalogEntry {
  const char *Name;
  const char *Source;
};

const CatalogEntry Catalog[] = {
    {"racy-counter", RacyCounterSrc},
    {"producer-consumer", ProducerConsumerSrc},
    {"barrier-phases", BarrierPhasesSrc},
    {"cross-order", CrossOrderSrc},
};

} // namespace

const std::vector<std::string> &stress::miniSourceNames() {
  static const std::vector<std::string> Names = [] {
    std::vector<std::string> N;
    for (const CatalogEntry &E : Catalog)
      N.push_back(E.Name);
    return N;
  }();
  return Names;
}

support::Expected<std::string> stress::miniSource(const std::string &Name) {
  for (const CatalogEntry &E : Catalog)
    if (Name == E.Name)
      return std::string(E.Source);
  return support::Error::failure("unknown mini source '" + Name + "'");
}

//===----------------------------------------------------------------------===//
// Case derivation
//===----------------------------------------------------------------------===//

namespace {

template <typename T, size_t N>
T pick(chimera::Rng &Rng, const T (&Choices)[N]) {
  return Choices[size_t(Rng.nextBelow(N))];
}

} // namespace

TrialCase stress::deriveCase(uint64_t BaseSeed, uint64_t Index) {
  Hasher H;
  H.addString("chimera-stress-v1");
  H.addWord(BaseSeed);
  H.addWord(Index);
  chimera::Rng Rng(H.digest());

  TrialCase C;
  C.Seed = Rng.nextInRange(1, 1u << 20);

  // Oracle mix, weighted toward the cheap high-yield checks.
  static const OracleKind Mix[] = {
      OracleKind::RecordReplay,   OracleKind::RecordReplay,
      OracleKind::StreamedLog,    OracleKind::StreamedLog,
      OracleKind::ParallelReplay, OracleKind::ParallelReplay,
      OracleKind::PollElision,    OracleKind::ObsInert,
      OracleKind::LogFault,       OracleKind::LogFault,
      OracleKind::CacheFault,     OracleKind::BatchInvariance,
      OracleKind::ReplayPerturbed, OracleKind::ReplayPerturbed,
      OracleKind::CacheWarmCold,  OracleKind::ParallelReplay,
  };
  C.Oracle = pick(Rng, Mix);

  // Source: mostly the mini catalog; one trial in ten runs a
  // tiny-worker paper workload so the planner's full vocabulary
  // (function locks, ranged loop-locks) stays in the mix.
  if (Rng.chance(1, 10)) {
    const auto &All = workloads::allWorkloads();
    workloads::WorkloadKind K = All[size_t(Rng.nextBelow(All.size()))];
    auto Req = workloads::pipelineRequest(K, /*Workers=*/2);
    C.SourceName = workloads::workloadInfo(K).Name;
    C.Source = Req.Eval;
    C.Profile = Req.Profile;
  } else {
    const CatalogEntry &E = Catalog[size_t(Rng.nextBelow(std::size(Catalog)))];
    C.SourceName = E.Name;
    C.Source = E.Source;
    C.Profile.clear();
  }

  core::PipelineConfig &Cfg = C.Config;
  Cfg.Name = C.SourceName;
  Cfg.NumCores = pick(Rng, (const unsigned[]){1, 2, 4, 8});
  Cfg.ProfileRuns = unsigned(Rng.nextInRange(2, 4));
  Cfg.ProfileCores = pick(Rng, (const unsigned[]){2, 4});
  Cfg.ProfileSeedBase = 90001 + Rng.nextBelow(5) * 1000;
  Cfg.AnalysisJobs = unsigned(Rng.nextInRange(1, 2));
  Cfg.UseSummaryCache = Rng.chance(1, 2);
  Cfg.Mhp = pick(Rng, (const analysis::MhpMode[]){
                          analysis::MhpMode::Off, analysis::MhpMode::ForkJoin,
                          analysis::MhpMode::Barrier,
                          analysis::MhpMode::Barrier});
  Cfg.LockOrder = pick(Rng, (const analysis::LockOrderMode[]){
                               analysis::LockOrderMode::Off,
                               analysis::LockOrderMode::Off,
                               analysis::LockOrderMode::Audit,
                               analysis::LockOrderMode::Enforce});
  // Tiny timeouts provoke weak-lock revocations — the rarest event
  // kind in the log, and historically the least-tested replay path.
  Cfg.WeakLockTimeout = pick(Rng, (const uint64_t[]){500, 2000, 20000,
                                                     500'000'000,
                                                     500'000'000});
  Cfg.QuantumMin = pick(Rng, (const uint64_t[]){1, 40, 300, 3000});
  Cfg.QuantumMax =
      Cfg.QuantumMin +
      pick(Rng, (const uint64_t[]){0, Cfg.QuantumMin * 2, 6000});
  Cfg.DispatchBatch = pick(Rng, (const unsigned[]){1, 2, 7, 64});
  Cfg.SegmentBytes = pick(Rng, (const uint64_t[]){512, 1024, 4096});
  Cfg.CheckpointEvery = pick(Rng, (const uint64_t[]){0, 1, 3, 16, 128});
  Cfg.ReplayJobs = C.Oracle == OracleKind::ParallelReplay
                       ? unsigned(Rng.nextInRange(2, 8))
                       : unsigned(Rng.nextInRange(1, 4));
  Cfg.Observability =
      C.Oracle == OracleKind::ObsInert
          ? (Rng.chance(1, 2) ? obs::ObsMode::Sampled : obs::ObsMode::Full)
          : pick(Rng, (const obs::ObsMode[]){obs::ObsMode::Off,
                                             obs::ObsMode::Off,
                                             obs::ObsMode::Sampled,
                                             obs::ObsMode::Full});

  if (C.Oracle == OracleKind::PollElision) {
    // The elision cross-check's contract holds for certified plans
    // under the default timeout (certification elides polling because
    // no revocation can be needed; a tiny timeout would make the
    // forced-polling run revoke and legitimately diverge).
    Cfg.LockOrder = Rng.chance(1, 2) ? analysis::LockOrderMode::Audit
                                     : analysis::LockOrderMode::Enforce;
    Cfg.WeakLockTimeout = 500'000'000;
  }

  if (C.Oracle == OracleKind::LogFault ||
      C.Oracle == OracleKind::CacheFault) {
    C.Fault.K = Rng.chance(1, 3) ? FaultSpec::Kind::Truncate
                                 : FaultSpec::Kind::FlipBit;
    C.Fault.Offset = Rng.next();
  }

  C.AltDispatchBatch = pick(Rng, (const unsigned[]){1, 3, 16, 128});
  C.AltQuantumMin = pick(Rng, (const uint64_t[]){1, 700, 5000});
  C.AltQuantumMax =
      C.AltQuantumMin + pick(Rng, (const uint64_t[]){0, 4242});
  return C;
}

//===----------------------------------------------------------------------===//
// Trial execution
//===----------------------------------------------------------------------===//

namespace {

using PipelinePtr = std::unique_ptr<core::ChimeraPipeline>;

support::Expected<PipelinePtr> makePipeline(const TrialCase &Case,
                                            core::PipelineConfig Config) {
  core::PipelineRequest Req;
  Req.Eval = Case.Source;
  Req.Profile = Case.Profile;
  Req.Config = std::move(Config);
  Req.Tag = "stress";
  return core::ChimeraPipeline::create(std::move(Req));
}

TrialResult fail(std::string Message) {
  TrialResult R;
  R.Passed = false;
  R.Failure = std::move(Message);
  return R;
}

TrialResult pass(uint64_t RecordHash) {
  TrialResult R;
  R.Passed = true;
  R.RecordHash = RecordHash;
  return R;
}

/// A temp-file path unique across concurrent trials; the name never
/// influences simulated results.
std::string tempLogPath() {
  static std::atomic<uint64_t> Counter{0};
  return (std::filesystem::temp_directory_path() /
          ("chimera_stress_" + std::to_string(uint64_t(::getpid())) + "_" +
           std::to_string(Counter.fetch_add(1)) + ".clg"))
      .string();
}

/// recordStreamed into a temp file, returning (result, file bytes).
struct StreamedRecording {
  rt::ExecutionResult Result;
  std::vector<uint8_t> Bytes;
  support::Error Err = support::Error::success();
};

StreamedRecording recordStreamedBytes(core::ChimeraPipeline &P,
                                      uint64_t Seed) {
  StreamedRecording Out;
  std::string Path = tempLogPath();
  auto R = P.recordStreamed(Path, Seed);
  if (!R) {
    std::remove(Path.c_str());
    Out.Err = support::Error::failure(R.error().message());
    return Out;
  }
  Out.Result = std::move(*R);
  std::ifstream In(Path, std::ios::binary);
  if (!In.good()) {
    std::remove(Path.c_str());
    Out.Err = support::Error::failure("cannot reopen streamed log " + Path);
    return Out;
  }
  Out.Bytes.assign(std::istreambuf_iterator<char>(In),
                   std::istreambuf_iterator<char>());
  In.close();
  std::remove(Path.c_str());
  return Out;
}

std::string hex(uint64_t V) {
  char Buf[19];
  std::snprintf(Buf, sizeof(Buf), "%016llx", (unsigned long long)V);
  return Buf;
}

// -- Oracles ----------------------------------------------------------------

TrialResult oracleRecordReplay(const TrialCase &Case) {
  auto P = makePipeline(Case, Case.Config);
  if (!P)
    return fail("build: " + P.error().message());
  auto Out = (*P)->recordAndReplay(Case.Seed);
  if (!Out.Record.Ok)
    return fail("record-error: " + Out.Record.Error);
  if (!Out.Replay.Ok)
    return fail("replay-error: " + Out.Replay.Error);
  if (Out.Record.StateHash != Out.Replay.StateHash)
    return fail("state-divergence: record=" + hex(Out.Record.StateHash) +
                " replay=" + hex(Out.Replay.StateHash));
  if (Out.Record.Output != Out.Replay.Output)
    return fail("output-divergence: record/replay outputs differ");
  return pass(Out.Record.StateHash);
}

TrialResult oracleStreamedLog(const TrialCase &Case) {
  auto P = makePipeline(Case, Case.Config);
  if (!P)
    return fail("build: " + P.error().message());
  auto Rec = recordStreamedBytes(**P, Case.Seed);
  if (Rec.Err)
    return fail("record-error: " + Rec.Err.message());
  auto Reader = replay::LogReader::open(Rec.Bytes, replay::LogReader::Options());
  if (!Reader)
    return fail("stream-open: " + Reader.error().message());
  auto Recovered = Reader->recover();
  if (!Recovered.Complete)
    return fail("stream-incomplete: " + Recovered.Failure.message());
  if (replay::encodeLog(Recovered.Log) != replay::encodeLog(Rec.Result.Log))
    return fail("log-divergence: streamed log differs from in-memory log");
  auto Rep = (*P)->replay(Recovered.Log);
  if (!Rep.Ok)
    return fail("replay-error: " + Rep.Error);
  if (Rep.StateHash != Rec.Result.StateHash)
    return fail("state-divergence: record=" + hex(Rec.Result.StateHash) +
                " streamed-replay=" + hex(Rep.StateHash));
  return pass(Rec.Result.StateHash);
}

TrialResult oracleParallelReplay(const TrialCase &Case) {
  auto P = makePipeline(Case, Case.Config);
  if (!P)
    return fail("build: " + P.error().message());
  auto Rec = recordStreamedBytes(**P, Case.Seed);
  if (Rec.Err)
    return fail("record-error: " + Rec.Err.message());

  auto SeqReader =
      replay::LogReader::open(Rec.Bytes, replay::LogReader::Options());
  if (!SeqReader)
    return fail("stream-open: " + SeqReader.error().message());
  auto Recovered = SeqReader->recover();
  if (!Recovered.Complete)
    return fail("stream-incomplete: " + Recovered.Failure.message());
  auto Seq = (*P)->replay(Recovered.Log);
  if (!Seq.Ok)
    return fail("replay-error: " + Seq.Error);

  auto ParReader =
      replay::LogReader::open(Rec.Bytes, replay::LogReader::Options());
  if (!ParReader)
    return fail("stream-open: " + ParReader.error().message());
  auto Par = (*P)->replayParallel(*ParReader, Case.Config.ReplayJobs);
  if (!Par.Exec.Ok)
    return fail("parallel-replay-error: " + Par.Exec.Error);
  if (Par.Exec.StateHash != Seq.StateHash)
    return fail("state-divergence: sequential=" + hex(Seq.StateHash) +
                " parallel=" + hex(Par.Exec.StateHash));
  if (Par.Exec.Output != Seq.Output)
    return fail("output-divergence: sequential/parallel outputs differ");
  if (replay::encodeLog(Par.Log) != replay::encodeLog(Recovered.Log))
    return fail("log-divergence: parallel merged log differs from recovery");
  return pass(Seq.StateHash);
}

TrialResult oraclePollElision(const TrialCase &Case) {
  core::PipelineConfig Cfg = Case.Config;
  Cfg.ForceWeakPolling = false;
  auto P = makePipeline(Case, Cfg);
  if (!P)
    return fail("build: " + P.error().message());
  auto Elided = (*P)->record(Case.Seed);
  if (!Elided.Ok)
    return fail("record-error: elided: " + Elided.Error);
  (*P)->setForceWeakPolling(true);
  auto Polled = (*P)->record(Case.Seed);
  if (!Polled.Ok)
    return fail("record-error: polled: " + Polled.Error);
  if (Elided.StateHash != Polled.StateHash)
    return fail("state-divergence: elided=" + hex(Elided.StateHash) +
                " polled=" + hex(Polled.StateHash));
  if (replay::encodeLog(Elided.Log) != replay::encodeLog(Polled.Log))
    return fail("log-divergence: elided/polled logs differ");
  return pass(Elided.StateHash);
}

TrialResult oracleCacheWarmCold(const TrialCase &Case) {
  service::ArtifactCache Cache;
  core::PipelineConfig Cfg = Case.Config;
  Cfg.Artifacts = &Cache;

  auto Cold = makePipeline(Case, Cfg);
  if (!Cold)
    return fail("build: cold: " + Cold.error().message());
  uint64_t ColdPlan = instrument::planFingerprint((*Cold)->plan());
  auto ColdRec = (*Cold)->record(Case.Seed);
  if (!ColdRec.Ok)
    return fail("record-error: cold: " + ColdRec.Error);

  auto Warm = makePipeline(Case, Cfg);
  if (!Warm)
    return fail("build: warm: " + Warm.error().message());
  uint64_t WarmPlan = instrument::planFingerprint((*Warm)->plan());
  if (WarmPlan != ColdPlan)
    return fail("plan-divergence: cold=" + hex(ColdPlan) +
                " warm=" + hex(WarmPlan));
  auto WarmRec = (*Warm)->record(Case.Seed);
  if (!WarmRec.Ok)
    return fail("record-error: warm: " + WarmRec.Error);
  if (WarmRec.StateHash != ColdRec.StateHash)
    return fail("state-divergence: cold=" + hex(ColdRec.StateHash) +
                " warm=" + hex(WarmRec.StateHash));
  if (replay::encodeLog(WarmRec.Log) != replay::encodeLog(ColdRec.Log))
    return fail("log-divergence: cold/warm logs differ");

  // Round-trip the cache image through serialize/load — the decoded
  // plan must still drive a bit-identical pipeline.
  service::ArtifactCache Reloaded;
  auto Loaded = Reloaded.loadBytes(Cache.serialize());
  if (!Loaded)
    return fail("cache-roundtrip: " + Loaded.error().message());
  core::PipelineConfig Cfg2 = Case.Config;
  Cfg2.Artifacts = &Reloaded;
  auto FromDisk = makePipeline(Case, Cfg2);
  if (!FromDisk)
    return fail("build: reloaded: " + FromDisk.error().message());
  uint64_t DiskPlan = instrument::planFingerprint((*FromDisk)->plan());
  if (DiskPlan != ColdPlan)
    return fail("plan-divergence: cold=" + hex(ColdPlan) +
                " reloaded=" + hex(DiskPlan));
  return pass(ColdRec.StateHash);
}

TrialResult oracleObsInert(const TrialCase &Case) {
  core::PipelineConfig Off = Case.Config;
  Off.Observability = obs::ObsMode::Off;
  auto POff = makePipeline(Case, Off);
  if (!POff)
    return fail("build: obs-off: " + POff.error().message());
  auto ROff = (*POff)->record(Case.Seed);
  if (!ROff.Ok)
    return fail("record-error: obs-off: " + ROff.Error);

  auto POn = makePipeline(Case, Case.Config);
  if (!POn)
    return fail("build: obs-on: " + POn.error().message());
  auto ROn = (*POn)->record(Case.Seed);
  if (!ROn.Ok)
    return fail("record-error: obs-on: " + ROn.Error);

  if (ROn.StateHash != ROff.StateHash)
    return fail("state-divergence: obs-off=" + hex(ROff.StateHash) +
                " obs-on=" + hex(ROn.StateHash));
  if (ROn.Output != ROff.Output)
    return fail("output-divergence: observability changed program output");
  if (replay::encodeLog(ROn.Log) != replay::encodeLog(ROff.Log))
    return fail("log-divergence: observability changed the recorded log");
  return pass(ROff.StateHash);
}

TrialResult oracleLogFault(const TrialCase &Case) {
  auto P = makePipeline(Case, Case.Config);
  if (!P)
    return fail("build: " + P.error().message());
  auto Rec = recordStreamedBytes(**P, Case.Seed);
  if (Rec.Err)
    return fail("record-error: " + Rec.Err.message());
  std::vector<uint8_t> Good = replay::encodeLog(Rec.Result.Log);

  std::vector<uint8_t> Damaged = Rec.Bytes;
  applyFault(Damaged, Case.Fault);

  auto Reader =
      replay::LogReader::open(Damaged, replay::LogReader::Options());
  if (!Reader)
    return pass(Rec.Result.StateHash); // Refusing a bad header is correct.
  auto Recovered = Reader->recover();
  if (Recovered.Complete &&
      replay::encodeLog(Recovered.Log) != Good)
    return fail("silent-corruption: recovery reported Complete but the "
                "recovered log differs from the recording");

  // Sequential replay of whatever prefix survived must agree with
  // parallel replay of the same damaged image — including whether it
  // errors at all.
  auto Seq = (*P)->replay(Recovered.Log);
  auto ParReader =
      replay::LogReader::open(Damaged, replay::LogReader::Options());
  if (!ParReader)
    return fail("fault-open-disagreement: sequential open succeeded but "
                "parallel open failed: " + ParReader.error().message());
  auto Par = (*P)->replayParallel(*ParReader, Case.Config.ReplayJobs);
  if (Par.Exec.Ok != Seq.Ok)
    return fail(std::string("fault-divergence: sequential ") +
                (Seq.Ok ? "succeeded" : "failed") + " but parallel " +
                (Par.Exec.Ok ? "succeeded" : "failed"));
  if (Seq.Ok && Par.Exec.StateHash != Seq.StateHash)
    return fail("state-divergence: damaged-log sequential=" +
                hex(Seq.StateHash) + " parallel=" + hex(Par.Exec.StateHash));
  if (replay::encodeLog(Par.Log) != replay::encodeLog(Recovered.Log))
    return fail("log-divergence: damaged-log parallel merge differs from "
                "sequential recovery");
  return pass(Rec.Result.StateHash);
}

TrialResult oracleCacheFault(const TrialCase &Case) {
  service::ArtifactCache Cache;
  core::PipelineConfig Cfg = Case.Config;
  Cfg.Artifacts = &Cache;
  auto Ref = makePipeline(Case, Cfg);
  if (!Ref)
    return fail("build: " + Ref.error().message());
  uint64_t RefPlan = instrument::planFingerprint((*Ref)->plan());
  auto RefRec = (*Ref)->record(Case.Seed);
  if (!RefRec.Ok)
    return fail("record-error: " + RefRec.Error);

  std::vector<uint8_t> Image = Cache.serialize();
  applyFault(Image, Case.Fault);

  // Damage may drop entries or fail the whole load; either way nothing
  // damaged may surface downstream.
  service::ArtifactCache Damaged;
  (void)Damaged.loadBytes(Image);

  core::PipelineConfig Cfg2 = Case.Config;
  Cfg2.Artifacts = &Damaged;
  auto P2 = makePipeline(Case, Cfg2);
  if (!P2)
    return fail("build: damaged-cache: " + P2.error().message());
  uint64_t Plan2 = instrument::planFingerprint((*P2)->plan());
  if (Plan2 != RefPlan)
    return fail("plan-divergence: clean=" + hex(RefPlan) +
                " damaged-cache=" + hex(Plan2));
  auto Rec2 = (*P2)->record(Case.Seed);
  if (!Rec2.Ok)
    return fail("record-error: damaged-cache: " + Rec2.Error);
  if (Rec2.StateHash != RefRec.StateHash)
    return fail("state-divergence: clean=" + hex(RefRec.StateHash) +
                " damaged-cache=" + hex(Rec2.StateHash));
  return pass(RefRec.StateHash);
}

TrialResult oracleBatchInvariance(const TrialCase &Case) {
  auto P1 = makePipeline(Case, Case.Config);
  if (!P1)
    return fail("build: " + P1.error().message());
  auto R1 = (*P1)->record(Case.Seed);
  if (!R1.Ok)
    return fail("record-error: " + R1.Error);

  core::PipelineConfig Alt = Case.Config;
  Alt.DispatchBatch = Case.AltDispatchBatch;
  Alt.AnalysisJobs = Case.Config.AnalysisJobs == 1 ? 2 : 1;
  auto P2 = makePipeline(Case, Alt);
  if (!P2)
    return fail("build: alt-batch: " + P2.error().message());
  auto R2 = (*P2)->record(Case.Seed);
  if (!R2.Ok)
    return fail("record-error: alt-batch: " + R2.Error);

  if (R1.StateHash != R2.StateHash)
    return fail("state-divergence: batch=" +
                std::to_string(Case.Config.DispatchBatch) + " hash=" +
                hex(R1.StateHash) + " batch=" +
                std::to_string(Case.AltDispatchBatch) + " hash=" +
                hex(R2.StateHash));
  if (R1.Output != R2.Output)
    return fail("output-divergence: DispatchBatch changed program output");
  if (replay::encodeLog(R1.Log) != replay::encodeLog(R2.Log))
    return fail("log-divergence: DispatchBatch changed the recorded log");
  return pass(R1.StateHash);
}

TrialResult oracleReplayPerturbed(const TrialCase &Case) {
  auto P1 = makePipeline(Case, Case.Config);
  if (!P1)
    return fail("build: " + P1.error().message());
  auto Rec = (*P1)->record(Case.Seed);
  if (!Rec.Ok)
    return fail("record-error: " + Rec.Error);

  core::PipelineConfig Alt = Case.Config;
  Alt.QuantumMin = Case.AltQuantumMin;
  Alt.QuantumMax = Case.AltQuantumMax;
  Alt.DispatchBatch = Case.AltDispatchBatch;
  auto P2 = makePipeline(Case, Alt);
  if (!P2)
    return fail("build: perturbed: " + P2.error().message());
  auto Rep = (*P2)->replay(Rec.Log);
  if (!Rep.Ok)
    return fail("replay-error: perturbed: " + Rep.Error);
  if (Rep.StateHash != Rec.StateHash)
    return fail("state-divergence: recorded=" + hex(Rec.StateHash) +
                " perturbed-replay=" + hex(Rep.StateHash));
  if (Rep.Output != Rec.Output)
    return fail("output-divergence: perturbed replay changed output");
  return pass(Rec.StateHash);
}

} // namespace

TrialResult stress::runTrial(const TrialCase &Case) {
  if (auto Err = Case.Config.validate(); Err)
    return fail("config: " + Err.message());
  switch (Case.Oracle) {
  case OracleKind::RecordReplay:
    return oracleRecordReplay(Case);
  case OracleKind::StreamedLog:
    return oracleStreamedLog(Case);
  case OracleKind::ParallelReplay:
    return oracleParallelReplay(Case);
  case OracleKind::PollElision:
    return oraclePollElision(Case);
  case OracleKind::CacheWarmCold:
    return oracleCacheWarmCold(Case);
  case OracleKind::ObsInert:
    return oracleObsInert(Case);
  case OracleKind::LogFault:
    return oracleLogFault(Case);
  case OracleKind::CacheFault:
    return oracleCacheFault(Case);
  case OracleKind::BatchInvariance:
    return oracleBatchInvariance(Case);
  case OracleKind::ReplayPerturbed:
    return oracleReplayPerturbed(Case);
  }
  return fail("oracle: unknown oracle kind");
}
