//===- stress/Minimizer.cpp - Delta-debugging shrinker ---------------------===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "stress/Stress.h"

using namespace chimera;
using namespace chimera::stress;

namespace {

/// One shrink step: mutate the case toward something simpler, or
/// return false when the case is already at this step's floor (so the
/// candidate would be identical and running it is pointless).
using Step = bool (*)(TrialCase &);

bool shrinkSource(TrialCase &C) {
  auto Smallest = miniSource(miniSourceNames().front());
  if (!Smallest || C.Source == *Smallest)
    return false;
  C.SourceName = miniSourceNames().front();
  C.Source = *Smallest;
  C.Profile.clear();
  C.Config.Name = C.SourceName;
  return true;
}

bool shrinkSeed(TrialCase &C) {
  if (C.Seed == 1)
    return false;
  C.Seed = 1;
  return true;
}

bool shrinkCoresTo1(TrialCase &C) {
  if (C.Config.NumCores == 1)
    return false;
  C.Config.NumCores = 1;
  return true;
}

bool shrinkCoresTo2(TrialCase &C) {
  if (C.Config.NumCores <= 2)
    return false;
  C.Config.NumCores = 2;
  return true;
}

bool shrinkProfile(TrialCase &C) {
  if (C.Config.ProfileRuns == 2 && C.Config.ProfileCores == 2)
    return false;
  C.Config.ProfileRuns = 2;
  C.Config.ProfileCores = 2;
  return true;
}

bool shrinkJobs(TrialCase &C) {
  if (C.Config.AnalysisJobs == 1 && C.Config.UseSummaryCache)
    return false;
  C.Config.AnalysisJobs = 1;
  C.Config.UseSummaryCache = true;
  return true;
}

bool shrinkMhp(TrialCase &C) {
  if (C.Config.Mhp == analysis::MhpMode::Barrier)
    return false;
  C.Config.Mhp = analysis::MhpMode::Barrier;
  return true;
}

bool shrinkLockOrder(TrialCase &C) {
  // PollElision is vacuous without certification; its floor is Audit.
  analysis::LockOrderMode Floor = C.Oracle == OracleKind::PollElision
                                      ? analysis::LockOrderMode::Audit
                                      : analysis::LockOrderMode::Off;
  if (C.Config.LockOrder == Floor)
    return false;
  C.Config.LockOrder = Floor;
  return true;
}

bool shrinkTimeout(TrialCase &C) {
  if (C.Config.WeakLockTimeout == 500'000'000)
    return false;
  C.Config.WeakLockTimeout = 500'000'000;
  return true;
}

bool shrinkQuantum(TrialCase &C) {
  if (C.Config.QuantumMin == 3000 && C.Config.QuantumMax == 9000)
    return false;
  C.Config.QuantumMin = 3000;
  C.Config.QuantumMax = 9000;
  return true;
}

bool shrinkDispatch(TrialCase &C) {
  if (C.Config.DispatchBatch == 64)
    return false;
  C.Config.DispatchBatch = 64;
  return true;
}

bool shrinkSegments(TrialCase &C) {
  if (C.Config.SegmentBytes == 64 * 1024)
    return false;
  C.Config.SegmentBytes = 64 * 1024;
  return true;
}

bool shrinkCheckpoints(TrialCase &C) {
  if (C.Config.CheckpointEvery == 4096)
    return false;
  C.Config.CheckpointEvery = 4096;
  return true;
}

/// ParallelReplay with one job degenerates to the sequential path;
/// keep two so the oracle still exercises epoch stitching.
unsigned replayJobsFloor(const TrialCase &C) {
  return C.Oracle == OracleKind::ParallelReplay ? 2 : 1;
}

bool shrinkReplayJobs(TrialCase &C) {
  unsigned Floor = replayJobsFloor(C);
  if (C.Config.ReplayJobs <= Floor)
    return false;
  C.Config.ReplayJobs = Floor;
  return true;
}

bool shrinkReplayJobsHalve(TrialCase &C) {
  // Fallback when the floor jump is rejected (the failure needs some
  // parallelism): halve the distance to the floor each round, so the
  // fixpoint loop descends to the smallest job count that still fails.
  unsigned Floor = replayJobsFloor(C);
  if (C.Config.ReplayJobs <= Floor + 1)
    return false;
  C.Config.ReplayJobs = Floor + (C.Config.ReplayJobs - Floor) / 2;
  return true;
}

bool shrinkObs(TrialCase &C) {
  obs::ObsMode Floor = C.Oracle == OracleKind::ObsInert
                           ? obs::ObsMode::Sampled
                           : obs::ObsMode::Off;
  if (C.Config.Observability == Floor ||
      (C.Oracle == OracleKind::ObsInert &&
       C.Config.Observability == obs::ObsMode::Sampled))
    return false;
  C.Config.Observability = Floor;
  return true;
}

bool shrinkAlt(TrialCase &C) {
  if (C.AltDispatchBatch == 1 && C.AltQuantumMin == 1 &&
      C.AltQuantumMax == 1)
    return false;
  C.AltDispatchBatch = 1;
  C.AltQuantumMin = 1;
  C.AltQuantumMax = 1;
  return true;
}

bool shrinkFaultOffset(TrialCase &C) {
  // Halve toward zero; the fixpoint loop turns this into a full
  // logarithmic descent to the smallest offset that still fails.
  if (C.Fault.K == FaultSpec::Kind::None || C.Fault.Offset == 0)
    return false;
  C.Fault.Offset /= 2;
  return true;
}

const Step Steps[] = {
    shrinkSource,    shrinkSeed,        shrinkCoresTo1,  shrinkCoresTo2,
    shrinkProfile,   shrinkJobs,        shrinkMhp,       shrinkLockOrder,
    shrinkTimeout,   shrinkQuantum,     shrinkDispatch,  shrinkSegments,
    shrinkCheckpoints, shrinkReplayJobs, shrinkReplayJobsHalve,
    shrinkObs,       shrinkAlt,         shrinkFaultOffset,
};

} // namespace

TrialCase Minimizer::minimize(TrialCase Case, const Predicate &StillFails,
                              Stats *S) const {
  Stats Local;
  Stats &St = S ? *S : Local;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++St.Rounds;
    for (Step Shrink : Steps) {
      TrialCase Candidate = Case;
      if (!Shrink(Candidate))
        continue;
      ++St.Tried;
      if (StillFails(Candidate)) {
        Case = std::move(Candidate);
        ++St.Adopted;
        Changed = true;
      }
    }
  }
  return Case;
}

Minimizer::Predicate
stress::sameFailurePredicate(const TrialResult &Original) {
  std::string Class = failureClass(Original.Failure);
  return [Class](const TrialCase &Candidate) {
    TrialResult R = runTrial(Candidate);
    return !R.Passed && failureClass(R.Failure) == Class;
  };
}
