//===- race/Lockset.h - Locksets for static race detection ------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lockset is the set of mutexes known (must-analysis) to be held at a
/// program point (paper §3.1). Represented as a small sorted vector of
/// mutex sync-object ids.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_RACE_LOCKSET_H
#define CHIMERA_RACE_LOCKSET_H

#include <cstdint>
#include <string>
#include <vector>

namespace chimera {
namespace race {

class Lockset {
public:
  Lockset() = default;
  explicit Lockset(std::vector<uint32_t> Ids);

  /// The "all locks" top element of the must-held lattice (used to seed
  /// the intersection-based dataflow).
  static Lockset top();
  bool isTop() const { return Top; }

  void insert(uint32_t MutexId);
  void erase(uint32_t MutexId);
  bool contains(uint32_t MutexId) const;
  bool empty() const { return !Top && Ids.empty(); }
  size_t size() const { return Ids.size(); }

  /// Lattice meet for must-analysis.
  static Lockset intersect(const Lockset &A, const Lockset &B);
  /// Set union (lifting callee-relative locksets into a caller context).
  static Lockset unite(const Lockset &A, const Lockset &B);
  /// Set difference (A minus B).
  static Lockset subtract(const Lockset &A, const Lockset &B);
  /// True when the sets share no lock — the racy condition.
  static bool disjoint(const Lockset &A, const Lockset &B);

  bool operator==(const Lockset &O) const {
    return Top == O.Top && Ids == O.Ids;
  }

  const std::vector<uint32_t> &ids() const { return Ids; }
  std::string str() const;

private:
  bool Top = false;
  std::vector<uint32_t> Ids; ///< Sorted, unique.
};

} // namespace race
} // namespace chimera

#endif // CHIMERA_RACE_LOCKSET_H
