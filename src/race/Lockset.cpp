//===- race/Lockset.cpp - Locksets for static race detection ---------------===//

#include "race/Lockset.h"

#include <algorithm>
#include <cassert>

using namespace chimera;
using namespace chimera::race;

Lockset::Lockset(std::vector<uint32_t> Ids) : Ids(std::move(Ids)) {
  std::sort(this->Ids.begin(), this->Ids.end());
  this->Ids.erase(std::unique(this->Ids.begin(), this->Ids.end()),
                  this->Ids.end());
}

Lockset Lockset::top() {
  Lockset L;
  L.Top = true;
  return L;
}

void Lockset::insert(uint32_t MutexId) {
  assert(!Top && "inserting into the top lockset");
  auto It = std::lower_bound(Ids.begin(), Ids.end(), MutexId);
  if (It == Ids.end() || *It != MutexId)
    Ids.insert(It, MutexId);
}

void Lockset::erase(uint32_t MutexId) {
  assert(!Top && "erasing from the top lockset");
  auto It = std::lower_bound(Ids.begin(), Ids.end(), MutexId);
  if (It != Ids.end() && *It == MutexId)
    Ids.erase(It);
}

bool Lockset::contains(uint32_t MutexId) const {
  if (Top)
    return true;
  return std::binary_search(Ids.begin(), Ids.end(), MutexId);
}

Lockset Lockset::intersect(const Lockset &A, const Lockset &B) {
  if (A.Top)
    return B;
  if (B.Top)
    return A;
  Lockset Out;
  std::set_intersection(A.Ids.begin(), A.Ids.end(), B.Ids.begin(),
                        B.Ids.end(), std::back_inserter(Out.Ids));
  return Out;
}

Lockset Lockset::unite(const Lockset &A, const Lockset &B) {
  if (A.Top || B.Top)
    return top();
  Lockset Out;
  std::set_union(A.Ids.begin(), A.Ids.end(), B.Ids.begin(), B.Ids.end(),
                 std::back_inserter(Out.Ids));
  return Out;
}

Lockset Lockset::subtract(const Lockset &A, const Lockset &B) {
  assert(!A.Top && "subtracting from the top lockset");
  if (B.Top)
    return Lockset();
  Lockset Out;
  std::set_difference(A.Ids.begin(), A.Ids.end(), B.Ids.begin(),
                      B.Ids.end(), std::back_inserter(Out.Ids));
  return Out;
}

bool Lockset::disjoint(const Lockset &A, const Lockset &B) {
  if (A.Top)
    return B.empty();
  if (B.Top)
    return A.empty();
  auto AI = A.Ids.begin();
  auto BI = B.Ids.begin();
  while (AI != A.Ids.end() && BI != B.Ids.end()) {
    if (*AI == *BI)
      return false;
    if (*AI < *BI)
      ++AI;
    else
      ++BI;
  }
  return true;
}

std::string Lockset::str() const {
  if (Top)
    return "{T}";
  std::string Out = "{";
  for (size_t I = 0; I != Ids.size(); ++I) {
    if (I)
      Out += ",";
    Out += std::to_string(Ids[I]);
  }
  return Out + "}";
}
