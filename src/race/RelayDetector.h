//===- race/RelayDetector.h - Sound static race detection -------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Our port of RELAY (Voung/Jhala/Lerner; paper §3): a sound,
/// lockset-based static data-race detector. It composes relative-lockset
/// function summaries bottom-up over the call graph, then reports a race
/// for every pair of accesses from concurrently-runnable thread roots
/// that may touch a common escaping object with disjoint locksets and at
/// least one write.
///
/// Faithfully imprecise where RELAY is imprecise:
///  - non-mutex synchronization (barriers, fork/join, condition
///    variables) contributes no happens-before, so phase-separated or
///    init-vs-worker accesses are reported as (false) races — the target
///    of the paper's profiling optimization (§4);
///  - points-to is field-insensitive, so partitioned arrays alias — the
///    target of the symbolic-bounds optimization (§5).
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_RACE_RELAYDETECTOR_H
#define CHIMERA_RACE_RELAYDETECTOR_H

#include "analysis/CallGraph.h"
#include "analysis/Escape.h"
#include "analysis/MayHappenInParallel.h"
#include "analysis/PointsTo.h"
#include "race/Summary.h"
#include "support/Metrics.h"

#include <string>
#include <vector>

namespace chimera {

namespace support {
class ThreadPool;
} // namespace support

namespace race {

class SummaryCache;

/// One static racy instruction (half of a race pair).
struct RacyAccess {
  uint32_t FuncId = 0;
  ir::InstId Ident = 0;
  bool IsWrite = false;
};

/// A pair of static memory instructions that may race (paper §2.1).
struct RacePair {
  RacyAccess A;
  RacyAccess B;
  std::vector<uint32_t> Objects; ///< Common object ids, sorted.

  /// Canonical dedup key (unordered pair of instruction identities).
  uint64_t key() const;
};

/// A candidate pair the MHP filter removed, with the ordering proof kind.
struct PrunedRace {
  RacePair Pair;
  analysis::MhpOrdering Reason = analysis::MhpOrdering::MayRace;
};

/// Precision accounting for the MHP filter (ISSUE 3): how many candidate
/// pairs existed before pruning and why each removed pair is ordered.
struct MhpStats {
  analysis::MhpMode Mode = analysis::MhpMode::Off;
  uint64_t PairsBefore = 0;
  uint64_t PrunedForkJoin = 0;
  uint64_t PrunedBarrier = 0;

  uint64_t pruned() const { return PrunedForkJoin + PrunedBarrier; }
  uint64_t pairsAfter() const { return PairsBefore - pruned(); }
};

struct RaceReport {
  std::vector<RacePair> Pairs;
  /// Pairs removed by the MHP filter, sorted by key. A pair appears here
  /// only if *no* root context keeps it racy.
  std::vector<PrunedRace> PrunedPairs;
  MhpStats Mhp;

  /// All distinct racy instructions.
  std::vector<RacyAccess> racyInstructions() const;
  /// All unordered racy-function pairs (paper §2.1 racy-function-pair).
  std::vector<std::pair<uint32_t, uint32_t>> racyFunctionPairs() const;

  std::string str(const ir::Module &M) const;

  /// Publishes the MHP precision counters into \p Scope as gauges
  /// ("pairs_before", "pruned_forkjoin", "pruned_barrier", "pairs_after",
  /// "pruned_listed" = PrunedPairs.size()). A null-registry scope is a
  /// no-op. This is the only read path for MHP stats; the CLI's
  /// --race-stats renders from a registry snapshot.
  void publishTo(const obs::Scope &Scope) const;
};

class RelayDetector {
public:
  /// \p Pool, when given, parallelizes summary composition across
  /// call-independent SCCs (same level of the SCC DAG); results are
  /// bit-identical to the serial order because each task writes only its
  /// own functions' summary slots. \p Cache, when given, skips the
  /// dataflow for any (module, function, callee-summaries) content hash
  /// seen before. \p Mhp, when given and not Off, filters candidate race
  /// pairs whose accesses are provably ordered; pruned pairs are kept in
  /// RaceReport::PrunedPairs for auditing.
  RelayDetector(const ir::Module &M, const analysis::CallGraph &CG,
                const analysis::PointsTo &PT,
                const analysis::EscapeAnalysis &Escape,
                support::ThreadPool *Pool = nullptr,
                SummaryCache *Cache = nullptr,
                const analysis::MayHappenInParallel *Mhp = nullptr);

  /// Runs the full analysis.
  RaceReport detect();

  /// The per-function summaries (exposed for tests and diagnostics).
  const std::vector<FunctionSummary> &summaries() const { return Summaries; }

private:
  FunctionSummary summarizeFunction(uint32_t FuncId);
  void computeScc(const std::vector<uint32_t> &Scc);
  void computeSummaries();
  uint64_t summaryKey(uint32_t FuncId) const;

  const ir::Module &M;
  const analysis::CallGraph &CG;
  const analysis::PointsTo &PT;
  const analysis::EscapeAnalysis &Escape;
  support::ThreadPool *Pool = nullptr;
  SummaryCache *Cache = nullptr;
  const analysis::MayHappenInParallel *Mhp = nullptr;
  uint64_t ModuleHash = 0; ///< Content hash anchoring cache keys.
  std::vector<FunctionSummary> Summaries;
};

} // namespace race
} // namespace chimera

#endif // CHIMERA_RACE_RELAYDETECTOR_H
