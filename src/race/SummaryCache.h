//===- race/SummaryCache.h - Content-keyed summary cache --------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide, thread-safe cache of RELAY function summaries keyed
/// by content hash: module content x function id x the fingerprints of
/// the callee summaries the composition consumed. Bench sweeps and
/// ablation studies rebuild the same pipeline many times over identical
/// source; with the cache, every rebuild after the first skips the
/// lockset dataflow entirely. Keys include callee fingerprints, so
/// intermediate (pre-fixpoint) SCC iterations never alias converged
/// results.
///
/// The cache only ever stores values that are a pure function of the
/// key, so a lookup hit is byte-identical to recomputation — parallel
/// determinism is unaffected.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_RACE_SUMMARYCACHE_H
#define CHIMERA_RACE_SUMMARYCACHE_H

#include "race/Summary.h"
#include "support/Metrics.h"

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <unordered_map>

namespace chimera {
namespace race {

class SummaryCache {
public:
  /// Size cap for the cache. When an insert would exceed it, the
  /// oldest entries are evicted (FIFO). Eviction only costs a future
  /// recomputation — cached values are a pure function of the key — so
  /// the process-wide instance stays bounded across arbitrarily long
  /// bench sweeps over distinct modules.
  static constexpr size_t MaxEntries = 1 << 16;

  /// The shared process-wide instance the pipeline uses by default.
  static SummaryCache &global();

  /// Copies the cached summary into \p Out and returns true on a hit.
  bool lookup(uint64_t Key, FunctionSummary &Out) const;

  /// Stores \p Summary under \p Key (first writer wins), evicting the
  /// oldest entries once the cache holds MaxEntries.
  void insert(uint64_t Key, const FunctionSummary &Summary);

  void clear();

  /// Calls \p Fn for every cached (key, summary) pair under the cache
  /// lock (\p Fn must not reenter the cache). Iteration order is
  /// unspecified — persistence layers that need a canonical order sort
  /// on their side (service::ArtifactCache keys entries in a sorted
  /// map, so the exported image is deterministic regardless).
  void forEach(
      const std::function<void(uint64_t, const FunctionSummary &)> &Fn) const;

  /// Publishes the cache counters into \p Scope as gauges ("hits",
  /// "misses", "entries", "evictions") — gauges because the cache is
  /// process-global and the numbers are states, not per-run deltas. A
  /// null-registry scope is a no-op. This is the only read path (the
  /// deprecated stats() accessor is gone).
  void publishTo(const obs::Scope &Scope) const;

private:
  mutable std::mutex Mu;
  std::unordered_map<uint64_t, FunctionSummary> Map;
  std::deque<uint64_t> Order; ///< Insertion order, for FIFO eviction.
  mutable uint64_t Hits = 0;
  mutable uint64_t Misses = 0;
  uint64_t Evictions = 0;
};

} // namespace race
} // namespace chimera

#endif // CHIMERA_RACE_SUMMARYCACHE_H
