//===- race/SummaryCache.cpp - Content-keyed summary cache -----------------===//

#include "race/SummaryCache.h"

using namespace chimera;
using namespace chimera::race;

SummaryCache &SummaryCache::global() {
  static SummaryCache Cache;
  return Cache;
}

bool SummaryCache::lookup(uint64_t Key, FunctionSummary &Out) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Map.find(Key);
  if (It == Map.end()) {
    ++Misses;
    return false;
  }
  ++Hits;
  Out = It->second;
  return true;
}

void SummaryCache::insert(uint64_t Key, const FunctionSummary &Summary) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (!Map.emplace(Key, Summary).second)
    return; // First writer wins; Key is already in Order.
  Order.push_back(Key);
  while (Map.size() > MaxEntries) {
    Map.erase(Order.front());
    Order.pop_front();
    ++Evictions;
  }
}

void SummaryCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Map.clear();
  Order.clear();
  Hits = Misses = Evictions = 0;
}

void SummaryCache::forEach(
    const std::function<void(uint64_t, const FunctionSummary &)> &Fn) const {
  std::lock_guard<std::mutex> Lock(Mu);
  for (const auto &[Key, Summary] : Map)
    Fn(Key, Summary);
}

void SummaryCache::publishTo(const obs::Scope &Scope) const {
  if (!Scope)
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  Scope.gauge("hits").set(static_cast<int64_t>(Hits));
  Scope.gauge("misses").set(static_cast<int64_t>(Misses));
  Scope.gauge("entries").set(static_cast<int64_t>(Map.size()));
  Scope.gauge("evictions").set(static_cast<int64_t>(Evictions));
}

