//===- race/SummaryCache.cpp - Content-keyed summary cache -----------------===//

#include "race/SummaryCache.h"

using namespace chimera;
using namespace chimera::race;

SummaryCache &SummaryCache::global() {
  static SummaryCache Cache;
  return Cache;
}

bool SummaryCache::lookup(uint64_t Key, FunctionSummary &Out) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Map.find(Key);
  if (It == Map.end()) {
    ++Misses;
    return false;
  }
  ++Hits;
  Out = It->second;
  return true;
}

void SummaryCache::insert(uint64_t Key, const FunctionSummary &Summary) {
  std::lock_guard<std::mutex> Lock(Mu);
  Map.emplace(Key, Summary);
}

void SummaryCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Map.clear();
  Hits = Misses = 0;
}

SummaryCache::Stats SummaryCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return {Hits, Misses, static_cast<uint64_t>(Map.size())};
}
