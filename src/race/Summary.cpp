//===- race/Summary.cpp - RELAY-style function summaries -------------------===//

#include "race/Summary.h"

#include "support/Hash.h"

using namespace chimera;
using namespace chimera::race;

uint64_t FunctionSummary::accessFingerprint() const {
  Hasher H;
  for (const AccessRecord &A : Accesses) {
    H.addWord((static_cast<uint64_t>(A.FuncId) << 32) | A.Ident);
    H.addWord(A.IsWrite);
    for (uint32_t Obj : A.Objects)
      H.addWord(Obj);
    H.addWord(0x0b57ac1e);
    for (uint32_t L : A.Held.ids())
      H.addWord(L);
    H.addWord(0xf00d);
  }
  return H.digest();
}

uint64_t FunctionSummary::fingerprint() const {
  Hasher H;
  for (uint32_t L : NetAcquired.ids())
    H.addWord(L);
  H.addWord(0xacc0);
  for (uint32_t L : MayReleased.ids())
    H.addWord(L);
  H.addWord(0x5e1ea5e);
  H.addWord(accessFingerprint());
  return H.digest();
}
