//===- race/DynamicDetector.cpp - Happens-before race oracle ---------------===//

#include "race/DynamicDetector.h"

using namespace chimera;
using namespace chimera::race;
using namespace chimera::rt;

std::string DynamicRace::str() const {
  return "race @" + std::to_string(Addr) + ": t" + std::to_string(TidA) +
         (WriteA ? " write" : " read") + " (f" + std::to_string(FuncA) +
         "#" + std::to_string(InstA) + ") vs t" + std::to_string(TidB) +
         (WriteB ? " write" : " read") + " (f" + std::to_string(FuncB) +
         "#" + std::to_string(InstB) + ")";
}

VectorClock &DynamicDetector::threadClock(uint32_t Tid) {
  if (Tid >= ThreadClocks.size()) {
    ThreadClocks.resize(Tid + 1);
    FinalClocks.resize(Tid + 1);
  }
  return ThreadClocks[Tid];
}

void DynamicDetector::onThreadStart(uint32_t Tid, uint32_t ParentTid,
                                    uint32_t, uint64_t) {
  VectorClock &Child = threadClock(Tid);
  if (ParentTid != Tid) {
    VectorClock &Parent = threadClock(ParentTid);
    Child.join(Parent);
    Parent.tick(ParentTid);
  }
  Child.tick(Tid);
}

void DynamicDetector::onThreadFinish(uint32_t Tid, uint64_t) {
  threadClock(Tid); // Ensure sized.
  FinalClocks[Tid] = ThreadClocks[Tid];
}

void DynamicDetector::onJoin(uint32_t ParentTid, uint32_t ChildTid,
                             uint64_t) {
  threadClock(ChildTid);
  threadClock(ParentTid).join(FinalClocks[ChildTid]);
}

void DynamicDetector::reportRace(const AccessInfo &Prev, uint32_t Tid,
                                 bool PrevWrite, bool IsWrite, uint64_t Addr,
                                 uint32_t FuncId, ir::InstId Ident) {
  ++NumRaces;
  if (Races.size() >= MaxRaces)
    return;
  DynamicRace R;
  R.Addr = Addr;
  R.TidA = Prev.Tid;
  R.TidB = Tid;
  R.WriteA = PrevWrite;
  R.WriteB = IsWrite;
  R.FuncA = Prev.FuncId;
  R.FuncB = FuncId;
  R.InstA = Prev.Ident;
  R.InstB = Ident;
  Races.push_back(R);
}

void DynamicDetector::onMemoryAccess(uint32_t Tid, uint64_t Addr,
                                     bool IsWrite, uint32_t FuncId,
                                     ir::InstId Ident, uint64_t) {
  VectorClock &VC = threadClock(Tid);
  AddrHistory &H = Addresses[Addr];
  uint64_t MyClock = VC.get(Tid);

  // Previous write must happen-before this access.
  if (H.LastWrite.Clock != 0 && H.LastWrite.Tid != Tid &&
      !VC.covers({H.LastWrite.Tid, H.LastWrite.Clock}))
    reportRace(H.LastWrite, Tid, /*PrevWrite=*/true, IsWrite, Addr, FuncId,
               Ident);

  if (IsWrite) {
    // All previous reads must happen-before a write.
    for (const AccessInfo &Read : H.Reads)
      if (Read.Tid != Tid && !VC.covers({Read.Tid, Read.Clock}))
        reportRace(Read, Tid, /*PrevWrite=*/false, IsWrite, Addr, FuncId,
                   Ident);
    H.LastWrite = {Tid, MyClock, FuncId, Ident};
    H.Reads.clear();
    return;
  }

  // Record/update this thread's read.
  for (AccessInfo &Read : H.Reads) {
    if (Read.Tid == Tid) {
      Read = {Tid, MyClock, FuncId, Ident};
      return;
    }
  }
  H.Reads.push_back({Tid, MyClock, FuncId, Ident});
}

void DynamicDetector::acquireEdge(uint32_t Tid, const VectorClock &From) {
  threadClock(Tid).join(From);
}

void DynamicDetector::releaseEdge(uint32_t Tid, VectorClock &Into) {
  VectorClock &VC = threadClock(Tid);
  Into.join(VC);
  VC.tick(Tid);
}

void DynamicDetector::onSync(uint32_t Tid, ObservedSync Kind, uint32_t ObjId,
                             uint64_t Aux, uint64_t) {
  switch (Kind) {
  case ObservedSync::MutexLock:
    acquireEdge(Tid, MutexClocks[ObjId]);
    break;
  case ObservedSync::MutexUnlock:
    releaseEdge(Tid, MutexClocks[ObjId]);
    break;
  case ObservedSync::BarrierArrive:
    releaseEdge(Tid, BarrierClocks[(static_cast<uint64_t>(ObjId) << 32) |
                                   Aux]);
    break;
  case ObservedSync::BarrierLeave:
    acquireEdge(Tid, BarrierClocks[(static_cast<uint64_t>(ObjId) << 32) |
                                   Aux]);
    break;
  case ObservedSync::CondWaitBlock:
    // The mutex release is reported separately; waiting itself adds no
    // edge until the wake.
    break;
  case ObservedSync::CondWaitWake:
    acquireEdge(Tid, CondClocks[ObjId]);
    break;
  case ObservedSync::CondSignal:
  case ObservedSync::CondBroadcast:
    releaseEdge(Tid, CondClocks[ObjId]);
    break;
  case ObservedSync::WeakAcquire:
  case ObservedSync::WeakRelease:
    // Delivered via onWeak with range information.
    break;
  }
}

void DynamicDetector::onWeak(uint32_t Tid, bool IsAcquire, uint32_t LockId,
                             bool HasRange, uint64_t Lo, uint64_t Hi,
                             uint64_t) {
  std::vector<RangedRelease> &Releases = WeakClocks[LockId];

  if (IsAcquire) {
    // Join the release clocks of every conflicting prior critical
    // section. Unranged acquisitions conflict with everything.
    for (const RangedRelease &R : Releases) {
      bool Overlaps = !HasRange || !R.HasRange ||
                      (R.Lo <= Hi && Lo <= R.Hi);
      if (Overlaps)
        acquireEdge(Tid, R.Clock);
    }
    return;
  }

  // Release: fold into an existing identical interval or append.
  for (RangedRelease &R : Releases) {
    if (R.HasRange == HasRange && R.Lo == Lo && R.Hi == Hi) {
      releaseEdge(Tid, R.Clock);
      return;
    }
  }
  RangedRelease New;
  New.HasRange = HasRange;
  New.Lo = Lo;
  New.Hi = Hi;
  releaseEdge(Tid, New.Clock);
  Releases.push_back(std::move(New));
}
