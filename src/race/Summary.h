//===- race/Summary.h - RELAY-style function summaries ----------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RELAY (paper §3.1) computes, bottom-up over the call graph, a summary
/// per function: the function's effect on the caller's lockset and the
/// shared-object accesses it (transitively) performs, each tagged with
/// the *relative* lockset held — locks acquired within the function's
/// own dynamic extent. Plugging a callee summary into a caller adds the
/// caller's current lockset to each access.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_RACE_SUMMARY_H
#define CHIMERA_RACE_SUMMARY_H

#include "race/Lockset.h"

#include "ir/Instruction.h"

#include <cstdint>
#include <vector>

namespace chimera {
namespace race {

/// One (transitive) shared-memory access a function may perform.
struct AccessRecord {
  uint32_t FuncId = 0;     ///< Function containing the instruction.
  ir::InstId Ident = 0;    ///< The Load/Store instruction.
  bool IsWrite = false;
  std::vector<uint32_t> Objects; ///< Abstract object ids, sorted.
  Lockset Held;            ///< Relative must-held lockset at the access.
};

/// Summary of a function's lock behavior and accesses.
struct FunctionSummary {
  /// Locks the function is guaranteed to have acquired (and still hold)
  /// when it returns, beyond its entry lockset.
  Lockset NetAcquired;
  /// Locks the function may release (its caller cannot rely on them
  /// being held across the call).
  Lockset MayReleased;
  /// Own plus lifted-callee accesses, deduplicated per instruction with
  /// locksets intersected over contexts (sound for must-analysis).
  std::vector<AccessRecord> Accesses;

  bool operator==(const FunctionSummary &O) const {
    return NetAcquired == O.NetAcquired && MayReleased == O.MayReleased &&
           accessFingerprint() == O.accessFingerprint();
  }

  /// Cheap structural fingerprint used for fixpoint detection.
  uint64_t accessFingerprint() const;

  /// Fingerprint of the whole summary (lock effects + accesses); the
  /// SummaryCache keys compositions on callee fingerprints, so this must
  /// change whenever any observable part of the summary changes.
  uint64_t fingerprint() const;
};

} // namespace race
} // namespace chimera

#endif // CHIMERA_RACE_SUMMARY_H
