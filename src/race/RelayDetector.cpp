//===- race/RelayDetector.cpp - Sound static race detection ----------------===//

#include "race/RelayDetector.h"

#include "ir/Printer.h"
#include "race/SummaryCache.h"
#include "support/Hash.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

using namespace chimera;
using namespace chimera::race;
using namespace chimera::ir;

uint64_t RacePair::key() const {
  uint64_t KA = (static_cast<uint64_t>(A.FuncId) << 24) | A.Ident;
  uint64_t KB = (static_cast<uint64_t>(B.FuncId) << 24) | B.Ident;
  if (KA > KB)
    std::swap(KA, KB);
  return (KA << 32) | KB;
}

std::vector<RacyAccess> RaceReport::racyInstructions() const {
  std::vector<RacyAccess> Out;
  std::set<std::pair<uint32_t, InstId>> Seen;
  for (const RacePair &P : Pairs) {
    for (const RacyAccess *A : {&P.A, &P.B})
      if (Seen.insert({A->FuncId, A->Ident}).second)
        Out.push_back(*A);
  }
  std::sort(Out.begin(), Out.end(), [](const RacyAccess &X,
                                       const RacyAccess &Y) {
    return std::tie(X.FuncId, X.Ident) < std::tie(Y.FuncId, Y.Ident);
  });
  return Out;
}

std::vector<std::pair<uint32_t, uint32_t>>
RaceReport::racyFunctionPairs() const {
  std::set<std::pair<uint32_t, uint32_t>> Seen;
  for (const RacePair &P : Pairs) {
    uint32_t A = P.A.FuncId, B = P.B.FuncId;
    Seen.insert({std::min(A, B), std::max(A, B)});
  }
  return {Seen.begin(), Seen.end()};
}

std::string RaceReport::str(const Module &M) const {
  std::string Out;
  for (const RacePair &P : Pairs) {
    auto describe = [&](const RacyAccess &A) {
      const Function &F = M.function(A.FuncId);
      const Instruction *Inst = F.findInst(A.Ident);
      std::string S = F.Name + ":" +
                      (Inst ? std::to_string(Inst->Loc.Line) : "?") +
                      (A.IsWrite ? " (write)" : " (read)");
      return S;
    };
    Out += describe(P.A) + " <-> " + describe(P.B) + " on {";
    for (size_t I = 0; I != P.Objects.size(); ++I) {
      if (I)
        Out += ", ";
      Out += "obj" + std::to_string(P.Objects[I]);
    }
    Out += "}\n";
  }
  return Out;
}

void RaceReport::publishTo(const obs::Scope &Scope) const {
  if (!Scope)
    return;
  Scope.gauge("pairs_before").set(static_cast<int64_t>(Mhp.PairsBefore));
  Scope.gauge("pairs_after").set(static_cast<int64_t>(Mhp.pairsAfter()));
  Scope.gauge("pruned_forkjoin").set(static_cast<int64_t>(Mhp.PrunedForkJoin));
  Scope.gauge("pruned_barrier").set(static_cast<int64_t>(Mhp.PrunedBarrier));
  Scope.gauge("pruned_listed").set(static_cast<int64_t>(PrunedPairs.size()));
}

RelayDetector::RelayDetector(const Module &M, const analysis::CallGraph &CG,
                             const analysis::PointsTo &PT,
                             const analysis::EscapeAnalysis &Escape,
                             support::ThreadPool *Pool, SummaryCache *Cache,
                             const analysis::MayHappenInParallel *Mhp)
    : M(M), CG(CG), PT(PT), Escape(Escape), Pool(Pool), Cache(Cache),
      Mhp(Mhp) {}

namespace {

/// Flow state for the must-lockset dataflow: locks acquired since entry
/// and still held, plus entry locks possibly released.
struct LockFlow {
  Lockset RelHeld = Lockset::top(); ///< Top = unvisited.
  Lockset RelReleased;

  static LockFlow meet(const LockFlow &A, const LockFlow &B) {
    LockFlow Out;
    Out.RelHeld = Lockset::intersect(A.RelHeld, B.RelHeld);
    Out.RelReleased = Lockset::unite(A.RelReleased, B.RelReleased);
    return Out;
  }
  bool operator==(const LockFlow &O) const {
    return RelHeld == O.RelHeld && RelReleased == O.RelReleased;
  }
};

} // namespace

FunctionSummary RelayDetector::summarizeFunction(uint32_t FuncId) {
  const Function &Func = M.function(FuncId);
  uint32_t N = Func.numBlocks();

  std::vector<LockFlow> In(N), Out(N);
  In[0].RelHeld = Lockset(); // Entry: nothing acquired yet.

  // Access collection happens on every sweep but only the final sweep's
  // records survive (they are rebuilt each iteration).
  FunctionSummary Summary;

  auto transferBlock = [&](BlockId B, LockFlow Flow,
                           FunctionSummary *Collect) -> LockFlow {
    for (const Instruction &Inst : Func.block(B).Insts) {
      switch (Inst.Op) {
      case Opcode::MutexLock:
        if (Flow.RelReleased.contains(Inst.Id))
          Flow.RelReleased.erase(Inst.Id); // Entry lock reacquired.
        else if (!Flow.RelHeld.isTop())
          Flow.RelHeld.insert(Inst.Id);
        break;
      case Opcode::MutexUnlock:
        if (Flow.RelHeld.contains(Inst.Id) && !Flow.RelHeld.isTop())
          Flow.RelHeld.erase(Inst.Id);
        else
          Flow.RelReleased.insert(Inst.Id);
        if (Collect)
          Collect->MayReleased.insert(Inst.Id);
        break;
      case Opcode::CondWait:
        // Releases and reacquires the mutex: the net lockset is
        // unchanged, but any access that could interleave during the
        // wait is covered because the waiters hold no *other* lock in
        // common — RELAY models wait as lock-neutral too.
        break;
      case Opcode::Call: {
        const FunctionSummary &CS = Summaries[Inst.Id];
        if (!Flow.RelHeld.isTop())
          Flow.RelHeld = Lockset::unite(
              Lockset::subtract(Flow.RelHeld, CS.MayReleased),
              CS.NetAcquired);
        Flow.RelReleased = Lockset::unite(Flow.RelReleased, CS.MayReleased);
        if (Collect) {
          Collect->MayReleased =
              Lockset::unite(Collect->MayReleased, CS.MayReleased);
          // Lift callee accesses: they additionally hold whatever the
          // caller holds at the call site, minus anything the callee
          // might release.
          Lockset CallerHeld =
              Flow.RelHeld.isTop()
                  ? Lockset()
                  : Lockset::subtract(Flow.RelHeld, CS.MayReleased);
          for (const AccessRecord &A : CS.Accesses) {
            AccessRecord Lifted = A;
            Lifted.Held = Lockset::unite(A.Held, CallerHeld);
            Collect->Accesses.push_back(std::move(Lifted));
          }
        }
        break;
      }
      case Opcode::Load:
      case Opcode::Store: {
        if (!Collect)
          break;
        std::vector<uint32_t> Objects = PT.pointsTo(FuncId, Inst.A);
        Objects.erase(std::remove_if(Objects.begin(), Objects.end(),
                                     [&](uint32_t Obj) {
                                       return !Escape.escapes(Obj);
                                     }),
                      Objects.end());
        if (Objects.empty())
          break;
        AccessRecord Rec;
        Rec.FuncId = FuncId;
        Rec.Ident = Inst.Ident;
        Rec.IsWrite = Inst.Op == Opcode::Store;
        Rec.Objects = std::move(Objects);
        Rec.Held = Flow.RelHeld.isTop() ? Lockset() : Flow.RelHeld;
        Collect->Accesses.push_back(std::move(Rec));
        break;
      }
      default:
        break;
      }
    }
    return Flow;
  };

  // Fixpoint on block-entry states.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BlockId B = 0; B != N; ++B) {
      LockFlow NewIn = B == 0 ? In[0] : LockFlow();
      if (B != 0) {
        NewIn.RelHeld = Lockset::top();
        bool AnyPred = false;
        for (BlockId P = 0; P != N; ++P)
          for (BlockId S : Func.successors(P))
            if (S == B) {
              NewIn = LockFlow::meet(NewIn, Out[P]);
              AnyPred = true;
            }
        if (!AnyPred)
          NewIn.RelHeld = Lockset::top(); // Unreachable.
      }
      LockFlow NewOut = transferBlock(B, NewIn, nullptr);
      if (!(NewIn == In[B]) || !(NewOut == Out[B])) {
        In[B] = NewIn;
        Out[B] = NewOut;
        Changed = true;
      }
    }
  }

  // Final sweep: collect accesses and lock effects.
  for (BlockId B = 0; B != N; ++B) {
    if (In[B].RelHeld.isTop() && B != 0)
      continue; // Unreachable block.
    transferBlock(B, In[B], &Summary);
  }

  // Net lock effect: meet over return blocks.
  LockFlow ExitFlow;
  ExitFlow.RelHeld = Lockset::top();
  bool AnyRet = false;
  for (BlockId B = 0; B != N; ++B) {
    const BasicBlock &BB = Func.block(B);
    if (BB.hasTerminator() && BB.terminator().Op == Opcode::Ret &&
        !(In[B].RelHeld.isTop() && B != 0)) {
      ExitFlow = AnyRet ? LockFlow::meet(ExitFlow, Out[B]) : Out[B];
      AnyRet = true;
    }
  }
  Summary.NetAcquired =
      AnyRet && !ExitFlow.RelHeld.isTop() ? ExitFlow.RelHeld : Lockset();

  // Deduplicate accesses per instruction: union objects, intersect
  // locksets (sound across contexts).
  std::map<std::pair<uint32_t, InstId>, AccessRecord> Dedup;
  for (AccessRecord &A : Summary.Accesses) {
    auto Key = std::make_pair(A.FuncId, A.Ident);
    auto It = Dedup.find(Key);
    if (It == Dedup.end()) {
      Dedup.emplace(Key, std::move(A));
      continue;
    }
    AccessRecord &Existing = It->second;
    std::vector<uint32_t> MergedObjs;
    std::set_union(Existing.Objects.begin(), Existing.Objects.end(),
                   A.Objects.begin(), A.Objects.end(),
                   std::back_inserter(MergedObjs));
    Existing.Objects = std::move(MergedObjs);
    Existing.Held = Lockset::intersect(Existing.Held, A.Held);
  }
  Summary.Accesses.clear();
  for (auto &[Key, Rec] : Dedup)
    Summary.Accesses.push_back(std::move(Rec));

  return Summary;
}

uint64_t RelayDetector::summaryKey(uint32_t FuncId) const {
  Hasher H;
  H.addWord(ModuleHash);
  H.addWord(FuncId);
  // Compositions consume callee summaries, so the key pins their exact
  // content: pre-fixpoint SCC iterations hash differently from the
  // converged state and can never alias it.
  for (uint32_t Callee : CG.callees(FuncId)) {
    H.addWord(Callee);
    H.addWord(Summaries[Callee].fingerprint());
  }
  return H.digest();
}

void RelayDetector::computeScc(const std::vector<uint32_t> &Scc) {
  // Iterate the SCC to fixpoint (recursion converges because locksets
  // shrink and access sets are bounded by the dedup).
  for (unsigned Iter = 0;; ++Iter) {
    bool Changed = false;
    for (uint32_t F : Scc) {
      FunctionSummary New;
      bool Cached = Cache && Cache->lookup(summaryKey(F), New);
      if (!Cached) {
        New = summarizeFunction(F);
        if (Cache)
          Cache->insert(summaryKey(F), New);
      }
      if (!(New == Summaries[F])) {
        Summaries[F] = std::move(New);
        Changed = true;
      }
    }
    if (!Changed || Scc.size() == 1)
      break;
    assert(Iter < 100 && "SCC summary iteration failed to converge");
  }
}

void RelayDetector::computeSummaries() {
  Summaries.assign(M.Functions.size(), FunctionSummary());

  if (Cache && ModuleHash == 0) {
    Hasher H;
    H.addString(ir::printModule(M));
    ModuleHash = H.digest();
  }

  // Bottom-up over the SCC condensation. SCCs are numbered callee-first,
  // so a callee's DAG level is always computed before its callers'.
  const std::vector<std::vector<uint32_t>> &Sccs = CG.bottomUpSccs();
  std::vector<uint32_t> Level(Sccs.size(), 0);
  uint32_t MaxLevel = 0;
  for (uint32_t S = 0; S != Sccs.size(); ++S) {
    for (uint32_t F : Sccs[S])
      for (uint32_t Callee : CG.callees(F))
        if (CG.sccId(Callee) != S)
          Level[S] = std::max(Level[S], Level[CG.sccId(Callee)] + 1);
    MaxLevel = std::max(MaxLevel, Level[S]);
  }
  std::vector<std::vector<uint32_t>> ByLevel(MaxLevel + 1);
  for (uint32_t S = 0; S != Sccs.size(); ++S)
    ByLevel[Level[S]].push_back(S);

  // SCCs within a level share no call edges, so their summary slots are
  // disjoint and their callee reads all target completed lower levels:
  // any interleaving produces the same Summaries vector.
  for (const std::vector<uint32_t> &Group : ByLevel) {
    if (Pool && !Pool->isInline() && Group.size() > 1)
      Pool->parallelFor(Group.size(),
                        [&](size_t I) { computeScc(Sccs[Group[I]]); });
    else
      for (uint32_t S : Group)
        computeScc(Sccs[S]);
  }
}

RaceReport RelayDetector::detect() {
  computeSummaries();

  RaceReport Report;
  std::set<uint64_t> Seen;
  // Candidates removed under some root context. A key pruned under one
  // context but racy under another must stay in Pairs, so pruning is
  // resolved only after every context was examined: a key lands in
  // PrunedPairs iff it never entered Seen. First-encounter reason wins
  // (the root iteration order is deterministic).
  std::map<uint64_t, PrunedRace> PrunedCand;
  const bool Filter = Mhp && Mhp->mode() != analysis::MhpMode::Off;

  const std::vector<uint32_t> &Roots = CG.threadRoots();
  for (size_t I = 0; I != Roots.size(); ++I) {
    for (size_t J = I; J != Roots.size(); ++J) {
      uint32_t R1 = Roots[I], R2 = Roots[J];
      if (R1 == R2) {
        // A root races with itself only if two of its instances can run
        // concurrently (a spawn target spawned repeatedly); main cannot.
        if (R1 == M.MainFunction || !CG.mayHaveConcurrentInstances(R1))
          continue;
      }
      const auto &AccA = Summaries[R1].Accesses;
      const auto &AccB = Summaries[R2].Accesses;
      for (const AccessRecord &A : AccA) {
        for (const AccessRecord &B : AccB) {
          if (!A.IsWrite && !B.IsWrite)
            continue;
          if (!Lockset::disjoint(A.Held, B.Held))
            continue;
          std::vector<uint32_t> Common;
          std::set_intersection(A.Objects.begin(), A.Objects.end(),
                                B.Objects.begin(), B.Objects.end(),
                                std::back_inserter(Common));
          if (Common.empty())
            continue;

          RacePair Pair;
          Pair.A = {A.FuncId, A.Ident, A.IsWrite};
          Pair.B = {B.FuncId, B.Ident, B.IsWrite};
          Pair.Objects = std::move(Common);
          if (Filter) {
            analysis::MhpOrdering Ord = Mhp->classify(
                R1, A.FuncId, A.Ident, R2, B.FuncId, B.Ident);
            if (Ord != analysis::MhpOrdering::MayRace) {
              PrunedCand.try_emplace(Pair.key(),
                                     PrunedRace{std::move(Pair), Ord});
              continue;
            }
          }
          if (Seen.insert(Pair.key()).second)
            Report.Pairs.push_back(std::move(Pair));
        }
      }
    }
  }

  for (auto &Entry : PrunedCand) {
    if (Seen.count(Entry.first))
      continue; // Racy under another root context: stays a real pair.
    if (Entry.second.Reason == analysis::MhpOrdering::OrderedForkJoin)
      ++Report.Mhp.PrunedForkJoin;
    else
      ++Report.Mhp.PrunedBarrier;
    Report.PrunedPairs.push_back(std::move(Entry.second));
  }
  Report.Mhp.Mode = Mhp ? Mhp->mode() : analysis::MhpMode::Off;
  Report.Mhp.PairsBefore = Report.Pairs.size() + Report.PrunedPairs.size();

  std::sort(Report.Pairs.begin(), Report.Pairs.end(),
            [](const RacePair &X, const RacePair &Y) {
              return X.key() < Y.key();
            });
  return Report;
}
