//===- race/DynamicDetector.h - Happens-before race oracle ------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A FastTrack-style dynamic happens-before race detector implemented as
/// an ExecutionObserver. Chimera's central invariant — a transformed
/// program is data-race-free under the new synchronization (paper §2.4)
/// — is checked by running this oracle over executions of instrumented
/// modules, with weak-lock acquire/release treated as synchronization.
///
/// Ranged (loop) weak-locks admit concurrent holders of disjoint ranges,
/// so their happens-before edges are interval-qualified: an acquire of
/// range R joins only the release clocks of overlapping intervals.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_RACE_DYNAMICDETECTOR_H
#define CHIMERA_RACE_DYNAMICDETECTOR_H

#include "runtime/Observer.h"
#include "runtime/VectorClock.h"

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace chimera {
namespace race {

/// One dynamic race: two unordered accesses to the same address.
struct DynamicRace {
  uint64_t Addr = 0;
  uint32_t TidA = 0, TidB = 0;
  bool WriteA = false, WriteB = false;
  uint32_t FuncA = 0, FuncB = 0;
  ir::InstId InstA = 0, InstB = 0;

  std::string str() const;
};

class DynamicDetector : public rt::ExecutionObserver {
public:
  /// At most \p MaxRaces are retained (detection continues for counting).
  explicit DynamicDetector(size_t MaxRaces = 64) : MaxRaces(MaxRaces) {}

  const std::vector<DynamicRace> &races() const { return Races; }
  uint64_t raceCount() const { return NumRaces; }

  // ExecutionObserver implementation.
  void onThreadStart(uint32_t Tid, uint32_t ParentTid, uint32_t FuncId,
                     uint64_t Now) override;
  void onThreadFinish(uint32_t Tid, uint64_t Now) override;
  void onJoin(uint32_t ParentTid, uint32_t ChildTid, uint64_t Now) override;
  void onMemoryAccess(uint32_t Tid, uint64_t Addr, bool IsWrite,
                      uint32_t FuncId, ir::InstId Ident,
                      uint64_t Now) override;
  void onSync(uint32_t Tid, rt::ObservedSync Kind, uint32_t ObjId,
              uint64_t Aux, uint64_t Now) override;
  void onWeak(uint32_t Tid, bool IsAcquire, uint32_t LockId, bool HasRange,
              uint64_t Lo, uint64_t Hi, uint64_t Now) override;

private:
  struct AccessInfo {
    uint32_t Tid = 0;
    uint64_t Clock = 0;
    uint32_t FuncId = 0;
    ir::InstId Ident = 0;
  };
  struct AddrHistory {
    AccessInfo LastWrite;           ///< Clock 0 = no write yet.
    std::vector<AccessInfo> Reads;  ///< Reads since the last write.
  };

  /// Interval-qualified release clock for ranged weak-locks.
  struct RangedRelease {
    bool HasRange = false;
    uint64_t Lo = 0, Hi = 0;
    rt::VectorClock Clock;
  };

  rt::VectorClock &threadClock(uint32_t Tid);
  void reportRace(const AccessInfo &Prev, uint32_t Tid, bool PrevWrite,
                  bool IsWrite, uint64_t Addr, uint32_t FuncId,
                  ir::InstId Ident);
  void acquireEdge(uint32_t Tid, const rt::VectorClock &From);
  void releaseEdge(uint32_t Tid, rt::VectorClock &Into);

  size_t MaxRaces;
  uint64_t NumRaces = 0;
  std::vector<DynamicRace> Races;

  std::vector<rt::VectorClock> ThreadClocks;
  std::vector<rt::VectorClock> FinalClocks; ///< Per finished thread.
  std::unordered_map<uint32_t, rt::VectorClock> MutexClocks;
  std::unordered_map<uint32_t, rt::VectorClock> CondClocks;
  /// Barrier generation clocks: key = (obj << 32) | generation.
  std::map<uint64_t, rt::VectorClock> BarrierClocks;
  /// Per weak-lock: release intervals (unranged collapses to one entry).
  std::unordered_map<uint32_t, std::vector<RangedRelease>> WeakClocks;

  std::unordered_map<uint64_t, AddrHistory> Addresses;
};

} // namespace race
} // namespace chimera

#endif // CHIMERA_RACE_DYNAMICDETECTOR_H
