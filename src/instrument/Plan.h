//===- instrument/Plan.h - Instrumentation plan types -----------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumentation plan: which weak-locks exist, and where each is
/// acquired and at what granularity. The Planner produces it from the
/// race report + profile + bounds analyses; the Instrumenter rewrites a
/// module clone from it.
///
/// Lock identity follows the paper: every uncovered race-pair gets one
/// weak-lock shared by both sides (each side guarded at its own
/// granularity), and every used clique of non-concurrent racy functions
/// gets one function-lock (§4.2).
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_INSTRUMENT_PLAN_H
#define CHIMERA_INSTRUMENT_PLAN_H

#include "bounds/SymbolicExpr.h"
#include "ir/Module.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace chimera {
namespace instrument {

/// A weak-lock acquisition site at loop granularity. When several racy
/// accesses of the same pair fall in the same loop, the guard protects
/// the union of their ranges: each (Lo, Hi) pair is materialized in the
/// preheader and folded with branchless min/max.
struct LoopGuard {
  uint32_t LockId = 0;
  ir::BlockId Header = ir::NoBlock;     ///< Identifies the loop.
  ir::BlockId Preheader = ir::NoBlock;  ///< Where bounds are computed.
  std::vector<ir::BlockId> LoopBlocks;  ///< For exit detection.
  bool HasRange = false;
  std::vector<bounds::AffineExpr> LoList; ///< Over preheader atoms.
  std::vector<bounds::AffineExpr> HiList;
};

/// A weak-lock acquisition around one basic block.
struct BlockGuard {
  uint32_t LockId = 0;
  ir::BlockId Block = ir::NoBlock;
};

/// A weak-lock acquisition around one instruction.
struct InstrGuard {
  uint32_t LockId = 0;
  ir::InstId Ident = ir::NoInst;
};

/// All guards within one function.
struct FunctionPlan {
  /// Function-locks acquired at entry, released at exit (sorted ids).
  std::vector<uint32_t> EntryLocks;
  std::vector<LoopGuard> Loops;
  std::vector<BlockGuard> Blocks;
  std::vector<InstrGuard> Instrs;

  bool empty() const {
    return EntryLocks.empty() && Loops.empty() && Blocks.empty() &&
           Instrs.empty();
  }
};

/// The lock-order certificate a plan may carry (ISSUE 8). Stamped by the
/// pipeline after the LockOrderGraph analysis proves the plan's weak-lock
/// acquisition order acyclic; validated independently by the
/// LockOrderAuditor before any instrumented execution. PlanFingerprint
/// binds the claim to the exact plan content (certificate fields
/// excluded), so editing the plan after stamping makes the certificate
/// detectably stale.
struct LockOrderCertificate {
  bool Present = false;
  bool Acyclic = false;
  uint64_t PlanFingerprint = 0;
  // Analysis/repair statistics carried for reporting.
  uint64_t Edges = 0;
  uint64_t CyclesFound = 0;    ///< Feasible cycles before repair.
  uint64_t CoalescedLocks = 0; ///< Locks merged away by enforce-repair.
  uint64_t RepairRounds = 0;
};

struct InstrumentationPlan {
  /// Weak-lock table; index = lock id (becomes Module::WeakLocks).
  std::vector<ir::WeakLockMeta> Locks;
  /// Per function id.
  std::map<uint32_t, FunctionPlan> Functions;

  /// Lock-order certificate (Present == false when --lock-order=off).
  LockOrderCertificate Certificate;

  // Planning statistics (reported by benches/tests).
  uint64_t PairsTotal = 0;
  uint64_t PairsFunctionCovered = 0;
  uint64_t SidesLoopRanged = 0;
  uint64_t SidesLoopUnranged = 0;
  uint64_t SidesBasicBlock = 0;
  uint64_t SidesInstr = 0;

  std::string summary(const ir::Module &M) const;
};

} // namespace instrument
} // namespace chimera

#endif // CHIMERA_INSTRUMENT_PLAN_H
