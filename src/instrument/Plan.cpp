//===- instrument/Plan.cpp - Instrumentation plan types --------------------===//

#include "instrument/Plan.h"

using namespace chimera;
using namespace chimera::instrument;

std::string InstrumentationPlan::summary(const ir::Module &M) const {
  std::string Out;
  Out += "weak-locks: " + std::to_string(Locks.size()) + "\n";
  Out += "race pairs: " + std::to_string(PairsTotal) +
         " (function-covered " + std::to_string(PairsFunctionCovered) +
         ")\n";
  if (Certificate.Present)
    Out += std::string("lock-order certificate: ") +
           (Certificate.Acyclic ? "acyclic" : "cyclic") + " (" +
           std::to_string(Certificate.Edges) + " edges, " +
           std::to_string(Certificate.CyclesFound) + " cycles found, " +
           std::to_string(Certificate.CoalescedLocks) +
           " locks coalesced)\n";
  Out += "guard sites: loop+range " + std::to_string(SidesLoopRanged) +
         ", loop " + std::to_string(SidesLoopUnranged) + ", basic-block " +
         std::to_string(SidesBasicBlock) + ", instruction " +
         std::to_string(SidesInstr) + "\n";
  for (const auto &[FuncId, FP] : Functions) {
    Out += "  " + M.function(FuncId).Name + ": entry locks " +
           std::to_string(FP.EntryLocks.size()) + ", loops " +
           std::to_string(FP.Loops.size()) + ", blocks " +
           std::to_string(FP.Blocks.size()) + ", instrs " +
           std::to_string(FP.Instrs.size()) + "\n";
  }
  return Out;
}
