//===- instrument/PlanAuditor.h - Static weak-lock coverage proof -*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An independent static verifier for instrumentation plans (ISSUE 3).
/// After the Planner chooses granularities and the Instrumenter rewrites
/// the module, the auditor re-proves — from the instrumented IR alone,
/// without trusting the Planner's bookkeeping — that
///
///  1. every surviving racy access is dominated by a WeakAcquire of some
///     lock held at the access on *all* paths (a must-held forward
///     dataflow over the instrumented function, honoring the
///     release/reacquire pairs the Instrumenter emits around calls);
///  2. both sides of every race pair hold a common lock whose recorded
///     WeakLockMeta granularity matches the coarsest guard kind actually
///     covering the two sides in the plan;
///  3. every ranged loop guard used to cover a side subsumes that
///     access's address range: the bounds are re-derived from the
///     original module and compared expression-wise against the guard's
///     Lo/Hi lists (a list entry must dominate the access bound by a
///     provable constant offset).
///
/// Failures are hard errors — the Pipeline refuses to record or replay
/// under a plan that does not audit clean.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_INSTRUMENT_PLANAUDITOR_H
#define CHIMERA_INSTRUMENT_PLANAUDITOR_H

#include "instrument/Plan.h"
#include "race/RelayDetector.h"
#include "support/Expected.h"

namespace chimera {
namespace instrument {

struct AuditStats {
  uint64_t PairsChecked = 0;
  uint64_t AccessesChecked = 0;
  uint64_t RangedGuardsChecked = 0;
};

struct AuditResult {
  support::Error Failure; ///< success() when the plan proves out.
  AuditStats Stats;

  bool ok() const { return !Failure; }
};

/// Verifies \p Plan / \p Instrumented against \p Report. \p Original is
/// the uninstrumented module the bounds re-derivation runs on.
AuditResult auditPlan(const ir::Module &Original,
                      const race::RaceReport &Report,
                      const InstrumentationPlan &Plan,
                      const ir::Module &Instrumented);

} // namespace instrument
} // namespace chimera

#endif // CHIMERA_INSTRUMENT_PLANAUDITOR_H
