//===- instrument/LockOrderAuditor.h - Certificate gatekeeper ---*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Certification, repair, and independent validation of a plan's
/// weak-lock acquisition order (ISSUE 8, mirroring the PlanAuditor
/// posture of ISSUE 3: the runtime trusts nothing it did not re-prove).
///
///  - planFingerprint() hashes the full plan content *excluding* the
///    certificate fields, binding a certificate to one exact plan.
///  - repairLockOrder() coalesces each cyclic lock set into one
///    Function-granularity lock acquired at entry of every function that
///    used any member — the coarsest repair, chosen so the repaired plan
///    still passes PlanAuditor's granularity-consistency check (a merged
///    lock with mixed-granularity guard sites could not).
///  - auditLockOrder() recomputes the lock-order graph over the final
///    instrumented module and cross-checks the carried certificate:
///    a fingerprint mismatch (stale certificate — the plan was edited
///    after stamping) or an acyclicity claim the recomputation refutes
///    (forged certificate) is a hard error that gates record/replay,
///    as is a cyclic plan under enforce mode.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_INSTRUMENT_LOCKORDERAUDITOR_H
#define CHIMERA_INSTRUMENT_LOCKORDERAUDITOR_H

#include "analysis/LockOrderGraph.h"
#include "instrument/Plan.h"
#include "support/Expected.h"

namespace chimera {
namespace instrument {

/// Content hash of \p Plan excluding its Certificate fields. Any edit to
/// locks, guards, ranges, or stats changes the fingerprint. Public so
/// tests can forge "internally consistent" lying certificates.
uint64_t planFingerprint(const InstrumentationPlan &Plan);

/// Stamps \p Plan's certificate from an analysis verdict: Present,
/// Acyclic per \p Graph, fingerprint over the (post-repair) plan.
void certifyLockOrder(InstrumentationPlan &Plan,
                      const analysis::LockOrderGraph &Graph);

/// Coalesces each lock set in \p CyclicSets (disjoint, sorted — from
/// LockOrderGraph::cyclicLockSets()) into its minimal member, re-pointed
/// to Function granularity and acquired at entry of every function that
/// carried any member guard. Surviving lock ids are compacted. Returns
/// the number of locks merged away.
uint64_t repairLockOrder(InstrumentationPlan &Plan,
                         const std::vector<std::vector<uint32_t>> &CyclicSets);

struct LockOrderAuditResult {
  support::Error Failure; ///< success() when the certificate checks out.
  analysis::LockOrderStats Stats;
  bool Certified = false; ///< Valid certificate proving acyclicity.
  std::string Report;     ///< Witness chains / acyclicity statement.

  bool ok() const { return !Failure; }
};

/// Recomputes the lock-order graph over \p Instrumented and validates
/// \p Plan's certificate against it (see file comment). \p Mode Off is
/// never an error; Audit fails only on certificate lies; Enforce
/// additionally fails when feasible cycles remain.
LockOrderAuditResult auditLockOrder(const ir::Module &Original,
                                    const InstrumentationPlan &Plan,
                                    const ir::Module &Instrumented,
                                    const analysis::CallGraph &CG,
                                    const analysis::MayHappenInParallel &Mhp,
                                    analysis::LockOrderMode Mode);

} // namespace instrument
} // namespace chimera

#endif // CHIMERA_INSTRUMENT_LOCKORDERAUDITOR_H
