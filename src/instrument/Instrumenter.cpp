//===- instrument/Instrumenter.cpp - Weak-lock IR rewriting ----------------===//

#include "instrument/Instrumenter.h"

#include "bounds/BoundsAnalysis.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

using namespace chimera;
using namespace chimera::instrument;
using namespace chimera::ir;

namespace {

/// Rewrites one function according to its FunctionPlan.
class FunctionRewriter {
public:
  FunctionRewriter(Function &F, const FunctionPlan &Plan) : F(F), Plan(Plan) {
    // Loop guards indexed by preheader; loop membership and exit-edge
    // targets precomputed.
    for (const LoopGuard &G : Plan.Loops) {
      GuardsByPreheader[G.Preheader].push_back(&G);
      for (BlockId B : G.LoopBlocks)
        LoopMembership[B].push_back(&G);
      for (BlockId B : G.LoopBlocks)
        for (BlockId S : F.successors(B))
          if (!std::binary_search(G.LoopBlocks.begin(), G.LoopBlocks.end(),
                                  S))
            ExitReleases[S].insert(G.LockId);
    }
    for (const BlockGuard &G : Plan.Blocks)
      BlockGuards[G.Block].push_back(G.LockId);
    for (const InstrGuard &G : Plan.Instrs)
      InstrGuards[G.Ident].push_back(G.LockId);
    for (auto &[Block, Guards] : GuardsByPreheader)
      std::sort(Guards.begin(), Guards.end(),
                [](const LoopGuard *A, const LoopGuard *B) {
                  return A->LockId < B->LockId;
                });
    for (auto &[Ident, Locks] : InstrGuards)
      std::sort(Locks.begin(), Locks.end());
    for (auto &[Block, Locks] : BlockGuards)
      std::sort(Locks.begin(), Locks.end());
  }

  void run() {
    uint32_t NumBlocks = F.numBlocks();
    for (BlockId B = 0; B != NumBlocks; ++B)
      rewriteBlock(B);
  }

private:
  Instruction makeInst(Opcode Op) {
    Instruction Inst;
    Inst.Op = Op;
    Inst.Ident = F.newInstId();
    return Inst;
  }

  void emitAcquire(std::vector<Instruction> &Out, uint32_t LockId,
                   WeakLockGranularity Gran, Reg Lo = NoReg,
                   Reg Hi = NoReg) {
    Instruction Inst = makeInst(Opcode::WeakAcquire);
    Inst.Imm = LockId;
    Inst.Id2 = static_cast<uint32_t>(Gran);
    Inst.A = Lo;
    Inst.B = Hi;
    Out.push_back(std::move(Inst));
  }

  void emitRelease(std::vector<Instruction> &Out, uint32_t LockId,
                   WeakLockGranularity Gran) {
    Instruction Inst = makeInst(Opcode::WeakRelease);
    Inst.Imm = LockId;
    Inst.Id2 = static_cast<uint32_t>(Gran);
    Out.push_back(std::move(Inst));
  }

  /// Materializes an affine bound expression; returns the result
  /// register. Atoms refer to registers read at the emission point.
  Reg emitAffine(std::vector<Instruction> &Out,
                 const bounds::AffineExpr &E) {
    Instruction Const = makeInst(Opcode::ConstInt);
    Const.Imm = E.constantValue();
    Const.Dst = F.newReg();
    Reg Acc = Const.Dst;
    Out.push_back(std::move(Const));

    for (const auto &[Atom, Coeff] : E.coeffs()) {
      assert(bounds::BoundsAnalysis::isPreheaderAtom(Atom) &&
             "bound expression contains a loop-variant register");
      Reg Source = bounds::BoundsAnalysis::stripAtom(Atom);
      Reg Term = Source;
      if (Coeff != 1) {
        Instruction CoeffInst = makeInst(Opcode::ConstInt);
        CoeffInst.Imm = Coeff;
        CoeffInst.Dst = F.newReg();
        Reg CoeffReg = CoeffInst.Dst;
        Out.push_back(std::move(CoeffInst));

        Instruction Mul = makeInst(Opcode::Binary);
        Mul.BOp = BinOp::Mul;
        Mul.A = Source;
        Mul.B = CoeffReg;
        Mul.Dst = F.newReg();
        Term = Mul.Dst;
        Out.push_back(std::move(Mul));
      }
      Instruction Add = makeInst(Opcode::Binary);
      Add.BOp = BinOp::Add;
      Add.A = Acc;
      Add.B = Term;
      Add.Dst = F.newReg();
      Acc = Add.Dst;
      Out.push_back(std::move(Add));
    }
    return Acc;
  }

  /// Branchless signed min: B + ((A - B) & ((A - B) >> 63)).
  Reg emitMin(std::vector<Instruction> &Out, Reg A, Reg B) {
    return emitMinMax(Out, A, B, /*WantMin=*/true);
  }
  Reg emitMax(std::vector<Instruction> &Out, Reg A, Reg B) {
    return emitMinMax(Out, A, B, /*WantMin=*/false);
  }

  Reg emitMinMax(std::vector<Instruction> &Out, Reg A, Reg B,
                 bool WantMin) {
    auto binary = [&](BinOp Op, Reg X, Reg Y) {
      Instruction Inst = makeInst(Opcode::Binary);
      Inst.BOp = Op;
      Inst.A = X;
      Inst.B = Y;
      Inst.Dst = F.newReg();
      Reg R = Inst.Dst;
      Out.push_back(std::move(Inst));
      return R;
    };
    Instruction C = makeInst(Opcode::ConstInt);
    C.Imm = 63;
    C.Dst = F.newReg();
    Reg SixtyThree = C.Dst;
    Out.push_back(std::move(C));

    Reg Diff = binary(BinOp::Sub, A, B);          // A - B
    Reg Sign = binary(BinOp::Shr, Diff, SixtyThree); // arithmetic >> 63
    Reg Masked = binary(BinOp::And, Diff, Sign);  // A<B ? A-B : 0
    if (WantMin)
      return binary(BinOp::Add, B, Masked);       // min(A, B)
    return binary(BinOp::Sub, A, Masked);         // max(A, B)
  }

  /// Locks held when control is inside \p B, in acquisition order:
  /// function locks, then loop locks (outer to inner), then the block
  /// lock. Used for release/reacquire around calls and before returns.
  struct HeldInfo {
    std::vector<std::pair<uint32_t, WeakLockGranularity>> Ordered;
  };

  HeldInfo heldIn(BlockId B) const {
    HeldInfo Info;
    for (uint32_t Lock : Plan.EntryLocks)
      Info.Ordered.push_back({Lock, WeakLockGranularity::Function});

    auto It = LoopMembership.find(B);
    if (It != LoopMembership.end()) {
      // Outer loops first: more blocks = outer.
      std::vector<const LoopGuard *> Guards = It->second;
      std::sort(Guards.begin(), Guards.end(),
                [](const LoopGuard *X, const LoopGuard *Y) {
                  if (X->LoopBlocks.size() != Y->LoopBlocks.size())
                    return X->LoopBlocks.size() > Y->LoopBlocks.size();
                  return X->LockId < Y->LockId;
                });
      for (const LoopGuard *G : Guards)
        Info.Ordered.push_back({G->LockId, WeakLockGranularity::Loop});
    }

    auto BIt = BlockGuards.find(B);
    if (BIt != BlockGuards.end())
      for (uint32_t Lock : BIt->second)
        Info.Ordered.push_back({Lock, WeakLockGranularity::BasicBlock});
    return Info;
  }

  void rewriteBlock(BlockId B) {
    std::vector<Instruction> Old = std::move(F.block(B).Insts);
    std::vector<Instruction> Out;
    Out.reserve(Old.size() + 8);

    // 1. Loop-lock releases for loops this block exits.
    auto ExitIt = ExitReleases.find(B);
    if (ExitIt != ExitReleases.end())
      for (auto It = ExitIt->second.rbegin(); It != ExitIt->second.rend();
           ++It)
        emitRelease(Out, *It, WeakLockGranularity::Loop);

    // 2. Function entry: acquire entry locks.
    if (B == 0)
      for (uint32_t Lock : Plan.EntryLocks)
        emitAcquire(Out, Lock, WeakLockGranularity::Function);

    // 3. Basic-block locks.
    auto BGIt = BlockGuards.find(B);
    if (BGIt != BlockGuards.end())
      for (uint32_t Lock : BGIt->second)
        emitAcquire(Out, Lock, WeakLockGranularity::BasicBlock);

    HeldInfo Held = heldIn(B);

    for (Instruction &Inst : Old) {
      bool IsTerminator = Inst.isTerminator();

      if (IsTerminator) {
        // Basic-block locks release first: a block can simultaneously
        // be bb-guarded and the preheader of a loop guarded by the same
        // lock, and the lock classes must also never interleave
        // (bb locks are innermost, §2.3).
        if (BGIt != BlockGuards.end())
          for (auto It = BGIt->second.rbegin(); It != BGIt->second.rend();
               ++It)
            emitRelease(Out, *It, WeakLockGranularity::BasicBlock);

        // Loop-lock acquisition in the preheader, before its terminator.
        auto PreIt = GuardsByPreheader.find(B);
        if (PreIt != GuardsByPreheader.end()) {
          for (const LoopGuard *G : PreIt->second) {
            if (G->HasRange) {
              assert(!G->LoList.empty() && "ranged guard without bounds");
              Reg Lo = emitAffine(Out, G->LoList[0]);
              Reg Hi = emitAffine(Out, G->HiList[0]);
              for (size_t I = 1; I != G->LoList.size(); ++I) {
                Lo = emitMin(Out, Lo, emitAffine(Out, G->LoList[I]));
                Hi = emitMax(Out, Hi, emitAffine(Out, G->HiList[I]));
              }
              emitAcquire(Out, G->LockId, WeakLockGranularity::Loop, Lo,
                          Hi);
              LoopRangeRegs[G->LockId] = {Lo, Hi};
            } else {
              emitAcquire(Out, G->LockId, WeakLockGranularity::Loop);
            }
          }
        }

        // Returns release everything still held.
        if (Inst.Op == Opcode::Ret) {
          for (auto It = Held.Ordered.rbegin(); It != Held.Ordered.rend();
               ++It)
            if (It->second != WeakLockGranularity::BasicBlock)
              emitRelease(Out, It->first, It->second);
        }

        Out.push_back(std::move(Inst));
        continue;
      }

      // Calls and blocking synchronization (mutex_lock, cond_wait,
      // barrier_wait, join): release every held lock (reverse),
      // execute, reacquire. Weak-lock critical sections are
      // synchronization-delimited — a thread never holds a weak-lock
      // while blocked on a strong primitive, so the only thing a weak
      // holder can ever stall on is another weak acquisition. That is
      // what lets an acyclic lock-order certificate discharge the
      // revocation machinery statically: with no held-across-sync
      // locks and no weak cycles, no ownership chain can stall. For
      // calls specifically the planner guarantees loop and block locks
      // never cover them, so only function locks are involved; sync
      // ops can legitimately sit under loop or block guards and the
      // general form handles every granularity.
      if (Inst.Op == Opcode::Call || Inst.Op == Opcode::MutexLock ||
          Inst.Op == Opcode::CondWait || Inst.Op == Opcode::BarrierWait ||
          Inst.Op == Opcode::Join) {
        for (auto It = Held.Ordered.rbegin(); It != Held.Ordered.rend();
             ++It)
          emitRelease(Out, It->first, It->second);
        Out.push_back(std::move(Inst));
        for (const auto &[Lock, Gran] : Held.Ordered) {
          auto RangeIt = LoopRangeRegs.find(Lock);
          if (Gran == WeakLockGranularity::Loop &&
              RangeIt != LoopRangeRegs.end())
            emitAcquire(Out, Lock, Gran, RangeIt->second.first,
                        RangeIt->second.second);
          else
            emitAcquire(Out, Lock, Gran);
        }
        continue;
      }

      // Instruction guards.
      auto IGIt = InstrGuards.find(Inst.Ident);
      if (IGIt != InstrGuards.end()) {
        for (uint32_t Lock : IGIt->second)
          emitAcquire(Out, Lock, WeakLockGranularity::Instr);
        Out.push_back(std::move(Inst));
        for (auto It = IGIt->second.rbegin(); It != IGIt->second.rend();
             ++It)
          emitRelease(Out, *It, WeakLockGranularity::Instr);
        continue;
      }

      Out.push_back(std::move(Inst));
    }

    F.block(B).Insts = std::move(Out);
  }

  Function &F;
  const FunctionPlan &Plan;
  std::map<BlockId, std::vector<const LoopGuard *>> GuardsByPreheader;
  std::map<BlockId, std::vector<const LoopGuard *>> LoopMembership;
  std::map<BlockId, std::set<uint32_t>> ExitReleases;
  std::map<BlockId, std::vector<uint32_t>> BlockGuards;
  std::map<InstId, std::vector<uint32_t>> InstrGuards;
  std::map<uint32_t, std::pair<Reg, Reg>> LoopRangeRegs;
};

} // namespace

std::unique_ptr<Module> chimera::instrument::instrumentModule(
    const Module &M, const InstrumentationPlan &Plan) {
  std::unique_ptr<Module> Clone = M.clone();
  Clone->WeakLocks = Plan.Locks;
  for (const auto &[FuncId, FP] : Plan.Functions) {
    FunctionRewriter Rewriter(Clone->function(FuncId), FP);
    Rewriter.run();
  }
  return Clone;
}
