//===- instrument/Instrumenter.h - Weak-lock IR rewriting -------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rewrites a module according to an InstrumentationPlan:
///
///  - function-locks: acquired (ascending id) at function entry,
///    released before every Ret, and released/reacquired around every
///    call so nested instrumented regions never interleave lock classes
///    (paper §2.3);
///  - loop-locks: range expressions materialized in the preheader,
///    acquired there, released at every loop exit edge target;
///  - basic-block locks: acquired at block start, released before the
///    terminator (blocks containing calls were demoted by the planner);
///  - instruction locks: acquired/released immediately around the racy
///    instruction.
///
/// Every emitted WeakAcquire/WeakRelease carries its site granularity in
/// Id2 so the runtime can classify log records per Table 2.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_INSTRUMENT_INSTRUMENTER_H
#define CHIMERA_INSTRUMENT_INSTRUMENTER_H

#include "instrument/Plan.h"

#include <memory>

namespace chimera {
namespace instrument {

/// Returns an instrumented deep copy of \p M. The clone's WeakLocks
/// table is Plan.Locks; the original module is untouched.
std::unique_ptr<ir::Module> instrumentModule(const ir::Module &M,
                                             const InstrumentationPlan &Plan);

} // namespace instrument
} // namespace chimera

#endif // CHIMERA_INSTRUMENT_INSTRUMENTER_H
