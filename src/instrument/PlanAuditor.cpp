//===- instrument/PlanAuditor.cpp - Static weak-lock coverage proof --------===//

#include "instrument/PlanAuditor.h"

#include "analysis/LoopInfo.h"
#include "bounds/BoundsAnalysis.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

using namespace chimera;
using namespace chimera::instrument;
using namespace chimera::ir;

namespace {

/// Must-held lock set; nullopt is top (unvisited / unreachable).
using LockSet = std::optional<std::set<uint32_t>>;

LockSet meetSets(const LockSet &A, const LockSet &B) {
  if (!A)
    return B;
  if (!B)
    return A;
  std::set<uint32_t> Out;
  std::set_intersection(A->begin(), A->end(), B->begin(), B->end(),
                        std::inserter(Out, Out.begin()));
  return Out;
}

void transferInst(const Instruction &Inst, std::set<uint32_t> &Held) {
  if (Inst.Op == Opcode::WeakAcquire)
    Held.insert(static_cast<uint32_t>(Inst.Imm));
  else if (Inst.Op == Opcode::WeakRelease)
    Held.erase(static_cast<uint32_t>(Inst.Imm));
}

/// Forward must-held dataflow over one instrumented function. The
/// WeakAcquire/WeakRelease instructions the Instrumenter emitted —
/// including the release/reacquire bracket around every call — are the
/// only transfer points, so intersection over predecessors yields the
/// locks held on every path.
struct MustHeldFlow {
  explicit MustHeldFlow(const Function &F) : F(F) {
    uint32_t N = F.numBlocks();
    In.assign(N, std::nullopt);
    In[0] = std::set<uint32_t>();
    std::vector<std::vector<BlockId>> Preds(N);
    for (BlockId B = 0; B != N; ++B)
      for (BlockId S : F.successors(B))
        Preds[S].push_back(B);

    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (BlockId B = 0; B != N; ++B) {
        LockSet NewIn = B == 0 ? In[0] : std::nullopt;
        if (B != 0)
          for (BlockId P : Preds[B])
            NewIn = meetSets(NewIn, outOf(P));
        if (NewIn != In[B]) {
          In[B] = std::move(NewIn);
          Changed = true;
        }
      }
    }
  }

  LockSet outOf(BlockId B) const {
    if (!In[B])
      return std::nullopt;
    std::set<uint32_t> Held = *In[B];
    for (const Instruction &Inst : F.block(B).Insts)
      transferInst(Inst, Held);
    return Held;
  }

  /// Locks must-held just before instruction \p Ident runs; nullopt when
  /// the instruction is unreachable (then any claim holds vacuously).
  LockSet heldBefore(InstId Ident) const {
    Function::InstPos Pos = F.findInstPos(Ident);
    if (!Pos.valid() || !In[Pos.Block])
      return std::nullopt;
    std::set<uint32_t> Held = *In[Pos.Block];
    for (uint32_t I = 0; I != Pos.Index; ++I)
      transferInst(F.block(Pos.Block).Insts[I], Held);
    return Held;
  }

  const Function &F;
  std::vector<LockSet> In;
};

/// Per original function: analyses for the bounds re-derivation.
struct OrigContext {
  std::unique_ptr<analysis::LoopInfo> LI;
  std::unique_ptr<bounds::BoundsAnalysis> BA;
};

std::string describeAccess(const Module &M, const race::RacyAccess &A) {
  const Function &F = M.function(A.FuncId);
  const Instruction *Inst = F.findInst(A.Ident);
  return F.Name + ":" + (Inst ? std::to_string(Inst->Loc.Line) : "?");
}

/// True when affine \p Stronger <= \p Weaker on every valuation, i.e.
/// their difference is a non-negative constant.
bool dominatesLe(const bounds::AffineExpr &Stronger,
                 const bounds::AffineExpr &Weaker) {
  if (!Stronger.valid() || !Weaker.valid())
    return false;
  bounds::AffineExpr Diff = Weaker.sub(Stronger);
  return Diff.valid() && Diff.isConstant() && Diff.constantValue() >= 0;
}

class Auditor {
public:
  Auditor(const Module &Original, const race::RaceReport &Report,
          const InstrumentationPlan &Plan, const Module &Instrumented)
      : Original(Original), Report(Report), Plan(Plan),
        Instrumented(Instrumented) {}

  AuditResult run() {
    AuditResult Result;
    for (const race::RacePair &Pair : Report.Pairs) {
      ++Result.Stats.PairsChecked;
      support::Error E = auditPair(Pair, Result.Stats);
      if (E) {
        Result.Failure = std::move(E);
        return Result;
      }
    }
    return Result;
  }

private:
  const MustHeldFlow &flowOf(uint32_t FuncId) {
    auto It = Flows.find(FuncId);
    if (It == Flows.end())
      It = Flows
               .emplace(FuncId,
                        std::make_unique<MustHeldFlow>(
                            Instrumented.function(FuncId)))
               .first;
    return *It->second;
  }

  OrigContext &origCtx(uint32_t FuncId) {
    OrigContext &Ctx = Contexts[FuncId];
    if (!Ctx.LI) {
      const Function &F = Original.function(FuncId);
      Ctx.LI = std::make_unique<analysis::LoopInfo>(F);
      Ctx.BA = std::make_unique<bounds::BoundsAnalysis>(Original, F, *Ctx.LI);
    }
    return Ctx;
  }

  /// Coarsest plan-level coverage of \p Access by lock \p LockId, or
  /// nullopt when the plan never guards this access with that lock.
  std::optional<WeakLockGranularity>
  planCoverage(const race::RacyAccess &Access, uint32_t LockId,
               BlockId AccessBlock) const {
    auto It = Plan.Functions.find(Access.FuncId);
    if (It == Plan.Functions.end())
      return std::nullopt;
    const FunctionPlan &FP = It->second;
    std::optional<WeakLockGranularity> Best;
    auto consider = [&](WeakLockGranularity G) {
      if (!Best || G < *Best)
        Best = G;
    };
    if (std::binary_search(FP.EntryLocks.begin(), FP.EntryLocks.end(),
                           LockId))
      consider(WeakLockGranularity::Function);
    for (const LoopGuard &G : FP.Loops)
      if (G.LockId == LockId &&
          std::binary_search(G.LoopBlocks.begin(), G.LoopBlocks.end(),
                             AccessBlock))
        consider(WeakLockGranularity::Loop);
    for (const BlockGuard &G : FP.Blocks)
      if (G.LockId == LockId && G.Block == AccessBlock)
        consider(WeakLockGranularity::BasicBlock);
    for (const InstrGuard &G : FP.Instrs)
      if (G.LockId == LockId && G.Ident == Access.Ident)
        consider(WeakLockGranularity::Instr);
    return Best;
  }

  /// Checks that every ranged loop guard of \p LockId covering
  /// \p Access subsumes the access's re-derived address range.
  support::Error checkRanges(const race::RacyAccess &Access, uint32_t LockId,
                             BlockId AccessBlock, AuditStats &Stats) {
    auto It = Plan.Functions.find(Access.FuncId);
    if (It == Plan.Functions.end())
      return support::Error::success();
    for (const LoopGuard &G : It->second.Loops) {
      if (G.LockId != LockId || !G.HasRange ||
          !std::binary_search(G.LoopBlocks.begin(), G.LoopBlocks.end(),
                              AccessBlock))
        continue;
      ++Stats.RangedGuardsChecked;

      OrigContext &Ctx = origCtx(Access.FuncId);
      const analysis::Loop *L = Ctx.LI->innermostLoop(G.Header);
      while (L && L->Header != G.Header)
        L = L->Parent;
      if (!L)
        return support::Error::failure(
            "ranged guard for lock " + std::to_string(LockId) +
            " names a loop header that is not a loop in " +
            Original.function(Access.FuncId).Name);
      bounds::AddressBounds B = Ctx.BA->addressBounds(L, Access.Ident);
      if (!B.Valid)
        return support::Error::failure(
            "cannot re-derive address bounds for " +
            describeAccess(Original, Access) + " under ranged lock " +
            std::to_string(LockId));

      // The runtime range is fold-min(LoList)..fold-max(HiList), so one
      // list entry dominating the access bound proves subsumption.
      bool LoOk = false, HiOk = false;
      for (const bounds::AffineExpr &Lo : G.LoList)
        LoOk = LoOk || dominatesLe(Lo, B.Lo);
      for (const bounds::AffineExpr &Hi : G.HiList)
        HiOk = HiOk || dominatesLe(B.Hi, Hi);
      if (!LoOk || !HiOk)
        return support::Error::failure(
            "ranged lock " + std::to_string(LockId) +
            " does not subsume the address range of " +
            describeAccess(Original, Access) + " (lo " +
            (LoOk ? "ok" : "uncovered") + ", hi " +
            (HiOk ? "ok" : "uncovered") + ")");
    }
    return support::Error::success();
  }

  support::Error auditPair(const race::RacePair &Pair, AuditStats &Stats) {
    std::vector<const race::RacyAccess *> Sides = {&Pair.A};
    if (Pair.B.FuncId != Pair.A.FuncId || Pair.B.Ident != Pair.A.Ident)
      Sides.push_back(&Pair.B);

    // 1. Must-held sets from the instrumented IR.
    LockSet Common;
    bool AnyReachable = false;
    std::vector<BlockId> SideBlocks;
    for (const race::RacyAccess *Side : Sides) {
      ++Stats.AccessesChecked;
      Function::InstPos Pos =
          Original.function(Side->FuncId).findInstPos(Side->Ident);
      if (!Pos.valid())
        return support::Error::failure("racy access " +
                                       describeAccess(Original, *Side) +
                                       " not found in its function");
      SideBlocks.push_back(Pos.Block);
      LockSet Held = flowOf(Side->FuncId).heldBefore(Side->Ident);
      if (Held)
        AnyReachable = true;
      // Top (unreachable side) is the meet identity.
      Common = meetSets(Common, Held);
    }
    // Both sides statically unreachable: nothing to protect.
    if (!AnyReachable)
      return support::Error::success();
    if (!Common || Common->empty())
      return support::Error::failure(
          "no weak-lock is held on all paths by both sides of race pair " +
          describeAccess(Original, Pair.A) + " <-> " +
          describeAccess(Original, Pair.B));

    // 2 & 3. Some common lock must be covered by plan guards whose
    // coarsest kind matches its recorded granularity, with every ranged
    // guard used subsuming the access range.
    std::string Why = "held locks fail the plan cross-check";
    for (uint32_t LockId : *Common) {
      if (LockId >= Plan.Locks.size()) {
        Why = "held lock " + std::to_string(LockId) +
              " is absent from the plan's lock table";
        continue;
      }
      std::optional<WeakLockGranularity> Coarsest;
      bool Covered = true;
      for (size_t I = 0; I != Sides.size(); ++I) {
        std::optional<WeakLockGranularity> Cov =
            planCoverage(*Sides[I], LockId, SideBlocks[I]);
        if (!Cov) {
          Covered = false;
          break;
        }
        if (!Coarsest || *Cov < *Coarsest)
          Coarsest = *Cov;
      }
      if (!Covered) {
        Why = "lock " + std::to_string(LockId) +
              " is held but no plan guard covers both sides";
        continue;
      }
      if (*Coarsest != Plan.Locks[LockId].Granularity) {
        Why = "lock " + std::to_string(LockId) + " recorded granularity " +
              std::string(weakLockGranularityName(
                  Plan.Locks[LockId].Granularity)) +
              " but guards cover the pair at " +
              weakLockGranularityName(*Coarsest);
        continue;
      }
      support::Error RangeErr = support::Error::success();
      for (size_t I = 0; I != Sides.size() && !RangeErr; ++I)
        RangeErr =
            checkRanges(*Sides[I], LockId, SideBlocks[I], Stats);
      if (RangeErr) {
        Why = RangeErr.message();
        continue;
      }
      return support::Error::success(); // This lock audits clean.
    }
    return support::Error::failure(
        "race pair " + describeAccess(Original, Pair.A) + " <-> " +
        describeAccess(Original, Pair.B) + " fails the plan audit: " + Why);
  }

  const Module &Original;
  const race::RaceReport &Report;
  const InstrumentationPlan &Plan;
  const Module &Instrumented;
  std::map<uint32_t, std::unique_ptr<MustHeldFlow>> Flows;
  std::map<uint32_t, OrigContext> Contexts;
};

} // namespace

AuditResult chimera::instrument::auditPlan(const Module &Original,
                                           const race::RaceReport &Report,
                                           const InstrumentationPlan &Plan,
                                           const Module &Instrumented) {
  return Auditor(Original, Report, Plan, Instrumented).run();
}
