//===- instrument/Planner.h - Weak-lock granularity planning ----*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the paper's granularity decision procedure (§2.2, §4, §5.3):
///
///  1. Race pairs whose functions were never concurrent in any profile
///     run share clique function-locks.
///  2. Each remaining pair gets its own weak-lock; each side is guarded
///     at loop granularity with a symbolic address range when bounds are
///     derivable (loops containing calls are skipped — the analysis is
///     intra-procedural), at unranged loop granularity when the loop
///     body is small, at basic-block granularity otherwise, demoted to
///     instruction granularity when the block contains a call.
///
/// The optimization toggles correspond to the configurations of the
/// paper's Figure 5 ("instr", "inst+func", "inst+loop",
/// "inst+bb+loop+func").
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_INSTRUMENT_PLANNER_H
#define CHIMERA_INSTRUMENT_PLANNER_H

#include "instrument/Plan.h"
#include "profile/CliqueAnalysis.h"
#include "profile/Profiler.h"
#include "race/RelayDetector.h"

namespace chimera {
namespace instrument {

struct PlannerOptions {
  bool UseFunctionLocks = true;
  bool UseLoopLocks = true;
  bool UseBasicBlockLocks = true;
  /// Static instruction-count threshold under which an imprecise-bounds
  /// loop is still guarded at loop granularity (paper §5.3's
  /// loop-body-threshold; we substitute a static size estimate for their
  /// profiled per-iteration cost).
  uint64_t LoopBodyThreshold = 48;

  static PlannerOptions naive() {
    return {false, false, false, 48};
  }
  static PlannerOptions functionOnly() {
    return {true, false, false, 48};
  }
  static PlannerOptions loopOnly() {
    return {false, true, false, 48};
  }
  static PlannerOptions full() { return {true, true, true, 48}; }
};

/// Produces the instrumentation plan for \p M.
///
/// With a registry attached, the bounds-analysis sub-phase (the symbolic
/// range derivation for loop-lock candidates) accumulates wall time
/// under "pipeline.bounds.wall_us"; \p Metrics may be null.
InstrumentationPlan planInstrumentation(const ir::Module &M,
                                        const race::RaceReport &Report,
                                        const profile::ProfileData &Profile,
                                        const PlannerOptions &Opts,
                                        obs::Registry *Metrics = nullptr);

} // namespace instrument
} // namespace chimera

#endif // CHIMERA_INSTRUMENT_PLANNER_H
