//===- instrument/LockOrderAuditor.cpp - Certificate gatekeeper ------------===//

#include "instrument/LockOrderAuditor.h"

#include "support/Hash.h"

#include <algorithm>
#include <map>

using namespace chimera;
using namespace chimera::instrument;
using namespace chimera::analysis;

static void addAffine(Hasher &H, const bounds::AffineExpr &E) {
  H.addWord(E.valid());
  if (!E.valid())
    return;
  H.addWord(static_cast<uint64_t>(E.constantValue()));
  for (const auto &[Reg, Coeff] : E.coeffs()) {
    H.addWord(Reg);
    H.addWord(static_cast<uint64_t>(Coeff));
  }
}

uint64_t instrument::planFingerprint(const InstrumentationPlan &Plan) {
  Hasher H;
  H.addWord(Plan.Locks.size());
  for (const ir::WeakLockMeta &Meta : Plan.Locks) {
    H.addWord(static_cast<uint64_t>(Meta.Granularity));
    H.addString(Meta.Name);
    H.addWord(Meta.HasRange);
  }
  H.addWord(Plan.Functions.size());
  for (const auto &[FuncId, FP] : Plan.Functions) {
    H.addWord(FuncId);
    H.addWord(FP.EntryLocks.size());
    for (uint32_t L : FP.EntryLocks)
      H.addWord(L);
    H.addWord(FP.Loops.size());
    for (const LoopGuard &G : FP.Loops) {
      H.addWord(G.LockId);
      H.addWord(G.Header);
      H.addWord(G.Preheader);
      for (ir::BlockId B : G.LoopBlocks)
        H.addWord(B);
      H.addWord(G.HasRange);
      H.addWord(G.LoList.size());
      for (const bounds::AffineExpr &E : G.LoList)
        addAffine(H, E);
      H.addWord(G.HiList.size());
      for (const bounds::AffineExpr &E : G.HiList)
        addAffine(H, E);
    }
    H.addWord(FP.Blocks.size());
    for (const BlockGuard &G : FP.Blocks) {
      H.addWord(G.LockId);
      H.addWord(G.Block);
    }
    H.addWord(FP.Instrs.size());
    for (const InstrGuard &G : FP.Instrs) {
      H.addWord(G.LockId);
      H.addWord(G.Ident);
    }
  }
  H.addWord(Plan.PairsTotal);
  H.addWord(Plan.PairsFunctionCovered);
  H.addWord(Plan.SidesLoopRanged);
  H.addWord(Plan.SidesLoopUnranged);
  H.addWord(Plan.SidesBasicBlock);
  H.addWord(Plan.SidesInstr);
  return H.digest();
}

void instrument::certifyLockOrder(InstrumentationPlan &Plan,
                                  const LockOrderGraph &Graph) {
  Plan.Certificate.Present = true;
  Plan.Certificate.Acyclic = Graph.acyclic();
  Plan.Certificate.PlanFingerprint = planFingerprint(Plan);
  Plan.Certificate.Edges = Graph.stats().Edges;
  Plan.Certificate.CyclesFound = Graph.stats().CyclesFeasible;
}

uint64_t instrument::repairLockOrder(
    InstrumentationPlan &Plan,
    const std::vector<std::vector<uint32_t>> &CyclicSets) {
  if (CyclicSets.empty())
    return 0;

  // Old lock id -> representative (minimal member of its cyclic set).
  std::map<uint32_t, uint32_t> Rep;
  uint64_t Merged = 0;
  for (const std::vector<uint32_t> &Set : CyclicSets) {
    uint32_t R = Set.front();
    std::string Name = "coalesced";
    for (uint32_t L : Set) {
      Rep[L] = R;
      if (L != R)
        ++Merged;
      if (L < Plan.Locks.size() && !Plan.Locks[L].Name.empty())
        Name += ":" + Plan.Locks[L].Name;
    }
    // The representative becomes one coarse Function-granularity lock:
    // unranged, acquired at entry, released around calls — trivially
    // acyclic against itself and auditable by PlanAuditor's coarsest-
    // guard-kind check (a merged lock keeping mixed granularities would
    // not be).
    Plan.Locks[R].Granularity = ir::WeakLockGranularity::Function;
    Plan.Locks[R].Name = Name;
    Plan.Locks[R].HasRange = false;
  }

  for (auto &[FuncId, FP] : Plan.Functions) {
    bool Touched = false;
    auto isMember = [&](uint32_t L) { return Rep.count(L) != 0; };

    std::vector<uint32_t> Entry;
    for (uint32_t L : FP.EntryLocks) {
      if (isMember(L)) {
        Touched = true;
        Entry.push_back(Rep[L]);
      } else {
        Entry.push_back(L);
      }
    }
    std::vector<LoopGuard> Loops;
    for (LoopGuard &G : FP.Loops) {
      if (isMember(G.LockId)) {
        Touched = true;
        Entry.push_back(Rep[G.LockId]);
      } else {
        Loops.push_back(std::move(G));
      }
    }
    std::vector<BlockGuard> Blocks;
    for (const BlockGuard &G : FP.Blocks) {
      if (isMember(G.LockId)) {
        Touched = true;
        Entry.push_back(Rep[G.LockId]);
      } else {
        Blocks.push_back(G);
      }
    }
    std::vector<InstrGuard> Instrs;
    for (const InstrGuard &G : FP.Instrs) {
      if (isMember(G.LockId)) {
        Touched = true;
        Entry.push_back(Rep[G.LockId]);
      } else {
        Instrs.push_back(G);
      }
    }
    if (!Touched)
      continue;
    std::sort(Entry.begin(), Entry.end());
    Entry.erase(std::unique(Entry.begin(), Entry.end()), Entry.end());
    FP.EntryLocks = std::move(Entry);
    FP.Loops = std::move(Loops);
    FP.Blocks = std::move(Blocks);
    FP.Instrs = std::move(Instrs);
  }

  // Compact lock ids: merged-away ids vanish from the table and every
  // surviving guard is renumbered, so downstream consumers (runtime
  // WeakLockManager sizing, logs) see a dense table.
  std::vector<uint32_t> NewId(Plan.Locks.size(), ~0u);
  std::vector<ir::WeakLockMeta> NewLocks;
  for (uint32_t L = 0; L != Plan.Locks.size(); ++L) {
    if (Rep.count(L) && Rep[L] != L)
      continue; // Merged away.
    NewId[L] = static_cast<uint32_t>(NewLocks.size());
    NewLocks.push_back(Plan.Locks[L]);
  }
  auto remap = [&](uint32_t L) { return NewId[Rep.count(L) ? Rep[L] : L]; };
  for (auto &[FuncId, FP] : Plan.Functions) {
    for (uint32_t &L : FP.EntryLocks)
      L = remap(L);
    std::sort(FP.EntryLocks.begin(), FP.EntryLocks.end());
    for (LoopGuard &G : FP.Loops)
      G.LockId = remap(G.LockId);
    for (BlockGuard &G : FP.Blocks)
      G.LockId = remap(G.LockId);
    for (InstrGuard &G : FP.Instrs)
      G.LockId = remap(G.LockId);
  }
  Plan.Locks = std::move(NewLocks);
  return Merged;
}

LockOrderAuditResult instrument::auditLockOrder(
    const ir::Module &Original, const InstrumentationPlan &Plan,
    const ir::Module &Instrumented, const CallGraph &CG,
    const MayHappenInParallel &Mhp, LockOrderMode Mode) {
  LockOrderAuditResult R;
  R.Failure = support::Error::success();
  if (Mode == LockOrderMode::Off)
    return R;

  LockOrderGraph Graph(Instrumented, Original, CG, Mhp);
  R.Stats = Graph.stats();
  R.Report = Graph.report();

  const LockOrderCertificate &Cert = Plan.Certificate;
  if (Cert.Present) {
    uint64_t Expect = planFingerprint(Plan);
    if (Cert.PlanFingerprint != Expect) {
      R.Failure = support::Error::failure(
          "lock-order audit: stale certificate (plan fingerprint " +
          std::to_string(Expect) + " != certified " +
          std::to_string(Cert.PlanFingerprint) +
          " — the plan was edited after certification)");
      return R;
    }
    if (Cert.Acyclic && !Graph.acyclic()) {
      R.Failure = support::Error::failure(
          "lock-order audit: forged certificate (claims acyclic, "
          "recomputation found " +
          std::to_string(Graph.feasibleCycles().size()) +
          " feasible cycle(s))\n" + R.Report);
      return R;
    }
  }
  if (Mode == LockOrderMode::Enforce && !Graph.acyclic()) {
    R.Failure = support::Error::failure(
        "lock-order enforce: plan has deadlock-potential cycles\n" +
        R.Report);
    return R;
  }
  R.Certified = Cert.Present && Cert.Acyclic && Graph.acyclic();
  return R;
}
