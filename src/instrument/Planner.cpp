//===- instrument/Planner.cpp - Weak-lock granularity planning -------------===//

#include "instrument/Planner.h"

#include "analysis/LoopInfo.h"
#include "bounds/BoundsAnalysis.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <memory>

using namespace chimera;
using namespace chimera::instrument;
using namespace chimera::ir;
using analysis::Loop;
using analysis::LoopInfo;

namespace {

/// Per-function analysis caches. BoundsUs accumulates the wall time of
/// the lazily built bounds analyses (null counter = no-op).
struct FuncContext {
  std::unique_ptr<LoopInfo> Loops;
  std::unique_ptr<bounds::BoundsAnalysis> Bounds;
  obs::Counter BoundsUs;
};

/// Outcome of choosing a guard for one side of a race pair.
enum class SideKind { LoopRanged, LoopUnranged, Block, Instr };

struct SideChoice {
  SideKind Kind = SideKind::Instr;
  const Loop *L = nullptr;
  bounds::AddressBounds Bounds;
  BlockId Block = NoBlock;
  InstId Ident = NoInst;
};

uint64_t staticLoopSize(const Function &F, const Loop *L) {
  uint64_t Size = 0;
  for (BlockId B : L->Blocks)
    Size += F.block(B).Insts.size();
  return Size;
}

bool blockContainsCall(const BasicBlock &BB) {
  for (const Instruction &Inst : BB.Insts)
    if (isCallLike(Inst.Op))
      return true;
  return false;
}

SideChoice chooseSide(const ir::Module &M, const Function &F,
                      FuncContext &Ctx, const race::RacyAccess &Access,
                      const PlannerOptions &Opts) {
  SideChoice Choice;
  Choice.Ident = Access.Ident;

  Function::InstPos Pos = F.findInstPos(Access.Ident);
  assert(Pos.valid() && "racy access not found in function");
  Choice.Block = Pos.Block;

  if (!Ctx.Loops)
    Ctx.Loops = std::make_unique<LoopInfo>(F);
  if (!Ctx.Bounds) {
    obs::ScopedTimer T(Ctx.BoundsUs);
    Ctx.Bounds = std::make_unique<bounds::BoundsAnalysis>(M, F, *Ctx.Loops);
  }

  if (Opts.UseLoopLocks) {
    // Outermost loop with precise-enough bounds wins (§5.3). Loops
    // containing calls are skipped: the bounds analysis is
    // intra-procedural.
    std::vector<const Loop *> Chain; // Innermost -> outermost.
    for (const Loop *L = Ctx.Loops->innermostLoop(Pos.Block); L;
         L = L->Parent)
      Chain.push_back(L);

    bool SawDegenerate = false;
    for (auto It = Chain.rbegin(); It != Chain.rend(); ++It) {
      const Loop *L = *It;
      if (L->ContainsCall || L->Preheader == NoBlock)
        continue;
      bounds::AddressBounds B = Ctx.Bounds->addressBounds(L, Access.Ident);
      if (!B.Valid)
        continue;
      // A degenerate range (the access touches one loop-invariant cell,
      // e.g. pfscan's `if (c > maxlen) maxlen = c`) means any loop-level
      // lock — ranged or not — would serialize the whole loop against
      // every peer touching that cell; the paper observes that
      // instruction granularity is the right choice there (§7.3).
      if (B.Lo == B.Hi) {
        SawDegenerate = true;
        continue;
      }
      Choice.Kind = SideKind::LoopRanged;
      Choice.L = L;
      Choice.Bounds = B;
      return Choice;
    }

    // Imprecise bounds everywhere: if the innermost eligible loop is
    // small, serializing it is cheaper than per-iteration locking —
    // unless the target is a single hot cell (see above).
    if (!SawDegenerate) {
      for (const Loop *L : Chain) {
        if (L->ContainsCall || L->Preheader == NoBlock)
          continue;
        if (staticLoopSize(F, L) <= Opts.LoopBodyThreshold) {
          Choice.Kind = SideKind::LoopUnranged;
          Choice.L = L;
          return Choice;
        }
        break; // Only the innermost eligible loop is considered.
      }
    }
  }

  if (Opts.UseBasicBlockLocks && !blockContainsCall(F.block(Pos.Block))) {
    Choice.Kind = SideKind::Block;
    return Choice;
  }

  Choice.Kind = SideKind::Instr;
  return Choice;
}

std::string lineOf(const Function &F, InstId Ident) {
  const Instruction *Inst = F.findInst(Ident);
  return Inst ? std::to_string(Inst->Loc.Line) : "?";
}

} // namespace

InstrumentationPlan chimera::instrument::planInstrumentation(
    const ir::Module &M, const race::RaceReport &Report,
    const profile::ProfileData &Profile, const PlannerOptions &Opts,
    obs::Registry *Metrics) {
  InstrumentationPlan Plan;
  Plan.PairsTotal = Report.Pairs.size();

  obs::Counter BoundsUs =
      obs::Scope(Metrics, "pipeline").sub("bounds").counter("wall_us");
  std::map<uint32_t, FuncContext> Contexts;

  // Step 1: clique function-locks for non-concurrent racy function pairs.
  //
  // Beyond the paper's non-concurrency test we require (a) that neither
  // function directly performs a blocking thread operation (spawn, join,
  // barrier, cond-wait) — holding a weak-lock across those invites
  // pathological revocation storms — and (b) that neither function was
  // self-concurrent in profiling, so a function-lock never serializes
  // parallel instances of a hot worker function ("...without
  // significantly compromising parallelism", §4).
  std::set<std::pair<uint32_t, uint32_t>> CoveredFuncPairs;
  if (Opts.UseFunctionLocks) {
    auto hasBlockingOp = [&](uint32_t FuncId) {
      for (const BasicBlock &BB : M.function(FuncId).Blocks)
        for (const Instruction &Inst : BB.Insts)
          switch (Inst.Op) {
          case Opcode::Spawn:
          case Opcode::Join:
          case Opcode::BarrierWait:
          case Opcode::CondWait:
            return true;
          default:
            break;
          }
      return false;
    };

    std::vector<uint32_t> RacyFuncs;
    for (const race::RacyAccess &A : Report.racyInstructions())
      RacyFuncs.push_back(A.FuncId);
    profile::ConcurrencyGraph CG(RacyFuncs, Profile);

    std::vector<std::pair<uint32_t, uint32_t>> Eligible;
    for (auto [A, B] : Report.racyFunctionPairs()) {
      if (hasBlockingOp(A) || hasBlockingOp(B))
        continue;
      if (!CG.selfNonConcurrent(A) || !CG.selfNonConcurrent(B))
        continue;
      Eligible.push_back({A, B});
    }

    profile::CliqueResult Cliques = assignFunctionLocks(Eligible, CG);
    CoveredFuncPairs = Cliques.Covered;

    for (const profile::FunctionLockPlan &FL : Cliques.Locks) {
      uint32_t LockId = static_cast<uint32_t>(Plan.Locks.size());
      WeakLockMeta Meta;
      Meta.Granularity = WeakLockGranularity::Function;
      Meta.Name = "func:";
      for (size_t I = 0; I != FL.CliqueFunctions.size(); ++I) {
        if (I)
          Meta.Name += "+";
        Meta.Name += M.function(FL.CliqueFunctions[I]).Name;
      }
      Plan.Locks.push_back(std::move(Meta));
      for (uint32_t F : FL.Acquirers)
        Plan.Functions[F].EntryLocks.push_back(LockId);
    }
    for (auto &[F, FP] : Plan.Functions) {
      std::sort(FP.EntryLocks.begin(), FP.EntryLocks.end());
      FP.EntryLocks.erase(
          std::unique(FP.EntryLocks.begin(), FP.EntryLocks.end()),
          FP.EntryLocks.end());
    }
  }

  // Step 2: per-pair locks for everything else.
  for (const race::RacePair &Pair : Report.Pairs) {
    uint32_t FA = Pair.A.FuncId, FB = Pair.B.FuncId;
    auto FuncPair = std::make_pair(std::min(FA, FB), std::max(FA, FB));
    if (CoveredFuncPairs.count(FuncPair)) {
      ++Plan.PairsFunctionCovered;
      continue;
    }

    uint32_t LockId = static_cast<uint32_t>(Plan.Locks.size());
    WeakLockMeta Meta;
    Meta.Granularity = WeakLockGranularity::Instr;
    Meta.Name = "pair:" + M.function(FA).Name + ":" +
                lineOf(M.function(FA), Pair.A.Ident) + "+" +
                M.function(FB).Name + ":" +
                lineOf(M.function(FB), Pair.B.Ident);
    Plan.Locks.push_back(std::move(Meta));

    // Both sides share LockId; a self-pair has one distinct side.
    std::vector<const race::RacyAccess *> Sides = {&Pair.A};
    if (Pair.B.FuncId != Pair.A.FuncId || Pair.B.Ident != Pair.A.Ident)
      Sides.push_back(&Pair.B);

    std::vector<SideChoice> Choices;
    for (const race::RacyAccess *Side : Sides) {
      FuncContext &Ctx = Contexts[Side->FuncId];
      Ctx.BoundsUs = BoundsUs;
      Choices.push_back(
          chooseSide(M, M.function(Side->FuncId), Ctx, *Side, Opts));
    }

    // Reconcile nesting between sides in the same function: the same
    // lock must not be acquired at a loop's preheader and again inside
    // that loop (recursive acquisition). Promote the inner side to the
    // outer loop; when its range is re-derivable over that loop it
    // joins the union, otherwise the merged guard becomes unranged.
    if (Choices.size() == 2 && Sides[0]->FuncId == Sides[1]->FuncId) {
      FuncContext &Ctx = Contexts[Sides[0]->FuncId];
      auto isLoopKind = [](const SideChoice &C) {
        return C.Kind == SideKind::LoopRanged ||
               C.Kind == SideKind::LoopUnranged;
      };
      auto promoteInto = [&](SideChoice &Inner, const Loop *Outer) {
        bounds::AddressBounds B =
            Ctx.Bounds->addressBounds(Outer, Inner.Ident);
        Inner.L = Outer;
        Inner.Kind =
            B.Valid ? SideKind::LoopRanged : SideKind::LoopUnranged;
        Inner.Bounds = B;
      };
      for (int I = 0; I != 2; ++I) {
        SideChoice &Outer = Choices[I];
        SideChoice &Inner = Choices[1 - I];
        if (!isLoopKind(Outer))
          continue;
        if (isLoopKind(Inner)) {
          if (Inner.L != Outer.L && Outer.L->contains(Inner.L))
            promoteInto(Inner, Outer.L);
        } else if (Outer.L->contains(Inner.Block)) {
          promoteInto(Inner, Outer.L);
        }
      }
    }

    WeakLockGranularity Coarsest = WeakLockGranularity::Instr;
    for (size_t SideIdx = 0; SideIdx != Sides.size(); ++SideIdx) {
      const race::RacyAccess *Side = Sides[SideIdx];
      SideChoice &Choice = Choices[SideIdx];
      FunctionPlan &FP = Plan.Functions[Side->FuncId];

      switch (Choice.Kind) {
      case SideKind::LoopRanged:
      case SideKind::LoopUnranged: {
        LoopGuard Guard;
        Guard.LockId = LockId;
        Guard.Header = Choice.L->Header;
        Guard.Preheader = Choice.L->Preheader;
        Guard.LoopBlocks = Choice.L->Blocks;
        Guard.HasRange = Choice.Kind == SideKind::LoopRanged;
        if (Guard.HasRange) {
          Guard.LoList.push_back(Choice.Bounds.Lo);
          Guard.HiList.push_back(Choice.Bounds.Hi);
          ++Plan.SidesLoopRanged;
        } else {
          ++Plan.SidesLoopUnranged;
        }

        // Both sides of a pair may pick the same loop: one acquisition
        // protecting the union of the ranges. An unranged side makes
        // the merged guard unranged.
        bool Merged = false;
        for (LoopGuard &Existing : FP.Loops) {
          if (Existing.LockId == LockId && Existing.Header == Guard.Header) {
            if (!Existing.HasRange || !Guard.HasRange) {
              Existing.HasRange = false;
              Existing.LoList.clear();
              Existing.HiList.clear();
            } else {
              Existing.LoList.insert(Existing.LoList.end(),
                                     Guard.LoList.begin(),
                                     Guard.LoList.end());
              Existing.HiList.insert(Existing.HiList.end(),
                                     Guard.HiList.begin(),
                                     Guard.HiList.end());
            }
            Merged = true;
            break;
          }
        }
        if (!Merged)
          FP.Loops.push_back(std::move(Guard));
        Coarsest = std::min(Coarsest, WeakLockGranularity::Loop);
        break;
      }
      case SideKind::Block: {
        bool Exists = false;
        for (const BlockGuard &G : FP.Blocks)
          if (G.LockId == LockId && G.Block == Choice.Block)
            Exists = true;
        if (!Exists)
          FP.Blocks.push_back({LockId, Choice.Block});
        ++Plan.SidesBasicBlock;
        Coarsest = std::min(Coarsest, WeakLockGranularity::BasicBlock);
        break;
      }
      case SideKind::Instr: {
        bool Exists = false;
        for (const InstrGuard &G : FP.Instrs)
          if (G.LockId == LockId && G.Ident == Choice.Ident)
            Exists = true;
        if (!Exists)
          FP.Instrs.push_back({LockId, Choice.Ident});
        ++Plan.SidesInstr;
        break;
      }
      }
    }
    Plan.Locks[LockId].Granularity = Coarsest;
    Plan.Locks[LockId].HasRange = false;
    for (const auto &[F, FP] : Plan.Functions)
      for (const LoopGuard &G : FP.Loops)
        if (G.LockId == LockId && G.HasRange)
          Plan.Locks[LockId].HasRange = true;
  }

  // Drop empty per-function plans (e.g. created by dedup passes).
  for (auto It = Plan.Functions.begin(); It != Plan.Functions.end();) {
    if (It->second.empty())
      It = Plan.Functions.erase(It);
    else
      ++It;
  }
  return Plan;
}
