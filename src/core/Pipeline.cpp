//===- core/Pipeline.cpp - End-to-end Chimera pipeline ---------------------===//

#include "core/Pipeline.h"

#include "codegen/CodeGen.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "profile/Profiler.h"
#include "race/SummaryCache.h"
#include "replay/LogWriter.h"
#include "service/ArtifactCache.h"
#include "support/Hash.h"

#include <cassert>
#include <type_traits>

using namespace chimera;
using namespace chimera::core;

ChimeraPipeline::Analyses::Analyses(const ir::Module &M)
    : CG(M), PT(M, analysis::PointsToFlavor::Andersen), Escape(M, PT) {}

support::Expected<std::unique_ptr<ChimeraPipeline>>
ChimeraPipeline::create(PipelineRequest Request) {
  // Failures carry the request's Tag so a batch of concurrent sessions
  // yields attributable errors.
  // Copied, not referenced: Request.Tag is moved into the pipeline
  // below, and failures after that point must still carry it.
  const std::string Tag = Request.Tag;
  auto Tagged = [&Tag](support::Error E) -> support::Error {
    return Tag.empty() ? E : E.context("request '" + Tag + "'");
  };

  if (support::Error E = Request.Config.validate())
    return Tagged(E.context("invalid pipeline config"));

  auto P = std::unique_ptr<ChimeraPipeline>(new ChimeraPipeline());
  P->Config = std::move(Request.Config);
  P->Tag = std::move(Request.Tag);
  if (P->Config.Observability != obs::ObsMode::Off)
    P->ObsRegistry = std::make_unique<obs::Registry>();
  obs::Registry *Reg = P->ObsRegistry.get();
  obs::TraceRecorder *Trace = Reg ? P->Config.Trace : nullptr;

  auto Eval = compileMiniCEx(Request.Eval, P->Config.Name, Reg, Trace);
  if (!Eval)
    return Tagged(Eval.error());
  P->EvalModule = Eval.take();

  if (Request.Profile == Request.Eval || Request.Profile.empty()) {
    P->ProfileModule = P->EvalModule->clone();
  } else {
    auto Prof = compileMiniCEx(Request.Profile, P->Config.Name + ".profile",
                               Reg, Trace);
    if (!Prof)
      return Tagged(Prof.error().context("profile source"));
    P->ProfileModule = Prof.take();
    // Profile and eval sources must have the same IR shape (they may
    // differ only in constants) so that function ids transfer.
    if (P->ProfileModule->Functions.size() !=
            P->EvalModule->Functions.size() ||
        P->ProfileModule->totalInstructions() !=
            P->EvalModule->totalInstructions())
      return Tagged(support::Error::failure(
          "profile source has a different shape than eval source"));
  }

  std::vector<std::string> Problems = ir::verifyModule(*P->EvalModule);
  if (!Problems.empty()) {
    std::string Msg = "IR verification failed:";
    for (const std::string &Problem : Problems)
      Msg += "\n  " + Problem;
    return Tagged(support::Error::failure(std::move(Msg)));
  }
  return P;
}

support::Expected<obs::Snapshot> ChimeraPipeline::metrics() const {
  if (!ObsRegistry)
    return support::Error::failure(
        "pipeline observability is off; enable it with "
        "PipelineConfig::Observability = obs::ObsMode::Sampled (or Full) "
        "before building the pipeline, or pass --obs=sampled|full on the "
        "command line");
  return ObsRegistry->snapshot();
}

obs::Counter ChimeraPipeline::stageCounter(const char *Stage) const {
  return obs::Scope(ObsRegistry.get(), "pipeline")
      .sub(Stage)
      .counter("wall_us");
}

void ChimeraPipeline::applyObs(rt::MachineOptions &MO) const {
  MO.Metrics = ObsRegistry.get();
  MO.Trace = trace();
}

support::ThreadPool &ChimeraPipeline::pool() const {
  // Built on first use so a pipeline that only compiles never spawns
  // threads.
  return Pool.get([&] {
    return std::make_unique<support::ThreadPool>(
        Config.effectiveAnalysisJobs());
  });
}

const ChimeraPipeline::Analyses &ChimeraPipeline::analyses() const {
  return Analysis.get([&] {
    obs::ScopedTimer T(stageCounter("analyses"));
    CHIMERA_TRACE_SPAN(trace(), "pipeline.analyses");
    return std::make_unique<Analyses>(*EvalModule);
  });
}

const analysis::MayHappenInParallel &ChimeraPipeline::mhp() const {
  return MhpCell.get([&] {
    const Analyses &A = analyses();
    obs::ScopedTimer T(stageCounter("mhp"));
    CHIMERA_TRACE_SPAN(trace(), "pipeline.mhp");
    return std::make_unique<analysis::MayHappenInParallel>(
        *EvalModule, A.CG, A.PT, Config.Mhp);
  });
}

const race::RaceReport &ChimeraPipeline::raceReport() const {
  return Races.get([&] {
    const Analyses &A = analyses();
    const analysis::MayHappenInParallel &Mhp = mhp();
    obs::ScopedTimer T(stageCounter("relay"));
    CHIMERA_TRACE_SPAN(trace(), "pipeline.relay");
    race::SummaryCache *Cache =
        Config.UseSummaryCache ? &race::SummaryCache::global() : nullptr;
    race::RelayDetector Detector(*EvalModule, A.CG, A.PT, A.Escape, &pool(),
                                 Cache, &Mhp);
    auto Report = std::make_unique<race::RaceReport>(Detector.detect());
    // Published here (not in an accessor) so one registry snapshot after
    // any instrumented run already carries the MHP precision numbers.
    obs::Scope PipeScope(ObsRegistry.get(), "pipeline");
    Report->publishTo(PipeScope.sub("mhp"));
    if (Cache)
      Cache->publishTo(PipeScope.sub("relay").sub("cache"));
    return Report;
  });
}

const profile::ProfileData &ChimeraPipeline::profileData() const {
  return Profile.get([&] {
    obs::ScopedTimer T(stageCounter("profile"));
    CHIMERA_TRACE_SPAN(trace(), "pipeline.profile");
    // Vary both the input seed and the core count across runs (the
    // paper profiles over "a variety of inputs"; machine diversity
    // makes the observed-concurrency union more robust). Runs are
    // independent — each owns its machine, observer, and seed — so they
    // execute concurrently; samples merge in seed (run-index) order so
    // the result is identical for any worker count.
    const unsigned CoreVariants[] = {Config.ProfileCores, 2, 4, 8};
    std::vector<profile::ProfileData> Samples(Config.ProfileRuns);
    pool().parallelFor(
        Config.ProfileRuns, [&](size_t Run) {
          profile::ConcurrencyProfiler Prof;
          rt::MachineOptions MO;
          MO.Mode = rt::ExecMode::Native;
          MO.NumCores = CoreVariants[Run % 4];
          MO.Seed = Config.ProfileSeedBase + Run;
          MO.Costs = Config.Costs;
          // Execution-only schedule knobs (DispatchBatch, Quantum*)
          // deliberately stay at the MachineOptions defaults here:
          // profiling is a PLANNER input, keyed by planCacheKey, which
          // excludes those knobs so one plan serves every run
          // configuration. Letting them leak in makes the plan — and
          // with it the module's weak-lock table sizes — vary with the
          // run schedule, so a log recorded under one quantum cannot
          // even be opened for replay under another, and a warm
          // artifact cache can serve a plan cold compute would not
          // produce. Found by the stress campaign's replay-perturbed
          // oracle (tests/stress_test.cpp pins the repro).
          MO.Observer = &Prof;
          rt::Machine Machine(*ProfileModule, MO);
          rt::ExecutionResult Result = Machine.run();
          assert(Result.Ok && "profile run failed");
          (void)Result;
          Samples[Run] = Prof.finish();
        });
    auto Data = std::make_unique<profile::ProfileData>();
    for (const profile::ProfileData &Sample : Samples)
      Data->merge(Sample);
    return Data;
  });
}

uint64_t ChimeraPipeline::planCacheKey() const {
  // The cost model is all uint64_t fields, so its object representation
  // is exactly its value — safe to hash as raw bytes. If a non-integer
  // field is ever added, hash fields explicitly instead.
  static_assert(std::has_unique_object_representations_v<rt::CostModel>,
                "CostModel gained padding or non-integer fields; "
                "planCacheKey must hash its fields explicitly");
  Hasher H;
  H.addString(ir::printModule(*EvalModule));
  H.addString(ir::printModule(*ProfileModule));
  H.addWord(Config.ProfileRuns);
  H.addWord(Config.ProfileCores);
  H.addWord(Config.ProfileSeedBase);
  H.addBytes(&Config.Costs, sizeof(Config.Costs));
  H.addWord(static_cast<uint64_t>(Config.Mhp));
  H.addWord(Config.Planner.UseFunctionLocks);
  H.addWord(Config.Planner.UseLoopLocks);
  H.addWord(Config.Planner.UseBasicBlockLocks);
  H.addWord(Config.Planner.LoopBodyThreshold);
  H.addWord(static_cast<uint64_t>(Config.LockOrder));
  return H.digest();
}

std::unique_ptr<instrument::InstrumentationPlan>
ChimeraPipeline::planFromArtifacts(uint64_t Key) const {
  std::vector<uint8_t> Bytes;
  if (!Config.Artifacts->lookup(service::ArtifactKind::Plan, Key, Bytes))
    return nullptr;
  replay::ByteCursor C(Bytes);
  auto P = std::make_unique<instrument::InstrumentationPlan>();
  // Structural damage (or a certificate whose fingerprint does not
  // match the decoded content) degrades to a miss — the planner runs
  // and overwrites nothing (first writer wins keeps load-time bytes).
  if (!service::decodePlan(C, *P) || !C.atEnd())
    return nullptr;
  return P;
}

const instrument::InstrumentationPlan &ChimeraPipeline::plan() const {
  return Plan.get([&]() -> std::unique_ptr<instrument::InstrumentationPlan> {
    // Persistent plan cache: every input to the stages below is folded
    // into the key, so a decoded hit is bit-identical to running them.
    // Skipped entirely while a test corruptor is installed — a forged
    // plan must never be persisted or satisfied from persistence.
    const uint64_t CacheKey =
        Config.Artifacts && !PlanCorruptor ? planCacheKey() : 0;
    if (Config.Artifacts && !PlanCorruptor) {
      if (auto Cached = planFromArtifacts(CacheKey)) {
        if (ObsRegistry)
          obs::Scope(ObsRegistry.get(), "pipeline")
              .sub("plan.cache")
              .counter("hits")
              .inc();
        return Cached;
      }
      if (ObsRegistry)
        obs::Scope(ObsRegistry.get(), "pipeline")
            .sub("plan.cache")
            .counter("misses")
            .inc();
    }
    const race::RaceReport &Report = raceReport();
    // Without the function-lock optimization the planner ignores the
    // profile, so don't pay for profile runs.
    profile::ProfileData Empty;
    const profile::ProfileData &Prof =
        Config.Planner.UseFunctionLocks ? profileData() : Empty;
    obs::ScopedTimer T(stageCounter("plan"));
    CHIMERA_TRACE_SPAN(trace(), "pipeline.plan");
    auto P = std::make_unique<instrument::InstrumentationPlan>(
        instrument::planInstrumentation(*EvalModule, Report, Prof,
                                        Config.Planner, ObsRegistry.get()));
    if (Config.LockOrder != analysis::LockOrderMode::Off)
      certifyOrRepair(*P);
    // The corruptor runs AFTER certification, so tests can both forge
    // certificates and make a freshly stamped one stale by editing the
    // plan out from under it.
    if (PlanCorruptor) {
      PlanCorruptor(*P);
    } else if (Config.Artifacts) {
      std::vector<uint8_t> Bytes;
      service::encodePlan(*P, Bytes);
      Config.Artifacts->insert(service::ArtifactKind::Plan, CacheKey,
                               std::move(Bytes));
    }
    return P;
  });
}

/// Runs the lock-order analysis over \p P (instrumenting a scratch
/// module clone — the cached instrumented module does not exist yet at
/// plan time), repairs cyclic plans under Enforce by coalescing each
/// cyclic lock set into one Function-granularity lock, re-analyzes
/// until acyclic, and stamps the certificate. Under Audit a cyclic plan
/// is certified as cyclic: the report carries the witness chains and
/// executions still run (with polling).
void ChimeraPipeline::certifyOrRepair(
    instrument::InstrumentationPlan &P) const {
  const Analyses &A = analyses();
  const analysis::MayHappenInParallel &Mhp = mhp();
  obs::ScopedTimer T(stageCounter("lockorder"));
  CHIMERA_TRACE_SPAN(trace(), "pipeline.lockorder");

  uint64_t Coalesced = 0, Rounds = 0;
  uint64_t FirstCycles = 0, FirstEdges = 0;
  // Each repair round strictly shrinks the set of locks carrying
  // non-entry guards, so the loop terminates; the cap is a backstop.
  const uint64_t MaxRounds = P.Locks.size() + 2;
  for (;;) {
    std::unique_ptr<ir::Module> IM =
        instrument::instrumentModule(*EvalModule, P);
    analysis::LockOrderGraph G(*IM, *EvalModule, A.CG, Mhp);
    if (Rounds == 0) {
      FirstCycles = G.stats().CyclesFeasible;
      FirstEdges = G.stats().Edges;
    }
    if (G.acyclic() ||
        Config.LockOrder != analysis::LockOrderMode::Enforce ||
        Rounds >= MaxRounds) {
      instrument::certifyLockOrder(P, G);
      break;
    }
    Coalesced += instrument::repairLockOrder(P, G.cyclicLockSets());
    ++Rounds;
  }
  // Keep the pre-repair findings in the certificate (certifyLockOrder
  // records the final graph, which is cycle-free after a repair).
  P.Certificate.CyclesFound = FirstCycles;
  P.Certificate.CoalescedLocks = Coalesced;
  P.Certificate.RepairRounds = Rounds;

  if (ObsRegistry) {
    obs::Scope LO =
        obs::Scope(ObsRegistry.get(), "pipeline").sub("lockorder");
    LO.counter("edges").add(FirstEdges);
    LO.counter("cycles_found").add(FirstCycles);
    LO.counter("locks_coalesced").add(Coalesced);
    LO.counter("repair_rounds").add(Rounds);
    if (P.Certificate.Acyclic)
      LO.counter("certified_plans").inc();
  }
}

const ir::Module &ChimeraPipeline::instrumentedModule() const {
  return Instrumented.get([&] {
    const instrument::InstrumentationPlan &P = plan();
    obs::ScopedTimer T(stageCounter("instrument"));
    CHIMERA_TRACE_SPAN(trace(), "pipeline.instrument");
    std::unique_ptr<ir::Module> Module =
        instrument::instrumentModule(*EvalModule, P);
    std::vector<std::string> Problems = ir::verifyModule(*Module);
    assert(Problems.empty() && "instrumented module failed verification");
    (void)Problems;
    return Module;
  });
}

const instrument::AuditResult &ChimeraPipeline::planAudit() const {
  return Audit.get([&] {
    const race::RaceReport &Report = raceReport();
    const instrument::InstrumentationPlan &P = plan();
    const ir::Module &IM = instrumentedModule();
    obs::ScopedTimer T(stageCounter("audit"));
    CHIMERA_TRACE_SPAN(trace(), "pipeline.audit");
    return std::make_unique<instrument::AuditResult>(
        instrument::auditPlan(*EvalModule, Report, P, IM));
  });
}

const instrument::LockOrderAuditResult &
ChimeraPipeline::lockOrderAudit() const {
  return LockOrderCell.get([&] {
    const instrument::InstrumentationPlan &P = plan();
    const ir::Module &IM = instrumentedModule();
    const Analyses &A = analyses();
    const analysis::MayHappenInParallel &Mhp = mhp();
    obs::ScopedTimer T(stageCounter("lockorder_audit"));
    CHIMERA_TRACE_SPAN(trace(), "pipeline.lockorder_audit");
    return std::make_unique<instrument::LockOrderAuditResult>(
        instrument::auditLockOrder(*EvalModule, P, IM, A.CG, Mhp,
                                   Config.LockOrder));
  });
}

void ChimeraPipeline::setPlannerOptions(
    const instrument::PlannerOptions &Opts) {
  Config.Planner = Opts;
  Plan.reset();
  Instrumented.reset();
  Audit.reset();
  LockOrderCell.reset();
}

void ChimeraPipeline::setMhpMode(analysis::MhpMode Mode) {
  Config.Mhp = Mode;
  MhpCell.reset();
  Races.reset();
  Plan.reset();
  Instrumented.reset();
  Audit.reset();
  LockOrderCell.reset();
}

void ChimeraPipeline::setLockOrderMode(analysis::LockOrderMode Mode) {
  Config.LockOrder = Mode;
  Plan.reset();
  Instrumented.reset();
  Audit.reset();
  LockOrderCell.reset();
}

void ChimeraPipeline::corruptPlanForTest(
    std::function<void(instrument::InstrumentationPlan &)> Fn) {
  PlanCorruptor = std::move(Fn);
  Plan.reset();
  Instrumented.reset();
  Audit.reset();
  LockOrderCell.reset();
}

support::Error ChimeraPipeline::ensureAuditedPlan() {
  if (Config.AuditPlan) {
    const instrument::AuditResult &Result = planAudit();
    if (!Result.ok())
      return Result.Failure.context("plan audit failed");
  }
  return ensureLockOrder();
}

support::Error ChimeraPipeline::ensureLockOrder() {
  if (Config.LockOrder == analysis::LockOrderMode::Off)
    return support::Error::success();
  const instrument::LockOrderAuditResult &Result = lockOrderAudit();
  if (!Result.ok())
    return Result.Failure.context("lock-order audit failed");
  return support::Error::success();
}

void ChimeraPipeline::applyLockOrder(rt::MachineOptions &MO) {
  MO.ForceWeakPolling = Config.ForceWeakPolling;
  // Elide only on a validated certificate: the audit stage already ran
  // (ensureAuditedPlan precedes every instrumented execution), so
  // Certified here means the recomputed graph agrees with the stamp.
  MO.ElideWeakPolling = Config.LockOrder != analysis::LockOrderMode::Off &&
                        lockOrderAudit().Certified;
}

rt::ExecutionResult ChimeraPipeline::runOriginalNative(
    uint64_t Seed, rt::ExecutionObserver *Obs) {
  rt::MachineOptions MO;
  MO.Mode = rt::ExecMode::Native;
  MO.NumCores = Config.NumCores;
  MO.Seed = Seed;
  MO.Costs = Config.Costs;
  MO.DispatchBatch = Config.DispatchBatch;
  MO.QuantumMin = Config.QuantumMin;
  MO.QuantumMax = Config.QuantumMax;
  MO.Observer = Obs;
  applyObs(MO);
  rt::Machine Machine(*EvalModule, MO);
  return Machine.run();
}

/// An instrumented execution under a plan that fails its audit is
/// meaningless (the weak-locks may not cover the races the log format
/// assumes are covered), so the failure becomes the run's result.
static rt::ExecutionResult auditFailure(const support::Error &E) {
  rt::ExecutionResult Result;
  Result.Ok = false;
  Result.Error = E.message();
  return Result;
}

rt::ExecutionResult ChimeraPipeline::runInstrumentedNative(uint64_t Seed) {
  if (support::Error E = ensureAuditedPlan())
    return auditFailure(E);
  rt::MachineOptions MO;
  MO.Mode = rt::ExecMode::Native;
  MO.NumCores = Config.NumCores;
  MO.Seed = Seed;
  MO.Costs = Config.Costs;
  MO.DispatchBatch = Config.DispatchBatch;
  MO.QuantumMin = Config.QuantumMin;
  MO.QuantumMax = Config.QuantumMax;
  MO.WeakLockTimeout = Config.WeakLockTimeout;
  applyLockOrder(MO);
  applyObs(MO);
  rt::Machine Machine(instrumentedModule(), MO);
  return Machine.run();
}

rt::ExecutionResult ChimeraPipeline::record(uint64_t Seed,
                                            rt::ExecutionObserver *Obs) {
  if (support::Error E = ensureAuditedPlan())
    return auditFailure(E);
  rt::MachineOptions MO;
  MO.Mode = rt::ExecMode::Record;
  MO.NumCores = Config.NumCores;
  MO.Seed = Seed;
  MO.Costs = Config.Costs;
  MO.DispatchBatch = Config.DispatchBatch;
  MO.QuantumMin = Config.QuantumMin;
  MO.QuantumMax = Config.QuantumMax;
  MO.WeakLockTimeout = Config.WeakLockTimeout;
  MO.Observer = Obs;
  applyLockOrder(MO);
  applyObs(MO);
  rt::Machine Machine(instrumentedModule(), MO);
  return Machine.run();
}

rt::ExecutionResult ChimeraPipeline::replay(const rt::ExecutionLog &Log,
                                            rt::ExecutionObserver *Obs) {
  if (support::Error E = ensureAuditedPlan())
    return auditFailure(E);
  rt::MachineOptions MO;
  MO.Mode = rt::ExecMode::Replay;
  MO.NumCores = Config.NumCores;
  MO.Seed = 0xdeadbeef; // Replay must not depend on the seed.
  MO.Costs = Config.Costs;
  MO.DispatchBatch = Config.DispatchBatch;
  MO.QuantumMin = Config.QuantumMin;
  MO.QuantumMax = Config.QuantumMax;
  MO.WeakLockTimeout = Config.WeakLockTimeout;
  MO.ReplayLog = &Log;
  MO.Observer = Obs;
  applyObs(MO);
  rt::Machine Machine(instrumentedModule(), MO);
  return Machine.run();
}

uint64_t ChimeraPipeline::workloadFingerprint() const {
  const ir::Module &M = instrumentedModule();
  Hasher H;
  H.addString(M.Name);
  H.addWord(M.Functions.size());
  H.addWord(M.totalInstructions());
  H.addWord(M.Syncs.size());
  H.addWord(M.WeakLocks.size());
  H.addWord(M.globalSegmentWords());
  H.addWord(Config.NumCores);
  return H.digest();
}

support::Expected<rt::ExecutionResult>
ChimeraPipeline::recordStreamed(const std::string &Path, uint64_t Seed,
                                rt::ExecutionObserver *Obs) {
  if (support::Error E = ensureAuditedPlan())
    return E.context("plan audit failed");

  replay::LogWriter::Options WO;
  WO.SegmentBytes = Config.SegmentBytes;
  WO.Fingerprint = workloadFingerprint();
  WO.Pool = &pool();
  WO.Metrics = ObsRegistry.get();
  replay::LogWriter Writer(Path, WO);

  rt::MachineOptions MO;
  MO.Mode = rt::ExecMode::Record;
  MO.NumCores = Config.NumCores;
  MO.Seed = Seed;
  MO.Costs = Config.Costs;
  MO.DispatchBatch = Config.DispatchBatch;
  MO.QuantumMin = Config.QuantumMin;
  MO.QuantumMax = Config.QuantumMax;
  MO.WeakLockTimeout = Config.WeakLockTimeout;
  MO.Observer = Obs;
  MO.LogSink = &Writer;
  MO.CheckpointEvery = Config.CheckpointEvery;
  applyLockOrder(MO);
  applyObs(MO);
  rt::Machine Machine(instrumentedModule(), MO);
  rt::ExecutionResult Result = Machine.run();
  if (support::Error E = Writer.finish())
    return E.context("writing " + Path);
  if (!Result.Ok)
    return support::Error::failure("record run failed: " + Result.Error);
  return Result;
}

rt::ExecutionResult
ChimeraPipeline::replayResumed(const rt::ExecutionLog &Log,
                               const rt::MachineSnapshot &Snap,
                               rt::ExecutionObserver *Obs) {
  if (support::Error E = ensureAuditedPlan())
    return auditFailure(E);
  rt::MachineOptions MO;
  MO.Mode = rt::ExecMode::Replay;
  MO.NumCores = Config.NumCores;
  MO.Seed = 0xdeadbeef; // Replay must not depend on the seed.
  MO.Costs = Config.Costs;
  MO.DispatchBatch = Config.DispatchBatch;
  MO.QuantumMin = Config.QuantumMin;
  MO.QuantumMax = Config.QuantumMax;
  MO.WeakLockTimeout = Config.WeakLockTimeout;
  MO.ReplayLog = &Log;
  MO.ResumeFrom = &Snap;
  MO.Observer = Obs;
  applyObs(MO);
  rt::Machine Machine(instrumentedModule(), MO);
  return Machine.run();
}

replay::ParallelReplayer::Result
ChimeraPipeline::replayParallel(replay::LogReader &Reader, unsigned Jobs) {
  if (support::Error E = ensureAuditedPlan()) {
    replay::ParallelReplayer::Result Res;
    Res.Exec = auditFailure(E);
    return Res;
  }
  replay::ParallelReplayer::Options PO;
  PO.Jobs = Jobs ? Jobs : Config.ReplayJobs;
  PO.Pool = &pool();
  PO.Metrics = ObsRegistry.get();
  PO.Machine.NumCores = Config.NumCores;
  PO.Machine.Costs = Config.Costs;
  PO.Machine.DispatchBatch = Config.DispatchBatch;
  PO.Machine.QuantumMin = Config.QuantumMin;
  PO.Machine.QuantumMax = Config.QuantumMax;
  PO.Machine.WeakLockTimeout = Config.WeakLockTimeout;
  return replay::ParallelReplayer::replay(instrumentedModule(), Reader, PO);
}

ChimeraPipeline::RecordReplayOutcome ChimeraPipeline::recordAndReplay(
    uint64_t Seed) {
  RecordReplayOutcome Outcome;
  Outcome.Record = record(Seed);
  if (!Outcome.Record.Ok)
    return Outcome;
  Outcome.Replay = replay(Outcome.Record.Log);
  Outcome.Deterministic = Outcome.Replay.Ok &&
                          Outcome.Replay.StateHash ==
                              Outcome.Record.StateHash;
  return Outcome;
}

uint64_t ChimeraPipeline::dynamicRaceCount(uint64_t Seed) {
  race::DynamicDetector Detector;
  rt::ExecutionResult Result = record(Seed, &Detector);
  assert(Result.Ok && "dynamic race check run failed");
  (void)Result;
  return Detector.raceCount();
}
