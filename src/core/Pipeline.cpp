//===- core/Pipeline.cpp - End-to-end Chimera pipeline ---------------------===//

#include "core/Pipeline.h"

#include "codegen/CodeGen.h"
#include "ir/Verifier.h"
#include "profile/Profiler.h"

#include <cassert>

using namespace chimera;
using namespace chimera::core;

std::unique_ptr<ChimeraPipeline> ChimeraPipeline::fromSource(
    const std::string &EvalSource, const std::string &ProfileSource,
    PipelineConfig Config, std::string *Error) {
  auto P = std::unique_ptr<ChimeraPipeline>(new ChimeraPipeline());
  P->Config = std::move(Config);

  P->EvalModule = compileMiniC(EvalSource, P->Config.Name, Error);
  if (!P->EvalModule)
    return nullptr;

  if (ProfileSource == EvalSource || ProfileSource.empty()) {
    P->ProfileModule = P->EvalModule->clone();
  } else {
    P->ProfileModule =
        compileMiniC(ProfileSource, P->Config.Name + ".profile", Error);
    if (!P->ProfileModule)
      return nullptr;
    // Profile and eval sources must have the same IR shape (they may
    // differ only in constants) so that function ids transfer.
    if (P->ProfileModule->Functions.size() !=
            P->EvalModule->Functions.size() ||
        P->ProfileModule->totalInstructions() !=
            P->EvalModule->totalInstructions()) {
      if (Error)
        *Error = "profile source has a different shape than eval source";
      return nullptr;
    }
  }

  std::vector<std::string> Problems = ir::verifyModule(*P->EvalModule);
  if (!Problems.empty()) {
    if (Error) {
      *Error = "IR verification failed:";
      for (const std::string &Problem : Problems)
        *Error += "\n  " + Problem;
    }
    return nullptr;
  }
  return P;
}

void ChimeraPipeline::computeAnalyses() {
  if (CG)
    return;
  CG = std::make_unique<analysis::CallGraph>(*EvalModule);
  PT = std::make_unique<analysis::PointsTo>(*EvalModule,
                                            analysis::PointsToFlavor::Andersen);
  Escape = std::make_unique<analysis::EscapeAnalysis>(*EvalModule, *PT);
}

const race::RaceReport &ChimeraPipeline::raceReport() {
  if (!Races) {
    computeAnalyses();
    race::RelayDetector Detector(*EvalModule, *CG, *PT, *Escape);
    Races = std::make_unique<race::RaceReport>(Detector.detect());
  }
  return *Races;
}

const profile::ProfileData &ChimeraPipeline::profileData() {
  if (!Profile) {
    Profile = std::make_unique<profile::ProfileData>();
    // Vary both the input seed and the core count across runs (the
    // paper profiles over "a variety of inputs"; machine diversity
    // makes the observed-concurrency union more robust).
    const unsigned CoreVariants[] = {Config.ProfileCores, 2, 4, 8};
    for (unsigned Run = 0; Run != Config.ProfileRuns; ++Run) {
      profile::ConcurrencyProfiler Prof;
      rt::MachineOptions MO;
      MO.Mode = rt::ExecMode::Native;
      MO.NumCores = CoreVariants[Run % 4];
      MO.Seed = Config.ProfileSeedBase + Run;
      MO.Costs = Config.Costs;
      MO.Observer = &Prof;
      rt::Machine Machine(*ProfileModule, MO);
      rt::ExecutionResult Result = Machine.run();
      assert(Result.Ok && "profile run failed");
      (void)Result;
      Profile->merge(Prof.finish());
    }
  }
  return *Profile;
}

const instrument::InstrumentationPlan &ChimeraPipeline::plan() {
  if (!Plan) {
    const race::RaceReport &Report = raceReport();
    // Without the function-lock optimization the planner ignores the
    // profile, so don't pay for profile runs.
    profile::ProfileData Empty;
    const profile::ProfileData &Prof =
        Config.Planner.UseFunctionLocks ? profileData() : Empty;
    Plan = std::make_unique<instrument::InstrumentationPlan>(
        instrument::planInstrumentation(*EvalModule, Report, Prof,
                                        Config.Planner));
  }
  return *Plan;
}

const ir::Module &ChimeraPipeline::instrumentedModule() {
  if (!Instrumented) {
    Instrumented = instrument::instrumentModule(*EvalModule, plan());
    std::vector<std::string> Problems = ir::verifyModule(*Instrumented);
    assert(Problems.empty() && "instrumented module failed verification");
    (void)Problems;
  }
  return *Instrumented;
}

void ChimeraPipeline::setPlannerOptions(
    const instrument::PlannerOptions &Opts) {
  Config.Planner = Opts;
  Plan.reset();
  Instrumented.reset();
}

rt::ExecutionResult ChimeraPipeline::runOriginalNative(
    uint64_t Seed, rt::ExecutionObserver *Obs) {
  rt::MachineOptions MO;
  MO.Mode = rt::ExecMode::Native;
  MO.NumCores = Config.NumCores;
  MO.Seed = Seed;
  MO.Costs = Config.Costs;
  MO.Observer = Obs;
  rt::Machine Machine(*EvalModule, MO);
  return Machine.run();
}

rt::ExecutionResult ChimeraPipeline::runInstrumentedNative(uint64_t Seed) {
  rt::MachineOptions MO;
  MO.Mode = rt::ExecMode::Native;
  MO.NumCores = Config.NumCores;
  MO.Seed = Seed;
  MO.Costs = Config.Costs;
  MO.WeakLockTimeout = Config.WeakLockTimeout;
  rt::Machine Machine(instrumentedModule(), MO);
  return Machine.run();
}

rt::ExecutionResult ChimeraPipeline::record(uint64_t Seed,
                                            rt::ExecutionObserver *Obs) {
  rt::MachineOptions MO;
  MO.Mode = rt::ExecMode::Record;
  MO.NumCores = Config.NumCores;
  MO.Seed = Seed;
  MO.Costs = Config.Costs;
  MO.WeakLockTimeout = Config.WeakLockTimeout;
  MO.Observer = Obs;
  rt::Machine Machine(instrumentedModule(), MO);
  return Machine.run();
}

rt::ExecutionResult ChimeraPipeline::replay(const rt::ExecutionLog &Log,
                                            rt::ExecutionObserver *Obs) {
  rt::MachineOptions MO;
  MO.Mode = rt::ExecMode::Replay;
  MO.NumCores = Config.NumCores;
  MO.Seed = 0xdeadbeef; // Replay must not depend on the seed.
  MO.Costs = Config.Costs;
  MO.WeakLockTimeout = Config.WeakLockTimeout;
  MO.ReplayLog = &Log;
  MO.Observer = Obs;
  rt::Machine Machine(instrumentedModule(), MO);
  return Machine.run();
}

ChimeraPipeline::RecordReplayOutcome ChimeraPipeline::recordAndReplay(
    uint64_t Seed) {
  RecordReplayOutcome Outcome;
  Outcome.Record = record(Seed);
  if (!Outcome.Record.Ok)
    return Outcome;
  Outcome.Replay = replay(Outcome.Record.Log);
  Outcome.Deterministic = Outcome.Replay.Ok &&
                          Outcome.Replay.StateHash ==
                              Outcome.Record.StateHash;
  return Outcome;
}

uint64_t ChimeraPipeline::dynamicRaceCount(uint64_t Seed) {
  race::DynamicDetector Detector;
  rt::ExecutionResult Result = record(Seed, &Detector);
  assert(Result.Ok && "dynamic race check run failed");
  (void)Result;
  return Detector.raceCount();
}
