//===- core/Options.cpp - Pipeline configuration ---------------------------===//

#include "core/Options.h"

#include "support/ThreadPool.h"

using namespace chimera;
using namespace chimera::core;

unsigned PipelineConfig::effectiveAnalysisJobs() const {
  return AnalysisJobs ? AnalysisJobs
                      : support::ThreadPool::defaultConcurrency();
}

support::Error PipelineConfig::validate() const {
  if (NumCores == 0)
    return support::Error::failure("NumCores must be at least 1");
  if (ProfileCores == 0)
    return support::Error::failure("ProfileCores must be at least 1");
  if (ProfileRuns == 0)
    return support::Error::failure("ProfileRuns must be at least 1");
  // An absurd job count is almost certainly a typo'd --jobs; each worker
  // costs a host thread, so refuse rather than oversubscribe wildly.
  if (AnalysisJobs > 512)
    return support::Error::failure(
        "AnalysisJobs must be in [0, 512] (0 = auto), got " +
        std::to_string(AnalysisJobs));
  if (ReplayJobs == 0 || ReplayJobs > 512)
    return support::Error::failure(
        "ReplayJobs must be in [1, 512], got " + std::to_string(ReplayJobs));
  // Below this a segment barely fits its own 32-byte header's worth of
  // records; it is certainly a typo'd --segment-bytes.
  if (SegmentBytes < 512)
    return support::Error::failure(
        "SegmentBytes must be at least 512, got " +
        std::to_string(SegmentBytes));
  if (QuantumMin == 0 || QuantumMin > QuantumMax)
    return support::Error::failure(
        "quantum bounds must satisfy 1 <= QuantumMin <= QuantumMax, got [" +
        std::to_string(QuantumMin) + ", " + std::to_string(QuantumMax) + "]");
  return support::Error::success();
}
