//===- core/Options.cpp - Pipeline configuration ---------------------------===//

#include "core/Options.h"

// Header-only for now; this TU anchors the library target.
