//===- core/Cli.cpp - Declarative command-line option table ----------------===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Cli.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>

using namespace chimera;
using namespace chimera::core;

namespace {

bool parseUnsigned(const char *Text, uint64_t &Out) {
  char *End = nullptr;
  errno = 0;
  Out = std::strtoull(Text, &End, 10);
  return End != Text && *End == '\0' && errno != ERANGE;
}

/// Like parseUnsigned, but the value must also fit in `unsigned`, so
/// oversized input fails at parse time instead of silently truncating.
bool parseUnsignedFits(const char *Text, unsigned &Out) {
  uint64_t V;
  if (!parseUnsigned(Text, V) || V > std::numeric_limits<unsigned>::max())
    return false;
  Out = static_cast<unsigned>(V);
  return true;
}

support::Error badValue(const char *Flag, const char *Value) {
  return support::Error::failure(std::string("invalid value for ") + Flag +
                                 ": " + (Value ? Value : ""));
}

} // namespace

const std::vector<OptionSpec> &core::optionTable() {
  static const std::vector<OptionSpec> Table = {
      {"--seed", "N", false, "scheduler/input seed (default 1)",
       [](CliOptions &O, const char *A) {
         uint64_t V;
         if (!parseUnsigned(A, V))
           return badValue("--seed", A);
         O.Seed = V;
         return support::Error::success();
       }},
      {"--cores", "N", false, "simulated cores (default 8)",
       [](CliOptions &O, const char *A) {
         unsigned V;
         if (!parseUnsignedFits(A, V) || V == 0)
           return badValue("--cores", A);
         O.Cores = V;
         return support::Error::success();
       }},
      {"--jobs", "N", false,
       "analysis/profiling worker threads (default: hardware threads)",
       [](CliOptions &O, const char *A) {
         if (!parseUnsignedFits(A, O.Jobs))
           return badValue("--jobs", A);
         return support::Error::success();
       }},
      {"-o", "FILE", false,
       "output log path for `record` (default prog.clog)",
       [](CliOptions &O, const char *A) {
         O.OutPath = A;
         return support::Error::success();
       }},
      {"--segment-bytes", "N", false,
       "with `record`: raw bytes per log segment (default 65536, min "
       "512)",
       [](CliOptions &O, const char *A) {
         uint64_t V;
         if (!parseUnsigned(A, V) || V < 512)
           return badValue("--segment-bytes", A);
         O.SegmentBytes = V;
         return support::Error::success();
       }},
      {"--checkpoint-every", "N", false,
       "with `record`: log events between state checkpoints "
       "(default 4096, 0 = no checkpoints)",
       [](CliOptions &O, const char *A) {
         uint64_t V;
         if (!parseUnsigned(A, V))
           return badValue("--checkpoint-every", A);
         O.CheckpointEvery = V;
         return support::Error::success();
       }},
      {"--replay-jobs", "N", false,
       "with `replay`: epochs replayed concurrently, partitioned at "
       "checkpoints (default 1 = sequential; result is bit-identical "
       "for every N)",
       [](CliOptions &O, const char *A) {
         if (!parseUnsignedFits(A, O.ReplayJobs) || O.ReplayJobs == 0)
           return badValue("--replay-jobs", A);
         return support::Error::success();
       }},
      {"--verify-log", nullptr, false,
       "with `replay`: scan and validate the log (segments, CRCs, "
       "checkpoints) without replaying",
       [](CliOptions &O, const char *) {
         O.VerifyLog = true;
         return support::Error::success();
       }},
      {"--mhp", "MODE", false,
       "may-happen-in-parallel race filter: off|forkjoin|barrier "
       "(default barrier)",
       [](CliOptions &O, const char *A) {
         support::Expected<analysis::MhpMode> Mode =
             analysis::parseMhpMode(A ? A : "");
         if (!Mode)
           return Mode.error();
         O.Mhp = *Mode;
         return support::Error::success();
       }},
      {"--lock-order", "MODE", false,
       "weak-lock order analysis: off|audit|enforce (audit certifies "
       "acyclic plans; enforce also repairs cyclic ones; default off)",
       [](CliOptions &O, const char *A) {
         support::Expected<analysis::LockOrderMode> Mode =
             analysis::parseLockOrderMode(A ? A : "");
         if (!Mode)
           return Mode.error();
         O.LockOrder = *Mode;
         return support::Error::success();
       }},
      {"--lock-order-report", nullptr, false,
       "with `plan`: print the lock-order report (witness chains or the "
       "acyclicity statement); implies --lock-order=audit if off",
       [](CliOptions &O, const char *) {
         O.LockOrderReport = true;
         if (O.LockOrder == analysis::LockOrderMode::Off)
           O.LockOrder = analysis::LockOrderMode::Audit;
         return support::Error::success();
       }},
      {"--sessions", "N", false,
       "with `batch`: concurrent analysis sessions (default 2; 1 runs "
       "them serially)",
       [](CliOptions &O, const char *A) {
         if (!parseUnsignedFits(A, O.Sessions) || O.Sessions == 0)
           return badValue("--sessions", A);
         return support::Error::success();
       }},
      {"--repeat", "N", false,
       "with `batch`: sessions submitted per program (default 1; >1 "
       "cross-checks bit-identity between duplicates)",
       [](CliOptions &O, const char *A) {
         if (!parseUnsignedFits(A, O.Repeat) || O.Repeat == 0)
           return badValue("--repeat", A);
         return support::Error::success();
       }},
      {"--deadline-ms", "N", false,
       "with `batch`: per-session wall-clock budget in milliseconds, "
       "checked at stage boundaries (default 0 = none)",
       [](CliOptions &O, const char *A) {
         if (!parseUnsigned(A, O.DeadlineMs))
           return badValue("--deadline-ms", A);
         return support::Error::success();
       }},
      {"--cache", "FILE", false,
       "with `batch`: persistent artifact cache (docs/CACHE_FORMAT.md); "
       "loaded if present, saved back on success",
       [](CliOptions &O, const char *A) {
         O.CachePath = A;
         return support::Error::success();
       }},
      {"--seeds", "N", false,
       "with `stress`: campaign trials to derive and run (default 100)",
       [](CliOptions &O, const char *A) {
         if (!parseUnsigned(A, O.StressSeeds) || O.StressSeeds == 0)
           return badValue("--seeds", A);
         return support::Error::success();
       }},
      {"--base-seed", "N", false,
       "with `stress`: base seed trials derive from (default 1; same "
       "base + index = same trial, forever)",
       [](CliOptions &O, const char *A) {
         if (!parseUnsigned(A, O.BaseSeed))
           return badValue("--base-seed", A);
         return support::Error::success();
       }},
      {"--shrink", nullptr, false,
       "with `stress`: delta-debug failing trials to minimal repros "
       "(the default)",
       [](CliOptions &O, const char *) {
         O.Shrink = true;
         return support::Error::success();
       }},
      {"--no-shrink", nullptr, false,
       "with `stress`: report failures without shrinking them",
       [](CliOptions &O, const char *) {
         O.Shrink = false;
         return support::Error::success();
       }},
      {"--repro", "FILE", false,
       "with `stress`: re-run one minimized repro file and exit "
       "(0 = passes, 1 = still fails)",
       [](CliOptions &O, const char *A) {
         O.ReproPath = A;
         return support::Error::success();
       }},
      {"--repro-dir", "DIR", false,
       "with `stress`: directory for minimized repro files "
       "(default stress-repros; empty disables writing)",
       [](CliOptions &O, const char *A) {
         O.ReproDir = A;
         return support::Error::success();
       }},
      {"--report", "FILE", false,
       "with `stress`: write the JSON campaign report to FILE",
       [](CliOptions &O, const char *A) {
         O.ReportPath = A;
         return support::Error::success();
       }},
      {"--metrics", "json|table", true,
       "print the observability snapshot after the command "
       "(default json); implies --obs=full",
       [](CliOptions &O, const char *A) {
         if (!A || std::string(A) == "json")
           O.Metrics = MetricsFormat::Json;
         else if (std::string(A) == "table")
           O.Metrics = MetricsFormat::Table;
         else
           return badValue("--metrics", A);
         return support::Error::success();
       }},
      {"--trace-out", "FILE", false,
       "write a Chrome trace_event JSON file of pipeline and runtime "
       "spans; implies --obs=full",
       [](CliOptions &O, const char *A) {
         O.TraceOutPath = A;
         return support::Error::success();
       }},
      {"--obs", "MODE", false,
       "observability mode: off|sampled|full (sampled thins trace "
       "spans; metrics stay exact)",
       [](CliOptions &O, const char *A) {
         support::Expected<obs::ObsMode> Mode = obs::parseObsMode(A ? A : "");
         if (!Mode)
           return Mode.error();
         O.Obs = *Mode;
         O.ObsExplicit = true;
         return support::Error::success();
       }},
      {"--race-stats", nullptr, false,
       "with `races`: print pairs pruned by the MHP filter, per reason",
       [](CliOptions &O, const char *) {
         O.RaceStats = true;
         return support::Error::success();
       }},
      {"--instrumented", nullptr, false,
       "print the weak-lock-guarded module",
       [](CliOptions &O, const char *) {
         O.Instrumented = true;
         return support::Error::success();
       }},
      {"--naive", nullptr, false, "planner ablation: one lock per address",
       [](CliOptions &O, const char *) {
         O.Planner = instrument::PlannerOptions::naive();
         return support::Error::success();
       }},
      {"--func", nullptr, false, "planner ablation: function locks only",
       [](CliOptions &O, const char *) {
         O.Planner = instrument::PlannerOptions::functionOnly();
         return support::Error::success();
       }},
      {"--loop", nullptr, false, "planner ablation: loop locks only",
       [](CliOptions &O, const char *) {
         O.Planner = instrument::PlannerOptions::loopOnly();
         return support::Error::success();
       }},
      {"--help", nullptr, false, "show this help text",
       [](CliOptions &O, const char *) {
         O.Help = true;
         return support::Error::success();
       }},
  };
  return Table;
}

std::string core::usageText() {
  std::string Text =
      "usage: chimera <command> <program.mc> [options]\n"
      "       chimera stress [options]\n"
      "\n"
      "commands:\n"
      "  races    report the static (RELAY) race pairs\n"
      "  plan     show the weak-lock instrumentation plan\n"
      "  ir       print the IR (--instrumented for the guarded module)\n"
      "  run      execute natively and print the program output\n"
      "  record   record an execution (-o FILE, default prog.clog)\n"
      "  replay   replay a recorded log file deterministically\n"
      "  batch    run several programs as concurrent analysis sessions\n"
      "           (extra .mc files are positional; see --sessions,\n"
      "           --repeat, --cache, --deadline-ms)\n"
      "  stress   run a seeded differential stress campaign over the\n"
      "           built-in source catalog (takes no program argument;\n"
      "           see --seeds, --base-seed, --repro, --report)\n"
      "\n"
      "exit codes:\n"
      "  0  success\n"
      "  1  pipeline or session failure (compile, analysis, audit,\n"
      "     record/replay, determinism mismatch, I/O)\n"
      "  2  usage error (unknown command or flag, bad value, missing\n"
      "     argument)\n"
      "\n"
      "options (value-taking flags accept --flag VALUE and "
      "--flag=VALUE):\n";
  for (const OptionSpec &Spec : optionTable()) {
    std::string Left = Spec.Flag;
    if (Spec.ArgName) {
      if (Spec.ValueOptional) {
        Left += "[=";
        Left += Spec.ArgName;
        Left += ']';
      } else {
        Left += '=';
        Left += Spec.ArgName;
      }
    }
    char Line[256];
    std::snprintf(Line, sizeof(Line), "  %-24s %s\n", Left.c_str(),
                  Spec.Help);
    Text += Line;
  }
  return Text;
}

support::Error core::parseCliOptions(int Argc, char **Argv, int Start,
                                     const std::string &Command,
                                     CliOptions &Opts) {
  for (int I = Start; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    // `--flag=value` form: split at the first '='.
    std::string Flag = Arg;
    std::string Inline;
    bool HasInline = false;
    size_t Eq = Arg.find('=');
    if (Eq != std::string::npos && Arg.size() > 1 && Arg[0] == '-') {
      Flag = Arg.substr(0, Eq);
      Inline = Arg.substr(Eq + 1);
      HasInline = true;
    }
    const OptionSpec *Match = nullptr;
    for (const OptionSpec &Spec : optionTable())
      if (Flag == Spec.Flag) {
        Match = &Spec;
        break;
      }
    if (!Match) {
      if (Command == "replay" && Opts.LogPath.empty() && Arg[0] != '-') {
        Opts.LogPath = Arg;
        continue;
      }
      if (Command == "batch" && Arg[0] != '-') {
        Opts.Inputs.push_back(Arg);
        continue;
      }
      return support::Error::failure("unknown option: " + Arg);
    }
    const char *Value = nullptr;
    if (Match->ArgName && !Match->ValueOptional) {
      if (HasInline) {
        Value = Inline.c_str();
      } else {
        if (I + 1 >= Argc)
          return support::Error::failure(std::string(Match->Flag) +
                                         " needs a value (" +
                                         Match->ArgName + ")");
        Value = Argv[++I];
      }
    } else if (Match->ArgName && Match->ValueOptional) {
      // Optional values never consume the next argv slot — only the
      // `--flag=value` spelling supplies one, so `--metrics record`
      // can't swallow a command by accident.
      if (HasInline)
        Value = Inline.c_str();
    } else if (HasInline) {
      return support::Error::failure(std::string(Match->Flag) +
                                     " takes no value");
    }
    if (support::Error E = Match->Apply(Opts, Value))
      return E;
  }
  return support::Error::success();
}
