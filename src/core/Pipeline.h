//===- core/Pipeline.h - End-to-end Chimera pipeline ------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point (paper Figure 1): compile MiniC, run the RELAY
/// static race detector, profile concurrent function pairs over many
/// inputs, plan weak-lock granularities, instrument, then record and
/// replay on the simulated multicore.
///
/// Typical use:
/// \code
///   core::PipelineRequest Req;
///   Req.Eval = EvalSrc;
///   Req.Config.NumCores = 8;
///   auto P = core::ChimeraPipeline::create(std::move(Req));
///   if (!P)
///     report(P.error().message());
///   auto Outcome = (*P)->recordAndReplay(/*Seed=*/42);
///   assert(Outcome.Deterministic);
/// \endcode
///
/// Many concurrent pipelines are run by `service::SessionManager`,
/// which queues the same `PipelineRequest` struct; a request whose
/// `Config.Artifacts` points at a `service::ArtifactCache` reuses
/// persisted instrumentation plans across pipelines and processes.
///
/// Stage accessors (`raceReport`, `profileData`, `plan`,
/// `instrumentedModule`) are const, thread-safe, and compute each stage
/// exactly once: the first caller runs the stage under that stage's
/// latch, later callers (from any thread) get the cached const
/// reference. The expensive stages fan out internally over a
/// work-stealing pool sized by `PipelineConfig::AnalysisJobs` — profile
/// runs execute concurrently and RELAY composes summaries per SCC-DAG
/// level — but results are merged in deterministic (seed / function id)
/// order, so every artifact is bit-identical for any job count.
///
/// Profile and evaluation sources may differ only in global initializer
/// values and barrier party counts (the paper profiles smaller inputs
/// and fewer workers); the pipeline asserts the IR shape matches so
/// analysis results transfer.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_CORE_PIPELINE_H
#define CHIMERA_CORE_PIPELINE_H

#include "core/Options.h"
#include "instrument/Instrumenter.h"
#include "instrument/LockOrderAuditor.h"
#include "instrument/PlanAuditor.h"
#include "race/DynamicDetector.h"
#include "race/RelayDetector.h"
#include "replay/ParallelReplayer.h"
#include "runtime/Machine.h"
#include "support/Expected.h"
#include "support/ThreadPool.h"

#include <functional>
#include <memory>
#include <mutex>
#include <string>

namespace chimera {
namespace core {

class ChimeraPipeline {
public:
  /// Compiles and assembles a pipeline from \p Request. Fails when
  /// either source does not compile, the sources' IR shapes differ, or
  /// the config fails validation; failures carry the request's Tag as
  /// context when one was set.
  static support::Expected<std::unique_ptr<ChimeraPipeline>>
  create(PipelineRequest Request);

  const PipelineConfig &config() const { return Config; }
  /// The request's Tag (possibly empty).
  const std::string &tag() const { return Tag; }

  // -- Observability. The pipeline owns one obs::Registry (created when
  // Config.Observability != Off) and hands it down to every stage and
  // machine, so one snapshot sees compile phases, analyses, and runs.
  /// Snapshot of everything observed so far; fails when the pipeline was
  /// built with Observability == Off.
  support::Expected<obs::Snapshot> metrics() const;
  /// The registry itself (null when Observability == Off) — for callers
  /// that want to attach their own counters next to the pipeline's.
  obs::Registry *metricsRegistry() const { return ObsRegistry.get(); }

  // -- Stages: computed once, cached, safe to call from any thread.
  const ir::Module &originalModule() const { return *EvalModule; }
  const analysis::MayHappenInParallel &mhp() const;
  const race::RaceReport &raceReport() const;
  const profile::ProfileData &profileData() const;
  const instrument::InstrumentationPlan &plan() const;
  const ir::Module &instrumentedModule() const;
  /// Static audit of the plan against the instrumented module; computed
  /// once like the other stages. Consulted (when Config.AuditPlan) by
  /// every instrumented execution, which fails hard on a dirty audit.
  const instrument::AuditResult &planAudit() const;

  /// Lock-order audit of the (possibly certified/repaired) plan against
  /// the final instrumented module: recomputes the
  /// may-be-held-while-acquiring graph and validates the plan's
  /// certificate (stale or forged certificates, and cyclic plans under
  /// Enforce, are hard errors gating every instrumented execution).
  /// Computed once like the other stages; trivially ok() when
  /// Config.LockOrder == Off.
  const instrument::LockOrderAuditResult &lockOrderAudit() const;

  /// Re-plans under different optimizations (invalidates cached plan and
  /// instrumented module). Not thread-safe against concurrent stage
  /// accessors — reconfigure between, not during, analyses.
  void setPlannerOptions(const instrument::PlannerOptions &Opts);

  /// Switches the MHP filter mode (invalidates the race report and every
  /// downstream stage). Same thread-safety caveat as setPlannerOptions.
  void setMhpMode(analysis::MhpMode Mode);

  /// Switches the lock-order mode (invalidates the plan and downstream
  /// stages — Enforce may rewrite the lock table). Same thread-safety
  /// caveat as setPlannerOptions.
  void setLockOrderMode(analysis::LockOrderMode Mode);

  /// Toggles forced weak-timeout polling for subsequent executions.
  /// Purely an execution-time knob (no analysis stage depends on it),
  /// so nothing is invalidated — tests and benches flip it to compare
  /// certificate-elided against force-polled runs on one pipeline.
  void setForceWeakPolling(bool On) { Config.ForceWeakPolling = On; }

  /// Test-only hook: mutates the plan right after planning, before
  /// instrumentation and audit, so tests can prove the auditor rejects
  /// corrupted plans. Invalidates the plan and downstream stages.
  void corruptPlanForTest(
      std::function<void(instrument::InstrumentationPlan &)> Fn);

  // -- Executions.
  rt::ExecutionResult runOriginalNative(uint64_t Seed,
                                        rt::ExecutionObserver *Obs =
                                            nullptr);
  rt::ExecutionResult runInstrumentedNative(uint64_t Seed);
  rt::ExecutionResult record(uint64_t Seed,
                             rt::ExecutionObserver *Obs = nullptr);
  rt::ExecutionResult replay(const rt::ExecutionLog &Log,
                             rt::ExecutionObserver *Obs = nullptr);

  /// Records with \p Seed while streaming every log event into the
  /// segmented on-disk format at \p Path (replay/LogWriter): per-record
  /// framing, per-segment CRCs, a machine-state checkpoint every
  /// Config.CheckpointEvery log events, and compression off the record
  /// thread on the pipeline's worker pool. Fails when the run fails or
  /// any write did. The in-memory log in the result is still populated,
  /// so callers can cross-check the file against it.
  support::Expected<rt::ExecutionResult>
  recordStreamed(const std::string &Path, uint64_t Seed,
                 rt::ExecutionObserver *Obs = nullptr);

  /// Replays \p Log starting from \p Snap (a checkpoint out of
  /// replay::LogReader::seekToCheckpoint or recover) instead of from the
  /// initial state. The final StateHash is bit-identical to a cold
  /// replay of the full log.
  rt::ExecutionResult replayResumed(const rt::ExecutionLog &Log,
                                    const rt::MachineSnapshot &Snap,
                                    rt::ExecutionObserver *Obs = nullptr);

  /// Epoch-parallel replay of the segmented log behind \p Reader:
  /// partitions the log at its checkpoints into up to \p Jobs epochs
  /// (0 = Config.ReplayJobs), replays them concurrently on the analysis
  /// pool, and stitches — state, output, merged log, and event-counter
  /// stats bit-identical to sequential recovery + replay for any job
  /// count, including on damaged logs (the parallel path falls back to
  /// sequential whenever anything disagrees). Like replayResumed, the
  /// simulated-clock makespan follows the recorded core clocks stored
  /// in the checkpoints, not a cold replay's. Repositions \p Reader.
  replay::ParallelReplayer::Result
  replayParallel(replay::LogReader &Reader, unsigned Jobs = 0);

  /// Fingerprint of the instrumented workload (module shape, weak-lock
  /// space, core count), stamped into streamed log headers so a log
  /// cannot silently be replayed against a different workload or
  /// machine configuration.
  uint64_t workloadFingerprint() const;

  struct RecordReplayOutcome {
    rt::ExecutionResult Record;
    rt::ExecutionResult Replay;
    bool Deterministic = false;
  };
  /// Records with \p Seed, replays the log, compares state hashes.
  RecordReplayOutcome recordAndReplay(uint64_t Seed);

  /// Runs the dynamic happens-before oracle over a recording of the
  /// instrumented program; returns the number of races it finds (the
  /// paper's invariant: zero).
  uint64_t dynamicRaceCount(uint64_t Seed);

private:
  ChimeraPipeline() = default;

  /// One lazily computed stage result: the first get() computes under
  /// the cell's latch, later calls return the cached value. reset()
  /// supports re-planning.
  template <typename T> class StageCell {
  public:
    template <typename ComputeT>
    T &get(ComputeT &&Compute) const {
      std::lock_guard<std::mutex> Lock(Mu);
      if (!Value)
        Value = Compute();
      return *Value;
    }
    void reset() {
      std::lock_guard<std::mutex> Lock(Mu);
      Value.reset();
    }

  private:
    mutable std::mutex Mu;
    mutable std::unique_ptr<T> Value;
  };

  /// The module-wide analyses RELAY consumes, built together.
  struct Analyses {
    analysis::CallGraph CG;
    analysis::PointsTo PT;
    analysis::EscapeAnalysis Escape;
    explicit Analyses(const ir::Module &M);
  };

  const Analyses &analyses() const;
  support::ThreadPool &pool() const;
  /// success() when audits are disabled or the plan proves out.
  support::Error ensureAuditedPlan();
  /// success() when LockOrder is Off or the certificate validates.
  support::Error ensureLockOrder();
  /// Plan-stage lock-order analysis: analyze, repair under Enforce,
  /// stamp the certificate (see Pipeline.cpp).
  void certifyOrRepair(instrument::InstrumentationPlan &P) const;
  /// Sets the weak-poll elision fields of \p MO from the lock-order
  /// verdict (record/native executions only; replay never polls).
  void applyLockOrder(rt::MachineOptions &MO);

  /// Content-hash key covering every input the plan stage consumes
  /// (both modules' printed IR, the profiling environment, cost model,
  /// planner options, MHP and lock-order modes) — the ArtifactCache key
  /// for this pipeline's plan. Execution-only knobs (NumCores,
  /// DispatchBatch, WeakLockTimeout, observability) are excluded: the
  /// plan is invariant in them.
  uint64_t planCacheKey() const;
  /// Decoded plan out of Config.Artifacts, or null on miss/damage.
  /// Never consulted while a test PlanCorruptor is installed.
  std::unique_ptr<instrument::InstrumentationPlan>
  planFromArtifacts(uint64_t Key) const;

  /// Wall-us counter for one pipeline stage ("pipeline.<stage>.wall_us");
  /// null handle when observability is off.
  obs::Counter stageCounter(const char *Stage) const;
  /// The trace recorder stages/machines should emit into (null when
  /// observability is off or no recorder was configured).
  obs::TraceRecorder *trace() const {
    return ObsRegistry ? Config.Trace : nullptr;
  }
  /// Fills the observability fields of \p MO for an execution.
  void applyObs(rt::MachineOptions &MO) const;

  PipelineConfig Config;
  std::string Tag; ///< From the request; labels errors and metrics.
  std::unique_ptr<obs::Registry> ObsRegistry; ///< Null when Off.
  std::unique_ptr<ir::Module> EvalModule;
  std::unique_ptr<ir::Module> ProfileModule;
  std::function<void(instrument::InstrumentationPlan &)> PlanCorruptor;

  StageCell<support::ThreadPool> Pool;
  StageCell<Analyses> Analysis;
  StageCell<analysis::MayHappenInParallel> MhpCell;
  StageCell<race::RaceReport> Races;
  StageCell<profile::ProfileData> Profile;
  StageCell<instrument::InstrumentationPlan> Plan;
  StageCell<ir::Module> Instrumented;
  StageCell<instrument::AuditResult> Audit;
  StageCell<instrument::LockOrderAuditResult> LockOrderCell;
};

} // namespace core
} // namespace chimera

#endif // CHIMERA_CORE_PIPELINE_H
