//===- core/Pipeline.h - End-to-end Chimera pipeline ------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point (paper Figure 1): compile MiniC, run the RELAY
/// static race detector, profile concurrent function pairs over many
/// inputs, plan weak-lock granularities, instrument, then record and
/// replay on the simulated multicore.
///
/// Typical use:
/// \code
///   std::string Error;
///   auto P = core::ChimeraPipeline::fromSource(EvalSrc, ProfileSrc,
///                                              Config, &Error);
///   auto Outcome = P->recordAndReplay(/*Seed=*/42);
///   assert(Outcome.Deterministic);
/// \endcode
///
/// Profile and evaluation sources may differ only in global initializer
/// values and barrier party counts (the paper profiles smaller inputs
/// and fewer workers); the pipeline asserts the IR shape matches so
/// analysis results transfer.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_CORE_PIPELINE_H
#define CHIMERA_CORE_PIPELINE_H

#include "core/Options.h"
#include "instrument/Instrumenter.h"
#include "race/DynamicDetector.h"
#include "race/RelayDetector.h"
#include "runtime/Machine.h"

#include <memory>
#include <string>

namespace chimera {
namespace core {

class ChimeraPipeline {
public:
  /// Compiles and assembles a pipeline. \p ProfileSource may equal
  /// \p EvalSource. Returns null and sets \p Error on failure.
  static std::unique_ptr<ChimeraPipeline> fromSource(
      const std::string &EvalSource, const std::string &ProfileSource,
      PipelineConfig Config, std::string *Error);

  const PipelineConfig &config() const { return Config; }

  // -- Lazily computed stages.
  const ir::Module &originalModule() const { return *EvalModule; }
  const race::RaceReport &raceReport();
  const profile::ProfileData &profileData();
  const instrument::InstrumentationPlan &plan();
  const ir::Module &instrumentedModule();

  /// Re-plans under different optimizations (invalidates cached plan and
  /// instrumented module).
  void setPlannerOptions(const instrument::PlannerOptions &Opts);

  // -- Executions.
  rt::ExecutionResult runOriginalNative(uint64_t Seed,
                                        rt::ExecutionObserver *Obs =
                                            nullptr);
  rt::ExecutionResult runInstrumentedNative(uint64_t Seed);
  rt::ExecutionResult record(uint64_t Seed,
                             rt::ExecutionObserver *Obs = nullptr);
  rt::ExecutionResult replay(const rt::ExecutionLog &Log,
                             rt::ExecutionObserver *Obs = nullptr);

  struct RecordReplayOutcome {
    rt::ExecutionResult Record;
    rt::ExecutionResult Replay;
    bool Deterministic = false;
  };
  /// Records with \p Seed, replays the log, compares state hashes.
  RecordReplayOutcome recordAndReplay(uint64_t Seed);

  /// Runs the dynamic happens-before oracle over a recording of the
  /// instrumented program; returns the number of races it finds (the
  /// paper's invariant: zero).
  uint64_t dynamicRaceCount(uint64_t Seed);

private:
  ChimeraPipeline() = default;

  void computeAnalyses();

  PipelineConfig Config;
  std::unique_ptr<ir::Module> EvalModule;
  std::unique_ptr<ir::Module> ProfileModule;

  std::unique_ptr<analysis::CallGraph> CG;
  std::unique_ptr<analysis::PointsTo> PT;
  std::unique_ptr<analysis::EscapeAnalysis> Escape;
  std::unique_ptr<race::RaceReport> Races;
  std::unique_ptr<profile::ProfileData> Profile;
  std::unique_ptr<instrument::InstrumentationPlan> Plan;
  std::unique_ptr<ir::Module> Instrumented;
};

} // namespace core
} // namespace chimera

#endif // CHIMERA_CORE_PIPELINE_H
