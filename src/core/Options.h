//===- core/Options.h - Pipeline configuration ------------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration for the end-to-end Chimera pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_CORE_OPTIONS_H
#define CHIMERA_CORE_OPTIONS_H

#include "analysis/LockOrderGraph.h"
#include "analysis/MayHappenInParallel.h"
#include "instrument/Planner.h"
#include "runtime/CostModel.h"
#include "support/Expected.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <cstdint>
#include <string>

namespace chimera {
namespace service {
class ArtifactCache;
}
namespace core {

struct PipelineConfig {
  std::string Name = "program";

  /// Simulated cores for evaluation runs.
  unsigned NumCores = 8;

  /// Profiling environment (paper: 20 runs, 2 workers, small inputs —
  /// inputs vary because each run uses a different seed).
  unsigned ProfileRuns = 20;
  unsigned ProfileCores = 8;
  uint64_t ProfileSeedBase = 90001;

  /// Host worker threads for the analysis/profiling stages (profile-run
  /// fan-out, per-SCC RELAY composition). 0 = one per hardware thread;
  /// 1 = fully serial. Results are identical for every value.
  unsigned AnalysisJobs = 0;

  /// Consult the process-wide race::SummaryCache so repeated pipeline
  /// builds over identical source skip RELAY's dataflow.
  bool UseSummaryCache = true;

  instrument::PlannerOptions Planner = instrument::PlannerOptions::full();
  rt::CostModel Costs = rt::CostModel::defaultModel();

  /// May-happen-in-parallel filter over RELAY's candidate race pairs:
  /// Off reports every lockset race, ForkJoin prunes spawn/join-ordered
  /// pairs, Barrier additionally prunes aligned-barrier-phase-ordered
  /// pairs (the default).
  analysis::MhpMode Mhp = analysis::MhpMode::Barrier;

  /// Statically audit the instrumentation plan (weak-lock coverage and
  /// range subsumption) before any instrumented execution; an audit
  /// failure turns record/replay into a hard error.
  bool AuditPlan = true;

  /// Whole-program weak-lock order analysis (ISSUE 8). Off (the
  /// default) skips it entirely; Audit runs it, reports
  /// deadlock-potential cycles, and certifies acyclic plans; Enforce
  /// additionally repairs cyclic plans (coalescing each cyclic lock set
  /// into one coarser lock) until the re-audit proves acyclicity, and
  /// hard-fails executions if any feasible cycle survives. Certified
  /// plans elide the runtime's weak-timeout polling. Off by default
  /// because certification changes the lock table under Enforce and
  /// elides revocations tests deliberately provoke.
  analysis::LockOrderMode LockOrder = analysis::LockOrderMode::Off;

  /// Poll weak-lock timeouts even under a certified plan (the
  /// bit-identity cross-check records with and without polling).
  bool ForceWeakPolling = false;

  /// Weak-lock revocation threshold (cycles).
  uint64_t WeakLockTimeout = 500'000'000;

  /// Scheduler quantum bounds in cycles for every Machine the pipeline
  /// constructs (record/native draws uniformly in [Min, Max]; replay
  /// uses Min). Unlike DispatchBatch these are *simulated-time* knobs:
  /// changing them changes which schedules record observes, but any
  /// recorded log still replays bit-identically — including under a
  /// different quantum than it was recorded with.
  uint64_t QuantumMin = 3000;
  uint64_t QuantumMax = 9000;

  /// Instructions dispatched per scheduling decision in every Machine
  /// the pipeline constructs (see MachineOptions::DispatchBatch). Purely
  /// a host-speed knob — results are bit-identical for every value.
  unsigned DispatchBatch = 64;

  /// Raw payload bytes per segment when recording through the streaming
  /// log engine (ChimeraPipeline::recordStreamed). Smaller segments
  /// bound the damage one corruption can cause; larger ones compress
  /// better. Purely a storage knob — the recorded events are identical.
  uint64_t SegmentBytes = 64 * 1024;

  /// Log events between machine-state checkpoints in streamed
  /// recordings; 0 disables checkpointing. Replay can resume from the
  /// last checkpoint instead of re-executing from the start.
  uint64_t CheckpointEvery = 4096;

  /// Epoch-parallel replay width for ChimeraPipeline::replayParallel:
  /// the log is partitioned at its checkpoints into up to this many
  /// epochs replayed concurrently on the analysis pool. 1 replays
  /// sequentially. Results are bit-identical for every value.
  unsigned ReplayJobs = 1;

  /// Observability. Off (the default) creates no registry at all —
  /// Pipeline::metrics() fails and no instrumentation site pays more
  /// than a null-pointer test. Sampled and Full both create a
  /// pipeline-owned obs::Registry with exact metrics; they differ only
  /// in how densely an attached TraceRecorder samples spans (the
  /// recorder's own SampleEvery, chosen by whoever constructs it).
  /// Observability never feeds back into simulated state: logs, hashes,
  /// and stats are bit-identical across all three settings.
  obs::ObsMode Observability = obs::ObsMode::Off;

  /// Optional span sink, owned by the caller (the CLI owns one per
  /// --trace-out run). Forwarded to every stage and machine when
  /// Observability != Off; ignored when Off.
  obs::TraceRecorder *Trace = nullptr;

  /// Optional persistent artifact cache (service::ArtifactCache), not
  /// owned; one instance is typically shared by every concurrent
  /// session and persisted across processes (docs/CACHE_FORMAT.md).
  /// When set, the plan stage consults it under a content-hash key
  /// covering every plan input — a hit skips RELAY, the profile runs,
  /// the planner, and the lock-order certification loop, and is
  /// bit-identical to recomputation (the decoded plan's certificate is
  /// re-fingerprinted, and the usual plan/lock-order audits still gate
  /// every instrumented execution). Null = no persistence.
  service::ArtifactCache *Artifacts = nullptr;

  /// AnalysisJobs resolved to a concrete worker count.
  unsigned effectiveAnalysisJobs() const;

  /// Sanity-checks the configuration (worker counts, run counts);
  /// ChimeraPipeline::create rejects configs that fail this.
  support::Error validate() const;
};

/// A pipeline request: everything needed to build one ChimeraPipeline.
/// This is also the unit of work the service layer queues —
/// `service::SessionManager::submit` takes exactly this struct, so the
/// one-shot and many-session paths share a vocabulary.
struct PipelineRequest {
  /// MiniC source to analyze, instrument, and execute.
  std::string Eval = {};
  /// Profiling source; empty means "same as Eval". May differ from
  /// Eval only in global initializer values and barrier party counts
  /// (the paper profiles smaller inputs) — the IR shapes must match.
  std::string Profile = {};
  PipelineConfig Config = {};
  /// Caller-chosen label surfaced in error contexts and per-session
  /// service metrics ("service.session.<Tag>.*"). Empty is fine for
  /// one-shot use.
  std::string Tag = {};
};

} // namespace core
} // namespace chimera

#endif // CHIMERA_CORE_OPTIONS_H
