//===- core/Cli.h - Declarative command-line option table -------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The chimera CLI's option layer, split out of the tool so tests can
/// prove two properties the binary alone can't: every registered flag
/// appears in the generated help text (including its `--flag=VALUE`
/// spelling), and the parser accepts exactly what the table declares.
///
/// One table drives everything: `optionTable()` is the single source of
/// truth, `usageText()` renders it, and `parseCliOptions()` interprets
/// it. Adding a flag means adding one OptionSpec — help and parsing can
/// never drift apart.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_CORE_CLI_H
#define CHIMERA_CORE_CLI_H

#include "analysis/LockOrderGraph.h"
#include "analysis/MayHappenInParallel.h"
#include "instrument/Planner.h"
#include "support/Expected.h"
#include "support/Metrics.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace chimera {
namespace core {

/// How `--metrics` renders the end-of-run registry snapshot.
enum class MetricsFormat {
  None,  ///< --metrics absent: no snapshot printed.
  Json,  ///< Flat JSON object (the default for bare --metrics).
  Table, ///< Two-column human-readable table.
};

/// Everything the option table writes into.
struct CliOptions {
  uint64_t Seed = 1;
  unsigned Cores = 8;
  unsigned Jobs = 0; ///< 0 = one worker per hardware thread.
  std::string OutPath;
  std::string LogPath; ///< replay's positional log argument.
  bool Instrumented = false;
  bool RaceStats = false;
  bool Help = false;

  // -- Streamed log storage (record/replay).
  uint64_t SegmentBytes = 64 * 1024; ///< --segment-bytes.
  uint64_t CheckpointEvery = 4096;   ///< --checkpoint-every (0 = off).
  unsigned ReplayJobs = 1;           ///< --replay-jobs (1 = sequential).
  bool VerifyLog = false; ///< replay: validate the log, don't replay.
  analysis::MhpMode Mhp = analysis::MhpMode::Barrier;
  instrument::PlannerOptions Planner = instrument::PlannerOptions::full();

  // -- Lock-order analysis (ISSUE 8).
  analysis::LockOrderMode LockOrder = analysis::LockOrderMode::Off;
  bool LockOrderReport = false; ///< --lock-order-report: print witnesses.

  // -- Multi-session batch service (ISSUE 9).
  unsigned Sessions = 2;   ///< --sessions: concurrent batch sessions.
  unsigned Repeat = 1;     ///< --repeat: sessions submitted per program.
  uint64_t DeadlineMs = 0; ///< --deadline-ms: per-session budget (0 = none).
  std::string CachePath;   ///< --cache: persistent artifact cache file.
  /// batch's extra positional programs (beyond the first, which rides in
  /// argv[2] like every other command's).
  std::vector<std::string> Inputs;

  // -- Stress campaign (ISSUE 10).
  uint64_t StressSeeds = 100; ///< --seeds: campaign trials to run.
  uint64_t BaseSeed = 1;      ///< --base-seed: trial derivation seed.
  bool Shrink = true;         ///< --no-shrink disables delta-debugging.
  std::string ReproPath;      ///< --repro: run one repro file, then exit.
  /// --repro-dir: where minimized repro files land ("" = don't write).
  std::string ReproDir = "stress-repros";
  std::string ReportPath;     ///< --report: JSON campaign report file.

  // -- Observability.
  MetricsFormat Metrics = MetricsFormat::None;
  std::string TraceOutPath; ///< --trace-out: Chrome trace_event sink.
  obs::ObsMode Obs = obs::ObsMode::Off;
  bool ObsExplicit = false; ///< --obs was given (overrides implication).

  /// The mode the pipeline should actually run with: an explicit --obs
  /// wins; otherwise --metrics or --trace-out imply Full.
  obs::ObsMode effectiveObsMode() const {
    if (ObsExplicit)
      return Obs;
    if (Metrics != MetricsFormat::None || !TraceOutPath.empty())
      return obs::ObsMode::Full;
    return Obs;
  }
};

/// One command-line flag: how to spell it, whether it consumes a value,
/// what to print in --help, and how to apply it. Apply returns
/// success(), or a failure describing why the value was rejected. For
/// ValueOptional flags Apply receives null when no `=value` was given.
struct OptionSpec {
  const char *Flag;
  const char *ArgName; ///< Null when the flag takes no value.
  bool ValueOptional;  ///< True: value only via `--flag=VALUE`, may be
                       ///< omitted entirely (e.g. --metrics[=json]).
  const char *Help;
  std::function<support::Error(CliOptions &, const char *Arg)> Apply;
};

/// The full flag table, in help-display order.
const std::vector<OptionSpec> &optionTable();

/// Generated usage/help text: commands, then one line per table entry
/// showing the `--flag=VALUE` form (brackets for optional values).
std::string usageText();

/// Applies the option table to argv[Start..). \p Command gates the
/// positional arguments (replay's log file; batch's extra program
/// files). Returns a failure naming
/// the offending argument on unknown flags, missing/forbidden values,
/// or values the spec rejects.
support::Error parseCliOptions(int Argc, char **Argv, int Start,
                               const std::string &Command,
                               CliOptions &Opts);

} // namespace core
} // namespace chimera

#endif // CHIMERA_CORE_CLI_H
