//===- support/Rng.h - Deterministic pseudo-random numbers ------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fully deterministic xorshift-based RNG. Every source of simulated
/// nondeterminism in Chimera (scheduler quanta, syscall payloads, network
/// latencies) draws from one of these, seeded explicitly, so that an entire
/// recorded execution is a pure function of its seed.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_SUPPORT_RNG_H
#define CHIMERA_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace chimera {

/// Deterministic xorshift64* generator with a splitmix64-scrambled seed.
///
/// Unlike std::mt19937, the output sequence is guaranteed stable across
/// platforms and standard-library implementations, which the record/replay
/// determinism tests rely on.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) { reseed(Seed); }

  /// Resets the generator to the sequence identified by \p Seed.
  void reseed(uint64_t Seed);

  /// Returns the next raw 64-bit value.
  uint64_t next();

  /// Returns a value uniformly distributed in [0, Bound). \p Bound must be
  /// nonzero.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a value uniformly distributed in [Lo, Hi] inclusive.
  uint64_t nextInRange(uint64_t Lo, uint64_t Hi);

  /// Returns true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den);

  /// Derives an independent child generator; used to give each simulated
  /// core or device its own stream without correlating them.
  Rng split();

private:
  uint64_t State = 0;
};

} // namespace chimera

#endif // CHIMERA_SUPPORT_RNG_H
