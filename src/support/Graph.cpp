//===- support/Graph.cpp - Undirected graphs and clique covers ------------===//

#include "support/Graph.h"

#include <algorithm>
#include <cassert>

using namespace chimera;

void UndirectedGraph::resize(unsigned NumNodes) {
  unsigned Words = (NumNodes + 63) / 64;
  Adj.resize(NumNodes);
  for (auto &Row : Adj)
    Row.resize(Words, 0);
}

void UndirectedGraph::addEdge(unsigned A, unsigned B) {
  assert(A < numNodes() && B < numNodes() && "edge endpoint out of range");
  if (A == B)
    return;
  setBit(A, B);
  setBit(B, A);
}

bool UndirectedGraph::hasEdge(unsigned A, unsigned B) const {
  assert(A < numNodes() && B < numNodes() && "edge endpoint out of range");
  if (A == B)
    return false;
  return bit(A, B);
}

std::vector<unsigned> UndirectedGraph::neighbors(unsigned Node) const {
  std::vector<unsigned> Result;
  for (unsigned B = 0, E = numNodes(); B != E; ++B)
    if (Node != B && bit(Node, B))
      Result.push_back(B);
  return Result;
}

unsigned UndirectedGraph::degree(unsigned Node) const {
  unsigned Count = 0;
  for (uint64_t Word : Adj[Node])
    Count += static_cast<unsigned>(__builtin_popcountll(Word));
  return Count;
}

unsigned UndirectedGraph::numEdges() const {
  unsigned Total = 0;
  for (unsigned N = 0, E = numNodes(); N != E; ++N)
    Total += degree(N);
  return Total / 2;
}

bool UndirectedGraph::isClique(const std::vector<unsigned> &Nodes) const {
  for (size_t I = 0; I != Nodes.size(); ++I)
    for (size_t J = I + 1; J != Nodes.size(); ++J)
      if (!hasEdge(Nodes[I], Nodes[J]))
        return false;
  return true;
}

std::vector<std::vector<unsigned>> chimera::greedyMaximalCliques(
    const UndirectedGraph &G) {
  unsigned N = G.numNodes();

  // Order nodes by decreasing degree, ties by id, so results are
  // deterministic and dense cliques are found first.
  std::vector<unsigned> Order(N);
  for (unsigned I = 0; I != N; ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(), [&](unsigned A, unsigned B) {
    return G.degree(A) > G.degree(B);
  });

  std::vector<bool> Covered(N, false);
  std::vector<std::vector<unsigned>> Cliques;

  for (unsigned Seed : Order) {
    if (Covered[Seed] || G.degree(Seed) == 0)
      continue;

    // Grow a maximal clique around Seed, preferring uncovered high-degree
    // candidates so each new clique covers as many new nodes as possible.
    std::vector<unsigned> Clique = {Seed};
    for (unsigned Cand : Order) {
      if (Cand == Seed)
        continue;
      bool AdjacentToAll = true;
      for (unsigned Member : Clique)
        if (!G.hasEdge(Cand, Member)) {
          AdjacentToAll = false;
          break;
        }
      if (AdjacentToAll)
        Clique.push_back(Cand);
    }

    std::sort(Clique.begin(), Clique.end());
    assert(G.isClique(Clique) && "greedy growth produced a non-clique");
    for (unsigned Member : Clique)
      Covered[Member] = true;
    Cliques.push_back(std::move(Clique));
  }
  return Cliques;
}
