//===- support/ThreadPool.cpp - Work-stealing thread pool ------------------===//

#include "support/ThreadPool.h"

#include <chrono>
#include <exception>

using namespace chimera;
using namespace chimera::support;

namespace {

/// Identity of the worker the current thread belongs to, so tasks
/// submitted from inside the pool land on the submitter's own deque.
thread_local const ThreadPool *CurrentPool = nullptr;
thread_local unsigned CurrentWorker = 0;

} // namespace

unsigned ThreadPool::defaultConcurrency() {
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}

ThreadPool::ThreadPool(unsigned Workers) {
  NumWorkers = Workers ? Workers : defaultConcurrency();
  if (NumWorkers <= 1) {
    NumWorkers = 1;
    return; // Inline pool: no queues, no threads.
  }
  Queues.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I)
    Queues.push_back(std::make_unique<WorkerQueue>());
  Threads.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  if (Threads.empty())
    return;
  {
    std::lock_guard<std::mutex> Lock(IdleMu);
    ShuttingDown = true;
  }
  IdleCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  if (isInline()) {
    Task();
    return;
  }
  unsigned Target;
  if (CurrentPool == this) {
    Target = CurrentWorker; // Keep child work local; thieves spread it.
  } else {
    std::lock_guard<std::mutex> Lock(IdleMu);
    Target = NextQueue;
    NextQueue = (NextQueue + 1) % NumWorkers;
  }
  {
    std::lock_guard<std::mutex> Lock(Queues[Target]->Mu);
    Queues[Target]->Tasks.push_back(std::move(Task));
  }
  IdleCv.notify_one();
}

bool ThreadPool::popTask(unsigned Victim, bool Steal,
                         std::function<void()> &Out) {
  WorkerQueue &Q = *Queues[Victim];
  std::lock_guard<std::mutex> Lock(Q.Mu);
  if (Q.Tasks.empty())
    return false;
  if (Steal) {
    Out = std::move(Q.Tasks.front()); // FIFO: steal the oldest/biggest.
    Q.Tasks.pop_front();
  } else {
    Out = std::move(Q.Tasks.back()); // LIFO: own work stays hot.
    Q.Tasks.pop_back();
  }
  return true;
}

bool ThreadPool::runOneTask(unsigned Self) {
  std::function<void()> Task;
  bool Got = Self < Queues.size() && popTask(Self, /*Steal=*/false, Task);
  for (unsigned I = 0; !Got && I != NumWorkers; ++I) {
    unsigned Victim = (Self + 1 + I) % NumWorkers;
    if (Victim == Self)
      continue;
    Got = popTask(Victim, /*Steal=*/true, Task);
  }
  if (!Got)
    return false;
  Task();
  return true;
}

void ThreadPool::workerLoop(unsigned Self) {
  CurrentPool = this;
  CurrentWorker = Self;
  for (;;) {
    if (runOneTask(Self))
      continue;
    std::unique_lock<std::mutex> Lock(IdleMu);
    if (ShuttingDown)
      return;
    // A submit between our failed scan and this wait bumps NextQueue /
    // notifies under IdleMu, so re-scan after any wakeup; the timed wait
    // is a belt-and-braces bound, not the wakeup mechanism.
    IdleCv.wait_for(Lock, std::chrono::milliseconds(10));
  }
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  if (isInline() || N == 1) {
    for (size_t I = 0; I != N; ++I)
      Fn(I); // Exceptions propagate directly to the caller.
    return;
  }

  struct JoinState {
    std::mutex Mu;
    std::condition_variable Cv;
    size_t Remaining;
    std::vector<std::exception_ptr> Errors;
  } State;
  State.Remaining = N;
  State.Errors.resize(N);

  for (size_t I = 0; I != N; ++I) {
    submit([&State, &Fn, I] {
      try {
        Fn(I);
      } catch (...) {
        State.Errors[I] = std::current_exception();
      }
      // Notify while still holding the mutex: once the caller can see
      // Remaining == 0 it may return and destroy State, so an unlocked
      // notify here would race with that destruction.
      std::lock_guard<std::mutex> Lock(State.Mu);
      if (--State.Remaining == 0)
        State.Cv.notify_all();
    });
  }

  // Help drain the pool while waiting so nested parallelFor calls from
  // inside a worker cannot deadlock.
  unsigned Self = CurrentPool == this ? CurrentWorker : NumWorkers;
  for (;;) {
    {
      std::unique_lock<std::mutex> Lock(State.Mu);
      if (State.Remaining == 0)
        break;
    }
    if (!runOneTask(Self)) {
      std::unique_lock<std::mutex> Lock(State.Mu);
      State.Cv.wait_for(Lock, std::chrono::milliseconds(2),
                        [&] { return State.Remaining == 0; });
      if (State.Remaining == 0)
        break;
    }
  }

  for (size_t I = 0; I != N; ++I)
    if (State.Errors[I])
      std::rethrow_exception(State.Errors[I]);
}
