//===- support/Compressor.h - Log compression ------------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-oriented compression used to report "compressed log sizes" the way
/// the paper reports gzip-compressed logs (Table 2). We implement a small
/// LZ77-with-varints codec from scratch: good enough to exploit the heavy
/// repetition in replay logs, fully deterministic, and round-trip tested.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_SUPPORT_COMPRESSOR_H
#define CHIMERA_SUPPORT_COMPRESSOR_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace chimera {

/// Appends \p Value to \p Out in LEB128 (unsigned varint) form.
void appendVarint(std::vector<uint8_t> &Out, uint64_t Value);

/// Reads a varint from \p Data starting at \p Pos, advancing \p Pos.
/// Asserts on truncated input.
uint64_t readVarint(const std::vector<uint8_t> &Data, size_t &Pos);

/// ZigZag-encodes a signed value so small magnitudes stay small varints.
uint64_t zigzagEncode(int64_t Value);
int64_t zigzagDecode(uint64_t Value);

/// Compresses \p Input with a greedy LZ77 (window 64 KiB, min match 4).
std::vector<uint8_t> lzCompress(const std::vector<uint8_t> &Input);

/// Inverse of lzCompress.
std::vector<uint8_t> lzDecompress(const std::vector<uint8_t> &Input);

/// Returns lzCompress(Input).size(); convenience for size accounting.
size_t compressedSize(const std::vector<uint8_t> &Input);

} // namespace chimera

#endif // CHIMERA_SUPPORT_COMPRESSOR_H
