//===- support/Compressor.h - Log compression ------------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-oriented compression used to report "compressed log sizes" the way
/// the paper reports gzip-compressed logs (Table 2). We implement a small
/// LZ77-with-varints codec from scratch: good enough to exploit the heavy
/// repetition in replay logs, fully deterministic, and round-trip tested.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_SUPPORT_COMPRESSOR_H
#define CHIMERA_SUPPORT_COMPRESSOR_H

#include "support/Expected.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace chimera {

/// Appends \p Value to \p Out in LEB128 (unsigned varint) form.
void appendVarint(std::vector<uint8_t> &Out, uint64_t Value);

/// Reads a varint from \p Data starting at \p Pos, advancing \p Pos.
/// Asserts on truncated input.
uint64_t readVarint(const std::vector<uint8_t> &Data, size_t &Pos);

/// ZigZag-encodes a signed value so small magnitudes stay small varints.
uint64_t zigzagEncode(int64_t Value);
int64_t zigzagDecode(uint64_t Value);

/// Compresses \p Input with a greedy LZ77 (window 64 KiB, min match 4).
std::vector<uint8_t> lzCompress(const std::vector<uint8_t> &Input);

/// Inverse of lzCompress for trusted, in-process bytes (asserts on
/// malformed input). Bytes that crossed a disk or a network are
/// untrusted — decompress those with lzDecompressEx.
std::vector<uint8_t> lzDecompress(const std::vector<uint8_t> &Input);

/// Cap on the declared uncompressed size lzDecompressEx will honor.
/// A corrupt size prefix must not drive a multi-gigabyte allocation
/// before the first payload byte is even examined.
inline const uint64_t MaxDecompressedBytes = uint64_t(1) << 30;

/// Fully bounds-checked inverse of lzCompress: truncated varints,
/// literal runs past the end, match distances reaching before the
/// start, a declared uncompressed size exceeding \p MaxOutput, and a
/// size prefix that disagrees with the decoded byte count all yield a
/// typed Error instead of UB.
support::Expected<std::vector<uint8_t>>
lzDecompressEx(const std::vector<uint8_t> &Input,
               uint64_t MaxOutput = MaxDecompressedBytes);

/// Returns lzCompress(Input).size(); convenience for size accounting.
size_t compressedSize(const std::vector<uint8_t> &Input);

} // namespace chimera

#endif // CHIMERA_SUPPORT_COMPRESSOR_H
