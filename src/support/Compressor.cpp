//===- support/Compressor.cpp - Log compression ---------------------------===//

#include "support/Compressor.h"

#include <cassert>
#include <cstring>

using namespace chimera;

void chimera::appendVarint(std::vector<uint8_t> &Out, uint64_t Value) {
  while (Value >= 0x80) {
    Out.push_back(static_cast<uint8_t>(Value) | 0x80);
    Value >>= 7;
  }
  Out.push_back(static_cast<uint8_t>(Value));
}

uint64_t chimera::readVarint(const std::vector<uint8_t> &Data, size_t &Pos) {
  uint64_t Value = 0;
  unsigned Shift = 0;
  for (;;) {
    assert(Pos < Data.size() && "truncated varint");
    uint8_t Byte = Data[Pos++];
    Value |= static_cast<uint64_t>(Byte & 0x7f) << Shift;
    if (!(Byte & 0x80))
      return Value;
    Shift += 7;
    assert(Shift < 64 && "varint too long");
  }
}

uint64_t chimera::zigzagEncode(int64_t Value) {
  return (static_cast<uint64_t>(Value) << 1) ^
         static_cast<uint64_t>(Value >> 63);
}

int64_t chimera::zigzagDecode(uint64_t Value) {
  return static_cast<int64_t>(Value >> 1) ^ -static_cast<int64_t>(Value & 1);
}

namespace {

const size_t MinMatch = 4;
const size_t MaxMatch = 254 + MinMatch; // Length code must fit a byte.
const size_t WindowSize = 1 << 16;
const unsigned HashBits = 15;

unsigned hash4(const uint8_t *P) {
  uint32_t V;
  std::memcpy(&V, P, 4);
  return (V * 2654435761u) >> (32 - HashBits);
}

} // namespace

std::vector<uint8_t> chimera::lzCompress(const std::vector<uint8_t> &Input) {
  // Token stream: <litLen varint> <literals> <matchLen byte> <dist varint>,
  // repeated; matchLen 0 means "no match" (end-of-stream literals).
  std::vector<uint8_t> Out;
  appendVarint(Out, Input.size());

  std::vector<size_t> Head(size_t(1) << HashBits, SIZE_MAX);
  size_t Pos = 0, LitStart = 0;
  const uint8_t *Data = Input.data();
  size_t N = Input.size();

  auto flushLiterals = [&](size_t End) {
    appendVarint(Out, End - LitStart);
    Out.insert(Out.end(), Data + LitStart, Data + End);
  };

  while (Pos + MinMatch <= N) {
    unsigned H = hash4(Data + Pos);
    size_t Cand = Head[H];
    Head[H] = Pos;

    size_t MatchLen = 0;
    if (Cand != SIZE_MAX && Pos - Cand <= WindowSize &&
        std::memcmp(Data + Cand, Data + Pos, MinMatch) == 0) {
      MatchLen = MinMatch;
      size_t Limit = std::min(MaxMatch, N - Pos);
      while (MatchLen < Limit && Data[Cand + MatchLen] == Data[Pos + MatchLen])
        ++MatchLen;
    }

    if (MatchLen < MinMatch) {
      ++Pos;
      continue;
    }

    flushLiterals(Pos);
    Out.push_back(static_cast<uint8_t>(MatchLen - MinMatch + 1));
    appendVarint(Out, Pos - Cand);
    Pos += MatchLen;
    LitStart = Pos;
  }

  // Trailing literals, terminated by matchLen sentinel 0.
  flushLiterals(N);
  Out.push_back(0);
  return Out;
}

std::vector<uint8_t> chimera::lzDecompress(const std::vector<uint8_t> &Input) {
  support::Expected<std::vector<uint8_t>> Out = lzDecompressEx(Input);
  assert(Out.hasValue() && "lzDecompress on malformed input");
  if (!Out)
    return {}; // Release builds: empty, never UB.
  return Out.take();
}

namespace {

/// Varint read that reports truncation/overlength instead of asserting;
/// compressed bytes here come from disk and may be corrupt.
bool readVarintChecked(const std::vector<uint8_t> &Data, size_t &Pos,
                       uint64_t &Value) {
  Value = 0;
  for (unsigned Shift = 0; Shift < 64; Shift += 7) {
    if (Pos >= Data.size())
      return false;
    uint8_t Byte = Data[Pos++];
    Value |= static_cast<uint64_t>(Byte & 0x7f) << Shift;
    if (!(Byte & 0x80))
      return true;
  }
  return false;
}

support::Error corrupt(const char *What, size_t Pos) {
  return support::Error::failure("corrupt compressed data at byte " +
                                 std::to_string(Pos) + ": " + What);
}

} // namespace

support::Expected<std::vector<uint8_t>>
chimera::lzDecompressEx(const std::vector<uint8_t> &Input,
                        uint64_t MaxOutput) {
  size_t Pos = 0;
  uint64_t ExpectedSize = 0;
  if (!readVarintChecked(Input, Pos, ExpectedSize))
    return corrupt("truncated size prefix", Pos);
  if (ExpectedSize > MaxOutput)
    return support::Error::failure(
        "corrupt compressed data: declared size " +
        std::to_string(ExpectedSize) + " exceeds limit " +
        std::to_string(MaxOutput));

  std::vector<uint8_t> Out;
  Out.reserve(ExpectedSize);

  for (;;) {
    uint64_t LitLen = 0;
    if (!readVarintChecked(Input, Pos, LitLen))
      return corrupt("truncated literal length", Pos);
    if (LitLen > Input.size() - Pos)
      return corrupt("literal run past end", Pos);
    if (Out.size() + LitLen > ExpectedSize)
      return corrupt("output exceeds declared size", Pos);
    Out.insert(Out.end(), Input.begin() + Pos, Input.begin() + Pos + LitLen);
    Pos += LitLen;

    if (Pos >= Input.size())
      return corrupt("missing match token", Pos);
    uint8_t LenCode = Input[Pos++];
    if (LenCode == 0)
      break;
    size_t MatchLen = LenCode - 1 + MinMatch;
    uint64_t Dist = 0;
    if (!readVarintChecked(Input, Pos, Dist))
      return corrupt("truncated match distance", Pos);
    if (Dist == 0 || Dist > Out.size())
      return corrupt("match distance out of range", Pos);
    if (Out.size() + MatchLen > ExpectedSize)
      return corrupt("output exceeds declared size", Pos);
    size_t From = Out.size() - Dist;
    for (size_t I = 0; I != MatchLen; ++I)
      Out.push_back(Out[From + I]); // May overlap; copy byte-by-byte.
  }

  if (Out.size() != ExpectedSize)
    return corrupt("decompressed size mismatch", Pos);
  if (Pos != Input.size())
    return corrupt("trailing bytes", Pos);
  return Out;
}

size_t chimera::compressedSize(const std::vector<uint8_t> &Input) {
  return lzCompress(Input).size();
}
