//===- support/Trace.cpp - Span tracing (Chrome trace_event) --------------===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include <cstdio>

namespace chimera {
namespace obs {

int TraceRecorder::tidFor(std::thread::id Id) {
  // Caller holds Mu.
  auto It = Tids.find(Id);
  if (It != Tids.end())
    return It->second;
  int Tid = static_cast<int>(Tids.size()) + 1;
  Tids.emplace(Id, Tid);
  return Tid;
}

void TraceRecorder::complete(std::string Name, std::string Cat,
                             uint64_t StartUs, uint64_t DurUs,
                             std::string ArgsJson) {
  std::lock_guard<std::mutex> Lock(Mu);
  TraceSpan S;
  S.Name = std::move(Name);
  S.Cat = std::move(Cat);
  S.StartUs = StartUs;
  S.DurUs = DurUs;
  S.Tid = tidFor(std::this_thread::get_id());
  S.ArgsJson = std::move(ArgsJson);
  Spans.push_back(std::move(S));
}

size_t TraceRecorder::spanCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Spans.size();
}

static void appendEscaped(std::string &Out, const std::string &Text) {
  for (char C : Text) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
      continue;
    }
    Out += C;
  }
}

std::string TraceRecorder::json() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Out = "{\"traceEvents\":[";
  bool First = true;
  for (const TraceSpan &S : Spans) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n{\"name\":\"";
    appendEscaped(Out, S.Name);
    Out += "\",\"cat\":\"";
    appendEscaped(Out, S.Cat);
    Out += "\",\"ph\":\"X\",\"ts\":" + std::to_string(S.StartUs) +
           ",\"dur\":" + std::to_string(S.DurUs) +
           ",\"pid\":1,\"tid\":" + std::to_string(S.Tid);
    if (!S.ArgsJson.empty())
      Out += ",\"args\":{" + S.ArgsJson + "}";
    Out += "}";
  }
  Out += "\n]}\n";
  return Out;
}

support::Error TraceRecorder::writeFile(const std::string &Path) const {
  std::string Doc = json();
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return support::Error::failure("cannot open trace file '" + Path + "'");
  size_t Written = std::fwrite(Doc.data(), 1, Doc.size(), F);
  bool CloseOk = std::fclose(F) == 0;
  if (Written != Doc.size() || !CloseOk)
    return support::Error::failure("short write to trace file '" + Path + "'");
  return support::Error::success();
}

} // namespace obs
} // namespace chimera
