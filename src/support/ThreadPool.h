//===- support/ThreadPool.h - Work-stealing thread pool ---------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool shared by the analysis and
/// profiling layers. Each worker owns a deque: it pushes and pops its
/// own work LIFO (cache-friendly for the recursive fan-out pattern) and
/// steals FIFO from victims when starved, so coarse tasks migrate to
/// idle workers. External submissions land on workers round-robin.
///
/// Determinism contract: the pool never promises an execution *order*,
/// so parallel clients must write results into pre-sized, index-addressed
/// slots and merge them in index order after the join — every Chimera
/// use (profile-run sampling, per-SCC summary composition) follows that
/// pattern, which is why analysis output is bit-identical for any worker
/// count. `parallelFor` blocks until all indices ran; the calling thread
/// helps execute pending work while it waits, so nested use from inside
/// a worker cannot deadlock. The first raised exception (lowest index)
/// is rethrown on the caller.
///
/// A pool constructed with `Workers <= 1` spawns no threads at all and
/// runs every task inline on the submitting thread; `AnalysisJobs = 1`
/// therefore gives a genuinely serial (and allocation-light) pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_SUPPORT_THREADPOOL_H
#define CHIMERA_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace chimera {
namespace support {

class ThreadPool {
public:
  /// \p Workers = 0 selects one worker per hardware thread.
  explicit ThreadPool(unsigned Workers = 0);

  /// Drains all pending work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of worker threads (1 when the pool runs inline).
  unsigned numWorkers() const { return NumWorkers; }

  /// True when the pool executes tasks on the submitting thread.
  bool isInline() const { return Threads.empty(); }

  /// Enqueues \p Task (runs it inline for single-worker pools).
  ///
  /// \p Task must not throw: on a threaded pool it executes on a worker
  /// with no handler on the stack, so an escaping exception calls
  /// std::terminate (and on an inline pool it would propagate to an
  /// arbitrary submitter instead). Tasks that can throw belong in
  /// `parallelFor`, which captures and rethrows on the caller.
  void submit(std::function<void()> Task);

  /// Runs `Fn(0) .. Fn(N-1)`, each exactly once, and blocks until all
  /// have finished. The caller participates in execution. If any
  /// invocations throw, the exception of the lowest index is rethrown.
  void parallelFor(size_t N, const std::function<void(size_t)> &Fn);

  /// `std::thread::hardware_concurrency()`, clamped to at least 1.
  static unsigned defaultConcurrency();

private:
  struct WorkerQueue {
    std::mutex Mu;
    std::deque<std::function<void()>> Tasks;
  };

  void workerLoop(unsigned Self);
  /// Pops one task (own queue, then steals) and runs it. Returns false
  /// when no task was available anywhere.
  bool runOneTask(unsigned Self);
  bool popTask(unsigned Victim, bool Steal, std::function<void()> &Out);

  unsigned NumWorkers = 1;
  std::vector<std::unique_ptr<WorkerQueue>> Queues;
  std::vector<std::thread> Threads;

  std::mutex IdleMu;
  std::condition_variable IdleCv;
  bool ShuttingDown = false;
  unsigned NextQueue = 0; ///< Round-robin cursor for external submits.
};

} // namespace support
} // namespace chimera

#endif // CHIMERA_SUPPORT_THREADPOOL_H
