//===- support/Trace.h - Span tracing (Chrome trace_event) ------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Span-based structured tracing. A `TraceRecorder` collects completed
/// spans (name, category, start, duration, optional args) and renders
/// them as Chrome `trace_event` JSON — load the file at
/// `chrome://tracing` or https://ui.perfetto.dev.
///
/// The API is built around the same null-is-off convention as the
/// metrics registry: every entry point takes a possibly-null
/// `TraceRecorder *`, and a null recorder makes `TraceScope`
/// construction a single pointer test (no clock read, no allocation).
/// That is the whole disabled-path story — there is no compile-time
/// flag to get wrong, and the ≤1% overhead bound is enforced by a
/// bench comparison, not by faith.
///
/// Spans measure *host* time (steady_clock); they never read or write
/// simulated state, so tracing cannot perturb logs or hashes.
///
/// Sampling: `TraceRecorder(SampleEvery = N)` keeps 1-in-N spans,
/// chosen by a deterministic per-recorder counter (span admission order
/// under one recorder is deterministic in single-threaded phases and
/// merely *stable enough* under concurrency; sampling only thins the
/// trace, metrics stay exact).
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_SUPPORT_TRACE_H
#define CHIMERA_SUPPORT_TRACE_H

#include "support/Expected.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace chimera {
namespace obs {

/// One completed span, microseconds relative to the recorder's epoch.
struct TraceSpan {
  std::string Name;
  std::string Cat;
  uint64_t StartUs = 0;
  uint64_t DurUs = 0;
  int Tid = 0;
  std::string ArgsJson; // pre-rendered JSON object body, may be empty
};

/// Thread-safe collector of completed spans.
class TraceRecorder {
public:
  /// \p SampleEvery: record every Nth admitted span (1 = all).
  explicit TraceRecorder(unsigned SampleEvery = 1)
      : Epoch(std::chrono::steady_clock::now()),
        SampleEvery(SampleEvery == 0 ? 1 : SampleEvery) {}

  /// Microseconds since this recorder was constructed.
  uint64_t nowUs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - Epoch)
            .count());
  }

  /// True when the deterministic sampling counter admits the next span.
  /// Callers that skip a span on false must not call again for it.
  bool admit() {
    if (SampleEvery == 1)
      return true;
    return NextSpan.fetch_add(1, std::memory_order_relaxed) % SampleEvery == 0;
  }

  /// Appends a completed span (thread-safe).
  void complete(std::string Name, std::string Cat, uint64_t StartUs,
                uint64_t DurUs, std::string ArgsJson = std::string());

  /// Number of spans recorded so far.
  size_t spanCount() const;

  /// The full Chrome trace_event document: {"traceEvents":[...]}.
  std::string json() const;

  /// Writes json() to \p Path; fails with a typed error on IO problems.
  support::Error writeFile(const std::string &Path) const;

private:
  int tidFor(std::thread::id Id);

  std::chrono::steady_clock::time_point Epoch;
  unsigned SampleEvery;
  std::atomic<uint64_t> NextSpan{0};
  mutable std::mutex Mu;
  std::vector<TraceSpan> Spans;
  std::unordered_map<std::thread::id, int> Tids;
};

/// RAII span: times from construction to destruction and records into
/// the recorder (if any, and if sampling admits it).
class TraceScope {
public:
  TraceScope(TraceRecorder *R, const char *Name, const char *Cat = "chimera")
      : R(R && R->admit() ? R : nullptr), Name(Name), Cat(Cat),
        StartUs(this->R ? this->R->nowUs() : 0) {}

  TraceScope(const TraceScope &) = delete;
  TraceScope &operator=(const TraceScope &) = delete;

  /// Attaches a pre-rendered JSON object body, e.g. "\"hits\": 3".
  void args(std::string Json) { ArgsJson = std::move(Json); }

  ~TraceScope() {
    if (R)
      R->complete(Name, Cat, StartUs, R->nowUs() - StartUs,
                  std::move(ArgsJson));
  }

private:
  TraceRecorder *R;
  const char *Name;
  const char *Cat;
  uint64_t StartUs;
  std::string ArgsJson;
};

#define CHIMERA_TRACE_CONCAT_IMPL(A, B) A##B
#define CHIMERA_TRACE_CONCAT(A, B) CHIMERA_TRACE_CONCAT_IMPL(A, B)

/// Span covering the rest of the enclosing scope. \p Rec may be null.
#define CHIMERA_TRACE_SPAN(Rec, Name)                                          \
  ::chimera::obs::TraceScope CHIMERA_TRACE_CONCAT(ChimeraTraceSpan_,           \
                                                  __LINE__)(Rec, Name)

} // namespace obs
} // namespace chimera

#endif // CHIMERA_SUPPORT_TRACE_H
