//===- support/Crc32.h - CRC-32 checksums -----------------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for log segment
/// integrity. The segmented log format checksums every segment header
/// and payload so a flipped bit on disk is detected before any byte is
/// decoded (see docs/LOG_FORMAT.md). Table-driven, deterministic, and
/// incremental so the writer can checksum as it frames.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_SUPPORT_CRC32_H
#define CHIMERA_SUPPORT_CRC32_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace chimera {
namespace support {

/// Incremental CRC-32 accumulator.
class Crc32 {
public:
  Crc32 &update(const void *Data, size_t Size);
  Crc32 &update(const std::vector<uint8_t> &Data) {
    return update(Data.data(), Data.size());
  }

  /// Finalized checksum of everything fed so far. Does not reset; more
  /// updates may follow.
  uint32_t value() const { return ~State; }

private:
  uint32_t State = 0xffffffffu;
};

/// One-shot CRC-32 of \p Size bytes at \p Data.
uint32_t crc32(const void *Data, size_t Size);

inline uint32_t crc32(const std::vector<uint8_t> &Data) {
  return crc32(Data.data(), Data.size());
}

/// One-shot CRC-32 of a byte range inside \p Data; the caller
/// guarantees the range is in bounds.
inline uint32_t crc32Range(const std::vector<uint8_t> &Data, size_t Begin,
                           size_t Size) {
  return crc32(Data.data() + Begin, Size);
}

} // namespace support
} // namespace chimera

#endif // CHIMERA_SUPPORT_CRC32_H
