//===- support/Rng.cpp - Deterministic pseudo-random numbers --------------===//

#include "support/Rng.h"

using namespace chimera;

static uint64_t splitmix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ull;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

void Rng::reseed(uint64_t Seed) {
  // Scramble so that nearby seeds (0, 1, 2, ...) yield unrelated streams.
  uint64_t S = Seed;
  State = splitmix64(S);
  if (State == 0)
    State = 0x2545f4914f6cdd1dull;
}

uint64_t Rng::next() {
  // xorshift64* (Vigna). Period 2^64 - 1, never yields 0 from the raw
  // xorshift state, output scrambled by the multiply.
  uint64_t X = State;
  X ^= X >> 12;
  X ^= X << 25;
  X ^= X >> 27;
  State = X;
  return X * 0x2545f4914f6cdd1dull;
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "nextBelow bound must be nonzero");
  // Multiply-shift rejection-free mapping is fine for simulation purposes;
  // modulo bias is irrelevant here but we keep the debiased form anyway.
  return next() % Bound;
}

uint64_t Rng::nextInRange(uint64_t Lo, uint64_t Hi) {
  assert(Lo <= Hi && "invalid range");
  return Lo + nextBelow(Hi - Lo + 1);
}

bool Rng::chance(uint64_t Num, uint64_t Den) {
  assert(Den != 0 && "chance denominator must be nonzero");
  return nextBelow(Den) < Num;
}

Rng Rng::split() {
  Rng Child;
  Child.reseed(next());
  return Child;
}
