//===- support/Hash.cpp - Streaming FNV-1a hashing ------------------------===//

#include "support/Hash.h"

using namespace chimera;

static const uint64_t FnvPrime = 0x100000001b3ull;

void Hasher::addBytes(const void *Data, size_t Size) {
  const auto *Bytes = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I != Size; ++I) {
    State ^= Bytes[I];
    State *= FnvPrime;
  }
}

void Hasher::addWord(uint64_t Word) {
  for (int I = 0; I != 8; ++I) {
    State ^= (Word >> (I * 8)) & 0xff;
    State *= FnvPrime;
  }
}

void Hasher::addWords(const std::vector<uint64_t> &Words) {
  for (uint64_t W : Words)
    addWord(W);
}

void Hasher::addString(const std::string &Str) {
  addBytes(Str.data(), Str.size());
}

uint64_t chimera::hashWords(const std::vector<uint64_t> &Words) {
  Hasher H;
  H.addWords(Words);
  return H.digest();
}
