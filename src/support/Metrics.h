//===- support/Metrics.h - Unified metrics registry -------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single metrics surface for the whole pipeline: counters, gauges,
/// and histograms registered by dotted name in one `obs::Registry`, read
/// back as an immutable `Snapshot` that can be diffed, tabulated, or
/// serialized to JSON.
///
/// Design constraints, in order:
///  - *Inert*: metrics observe host-side execution only. Nothing in this
///    file may feed back into simulated state; a run with a registry
///    attached must produce bit-identical logs/hashes to one without.
///  - *Lock-free on the hot path*: registration (naming, allocation)
///    takes a mutex, but a registered handle increments a relaxed
///    atomic — no lock, no allocation, no branch beyond the null check.
///  - *Null-handle = no-op*: every handle wraps a possibly-null cell
///    pointer, so call sites write `C.add(1)` unconditionally and the
///    disabled path costs one predictable-not-taken branch.
///
/// Cells live in `std::deque`s so registration never invalidates
/// previously handed-out pointers.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_SUPPORT_METRICS_H
#define CHIMERA_SUPPORT_METRICS_H

#include "support/Expected.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace chimera {
namespace obs {

/// How much observability a component should collect.
///
/// `Sampled` affects *tracing* only (spans are recorded 1-in-N);
/// metrics stay exact in every enabled mode so snapshots are
/// reproducible. `Off` means no registry exists at all.
enum class ObsMode { Off, Sampled, Full };

/// Parses "off" / "sampled" / "full".
support::Expected<ObsMode> parseObsMode(const std::string &Text);
const char *obsModeName(ObsMode Mode);

namespace detail {

struct CounterCell {
  std::atomic<uint64_t> Value{0};
};

struct GaugeCell {
  std::atomic<int64_t> Value{0};
};

/// Power-of-two bucketed histogram: bucket i counts samples whose
/// bit_width is i (bucket 0 holds zeros). 65 cells cover every uint64.
struct HistogramCell {
  static constexpr int NumBuckets = 65;
  std::atomic<uint64_t> Buckets[NumBuckets];
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Min{~uint64_t{0}};
  std::atomic<uint64_t> Max{0};
  HistogramCell() {
    for (auto &B : Buckets)
      B.store(0, std::memory_order_relaxed);
  }
};

} // namespace detail

/// Monotonic counter handle. Copyable; null handle is a no-op.
class Counter {
public:
  Counter() = default;
  void add(uint64_t Delta) {
    if (Cell)
      Cell->Value.fetch_add(Delta, std::memory_order_relaxed);
  }
  void inc() { add(1); }
  explicit operator bool() const { return Cell != nullptr; }

private:
  friend class Registry;
  explicit Counter(detail::CounterCell *C) : Cell(C) {}
  detail::CounterCell *Cell = nullptr;
};

/// Last-value-wins gauge handle. Copyable; null handle is a no-op.
class Gauge {
public:
  Gauge() = default;
  void set(int64_t Value) {
    if (Cell)
      Cell->Value.store(Value, std::memory_order_relaxed);
  }
  void add(int64_t Delta) {
    if (Cell)
      Cell->Value.fetch_add(Delta, std::memory_order_relaxed);
  }
  explicit operator bool() const { return Cell != nullptr; }

private:
  friend class Registry;
  explicit Gauge(detail::GaugeCell *C) : Cell(C) {}
  detail::GaugeCell *Cell = nullptr;
};

/// Power-of-two-bucketed histogram handle. Copyable; null = no-op.
class Histogram {
public:
  Histogram() = default;
  void record(uint64_t Sample);
  explicit operator bool() const { return Cell != nullptr; }

private:
  friend class Registry;
  explicit Histogram(detail::HistogramCell *C) : Cell(C) {}
  detail::HistogramCell *Cell = nullptr;
};

/// One metric's value at snapshot time.
struct MetricValue {
  enum class Kind { Counter, Gauge, Histogram };
  std::string Name;
  Kind K = Kind::Counter;
  /// Counter: the count. Gauge: the value. Histogram: the Sum.
  int64_t Value = 0;
  /// Histogram-only extras (Count == 0 for counters/gauges).
  uint64_t Count = 0;
  uint64_t Min = 0;
  uint64_t Max = 0;
  /// Sparse nonzero buckets: (bucket index, count).
  std::vector<std::pair<int, uint64_t>> Buckets;
};

/// An immutable, name-sorted copy of a registry's state.
class Snapshot {
public:
  Snapshot() = default;
  explicit Snapshot(std::vector<MetricValue> Values);

  const std::vector<MetricValue> &values() const { return Values; }
  bool empty() const { return Values.empty(); }

  /// The metric with exactly this name, or null.
  const MetricValue *find(const std::string &Name) const;
  /// Convenience: find(Name)->Value, or Default when absent.
  int64_t value(const std::string &Name, int64_t Default = 0) const;

  /// this - Base, per metric: counters/histogram sums subtract, gauges
  /// keep their current value. Metrics absent from Base pass through.
  Snapshot diff(const Snapshot &Base) const;

  /// Flat JSON object {"name": value, ...}; histograms expand to
  /// "name.sum" / "name.count" / "name.min" / "name.max".
  std::string toJson() const;
  /// Human-readable two-column table.
  std::string toTable() const;

private:
  std::vector<MetricValue> Values; // sorted by Name
};

/// The metrics registry. One per pipeline (or bench); handed down by
/// raw pointer, where null uniformly means "observability off".
class Registry {
public:
  Registry() = default;
  Registry(const Registry &) = delete;
  Registry &operator=(const Registry &) = delete;

  /// Registration: returns the handle for \p Name, creating the cell on
  /// first use. Same name + same kind → same cell (so re-registration
  /// accumulates); same name + different kind is an error in the caller
  /// and returns a null handle rather than aliasing storage.
  Counter counter(const std::string &Name);
  Gauge gauge(const std::string &Name);
  Histogram histogram(const std::string &Name);

  /// A consistent-enough copy of every registered metric. ("Enough":
  /// relaxed loads — exact once the writers have quiesced, which is the
  /// only time snapshots are taken.)
  Snapshot snapshot() const;

private:
  enum class Kind { Counter, Gauge, Histogram };
  struct Entry {
    Kind K;
    void *Cell;
  };
  mutable std::mutex Mu;
  std::map<std::string, Entry> Names;
  std::deque<detail::CounterCell> Counters;
  std::deque<detail::GaugeCell> Gauges;
  std::deque<detail::HistogramCell> Histograms;
};

/// Dotted-name prefix helper: `Scope(R, "runtime").counter("quanta")`
/// registers "runtime.quanta". A Scope over a null registry hands out
/// null (no-op) handles, so call sites never branch on mode.
class Scope {
public:
  Scope(Registry *R, std::string Prefix) : R(R), Prefix(std::move(Prefix)) {}

  Scope sub(const std::string &Name) const { return Scope(R, join(Name)); }
  Counter counter(const std::string &Name) const {
    return R ? R->counter(join(Name)) : Counter();
  }
  Gauge gauge(const std::string &Name) const {
    return R ? R->gauge(join(Name)) : Gauge();
  }
  Histogram histogram(const std::string &Name) const {
    return R ? R->histogram(join(Name)) : Histogram();
  }
  Registry *registry() const { return R; }
  explicit operator bool() const { return R != nullptr; }

private:
  std::string join(const std::string &Name) const {
    return Prefix.empty() ? Name : Prefix + "." + Name;
  }
  Registry *R;
  std::string Prefix;
};

/// RAII wall-clock timer: adds the elapsed microseconds to \p WallUs on
/// destruction. A null counter skips the clock reads entirely, so the
/// disabled path is two branches.
class ScopedTimer {
public:
  explicit ScopedTimer(Counter WallUs) : C(WallUs) {
    if (C)
      Start = std::chrono::steady_clock::now();
  }
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;
  ~ScopedTimer() {
    if (C)
      C.add(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - Start)
              .count()));
  }

private:
  Counter C;
  std::chrono::steady_clock::time_point Start;
};

/// Mangles an arbitrary debug string into a metric-name segment:
/// [A-Za-z0-9_] pass through, everything else becomes '_'.
std::string sanitizeMetricSegment(const std::string &Text);

} // namespace obs
} // namespace chimera

#endif // CHIMERA_SUPPORT_METRICS_H
