//===- support/Expected.h - Result types for fallible APIs ------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The repository-wide error-handling convention: fallible entry points
/// return `Expected<T>` (a value or an `Error`), and fallible operations
/// without a payload return `Error` directly. This replaces the older
/// `std::string *Error` out-parameters, which composed badly once
/// pipeline stages started fanning out across threads (an out-param has
/// no owner when several tasks can fail concurrently).
///
/// Conventions:
///  - `Error` is cheap to move and contextually convertible to bool
///    (true means *failure*, mirroring `llvm::Error`).
///  - `Expected<T>` is contextually convertible to bool (true means a
///    value is present), dereferences like a pointer, and surrenders its
///    payload via `take()`.
///  - Errors carry a human-readable message; stages may prepend context
///    with `Error::context`.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_SUPPORT_EXPECTED_H
#define CHIMERA_SUPPORT_EXPECTED_H

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace chimera {
namespace support {

/// Success-or-failure result carrying a message on failure.
class Error {
public:
  /// Default-constructed errors are success.
  Error() = default;

  static Error success() { return Error(); }
  static Error failure(std::string Message) {
    Error E;
    E.Failed = true;
    E.Msg = std::move(Message);
    return E;
  }

  /// True when this represents a failure.
  explicit operator bool() const { return Failed; }

  const std::string &message() const { return Msg; }

  /// Returns a failure whose message is "<Prefix>: <original>"; success
  /// passes through unchanged.
  Error context(const std::string &Prefix) const {
    if (!Failed)
      return Error();
    return failure(Prefix + ": " + Msg);
  }

private:
  bool Failed = false;
  std::string Msg;
};

/// A value of type \p T or an Error. Move-only payloads are supported.
template <typename T> class Expected {
public:
  /// Implicit from a value (success).
  Expected(T Value) : Storage(std::in_place_index<0>, std::move(Value)) {}

  /// Implicit from an Error, which must represent a failure.
  Expected(Error Err) : Storage(std::in_place_index<1>, std::move(Err)) {
    assert(std::get<1>(Storage) && "Expected built from a success Error");
  }

  /// True when a value is present.
  explicit operator bool() const { return hasValue(); }
  bool hasValue() const { return Storage.index() == 0; }

  T &operator*() & {
    assert(hasValue() && "dereferencing an errored Expected");
    return std::get<0>(Storage);
  }
  const T &operator*() const & {
    assert(hasValue() && "dereferencing an errored Expected");
    return std::get<0>(Storage);
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  /// Moves the value out; only valid when hasValue().
  T take() {
    assert(hasValue() && "taking from an errored Expected");
    return std::move(std::get<0>(Storage));
  }

  /// The failure; only valid when !hasValue().
  const Error &error() const {
    assert(!hasValue() && "no error in a valued Expected");
    return std::get<1>(Storage);
  }

private:
  std::variant<T, Error> Storage;
};

} // namespace support
} // namespace chimera

#endif // CHIMERA_SUPPORT_EXPECTED_H
