//===- support/Hash.h - Streaming FNV-1a hashing ----------------*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A streaming 64-bit FNV-1a hasher. Used to fingerprint final machine
/// states (memory + output) so record and replay runs can be compared for
/// bit-exact determinism.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_SUPPORT_HASH_H
#define CHIMERA_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace chimera {

/// Incremental FNV-1a over arbitrary byte and word streams.
class Hasher {
public:
  /// Mixes \p Size raw bytes into the hash.
  void addBytes(const void *Data, size_t Size);

  /// Mixes a single 64-bit word (as its 8 little-endian bytes).
  void addWord(uint64_t Word);

  /// Mixes every element of \p Words.
  void addWords(const std::vector<uint64_t> &Words);

  /// Mixes the characters of \p Str.
  void addString(const std::string &Str);

  /// Returns the current digest.
  uint64_t digest() const { return State; }

private:
  uint64_t State = 0xcbf29ce484222325ull;
};

/// Convenience one-shot hash of a word vector.
uint64_t hashWords(const std::vector<uint64_t> &Words);

} // namespace chimera

#endif // CHIMERA_SUPPORT_HASH_H
