//===- support/Graph.h - Undirected graphs and clique covers ----*- C++ -*-===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small undirected-graph utility used by Chimera's clique analysis
/// (paper section 4.2): the profiler builds a graph whose nodes are racy
/// functions and whose edges connect functions observed to be mutually
/// non-concurrent; maximal cliques of that graph share one function-lock.
///
//===----------------------------------------------------------------------===//

#ifndef CHIMERA_SUPPORT_GRAPH_H
#define CHIMERA_SUPPORT_GRAPH_H

#include <cstdint>
#include <vector>

namespace chimera {

/// A dense undirected graph over node ids [0, NumNodes).
class UndirectedGraph {
public:
  explicit UndirectedGraph(unsigned NumNodes = 0) { resize(NumNodes); }

  /// Grows the graph to \p NumNodes nodes (existing edges are kept).
  void resize(unsigned NumNodes);

  unsigned numNodes() const { return static_cast<unsigned>(Adj.size()); }

  /// Adds the undirected edge {A, B}. Self-edges are ignored.
  void addEdge(unsigned A, unsigned B);

  bool hasEdge(unsigned A, unsigned B) const;

  /// Returns the neighbor ids of \p Node in increasing order.
  std::vector<unsigned> neighbors(unsigned Node) const;

  unsigned degree(unsigned Node) const;

  unsigned numEdges() const;

  /// Returns true if every pair of nodes in \p Nodes is connected.
  bool isClique(const std::vector<unsigned> &Nodes) const;

private:
  // Bitset adjacency rows; fine for the few hundred racy functions Chimera
  // sees per program.
  std::vector<std::vector<uint64_t>> Adj;

  bool bit(unsigned A, unsigned B) const {
    return (Adj[A][B >> 6] >> (B & 63)) & 1;
  }
  void setBit(unsigned A, unsigned B) { Adj[A][B >> 6] |= 1ull << (B & 63); }
};

/// Computes a greedy maximal-clique cover of \p G.
///
/// Mirrors the paper's greedy algorithm: repeatedly seed a clique from the
/// highest-degree uncovered node, extend it greedily to a maximal clique
/// (preferring high-degree candidates), and continue until every node with
/// at least one edge is covered. A node can appear in multiple cliques, as
/// in the paper's Figure 3(c) where `carol` belongs to two cliques.
///
/// \returns the cliques, each a sorted list of node ids, deterministic for
/// a given graph.
std::vector<std::vector<unsigned>> greedyMaximalCliques(
    const UndirectedGraph &G);

} // namespace chimera

#endif // CHIMERA_SUPPORT_GRAPH_H
