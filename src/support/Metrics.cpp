//===- support/Metrics.cpp - Unified metrics registry ---------------------===//
//
// Part of the Chimera reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace chimera {
namespace obs {

support::Expected<ObsMode> parseObsMode(const std::string &Text) {
  if (Text == "off")
    return ObsMode::Off;
  if (Text == "sampled")
    return ObsMode::Sampled;
  if (Text == "full")
    return ObsMode::Full;
  return support::Error::failure("unknown observability mode '" + Text +
                                 "' (expected off|sampled|full)");
}

const char *obsModeName(ObsMode Mode) {
  switch (Mode) {
  case ObsMode::Off:
    return "off";
  case ObsMode::Sampled:
    return "sampled";
  case ObsMode::Full:
    return "full";
  }
  return "?";
}

void Histogram::record(uint64_t Sample) {
  if (!Cell)
    return;
  int Bucket = Sample == 0 ? 0 : std::bit_width(Sample);
  Cell->Buckets[Bucket].fetch_add(1, std::memory_order_relaxed);
  Cell->Count.fetch_add(1, std::memory_order_relaxed);
  Cell->Sum.fetch_add(Sample, std::memory_order_relaxed);
  // Min/Max via CAS loops; contention here is snapshot-rare in practice
  // (histograms record from the single-threaded machine loop).
  uint64_t Cur = Cell->Min.load(std::memory_order_relaxed);
  while (Sample < Cur &&
         !Cell->Min.compare_exchange_weak(Cur, Sample,
                                          std::memory_order_relaxed))
    ;
  Cur = Cell->Max.load(std::memory_order_relaxed);
  while (Sample > Cur &&
         !Cell->Max.compare_exchange_weak(Cur, Sample,
                                          std::memory_order_relaxed))
    ;
}

Counter Registry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Names.find(Name);
  if (It != Names.end())
    return It->second.K == Kind::Counter
               ? Counter(static_cast<detail::CounterCell *>(It->second.Cell))
               : Counter();
  Counters.emplace_back();
  Names.emplace(Name, Entry{Kind::Counter, &Counters.back()});
  return Counter(&Counters.back());
}

Gauge Registry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Names.find(Name);
  if (It != Names.end())
    return It->second.K == Kind::Gauge
               ? Gauge(static_cast<detail::GaugeCell *>(It->second.Cell))
               : Gauge();
  Gauges.emplace_back();
  Names.emplace(Name, Entry{Kind::Gauge, &Gauges.back()});
  return Gauge(&Gauges.back());
}

Histogram Registry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Names.find(Name);
  if (It != Names.end())
    return It->second.K == Kind::Histogram
               ? Histogram(
                     static_cast<detail::HistogramCell *>(It->second.Cell))
               : Histogram();
  Histograms.emplace_back();
  Names.emplace(Name, Entry{Kind::Histogram, &Histograms.back()});
  return Histogram(&Histograms.back());
}

Snapshot Registry::snapshot() const {
  std::vector<MetricValue> Out;
  std::lock_guard<std::mutex> Lock(Mu);
  Out.reserve(Names.size());
  for (const auto &[Name, E] : Names) {
    MetricValue V;
    V.Name = Name;
    switch (E.K) {
    case Kind::Counter: {
      auto *C = static_cast<const detail::CounterCell *>(E.Cell);
      V.K = MetricValue::Kind::Counter;
      V.Value = static_cast<int64_t>(C->Value.load(std::memory_order_relaxed));
      break;
    }
    case Kind::Gauge: {
      auto *G = static_cast<const detail::GaugeCell *>(E.Cell);
      V.K = MetricValue::Kind::Gauge;
      V.Value = G->Value.load(std::memory_order_relaxed);
      break;
    }
    case Kind::Histogram: {
      auto *H = static_cast<const detail::HistogramCell *>(E.Cell);
      V.K = MetricValue::Kind::Histogram;
      V.Count = H->Count.load(std::memory_order_relaxed);
      V.Value = static_cast<int64_t>(H->Sum.load(std::memory_order_relaxed));
      V.Min = V.Count ? H->Min.load(std::memory_order_relaxed) : 0;
      V.Max = H->Max.load(std::memory_order_relaxed);
      for (int I = 0; I < detail::HistogramCell::NumBuckets; ++I)
        if (uint64_t N = H->Buckets[I].load(std::memory_order_relaxed))
          V.Buckets.emplace_back(I, N);
      break;
    }
    }
    Out.push_back(std::move(V));
  }
  // std::map iterates sorted, so Out is already name-ordered.
  return Snapshot(std::move(Out));
}

Snapshot::Snapshot(std::vector<MetricValue> V) : Values(std::move(V)) {
  std::sort(Values.begin(), Values.end(),
            [](const MetricValue &A, const MetricValue &B) {
              return A.Name < B.Name;
            });
}

const MetricValue *Snapshot::find(const std::string &Name) const {
  auto It = std::lower_bound(Values.begin(), Values.end(), Name,
                             [](const MetricValue &V, const std::string &N) {
                               return V.Name < N;
                             });
  if (It == Values.end() || It->Name != Name)
    return nullptr;
  return &*It;
}

int64_t Snapshot::value(const std::string &Name, int64_t Default) const {
  const MetricValue *V = find(Name);
  return V ? V->Value : Default;
}

Snapshot Snapshot::diff(const Snapshot &Base) const {
  std::vector<MetricValue> Out = Values;
  for (MetricValue &V : Out) {
    const MetricValue *B = Base.find(V.Name);
    if (!B || V.K == MetricValue::Kind::Gauge)
      continue;
    V.Value -= B->Value;
    if (V.K == MetricValue::Kind::Histogram) {
      V.Count -= std::min(V.Count, B->Count);
      // Min/Max/buckets are not meaningfully diffable; keep current.
    }
  }
  return Snapshot(std::move(Out));
}

static void appendJsonName(std::string &Out, const std::string &Name) {
  Out += '"';
  for (char C : Name) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  Out += '"';
}

std::string Snapshot::toJson() const {
  std::string Out = "{";
  bool First = true;
  auto Emit = [&](const std::string &Name, int64_t Value) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n  ";
    appendJsonName(Out, Name);
    Out += ": " + std::to_string(Value);
  };
  for (const MetricValue &V : Values) {
    switch (V.K) {
    case MetricValue::Kind::Counter:
    case MetricValue::Kind::Gauge:
      Emit(V.Name, V.Value);
      break;
    case MetricValue::Kind::Histogram:
      Emit(V.Name + ".count", static_cast<int64_t>(V.Count));
      Emit(V.Name + ".sum", V.Value);
      Emit(V.Name + ".min", static_cast<int64_t>(V.Min));
      Emit(V.Name + ".max", static_cast<int64_t>(V.Max));
      break;
    }
  }
  Out += First ? "}" : "\n}";
  return Out;
}

std::string Snapshot::toTable() const {
  size_t Width = 0;
  for (const MetricValue &V : Values)
    Width = std::max(Width, V.Name.size());
  std::ostringstream OS;
  for (const MetricValue &V : Values) {
    OS << V.Name << std::string(Width - V.Name.size() + 2, ' ');
    if (V.K == MetricValue::Kind::Histogram)
      OS << "count=" << V.Count << " sum=" << V.Value << " min=" << V.Min
         << " max=" << V.Max;
    else
      OS << V.Value;
    OS << "\n";
  }
  return OS.str();
}

std::string sanitizeMetricSegment(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_';
    Out += Ok ? C : '_';
  }
  return Out;
}

} // namespace obs
} // namespace chimera
