//===- support/Crc32.cpp - CRC-32 checksums --------------------------------===//

#include "support/Crc32.h"

using namespace chimera;
using namespace chimera::support;

namespace {

struct Crc32Table {
  uint32_t Entry[256];
  Crc32Table() {
    for (uint32_t I = 0; I != 256; ++I) {
      uint32_t C = I;
      for (unsigned K = 0; K != 8; ++K)
        C = (C & 1) ? 0xedb88320u ^ (C >> 1) : C >> 1;
      Entry[I] = C;
    }
  }
};

const Crc32Table &table() {
  static const Crc32Table T;
  return T;
}

} // namespace

Crc32 &Crc32::update(const void *Data, size_t Size) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  const Crc32Table &T = table();
  uint32_t C = State;
  for (size_t I = 0; I != Size; ++I)
    C = T.Entry[(C ^ P[I]) & 0xff] ^ (C >> 8);
  State = C;
  return *this;
}

uint32_t chimera::support::crc32(const void *Data, size_t Size) {
  Crc32 C;
  C.update(Data, Size);
  return C.value();
}
