//===- analysis/LockOrderGraph.cpp - Weak-lock order analysis --------------===//

#include "analysis/LockOrderGraph.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

using namespace chimera;
using namespace chimera::analysis;
using namespace chimera::ir;

const char *analysis::lockOrderModeName(LockOrderMode Mode) {
  switch (Mode) {
  case LockOrderMode::Off:
    return "off";
  case LockOrderMode::Audit:
    return "audit";
  case LockOrderMode::Enforce:
    return "enforce";
  }
  return "?";
}

support::Expected<LockOrderMode>
analysis::parseLockOrderMode(const std::string &Text) {
  if (Text == "off")
    return LockOrderMode::Off;
  if (Text == "audit")
    return LockOrderMode::Audit;
  if (Text == "enforce")
    return LockOrderMode::Enforce;
  return support::Error::failure(
      "unknown lock-order mode '" + Text + "' (expected off|audit|enforce)");
}

namespace {

// Enumeration / search bounds. Hitting any of them flips
// Stats.EnumerationComplete and keeps the affected SCC conservatively
// cyclic — bounds cost precision, never soundness.
constexpr size_t MaxCycleLen = 6;
constexpr size_t MaxCyclesPerScc = 64;
constexpr size_t MaxEdgesPerHop = 4;
constexpr size_t MaxAssignAttempts = 20000;

} // namespace

LockOrderGraph::LockOrderGraph(const ir::Module &Instrumented,
                               const ir::Module &Original,
                               const CallGraph &CG,
                               const MayHappenInParallel &Mhp)
    : IM(Instrumented), Mhp(Mhp), Roots(CG.threadRoots()) {
  Stats.Locks = Instrumented.WeakLocks.size();
  MasksValid = Roots.size() <= 64;
  computeRootMasks(Instrumented);
  runDataflow(Instrumented, Original);
  detectCycles();
}

/// Which thread roots a function may execute on: reachability over Call
/// edges only, seeded at each root. Spawn edges switch threads, so they
/// contribute new roots, not reachability within one (CallGraph mixes
/// Call and Spawn edges, hence the bespoke walk).
void LockOrderGraph::computeRootMasks(const ir::Module &M) {
  uint32_t N = static_cast<uint32_t>(M.Functions.size());
  FuncRoots.assign(N, 0);
  if (!MasksValid) {
    // Too many roots for the masks: every function may run anywhere.
    FuncRoots.assign(N, ~0ull);
    return;
  }
  std::vector<std::vector<uint32_t>> CallOnly(N);
  for (uint32_t F = 0; F != N; ++F) {
    std::set<uint32_t> Seen;
    for (const BasicBlock &B : M.function(F).Blocks)
      for (const Instruction &I : B.Insts)
        if (I.Op == Opcode::Call && Seen.insert(I.Id).second)
          CallOnly[F].push_back(I.Id);
  }
  for (size_t R = 0; R != Roots.size(); ++R) {
    std::vector<uint32_t> Work = {Roots[R]};
    uint64_t Bit = 1ull << R;
    while (!Work.empty()) {
      uint32_t F = Work.back();
      Work.pop_back();
      if (FuncRoots[F] & Bit)
        continue;
      FuncRoots[F] |= Bit;
      for (uint32_t Callee : CallOnly[F])
        Work.push_back(Callee);
    }
  }
}

void LockOrderGraph::runDataflow(const ir::Module &M,
                                 const ir::Module &Original) {
  uint32_t N = static_cast<uint32_t>(M.Functions.size());

  // Original instruction ids per function (the ids MHP knows about; the
  // Instrumenter's inserted instructions use fresh, never-reused ids).
  std::vector<std::unordered_set<InstId>> OrigIds(N);
  for (uint32_t F = 0; F != N; ++F)
    for (const BasicBlock &B : Original.function(F).Blocks)
      for (const Instruction &I : B.Insts)
        OrigIds[F].insert(I.Ident);

  using HeldMap = std::map<uint32_t, Origin>;

  // Held-at-entry context per function, grown to fixpoint. The
  // Instrumenter releases every held lock around calls today, so these
  // stay empty in practice — but the analysis must not assume that: a
  // future planner relaxation may hold locks across calls, and the
  // certificate has to stay sound if it does.
  std::vector<HeldMap> EntryCtx(N);

  // Edge dedup: (Held, Acquired, Func, Block) -> presence.
  struct KeyHash {
    size_t operator()(const std::array<uint32_t, 4> &K) const {
      uint64_t H = 1469598103934665603ull;
      for (uint32_t V : K) {
        H ^= V;
        H *= 1099511628211ull;
      }
      return static_cast<size_t>(H);
    }
  };
  std::unordered_set<std::array<uint32_t, 4>, KeyHash> EdgeSeen;

  std::unordered_set<uint64_t> CountedSites; // (Func << 32) | Ident.

  auto joinInto = [](std::optional<HeldMap> &Dst, const HeldMap &Src) {
    if (!Dst) {
      Dst = Src;
      return true;
    }
    bool Changed = false;
    for (const auto &[L, O] : Src)
      if (Dst->emplace(L, O).second)
        Changed = true;
    return Changed;
  };

  std::vector<char> InWorklist(N, 1);
  std::vector<uint32_t> Work;
  for (uint32_t F = 0; F != N; ++F)
    Work.push_back(N - 1 - F);

  while (!Work.empty()) {
    uint32_t FId = Work.back();
    Work.pop_back();
    InWorklist[FId] = 0;
    const Function &F = M.function(FId);
    uint32_t NB = F.numBlocks();
    if (NB == 0)
      continue;

    std::vector<std::optional<HeldMap>> In(NB);
    In[0] = EntryCtx[FId];

    // Forward may-held fixpoint over the instrumented CFG. Union join
    // (an edge exists when the lock MAY be held); first-writer-wins on
    // the witnessed acquire origin.
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (BlockId B = 0; B != NB; ++B) {
        if (!In[B])
          continue;
        HeldMap Cur = *In[B];
        const std::vector<Instruction> &Insts = F.block(B).Insts;
        for (uint32_t Idx = 0; Idx != Insts.size(); ++Idx) {
          const Instruction &I = Insts[Idx];
          if (I.Op == Opcode::WeakAcquire) {
            uint32_t L = static_cast<uint32_t>(I.Imm);
            CountedSites.insert((static_cast<uint64_t>(FId) << 32) |
                                I.Ident);
            if (!Cur.empty()) {
              // Anchor for MHP queries: the first original instruction
              // at or after the acquire (the block's terminator in the
              // worst case — terminators keep their original ids).
              InstId Repr = NoInst;
              for (uint32_t J = Idx + 1; J != Insts.size(); ++J)
                if (OrigIds[FId].count(Insts[J].Ident)) {
                  Repr = Insts[J].Ident;
                  break;
                }
              for (const auto &[H, O] : Cur) {
                std::array<uint32_t, 4> Key = {H, L, FId, B};
                if (!EdgeSeen.insert(Key).second)
                  continue;
                LockOrderEdge E;
                E.Held = H;
                E.Acquired = L;
                E.Func = FId;
                E.Block = B;
                E.Repr = Repr;
                E.HeldFunc = O.Func;
                E.HeldBlock = O.Block;
                E.Roots = FuncRoots[FId];
                E.Interprocedural = O.Func != FId;
                Edges.push_back(E);
              }
            }
            Cur.emplace(L, Origin{FId, B}); // Keep the outer origin.
          } else if (I.Op == Opcode::WeakRelease) {
            Cur.erase(static_cast<uint32_t>(I.Imm));
          } else if (I.Op == Opcode::Call && !Cur.empty()) {
            // Propagate held locks into the callee's entry context.
            uint32_t Callee = I.Id;
            bool Grew = false;
            for (const auto &[L, O] : Cur)
              if (EntryCtx[Callee].emplace(L, O).second)
                Grew = true;
            if (Grew && !InWorklist[Callee]) {
              InWorklist[Callee] = 1;
              Work.push_back(Callee);
            }
          }
        }
        for (BlockId S : F.successors(B))
          if (joinInto(In[S], Cur))
            Changed = true;
      }
    }
  }

  Stats.AcquireSites = CountedSites.size();
  Stats.Edges = Edges.size();
  for (const LockOrderEdge &E : Edges)
    if (E.Interprocedural)
      ++Stats.InterprocEdges;
}

namespace {

/// Iterative Tarjan SCC over the lock digraph (lock counts are small,
/// but recursion depth is unbounded in theory).
struct LockScc {
  LockScc(uint32_t N, const std::vector<std::vector<uint32_t>> &Adj)
      : Adj(Adj), Index(N, ~0u), Low(N, 0), OnStack(N, 0), Comp(N, ~0u) {
    for (uint32_t V = 0; V != N; ++V)
      if (Index[V] == ~0u)
        run(V);
  }

  void run(uint32_t V) {
    struct Frame {
      uint32_t V;
      size_t NextEdge;
    };
    std::vector<Frame> Stack{{V, 0}};
    while (!Stack.empty()) {
      Frame &Top = Stack.back();
      uint32_t U = Top.V;
      if (Top.NextEdge == 0) {
        Index[U] = Low[U] = Next++;
        SccStack.push_back(U);
        OnStack[U] = 1;
      }
      bool Descended = false;
      while (Top.NextEdge < Adj[U].size()) {
        uint32_t W = Adj[U][Top.NextEdge++];
        if (Index[W] == ~0u) {
          Stack.push_back({W, 0});
          Descended = true;
          break;
        }
        if (OnStack[W])
          Low[U] = std::min(Low[U], Index[W]);
      }
      if (Descended)
        continue;
      if (Low[U] == Index[U]) {
        for (;;) {
          uint32_t W = SccStack.back();
          SccStack.pop_back();
          OnStack[W] = 0;
          Comp[W] = NumComps;
          if (W == U)
            break;
        }
        ++NumComps;
      }
      Stack.pop_back();
      if (!Stack.empty())
        Low[Stack.back().V] = std::min(Low[Stack.back().V], Low[U]);
    }
  }

  const std::vector<std::vector<uint32_t>> &Adj;
  std::vector<uint32_t> Index, Low;
  std::vector<char> OnStack;
  std::vector<uint32_t> Comp;
  std::vector<uint32_t> SccStack;
  uint32_t Next = 0, NumComps = 0;
};

} // namespace

bool LockOrderGraph::cycleFeasible(const std::vector<uint32_t> &LockSeq,
                                   LockOrderCycle &Out) {
  // Candidate edges per hop (Li -> Li+1), a few per hop for diversity.
  size_t K = LockSeq.size();
  std::vector<std::vector<uint32_t>> Cands(K);
  for (size_t H = 0; H != K; ++H) {
    uint32_t From = LockSeq[H], To = LockSeq[(H + 1) % K];
    for (uint32_t EIdx = 0;
         EIdx != Edges.size() && Cands[H].size() < MaxEdgesPerHop; ++EIdx)
      if (Edges[EIdx].Held == From && Edges[EIdx].Acquired == To &&
          Edges[EIdx].Roots != 0)
        Cands[H].push_back(EIdx);
    if (Cands[H].empty())
      return false; // Dead-code hop: no live edge realizes it.
  }

  // Backtracking root assignment. A real deadlock has every participant
  // simultaneously blocked, so each pair of acquire sites must be
  // MayRace under the assigned roots; one proven ordering kills the
  // assignment. The attempt budget bounds the search — on exhaustion
  // the cycle is conservatively kept (Verified = false).
  size_t Attempts = 0;
  bool Budget = true;
  std::vector<uint32_t> ChosenEdge(K), ChosenRoot(K);

  std::function<bool(size_t)> Assign = [&](size_t H) -> bool {
    if (H == K)
      return true;
    for (uint32_t EIdx : Cands[H]) {
      const LockOrderEdge &E = Edges[EIdx];
      for (size_t R = 0; R != Roots.size(); ++R) {
        if (!(E.Roots >> R & 1))
          continue;
        if (++Attempts > MaxAssignAttempts) {
          Budget = false;
          return false;
        }
        bool Compatible = true;
        for (size_t P = 0; P != H && Compatible; ++P) {
          const LockOrderEdge &PE = Edges[ChosenEdge[P]];
          if (!MasksValid || PE.Repr == NoInst || E.Repr == NoInst)
            continue; // No anchor: stay conservative (compatible).
          if (Mhp.classify(Roots[ChosenRoot[P]], PE.Func, PE.Repr,
                           Roots[R], E.Func, E.Repr) !=
              MhpOrdering::MayRace)
            Compatible = false;
        }
        if (!Compatible)
          continue;
        ChosenEdge[H] = EIdx;
        ChosenRoot[H] = static_cast<uint32_t>(R);
        if (Assign(H + 1))
          return true;
        if (!Budget)
          return false;
      }
    }
    return false;
  };

  bool Found = Assign(0);
  if (!Found && Budget)
    return false; // Every assignment refuted: the cycle is infeasible.

  Out.Edges.resize(K);
  Out.RootIdx.resize(K);
  if (Found) {
    Out.Edges = ChosenEdge;
    Out.RootIdx = ChosenRoot;
    Out.Verified = true;
  } else {
    // Budget exhausted: keep the cycle with an arbitrary witness.
    for (size_t H = 0; H != K; ++H) {
      Out.Edges[H] = Cands[H][0];
      Out.RootIdx[H] = 0;
    }
    Out.Verified = false;
    Stats.EnumerationComplete = false;
  }
  return true;
}

void LockOrderGraph::detectCycles() {
  uint32_t NL = static_cast<uint32_t>(IM.WeakLocks.size());
  if (NL == 0 || Edges.empty())
    return;

  // Deduped lock digraph. Self-edges are kept aside: a self-edge is a
  // recursive acquisition, feasible by program order alone (the thread
  // provably holds the lock when it re-acquires it).
  std::vector<std::set<uint32_t>> AdjSet(NL);
  std::set<uint32_t> SelfEdged;
  for (uint32_t EIdx = 0; EIdx != Edges.size(); ++EIdx) {
    const LockOrderEdge &E = Edges[EIdx];
    if (E.Roots == 0)
      continue; // Dead code: the site can never execute.
    if (E.Held == E.Acquired) {
      if (SelfEdged.insert(E.Held).second) {
        LockOrderCycle C;
        C.Edges = {EIdx};
        C.RootIdx = {0};
        C.Verified = true;
        Feasible.push_back(C);
        ++Stats.CyclesEnumerated;
        ++Stats.CyclesFeasible;
      }
      continue;
    }
    AdjSet[E.Held].insert(E.Acquired);
  }
  std::vector<std::vector<uint32_t>> Adj(NL);
  for (uint32_t L = 0; L != NL; ++L)
    Adj[L].assign(AdjSet[L].begin(), AdjSet[L].end());

  LockScc Scc(NL, Adj);

  std::vector<std::vector<uint32_t>> Members(Scc.NumComps);
  for (uint32_t L = 0; L != NL; ++L)
    Members[Scc.Comp[L]].push_back(L); // Ascending within each SCC.

  for (const std::vector<uint32_t> &SccLocks : Members) {
    if (SccLocks.size() < 2)
      continue;
    ++Stats.Sccs;
    size_t Enumerated = 0;
    bool HitCap = false;
    bool AnyFeasible = false;

    // Canonical simple-cycle enumeration: every simple cycle is found
    // exactly once as a path from its smallest lock using only locks
    // >= that start. Starting from each member in ascending order
    // covers all cycles (a cycle's minimum member is unique).
    std::vector<uint32_t> Path;
    std::vector<char> OnPath(NL, 0);
    for (uint32_t Start : SccLocks) {
      if (HitCap)
        break;
      std::function<void(uint32_t)> Dfs = [&](uint32_t L) {
        if (HitCap)
          return;
        Path.push_back(L);
        OnPath[L] = 1;
        for (uint32_t Next : Adj[L]) {
          if (HitCap)
            break;
          if (Scc.Comp[Next] != Scc.Comp[Start] || Next < Start)
            continue;
          if (Next == Start) {
            if (Path.size() < 2)
              continue;
            ++Enumerated;
            ++Stats.CyclesEnumerated;
            if (Enumerated > MaxCyclesPerScc) {
              HitCap = true;
              break;
            }
            LockOrderCycle C;
            if (cycleFeasible(Path, C)) {
              Feasible.push_back(C);
              ++Stats.CyclesFeasible;
              AnyFeasible = true;
            } else {
              ++Stats.CyclesPrunedMhp;
            }
          } else if (!OnPath[Next]) {
            if (Path.size() < MaxCycleLen)
              Dfs(Next);
            else
              HitCap = true; // Length bound cut a branch: incomplete.
          }
        }
        OnPath[L] = 0;
        Path.pop_back();
      };
      Dfs(Start);
    }

    if (HitCap) {
      Stats.EnumerationComplete = false;
      if (!AnyFeasible) {
        // Enumeration was truncated and nothing proved feasible:
        // conservatively report one unverified witness over the SCC so
        // acyclic() stays a proof.
        LockOrderCycle C;
        C.Verified = false;
        for (uint32_t EIdx = 0; EIdx != Edges.size(); ++EIdx) {
          const LockOrderEdge &E = Edges[EIdx];
          if (E.Held != E.Acquired &&
              Scc.Comp[E.Held] == Scc.Comp[SccLocks[0]] &&
              Scc.Comp[E.Acquired] == Scc.Comp[SccLocks[0]]) {
            C.Edges = {EIdx};
            C.RootIdx = {0};
            break;
          }
        }
        if (!C.Edges.empty()) {
          Feasible.push_back(C);
          ++Stats.CyclesFeasible;
        }
      }
    }
  }
}

std::vector<std::vector<uint32_t>> LockOrderGraph::cyclicLockSets() const {
  // Union-find over locks joined by feasible cycles, so overlapping
  // cycles coalesce into one repair set.
  uint32_t NL = static_cast<uint32_t>(IM.WeakLocks.size());
  std::vector<uint32_t> Parent(NL);
  for (uint32_t L = 0; L != NL; ++L)
    Parent[L] = L;
  std::function<uint32_t(uint32_t)> Find = [&](uint32_t X) {
    while (Parent[X] != X)
      X = Parent[X] = Parent[Parent[X]];
    return X;
  };
  std::vector<char> InCycle(NL, 0);
  for (const LockOrderCycle &C : Feasible)
    for (uint32_t EIdx : C.Edges) {
      const LockOrderEdge &E = Edges[EIdx];
      InCycle[E.Held] = InCycle[E.Acquired] = 1;
      Parent[Find(E.Held)] = Find(E.Acquired);
    }
  std::map<uint32_t, std::vector<uint32_t>> Groups;
  for (uint32_t L = 0; L != NL; ++L)
    if (InCycle[L])
      Groups[Find(L)].push_back(L);
  std::vector<std::vector<uint32_t>> Out;
  Out.reserve(Groups.size());
  for (auto &[Rep, Locks] : Groups) {
    std::sort(Locks.begin(), Locks.end());
    Out.push_back(std::move(Locks));
  }
  return Out;
}

std::string LockOrderGraph::report() const {
  auto lockName = [&](uint32_t L) {
    std::string S = "wl" + std::to_string(L);
    if (L < IM.WeakLocks.size() && !IM.WeakLocks[L].Name.empty())
      S += " '" + IM.WeakLocks[L].Name + "'";
    return S;
  };
  auto site = [&](uint32_t Func, BlockId Block) {
    if (Func >= IM.Functions.size())
      return std::string("?");
    return IM.function(Func).Name + ":bb" + std::to_string(Block);
  };

  std::string Out;
  if (Feasible.empty()) {
    Out += "lock-order: acyclic (" + std::to_string(Stats.Edges) +
           " held-while-acquiring edges, " +
           std::to_string(Stats.CyclesPrunedMhp) +
           " cycle(s) pruned by MHP)\n";
    return Out;
  }
  Out += "lock-order: " + std::to_string(Feasible.size()) +
         " deadlock-potential cycle(s)\n";
  size_t Shown = 0;
  for (const LockOrderCycle &C : Feasible) {
    if (++Shown > 10) {
      Out += "  ... (" + std::to_string(Feasible.size() - 10) + " more)\n";
      break;
    }
    Out += "  cycle";
    if (!C.Verified)
      Out += " (unverified: search bound hit)";
    Out += ":\n";
    for (size_t H = 0; H != C.Edges.size(); ++H) {
      const LockOrderEdge &E = Edges[C.Edges[H]];
      Out += "    lock " + lockName(E.Held) + " held at " +
             site(E.HeldFunc, E.HeldBlock) + " while acquiring " +
             lockName(E.Acquired) + " at " + site(E.Func, E.Block);
      if (H < C.RootIdx.size() && C.RootIdx[H] < Roots.size())
        Out +=
            " [thread root " + IM.function(Roots[C.RootIdx[H]]).Name + "]";
      Out += "\n";
    }
  }
  return Out;
}
